open Es_util

let qtest ?(count = 200) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

(* ---------- Prng ---------- *)

let test_prng_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_copy_independent () =
  let a = Prng.create 7 in
  let _ = Prng.bits64 a in
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.bits64 a) (Prng.bits64 b);
  let _ = Prng.bits64 a in
  ()

let test_prng_split_differs () =
  let a = Prng.create 7 in
  let b = Prng.split a in
  let xa = Prng.bits64 a and xb = Prng.bits64 b in
  Alcotest.(check bool) "split stream differs" true (xa <> xb)

let test_prng_int_bounds () =
  let r = Prng.create 3 in
  for _ = 1 to 1000 do
    let v = Prng.int r 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_prng_int_rejects_bad_bound () =
  let r = Prng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int r 0))

let test_prng_float_bounds () =
  let r = Prng.create 5 in
  for _ = 1 to 1000 do
    let v = Prng.float r 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_prng_int_in () =
  let r = Prng.create 9 in
  for _ = 1 to 500 do
    let v = Prng.int_in r (-3) 3 in
    Alcotest.(check bool) "in [-3,3]" true (v >= -3 && v <= 3)
  done

let test_prng_exponential_mean () =
  let r = Prng.create 11 in
  let n = 20000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Prng.exponential r 4.0
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.4f within 5%% of 0.25" mean)
    true
    (Float.abs (mean -. 0.25) < 0.0125)

let test_prng_normal_moments () =
  let r = Prng.create 13 in
  let n = 20000 in
  let s = Stats.create () in
  for _ = 1 to n do
    Stats.add s (Prng.normal r ~mu:5.0 ~sigma:2.0)
  done;
  Alcotest.(check bool) "mean close" true (Float.abs (Stats.mean s -. 5.0) < 0.1);
  Alcotest.(check bool) "stddev close" true (Float.abs (Stats.stddev s -. 2.0) < 0.1)

let test_prng_weighted_choice () =
  let r = Prng.create 17 in
  let counts = Hashtbl.create 3 in
  let items = [| ("a", 1.0); ("b", 3.0); ("c", 0.0) |] in
  for _ = 1 to 10000 do
    let k = Prng.weighted_choice r items in
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  let get k = Option.value ~default:0 (Hashtbl.find_opt counts k) in
  Alcotest.(check int) "zero-weight item never drawn" 0 (get "c");
  Alcotest.(check bool) "b ~3x a" true (float_of_int (get "b") /. float_of_int (get "a") > 2.5)

let test_prng_shuffle_permutation () =
  let r = Prng.create 23 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 (fun i -> i)) sorted

let test_prng_sample_without_replacement () =
  let r = Prng.create 29 in
  let s = Prng.sample_without_replacement r 10 30 in
  Alcotest.(check int) "size" 10 (Array.length s);
  let seen = Hashtbl.create 10 in
  Array.iter
    (fun x ->
      Alcotest.(check bool) "in range" true (x >= 0 && x < 30);
      Alcotest.(check bool) "distinct" false (Hashtbl.mem seen x);
      Hashtbl.add seen x ())
    s

let prng_nonnegative_int =
  qtest "Prng.int is within bounds for arbitrary seeds/bounds"
    QCheck.(pair int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let r = Prng.create seed in
      let v = Prng.int r bound in
      v >= 0 && v < bound)

(* ---------- Stats ---------- *)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check int) "count" 0 (Stats.count s);
  Alcotest.(check bool) "mean is nan" true (Float.is_nan (Stats.mean s))

let test_stats_known_values () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "variance" (32.0 /. 7.0) (Stats.variance s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Stats.min s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Stats.max s);
  Alcotest.(check (float 1e-9)) "sum" 40.0 (Stats.sum s)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () and whole = Stats.create () in
  let xs = [ 1.0; 2.0; 3.0 ] and ys = [ 10.0; 20.0; 30.0; 40.0 ] in
  List.iter (Stats.add a) xs;
  List.iter (Stats.add b) ys;
  List.iter (Stats.add whole) (xs @ ys);
  let m = Stats.merge a b in
  Alcotest.(check (float 1e-9)) "merged mean" (Stats.mean whole) (Stats.mean m);
  Alcotest.(check (float 1e-9)) "merged variance" (Stats.variance whole) (Stats.variance m);
  Alcotest.(check int) "merged count" (Stats.count whole) (Stats.count m)

let test_percentiles () =
  let xs = [| 15.0; 20.0; 35.0; 40.0; 50.0 |] in
  Alcotest.(check (float 1e-9)) "p0 = min" 15.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p100 = max" 50.0 (Stats.percentile xs 100.0);
  Alcotest.(check (float 1e-9)) "median" 35.0 (Stats.median xs);
  Alcotest.(check (float 1e-9)) "p25 lands on an order statistic" 20.0 (Stats.percentile xs 25.0);
  Alcotest.(check (float 1e-9)) "p37.5 interpolated" 27.5 (Stats.percentile xs 37.5)

let test_percentile_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty array") (fun () ->
      ignore (Stats.percentile [||] 50.0));
  Alcotest.check_raises "bad p" (Invalid_argument "Stats.percentile: p outside [0,100]")
    (fun () -> ignore (Stats.percentile [| 1.0 |] 101.0))

let test_histogram () =
  let xs = [| 0.0; 0.1; 0.9; 1.0; 2.0 |] in
  let h = Stats.histogram xs ~bins:2 in
  Alcotest.(check int) "bins" 2 (Array.length h);
  let total = Array.fold_left (fun acc (_, c) -> acc + c) 0 h in
  Alcotest.(check int) "all samples binned" 5 total

let test_cdf_points () =
  let pts = Stats.cdf_points [| 3.0; 1.0; 2.0 |] 2 in
  Alcotest.(check int) "n+1 points" 3 (List.length pts);
  let vs = List.map fst pts in
  Alcotest.(check (list (float 1e-9))) "sorted values" [ 1.0; 2.0; 3.0 ] vs

let test_jain_index () =
  Alcotest.(check (float 1e-9)) "equal allocation" 1.0 (Stats.jain_index [| 2.0; 2.0; 2.0 |]);
  Alcotest.(check (float 1e-9)) "maximal skew -> 1/n" (1.0 /. 3.0)
    (Stats.jain_index [| 6.0; 0.0; 0.0 |]);
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (Stats.jain_index [||]));
  Alcotest.(check (float 1e-9)) "all zeros treated as fair" 1.0 (Stats.jain_index [| 0.0; 0.0 |]);
  Alcotest.check_raises "negative rejected" (Invalid_argument "Stats.jain_index: negative entry")
    (fun () -> ignore (Stats.jain_index [| 1.0; -1.0 |]))

let stats_percentile_monotone =
  qtest "percentiles are monotone in p"
    QCheck.(pair (list_of_size (Gen.int_range 1 50) (float_range (-100.) 100.)) (pair (float_range 0. 100.) (float_range 0. 100.)))
    (fun (xs, (p1, p2)) ->
      let xs = Array.of_list xs in
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.percentile xs lo <= Stats.percentile xs hi +. 1e-9)

let stats_merge_matches_sequential =
  qtest "merge equals a single pass"
    QCheck.(pair (list (float_range (-50.) 50.)) (list (float_range (-50.) 50.)))
    (fun (xs, ys) ->
      let a = Stats.create () and b = Stats.create () and whole = Stats.create () in
      List.iter (Stats.add a) xs;
      List.iter (Stats.add b) ys;
      List.iter (Stats.add whole) (xs @ ys);
      let m = Stats.merge a b in
      Stats.count m = Stats.count whole
      && (Stats.count m = 0
         || Numeric.float_equal ~eps:1e-9 (Stats.mean m) (Stats.mean whole)
            && Numeric.float_equal ~eps:1e-6 (Stats.variance m) (Stats.variance whole)))

(* ---------- Heap ---------- *)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter (fun p -> Heap.push h p p) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let order = List.map fst (Heap.to_sorted_list h) in
  Alcotest.(check (list (float 1e-9))) "sorted" [ 1.0; 2.0; 3.0; 4.0; 5.0 ] order;
  Alcotest.(check int) "non-destructive" 5 (Heap.length h)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  Heap.push h 1.0 "first";
  Heap.push h 1.0 "second";
  Heap.push h 1.0 "third";
  Alcotest.(check string) "tie order 1" "first" (snd (Heap.pop_exn h));
  Alcotest.(check string) "tie order 2" "second" (snd (Heap.pop_exn h));
  Alcotest.(check string) "tie order 3" "third" (snd (Heap.pop_exn h))

let test_heap_empty () =
  let h : int Heap.t = Heap.create () in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check bool) "pop None" true (Heap.pop h = None);
  Alcotest.check_raises "pop_exn raises" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Heap.pop_exn h))

let test_heap_clear () =
  let h = Heap.create () in
  Heap.push h 1.0 ();
  Heap.clear h;
  Alcotest.(check int) "cleared" 0 (Heap.length h)

let heap_pops_sorted =
  qtest "pops come out sorted for arbitrary pushes"
    QCheck.(list (float_range (-1000.) 1000.))
    (fun ps ->
      let h = Heap.create () in
      List.iter (fun p -> Heap.push h p ()) ps;
      let rec drain last =
        match Heap.pop h with
        | None -> true
        | Some (p, ()) -> p >= last && drain p
      in
      drain neg_infinity)

let heap_interleaved =
  qtest "interleaved push/pop maintains the invariant"
    QCheck.(list (pair bool (float_range 0. 100.)))
    (fun ops ->
      let h = Heap.create () in
      let ok = ref true in
      let last_popped = ref neg_infinity in
      List.iter
        (fun (is_pop, p) ->
          if is_pop then begin
            match Heap.pop h with
            | None -> last_popped := neg_infinity
            | Some (v, ()) ->
                (* Within a monotone drain the values must not decrease. *)
                if v < !last_popped then ok := false;
                last_popped := v
          end
          else begin
            Heap.push h p ();
            last_popped := neg_infinity
          end)
        ops;
      !ok)

(* ---------- Calendar_queue ---------- *)

let test_cq_fifo_ties () =
  let c = Calendar_queue.create () in
  Calendar_queue.push c 1.0 "first";
  Calendar_queue.push c 1.0 "second";
  Calendar_queue.push c 1.0 "third";
  Alcotest.(check string) "tie order 1" "first" (snd (Calendar_queue.pop_exn c));
  Alcotest.(check string) "tie order 2" "second" (snd (Calendar_queue.pop_exn c));
  Alcotest.(check string) "tie order 3" "third" (snd (Calendar_queue.pop_exn c))

let test_cq_empty () =
  let c : int Calendar_queue.t = Calendar_queue.create () in
  Alcotest.(check bool) "is_empty" true (Calendar_queue.is_empty c);
  Alcotest.(check bool) "pop None" true (Calendar_queue.pop c = None);
  Alcotest.check_raises "pop_exn raises"
    (Invalid_argument "Calendar_queue.pop_exn: empty") (fun () ->
      ignore (Calendar_queue.pop_exn c))

let test_cq_push_validation () =
  let c = Calendar_queue.create () in
  let expect p =
    Alcotest.check_raises "rejected"
      (Invalid_argument "Calendar_queue.push: priority must be finite and >= 0")
      (fun () -> Calendar_queue.push c p ())
  in
  expect (-1.0);
  expect nan;
  expect infinity;
  Alcotest.(check int) "nothing entered" 0 (Calendar_queue.length c)

let test_cq_pop_before () =
  let c = Calendar_queue.create () in
  Calendar_queue.push c 5.0 "a";
  Calendar_queue.push c 10.0 "b";
  Alcotest.(check bool) "nothing due" true (Calendar_queue.pop_before c 4.0 = None);
  Alcotest.(check int) "still pending" 2 (Calendar_queue.length c);
  Alcotest.(check bool) "due at horizon" true
    (Calendar_queue.pop_before c 5.0 = Some (5.0, "a"));
  Alcotest.(check bool) "rest" true (Calendar_queue.pop_before c infinity = Some (10.0, "b"))

let test_cq_clear () =
  let c = Calendar_queue.create () in
  Calendar_queue.push c 1.0 ();
  Calendar_queue.clear c;
  Alcotest.(check int) "cleared" 0 (Calendar_queue.length c);
  Calendar_queue.push c 2.0 ();
  Alcotest.(check bool) "usable after clear" true (Calendar_queue.pop c = Some (2.0, ()))

(* Heap-oracle interpreter: one op program applied to both queues must
   behave identically, including FIFO order within a tie (the payload is a
   per-push stamp).  Push flavors cover the calendar's hard cases — runs of
   discrete tied timestamps, spread-out values, and far-future jumps that
   force the fruitless-lap direct search; pops cover both plain [pop] and
   bounded [pop_before]. *)
let cq_program =
  QCheck.(list (pair (int_range 0 5) (int_range 0 1000)))

let cq_apply_op (h, c, stamp, ok) (op, raw) =
  match op with
  | 0 | 1 | 2 ->
      let prio =
        match op with
        | 0 -> float_of_int (raw mod 4) (* tie-heavy *)
        | 1 -> float_of_int raw *. 0.1 (* spread *)
        | _ -> 1e9 +. float_of_int raw (* far-future jump *)
      in
      incr stamp;
      Heap.push h prio !stamp;
      Calendar_queue.push c prio !stamp
  | 3 | 4 -> if Heap.pop h <> Calendar_queue.pop c then ok := false
  | _ ->
      let horizon = float_of_int (raw mod 12) in
      let from_heap =
        match Heap.peek h with
        | Some (p, _) when p <= horizon -> Some (Heap.pop_exn h)
        | _ -> None
      in
      if from_heap <> Calendar_queue.pop_before c horizon then ok := false

let cq_matches_heap =
  qtest ~count:500 "calendar queue matches heap oracle on op programs" cq_program
    (fun program ->
      let h = Heap.create () and c = Calendar_queue.create () in
      let stamp = ref 0 and ok = ref true in
      List.iter (fun op -> cq_apply_op (h, c, stamp, ok) op) program;
      !ok
      && Calendar_queue.length c = Heap.length h
      && Calendar_queue.to_sorted_list c = Heap.to_sorted_list h)

let cq_drain_matches_heap =
  qtest ~count:200 "full drain equals heap order after arbitrary pushes"
    QCheck.(list (pair (int_range 0 2) (int_range 0 1000)))
    (fun pushes ->
      let h = Heap.create () and c = Calendar_queue.create () in
      let stamp = ref 0 and ok = ref true in
      List.iter (fun (flavor, raw) -> cq_apply_op (h, c, stamp, ok) (flavor, raw)) pushes;
      let rec drain () =
        let a = Heap.pop h and b = Calendar_queue.pop c in
        if a <> b then false else match a with None -> true | Some _ -> drain ()
      in
      !ok && drain ())

(* ---------- Maxflow ---------- *)

let test_maxflow_diamond () =
  (* s -> a (3), s -> b (2), a -> t (2), b -> t (3), a -> b (10). *)
  let net = Maxflow.create ~n:4 in
  let s = 0 and a = 1 and b = 2 and t = 3 in
  Maxflow.add_edge net ~src:s ~dst:a ~capacity:3.0;
  Maxflow.add_edge net ~src:s ~dst:b ~capacity:2.0;
  Maxflow.add_edge net ~src:a ~dst:t ~capacity:2.0;
  Maxflow.add_edge net ~src:b ~dst:t ~capacity:3.0;
  Maxflow.add_edge net ~src:a ~dst:b ~capacity:10.0;
  Alcotest.(check (float 1e-9)) "flow value" 5.0 (Maxflow.max_flow net ~source:s ~sink:t);
  let side = Maxflow.min_cut_side net ~source:s in
  Alcotest.(check bool) "source on source side" true side.(s);
  Alcotest.(check bool) "sink on sink side" false side.(t)

let test_maxflow_classic () =
  (* CLRS figure: max flow 23. *)
  let net = Maxflow.create ~n:6 in
  let edges =
    [ (0, 1, 16.); (0, 2, 13.); (1, 2, 10.); (2, 1, 4.); (1, 3, 12.); (3, 2, 9.);
      (2, 4, 14.); (4, 3, 7.); (3, 5, 20.); (4, 5, 4.) ]
  in
  List.iter (fun (src, dst, capacity) -> Maxflow.add_edge net ~src ~dst ~capacity) edges;
  Alcotest.(check (float 1e-9)) "CLRS max flow" 23.0 (Maxflow.max_flow net ~source:0 ~sink:5)

let test_maxflow_disconnected () =
  let net = Maxflow.create ~n:3 in
  Maxflow.add_edge net ~src:0 ~dst:1 ~capacity:5.0;
  Alcotest.(check (float 0.0)) "no path, no flow" 0.0 (Maxflow.max_flow net ~source:0 ~sink:2)

let test_maxflow_infinite_edge () =
  let net = Maxflow.create ~n:3 in
  Maxflow.add_edge net ~src:0 ~dst:1 ~capacity:infinity;
  Maxflow.add_edge net ~src:1 ~dst:2 ~capacity:7.0;
  Alcotest.(check (float 1e-9)) "bounded by the finite edge" 7.0
    (Maxflow.max_flow net ~source:0 ~sink:2)

let test_maxflow_validation () =
  let net = Maxflow.create ~n:2 in
  Alcotest.check_raises "self loop" (Invalid_argument "Maxflow.add_edge: self-loop") (fun () ->
      Maxflow.add_edge net ~src:0 ~dst:0 ~capacity:1.0);
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Maxflow.add_edge: negative capacity") (fun () ->
      Maxflow.add_edge net ~src:0 ~dst:1 ~capacity:(-1.0))

(* ---------- Pareto ---------- *)

let test_dominates () =
  Alcotest.(check bool) "strict" true (Pareto.dominates [| 1.0; 1.0 |] [| 2.0; 2.0 |]);
  Alcotest.(check bool) "partial" true (Pareto.dominates [| 1.0; 2.0 |] [| 2.0; 2.0 |]);
  Alcotest.(check bool) "equal does not dominate" false
    (Pareto.dominates [| 1.0; 1.0 |] [| 1.0; 1.0 |]);
  Alcotest.(check bool) "incomparable" false (Pareto.dominates [| 1.0; 3.0 |] [| 2.0; 2.0 |])

let test_frontier_basic () =
  let pts = [ (1.0, 5.0); (2.0, 4.0); (3.0, 3.0); (2.5, 4.5); (1.0, 5.0) ] in
  let f = Pareto.frontier (fun (a, b) -> [| a; b |]) pts in
  Alcotest.(check int) "dominated and duplicate removed" 3 (List.length f);
  Alcotest.(check bool) "keeps the diagonal" true
    (List.mem (1.0, 5.0) f && List.mem (2.0, 4.0) f && List.mem (3.0, 3.0) f)

let pareto_frontier_sound =
  qtest ~count:100 "frontier members are mutually non-dominated and cover the input"
    QCheck.(list_of_size (Gen.int_range 0 40) (pair (float_range 0. 10.) (float_range 0. 10.)))
    (fun pts ->
      let key (a, b) = [| a; b |] in
      let f = Pareto.frontier key pts in
      let non_dominated_inside =
        List.for_all
          (fun x -> not (List.exists (fun y -> Pareto.dominates (key y) (key x)) f))
          f
      in
      let covers =
        List.for_all
          (fun x ->
            List.exists (fun y -> key y = key x || Pareto.dominates (key y) (key x)) f)
          pts
      in
      non_dominated_inside && covers)

(* Law: the sort-based skyline must reproduce the naive O(n²) frontier
   exactly — same members, same (input) order.  Small integer-valued floats
   force heavy ties and duplicates, the cases where the two dedup paths
   could diverge. *)
let pareto_skyline_matches_oracle_2d =
  qtest ~count:500 "sorted skyline = naive frontier (2-d, duplicate-heavy)"
    QCheck.(list_of_size (Gen.int_range 0 60) (pair (int_range 0 6) (int_range 0 6)))
    (fun pts ->
      let key (a, b) = [| float_of_int a; float_of_int b |] in
      Pareto.frontier key pts = Pareto.frontier_naive key pts)

let pareto_skyline_matches_oracle_4d =
  qtest ~count:300 "sorted skyline = naive frontier (4-d)"
    QCheck.(
      list_of_size (Gen.int_range 0 40)
        (quad (int_range 0 4) (int_range 0 4) (int_range 0 4) (int_range 0 4)))
    (fun pts ->
      let key (a, b, c, d) =
        [| float_of_int a; float_of_int b; float_of_int c; float_of_int d |]
      in
      Pareto.frontier key pts = Pareto.frontier_naive key pts)

let pareto_frontier_arr_agrees =
  qtest ~count:200 "frontier_arr = frontier on the same input"
    QCheck.(list_of_size (Gen.int_range 0 40) (pair (int_range 0 6) (int_range 0 6)))
    (fun pts ->
      let key (a, b) = [| float_of_int a; float_of_int b |] in
      Array.to_list (Pareto.frontier_arr key (Array.of_list pts)) = Pareto.frontier key pts)

(* ---------- Par ---------- *)

let par_map_matches_sequential =
  qtest ~count:60 "parallel_map ~jobs:k f = List.map f for arbitrary k"
    QCheck.(pair (int_range 0 6) (list (int_range (-1000) 1000)))
    (fun (jobs, xs) ->
      let f x = (x * 31) lxor (x asr 2) in
      Par.parallel_map ~jobs f xs = List.map f xs)

let test_par_map_array () =
  let arr = Array.init 101 (fun i -> i) in
  Alcotest.(check (array int))
    "array variant, order preserved"
    (Array.map (fun x -> x * x) arr)
    (Par.parallel_map_array ~jobs:4 (fun x -> x * x) arr)

let test_par_nested () =
  (* A parallel call inside a pool task degrades to sequential instead of
     deadlocking on the queue. *)
  let out =
    Par.parallel_map ~jobs:3
      (fun x -> Par.parallel_map ~jobs:3 (fun y -> x + y) [ 1; 2; 3 ])
      [ 10; 20 ]
  in
  Alcotest.(check (list (list int))) "nested result" [ [ 11; 12; 13 ]; [ 21; 22; 23 ] ] out

let test_par_exception () =
  Alcotest.check_raises "worker exception re-raised in caller" (Failure "boom") (fun () ->
      ignore
        (Par.parallel_map ~jobs:4
           (fun x -> if x = 7 then failwith "boom" else x)
           (List.init 20 Fun.id)))

let test_par_iter_covers () =
  let hits = Array.make 50 0 in
  Par.parallel_iter ~jobs:4 (fun i -> hits.(i) <- hits.(i) + 1) (List.init 50 Fun.id);
  Alcotest.(check bool) "each element visited exactly once" true
    (Array.for_all (fun c -> c = 1) hits)

let test_par_both () =
  let a, b = Par.both ~jobs:2 (fun () -> 21 * 2) (fun () -> "x" ^ "y") in
  Alcotest.(check int) "first thunk" 42 a;
  Alcotest.(check string) "second thunk" "xy" b;
  let a, b = Par.both ~jobs:1 (fun () -> 1) (fun () -> 2) in
  Alcotest.(check (pair int int)) "sequential fallback" (1, 2) (a, b)

let test_par_default_jobs () =
  Alcotest.(check bool) "default_jobs >= 1" true (Par.default_jobs () >= 1);
  Alcotest.(check bool) "not inside pool at top level" false (Par.inside_pool ())

(* ---------- Numeric ---------- *)

let test_clamp () =
  Alcotest.(check (float 0.0)) "below" 1.0 (Numeric.clamp ~lo:1.0 ~hi:2.0 0.0);
  Alcotest.(check (float 0.0)) "above" 2.0 (Numeric.clamp ~lo:1.0 ~hi:2.0 3.0);
  Alcotest.(check (float 0.0)) "inside" 1.5 (Numeric.clamp ~lo:1.0 ~hi:2.0 1.5)

let test_interp1 () =
  let knots = [| (0.0, 0.0); (1.0, 10.0); (2.0, 20.0) |] in
  Alcotest.(check (float 1e-9)) "midpoint" 5.0 (Numeric.interp1 knots 0.5);
  Alcotest.(check (float 1e-9)) "clamp left" 0.0 (Numeric.interp1 knots (-1.0));
  Alcotest.(check (float 1e-9)) "clamp right" 20.0 (Numeric.interp1 knots 5.0);
  Alcotest.(check (float 1e-9)) "knot exact" 10.0 (Numeric.interp1 knots 1.0)

let test_bisect () =
  let x = Numeric.bisect ~lo:0.0 ~hi:10.0 (fun v -> v >= Float.pi) in
  Alcotest.(check (float 1e-6)) "finds pi" Float.pi x;
  let all_false = Numeric.bisect ~lo:0.0 ~hi:1.0 (fun _ -> false) in
  Alcotest.(check (float 0.0)) "returns hi when never true" 1.0 all_false;
  let all_true = Numeric.bisect ~lo:2.0 ~hi:3.0 (fun _ -> true) in
  Alcotest.(check (float 0.0)) "returns lo when already true" 2.0 all_true

let test_argmin_argmax () =
  Alcotest.(check (option int)) "argmin" (Some 3) (Numeric.argmin_by float_of_int [ 5; 3; 4 ]);
  Alcotest.(check (option int)) "argmax" (Some 5) (Numeric.argmax_by float_of_int [ 5; 3; 4 ]);
  Alcotest.(check (option int)) "empty" None (Numeric.argmin_by float_of_int [])

let test_units () =
  Alcotest.(check (float 1e-9)) "mbps" 125000.0 (Numeric.mbps 1.0);
  Alcotest.(check (float 1e-9)) "gflops" 2e9 (Numeric.gflops 2.0);
  Alcotest.(check (float 1e-9)) "ms" 0.25 (Numeric.ms 250.0)

(* ---------- Table ---------- *)

let test_table_render () =
  let out = Table.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ] in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "header + rule + 2 rows + trailing" 5 (List.length lines);
  (* All rows align to the same width. *)
  let widths = List.filter_map (fun l -> if l = "" then None else Some (String.length l)) lines in
  List.iter (fun w -> Alcotest.(check int) "aligned" (List.hd widths) w) widths

let test_table_formats () =
  Alcotest.(check string) "fmt_f" "1.500" (Table.fmt_f 1.5);
  Alcotest.(check string) "fmt_f nan" "-" (Table.fmt_f nan);
  Alcotest.(check string) "fmt_ms" "12.30" (Table.fmt_ms 0.0123);
  Alcotest.(check string) "fmt_pct" "97.5" (Table.fmt_pct 0.975)

(* ---------- Scratch ---------- *)

let test_scratch_reuse () =
  Alcotest.(check bool) "balanced at start" true (Scratch.live () = (0, 0));
  let a = Scratch.borrow_floats 64 in
  Scratch.release_floats a;
  let b = Scratch.borrow_floats 32 in
  Alcotest.(check bool) "smaller re-borrow reuses the same buffer" true (a == b);
  Scratch.release_floats b;
  let i = Scratch.borrow_ints 16 in
  Scratch.release_ints i;
  let j = Scratch.borrow_ints 16 in
  Alcotest.(check bool) "int buffer reused" true (i == j);
  Scratch.release_ints j;
  Alcotest.(check bool) "balanced at end" true (Scratch.live () = (0, 0))

let test_scratch_nested_distinct () =
  let a = Scratch.borrow_floats 8 in
  let b = Scratch.borrow_floats 8 in
  Alcotest.(check bool) "nested borrows never alias" true (not (a == b));
  Alcotest.(check bool) "two floats live" true (Scratch.live () = (2, 0));
  Scratch.release_floats b;
  Scratch.release_floats a

let test_scratch_misuse () =
  let a = Scratch.borrow_floats 8 in
  let b = Scratch.borrow_floats 8 in
  (match Scratch.release_floats a with
  | () -> Alcotest.fail "non-LIFO release must raise Misuse"
  | exception Scratch.Misuse _ -> ());
  Scratch.release_floats b;
  Scratch.release_floats a;
  (match Scratch.release_floats a with
  | () -> Alcotest.fail "release with nothing borrowed must raise Misuse"
  | exception Scratch.Misuse _ -> ());
  Alcotest.check_raises "negative length"
    (Invalid_argument "Scratch.borrow_floats: negative length") (fun () ->
      ignore (Scratch.borrow_floats (-1)))

let test_scratch_with_brackets () =
  (match Scratch.with_floats 4 (fun _ -> failwith "boom") with
  | _ -> Alcotest.fail "exception swallowed"
  | exception Failure _ -> ());
  Alcotest.(check bool) "released on exception" true (Scratch.live () = (0, 0));
  let sum =
    Scratch.with_ints 3 (fun b ->
        b.(0) <- 1;
        b.(1) <- 2;
        b.(2) <- 3;
        b.(0) + b.(1) + b.(2))
  in
  Alcotest.(check int) "with_ints returns the closure's result" 6 sum

let test_scratch_canary () =
  Fun.protect
    ~finally:(fun () -> Scratch.set_debug false)
    (fun () ->
      Scratch.set_debug true;
      let buf = Scratch.borrow_floats 4 in
      buf.(0) <- 1.0;
      Scratch.release_floats buf;
      (* Writing past the requested length clobbers a canary. *)
      let buf = Scratch.borrow_floats 4 in
      buf.(4) <- 0.0;
      (match Scratch.release_floats buf with
      | () -> Alcotest.fail "clobbered canary must be detected"
      | exception Scratch.Misuse _ -> ());
      (* The failed release leaves the borrow live; pop it with the canary
         check disabled to restore balance for the tests that follow. *)
      Scratch.set_debug false;
      Scratch.release_floats buf;
      Alcotest.(check bool) "balanced after cleanup" true (Scratch.live () = (0, 0)))

(* ---------- Alloc_probe ---------- *)

let test_alloc_probe_sees_allocation () =
  (* Small enough to land on the minor heap (large blocks go straight to the
     major heap, whose counters lag the running slice).  The probe's unit is
     whatever Gc.counters reports on this runtime — the gate and the tests
     only need zero-vs-nonzero and same-binary comparability, so assert
     positivity and proportionality rather than an absolute word count. *)
  let measure n =
    Alloc_probe.minor_words (fun () -> ignore (Sys.opaque_identity (Array.make n 0.0)))
  in
  let small = measure 32 and big = measure 96 in
  Alcotest.(check bool)
    (Printf.sprintf "allocating thunk measured positive (got %g)" small)
    true (small > 0.0);
  Alcotest.(check bool)
    (Printf.sprintf "measure scales with allocation (%g < %g)" small big)
    true
    (big > 2.0 *. small && big < 4.0 *. small)

let test_alloc_probe_pure_loop_zero () =
  let buf = Array.make 64 1.5 in
  let thunk () =
    let acc = ref 0.0 in
    for i = 0 to Array.length buf - 1 do
      acc := !acc +. buf.(i)
    done;
    buf.(0) <- !acc
  in
  Alcotest.(check (float 0.0)) "pure float-array loop allocates nothing" 0.0
    (Alloc_probe.minor_words thunk)

let test_scratch_steady_state_zero_alloc () =
  Alcotest.(check bool) "debug must be off" false (Scratch.debug ());
  let thunk () =
    let f = Scratch.borrow_floats 48 in
    let i = Scratch.borrow_ints 48 in
    f.(0) <- f.(0) +. 1.0;
    i.(0) <- i.(0) + 1;
    Scratch.release_ints i;
    Scratch.release_floats f
  in
  Alcotest.(check (float 0.0)) "steady-state borrow/release allocates nothing" 0.0
    (Alloc_probe.minor_words thunk)

let () =
  Alcotest.run "es_util"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "copy" `Quick test_prng_copy_independent;
          Alcotest.test_case "split" `Quick test_prng_split_differs;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int bad bound" `Quick test_prng_int_rejects_bad_bound;
          Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
          Alcotest.test_case "int_in" `Quick test_prng_int_in;
          Alcotest.test_case "exponential mean" `Quick test_prng_exponential_mean;
          Alcotest.test_case "normal moments" `Quick test_prng_normal_moments;
          Alcotest.test_case "weighted choice" `Quick test_prng_weighted_choice;
          Alcotest.test_case "shuffle permutation" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "sample w/o replacement" `Quick test_prng_sample_without_replacement;
          prng_nonnegative_int;
        ] );
      ( "stats",
        [
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "known values" `Quick test_stats_known_values;
          Alcotest.test_case "merge" `Quick test_stats_merge;
          Alcotest.test_case "percentiles" `Quick test_percentiles;
          Alcotest.test_case "percentile errors" `Quick test_percentile_errors;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "cdf points" `Quick test_cdf_points;
          Alcotest.test_case "jain index" `Quick test_jain_index;
          stats_percentile_monotone;
          stats_merge_matches_sequential;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "FIFO ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          heap_pops_sorted;
          heap_interleaved;
        ] );
      ( "calendar_queue",
        [
          Alcotest.test_case "FIFO ties" `Quick test_cq_fifo_ties;
          Alcotest.test_case "empty" `Quick test_cq_empty;
          Alcotest.test_case "push validation" `Quick test_cq_push_validation;
          Alcotest.test_case "pop_before" `Quick test_cq_pop_before;
          Alcotest.test_case "clear" `Quick test_cq_clear;
          cq_matches_heap;
          cq_drain_matches_heap;
        ] );
      ( "maxflow",
        [
          Alcotest.test_case "diamond" `Quick test_maxflow_diamond;
          Alcotest.test_case "classic 23" `Quick test_maxflow_classic;
          Alcotest.test_case "disconnected" `Quick test_maxflow_disconnected;
          Alcotest.test_case "infinite edge" `Quick test_maxflow_infinite_edge;
          Alcotest.test_case "validation" `Quick test_maxflow_validation;
        ] );
      ( "pareto",
        [
          Alcotest.test_case "dominates" `Quick test_dominates;
          Alcotest.test_case "frontier basic" `Quick test_frontier_basic;
          pareto_frontier_sound;
          pareto_skyline_matches_oracle_2d;
          pareto_skyline_matches_oracle_4d;
          pareto_frontier_arr_agrees;
        ] );
      ( "par",
        [
          par_map_matches_sequential;
          Alcotest.test_case "map_array" `Quick test_par_map_array;
          Alcotest.test_case "nested" `Quick test_par_nested;
          Alcotest.test_case "exception" `Quick test_par_exception;
          Alcotest.test_case "iter covers" `Quick test_par_iter_covers;
          Alcotest.test_case "both" `Quick test_par_both;
          Alcotest.test_case "default_jobs" `Quick test_par_default_jobs;
        ] );
      ( "numeric",
        [
          Alcotest.test_case "clamp" `Quick test_clamp;
          Alcotest.test_case "interp1" `Quick test_interp1;
          Alcotest.test_case "bisect" `Quick test_bisect;
          Alcotest.test_case "argmin/argmax" `Quick test_argmin_argmax;
          Alcotest.test_case "units" `Quick test_units;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "formats" `Quick test_table_formats;
        ] );
      ( "scratch",
        [
          Alcotest.test_case "reuse" `Quick test_scratch_reuse;
          Alcotest.test_case "nested distinct" `Quick test_scratch_nested_distinct;
          Alcotest.test_case "misuse" `Quick test_scratch_misuse;
          Alcotest.test_case "with_ brackets" `Quick test_scratch_with_brackets;
          Alcotest.test_case "canary" `Quick test_scratch_canary;
        ] );
      ( "alloc-probe",
        [
          Alcotest.test_case "sees allocation" `Quick test_alloc_probe_sees_allocation;
          Alcotest.test_case "pure loop zero" `Quick test_alloc_probe_pure_loop_zero;
          Alcotest.test_case "scratch steady state zero" `Quick
            test_scratch_steady_state_zero_alloc;
        ] );
    ]
