open Es_surgery
open Es_edge
open Es_alloc

let qtest ?(count = 60) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

let item ~key ?(fixed = 0.01) ?(bits = 8e6) ?(work = 0.01) ?(deadline = 0.2)
    ?(peak = 120e6) ?(rate = 2.0) () =
  {
    Minmax.key;
    fixed_s = fixed;
    bits;
    work_s = work;
    deadline_s = deadline;
    peak_bps = peak;
    rate;
  }

let latency_of_grant (it : Minmax.item) (g : Minmax.grant) =
  it.Minmax.fixed_s
  +. (if it.Minmax.bits > 0.0 then it.Minmax.bits /. g.Minmax.bandwidth_bps else 0.0)
  +. if it.Minmax.work_s > 0.0 then it.Minmax.work_s /. g.Minmax.compute_share else 0.0

(* ---------- Minmax ---------- *)

let test_minmax_empty () =
  match Minmax.solve ~bandwidth_bps:1e8 [] with
  | Some r ->
      Alcotest.(check (float 0.0)) "zero theta" 0.0 r.Minmax.theta;
      Alcotest.(check int) "no grants" 0 (List.length r.Minmax.grants)
  | None -> Alcotest.fail "empty allocation must succeed"

let test_minmax_single_item () =
  let it = item ~key:0 () in
  match Minmax.solve ~bandwidth_bps:200e6 [ it ] with
  | None -> Alcotest.fail "single light item must be feasible"
  | Some r ->
      let g = List.assoc 0 r.Minmax.grants in
      Alcotest.(check bool) "bandwidth positive" true (g.Minmax.bandwidth_bps > 0.0);
      Alcotest.(check bool) "share positive" true (g.Minmax.compute_share > 0.0);
      Alcotest.(check bool) "peak respected" true (g.Minmax.bandwidth_bps <= 120e6 +. 1.0);
      Alcotest.(check bool) "share within 1" true (g.Minmax.compute_share <= 1.0 +. 1e-9)

let test_minmax_respects_capacity () =
  let items = List.init 8 (fun k -> item ~key:k ()) in
  match Minmax.solve ~bandwidth_bps:150e6 items with
  | None -> Alcotest.fail "8 light items must fit"
  | Some r ->
      let bw = List.fold_left (fun acc (_, g) -> acc +. g.Minmax.bandwidth_bps) 0.0 r.Minmax.grants in
      let sh = List.fold_left (fun acc (_, g) -> acc +. g.Minmax.compute_share) 0.0 r.Minmax.grants in
      Alcotest.(check bool) "bandwidth within AP" true (bw <= 150e6 *. 1.0001);
      Alcotest.(check bool) "shares within 1" true (sh <= 1.0001)

let test_minmax_theta_reflects_latency () =
  let items = [ item ~key:0 ~deadline:0.1 (); item ~key:1 ~deadline:0.3 () ] in
  match Minmax.solve ~bandwidth_bps:200e6 items with
  | None -> Alcotest.fail "must be feasible"
  | Some r ->
      List.iter
        (fun it ->
          let g = List.assoc it.Minmax.key r.Minmax.grants in
          let ratio = latency_of_grant it g /. it.Minmax.deadline_s in
          (* Post-solve scale-up can only improve on theta. *)
          Alcotest.(check bool)
            (Printf.sprintf "normalized latency %.3f <= theta %.3f" ratio r.Minmax.theta)
            true
            (ratio <= r.Minmax.theta +. 1e-6))
        items

let test_minmax_infeasible_offered_load () =
  (* Work demand alone: 10 items x rate 2 x 100ms of server time = 2.0 > 1. *)
  let items = List.init 10 (fun k -> item ~key:k ~work:0.1 ~rate:2.0 ()) in
  Alcotest.(check bool) "overload detected" true
    (Minmax.solve ~bandwidth_bps:1e9 items = None)

let test_minmax_infeasible_bandwidth () =
  (* 4 items x rate 2 x 8 Mbit = 64 Mbps of demand on a 10 Mbps AP. *)
  let items = List.init 4 (fun k -> item ~key:k ~bits:8e6 ~rate:2.0 ()) in
  Alcotest.(check bool) "AP overload detected" true
    (Minmax.solve ~bandwidth_bps:10e6 items = None)

let test_minmax_compute_only_item () =
  let items = [ item ~key:0 ~bits:0.0 ~work:0.02 () ] in
  match Minmax.solve ~bandwidth_bps:1e8 items with
  | None -> Alcotest.fail "compute-only item must be feasible"
  | Some r ->
      let g = List.assoc 0 r.Minmax.grants in
      Alcotest.(check (float 0.0)) "no bandwidth needed" 0.0 g.Minmax.bandwidth_bps;
      Alcotest.(check bool) "share granted" true (g.Minmax.compute_share > 0.0)

let test_minmax_transfer_only_item () =
  let items = [ item ~key:0 ~work:0.0 () ] in
  match Minmax.solve ~bandwidth_bps:1e8 items with
  | None -> Alcotest.fail "transfer-only item must be feasible"
  | Some r ->
      let g = List.assoc 0 r.Minmax.grants in
      Alcotest.(check bool) "bandwidth granted" true (g.Minmax.bandwidth_bps > 0.0);
      Alcotest.(check (float 0.0)) "no share needed" 0.0 g.Minmax.compute_share

let test_minmax_better_than_equal_split () =
  (* One heavy transfer + one heavy compute: the optimal split must beat an
     equal split on the max normalized latency. *)
  let heavy_transfer = item ~key:0 ~bits:40e6 ~work:0.001 ~deadline:0.5 ~peak:1e9 () in
  let heavy_compute = item ~key:1 ~bits:0.8e6 ~work:0.08 ~deadline:0.5 ~peak:1e9 () in
  let items = [ heavy_transfer; heavy_compute ] in
  let bandwidth = 100e6 in
  match Minmax.solve ~bandwidth_bps:bandwidth items with
  | None -> Alcotest.fail "must be feasible"
  | Some r ->
      let equal_grant =
        { Minmax.bandwidth_bps = bandwidth /. 2.0; compute_share = 0.5 }
      in
      let equal_max =
        List.fold_left
          (fun acc it ->
            Float.max acc (latency_of_grant it equal_grant /. it.Minmax.deadline_s))
          0.0 items
      in
      let opt_max =
        List.fold_left
          (fun acc it ->
            let g = List.assoc it.Minmax.key r.Minmax.grants in
            Float.max acc (latency_of_grant it g /. it.Minmax.deadline_s))
          0.0 items
      in
      Alcotest.(check bool)
        (Printf.sprintf "optimal %.4f <= equal %.4f" opt_max equal_max)
        true (opt_max <= equal_max +. 1e-6)

let prop_minmax_grants_feasible =
  qtest "grants never exceed capacity for random item sets"
    QCheck.(list_of_size (Gen.int_range 1 10) (pair (float_range 0.5 30.0) (float_range 0.001 0.03)))
    (fun specs ->
      let items =
        List.mapi
          (fun k (mbits, work) -> item ~key:k ~bits:(mbits *. 1e6) ~work ~rate:1.0 ())
          specs
      in
      match Minmax.solve ~bandwidth_bps:400e6 items with
      | None -> true (* infeasibility is a legal answer *)
      | Some r ->
          let bw =
            List.fold_left (fun acc (_, g) -> acc +. g.Minmax.bandwidth_bps) 0.0 r.Minmax.grants
          in
          let sh =
            List.fold_left (fun acc (_, g) -> acc +. g.Minmax.compute_share) 0.0 r.Minmax.grants
          in
          bw <= 400e6 *. 1.001
          && sh <= 1.001
          && List.for_all
               (fun (_, (g : Minmax.grant)) ->
                 g.Minmax.bandwidth_bps >= 0.0 && g.Minmax.compute_share >= 0.0)
               r.Minmax.grants)

let prop_minmax_brute_force_theta =
  (* Two items, one resource dimension active at a time: compare against a
     dense grid search over splits. *)
  qtest ~count:25 "theta matches a grid search within 2%"
    QCheck.(pair (float_range 2.0 30.0) (float_range 2.0 30.0))
    (fun (m1, m2) ->
      let items =
        [
          item ~key:0 ~bits:(m1 *. 1e6) ~work:0.01 ~deadline:0.2 ~peak:1e9 ~rate:0.5 ();
          item ~key:1 ~bits:(m2 *. 1e6) ~work:0.01 ~deadline:0.2 ~peak:1e9 ~rate:0.5 ();
        ]
      in
      let bandwidth = 200e6 in
      match Minmax.solve ~bandwidth_bps:bandwidth items with
      | None -> false
      | Some r ->
          (* Grid over (bandwidth fraction, share fraction) for item 0. *)
          let best = ref infinity in
          for bi = 1 to 99 do
            for si = 1 to 99 do
              let fb = float_of_int bi /. 100.0 and fs = float_of_int si /. 100.0 in
              let g0 = { Minmax.bandwidth_bps = bandwidth *. fb; compute_share = fs } in
              let g1 =
                { Minmax.bandwidth_bps = bandwidth *. (1.0 -. fb); compute_share = 1.0 -. fs }
              in
              let v =
                Float.max
                  (latency_of_grant (List.nth items 0) g0 /. 0.2)
                  (latency_of_grant (List.nth items 1) g1 /. 0.2)
              in
              if v < !best then best := v
            done
          done;
          r.Minmax.theta <= !best *. 1.02)

(* ---------- Share rules ---------- *)

let test_share_equal () =
  let items = [ item ~key:0 ~peak:1e9 (); item ~key:1 ~peak:1e9 () ] in
  let grants = Share.equal ~bandwidth_bps:100e6 items in
  List.iter
    (fun (_, (g : Minmax.grant)) ->
      Alcotest.(check (float 1e3)) "half the AP" 50e6 g.Minmax.bandwidth_bps;
      Alcotest.(check (float 1e-6)) "half the server" 0.5 g.Minmax.compute_share)
    grants

let test_share_equal_respects_peak () =
  let items = [ item ~key:0 ~peak:10e6 (); item ~key:1 ~peak:1e9 () ] in
  let grants = Share.equal ~bandwidth_bps:200e6 items in
  let g0 = List.assoc 0 grants and g1 = List.assoc 1 grants in
  Alcotest.(check bool) "capped at the radio" true (g0.Minmax.bandwidth_bps <= 10e6 +. 1.0);
  (* The spare bandwidth goes to the uncapped device. *)
  Alcotest.(check bool) "leftover redistributed" true (g1.Minmax.bandwidth_bps > 100e6)

let test_share_proportional () =
  let items = [ item ~key:0 ~bits:30e6 ~work:0.03 ~peak:1e9 (); item ~key:1 ~bits:10e6 ~work:0.01 ~peak:1e9 () ] in
  let grants = Share.proportional ~bandwidth_bps:100e6 items in
  let g0 = List.assoc 0 grants and g1 = List.assoc 1 grants in
  Alcotest.(check (float 1e4)) "3x the bandwidth" (3.0 *. g1.Minmax.bandwidth_bps)
    g0.Minmax.bandwidth_bps;
  Alcotest.(check (float 1e-6)) "3x the share" (3.0 *. g1.Minmax.compute_share)
    g0.Minmax.compute_share

let test_share_sqrt_rule () =
  (* Square-root rule: 4x the demand gets only 2x the bandwidth. *)
  let items =
    [ item ~key:0 ~bits:40e6 ~work:0.04 ~rate:1.0 ~peak:1e9 (); item ~key:1 ~bits:10e6 ~work:0.01 ~rate:1.0 ~peak:1e9 () ]
  in
  let grants = Share.sqrt_rule ~bandwidth_bps:100e6 items in
  let g0 = List.assoc 0 grants and g1 = List.assoc 1 grants in
  Alcotest.(check (float 1e4)) "2x the bandwidth" (2.0 *. g1.Minmax.bandwidth_bps)
    g0.Minmax.bandwidth_bps

let test_share_zero_demand_gets_nothing () =
  let items = [ item ~key:0 ~bits:0.0 ~work:0.01 (); item ~key:1 ~bits:8e6 ~work:0.0 () ] in
  let grants = Share.proportional ~bandwidth_bps:100e6 items in
  let g0 = List.assoc 0 grants and g1 = List.assoc 1 grants in
  Alcotest.(check (float 0.0)) "no bits, no bandwidth" 0.0 g0.Minmax.bandwidth_bps;
  Alcotest.(check (float 0.0)) "no work, no share" 0.0 g1.Minmax.compute_share;
  Alcotest.(check (float 1e-6)) "all compute to the worker" 1.0 g0.Minmax.compute_share

(* ---------- Policy / Assign ---------- *)

let cluster () = Scenario.build Scenario.default

let test_policy_decisions_cover_all_devices () =
  let c = cluster () in
  let plans = Array.map (fun (d : Cluster.device) -> Plan.server_only d.Cluster.model) c.Cluster.devices in
  let assignment = Assign.balanced_greedy c ~plans in
  match Policy.decisions Policy.Equal c ~assignment ~plans with
  | None -> Alcotest.fail "equal allocation always succeeds"
  | Some ds ->
      Alcotest.(check int) "one per device" (Cluster.n_devices c) (Array.length ds);
      (match Decision.validate c ds with Ok () -> () | Error e -> Alcotest.fail e)

let test_policy_minmax_valid () =
  (* A hand-built, comfortably feasible instance: two light devices sharing
     one GPU server over WiFi. *)
  let model = Es_dnn.Zoo.mobilenet_v2 () in
  let c =
    Cluster.make
      ~devices:
        [
          Cluster.device ~id:0 ~proc:Processor.raspberry_pi ~link:Link.wifi ~model ~rate:1.0
            ~deadline:0.3 ();
          Cluster.device ~id:1 ~proc:Processor.smartphone ~link:Link.wifi ~model ~rate:1.0
            ~deadline:0.3 ();
        ]
      ~servers:[ Cluster.server ~id:0 ~proc:Processor.edge_gpu ~ap_bandwidth_mbps:300.0 () ]
  in
  let plans =
    Array.map
      (fun (d : Cluster.device) ->
        Plan.make ~cut:(Es_dnn.Graph.n_nodes d.Cluster.model / 2) d.Cluster.model)
      c.Cluster.devices
  in
  let assignment = Assign.balanced_greedy c ~plans in
  match Policy.decisions Policy.Minmax_alloc c ~assignment ~plans with
  | None -> Alcotest.fail "minmax should allocate this feasible instance"
  | Some ds -> (
      match Decision.validate c ds with Ok () -> () | Error e -> Alcotest.fail e)

let test_policy_device_only_plans_get_no_grants () =
  let c = cluster () in
  let plans = Array.map (fun (d : Cluster.device) -> Plan.device_only d.Cluster.model) c.Cluster.devices in
  let assignment = Array.make (Cluster.n_devices c) 0 in
  match Policy.decisions Policy.Minmax_alloc c ~assignment ~plans with
  | None -> Alcotest.fail "all-local allocation is trivially feasible"
  | Some ds ->
      Array.iter
        (fun (d : Decision.t) ->
          Alcotest.(check (float 0.0)) "no bandwidth" 0.0 d.Decision.bandwidth_bps;
          Alcotest.(check (float 0.0)) "no share" 0.0 d.Decision.compute_share)
        ds

let test_assign_balanced_greedy_spreads () =
  let c = cluster () in
  let plans = Array.map (fun (d : Cluster.device) -> Plan.server_only d.Cluster.model) c.Cluster.devices in
  let assignment = Assign.balanced_greedy c ~plans in
  let counts = Array.make (Cluster.n_servers c) 0 in
  Array.iter (fun s -> counts.(s) <- counts.(s) + 1) assignment;
  Array.iter
    (fun n -> Alcotest.(check bool) "both servers used" true (n > 0))
    counts

let test_local_search_improves () =
  (* Synthetic eval: server imbalance; local search must reach balance. *)
  let eval a =
    let c0 = Array.fold_left (fun acc s -> if s = 0 then acc + 1 else acc) 0 a in
    let c1 = Array.length a - c0 in
    Float.abs (float_of_int (c0 - c1))
  in
  let skewed = Array.make 10 0 in
  let result = Assign.local_search ~n_servers:2 ~eval skewed in
  Alcotest.(check (float 0.0)) "balanced" 0.0 (eval result);
  Alcotest.(check bool) "input untouched" true (Array.for_all (fun s -> s = 0) skewed)

(* ---------- Admission ---------- *)

(* A cluster whose full-offload load no allocation can stabilize. *)
let overloaded_cluster () =
  let model = Es_dnn.Zoo.resnet50 () in
  let devices =
    List.init 6 (fun i ->
        Cluster.device ~id:i ~proc:Processor.raspberry_pi ~link:Link.wifi ~model
          ~rate:(if i = 0 then 0.2 else 4.0)
          ~deadline:0.3 ())
  in
  Cluster.make ~devices
    ~servers:[ Cluster.server ~id:0 ~proc:Processor.edge_cpu ~ap_bandwidth_mbps:60.0 () ]

let admission_setup () =
  let c = overloaded_cluster () in
  let plans =
    Array.map (fun (d : Cluster.device) -> Plan.server_only d.Cluster.model) c.Cluster.devices
  in
  let assignment = Array.make (Cluster.n_devices c) 0 in
  (c, plans, assignment)

let test_admission_needed () =
  let c, plans, assignment = admission_setup () in
  Alcotest.(check bool) "instance is indeed infeasible" true
    (Policy.decisions Policy.Minmax_alloc c ~assignment ~plans = None)

let test_admission_serves_a_stable_subset () =
  let c, plans, assignment = admission_setup () in
  let local_plan i = Plan.device_only c.Cluster.devices.(i).Cluster.model in
  let out = Admission.control ~local_plan c ~assignment ~plans in
  Alcotest.(check bool) "someone rejected" true (out.Admission.rejected <> []);
  Alcotest.(check bool) "someone served" true (out.Admission.served <> []);
  Alcotest.(check int) "served + rejected = devices" (Cluster.n_devices c)
    (List.length out.Admission.served + List.length out.Admission.rejected);
  (match Decision.validate c out.Admission.decisions with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* Served devices' grants are stable; rejected ones run locally. *)
  List.iter
    (fun i ->
      Alcotest.(check bool) "served stable" true
        (Latency.device_stable c out.Admission.decisions.(i)))
    out.Admission.served;
  List.iter
    (fun i ->
      Alcotest.(check bool) "rejected are local" false
        (Decision.offloads out.Admission.decisions.(i)))
    out.Admission.rejected

let test_admission_weight_protects () =
  let c, plans, assignment = admission_setup () in
  let local_plan i = Plan.device_only c.Cluster.devices.(i).Cluster.model in
  (* Give device 1 enormous value: it must survive eviction. *)
  let weight (d : Cluster.device) = if d.Cluster.dev_id = 1 then 1e6 else 1.0 in
  let out = Admission.control ~weight ~local_plan c ~assignment ~plans in
  Alcotest.(check bool) "high-value device kept" true (List.mem 1 out.Admission.served)

let test_admission_noop_when_feasible () =
  let model = Es_dnn.Zoo.mobilenet_v2 () in
  let c =
    Cluster.make
      ~devices:
        [
          Cluster.device ~id:0 ~proc:Processor.raspberry_pi ~link:Link.wifi ~model ~rate:1.0
            ~deadline:0.3 ();
        ]
      ~servers:[ Cluster.server ~id:0 ~proc:Processor.edge_gpu ~ap_bandwidth_mbps:300.0 () ]
  in
  let plans = [| Plan.server_only model |] in
  let out =
    Admission.control ~local_plan:(fun _ -> Plan.device_only model) c
      ~assignment:[| 0 |] ~plans
  in
  Alcotest.(check (list int)) "nobody rejected" [] out.Admission.rejected;
  Alcotest.(check (list int)) "device served" [ 0 ] out.Admission.served

let test_admission_rejects_bad_local_plan () =
  let c, plans, assignment = admission_setup () in
  Alcotest.check_raises "local_plan must be device-only"
    (Invalid_argument "Admission.control: local_plan must be device-only") (fun () ->
      ignore
        (Admission.control
           ~local_plan:(fun i -> Plan.server_only c.Cluster.devices.(i).Cluster.model)
           c ~assignment ~plans))

(* ---------- Token bucket ---------- *)

let test_bucket_drains_and_refills () =
  let b = Admission.Token_bucket.create ~rate:2.0 ~burst:4.0 () in
  Alcotest.(check (float 1e-12)) "starts full" 4.0 (Admission.Token_bucket.tokens b ~now:0.0);
  for _ = 1 to 4 do
    Alcotest.(check bool) "burst admits" true (Admission.Token_bucket.try_take b ~now:0.0)
  done;
  Alcotest.(check bool) "empty bucket refuses" false
    (Admission.Token_bucket.try_take b ~now:0.0);
  (* 0.5 s at 2 tokens/s buys exactly one request. *)
  Alcotest.(check bool) "refill admits again" true
    (Admission.Token_bucket.try_take b ~now:0.5);
  Alcotest.(check bool) "but only once" false (Admission.Token_bucket.try_take b ~now:0.5);
  (* A long idle period clamps at the burst, not rate x elapsed. *)
  Alcotest.(check (float 1e-12)) "refill clamps at burst" 4.0
    (Admission.Token_bucket.tokens b ~now:1000.0)

let test_bucket_set_rate_and_cost () =
  let b = Admission.Token_bucket.create ~initial:0.0 ~rate:1.0 ~burst:10.0 () in
  Alcotest.(check (float 1e-12)) "explicit initial" 0.0
    (Admission.Token_bucket.tokens b ~now:0.0);
  (* Settle the accrued tokens at t=2 (2 tokens), then switch to 4/s:
     by t=3 the bucket holds 2 + 4 = 6. *)
  Admission.Token_bucket.set_rate b ~now:2.0 4.0;
  Alcotest.(check (float 1e-12)) "rate change applies forward only" 6.0
    (Admission.Token_bucket.tokens b ~now:3.0);
  Alcotest.(check bool) "weighted cost takes multiple tokens" true
    (Admission.Token_bucket.try_take ~cost:6.0 b ~now:3.0);
  Alcotest.(check bool) "drained by the weighted take" false
    (Admission.Token_bucket.try_take ~cost:0.5 b ~now:3.0);
  Alcotest.(check (float 1e-12)) "rate getter" 4.0 (Admission.Token_bucket.rate b);
  Alcotest.(check (float 1e-12)) "burst getter" 10.0 (Admission.Token_bucket.burst b)

let test_bucket_deterministic_sampling () =
  (* Lazy refill is a pure function of elapsed time: polling the bucket at
     different granularities must admit exactly the same request times. *)
  let admits step =
    let b = Admission.Token_bucket.create ~initial:1.0 ~rate:0.5 ~burst:2.0 () in
    let out = ref [] in
    let t = ref 0.0 in
    while !t < 20.0 do
      if Admission.Token_bucket.try_take b ~now:!t then out := !t :: !out;
      t := !t +. step
    done;
    List.rev !out
  in
  (* Coarser polling is a subset sampled at the same token schedule: at
     matching instants the two agree. *)
  let fine = admits 0.5 and coarse = admits 2.5 in
  List.iter
    (fun tc ->
      Alcotest.(check bool)
        (Printf.sprintf "admit at %.1f agrees across sampling rates" tc)
        true
        (List.exists (fun tf -> Float.abs (tf -. tc) < 1.25) fine))
    coarse

let test_bucket_rejects_bad_params () =
  let raises f =
    match
      try
        ignore (f ());
        `No_raise
      with Invalid_argument _ -> `Raised
    with
    | `Raised -> ()
    | `No_raise -> Alcotest.fail "bad bucket parameter accepted"
  in
  raises (fun () -> Admission.Token_bucket.create ~rate:(-1.0) ~burst:5.0 ());
  raises (fun () -> Admission.Token_bucket.create ~rate:1.0 ~burst:0.0 ());
  raises (fun () -> Admission.Token_bucket.create ~rate:Float.nan ~burst:5.0 ());
  let b = Admission.Token_bucket.create ~rate:1.0 ~burst:5.0 () in
  raises (fun () -> Admission.Token_bucket.set_rate b ~now:0.0 Float.infinity)

(* ---------- Flat scratch-buffer solver vs the record/closure oracle ---------- *)

(* Bit-pattern equality: stricter than (=), which conflates 0.0 and -0.0. *)
let feq a b = Int64.bits_of_float a = Int64.bits_of_float b

let grants_eq a b =
  List.length a = List.length b
  && List.for_all2
       (fun (k, (g : Minmax.grant)) (k', (g' : Minmax.grant)) ->
         k = k'
         && feq g.Minmax.bandwidth_bps g'.Minmax.bandwidth_bps
         && feq g.Minmax.compute_share g'.Minmax.compute_share)
       a b

(* Server bandwidth plus up to 7 items; the 0.0 lower bounds on bits and
   work deliberately hit the transfer-only / compute-only special cases,
   and fixed_s close to deadline_s probes the infeasible-theta growth
   path. *)
let arb_instance =
  QCheck.(
    pair
      (float_range 1e7 3e8)
      (list_of_size (Gen.int_range 0 7)
         (pair
            (quad (float_range 0.0 0.05) (float_range 0.0 2e7) (float_range 0.0 0.05)
               (float_range 0.05 0.3))
            (pair (float_range 0.2 5.0) (float_range 2e7 1.5e8)))))

let items_of specs =
  List.mapi
    (fun i ((fixed, bits, work, deadline), (rate, peak)) ->
      item ~key:i ~fixed ~bits ~work ~deadline ~peak ~rate ())
    specs

let solve_agrees ?stability_margin ?tol (bandwidth_bps, specs) =
  let items = items_of specs in
  match
    ( Minmax.solve ?stability_margin ?tol ~bandwidth_bps items,
      Minmax.solve_ref ?stability_margin ?tol ~bandwidth_bps items )
  with
  | None, None -> true
  | Some r, Some r' ->
      feq r.Minmax.theta r'.Minmax.theta && grants_eq r.Minmax.grants r'.Minmax.grants
  | _ -> false

let prop_minmax_flat_matches_oracle =
  qtest ~count:300 "flat scratch solve = record/closure solve (bit-exact)" arb_instance
    (fun inst -> solve_agrees inst)

let prop_minmax_flat_matches_oracle_tight =
  qtest ~count:150 "flat = oracle under non-default margin and tolerance" arb_instance
    (fun inst -> solve_agrees ~stability_margin:0.85 ~tol:1e-5 inst)

let prop_share_rules_match_oracle =
  qtest ~count:200 "share rules = their _ref oracles (bit-exact)" arb_instance
    (fun (bandwidth_bps, specs) ->
      let items = items_of specs in
      let w (it : Minmax.item) = it.Minmax.bits +. 1.0 in
      grants_eq (Share.equal ~bandwidth_bps items) (Share.equal_ref ~bandwidth_bps items)
      && grants_eq
           (Share.proportional ~bandwidth_bps items)
           (Share.proportional_ref ~bandwidth_bps items)
      && grants_eq
           (Share.sqrt_rule ~bandwidth_bps items)
           (Share.sqrt_rule_ref ~bandwidth_bps items)
      && grants_eq
           (Share.sqrt_rule ~weights:w ~bandwidth_bps items)
           (Share.sqrt_rule_ref ~weights:w ~bandwidth_bps items))

let () =
  Alcotest.run "es_alloc"
    [
      ( "minmax",
        [
          Alcotest.test_case "empty" `Quick test_minmax_empty;
          Alcotest.test_case "single item" `Quick test_minmax_single_item;
          Alcotest.test_case "capacity" `Quick test_minmax_respects_capacity;
          Alcotest.test_case "theta vs latency" `Quick test_minmax_theta_reflects_latency;
          Alcotest.test_case "infeasible compute" `Quick test_minmax_infeasible_offered_load;
          Alcotest.test_case "infeasible bandwidth" `Quick test_minmax_infeasible_bandwidth;
          Alcotest.test_case "compute-only item" `Quick test_minmax_compute_only_item;
          Alcotest.test_case "transfer-only item" `Quick test_minmax_transfer_only_item;
          Alcotest.test_case "beats equal split" `Quick test_minmax_better_than_equal_split;
          prop_minmax_grants_feasible;
          prop_minmax_brute_force_theta;
          prop_minmax_flat_matches_oracle;
          prop_minmax_flat_matches_oracle_tight;
        ] );
      ( "share",
        [
          Alcotest.test_case "equal" `Quick test_share_equal;
          Alcotest.test_case "equal respects peak" `Quick test_share_equal_respects_peak;
          Alcotest.test_case "proportional" `Quick test_share_proportional;
          Alcotest.test_case "sqrt rule" `Quick test_share_sqrt_rule;
          Alcotest.test_case "zero demand" `Quick test_share_zero_demand_gets_nothing;
          prop_share_rules_match_oracle;
        ] );
      ( "admission",
        [
          Alcotest.test_case "instance infeasible" `Quick test_admission_needed;
          Alcotest.test_case "stable subset" `Quick test_admission_serves_a_stable_subset;
          Alcotest.test_case "weights protect" `Quick test_admission_weight_protects;
          Alcotest.test_case "noop when feasible" `Quick test_admission_noop_when_feasible;
          Alcotest.test_case "bad local plan" `Quick test_admission_rejects_bad_local_plan;
        ] );
      ( "token-bucket",
        [
          Alcotest.test_case "drains and refills" `Quick test_bucket_drains_and_refills;
          Alcotest.test_case "set_rate and cost" `Quick test_bucket_set_rate_and_cost;
          Alcotest.test_case "deterministic sampling" `Quick test_bucket_deterministic_sampling;
          Alcotest.test_case "rejects bad params" `Quick test_bucket_rejects_bad_params;
        ] );
      ( "policy+assign",
        [
          Alcotest.test_case "decisions cover devices" `Quick test_policy_decisions_cover_all_devices;
          Alcotest.test_case "minmax validates" `Quick test_policy_minmax_valid;
          Alcotest.test_case "local plans unresourced" `Quick test_policy_device_only_plans_get_no_grants;
          Alcotest.test_case "greedy spreads" `Quick test_assign_balanced_greedy_spreads;
          Alcotest.test_case "local search improves" `Quick test_local_search_improves;
        ] );
    ]
