open Es_dnn
open Es_surgery
open Es_edge

let resnet18 = Zoo.resnet18 ()

(* ---------- Engine ---------- *)

let test_engine_ordering () =
  let e = Es_sim.Engine.create () in
  let log = ref [] in
  Es_sim.Engine.schedule e 3.0 (fun () -> log := "c" :: !log);
  Es_sim.Engine.schedule e 1.0 (fun () -> log := "a" :: !log);
  Es_sim.Engine.schedule e 2.0 (fun () -> log := "b" :: !log);
  Es_sim.Engine.run e;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check (float 0.0)) "clock at last event" 3.0 (Es_sim.Engine.now e)

let test_engine_same_time_fifo () =
  let e = Es_sim.Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Es_sim.Engine.schedule e 1.0 (fun () -> log := i :: !log)
  done;
  Es_sim.Engine.run e;
  Alcotest.(check (list int)) "insertion order on ties" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_until () =
  let e = Es_sim.Engine.create () in
  let fired = ref 0 in
  Es_sim.Engine.schedule e 1.0 (fun () -> incr fired);
  Es_sim.Engine.schedule e 10.0 (fun () -> incr fired);
  Es_sim.Engine.run ~until:5.0 e;
  Alcotest.(check int) "only events before the horizon" 1 !fired;
  Alcotest.(check (float 0.0)) "clock stops at the horizon" 5.0 (Es_sim.Engine.now e);
  Alcotest.(check int) "late event still pending" 1 (Es_sim.Engine.pending e)

let test_engine_nested_scheduling () =
  let e = Es_sim.Engine.create () in
  let times = ref [] in
  Es_sim.Engine.schedule e 1.0 (fun () ->
      times := Es_sim.Engine.now e :: !times;
      Es_sim.Engine.schedule e 0.5 (fun () -> times := Es_sim.Engine.now e :: !times));
  Es_sim.Engine.run e;
  Alcotest.(check (list (float 1e-12))) "nested event at 1.5" [ 1.0; 1.5 ] (List.rev !times);
  Alcotest.check_raises "negative delay" (Invalid_argument "Engine.schedule: negative delay")
    (fun () -> Es_sim.Engine.schedule e (-1.0) (fun () -> ()))

(* Both backends must process the same program identically: same callback
   order (including ties and events scheduled from inside a pop at the
   current instant — the PR-3 fault-before-reconfig ordering relies on
   this), same clock trajectory, same stats. *)
let test_engine_backends_equivalent () =
  let run backend =
    let e = Es_sim.Engine.create ~backend () in
    let log = ref [] in
    let note tag = log := (tag, Es_sim.Engine.now e) :: !log in
    for i = 1 to 5 do
      Es_sim.Engine.schedule e 1.0 (fun () ->
          note i;
          (* schedule-during-pop: a same-instant event joins the tie run
             being drained, and a far-future jump stresses the calendar's
             direct-search fallback *)
          Es_sim.Engine.schedule e 0.0 (fun () -> note (10 + i));
          if i = 3 then Es_sim.Engine.schedule e 1e6 (fun () -> note 99))
    done;
    Es_sim.Engine.run e;
    (List.rev !log, Es_sim.Engine.stats e)
  in
  let log_h, st_h = run Es_sim.Engine.Heap in
  let log_c, st_c = run Es_sim.Engine.Calendar in
  Alcotest.(check bool) "same event log" true (log_h = log_c);
  Alcotest.(check int) "same event count" st_h.Es_sim.Engine.events_processed
    st_c.Es_sim.Engine.events_processed;
  Alcotest.(check int) "same max pending" st_h.Es_sim.Engine.max_pending
    st_c.Es_sim.Engine.max_pending;
  Alcotest.(check int) "both drained" st_h.Es_sim.Engine.pending
    st_c.Es_sim.Engine.pending

let test_engine_stats () =
  let e = Es_sim.Engine.create () in
  let st0 = Es_sim.Engine.stats e in
  Alcotest.(check int) "no events yet" 0 st0.Es_sim.Engine.events_processed;
  Alcotest.(check int) "nothing pending" 0 st0.Es_sim.Engine.pending;
  for i = 1 to 3 do
    Es_sim.Engine.schedule e (float_of_int i) (fun () -> ())
  done;
  let st1 = Es_sim.Engine.stats e in
  Alcotest.(check int) "pending counts pushes" 3 st1.Es_sim.Engine.pending;
  Alcotest.(check int) "max_pending high-water" 3 st1.Es_sim.Engine.max_pending;
  Es_sim.Engine.run e;
  let st2 = Es_sim.Engine.stats e in
  Alcotest.(check int) "all processed" 3 st2.Es_sim.Engine.events_processed;
  Alcotest.(check int) "drained" 0 st2.Es_sim.Engine.pending;
  Alcotest.(check int) "high-water sticks" 3 st2.Es_sim.Engine.max_pending

(* ---------- Station ---------- *)

let test_station_fifo_service () =
  let e = Es_sim.Engine.create () in
  let st = Es_sim.Station.create e ~speed:2.0 () in
  let finish = ref [] in
  (* Two jobs of 4 units at speed 2: first done at t=2, second at t=4. *)
  ignore (Es_sim.Station.submit st ~work:4.0 (fun () -> finish := Es_sim.Engine.now e :: !finish));
  ignore (Es_sim.Station.submit st ~work:4.0 (fun () -> finish := Es_sim.Engine.now e :: !finish));
  Es_sim.Engine.run e;
  Alcotest.(check (list (float 1e-12))) "sequential service" [ 2.0; 4.0 ] (List.rev !finish);
  Alcotest.(check (float 1e-12)) "busy time" 4.0 (Es_sim.Station.busy_time st);
  Alcotest.(check int) "completed" 2 (Es_sim.Station.completed st)

let test_station_capacity_drops () =
  let e = Es_sim.Engine.create () in
  let st = Es_sim.Station.create e ~capacity:2 ~speed:1.0 () in
  let accepted = ref 0 in
  for _ = 1 to 5 do
    if Es_sim.Station.submit st ~work:1.0 (fun () -> ()) then incr accepted
  done;
  Alcotest.(check int) "capacity bounds admission" 2 !accepted;
  Alcotest.(check int) "drops counted" 3 (Es_sim.Station.dropped st);
  Es_sim.Engine.run e

let test_station_speed_change () =
  let e = Es_sim.Engine.create () in
  let st = Es_sim.Station.create e ~speed:1.0 () in
  let finish = ref 0.0 in
  ignore (Es_sim.Station.submit st ~work:1.0 (fun () -> ()));
  (* Queued job starts after the first completes; speed doubles meanwhile. *)
  ignore (Es_sim.Station.submit st ~work:1.0 (fun () -> finish := Es_sim.Engine.now e));
  Es_sim.Engine.schedule e 0.5 (fun () -> Es_sim.Station.set_speed st 2.0);
  Es_sim.Engine.run e;
  Alcotest.(check (float 1e-12)) "second job served at the new speed" 1.5 !finish

let test_station_zero_work () =
  let e = Es_sim.Engine.create () in
  let st = Es_sim.Station.create e ~speed:1.0 () in
  let done_ = ref false in
  ignore (Es_sim.Station.submit st ~work:0.0 (fun () -> done_ := true));
  Es_sim.Engine.run e;
  Alcotest.(check bool) "zero work completes" true !done_

let qtest ?(count = 60) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

let prop_engine_time_monotone =
  qtest "events fire in nondecreasing time order"
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range 0.0 100.0))
    (fun delays ->
      let e = Es_sim.Engine.create () in
      let last = ref neg_infinity in
      let ok = ref true in
      List.iter
        (fun d ->
          Es_sim.Engine.schedule e d (fun () ->
              if Es_sim.Engine.now e < !last then ok := false;
              last := Es_sim.Engine.now e))
        delays;
      Es_sim.Engine.run e;
      !ok)

let prop_station_busy_conserved =
  qtest "station busy time equals the sum of service times"
    QCheck.(list_of_size (Gen.int_range 1 30) (float_range 0.01 5.0))
    (fun works ->
      let e = Es_sim.Engine.create () in
      let st = Es_sim.Station.create e ~speed:2.0 () in
      List.iter (fun w -> ignore (Es_sim.Station.submit st ~work:w (fun () -> ()))) works;
      Es_sim.Engine.run e;
      let expected = List.fold_left (fun acc w -> acc +. (w /. 2.0)) 0.0 works in
      Float.abs (Es_sim.Station.busy_time st -. expected) < 1e-9
      && Es_sim.Station.completed st = List.length works)

(* ---------- Batcher ---------- *)

let test_batcher_window_launch () =
  let e = Es_sim.Engine.create () in
  let b = Es_sim.Batcher.create e ~max_batch:8 ~window_s:0.01 ~alpha:0.5 ~speed:1.0 () in
  let finish = ref 0.0 in
  Es_sim.Batcher.submit b ~work:0.1 (fun () -> finish := Es_sim.Engine.now e);
  Es_sim.Engine.run e;
  (* Lone job: waits out the window, then runs at eff(1) = 1. *)
  Alcotest.(check (float 1e-9)) "window + work" 0.11 !finish;
  Alcotest.(check int) "one batch" 1 (Es_sim.Batcher.batches b)

let test_batcher_full_batch_immediate () =
  let e = Es_sim.Engine.create () in
  let b = Es_sim.Batcher.create e ~max_batch:4 ~window_s:10.0 ~alpha:0.5 ~speed:1.0 () in
  let finish = ref [] in
  for _ = 1 to 4 do
    Es_sim.Batcher.submit b ~work:0.1 (fun () -> finish := Es_sim.Engine.now e :: !finish)
  done;
  Es_sim.Engine.run e;
  (* Full batch: no window wait; 4 x 0.1 work at eff(4) = 0.5 + 0.5/4. *)
  let expected = 0.4 *. (0.5 +. (0.5 /. 4.0)) in
  List.iter (fun t -> Alcotest.(check (float 1e-9)) "batch completion" expected t) !finish;
  Alcotest.(check int) "all completed" 4 (Es_sim.Batcher.completed b);
  Alcotest.(check int) "single batch" 1 (Es_sim.Batcher.batches b)

let test_batcher_beats_sequential_under_load () =
  (* 16 equal jobs: batched total busy time must be well below sequential. *)
  let e = Es_sim.Engine.create () in
  let b = Es_sim.Batcher.create e ~max_batch:8 ~window_s:0.001 ~alpha:0.7 ~speed:1.0 () in
  let last = ref 0.0 in
  for _ = 1 to 16 do
    Es_sim.Batcher.submit b ~work:0.05 (fun () -> last := Es_sim.Engine.now e)
  done;
  Es_sim.Engine.run e;
  let sequential = 16.0 *. 0.05 in
  Alcotest.(check bool)
    (Printf.sprintf "makespan %.3f < sequential %.3f" !last sequential)
    true (!last < sequential);
  Alcotest.(check int) "two batches of 8" 2 (Es_sim.Batcher.batches b)

let test_batcher_mid_batch_arrivals_wait () =
  let e = Es_sim.Engine.create () in
  let b = Es_sim.Batcher.create e ~max_batch:2 ~window_s:0.001 ~alpha:0.0 ~speed:1.0 () in
  let times = ref [] in
  Es_sim.Batcher.submit b ~work:1.0 (fun () -> times := Es_sim.Engine.now e :: !times);
  Es_sim.Batcher.submit b ~work:1.0 (fun () -> times := Es_sim.Engine.now e :: !times);
  (* Arrives while the first batch is running. *)
  Es_sim.Engine.schedule e 0.5 (fun () ->
      Es_sim.Batcher.submit b ~work:1.0 (fun () -> times := Es_sim.Engine.now e :: !times));
  Es_sim.Engine.run e;
  match List.rev !times with
  | [ t1; t2; t3 ] ->
      Alcotest.(check (float 1e-9)) "first batch (alpha=0: no speedup)" 2.0 t1;
      Alcotest.(check (float 1e-9)) "first batch peer" 2.0 t2;
      Alcotest.(check bool) "straggler served after" true (t3 > 2.0);
      Alcotest.(check int) "two batches" 2 (Es_sim.Batcher.batches b)
  | l -> Alcotest.fail (Printf.sprintf "expected 3 completions, got %d" (List.length l))

let test_runner_batching_mode () =
  let c = Scenario.build Scenario.default in
  let ds = Es_baselines.Baselines.server_only.Es_baselines.Baselines.solve c in
  let batching = { Es_sim.Runner.max_batch = 8; window_s = 0.002; alpha = 0.7 } in
  let r =
    Es_sim.Runner.run
      ~options:{ Es_sim.Runner.default_options with batching = Some batching }
      c ds
  in
  Alcotest.(check int) "conservation holds under batching" r.Es_sim.Metrics.total_generated
    (r.Es_sim.Metrics.total_completed + r.Es_sim.Metrics.total_dropped);
  Alcotest.(check bool) "requests completed" true (r.Es_sim.Metrics.total_completed > 0)

(* ---------- Runner ---------- *)

let one_device_cluster () =
  Cluster.make
    ~devices:
      [
        Cluster.device ~id:0 ~proc:Processor.raspberry_pi ~link:Link.wifi ~model:resnet18
          ~rate:0.2 ~deadline:0.5 ();
      ]
    ~servers:[ Cluster.server ~id:0 ~proc:Processor.edge_gpu ~ap_bandwidth_mbps:200.0 () ]

let spaced_arrivals = [| (6.0, 0); (20.0, 0); (34.0, 0); (48.0, 0) |]

let test_runner_matches_analytic_when_uncontended () =
  (* Arrivals spaced far beyond the service time never overlap: simulated
     latency must equal the analytic model exactly (no fading, no jitter). *)
  let c = one_device_cluster () in
  let plan = Plan.make ~cut:(Graph.n_nodes resnet18 / 2) resnet18 in
  let d = Decision.make ~device:0 ~server:0 ~plan ~bandwidth_bps:50e6 ~compute_share:0.8 () in
  let analytic = Latency.of_decision c [| d |].(0) in
  let report = Es_sim.Runner.run ~arrivals:spaced_arrivals c [| d |] in
  Alcotest.(check int) "collected samples" 4 (Array.length report.Es_sim.Metrics.latencies);
  Array.iter
    (fun l -> Alcotest.(check (float 1e-6)) "sim = analytic" analytic l)
    report.Es_sim.Metrics.latencies

let test_runner_device_only_matches_analytic () =
  let c = one_device_cluster () in
  let d = Decision.make ~device:0 ~server:0 ~plan:(Plan.device_only resnet18) () in
  let analytic = Latency.of_decision c d in
  let report = Es_sim.Runner.run ~arrivals:spaced_arrivals c [| d |] in
  Array.iter
    (fun l -> Alcotest.(check (float 1e-6)) "sim = analytic" analytic l)
    report.Es_sim.Metrics.latencies

let test_runner_deterministic () =
  let c = Scenario.build Scenario.default in
  let ds = Es_baselines.Baselines.neurosurgeon.Es_baselines.Baselines.solve c in
  let r1 = Es_sim.Runner.run c ds and r2 = Es_sim.Runner.run c ds in
  Alcotest.(check int) "same generated" r1.Es_sim.Metrics.total_generated
    r2.Es_sim.Metrics.total_generated;
  Alcotest.(check (float 1e-12)) "same mean" r1.Es_sim.Metrics.mean_latency_s
    r2.Es_sim.Metrics.mean_latency_s

let test_runner_conservation () =
  let c = Scenario.build Scenario.default in
  let ds = Es_baselines.Baselines.server_only.Es_baselines.Baselines.solve c in
  let r = Es_sim.Runner.run c ds in
  Alcotest.(check int) "every generated request completes or drops"
    r.Es_sim.Metrics.total_generated
    (r.Es_sim.Metrics.total_completed + r.Es_sim.Metrics.total_dropped);
  Alcotest.(check bool) "dsr within [0,1]" true
    (r.Es_sim.Metrics.dsr >= 0.0 && r.Es_sim.Metrics.dsr <= 1.0);
  Array.iter
    (fun u -> Alcotest.(check bool) "utilization sane" true (u >= 0.0 && u <= 1.05))
    r.Es_sim.Metrics.server_utilization

let test_runner_queueing_appears_under_load () =
  (* One busy device: at 80% load the queueing delay must push the mean
     above the uncontended service time. *)
  let c =
    Cluster.make
      ~devices:
        [
          Cluster.device ~id:0 ~proc:Processor.raspberry_pi ~link:Link.wifi ~model:resnet18
            ~rate:4.0 ~deadline:1.0 ();
        ]
      ~servers:[ Cluster.server ~id:0 ~proc:Processor.edge_gpu ~ap_bandwidth_mbps:200.0 () ]
  in
  let plan = Plan.server_only resnet18 in
  let d = Decision.make ~device:0 ~server:0 ~plan ~bandwidth_bps:30e6 ~compute_share:1.0 () in
  let service = Latency.of_decision c d in
  let r =
    Es_sim.Runner.run ~options:{ Es_sim.Runner.default_options with duration_s = 200.0 } c [| d |]
  in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.1fms > service %.1fms" (1000. *. r.Es_sim.Metrics.mean_latency_s)
       (1000. *. service))
    true
    (r.Es_sim.Metrics.mean_latency_s > service *. 1.05)

let test_runner_golden_bit_identity () =
  (* Fault-free regression pin: the exact report the pre-fault simulator
     produced for Neurosurgeon on the default scenario (duration 60, seed 7).
     Equality is at zero tolerance — any change to the event stream, RNG
     draw order, or float arithmetic on the no-faults path shows up here. *)
  let c = Scenario.build Scenario.default in
  let ds = Es_baselines.Baselines.neurosurgeon.Es_baselines.Baselines.solve c in
  let r = Es_sim.Runner.run c ds in
  Alcotest.(check int) "generated" 1636 r.Es_sim.Metrics.total_generated;
  Alcotest.(check int) "completed" 1636 r.Es_sim.Metrics.total_completed;
  Alcotest.(check int) "dropped" 0 r.Es_sim.Metrics.total_dropped;
  Alcotest.(check int) "degraded" 0 r.Es_sim.Metrics.total_degraded;
  Alcotest.(check int) "timed out" 0 r.Es_sim.Metrics.total_timed_out;
  Alcotest.(check (float 0.0)) "dsr" 0.9193154034229829 r.Es_sim.Metrics.dsr;
  Alcotest.(check (float 0.0)) "mean" 0.11612828338427551 r.Es_sim.Metrics.mean_latency_s;
  Alcotest.(check (float 0.0)) "p99" 0.40194546086112665 r.Es_sim.Metrics.p99_s

let test_runner_queue_capacity_drops () =
  let c =
    Cluster.make
      ~devices:
        [
          Cluster.device ~id:0 ~proc:Processor.iot_board ~link:Link.wifi ~model:resnet18
            ~rate:20.0 ~deadline:0.2 ();
        ]
      ~servers:[ Cluster.server ~id:0 ~proc:Processor.edge_cpu ~ap_bandwidth_mbps:50.0 () ]
  in
  (* Device-only full resnet18 on an IoT board at 20 req/s: hopeless. *)
  let d = Decision.make ~device:0 ~server:0 ~plan:(Plan.device_only resnet18) () in
  let r =
    Es_sim.Runner.run
      ~options:
        { Es_sim.Runner.default_options with duration_s = 20.0; queue_capacity = Some 5 }
      c [| d |]
  in
  Alcotest.(check bool) "overload drops requests" true (r.Es_sim.Metrics.total_dropped > 0);
  (* Exact accounting: every generated request is either completed or
     dropped — capacity rejections must not leak out of the ledger. *)
  Alcotest.(check int) "drop accounting is exact" r.Es_sim.Metrics.total_generated
    (r.Es_sim.Metrics.total_completed + r.Es_sim.Metrics.total_dropped);
  let per = r.Es_sim.Metrics.per_device.(0) in
  Alcotest.(check int) "per-device ledger matches totals" per.Es_sim.Metrics.generated
    (per.Es_sim.Metrics.completed + per.Es_sim.Metrics.dropped)

let test_runner_fading_slows_transfers () =
  let c = one_device_cluster () in
  let plan = Plan.server_only resnet18 in
  let d = Decision.make ~device:0 ~server:0 ~plan ~bandwidth_bps:50e6 ~compute_share:0.9 () in
  let base = Es_sim.Runner.run c [| d |] in
  let faded =
    Es_sim.Runner.run ~options:{ Es_sim.Runner.default_options with fading = true } c [| d |]
  in
  Alcotest.(check bool) "fading increases mean latency" true
    (faded.Es_sim.Metrics.mean_latency_s > base.Es_sim.Metrics.mean_latency_s)

let test_runner_explicit_arrivals () =
  let c = one_device_cluster () in
  let d = Decision.make ~device:0 ~server:0 ~plan:(Plan.device_only resnet18) () in
  let arrivals = [| (6.0, 0); (7.0, 0); (8.0, 0) |] in
  let r = Es_sim.Runner.run ~arrivals c [| d |] in
  Alcotest.(check int) "exactly the trace" 3 r.Es_sim.Metrics.total_generated

let test_runner_reconfigure_changes_plan () =
  (* Device-only until t=30, then full offload: post-switch requests must be
     faster on this weak device. *)
  let c = one_device_cluster () in
  let local = Decision.make ~device:0 ~server:0 ~plan:(Plan.device_only resnet18) () in
  let remote =
    Decision.make ~device:0 ~server:0 ~plan:(Plan.server_only resnet18) ~bandwidth_bps:80e6
      ~compute_share:0.9 ()
  in
  let arrivals = [| (10.0, 0); (40.0, 0) |] in
  let r =
    Es_sim.Runner.run ~arrivals ~reconfigure:[ (30.0, [| remote |]) ]
      ~options:{ Es_sim.Runner.default_options with duration_s = 60.0; warmup_s = 0.0 }
      c [| local |]
  in
  let samples = r.Es_sim.Metrics.per_device.(0).Es_sim.Metrics.samples in
  Alcotest.(check int) "two requests" 2 (Array.length samples);
  Alcotest.(check bool)
    (Printf.sprintf "offloaded %.0fms < local %.0fms" (1000. *. samples.(1)) (1000. *. samples.(0)))
    true
    (samples.(1) < samples.(0))

let test_runner_work_scale () =
  let c = one_device_cluster () in
  let d = Decision.make ~device:0 ~server:0 ~plan:(Plan.device_only resnet18) () in
  let base = Es_sim.Runner.run ~arrivals:spaced_arrivals c [| d |] in
  let doubled =
    Es_sim.Runner.run ~arrivals:spaced_arrivals ~work_scale:(fun ~device:_ _ -> 2.0) c [| d |]
  in
  Alcotest.(check (float 1e-6)) "work scale doubles compute latency"
    (2.0 *. base.Es_sim.Metrics.mean_latency_s)
    doubled.Es_sim.Metrics.mean_latency_s

let test_runner_warmup_discards () =
  let c = one_device_cluster () in
  let d = Decision.make ~device:0 ~server:0 ~plan:(Plan.device_only resnet18) () in
  let arrivals = [| (1.0, 0); (10.0, 0) |] in
  let r =
    Es_sim.Runner.run ~arrivals
      ~options:{ Es_sim.Runner.default_options with warmup_s = 5.0; duration_s = 20.0 }
      c [| d |]
  in
  Alcotest.(check int) "warmup arrival excluded" 1 r.Es_sim.Metrics.total_generated

let test_runner_reconfigure_zero_grant_drain () =
  (* Switching a device to a zero-grant (device-only) decision while an
     offloaded request is still in flight must drain that request cleanly:
     it completes on the stations it already entered, nothing drops, and
     the ledger balances. *)
  let c = one_device_cluster () in
  let remote =
    Decision.make ~device:0 ~server:0 ~plan:(Plan.server_only resnet18) ~bandwidth_bps:5e6
      ~compute_share:0.5 ()
  in
  let local = Decision.make ~device:0 ~server:0 ~plan:(Plan.device_only resnet18) () in
  (* Arrival at t=29.9 is mid-transfer when grants go to zero at t=30. *)
  let arrivals = [| (10.0, 0); (29.9, 0); (40.0, 0) |] in
  let r =
    Es_sim.Runner.run ~arrivals ~reconfigure:[ (30.0, [| local |]) ]
      ~options:{ Es_sim.Runner.default_options with duration_s = 120.0; warmup_s = 0.0 }
      c [| remote |]
  in
  Alcotest.(check int) "all three complete" 3 r.Es_sim.Metrics.total_completed;
  Alcotest.(check int) "nothing dropped" 0 r.Es_sim.Metrics.total_dropped

let test_runner_rejects_invalid_decisions () =
  let c = one_device_cluster () in
  let nan_bw =
    Decision.make ~device:0 ~server:0 ~plan:(Plan.server_only resnet18)
      ~bandwidth_bps:Float.nan ~compute_share:0.5 ()
  in
  let raises ds =
    match
      try
        ignore (Es_sim.Runner.run c ds);
        `No_raise
      with Invalid_argument _ -> `Raised
    with
    | `Raised -> ()
    | `No_raise -> Alcotest.fail "invalid decision accepted"
  in
  raises [| nan_bw |];
  (* Decision.make guards negative grants at construction; corrupt the
     record directly to exercise the runner's own validation. *)
  let base =
    Decision.make ~device:0 ~server:0 ~plan:(Plan.server_only resnet18) ~bandwidth_bps:5e6
      ~compute_share:0.5 ()
  in
  raises [| { base with Decision.compute_share = -0.5 } |];
  raises [| { base with Decision.bandwidth_bps = 0.0 } |];
  (* The reconfigure path validates too. *)
  let ok = Decision.make ~device:0 ~server:0 ~plan:(Plan.device_only resnet18) () in
  match
    try
      ignore (Es_sim.Runner.run ~reconfigure:[ (10.0, [| nan_bw |]) ] c [| ok |]);
      `No_raise
    with Invalid_argument _ -> `Raised
  with
  | `Raised -> ()
  | `No_raise -> Alcotest.fail "invalid reconfiguration accepted"

(* The two engine backends must be indistinguishable through the full
   simulator: identical reports, field for field, float for float. *)
let test_runner_backend_reports_equal () =
  let c = Scenario.build Scenario.default in
  let ds = Es_baselines.Baselines.neurosurgeon.Es_baselines.Baselines.solve c in
  let run engine =
    Es_sim.Runner.run ~options:{ Es_sim.Runner.default_options with engine } c ds
  in
  let rh = run Es_sim.Engine.Heap and rc = run Es_sim.Engine.Calendar in
  Alcotest.(check bool) "reports structurally equal" true (rh = rc)

(* Streaming metrics trade raw samples for constant memory; the contract
   (metrics.mli) is exact counts/DSR, float-rounding-level mean, and
   quantiles within one sketch bucket (~4.5% in value). *)
let test_runner_streaming_tolerance () =
  let c = Scenario.build Scenario.default in
  let ds = Es_baselines.Baselines.neurosurgeon.Es_baselines.Baselines.solve c in
  let exact = Es_sim.Runner.run c ds in
  let stream =
    Es_sim.Runner.run
      ~options:{ Es_sim.Runner.default_options with streaming = true }
      c ds
  in
  Alcotest.(check int) "generated exact" exact.Es_sim.Metrics.total_generated
    stream.Es_sim.Metrics.total_generated;
  Alcotest.(check int) "completed exact" exact.Es_sim.Metrics.total_completed
    stream.Es_sim.Metrics.total_completed;
  Alcotest.(check int) "dropped exact" exact.Es_sim.Metrics.total_dropped
    stream.Es_sim.Metrics.total_dropped;
  Alcotest.(check int) "timed out exact" exact.Es_sim.Metrics.total_timed_out
    stream.Es_sim.Metrics.total_timed_out;
  Alcotest.(check (float 1e-12)) "dsr exact" exact.Es_sim.Metrics.dsr
    stream.Es_sim.Metrics.dsr;
  let rel a b = abs_float (a -. b) /. Float.max 1e-9 (abs_float a) in
  Alcotest.(check bool) "mean within float rounding" true
    (rel exact.Es_sim.Metrics.mean_latency_s stream.Es_sim.Metrics.mean_latency_s < 1e-6);
  List.iter
    (fun (name, ex, st) ->
      Alcotest.(check bool) (name ^ " within sketch tolerance") true (rel ex st < 0.1))
    [
      ("p50", exact.Es_sim.Metrics.p50_s, stream.Es_sim.Metrics.p50_s);
      ("p95", exact.Es_sim.Metrics.p95_s, stream.Es_sim.Metrics.p95_s);
      ("p99", exact.Es_sim.Metrics.p99_s, stream.Es_sim.Metrics.p99_s);
    ];
  Alcotest.(check int) "no pooled samples retained" 0
    (Array.length stream.Es_sim.Metrics.latencies);
  Alcotest.(check int) "no event log retained" 0
    (Array.length stream.Es_sim.Metrics.events)

(* ---------- Faults and resilience ---------- *)

let crashed_options ?resilience ?(crash_at = 20.0) ?for_s () =
  let crash = Es_sim.Faults.crash ~at:crash_at ?for_s 0 in
  {
    Es_sim.Runner.default_options with
    duration_s = 40.0;
    warmup_s = 0.0;
    faults = Es_sim.Faults.scripted crash;
    resilience;
  }

let offload_cluster_and_decision () =
  let c = one_device_cluster () in
  let d =
    Decision.make ~device:0 ~server:0 ~plan:(Plan.server_only resnet18) ~bandwidth_bps:50e6
      ~compute_share:0.8 ()
  in
  (c, d)

let test_faults_drop_without_resilience () =
  (* Server down from t=20 with no resilience policy: every later offloaded
     request drops, and the ledger still balances. *)
  let c, d = offload_cluster_and_decision () in
  let arrivals = [| (10.0, 0); (25.0, 0); (30.0, 0) |] in
  let r = Es_sim.Runner.run ~arrivals ~options:(crashed_options ()) c [| d |] in
  Alcotest.(check int) "pre-crash request completes" 1 r.Es_sim.Metrics.total_completed;
  Alcotest.(check int) "post-crash requests drop" 2 r.Es_sim.Metrics.total_dropped;
  Alcotest.(check int) "conservation" r.Es_sim.Metrics.total_generated
    (r.Es_sim.Metrics.total_completed + r.Es_sim.Metrics.total_dropped
   + r.Es_sim.Metrics.total_timed_out)

let test_faults_local_fallback_degrades () =
  (* Same crash with the default resilience policy: the post-crash requests
     re-execute locally and complete degraded instead of dropping. *)
  let c, d = offload_cluster_and_decision () in
  let arrivals = [| (10.0, 0); (25.0, 0); (30.0, 0) |] in
  let r =
    Es_sim.Runner.run ~arrivals
      ~options:(crashed_options ~resilience:Es_sim.Runner.default_resilience ())
      c [| d |]
  in
  Alcotest.(check int) "everything completes" 3 r.Es_sim.Metrics.total_completed;
  Alcotest.(check int) "post-crash completions are degraded" 2 r.Es_sim.Metrics.total_degraded;
  Alcotest.(check int) "nothing dropped" 0 r.Es_sim.Metrics.total_dropped

let test_faults_server_recovers () =
  (* Crash for 10s: a request arriving after the repair completes normally. *)
  let c, d = offload_cluster_and_decision () in
  let arrivals = [| (10.0, 0); (35.0, 0) |] in
  let r = Es_sim.Runner.run ~arrivals ~options:(crashed_options ~for_s:10.0 ()) c [| d |] in
  Alcotest.(check int) "both complete" 2 r.Es_sim.Metrics.total_completed;
  Alcotest.(check int) "no degradation after repair" 0 r.Es_sim.Metrics.total_degraded

let test_faults_in_flight_eviction_retries () =
  (* An in-service request at the crash instant is evicted; with retries and
     a repaired server it must still complete (possibly degraded via local
     fallback, but never dropped). *)
  let c, d = offload_cluster_and_decision () in
  let arrivals = [| (19.99, 0) |] in
  let r =
    Es_sim.Runner.run ~arrivals
      ~options:
        (crashed_options ~resilience:Es_sim.Runner.default_resilience ~for_s:1.0 ())
      c [| d |]
  in
  Alcotest.(check int) "evicted request completes" 1 r.Es_sim.Metrics.total_completed;
  Alcotest.(check int) "not dropped" 0 r.Es_sim.Metrics.total_dropped

let test_faults_link_outage () =
  let c, d = offload_cluster_and_decision () in
  let faults = Es_sim.Faults.scripted (Es_sim.Faults.outage ~at:20.0 ~for_s:5.0 0) in
  let arrivals = [| (21.0, 0); (30.0, 0) |] in
  let no_res =
    Es_sim.Runner.run ~arrivals
      ~options:
        {
          Es_sim.Runner.default_options with
          duration_s = 40.0;
          warmup_s = 0.0;
          faults;
        }
      c [| d |]
  in
  Alcotest.(check int) "outage drops the uplink request" 1 no_res.Es_sim.Metrics.total_dropped;
  Alcotest.(check int) "post-restore request completes" 1 no_res.Es_sim.Metrics.total_completed

let test_faults_straggler_slows () =
  let c, d = offload_cluster_and_decision () in
  let base = Es_sim.Runner.run ~arrivals:spaced_arrivals c [| d |] in
  let slowed =
    Es_sim.Runner.run ~arrivals:spaced_arrivals
      ~options:
        {
          Es_sim.Runner.default_options with
          faults = Es_sim.Faults.scripted (Es_sim.Faults.straggle ~at:0.0 ~for_s:60.0 ~factor:4.0 0);
        }
      c [| d |]
  in
  Alcotest.(check bool) "straggler raises mean latency" true
    (slowed.Es_sim.Metrics.mean_latency_s > base.Es_sim.Metrics.mean_latency_s)

let test_faults_deterministic () =
  (* A faulty, resilient run is as deterministic as a clean one. *)
  let c = Scenario.build Scenario.default in
  let ds = Es_baselines.Baselines.neurosurgeon.Es_baselines.Baselines.solve c in
  let options =
    {
      Es_sim.Runner.default_options with
      faults = Es_sim.Faults.scripted (Es_sim.Faults.crash ~at:20.0 ~for_s:15.0 0);
      resilience = Some Es_sim.Runner.default_resilience;
    }
  in
  let r1 = Es_sim.Runner.run ~options c ds and r2 = Es_sim.Runner.run ~options c ds in
  Alcotest.(check int) "same generated" r1.Es_sim.Metrics.total_generated
    r2.Es_sim.Metrics.total_generated;
  Alcotest.(check int) "same degraded" r1.Es_sim.Metrics.total_degraded
    r2.Es_sim.Metrics.total_degraded;
  Alcotest.(check int) "same timeouts" r1.Es_sim.Metrics.total_timed_out
    r2.Es_sim.Metrics.total_timed_out;
  Alcotest.(check (float 0.0)) "same mean" r1.Es_sim.Metrics.mean_latency_s
    r2.Es_sim.Metrics.mean_latency_s;
  Alcotest.(check int) "conservation under faults" r1.Es_sim.Metrics.total_generated
    (r1.Es_sim.Metrics.total_completed + r1.Es_sim.Metrics.total_dropped
   + r1.Es_sim.Metrics.total_timed_out)

let test_timeout_without_fallback () =
  (* A saturating device-only workload with a tight timeout and no fallback:
     requests that exceed timeout_factor x deadline are counted timed-out. *)
  let c =
    Cluster.make
      ~devices:
        [
          Cluster.device ~id:0 ~proc:Processor.iot_board ~link:Link.wifi ~model:resnet18
            ~rate:5.0 ~deadline:0.2 ();
        ]
      ~servers:[ Cluster.server ~id:0 ~proc:Processor.edge_cpu ~ap_bandwidth_mbps:50.0 () ]
  in
  let d = Decision.make ~device:0 ~server:0 ~plan:(Plan.device_only resnet18) () in
  let resilience =
    {
      Es_sim.Runner.timeout_factor = 2.0;
      max_retries = 0;
      backoff_base_s = 0.05;
      local_fallback = false;
    }
  in
  let r =
    Es_sim.Runner.run
      ~options:
        {
          Es_sim.Runner.default_options with
          duration_s = 20.0;
          warmup_s = 0.0;
          resilience = Some resilience;
        }
      c [| d |]
  in
  Alcotest.(check bool) "timeouts recorded" true (r.Es_sim.Metrics.total_timed_out > 0);
  Alcotest.(check int) "conservation with timeouts" r.Es_sim.Metrics.total_generated
    (r.Es_sim.Metrics.total_completed + r.Es_sim.Metrics.total_dropped
   + r.Es_sim.Metrics.total_timed_out)

(* ---------- Overload protection ---------- *)

let conserved (r : Es_sim.Metrics.report) =
  Alcotest.(check int) "conservation with shed" r.Es_sim.Metrics.total_generated
    (r.Es_sim.Metrics.total_completed + r.Es_sim.Metrics.total_dropped
   + r.Es_sim.Metrics.total_timed_out + r.Es_sim.Metrics.total_shed)

let test_station_backlog_eta () =
  let e = Es_sim.Engine.create () in
  let st = Es_sim.Station.create e ~speed:2.0 () in
  Alcotest.(check (float 1e-12)) "idle backlog is zero" 0.0 (Es_sim.Station.backlog_eta st);
  Alcotest.(check (float 1e-12)) "idle eta is pure service" 1.0
    (Es_sim.Station.eta st ~work:2.0);
  (* First job (4 units) enters service until t=2; second (2 units) queues. *)
  ignore (Es_sim.Station.submit st ~work:4.0 (fun () -> ()));
  ignore (Es_sim.Station.submit st ~work:2.0 (fun () -> ()));
  Alcotest.(check (float 1e-12)) "backlog = in-service remainder + queue" 3.0
    (Es_sim.Station.backlog_eta st);
  Alcotest.(check (float 1e-12)) "eta adds own service on top" 4.0
    (Es_sim.Station.eta st ~work:2.0);
  Es_sim.Engine.run e;
  Alcotest.(check (float 1e-12)) "drained backlog is zero" 0.0
    (Es_sim.Station.backlog_eta st)

let test_breaker_state_machine () =
  let cfg =
    {
      Es_sim.Overload.default_breaker with
      Es_sim.Overload.window = 8;
      failure_rate = 0.5;
      min_samples = 4;
      cooldown_s = 5.0;
      half_open_probes = 2;
    }
  in
  let transitions = ref 0 in
  let b = Es_sim.Overload.Breaker.create ~on_transition:(fun _ -> incr transitions) cfg in
  let code () = Es_sim.Overload.Breaker.(state_code (state b)) in
  Alcotest.(check bool) "closed admits" true (Es_sim.Overload.Breaker.allow b ~now:0.0);
  Es_sim.Overload.Breaker.record b ~now:0.1 ~ok:true;
  Es_sim.Overload.Breaker.record b ~now:0.2 ~ok:false;
  Es_sim.Overload.Breaker.record b ~now:0.3 ~ok:false;
  Alcotest.(check int) "below min_samples stays closed" 0 (code ());
  Es_sim.Overload.Breaker.record b ~now:0.4 ~ok:false;
  Alcotest.(check int) "75% failures over 4 samples trips" 2 (code ());
  Alcotest.(check int) "one open counted" 1 (Es_sim.Overload.Breaker.opens b);
  Alcotest.(check bool) "open rejects before cooldown" false
    (Es_sim.Overload.Breaker.allow b ~now:1.0);
  Alcotest.(check bool) "cooldown elapses into a probe" true
    (Es_sim.Overload.Breaker.allow b ~now:5.5);
  Alcotest.(check int) "half-open" 1 (code ());
  Es_sim.Overload.Breaker.record b ~now:5.6 ~ok:false;
  Alcotest.(check int) "probe failure re-opens" 2 (code ());
  Alcotest.(check bool) "second cooldown, probe again" true
    (Es_sim.Overload.Breaker.allow b ~now:11.0);
  Es_sim.Overload.Breaker.record b ~now:11.1 ~ok:true;
  Alcotest.(check bool) "still half-open: second probe admitted" true
    (Es_sim.Overload.Breaker.allow b ~now:11.2);
  Es_sim.Overload.Breaker.record b ~now:11.3 ~ok:true;
  Alcotest.(check int) "enough probe successes re-close" 0 (code ());
  Alcotest.(check int) "two opens total" 2 (Es_sim.Overload.Breaker.opens b);
  (* Closed -> Open -> Half_open -> Open -> Half_open -> Closed *)
  Alcotest.(check int) "every transition reported" 5 !transitions

(* A hopeless offload: 20 req/s into a 10 Mbit/s uplink with a 200 ms
   deadline.  Backlog-based admission must shed most of it and keep the
   ledger exact. *)
let test_overload_admission_sheds () =
  let c =
    Cluster.make
      ~devices:
        [
          Cluster.device ~id:0 ~proc:Processor.raspberry_pi ~link:Link.wifi ~model:resnet18
            ~rate:20.0 ~deadline:0.2 ();
        ]
      ~servers:[ Cluster.server ~id:0 ~proc:Processor.edge_cpu ~ap_bandwidth_mbps:50.0 () ]
  in
  let d =
    Decision.make ~device:0 ~server:0 ~plan:(Plan.server_only resnet18) ~bandwidth_bps:10e6
      ~compute_share:0.5 ()
  in
  let options =
    {
      Es_sim.Runner.default_options with
      duration_s = 20.0;
      warmup_s = 0.0;
      overload =
        {
          Es_sim.Overload.off with
          Es_sim.Overload.admission = Some Es_sim.Overload.default_admission;
        };
    }
  in
  let reg = Es_obs.Metric.create () in
  let r = Es_sim.Runner.run ~options ~metrics:reg c [| d |] in
  Alcotest.(check bool) "sheds under overload" true (r.Es_sim.Metrics.total_shed > 0);
  conserved r;
  Alcotest.(check int) "per-device shed matches total"
    r.Es_sim.Metrics.total_shed
    r.Es_sim.Metrics.per_device.(0).Es_sim.Metrics.shed;
  Alcotest.(check bool) "admitted DSR >= raw DSR" true
    (r.Es_sim.Metrics.dsr_admitted >= r.Es_sim.Metrics.dsr);
  (match Es_obs.Metric.find reg "requests_shed" with
  | Some (Es_obs.Metric.Counter n) ->
      Alcotest.(check int) "live shed counter matches report" r.Es_sim.Metrics.total_shed n
  | _ -> Alcotest.fail "requests_shed counter missing");
  (* Shedding the hopeless arrivals must leave the survivors meeting their
     deadlines far more often than the unprotected run. *)
  let unprotected =
    Es_sim.Runner.run
      ~options:{ options with Es_sim.Runner.overload = Es_sim.Overload.off }
      c [| d |]
  in
  Alcotest.(check bool) "admission lifts admitted DSR" true
    (r.Es_sim.Metrics.dsr_admitted > unprotected.Es_sim.Metrics.dsr)

let test_overload_breaker_reroutes () =
  (* Server down from t=10: without protection every later offload drops;
     with a breaker the first few failures trip it and the rest of the
     arrivals reroute to the device's local plan and complete. *)
  let c =
    Cluster.make
      ~devices:
        [
          Cluster.device ~id:0 ~proc:Processor.jetson_nano ~link:Link.wifi ~model:resnet18
            ~rate:4.0 ~deadline:0.5 ();
        ]
      ~servers:[ Cluster.server ~id:0 ~proc:Processor.edge_gpu ~ap_bandwidth_mbps:200.0 () ]
  in
  let d =
    Decision.make ~device:0 ~server:0 ~plan:(Plan.server_only resnet18) ~bandwidth_bps:50e6
      ~compute_share:0.8 ()
  in
  let breaker =
    { Es_sim.Overload.default_breaker with Es_sim.Overload.window = 8; min_samples = 4 }
  in
  let options =
    {
      Es_sim.Runner.default_options with
      duration_s = 40.0;
      warmup_s = 0.0;
      faults = Es_sim.Faults.scripted (Es_sim.Faults.crash ~at:10.0 0);
      overload = { Es_sim.Overload.off with Es_sim.Overload.breaker = Some breaker };
    }
  in
  let reg = Es_obs.Metric.create () in
  let r = Es_sim.Runner.run ~options ~metrics:reg c [| d |] in
  conserved r;
  Alcotest.(check bool) "a few trip-window drops remain" true
    (r.Es_sim.Metrics.total_dropped >= breaker.Es_sim.Overload.min_samples
    && r.Es_sim.Metrics.total_dropped <= 2 * breaker.Es_sim.Overload.window);
  Alcotest.(check bool) "rerouted arrivals keep completing" true
    (r.Es_sim.Metrics.total_completed > r.Es_sim.Metrics.total_dropped);
  (match Es_obs.Metric.find reg ~labels:[ ("server", "0") ] "overload/breaker_state" with
  | Some (Es_obs.Metric.Gauge g) ->
      Alcotest.(check (float 0.0)) "breaker gauge reads open" 2.0 g
  | _ -> Alcotest.fail "breaker gauge missing");
  let unprotected =
    Es_sim.Runner.run
      ~options:{ options with Es_sim.Runner.overload = Es_sim.Overload.off }
      c [| d |]
  in
  Alcotest.(check bool) "breaker saves requests the bare run drops" true
    (r.Es_sim.Metrics.total_completed > unprotected.Es_sim.Metrics.total_completed)

let test_overload_brownout_switches () =
  (* A starved server share builds server-station backlog; the watermark
     controller must engage, swap the device to its local plan, and count
     the switch. *)
  let c =
    Cluster.make
      ~devices:
        [
          Cluster.device ~id:0 ~proc:Processor.jetson_nano ~link:Link.wifi ~model:resnet18
            ~rate:8.0 ~deadline:0.5 ();
        ]
      ~servers:[ Cluster.server ~id:0 ~proc:Processor.edge_cpu ~ap_bandwidth_mbps:200.0 () ]
  in
  let d =
    Decision.make ~device:0 ~server:0 ~plan:(Plan.server_only resnet18) ~bandwidth_bps:50e6
      ~compute_share:0.02 ()
  in
  let brownout =
    {
      Es_sim.Overload.default_brownout with
      Es_sim.Overload.high_watermark = 4;
      low_watermark = 1;
      check_every_s = 0.25;
    }
  in
  let options =
    {
      Es_sim.Runner.default_options with
      duration_s = 30.0;
      warmup_s = 0.0;
      overload = { Es_sim.Overload.off with Es_sim.Overload.brownout = Some brownout };
    }
  in
  let reg = Es_obs.Metric.create () in
  let r = Es_sim.Runner.run ~options ~metrics:reg c [| d |] in
  conserved r;
  (match Es_obs.Metric.find reg "overload/brownout_switches" with
  | Some (Es_obs.Metric.Counter n) ->
      Alcotest.(check bool) "controller engaged at least once" true (n >= 1)
  | _ -> Alcotest.fail "brownout switch counter missing");
  let unprotected =
    Es_sim.Runner.run
      ~options:{ options with Es_sim.Runner.overload = Es_sim.Overload.off }
      c [| d |]
  in
  Alcotest.(check bool) "brownout beats queueing on the starved share" true
    (r.Es_sim.Metrics.mean_latency_s < unprotected.Es_sim.Metrics.mean_latency_s)

let test_overload_rate_limit_sheds () =
  (* A fixed 2 req/s bucket under an 8 req/s offered load: roughly three
     quarters of the offloads shed, and the ledger stays exact. *)
  let c =
    Cluster.make
      ~devices:
        [
          Cluster.device ~id:0 ~proc:Processor.jetson_nano ~link:Link.wifi ~model:resnet18
            ~rate:8.0 ~deadline:0.5 ();
        ]
      ~servers:[ Cluster.server ~id:0 ~proc:Processor.edge_gpu ~ap_bandwidth_mbps:200.0 () ]
  in
  let d =
    Decision.make ~device:0 ~server:0 ~plan:(Plan.server_only resnet18) ~bandwidth_bps:50e6
      ~compute_share:0.8 ()
  in
  let options =
    {
      Es_sim.Runner.default_options with
      duration_s = 30.0;
      warmup_s = 0.0;
      overload =
        {
          Es_sim.Overload.off with
          Es_sim.Overload.rate_limit =
            Some { Es_sim.Overload.rate_per_server = 2.0; burst = 1.0 };
        };
    }
  in
  let r = Es_sim.Runner.run ~options c [| d |] in
  conserved r;
  Alcotest.(check bool) "rate limit sheds the excess" true
    (r.Es_sim.Metrics.total_shed > r.Es_sim.Metrics.total_generated / 2);
  Alcotest.(check bool) "admitted requests still flow" true
    (r.Es_sim.Metrics.total_completed > 0)

let armed_but_lax =
  (* Every mechanism on, every threshold unreachable: the run must be
     byte-identical to an unprotected one — arming costs nothing. *)
  {
    Es_sim.Overload.admission = Some { Es_sim.Overload.slack = 1e9 };
    breaker = Some Es_sim.Overload.default_breaker;
    brownout =
      Some
        {
          Es_sim.Overload.default_brownout with
          Es_sim.Overload.high_watermark = 1_000_000;
          low_watermark = 0;
        };
    rate_limit = Some { Es_sim.Overload.rate_per_server = 1e12; burst = 1e9 };
  }

let test_overload_off_and_lax_bit_identical () =
  let c = Scenario.build Scenario.default in
  let ds = Es_baselines.Baselines.neurosurgeon.Es_baselines.Baselines.solve c in
  let run overload =
    Es_sim.Runner.run ~options:{ Es_sim.Runner.default_options with overload } c ds
  in
  let off = run Es_sim.Overload.off in
  (* The golden pins (test_runner_golden_bit_identity) apply unchanged. *)
  Alcotest.(check int) "off-policy generated pin" 1636 off.Es_sim.Metrics.total_generated;
  Alcotest.(check (float 0.0)) "off-policy dsr pin" 0.9193154034229829 off.Es_sim.Metrics.dsr;
  Alcotest.(check int) "off-policy sheds nothing" 0 off.Es_sim.Metrics.total_shed;
  Alcotest.(check (float 0.0)) "dsr_admitted folds to dsr" off.Es_sim.Metrics.dsr
    off.Es_sim.Metrics.dsr_admitted;
  let lax = run armed_but_lax in
  Alcotest.(check bool) "armed-but-lax run is report-identical" true (off = lax)

let overload_flash_setup seed =
  let c = Scenario.build Scenario.default in
  let ds = Es_baselines.Baselines.neurosurgeon.Es_baselines.Baselines.solve c in
  let profile = Es_workload.Heavy.profile_by_name ~duration_s:30.0 "overload" in
  let arrivals = Es_workload.Heavy.trace ~seed ~duration_s:30.0 ~profile c in
  (c, ds, arrivals)

let all_protections =
  {
    Es_sim.Overload.admission = Some Es_sim.Overload.default_admission;
    breaker = Some Es_sim.Overload.default_breaker;
    brownout = Some Es_sim.Overload.default_brownout;
    rate_limit = Some Es_sim.Overload.default_rate_limit;
  }

let prop_overload_flash_deterministic =
  qtest ~count:8 "protected flash crowd: repeat runs and both backends bit-identical"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c, ds, arrivals = overload_flash_setup seed in
      let run engine =
        Es_sim.Runner.run
          ~options:
            {
              Es_sim.Runner.default_options with
              duration_s = 30.0;
              engine;
              overload = all_protections;
            }
          ~arrivals c ds
      in
      let r1 = run Es_sim.Engine.Calendar in
      let r2 = run Es_sim.Engine.Calendar in
      let r3 = run Es_sim.Engine.Heap in
      let conserved (r : Es_sim.Metrics.report) =
        r.Es_sim.Metrics.total_generated
        = r.Es_sim.Metrics.total_completed + r.Es_sim.Metrics.total_dropped
          + r.Es_sim.Metrics.total_timed_out + r.Es_sim.Metrics.total_shed
      in
      r1 = r2 && r1 = r3 && conserved r1)

let test_overload_jobs_invariant () =
  (* Solver parallelism must not leak into the protected run: decisions are
     bit-identical for every [jobs], so the flash-crowd reports are too. *)
  let c, _, arrivals = overload_flash_setup 11 in
  let solve jobs =
    (Es_joint.Optimizer.solve
       ~config:{ Es_joint.Optimizer.default_config with Es_joint.Optimizer.jobs }
       c)
      .Es_joint.Optimizer.decisions
  in
  let d1 = solve 1 and d2 = solve 2 in
  Alcotest.(check string) "decisions bit-identical across jobs"
    (Decision.fingerprint d1) (Decision.fingerprint d2);
  let run ds =
    Es_sim.Runner.run
      ~options:
        {
          Es_sim.Runner.default_options with
          duration_s = 30.0;
          overload = all_protections;
        }
      ~arrivals c ds
  in
  Alcotest.(check bool) "reports equal under either jobs count" true (run d1 = run d2)

let () =
  Alcotest.run "es_sim"
    [
      ( "engine",
        [
          Alcotest.test_case "ordering" `Quick test_engine_ordering;
          Alcotest.test_case "tie FIFO" `Quick test_engine_same_time_fifo;
          Alcotest.test_case "until" `Quick test_engine_until;
          Alcotest.test_case "nested + errors" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "backend equivalence" `Quick test_engine_backends_equivalent;
          Alcotest.test_case "stats" `Quick test_engine_stats;
          prop_engine_time_monotone;
        ] );
      ( "station",
        [
          Alcotest.test_case "fifo service" `Quick test_station_fifo_service;
          Alcotest.test_case "capacity drops" `Quick test_station_capacity_drops;
          Alcotest.test_case "speed change" `Quick test_station_speed_change;
          Alcotest.test_case "zero work" `Quick test_station_zero_work;
          prop_station_busy_conserved;
        ] );
      ( "batcher",
        [
          Alcotest.test_case "window launch" `Quick test_batcher_window_launch;
          Alcotest.test_case "full batch immediate" `Quick test_batcher_full_batch_immediate;
          Alcotest.test_case "beats sequential" `Quick test_batcher_beats_sequential_under_load;
          Alcotest.test_case "mid-batch waits" `Quick test_batcher_mid_batch_arrivals_wait;
          Alcotest.test_case "runner batching mode" `Quick test_runner_batching_mode;
        ] );
      ( "runner",
        [
          Alcotest.test_case "matches analytic (offload)" `Quick
            test_runner_matches_analytic_when_uncontended;
          Alcotest.test_case "matches analytic (local)" `Quick
            test_runner_device_only_matches_analytic;
          Alcotest.test_case "deterministic" `Quick test_runner_deterministic;
          Alcotest.test_case "conservation" `Quick test_runner_conservation;
          Alcotest.test_case "queueing under load" `Quick test_runner_queueing_appears_under_load;
          Alcotest.test_case "queue capacity" `Quick test_runner_queue_capacity_drops;
          Alcotest.test_case "fading" `Quick test_runner_fading_slows_transfers;
          Alcotest.test_case "explicit arrivals" `Quick test_runner_explicit_arrivals;
          Alcotest.test_case "reconfigure" `Quick test_runner_reconfigure_changes_plan;
          Alcotest.test_case "work scale" `Quick test_runner_work_scale;
          Alcotest.test_case "warmup" `Quick test_runner_warmup_discards;
          Alcotest.test_case "golden bit-identity" `Quick test_runner_golden_bit_identity;
          Alcotest.test_case "zero-grant drain" `Quick test_runner_reconfigure_zero_grant_drain;
          Alcotest.test_case "rejects invalid decisions" `Quick
            test_runner_rejects_invalid_decisions;
          Alcotest.test_case "backend report equality" `Quick
            test_runner_backend_reports_equal;
          Alcotest.test_case "streaming tolerance" `Quick test_runner_streaming_tolerance;
        ] );
      ( "faults",
        [
          Alcotest.test_case "drop without resilience" `Quick
            test_faults_drop_without_resilience;
          Alcotest.test_case "local fallback degrades" `Quick
            test_faults_local_fallback_degrades;
          Alcotest.test_case "server recovers" `Quick test_faults_server_recovers;
          Alcotest.test_case "in-flight eviction retries" `Quick
            test_faults_in_flight_eviction_retries;
          Alcotest.test_case "link outage" `Quick test_faults_link_outage;
          Alcotest.test_case "straggler slows" `Quick test_faults_straggler_slows;
          Alcotest.test_case "deterministic" `Quick test_faults_deterministic;
          Alcotest.test_case "timeout without fallback" `Quick test_timeout_without_fallback;
        ] );
      ( "overload",
        [
          Alcotest.test_case "station backlog eta" `Quick test_station_backlog_eta;
          Alcotest.test_case "breaker state machine" `Quick test_breaker_state_machine;
          Alcotest.test_case "admission sheds" `Quick test_overload_admission_sheds;
          Alcotest.test_case "breaker reroutes" `Quick test_overload_breaker_reroutes;
          Alcotest.test_case "brownout switches" `Quick test_overload_brownout_switches;
          Alcotest.test_case "rate limit sheds" `Quick test_overload_rate_limit_sheds;
          Alcotest.test_case "off and lax bit-identical" `Quick
            test_overload_off_and_lax_bit_identical;
          Alcotest.test_case "jobs invariant" `Quick test_overload_jobs_invariant;
          prop_overload_flash_deterministic;
        ] );
    ]
