open Es_dnn
open Es_surgery
open Es_edge

let resnet18 = Zoo.resnet18 ()

let small_cluster () =
  let devices =
    [
      Cluster.device ~id:0 ~proc:Processor.raspberry_pi ~link:Link.wifi ~model:resnet18
        ~rate:1.0 ~deadline:0.2 ~accuracy_floor:0.6 ();
      Cluster.device ~id:1 ~proc:Processor.jetson_nano ~link:Link.nr5g ~model:resnet18
        ~rate:2.0 ~deadline:0.1 ();
    ]
  in
  let servers =
    [
      Cluster.server ~id:0 ~proc:Processor.edge_gpu ~ap_bandwidth_mbps:200.0 ();
      Cluster.server ~id:1 ~proc:Processor.edge_cpu ~ap_bandwidth_mbps:100.0 ();
    ]
  in
  Cluster.make ~devices ~servers

(* ---------- Processor / Link ---------- *)

let test_processor_classes_ordered () =
  let speeds =
    Array.map (fun p -> p.Processor.perf.Profile.flops_per_s) Processor.device_classes
  in
  Array.iteri
    (fun i s -> if i > 0 then Alcotest.(check bool) "weakest first" true (s > speeds.(i - 1)))
    speeds

let test_processor_scaled () =
  let p = Processor.scaled Processor.edge_cpu 2.0 in
  Alcotest.(check (float 1.0)) "doubled flops"
    (2.0 *. Processor.edge_cpu.Processor.perf.Profile.flops_per_s)
    p.Processor.perf.Profile.flops_per_s;
  Alcotest.check_raises "bad factor" (Invalid_argument "Processor.scaled: non-positive factor")
    (fun () -> ignore (Processor.scaled Processor.edge_cpu 0.0))

let test_link_transfer_time () =
  (* 1 MB at 80 Mbps (under wifi's 120 peak) plus half the 4 ms RTT. *)
  let t = Link.transfer_time Link.wifi ~rate_bps:80e6 1e6 in
  Alcotest.(check (float 1e-6)) "volume/rate + rtt/2" ((8e6 /. 80e6) +. 0.002) t;
  (* Rate above the radio peak is capped. *)
  let capped = Link.transfer_time Link.wifi ~rate_bps:1e9 1e6 in
  Alcotest.(check (float 1e-6)) "peak capped" ((8e6 /. Link.wifi.Link.peak_bps) +. 0.002) capped;
  Alcotest.(check (float 0.0)) "zero bytes free" 0.0 (Link.transfer_time Link.wifi ~rate_bps:1.0 0.0)

let test_link_fading () =
  let rng = Es_util.Prng.create 1 in
  for _ = 1 to 100 do
    let eff = Link.effective_rate rng Link.lte 1e6 in
    Alcotest.(check bool) "fading only degrades" true (eff <= 1e6 && eff > 0.0)
  done;
  let eff = Link.effective_rate rng Link.ethernet 5e6 in
  Alcotest.(check (float 0.0)) "wired has no fading" 5e6 eff

(* ---------- Cluster ---------- *)

let test_cluster_make_renumbers () =
  let c = small_cluster () in
  Alcotest.(check int) "n_devices" 2 (Cluster.n_devices c);
  Alcotest.(check int) "n_servers" 2 (Cluster.n_servers c);
  Array.iteri
    (fun i d -> Alcotest.(check int) "device ids sequential" i d.Cluster.dev_id)
    c.Cluster.devices

let test_cluster_validation () =
  Alcotest.check_raises "empty devices" (Invalid_argument "Cluster.make: no devices") (fun () ->
      ignore
        (Cluster.make ~devices:[]
           ~servers:[ Cluster.server ~id:0 ~proc:Processor.edge_cpu ~ap_bandwidth_mbps:10.0 () ]));
  Alcotest.check_raises "bad rate" (Invalid_argument "Cluster.device: non-positive rate")
    (fun () ->
      ignore
        (Cluster.device ~id:0 ~proc:Processor.iot_board ~link:Link.wifi ~model:resnet18
           ~rate:0.0 ~deadline:1.0 ()))

(* ---------- Decision ---------- *)

let test_decision_offloads () =
  let c = small_cluster () in
  let local = Decision.make ~device:0 ~server:0 ~plan:(Plan.device_only resnet18) () in
  Alcotest.(check bool) "local does not offload" false (Decision.offloads local);
  let remote =
    Decision.make ~device:1 ~server:0 ~plan:(Plan.server_only resnet18) ~bandwidth_bps:50e6
      ~compute_share:0.5 ()
  in
  Alcotest.(check bool) "remote offloads" true (Decision.offloads remote);
  ignore c

let test_decision_requires_resources () =
  Alcotest.check_raises "offload needs bandwidth"
    (Invalid_argument "Decision.make: offloading needs bandwidth") (fun () ->
      ignore (Decision.make ~device:0 ~server:0 ~plan:(Plan.server_only resnet18) ()))

let test_decision_validate_capacity () =
  let c = small_cluster () in
  let plan = Plan.server_only resnet18 in
  let ok =
    [|
      Decision.make ~device:0 ~server:0 ~plan ~bandwidth_bps:100e6 ~compute_share:0.5 ();
      Decision.make ~device:1 ~server:0 ~plan ~bandwidth_bps:100e6 ~compute_share:0.5 ();
    |]
  in
  (match Decision.validate c ok with Ok () -> () | Error e -> Alcotest.fail e);
  let over_bw =
    [|
      Decision.make ~device:0 ~server:0 ~plan ~bandwidth_bps:150e6 ~compute_share:0.4 ();
      Decision.make ~device:1 ~server:0 ~plan ~bandwidth_bps:150e6 ~compute_share:0.4 ();
    |]
  in
  (match Decision.validate c over_bw with
  | Ok () -> Alcotest.fail "bandwidth oversubscription must be rejected"
  | Error _ -> ());
  let over_cpu =
    [|
      Decision.make ~device:0 ~server:0 ~plan ~bandwidth_bps:50e6 ~compute_share:0.7 ();
      Decision.make ~device:1 ~server:0 ~plan ~bandwidth_bps:50e6 ~compute_share:0.7 ();
    |]
  in
  match Decision.validate c over_cpu with
  | Ok () -> Alcotest.fail "compute oversubscription must be rejected"
  | Error _ -> ()

let test_decision_validate_finite_grants () =
  (* NaN and negative grants must be caught before they poison the capacity
     sums (NaN comparisons are all false, so the cap checks alone would
     silently pass them). *)
  let c = small_cluster () in
  let plan = Plan.server_only resnet18 in
  let base =
    [|
      Decision.make ~device:0 ~server:0 ~plan ~bandwidth_bps:50e6 ~compute_share:0.4 ();
      Decision.make ~device:1 ~server:0 ~plan ~bandwidth_bps:50e6 ~compute_share:0.4 ();
    |]
  in
  let rejected label ds =
    match Decision.validate c ds with
    | Ok () -> Alcotest.fail (label ^ " must be rejected")
    | Error _ -> ()
  in
  rejected "NaN bandwidth" [| { base.(0) with Decision.bandwidth_bps = Float.nan }; base.(1) |];
  rejected "infinite bandwidth"
    [| { base.(0) with Decision.bandwidth_bps = Float.infinity }; base.(1) |];
  rejected "NaN compute share"
    [| base.(0); { base.(1) with Decision.compute_share = Float.nan } |];
  rejected "negative compute share"
    [| base.(0); { base.(1) with Decision.compute_share = -0.1 } |]

let test_decision_validate_accuracy_floor () =
  let c = small_cluster () in
  (* Device 0 requires accuracy >= 0.6; a width-0.5 early exit goes below. *)
  let exits = Graph.exit_candidate_ids resnet18 in
  let weak = Plan.make ~width:0.5 ~exit_node:(List.hd exits) resnet18 in
  Alcotest.(check bool) "plan is indeed below the floor" true (weak.Plan.accuracy < 0.6);
  let ds =
    [|
      Decision.make ~device:0 ~server:0 ~plan:weak ~bandwidth_bps:10e6 ~compute_share:0.1 ();
      Decision.make ~device:1 ~server:0 ~plan:(Plan.server_only resnet18) ~bandwidth_bps:10e6
        ~compute_share:0.1 ();
    |]
  in
  match Decision.validate c ds with
  | Ok () -> Alcotest.fail "accuracy floor violation must be rejected"
  | Error _ -> ()

(* ---------- Latency ---------- *)

let test_latency_device_only () =
  let c = small_cluster () in
  let plan = Plan.device_only resnet18 in
  let d = Decision.make ~device:0 ~server:0 ~plan () in
  let b = Latency.breakdown c d in
  Alcotest.(check (float 1e-12)) "no uplink" 0.0 b.Latency.uplink_s;
  Alcotest.(check (float 1e-12)) "no server" 0.0 b.Latency.server_s;
  Alcotest.(check (float 1e-12)) "no downlink" 0.0 b.Latency.downlink_s;
  let dev = c.Cluster.devices.(0) in
  Alcotest.(check (float 1e-9)) "device time = plan walk"
    (Plan.device_time dev.Cluster.proc.Processor.perf plan)
    b.Latency.device_s

let test_latency_offload_formula () =
  let c = small_cluster () in
  let plan = Plan.server_only resnet18 in
  let d =
    Decision.make ~device:0 ~server:0 ~plan ~bandwidth_bps:50e6 ~compute_share:0.5 ()
  in
  let b = Latency.breakdown c d in
  let dev = c.Cluster.devices.(0) and srv = c.Cluster.servers.(0) in
  Alcotest.(check (float 1e-9)) "uplink"
    (Link.transfer_time dev.Cluster.link ~rate_bps:50e6 (Plan.transfer_bytes plan))
    b.Latency.uplink_s;
  Alcotest.(check (float 1e-9)) "server at the granted share"
    (Plan.server_time srv.Cluster.sproc.Processor.perf plan /. 0.5)
    b.Latency.server_s;
  Alcotest.(check bool) "downlink counts the result" true (b.Latency.downlink_s > 0.0);
  Alcotest.(check (float 1e-9)) "total is the sum" (Latency.total b) (Latency.of_decision c d)

let test_latency_more_bandwidth_helps () =
  let c = small_cluster () in
  let plan = Plan.server_only resnet18 in
  let slow =
    Latency.of_decision c
      (Decision.make ~device:0 ~server:0 ~plan ~bandwidth_bps:10e6 ~compute_share:0.5 ())
  in
  let fast =
    Latency.of_decision c
      (Decision.make ~device:0 ~server:0 ~plan ~bandwidth_bps:100e6 ~compute_share:0.5 ())
  in
  Alcotest.(check bool) "more bandwidth, less latency" true (fast < slow)

let test_latency_stability () =
  let c = small_cluster () in
  let plan = Plan.server_only resnet18 in
  let starved =
    Decision.make ~device:1 ~server:0 ~plan ~bandwidth_bps:50e6 ~compute_share:0.001 ()
  in
  Alcotest.(check bool) "starved share is unstable" false (Latency.device_stable c starved);
  let fine =
    Decision.make ~device:1 ~server:0 ~plan ~bandwidth_bps:50e6 ~compute_share:0.5 ()
  in
  Alcotest.(check bool) "healthy share is stable" true (Latency.device_stable c fine)

let test_latency_aggregates () =
  let c = small_cluster () in
  let plan = Plan.server_only resnet18 in
  let ds =
    [|
      Decision.make ~device:0 ~server:0 ~plan ~bandwidth_bps:100e6 ~compute_share:0.5 ();
      Decision.make ~device:1 ~server:0 ~plan ~bandwidth_bps:100e6 ~compute_share:0.5 ();
    |]
  in
  let dsr = Latency.deadline_satisfaction c ds in
  Alcotest.(check bool) "dsr in [0,1]" true (dsr >= 0.0 && dsr <= 1.0);
  let load = Latency.server_load c ds in
  Alcotest.(check int) "per server" 2 (Array.length load);
  Alcotest.(check bool) "offloading loads server 0" true (load.(0) > 0.0);
  Alcotest.(check (float 1e-12)) "server 1 idle" 0.0 load.(1)

(* ---------- Energy ---------- *)

let test_energy_device_only () =
  let c = small_cluster () in
  let d = Decision.make ~device:0 ~server:0 ~plan:(Plan.device_only resnet18) () in
  let e = Energy.breakdown c d in
  Alcotest.(check bool) "compute energy positive" true (e.Energy.compute_j > 0.0);
  Alcotest.(check (float 0.0)) "no tx" 0.0 e.Energy.tx_j;
  Alcotest.(check (float 0.0)) "no wait" 0.0 e.Energy.wait_j;
  Alcotest.(check (float 0.0)) "no rx" 0.0 e.Energy.rx_j;
  let dev = c.Cluster.devices.(0) in
  let expected =
    dev.Cluster.proc.Processor.power.Processor.busy_w
    *. Plan.device_time dev.Cluster.proc.Processor.perf (Plan.device_only resnet18)
  in
  Alcotest.(check (float 1e-9)) "busy power x compute time" expected (Energy.total e)

let test_energy_offload_components () =
  let c = small_cluster () in
  let d =
    Decision.make ~device:0 ~server:0 ~plan:(Plan.server_only resnet18) ~bandwidth_bps:50e6
      ~compute_share:0.5 ()
  in
  let e = Energy.breakdown c d in
  Alcotest.(check (float 0.0)) "no device compute" 0.0 e.Energy.compute_j;
  Alcotest.(check bool) "radio energy dominates" true (e.Energy.tx_j > 0.0);
  Alcotest.(check bool) "waits on the server" true (e.Energy.wait_j > 0.0);
  Alcotest.(check bool) "receives the result" true (e.Energy.rx_j > 0.0);
  Alcotest.(check (float 1e-12)) "total = sum" (Energy.total e) (Energy.per_request c d);
  Alcotest.(check bool) "server bills separately" true (Energy.server_joules c d > 0.0)

let test_energy_offload_saves_device_joules () =
  (* The textbook motivation: shipping resnet18 off a weak device costs less
     battery than computing it locally. *)
  let c = small_cluster () in
  let local = Decision.make ~device:0 ~server:0 ~plan:(Plan.device_only resnet18) () in
  let remote =
    Decision.make ~device:0 ~server:0 ~plan:(Plan.server_only resnet18) ~bandwidth_bps:80e6
      ~compute_share:0.8 ()
  in
  Alcotest.(check bool) "offloading saves energy" true
    (Energy.per_request c remote < Energy.per_request c local);
  Alcotest.(check bool) "fleet power positive" true
    (Energy.fleet_joules_per_s c [| local; local |] > 0.0)

let test_mm1_estimate () =
  let c = small_cluster () in
  let d =
    Decision.make ~device:0 ~server:0 ~plan:(Plan.server_only resnet18) ~bandwidth_bps:50e6
      ~compute_share:0.5 ()
  in
  let plain = Latency.of_decision c d in
  let mm1 = Latency.mm1_estimate c d in
  Alcotest.(check bool) "queueing-aware estimate is pessimistic" true (mm1 >= plain);
  (* Saturated stage -> infinite estimate. *)
  let starved =
    Decision.make ~device:1 ~server:0 ~plan:(Plan.server_only resnet18) ~bandwidth_bps:50e6
      ~compute_share:0.002 ()
  in
  Alcotest.(check bool) "saturation detected" true
    (Latency.mm1_estimate c starved = infinity)

let prop_mm1_pessimistic =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:80 ~name:"M/M/1 estimate is never below the analytic latency"
       QCheck.(pair (float_range 1.0 100.0) (float_range 0.05 1.0))
       (fun (bw_mbps, share) ->
         let c = small_cluster () in
         let d =
           Decision.make ~device:0 ~server:0 ~plan:(Plan.server_only resnet18)
             ~bandwidth_bps:(bw_mbps *. 1e6) ~compute_share:share ()
         in
         Latency.mm1_estimate c d >= Latency.of_decision c d -. 1e-9))

(* The straight-line latency kernels (DESIGN.md §15) must reproduce the
   breakdown-record oracles to the last bit — including -0.0 vs 0.0, hence
   the bit-pattern comparison rather than (=). *)
let feq a b = Int64.bits_of_float a = Int64.bits_of_float b

let prop_latency_flat_matches_breakdown =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300
       ~name:"flat latency kernels = breakdown oracles (bit-exact)"
       QCheck.(triple (int_range 0 11) (float_range 0.1 200.0) (float_range 0.001 1.0))
       (fun (pick, bw_mbps, share) ->
         let c = small_cluster () in
         let device = pick mod 2 in
         let server = pick / 2 mod 2 in
         let plan =
           match pick mod 3 with
           | 0 -> Plan.device_only resnet18
           | 1 -> Plan.server_only resnet18
           | _ -> Plan.with_cut (Plan.server_only resnet18) (Graph.n_nodes resnet18 / 2)
         in
         let d =
           if Plan.is_device_only plan then Decision.make ~device ~server ~plan ()
           else
             Decision.make ~device ~server ~plan ~bandwidth_bps:(bw_mbps *. 1e6)
               ~compute_share:share ()
         in
         let ds =
           Array.init 2 (fun i ->
               if i = device then d
               else Decision.make ~device:i ~server:0 ~plan:(Plan.device_only resnet18) ())
         in
         let loads = Latency.server_load c ds and loads' = Latency.server_load_ref c ds in
         feq (Latency.of_decision c d) (Latency.of_decision_ref c d)
         && Latency.device_stable c d = Latency.device_stable_ref c d
         && feq (Latency.mm1_estimate c d) (Latency.mm1_estimate_ref c d)
         && Array.length loads = Array.length loads'
         && Array.for_all2 feq loads loads'
         && feq (Latency.deadline_satisfaction c ds) (Latency.deadline_satisfaction_ref c ds)
         && feq (Latency.mean_latency c ds) (Latency.mean_latency_ref c ds)))

(* ---------- Scenario ---------- *)

let test_scenario_deterministic () =
  let a = Scenario.build Scenario.default in
  let b = Scenario.build Scenario.default in
  Alcotest.(check int) "same size" (Cluster.n_devices a) (Cluster.n_devices b);
  Array.iteri
    (fun i (d : Cluster.device) ->
      let d' = b.Cluster.devices.(i) in
      Alcotest.(check string) "same device" d.Cluster.dev_name d'.Cluster.dev_name;
      Alcotest.(check (float 1e-12)) "same rate" d.Cluster.rate d'.Cluster.rate)
    a.Cluster.devices

let test_scenario_seed_changes () =
  let a = Scenario.build Scenario.default in
  let b = Scenario.build (Scenario.with_seed 999 Scenario.default) in
  let differs =
    Array.exists2
      (fun (x : Cluster.device) (y : Cluster.device) -> x.Cluster.rate <> y.Cluster.rate)
      a.Cluster.devices b.Cluster.devices
  in
  Alcotest.(check bool) "different seed, different population" true differs

let test_scenario_overrides () =
  let spec = Scenario.default |> Scenario.with_n_devices 7 |> Scenario.with_ap_mbps 123.0 in
  let c = Scenario.build spec in
  Alcotest.(check int) "device count" 7 (Cluster.n_devices c);
  Array.iter
    (fun s -> Alcotest.(check (float 1.0)) "ap override" 123e6 s.Cluster.ap_bandwidth_bps)
    c.Cluster.servers

let test_scenario_ranges_respected () =
  let c = Scenario.build Scenario.default in
  let lo, hi = Scenario.default.Scenario.rate_range in
  let dlo, dhi = Scenario.default.Scenario.deadline_range in
  Array.iter
    (fun (d : Cluster.device) ->
      Alcotest.(check bool) "rate in range" true (d.Cluster.rate >= lo && d.Cluster.rate <= hi);
      Alcotest.(check bool) "deadline in range" true
        (d.Cluster.deadline >= dlo && d.Cluster.deadline <= dhi);
      Alcotest.(check bool) "floor below published accuracy" true
        (d.Cluster.accuracy_floor
        < (Accuracy.profile_of_model d.Cluster.model.Graph.name).Accuracy.full_accuracy))
    c.Cluster.devices

let () =
  Alcotest.run "es_edge"
    [
      ( "processor+link",
        [
          Alcotest.test_case "device classes ordered" `Quick test_processor_classes_ordered;
          Alcotest.test_case "scaled" `Quick test_processor_scaled;
          Alcotest.test_case "transfer time" `Quick test_link_transfer_time;
          Alcotest.test_case "fading" `Quick test_link_fading;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "make renumbers" `Quick test_cluster_make_renumbers;
          Alcotest.test_case "validation" `Quick test_cluster_validation;
        ] );
      ( "decision",
        [
          Alcotest.test_case "offloads" `Quick test_decision_offloads;
          Alcotest.test_case "requires resources" `Quick test_decision_requires_resources;
          Alcotest.test_case "capacity validation" `Quick test_decision_validate_capacity;
          Alcotest.test_case "finite grants" `Quick test_decision_validate_finite_grants;
          Alcotest.test_case "accuracy floor" `Quick test_decision_validate_accuracy_floor;
        ] );
      ( "latency",
        [
          Alcotest.test_case "device only" `Quick test_latency_device_only;
          Alcotest.test_case "offload formula" `Quick test_latency_offload_formula;
          Alcotest.test_case "bandwidth monotone" `Quick test_latency_more_bandwidth_helps;
          Alcotest.test_case "stability" `Quick test_latency_stability;
          Alcotest.test_case "aggregates" `Quick test_latency_aggregates;
        ] );
      ( "energy",
        [
          Alcotest.test_case "device only" `Quick test_energy_device_only;
          Alcotest.test_case "offload components" `Quick test_energy_offload_components;
          Alcotest.test_case "offload saves joules" `Quick test_energy_offload_saves_device_joules;
          Alcotest.test_case "mm1 estimate" `Quick test_mm1_estimate;
          prop_mm1_pessimistic;
          prop_latency_flat_matches_breakdown;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "deterministic" `Quick test_scenario_deterministic;
          Alcotest.test_case "seed changes" `Quick test_scenario_seed_changes;
          Alcotest.test_case "overrides" `Quick test_scenario_overrides;
          Alcotest.test_case "ranges respected" `Quick test_scenario_ranges_respected;
        ] );
    ]
