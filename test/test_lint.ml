(* es_lint rule semantics over the seeded fixtures: every rule fires exactly
   where expected and nowhere in the clean fixture; suppression comments,
   guard attributes and the allow file disarm findings; output is invariant
   under input-order shuffling and duplication. *)

open Es_lint

let qtest ?(count = 100) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

(* dune runtest runs in _build/default/test next to the copied fixtures;
   `dune exec test/test_lint.exe` runs from the repo root. *)
let root = if Sys.file_exists "lint_fixtures" then "lint_fixtures" else "test/lint_fixtures"

let cfg ?(rules = Rule.all) ?(allow = Allowlist.empty) ?(mli = Engine.Mli_never) ?cache () =
  { Engine.rules; allow; mli_mode = mli; root; cache_dir = cache }

let all_fixtures =
  [
    "bad_d1.ml";
    "bad_d2.ml";
    "bad_d3.ml";
    "bad_d4.ml";
    "bad_parse.ml";
    "clean.ml";
    "d5_missing.ml";
    "hot_d6.ml";
    (* interprocedural fixtures: these five interact through the phase-2
       call graph (cross-unit guards, transitive effects), so shuffling
       them exercises the summary-fixpoint order-independence too. *)
    "par_race_d7.ml";
    "clock_wrap_d8.ml";
    "locks_d9.ml";
    "hot_d10.ml";
    "alloc_helper.ml";
    "alias_d4.ml";
  ]

let rule_lines (fs : Finding.t list) = List.map (fun (f : Finding.t) -> (Rule.id f.rule, f.line)) fs

let check_rule_lines msg expected fs =
  Alcotest.(check (list (pair string int))) msg expected (rule_lines fs)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ---------- per-rule fixture assertions ---------- *)

let test_d1 () =
  let r = Engine.lint_files (cfg ~rules:[ Rule.D1 ] ()) [ "bad_d1.ml" ] in
  check_rule_lines "D1 fires on every clock/RNG read"
    [ ("D1", 1); ("D1", 2); ("D1", 3); ("D1", 4); ("D1", 5); ("D1", 5) ]
    r.findings;
  (* Line 5 holds two findings, ordered by column: localtime then time. *)
  let line5 = List.filter (fun (f : Finding.t) -> f.line = 5) r.findings in
  Alcotest.(check bool)
    "localtime before time" true
    (match line5 with
    | [ a; b ] -> contains ~sub:"Unix.localtime" a.msg && contains ~sub:"Unix.time" b.msg
    | _ -> false);
  Alcotest.(check int) "Random.State is fine" 0
    (List.length (List.filter (fun (f : Finding.t) -> f.line = 6) r.findings))

let test_d2 () =
  let r = Engine.lint_files (cfg ~rules:[ Rule.D2 ] ()) [ "bad_d2.ml" ] in
  check_rule_lines "D2 fires on unsuppressed iteration"
    [ ("D2", 1); ("D2", 2); ("D2", 3) ]
    r.findings;
  check_rule_lines "sorted-comment suppressions (line above + same line)"
    [ ("D2", 6); ("D2", 7) ]
    r.suppressed

let test_d3 () =
  let r = Engine.lint_files (cfg ~rules:[ Rule.D3 ] ()) [ "bad_d3.ml" ] in
  check_rule_lines "D3 fires on bare compare in a float-bearing module"
    [ ("D3", 3); ("D3", 4) ]
    r.findings

let test_d3_needs_float_types () =
  (* clean.ml uses bare compare on ints and declares no float types. *)
  let r = Engine.lint_files (cfg ~rules:[ Rule.D3 ] ()) [ "clean.ml" ] in
  check_rule_lines "no float declarations, no D3" [] r.findings

let test_d4 () =
  let r = Engine.lint_files (cfg ~rules:[ Rule.D4 ] ()) [ "bad_d4.ml" ] in
  check_rule_lines "D4 fires on every unguarded mutable binding"
    [ ("D4", 1); ("D4", 2); ("D4", 3); ("D4", 7); ("D4", 9) ]
    r.findings;
  let orphan = List.find (fun (f : Finding.t) -> f.line = 9) r.findings in
  Alcotest.(check bool) "bad guard names the missing mutex" true
    (contains ~sub:"no_such_mutex" orphan.msg && contains ~sub:"no Mutex.t" orphan.msg)

let test_d4_atomic_fields () =
  (* A record whose fields are Atomic.t is lock-free domain-safe state: no
     D4, even when another type in the file declares the same field name
     plain mutable.  Fields without an Atomic.t declaration still fire. *)
  let r = Engine.lint_files (cfg ~rules:[ Rule.D4 ] ()) [ "atomic_d4.ml" ] in
  check_rule_lines "only the plain-mutable literal fires" [ ("D4", 5) ] r.findings

let test_d5 () =
  let r =
    Engine.lint_files (cfg ~rules:[ Rule.D5 ] ~mli:Engine.Mli_always ()) [ "d5_missing.ml"; "clean.ml" ]
  in
  check_rule_lines "only the interface-less module fires" [ ("D5", 1) ] r.findings;
  Alcotest.(check string) "on the right file" "d5_missing.ml"
    (List.hd r.findings).Finding.file;
  let r = Engine.lint_files (cfg ~rules:[ Rule.D5 ] ~mli:Engine.Mli_never ()) [ "d5_missing.ml" ] in
  check_rule_lines "Mli_never disables D5" [] r.findings

let test_d6 () =
  let r = Engine.lint_files (cfg ~rules:[ Rule.D6 ] ()) [ "hot_d6.ml" ] in
  (* Line 3 carries two findings at the same position: the List.map ident
     and the closure-literal argument of the same application.  List.combine
     (line 7), the let-bound closure (line 15) and the operator-section
     argument (line 17) must stay silent. *)
  check_rule_lines "D6 fires on List builders and closure arguments"
    [ ("D6", 3); ("D6", 3); ("D6", 5) ]
    r.findings;
  check_rule_lines "cold markers (line above + same line) suppress"
    [ ("D6", 11); ("D6", 11); ("D6", 13) ]
    r.suppressed

let test_d6_needs_hot_tag () =
  (* clean.ml constructs closures in argument position but carries no
     [es_lint: hot] tag, so D6 never looks at it. *)
  let r = Engine.lint_files (cfg ~rules:[ Rule.D6 ] ()) [ "clean.ml"; "bad_d2.ml" ] in
  check_rule_lines "untagged files are exempt" [] r.findings;
  check_rule_lines "…with nothing suppressed either" [] r.suppressed

let test_parse_error () =
  let r = Engine.lint_files (cfg ()) [ "bad_parse.ml" ] in
  (* The error anchors at EOF — line 2 of the one-line fixture. *)
  check_rule_lines "unparsable file yields exactly a parse finding" [ ("parse", 2) ] r.findings

let test_clean_fixture () =
  let r = Engine.lint_files (cfg ~mli:Engine.Mli_always ()) [ "clean.ml" ] in
  check_rule_lines "clean fixture has zero findings under every rule" [] r.findings;
  (* Its suppressions are visible: one sorted comment, two guarded bindings. *)
  Alcotest.(check (list (pair string int)))
    "suppressed inventory"
    [ ("D4", 2); ("D4", 6); ("D2", 11) ]
    (rule_lines r.suppressed)

let test_rule_toggle () =
  let r = Engine.lint_files (cfg ~rules:[ Rule.D2 ] ()) [ "bad_d1.ml" ] in
  check_rule_lines "disabled rules stay silent" [] r.findings

(* ---------- suppression via the allow file ---------- *)

let test_allow_file () =
  let allow =
    match Allowlist.load (Filename.concat root "fixtures.allow") with
    | Ok a -> a
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check bool) "mem" true (Allowlist.mem allow ~rule_id:"D4" ~path:"bad_d4.ml");
  let r = Engine.lint_files (cfg ~allow ()) [ "bad_d4.ml" ] in
  Alcotest.(check int) "all D4 findings rerouted to suppressed" 0 (List.length r.findings);
  Alcotest.(check int) "…and accounted for" 5 (List.length r.suppressed)

let test_allow_round_trip () =
  let t = Allowlist.of_entries [ ("D4", "b.ml"); ("D2", "a.ml"); ("D4", "b.ml") ] in
  Alcotest.(check (list (pair string string)))
    "entries are sorted and deduped"
    [ ("D2", "a.ml"); ("D4", "b.ml") ]
    (Allowlist.entries t);
  match Allowlist.of_string ~file:"<mem>" (String.concat "\n" (Allowlist.to_lines t)) with
  | Error m -> Alcotest.fail m
  | Ok t' ->
      Alcotest.(check (list (pair string string)))
        "to_lines/of_string round-trips" (Allowlist.entries t) (Allowlist.entries t')

let test_allow_rejects_garbage () =
  (* D7–D10 are real rules now, so their entries must parse… *)
  (match Allowlist.of_string ~file:"<mem>" "D9:foo.ml\nD10:bar.ml" with
  | Ok a ->
      Alcotest.(check bool) "interprocedural rules allowed" true
        (Allowlist.mem a ~rule_id:"D10" ~path:"bar.ml")
  | Error m -> Alcotest.fail m);
  (match Allowlist.of_string ~file:"<mem>" "D42:foo.ml" with
  | Ok _ -> Alcotest.fail "unknown rule accepted"
  | Error m -> Alcotest.(check bool) "names the bad rule" true (contains ~sub:"D42" m));
  match Allowlist.of_string ~file:"<mem>" "no-colon-here" with
  | Ok _ -> Alcotest.fail "missing colon accepted"
  | Error _ -> ()

(* ---------- output determinism ---------- *)

let shuffle seed xs =
  let rng = Es_util.Prng.create seed in
  let arr = Array.of_list xs in
  for i = Array.length arr - 1 downto 1 do
    let j = Es_util.Prng.int rng (i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done;
  Array.to_list arr

let render_all ?cache files =
  let r = Engine.lint_files (cfg ~mli:Engine.Mli_always ?cache ()) files in
  Report.render_findings r.findings ^ Report.render_summary r ^ Report.jsonl r.findings

let qcheck_order_invariance =
  let baseline = lazy (render_all all_fixtures) in
  qtest "report is byte-identical under shuffled + duplicated file order" QCheck.int (fun seed ->
      let files = shuffle seed all_fixtures @ shuffle (seed + 1) all_fixtures in
      String.equal (Lazy.force baseline) (render_all files))

let test_finding_format () =
  let r = Engine.lint_files (cfg ~rules:[ Rule.D1 ] ()) [ "bad_d1.ml" ] in
  let first = List.hd r.findings in
  Alcotest.(check bool) "file:line:col [rule] message" true
    (contains ~sub:"bad_d1.ml:1:" (Finding.to_line first)
    && contains ~sub:"[D1]" (Finding.to_line first));
  Alcotest.(check bool) "jsonl carries the rule id" true
    (contains ~sub:{|"rule":"D1"|} (Finding.to_jsonl first))

(* ---------- interprocedural rules (D7–D10) ---------- *)

let test_d7 () =
  let r = Engine.lint_files (cfg ~rules:[ Rule.D7 ] ()) [ "par_race_d7.ml" ] in
  check_rule_lines "D7 fires at each domain fan-out shipping racy work"
    [ ("D7", 3); ("D7", 7); ("D7", 10) ]
    r.findings;
  let at l = List.find (fun (f : Finding.t) -> f.line = l) r.findings in
  Alcotest.(check bool) "transitive toplevel race names the ref and the hop" true
    (contains ~sub:"Par_race_d7.total" (at 3).msg && contains ~sub:"par_race_d7.ml:2" (at 3).msg);
  Alcotest.(check bool) "captured-local race is its own message" true
    (contains ~sub:"captured local" (at 7).msg && contains ~sub:"local" (at 7).msg);
  Alcotest.(check bool) "Domain.spawn of a function reference is covered" true
    (contains ~sub:"Par_race_d7.total" (at 10).msg)

let test_d8 () =
  let r = Engine.lint_files (cfg ~rules:[ Rule.D8 ] ()) [ "clock_wrap_d8.ml" ] in
  (* now () reads the clock directly (that is D1's beat); D8 fires at every
     call site whose callee is transitively clocky: stamp -> now (one hop)
     and log_latency -> stamp (two hops). *)
  check_rule_lines "D8 fires at each call site reaching the clock"
    [ ("D8", 2); ("D8", 3) ]
    r.findings;
  List.iter
    (fun (f : Finding.t) ->
      Alcotest.(check bool) "names the underlying clock read" true
        (contains ~sub:"Unix.gettimeofday" f.msg))
    r.findings

let test_d9 () =
  let r = Engine.lint_files (cfg ~rules:[ Rule.D9 ] ()) [ "locks_d9.ml" ] in
  (* first takes a then b, second takes b then a: both inner acquisitions
     complete the a<->b cycle. *)
  check_rule_lines "D9 fires on both edges of the AB/BA cycle"
    [ ("D9", 6); ("D9", 12) ]
    r.findings;
  List.iter
    (fun (f : Finding.t) ->
      Alcotest.(check bool) "names both mutexes" true
        (contains ~sub:"Locks_d9.a" f.msg && contains ~sub:"Locks_d9.b" f.msg))
    r.findings

let test_d10 () =
  let r = Engine.lint_files (cfg ~rules:[ Rule.D10 ] ()) [ "hot_d10.ml"; "alloc_helper.ml" ] in
  check_rule_lines "hot-file calls into allocating helpers fire, one and two hops"
    [ ("D10", 2); ("D10", 3) ]
    r.findings;
  let deep = List.find (fun (f : Finding.t) -> f.line = 3) r.findings in
  Alcotest.(check bool) "witness is the List.map in the helper" true
    (contains ~sub:"List.map" deep.msg && contains ~sub:"alloc_helper.ml:1" deep.msg);
  check_rule_lines "a cold marker on the call site suppresses" [ ("D10", 7) ] r.suppressed;
  (* The helper itself is not a hot file: alone it yields nothing. *)
  let r = Engine.lint_files (cfg ~rules:[ Rule.D10 ] ()) [ "alloc_helper.ml" ] in
  check_rule_lines "no hot tag, no D10" [] r.findings

let test_alias_d4 () =
  (* alias_d4.ml guards through a value alias (m = real_lock), a qualified
     cross-unit mutex (Locks_d9.a) and a module alias (L.b = Locks_d9.b);
     only the guard naming a nonexistent mutex fires. *)
  let r = Engine.lint_files (cfg ~rules:[ Rule.D4 ] ()) [ "alias_d4.ml"; "locks_d9.ml" ] in
  check_rule_lines "only the orphan guard fires" [ ("D4", 8) ] r.findings;
  let orphan = List.hd r.findings in
  Alcotest.(check bool) "orphan guard names the missing mutex" true
    (contains ~sub:"Locks_d9.zzz" orphan.msg && contains ~sub:"no Mutex.t" orphan.msg);
  Alcotest.(check (list int))
    "alias, cross-unit and module-alias guards all verify"
    [ 5; 6; 7 ]
    (List.map (fun (f : Finding.t) -> f.line) r.suppressed);
  (* Without locks_d9.ml in the analyzed set, the qualified guards cannot
     be verified and fire instead of verifying. *)
  let r = Engine.lint_files (cfg ~rules:[ Rule.D4 ] ()) [ "alias_d4.ml" ] in
  check_rule_lines "qualified guards need the defining unit"
    [ ("D4", 6); ("D4", 7); ("D4", 8) ]
    r.findings

let test_why_chain () =
  let a = Engine.analyze_files (cfg ()) all_fixtures in
  (* D8 at clock_wrap_d8.ml:3 is two hops from the clock read: the chain
     must walk log_latency -> stamp -> now -> Unix.gettimeofday. *)
  let chain = Callgraph.explain a.graph ~rule:Rule.D8 ~file:"clock_wrap_d8.ml" ~line:3 in
  let text = String.concat "\n" chain in
  Alcotest.(check bool) "multi-hop chain reaches the witness" true
    (contains ~sub:"log_latency" text && contains ~sub:"stamp" text && contains ~sub:"now" text
    && contains ~sub:"Unix.gettimeofday" text
    && contains ~sub:"clock_wrap_d8.ml:1" text);
  (* D9 explains the cycle rather than a call chain. *)
  let cycle = String.concat "\n" (Callgraph.explain a.graph ~rule:Rule.D9 ~file:"locks_d9.ml" ~line:6) in
  Alcotest.(check bool) "lock cycle names both mutexes" true
    (contains ~sub:"Locks_d9.a" cycle && contains ~sub:"Locks_d9.b" cycle);
  Alcotest.(check (list string))
    "no anchored finding, no chain" []
    (Callgraph.explain a.graph ~rule:Rule.D8 ~file:"clean.ml" ~line:1)

let test_summary_cache () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "es_lint_cache_test" in
  (* Stale entries from a previous run are fine: the key embeds the content
     hash and the format version, so they can only miss. *)
  let cold = render_all ~cache:dir all_fixtures in
  Alcotest.(check bool) "cold run populates the cache" true
    (Sys.file_exists dir && Array.length (Sys.readdir dir) > 0);
  let warm = render_all ~cache:dir all_fixtures in
  Alcotest.(check string) "warm run is byte-identical" cold warm;
  Alcotest.(check string) "…and matches the uncached analysis" (render_all all_fixtures) cold

let qcheck_cache_order_invariance =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "es_lint_cache_qtest" in
  let baseline = lazy (render_all all_fixtures) in
  qtest ~count:20 "cached analysis is byte-identical under shuffled file order" QCheck.int
    (fun seed ->
      let files = shuffle seed all_fixtures in
      String.equal (Lazy.force baseline) (render_all ~cache:dir files))

(* ---------- ratchet baseline ---------- *)

let mk_finding ?(rule = Rule.D4) ?(file = "x.ml") ?(line = 1) ?(col = 0) msg =
  Finding.make ~rule ~file ~line ~col msg

let test_baseline_round_trip () =
  let fs =
    [
      mk_finding ~rule:Rule.D7 ~file:"b.ml" ~line:9 "races on B.state";
      mk_finding ~rule:Rule.D4 ~file:"a.ml" ~line:2 {|mutable "t" with \ and "quotes"|};
    ]
  in
  let text = Baseline.render fs in
  Alcotest.(check bool) "render leads with the schema header" true
    (contains ~sub:Baseline.schema_line text);
  match Baseline.of_string ~file:"<mem>" text with
  | Error m -> Alcotest.fail m
  | Ok b ->
      List.iter (fun f -> Alcotest.(check bool) "round-trips" true (Baseline.mem b f)) fs;
      (* Matching is by (rule, file, message): line drift stays baselined,
         a new message or file does not. *)
      Alcotest.(check bool) "line shift still matches" true
        (Baseline.mem b (mk_finding ~rule:Rule.D7 ~file:"b.ml" ~line:99 "races on B.state"));
      check_rule_lines "rogue finding survives the diff"
        [ ("D7", 9) ]
        (Baseline.diff b (fs @ [ mk_finding ~rule:Rule.D7 ~file:"c.ml" ~line:9 "races on B.state" ]))

let test_baseline_rejects_bad_header () =
  (match Baseline.of_string ~file:"<mem>" "{\"rule\":\"D1\"}\n" with
  | Ok _ -> Alcotest.fail "missing schema header accepted"
  | Error m -> Alcotest.(check bool) "error mentions the schema" true (contains ~sub:"schema" m));
  match Baseline.of_string ~file:"<mem>" (Baseline.schema_line ^ "\nnot json\n") with
  | Ok _ -> Alcotest.fail "garbage line accepted"
  | Error _ -> ()

let test_baseline_gates_engine_output () =
  (* Freeze the current D4 fixture findings, then check only a fresh rule
     violation escapes the ratchet. *)
  let r = Engine.lint_files (cfg ~rules:[ Rule.D4 ] ()) [ "bad_d4.ml" ] in
  let b =
    match Baseline.of_string ~file:"<mem>" (Baseline.render r.findings) with
    | Ok b -> b
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check (list (pair string int))) "baselined run is clean" [] (rule_lines (Baseline.diff b r.findings));
  let r2 = Engine.lint_files (cfg ~rules:[ Rule.D4; Rule.D7 ] ()) [ "bad_d4.ml"; "par_race_d7.ml" ] in
  (* The new file brings one new D4 (its unguarded ref) and three D7s. *)
  check_rule_lines "new findings escape the ratchet"
    [ ("D4", 1); ("D7", 3); ("D7", 7); ("D7", 10) ]
    (Baseline.diff b r2.findings)

let () =
  Alcotest.run "es_lint"
    [
      ( "rules",
        [
          Alcotest.test_case "D1 nondeterminism sources" `Quick test_d1;
          Alcotest.test_case "D2 unordered iteration" `Quick test_d2;
          Alcotest.test_case "D3 polymorphic compare" `Quick test_d3;
          Alcotest.test_case "D3 needs float declarations" `Quick test_d3_needs_float_types;
          Alcotest.test_case "D4 mutable toplevel state" `Quick test_d4;
          Alcotest.test_case "D4 Atomic.t record fields exempt" `Quick test_d4_atomic_fields;
          Alcotest.test_case "D5 mli coverage" `Quick test_d5;
          Alcotest.test_case "D6 hot-path allocation" `Quick test_d6;
          Alcotest.test_case "D6 needs the hot tag" `Quick test_d6_needs_hot_tag;
          Alcotest.test_case "parse error" `Quick test_parse_error;
          Alcotest.test_case "clean fixture is clean" `Quick test_clean_fixture;
          Alcotest.test_case "rule toggling" `Quick test_rule_toggle;
        ] );
      ( "interprocedural",
        [
          Alcotest.test_case "D7 domain-escape races" `Quick test_d7;
          Alcotest.test_case "D8 transitive nondeterminism" `Quick test_d8;
          Alcotest.test_case "D9 lock-order cycle" `Quick test_d9;
          Alcotest.test_case "D10 transitive hot-path allocation" `Quick test_d10;
          Alcotest.test_case "D4 guard aliases and cross-unit mutexes" `Quick test_alias_d4;
          Alcotest.test_case "--why call chains" `Quick test_why_chain;
          Alcotest.test_case "summary cache cold vs warm" `Quick test_summary_cache;
          qcheck_cache_order_invariance;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "render/of_string round-trip" `Quick test_baseline_round_trip;
          Alcotest.test_case "rejects bad header" `Quick test_baseline_rejects_bad_header;
          Alcotest.test_case "gates engine output" `Quick test_baseline_gates_engine_output;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "allow file reroutes findings" `Quick test_allow_file;
          Alcotest.test_case "allow round-trip" `Quick test_allow_round_trip;
          Alcotest.test_case "allow rejects garbage" `Quick test_allow_rejects_garbage;
        ] );
      ( "determinism",
        [ qcheck_order_invariance; Alcotest.test_case "finding format" `Quick test_finding_format ]
      );
    ]
