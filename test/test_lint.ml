(* es_lint rule semantics over the seeded fixtures: every rule fires exactly
   where expected and nowhere in the clean fixture; suppression comments,
   guard attributes and the allow file disarm findings; output is invariant
   under input-order shuffling and duplication. *)

open Es_lint

let qtest ?(count = 100) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

(* dune runtest runs in _build/default/test next to the copied fixtures;
   `dune exec test/test_lint.exe` runs from the repo root. *)
let root = if Sys.file_exists "lint_fixtures" then "lint_fixtures" else "test/lint_fixtures"

let cfg ?(rules = Rule.all) ?(allow = Allowlist.empty) ?(mli = Engine.Mli_never) () =
  { Engine.rules; allow; mli_mode = mli; root }

let all_fixtures =
  [
    "bad_d1.ml";
    "bad_d2.ml";
    "bad_d3.ml";
    "bad_d4.ml";
    "bad_parse.ml";
    "clean.ml";
    "d5_missing.ml";
    "hot_d6.ml";
  ]

let rule_lines (fs : Finding.t list) = List.map (fun (f : Finding.t) -> (Rule.id f.rule, f.line)) fs

let check_rule_lines msg expected fs =
  Alcotest.(check (list (pair string int))) msg expected (rule_lines fs)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ---------- per-rule fixture assertions ---------- *)

let test_d1 () =
  let r = Engine.lint_files (cfg ~rules:[ Rule.D1 ] ()) [ "bad_d1.ml" ] in
  check_rule_lines "D1 fires on every clock/RNG read"
    [ ("D1", 1); ("D1", 2); ("D1", 3); ("D1", 4); ("D1", 5); ("D1", 5) ]
    r.findings;
  (* Line 5 holds two findings, ordered by column: localtime then time. *)
  let line5 = List.filter (fun (f : Finding.t) -> f.line = 5) r.findings in
  Alcotest.(check bool)
    "localtime before time" true
    (match line5 with
    | [ a; b ] -> contains ~sub:"Unix.localtime" a.msg && contains ~sub:"Unix.time" b.msg
    | _ -> false);
  Alcotest.(check int) "Random.State is fine" 0
    (List.length (List.filter (fun (f : Finding.t) -> f.line = 6) r.findings))

let test_d2 () =
  let r = Engine.lint_files (cfg ~rules:[ Rule.D2 ] ()) [ "bad_d2.ml" ] in
  check_rule_lines "D2 fires on unsuppressed iteration"
    [ ("D2", 1); ("D2", 2); ("D2", 3) ]
    r.findings;
  check_rule_lines "sorted-comment suppressions (line above + same line)"
    [ ("D2", 6); ("D2", 7) ]
    r.suppressed

let test_d3 () =
  let r = Engine.lint_files (cfg ~rules:[ Rule.D3 ] ()) [ "bad_d3.ml" ] in
  check_rule_lines "D3 fires on bare compare in a float-bearing module"
    [ ("D3", 3); ("D3", 4) ]
    r.findings

let test_d3_needs_float_types () =
  (* clean.ml uses bare compare on ints and declares no float types. *)
  let r = Engine.lint_files (cfg ~rules:[ Rule.D3 ] ()) [ "clean.ml" ] in
  check_rule_lines "no float declarations, no D3" [] r.findings

let test_d4 () =
  let r = Engine.lint_files (cfg ~rules:[ Rule.D4 ] ()) [ "bad_d4.ml" ] in
  check_rule_lines "D4 fires on every unguarded mutable binding"
    [ ("D4", 1); ("D4", 2); ("D4", 3); ("D4", 7); ("D4", 9) ]
    r.findings;
  let orphan = List.find (fun (f : Finding.t) -> f.line = 9) r.findings in
  Alcotest.(check bool) "bad guard names the missing mutex" true
    (contains ~sub:"no_such_mutex" orphan.msg && contains ~sub:"no Mutex.t" orphan.msg)

let test_d4_atomic_fields () =
  (* A record whose fields are Atomic.t is lock-free domain-safe state: no
     D4, even when another type in the file declares the same field name
     plain mutable.  Fields without an Atomic.t declaration still fire. *)
  let r = Engine.lint_files (cfg ~rules:[ Rule.D4 ] ()) [ "atomic_d4.ml" ] in
  check_rule_lines "only the plain-mutable literal fires" [ ("D4", 5) ] r.findings

let test_d5 () =
  let r =
    Engine.lint_files (cfg ~rules:[ Rule.D5 ] ~mli:Engine.Mli_always ()) [ "d5_missing.ml"; "clean.ml" ]
  in
  check_rule_lines "only the interface-less module fires" [ ("D5", 1) ] r.findings;
  Alcotest.(check string) "on the right file" "d5_missing.ml"
    (List.hd r.findings).Finding.file;
  let r = Engine.lint_files (cfg ~rules:[ Rule.D5 ] ~mli:Engine.Mli_never ()) [ "d5_missing.ml" ] in
  check_rule_lines "Mli_never disables D5" [] r.findings

let test_d6 () =
  let r = Engine.lint_files (cfg ~rules:[ Rule.D6 ] ()) [ "hot_d6.ml" ] in
  (* Line 3 carries two findings at the same position: the List.map ident
     and the closure-literal argument of the same application.  List.combine
     (line 7), the let-bound closure (line 15) and the operator-section
     argument (line 17) must stay silent. *)
  check_rule_lines "D6 fires on List builders and closure arguments"
    [ ("D6", 3); ("D6", 3); ("D6", 5) ]
    r.findings;
  check_rule_lines "cold markers (line above + same line) suppress"
    [ ("D6", 11); ("D6", 11); ("D6", 13) ]
    r.suppressed

let test_d6_needs_hot_tag () =
  (* clean.ml constructs closures in argument position but carries no
     [es_lint: hot] tag, so D6 never looks at it. *)
  let r = Engine.lint_files (cfg ~rules:[ Rule.D6 ] ()) [ "clean.ml"; "bad_d2.ml" ] in
  check_rule_lines "untagged files are exempt" [] r.findings;
  check_rule_lines "…with nothing suppressed either" [] r.suppressed

let test_parse_error () =
  let r = Engine.lint_files (cfg ()) [ "bad_parse.ml" ] in
  (* The error anchors at EOF — line 2 of the one-line fixture. *)
  check_rule_lines "unparsable file yields exactly a parse finding" [ ("parse", 2) ] r.findings

let test_clean_fixture () =
  let r = Engine.lint_files (cfg ~mli:Engine.Mli_always ()) [ "clean.ml" ] in
  check_rule_lines "clean fixture has zero findings under every rule" [] r.findings;
  (* Its suppressions are visible: one sorted comment, two guarded bindings. *)
  Alcotest.(check (list (pair string int)))
    "suppressed inventory"
    [ ("D4", 2); ("D4", 6); ("D2", 11) ]
    (rule_lines r.suppressed)

let test_rule_toggle () =
  let r = Engine.lint_files (cfg ~rules:[ Rule.D2 ] ()) [ "bad_d1.ml" ] in
  check_rule_lines "disabled rules stay silent" [] r.findings

(* ---------- suppression via the allow file ---------- *)

let test_allow_file () =
  let allow =
    match Allowlist.load (Filename.concat root "fixtures.allow") with
    | Ok a -> a
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check bool) "mem" true (Allowlist.mem allow ~rule_id:"D4" ~path:"bad_d4.ml");
  let r = Engine.lint_files (cfg ~allow ()) [ "bad_d4.ml" ] in
  Alcotest.(check int) "all D4 findings rerouted to suppressed" 0 (List.length r.findings);
  Alcotest.(check int) "…and accounted for" 5 (List.length r.suppressed)

let test_allow_round_trip () =
  let t = Allowlist.of_entries [ ("D4", "b.ml"); ("D2", "a.ml"); ("D4", "b.ml") ] in
  Alcotest.(check (list (pair string string)))
    "entries are sorted and deduped"
    [ ("D2", "a.ml"); ("D4", "b.ml") ]
    (Allowlist.entries t);
  match Allowlist.of_string ~file:"<mem>" (String.concat "\n" (Allowlist.to_lines t)) with
  | Error m -> Alcotest.fail m
  | Ok t' ->
      Alcotest.(check (list (pair string string)))
        "to_lines/of_string round-trips" (Allowlist.entries t) (Allowlist.entries t')

let test_allow_rejects_garbage () =
  (match Allowlist.of_string ~file:"<mem>" "D9:foo.ml" with
  | Ok _ -> Alcotest.fail "unknown rule accepted"
  | Error m -> Alcotest.(check bool) "names the bad rule" true (contains ~sub:"D9" m));
  match Allowlist.of_string ~file:"<mem>" "no-colon-here" with
  | Ok _ -> Alcotest.fail "missing colon accepted"
  | Error _ -> ()

(* ---------- output determinism ---------- *)

let shuffle seed xs =
  let rng = Es_util.Prng.create seed in
  let arr = Array.of_list xs in
  for i = Array.length arr - 1 downto 1 do
    let j = Es_util.Prng.int rng (i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done;
  Array.to_list arr

let render_all files =
  let r = Engine.lint_files (cfg ~mli:Engine.Mli_always ()) files in
  Report.render_findings r.findings ^ Report.render_summary r ^ Report.jsonl r.findings

let qcheck_order_invariance =
  let baseline = lazy (render_all all_fixtures) in
  qtest "report is byte-identical under shuffled + duplicated file order" QCheck.int (fun seed ->
      let files = shuffle seed all_fixtures @ shuffle (seed + 1) all_fixtures in
      String.equal (Lazy.force baseline) (render_all files))

let test_finding_format () =
  let r = Engine.lint_files (cfg ~rules:[ Rule.D1 ] ()) [ "bad_d1.ml" ] in
  let first = List.hd r.findings in
  Alcotest.(check bool) "file:line:col [rule] message" true
    (contains ~sub:"bad_d1.ml:1:" (Finding.to_line first)
    && contains ~sub:"[D1]" (Finding.to_line first));
  Alcotest.(check bool) "jsonl carries the rule id" true
    (contains ~sub:{|"rule":"D1"|} (Finding.to_jsonl first))

let () =
  Alcotest.run "es_lint"
    [
      ( "rules",
        [
          Alcotest.test_case "D1 nondeterminism sources" `Quick test_d1;
          Alcotest.test_case "D2 unordered iteration" `Quick test_d2;
          Alcotest.test_case "D3 polymorphic compare" `Quick test_d3;
          Alcotest.test_case "D3 needs float declarations" `Quick test_d3_needs_float_types;
          Alcotest.test_case "D4 mutable toplevel state" `Quick test_d4;
          Alcotest.test_case "D4 Atomic.t record fields exempt" `Quick test_d4_atomic_fields;
          Alcotest.test_case "D5 mli coverage" `Quick test_d5;
          Alcotest.test_case "D6 hot-path allocation" `Quick test_d6;
          Alcotest.test_case "D6 needs the hot tag" `Quick test_d6_needs_hot_tag;
          Alcotest.test_case "parse error" `Quick test_parse_error;
          Alcotest.test_case "clean fixture is clean" `Quick test_clean_fixture;
          Alcotest.test_case "rule toggling" `Quick test_rule_toggle;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "allow file reroutes findings" `Quick test_allow_file;
          Alcotest.test_case "allow round-trip" `Quick test_allow_round_trip;
          Alcotest.test_case "allow rejects garbage" `Quick test_allow_rejects_garbage;
        ] );
      ( "determinism",
        [ qcheck_order_invariance; Alcotest.test_case "finding format" `Quick test_finding_format ]
      );
    ]
