(* Fault-schedule compilation: parsing, sorting, sugar, the seeded
   stochastic generator, and the availability queries recovery builds on. *)

open Es_sim

let event : Faults.event Alcotest.testable =
  Alcotest.testable Faults.pp_event ( = )

let events_of t = Faults.events t

(* ---------- scripted ---------- *)

let test_scripted_sorts () =
  let t =
    Faults.scripted
      [ (30.0, Faults.Server_up 0); (10.0, Faults.Server_down 0); (20.0, Faults.Link_outage 3) ]
  in
  Alcotest.(check (list (pair (float 0.0) event)))
    "stable time sort"
    [
      (10.0, Faults.Server_down 0); (20.0, Faults.Link_outage 3); (30.0, Faults.Server_up 0);
    ]
    (events_of t)

let test_scripted_ties_keep_order () =
  (* Equal timestamps must apply in scripted order: down then up at t=5
     leaves the server up; the compiled schedule must preserve that. *)
  let t = Faults.scripted [ (5.0, Faults.Server_down 1); (5.0, Faults.Server_up 1) ] in
  Alcotest.(check (list (pair (float 0.0) event)))
    "tie order preserved"
    [ (5.0, Faults.Server_down 1); (5.0, Faults.Server_up 1) ]
    (events_of t);
  Alcotest.(check (list int)) "net effect: up" [] (Faults.down_at t ~time:6.0)

let test_scripted_rejects_bad_input () =
  Alcotest.check_raises "negative time"
    (Invalid_argument "Faults: event time must be finite and >= 0, got -1") (fun () ->
      ignore (Faults.scripted [ (-1.0, Faults.Server_down 0) ]));
  (match
     try
       ignore (Faults.scripted [ (1.0, Faults.Link_degraded (0, 0.0)) ]);
       `No_raise
     with Invalid_argument _ -> `Raised
   with
  | `Raised -> ()
  | `No_raise -> Alcotest.fail "zero factor accepted");
  match
    try
      ignore (Faults.scripted [ (1.0, Faults.Straggler (0, Float.nan)) ]);
      `No_raise
    with Invalid_argument _ -> `Raised
  with
  | `Raised -> ()
  | `No_raise -> Alcotest.fail "NaN factor accepted"

let test_sugar () =
  Alcotest.(check (list (pair (float 0.0) event)))
    "crash with repair"
    [ (20.0, Faults.Server_down 2); (30.0, Faults.Server_up 2) ]
    (Faults.crash ~at:20.0 ~for_s:10.0 2);
  Alcotest.(check (list (pair (float 0.0) event)))
    "crash without repair" [ (20.0, Faults.Server_down 2) ] (Faults.crash ~at:20.0 2);
  Alcotest.(check (list (pair (float 0.0) event)))
    "outage"
    [ (5.0, Faults.Link_outage 7); (6.5, Faults.Link_restored 7) ]
    (Faults.outage ~at:5.0 ~for_s:1.5 7);
  Alcotest.(check (list (pair (float 0.0) event)))
    "degrade restores to factor 1"
    [ (5.0, Faults.Link_degraded (1, 0.25)); (9.0, Faults.Link_degraded (1, 1.0)) ]
    (Faults.degrade ~at:5.0 ~for_s:4.0 ~factor:0.25 1);
  Alcotest.(check (list (pair (float 0.0) event)))
    "straggle restores to factor 1"
    [ (5.0, Faults.Straggler (0, 3.0)); (9.0, Faults.Straggler (0, 1.0)) ]
    (Faults.straggle ~at:5.0 ~for_s:4.0 ~factor:3.0 0)

(* ---------- spec parsing ---------- *)

let test_of_spec_round_trip () =
  match Faults.of_spec "down:0@20+10, straggle:1:2.5@5+10; degrade:3:0.5@2+4" with
  | Error e -> Alcotest.fail e
  | Ok evs ->
      let t = Faults.scripted evs in
      Alcotest.(check (list (pair (float 1e-9) event)))
        "parsed and sorted"
        [
          (2.0, Faults.Link_degraded (3, 0.5));
          (5.0, Faults.Straggler (1, 2.5));
          (6.0, Faults.Link_degraded (3, 1.0));
          (15.0, Faults.Straggler (1, 1.0));
          (20.0, Faults.Server_down 0);
          (30.0, Faults.Server_up 0);
        ]
        (events_of t)

let test_of_spec_errors () =
  let is_error s =
    match Faults.of_spec s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s)
  in
  is_error "frob:0@20";
  is_error "down:0";
  is_error "down:0@-5";
  is_error "outage:1@5";
  (* outage requires a duration *)
  is_error "degrade:1:0@5+2";
  (* factor must be positive *)
  is_error "down:x@20"

let test_of_spec_or_file () =
  let path = Filename.temp_file "faults" ".txt" in
  let oc = open_out path in
  output_string oc "# crash then a straggler\ndown:0@20+10\n\nstraggle:1:2.0@5+10\n";
  close_out oc;
  (match Faults.of_spec_or_file path with
  | Error e -> Alcotest.fail e
  | Ok t ->
      Alcotest.(check int) "four events from file" 4 (List.length (events_of t)));
  Sys.remove path;
  match Faults.of_spec_or_file "down:1@3" with
  | Error e -> Alcotest.fail e
  | Ok t ->
      Alcotest.(check (list (pair (float 0.0) event)))
        "inline fallback" [ (3.0, Faults.Server_down 1) ] (events_of t)

(* ---------- stochastic generator ---------- *)

let random_schedule seed =
  Faults.random ~seed ~duration_s:500.0 ~n_servers:3 ~n_devices:8 ~server_mtbf_s:100.0
    ~server_mttr_s:10.0 ~outage_rate:0.01 ~outage_mean_s:5.0 ~straggler_rate:0.005
    ~straggler_factor:2.0 ~straggler_mean_s:20.0 ()

let test_random_deterministic () =
  let a = random_schedule 42 and b = random_schedule 42 in
  Alcotest.(check (list (pair (float 0.0) event))) "same seed, same schedule" (events_of a)
    (events_of b);
  let c = random_schedule 43 in
  Alcotest.(check bool) "different seed diverges" true (events_of a <> events_of c)

let test_random_validates () =
  let t = random_schedule 7 in
  Alcotest.(check bool) "produces events" true (not (Faults.is_empty t));
  (match Faults.validate ~n_devices:8 ~n_servers:3 t with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Faults.validate ~n_devices:8 ~n_servers:1 t with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "server indices beyond 0 must fail validation for n_servers=1"

let test_validate_indices () =
  let t = Faults.scripted [ (1.0, Faults.Link_outage 5) ] in
  (match Faults.validate ~n_devices:6 ~n_servers:1 t with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Faults.validate ~n_devices:5 ~n_servers:1 t with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "device 5 of 5 must be out of range"

(* ---------- availability queries ---------- *)

let test_down_at () =
  let t = Faults.scripted (Faults.crash ~at:20.0 ~for_s:10.0 1 @ Faults.crash ~at:25.0 0) in
  Alcotest.(check (list int)) "before" [] (Faults.down_at t ~time:19.9);
  Alcotest.(check (list int)) "at the crash instant" [ 1 ] (Faults.down_at t ~time:20.0);
  Alcotest.(check (list int)) "both down, sorted" [ 0; 1 ] (Faults.down_at t ~time:29.0);
  Alcotest.(check (list int)) "after repair" [ 0 ] (Faults.down_at t ~time:31.0)

let test_down_intervals () =
  let t = Faults.scripted (Faults.crash ~at:20.0 ~for_s:10.0 1 @ Faults.crash ~at:25.0 0) in
  Alcotest.(check (list (triple int (float 0.0) (float 0.0))))
    "intervals, unrepaired clipped to horizon"
    [ (0, 25.0, 40.0); (1, 20.0, 30.0) ]
    (List.sort compare (Faults.down_intervals t ~horizon_s:40.0))

(* ---------- backend equivalence under faults ---------- *)

(* The Calendar engine is the production default, the Heap the oracle:
   the whole fault machinery (evictions, retries, timeouts, fallbacks,
   and overload shedding on top) must produce field-for-field identical
   reports on both. *)

let faulty_report ?(overload = Es_sim.Overload.off) engine faults =
  let c = Es_edge.Scenario.build Es_edge.Scenario.default in
  let ds = Es_baselines.Baselines.neurosurgeon.Es_baselines.Baselines.solve c in
  let options =
    {
      Runner.default_options with
      Runner.duration_s = 40.0;
      faults;
      resilience = Some Runner.default_resilience;
      engine;
      overload;
    }
  in
  Runner.run ~options c ds

let mixed_faults =
  (* One of everything the injector can throw. *)
  Faults.scripted
    (Faults.crash ~at:10.0 ~for_s:8.0 0
    @ Faults.outage ~at:15.0 ~for_s:3.0 2
    @ Faults.straggle ~at:20.0 ~for_s:10.0 ~factor:3.0 1
    @ [ (25.0, Faults.Link_degraded (4, 0.25)); (32.0, Faults.Link_restored 4) ])

let test_backends_equal_under_faults () =
  let rh = faulty_report Engine.Heap mixed_faults in
  let rc = faulty_report Engine.Calendar mixed_faults in
  Alcotest.(check bool) "scripted faults: reports identical" true (rh = rc);
  Alcotest.(check bool) "the run actually exercised resilience" true
    (rh.Metrics.total_degraded > 0 || rh.Metrics.total_timed_out > 0
   || rh.Metrics.total_dropped > 0)

let test_backends_equal_under_random_faults () =
  let faults =
    Faults.random ~seed:5 ~duration_s:40.0 ~n_servers:2 ~n_devices:20 ~server_mtbf_s:30.0
      ~server_mttr_s:5.0 ~outage_rate:0.02 ~outage_mean_s:3.0 ~straggler_rate:0.01
      ~straggler_factor:2.5 ~straggler_mean_s:10.0 ()
  in
  let rh = faulty_report Engine.Heap faults in
  let rc = faulty_report Engine.Calendar faults in
  Alcotest.(check bool) "random faults: reports identical" true (rh = rc)

let test_backends_equal_faults_with_overload () =
  (* Faults and overload protection together: breaker trips feed on the
     fault-induced failures, admission sheds on the induced backlog. *)
  let overload =
    {
      Es_sim.Overload.admission = Some Es_sim.Overload.default_admission;
      breaker =
        Some
          {
            Es_sim.Overload.default_breaker with
            Es_sim.Overload.window = 8;
            min_samples = 4;
          };
      brownout = Some Es_sim.Overload.default_brownout;
      rate_limit = Some Es_sim.Overload.default_rate_limit;
    }
  in
  let rh = faulty_report ~overload Engine.Heap mixed_faults in
  let rc = faulty_report ~overload Engine.Calendar mixed_faults in
  Alcotest.(check bool) "faults + overload: reports identical" true (rh = rc);
  Alcotest.(check int) "conservation with shed holds" rh.Metrics.total_generated
    (rh.Metrics.total_completed + rh.Metrics.total_dropped + rh.Metrics.total_timed_out
   + rh.Metrics.total_shed)

let () =
  Alcotest.run "es_sim_faults"
    [
      ( "scripted",
        [
          Alcotest.test_case "sorts" `Quick test_scripted_sorts;
          Alcotest.test_case "tie order" `Quick test_scripted_ties_keep_order;
          Alcotest.test_case "rejects bad input" `Quick test_scripted_rejects_bad_input;
          Alcotest.test_case "sugar" `Quick test_sugar;
        ] );
      ( "spec",
        [
          Alcotest.test_case "round trip" `Quick test_of_spec_round_trip;
          Alcotest.test_case "errors" `Quick test_of_spec_errors;
          Alcotest.test_case "file or inline" `Quick test_of_spec_or_file;
        ] );
      ( "random",
        [
          Alcotest.test_case "deterministic" `Quick test_random_deterministic;
          Alcotest.test_case "validates" `Quick test_random_validates;
        ] );
      ( "queries",
        [
          Alcotest.test_case "validate indices" `Quick test_validate_indices;
          Alcotest.test_case "down_at" `Quick test_down_at;
          Alcotest.test_case "down_intervals" `Quick test_down_intervals;
        ] );
      ( "backends",
        [
          Alcotest.test_case "scripted faults equal" `Quick test_backends_equal_under_faults;
          Alcotest.test_case "random faults equal" `Quick
            test_backends_equal_under_random_faults;
          Alcotest.test_case "faults + overload equal" `Quick
            test_backends_equal_faults_with_overload;
        ] );
    ]
