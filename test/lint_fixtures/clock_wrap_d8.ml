let now () = Unix.gettimeofday ()
let stamp () = now () +. 1.0
let log_latency () = stamp ()
