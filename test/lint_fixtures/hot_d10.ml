(* es_lint: hot *)
let solve xs = Alloc_helper.build xs
let deep xs = Alloc_helper.wrap xs

let solve_cold xs =
  (* es_lint: cold *)
  Alloc_helper.build xs
