type live = { hits : int Atomic.t; misses : int Atomic.t }
type scratch = { mutable hits : int; mutable pending : int }

let live_counters = { hits = Atomic.make 0; misses = Atomic.make 0 }
let scratchpad = { hits = 0; pending = 0 }

let bump () = scratchpad.pending <- scratchpad.pending + 1
let observe () = Atomic.incr live_counters.hits
