(* es_lint: hot *)

let doubled xs = List.map (fun x -> x *. 2.0) xs

let table n = List.init n float_of_int

let paired xs = List.combine xs xs

let marked xs =
  (* es_lint: cold *)
  List.map (fun x -> x +. 1.0) xs

let inline_marked n = List.init n float_of_int (* es_lint: cold *)

let hoisted = fun x -> x + 1

let summed xs = Array.fold_left ( +. ) 0.0 xs
