let now () = Sys.time ()
let wall () = Unix.gettimeofday ()
let seed () = Random.self_init ()
let pick n = Random.int n
let stamp () = Unix.localtime (Unix.time ())
let ok_state st = Random.State.int st 4
