let a = Mutex.create ()
let b = Mutex.create ()

let first () =
  Mutex.lock a;
  Mutex.lock b;
  Mutex.unlock b;
  Mutex.unlock a

let second () =
  Mutex.lock b;
  Mutex.lock a;
  Mutex.unlock a;
  Mutex.unlock b
