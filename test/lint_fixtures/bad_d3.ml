type sample = { value : float; weight : float }

let cmp (a : sample) (b : sample) = compare a b
let sort_samples ss = List.sort compare ss
let ok a b = Float.compare a.value b.value
