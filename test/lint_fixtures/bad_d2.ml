let dump tbl = Hashtbl.iter (fun k v -> print_string (k ^ string_of_int v)) tbl
let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
let pairs tbl = Hashtbl.to_seq tbl

(* es_lint: sorted *)
let sorted_keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort String.compare
let also tbl = (* es_lint: sorted *) Hashtbl.iter (fun _ _ -> ()) tbl
