let total = ref 0
let bump x = total := !total + x
let sum xs = Es_util.Par.parallel_map (fun x -> bump x; x) xs

let count xs =
  let local = ref 0 in
  Es_util.Par.parallel_iter (fun _ -> incr local) xs;
  !local

let spawn_race () = Domain.spawn bump
