let broken = (
