let build xs = List.map (fun x -> x + 1) xs
let wrap xs = build xs
