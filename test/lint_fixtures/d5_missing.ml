let answer = 42
