let counter = ref 0
let table : (string, int) Hashtbl.t = Hashtbl.create 16
let buf = Buffer.create 80

type box = { mutable stored : int }

let shared = { stored = 0 }

let orphan = ref 0 [@@es_lint.guarded "no_such_mutex"]
