module L = Locks_d9

let real_lock = Mutex.create ()
let m = real_lock
let table = Hashtbl.create 8 [@@es_lint.guarded "m"]
let cache = ref 0 [@@es_lint.guarded "Locks_d9.a"]
let remote = ref 0 [@@es_lint.guarded "L.b"]
let orphan = ref 0 [@@es_lint.guarded "Locks_d9.zzz"]
