let lock = Mutex.create ()
let cache : (string, int) Hashtbl.t = Hashtbl.create 16 [@@es_lint.guarded "lock"]

type pool_state = { m : Mutex.t; mutable busy : bool }

let pool = { m = Mutex.create (); busy = false } [@@es_lint.guarded "pool.m"]
let ticks = Atomic.make 0
let tls : int list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

(* es_lint: sorted *)
let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort Int.compare
let cmp (a : int) (b : int) = compare a b
let pick st n = Random.State.int st n
