val lock : Mutex.t
val cache : (string, int) Hashtbl.t

type pool_state = { m : Mutex.t; mutable busy : bool }

val pool : pool_state
val ticks : int Atomic.t
val tls : int list ref Domain.DLS.key
val keys : (int, 'a) Hashtbl.t -> int list
val cmp : int -> int -> int
val pick : Random.State.t -> int -> int
