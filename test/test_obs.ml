open Es_obs

let qtest ?(count = 200) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

(* ---------- Json ---------- *)

let test_json_roundtrip () =
  let j =
    Json.Obj
      [
        ("s", Json.String "a \"quoted\"\nline");
        ("i", Json.Int (-42));
        ("f", Json.Float 0.125);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Float 2.5; Json.String "" ]);
        ("o", Json.Obj [ ("nested", Json.Bool false) ]);
      ]
  in
  match Json.of_string (Json.to_string j) with
  | Ok j' -> Alcotest.(check bool) "tree round-trips" true (j = j')
  | Error e -> Alcotest.fail e

let test_json_rejects_garbage () =
  let bad s =
    match Json.of_string s with Ok _ -> Alcotest.fail ("accepted " ^ s) | Error _ -> ()
  in
  bad "{";
  bad "[1,]";
  bad "{\"a\":1} trailing";
  bad "nul"

let test_json_nonfinite_floats () =
  (* JSON has no inf/nan: they serialize as null. *)
  Alcotest.(check string) "nan is null" "null" (Json.to_string (Json.Float nan));
  Alcotest.(check string) "inf is null" "null" (Json.to_string (Json.Float infinity))

(* ---------- Histogram ---------- *)

let exact_rank_value xs p =
  (* The order statistic the histogram quantile targets: position
     floor(p/100·(n−1)) of the sorted sample. *)
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (Array.length xs - 1) in
  sorted.(int_of_float (Float.floor rank))

let test_histogram_basics () =
  let h = Histogram.create () in
  Alcotest.(check int) "empty count" 0 (Histogram.count h);
  Alcotest.(check bool) "empty quantile is nan" true (Float.is_nan (Histogram.quantile h 50.0));
  List.iter (Histogram.observe h) [ 0.010; 0.020; 0.030; 0.040; 0.050 ];
  Alcotest.(check int) "count" 5 (Histogram.count h);
  Alcotest.(check (float 1e-12)) "sum" 0.150 (Histogram.sum h);
  Alcotest.(check (float 1e-12)) "min" 0.010 (Histogram.min_observed h);
  Alcotest.(check (float 1e-12)) "max" 0.050 (Histogram.max_observed h);
  let q50 = Histogram.quantile h 50.0 in
  Alcotest.(check bool) "p50 within one bucket of 0.030"
    true
    (Float.abs (q50 -. 0.030) <= Histogram.bucket_width_at h 0.030);
  Alcotest.(check bool) "p0 within one bucket of min" true
    (Float.abs (Histogram.quantile h 0.0 -. 0.010) <= Histogram.bucket_width_at h 0.010);
  Alcotest.(check bool) "p100 within one bucket of max" true
    (Float.abs (Histogram.quantile h 100.0 -. 0.050) <= Histogram.bucket_width_at h 0.050)

let test_histogram_underflow_overflow () =
  let h = Histogram.create ~min_value:1.0 ~growth:2.0 ~buckets:4 () in
  (* Range covered: [1, 16); below and above land in dedicated buckets. *)
  List.iter (Histogram.observe h) [ -3.0; 0.5; 2.0; 100.0 ];
  Alcotest.(check int) "all counted" 4 (Histogram.count h);
  let buckets = Histogram.nonempty_buckets h in
  Alcotest.(check int) "three populated buckets" 3 (List.length buckets);
  let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 buckets in
  Alcotest.(check int) "bucket counts add up" 4 total;
  Alcotest.(check (float 0.0)) "quantile never exceeds observed max" 100.0
    (Histogram.quantile h 100.0)

let test_histogram_merge_mismatch () =
  let a = Histogram.create ~growth:2.0 () and b = Histogram.create ~growth:1.5 () in
  Alcotest.check_raises "parameter mismatch"
    (Invalid_argument "Histogram.merge: parameter mismatch") (fun () ->
      ignore (Histogram.merge a b))

let positive_samples =
  QCheck.(list_of_size (Gen.int_range 1 80) (float_range 1e-6 1e5))

let histogram_of xs =
  let h = Histogram.create () in
  List.iter (Histogram.observe h) xs;
  h

let histogram_quantile_monotone =
  qtest "histogram quantile monotone in p"
    QCheck.(pair positive_samples (pair (float_range 0.0 100.0) (float_range 0.0 100.0)))
    (fun (xs, (p1, p2)) ->
      let h = histogram_of xs in
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Histogram.quantile h lo <= Histogram.quantile h hi +. 1e-12)

let histogram_quantile_near_exact =
  qtest "histogram quantile within one bucket of the exact order statistic"
    QCheck.(pair positive_samples (float_range 0.0 100.0))
    (fun (xs, p) ->
      let h = histogram_of xs in
      let v = exact_rank_value (Array.of_list xs) p in
      Float.abs (Histogram.quantile h p -. v) <= Histogram.bucket_width_at h v +. 1e-12)

let histogram_merge_count_preserved =
  qtest "merge preserves count and sum"
    QCheck.(pair positive_samples positive_samples)
    (fun (xs, ys) ->
      let m = Histogram.merge (histogram_of xs) (histogram_of ys) in
      Histogram.count m = List.length xs + List.length ys
      && Float.abs (Histogram.sum m -. (List.fold_left ( +. ) 0.0 xs +. List.fold_left ( +. ) 0.0 ys))
         <= 1e-6)

let histogram_merge_quantiles_bounded =
  qtest "merge quantiles bounded by input quantiles"
    QCheck.(pair positive_samples (pair positive_samples (float_range 0.0 100.0)))
    (fun (xs, (ys, p)) ->
      let ha = histogram_of xs and hb = histogram_of ys in
      let m = Histogram.merge ha hb in
      let qm = Histogram.quantile m p in
      (* Every merged quantile is clamped to the pooled observed range,
         which is exactly the union of the inputs' ranges.  (The tighter
         per-p sandwich between the inputs' quantiles does not hold under
         the floor-rank convention: pooling shifts order-statistic
         positions, e.g. p70 of [1;2] ⊎ [1;2] lands on 2 while each input
         alone lands on 1.) *)
      let lo = Float.min (Histogram.min_observed ha) (Histogram.min_observed hb) in
      let hi = Float.max (Histogram.max_observed ha) (Histogram.max_observed hb) in
      qm >= lo -. 1e-12 && qm <= hi +. 1e-12)

(* ---------- Metric registry ---------- *)

let test_metric_registry () =
  let reg = Metric.create () in
  let c = Metric.counter reg "hits" in
  Metric.inc c;
  Metric.inc ~by:4 c;
  Alcotest.(check int) "counter accrues" 5 (Metric.counter_value c);
  (* Get-or-create: same (name, labels) in any label order is one instrument. *)
  let c2 = Metric.counter reg "hits" in
  Metric.inc c2;
  Alcotest.(check int) "same instrument" 6 (Metric.counter_value c);
  let g = Metric.gauge reg ~labels:[ ("b", "2"); ("a", "1") ] "depth" in
  Metric.set g 3.0;
  Metric.add g 0.5;
  (match Metric.find reg ~labels:[ ("a", "1"); ("b", "2") ] "depth" with
  | Some (Metric.Gauge v) -> Alcotest.(check (float 1e-12)) "labels normalized" 3.5 v
  | _ -> Alcotest.fail "gauge not found under sorted labels");
  let h = Metric.histogram reg "lat" in
  Histogram.observe h 0.25;
  let names = List.map (fun (s : Metric.sample) -> s.Metric.name) (Metric.snapshot reg) in
  Alcotest.(check (list string)) "snapshot sorted by name" [ "depth"; "hits"; "lat" ] names;
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Metric.gauge: hits is registered as another kind") (fun () ->
      ignore (Metric.gauge reg "hits"))

(* ---------- Spans ---------- *)

let test_span_nesting () =
  let now = ref 1.0 in
  let sink, collected = Span.memory_sink () in
  let tr = Span.tracer ~sink ~clock:(fun () -> !now) () in
  let root = Span.start tr "request" in
  now := 2.0;
  let child1 = Span.start tr ~parent:root "device" in
  now := 3.0;
  Span.finish tr child1;
  let child2 = Span.start tr ~parent:root ~attrs:[ ("stage", Json.String "uplink") ] "uplink" in
  now := 5.0;
  Span.finish tr child2;
  Span.finish tr ~attrs:[ ("outcome", Json.String "completed") ] root;
  let spans = collected () in
  Alcotest.(check int) "three spans emitted" 3 (List.length spans);
  let by_name n = List.find (fun (s : Span.t) -> s.Span.name = n) spans in
  let r = by_name "request" and c1 = by_name "device" and c2 = by_name "uplink" in
  Alcotest.(check (option int)) "child1 parent" (Some r.Span.id) c1.Span.parent;
  Alcotest.(check (option int)) "child2 parent" (Some r.Span.id) c2.Span.parent;
  Alcotest.(check (option int)) "root has no parent" None r.Span.parent;
  Alcotest.(check int) "children share the root's trace" r.Span.trace c1.Span.trace;
  Alcotest.(check int) "children share the root's trace" r.Span.trace c2.Span.trace;
  Alcotest.(check (float 1e-12)) "child1 duration" 1.0 (Span.duration_s c1);
  Alcotest.(check (float 1e-12)) "child2 duration" 2.0 (Span.duration_s c2);
  Alcotest.(check (float 1e-12)) "root spans the whole tree" 4.0 (Span.duration_s r);
  Alcotest.(check bool) "finish order: children before root"
    true
    (match spans with
    | [ a; b; c ] -> a.Span.name = "device" && b.Span.name = "uplink" && c.Span.name = "request"
    | _ -> false);
  match Span.attr r "outcome" with
  | Some (Json.String "completed") -> ()
  | _ -> Alcotest.fail "finish attrs recorded"

let test_null_tracer_is_inert () =
  Alcotest.(check bool) "null tracer disabled" false (Span.enabled Span.null);
  let s = Span.start Span.null "ignored" in
  Span.set_attr s "k" (Json.Int 1);
  Span.finish Span.null ~attrs:[ ("k2", Json.Int 2) ] s;
  Alcotest.(check bool) "dummy span accumulates nothing" true (s.Span.attrs = [])

let test_span_jsonl_roundtrip () =
  let now = ref 0.25 in
  let sink, collected = Span.memory_sink () in
  let tr = Span.tracer ~sink ~clock:(fun () -> !now) () in
  let root = Span.start tr "request" in
  let child = Span.start tr ~parent:root ~attrs:[ ("device", Json.Int 3) ] "device" in
  now := 0.75;
  Span.finish tr ~attrs:[ ("queue_s", Json.Float 0.125) ] child;
  Span.finish tr root;
  List.iter
    (fun (s : Span.t) ->
      let line = Json.to_string (Export.span_to_json s) in
      match Result.bind (Json.of_string line) Export.span_of_json with
      | Error e -> Alcotest.fail e
      | Ok r ->
          Alcotest.(check bool) "record equals original" true
            (r = Export.record_of_span s))
    (collected ())

let test_metrics_jsonl_parses () =
  let reg = Metric.create () in
  Metric.inc ~by:7 (Metric.counter reg ~labels:[ ("stage", "uplink") ] "requests_dropped");
  Metric.set (Metric.gauge reg "dsr") 0.875;
  let h = Metric.histogram reg "request_latency_s" in
  List.iter (Histogram.observe h) [ 0.010; 0.020; 0.040 ];
  let path = Filename.temp_file "es_obs_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Export.with_file path (fun oc -> Export.metrics_to_jsonl oc reg);
      match Export.read_jsonl path with
      | Error e -> Alcotest.fail e
      | Ok lines ->
          Alcotest.(check int) "one line per instrument" 3 (List.length lines);
          let histo =
            List.find
              (fun j -> Json.member "name" j = Some (Json.String "request_latency_s"))
              lines
          in
          Alcotest.(check (option int)) "histogram count exported" (Some 3)
            (Option.bind (Json.member "count" histo) Json.to_int_opt);
          Alcotest.(check bool) "buckets exported" true
            (match Json.member "buckets" histo with
            | Some (Json.List (_ :: _)) -> true
            | _ -> false))

(* ---------- End-to-end: instrumented simulation ---------- *)

let test_runner_spans_tile_latency () =
  let spec =
    Es_edge.Scenario.with_n_devices 6 (Es_workload.Scenarios.by_name "default")
  in
  let cluster = Es_edge.Scenario.build spec in
  let decisions = (Es_joint.Optimizer.solve cluster).Es_joint.Optimizer.decisions in
  let reg = Metric.create () in
  let sink, collected = Span.memory_sink () in
  (* Long enough that the tail order statistics are dense: the report's
     interpolated p99 then sits within one bucket of the histogram's. *)
  let options = { Es_sim.Runner.default_options with duration_s = 40.0; warmup_s = 5.0 } in
  let report = Es_sim.Runner.run ~options ~metrics:reg ~spans:sink cluster decisions in
  let spans = collected () in
  let roots =
    List.filter
      (fun (s : Span.t) ->
        s.Span.name = "request" && Span.attr s "outcome" = Some (Json.String "completed"))
      spans
  in
  Alcotest.(check bool) "some requests completed" true (roots <> []);
  (* Acceptance property: each completed request's child segments tile its
     end-to-end latency exactly. *)
  List.iter
    (fun (root : Span.t) ->
      let children =
        List.filter (fun (s : Span.t) -> s.Span.parent = Some root.Span.id) spans
      in
      let total = List.fold_left (fun acc s -> acc +. Span.duration_s s) 0.0 children in
      Alcotest.(check (float 1e-9)) "segments sum to root latency" (Span.duration_s root) total)
    roots;
  (* Histogram quantiles agree with the pooled report quantiles.  The
     report interpolates between adjacent order statistics while the
     histogram resolves to one bucket, so the agreed tolerance is one
     bucket width plus the interpolation gap at that rank — both
     recoverable from the root spans, whose durations are exactly the
     latencies the collector pooled. *)
  let latencies =
    (* The collector pools requests that *arrived* inside the measurement
       window; a root span's start time is the arrival time. *)
    List.filter
      (fun (s : Span.t) ->
        s.Span.start_s >= options.Es_sim.Runner.warmup_s
        && s.Span.start_s <= options.Es_sim.Runner.duration_s)
      roots
    |> List.map Span.duration_s |> Array.of_list
    |> fun a ->
    Array.sort compare a;
    a
  in
  match Metric.find reg "request_latency_s" with
  | Some (Metric.Histo h) ->
      Alcotest.(check int) "histogram counts the report's completions"
        report.Es_sim.Metrics.total_completed (Histogram.count h);
      Alcotest.(check int) "root spans are the pooled sample"
        report.Es_sim.Metrics.total_completed (Array.length latencies);
      List.iter
        (fun (p, reported) ->
          let n = Array.length latencies in
          let rank = p /. 100.0 *. float_of_int (n - 1) in
          let lo = latencies.(int_of_float (Float.floor rank)) in
          let hi = latencies.(min (int_of_float (Float.floor rank) + 1) (n - 1)) in
          let tol = Histogram.bucket_width_at h reported +. (hi -. lo) +. 1e-12 in
          Alcotest.(check bool)
            (Printf.sprintf "p%.0f within one bucket + interpolation gap" p)
            true
            (Float.abs (Histogram.quantile h p -. reported) <= tol))
        [
          (50.0, report.Es_sim.Metrics.p50_s);
          (95.0, report.Es_sim.Metrics.p95_s);
          (99.0, report.Es_sim.Metrics.p99_s);
        ]
  | _ -> Alcotest.fail "request_latency_s histogram not registered"

let test_runner_report_gauges_recorded () =
  let spec =
    Es_edge.Scenario.with_n_devices 4 (Es_workload.Scenarios.by_name "default")
  in
  let cluster = Es_edge.Scenario.build spec in
  let decisions = (Es_joint.Optimizer.solve cluster).Es_joint.Optimizer.decisions in
  let reg = Metric.create () in
  let options = { Es_sim.Runner.default_options with duration_s = 8.0; warmup_s = 1.0 } in
  let report = Es_sim.Runner.run ~options ~metrics:reg cluster decisions in
  (match Metric.find reg "report/dsr" with
  | Some (Metric.Gauge v) ->
      Alcotest.(check (float 1e-12)) "report/dsr mirrors the report" report.Es_sim.Metrics.dsr v
  | _ -> Alcotest.fail "report/dsr gauge missing");
  Array.iteri
    (fun s u ->
      match
        Metric.find reg ~labels:[ ("server", string_of_int s) ] "report/server_utilization"
      with
      | Some (Metric.Gauge v) -> Alcotest.(check (float 1e-12)) "per-server utilization" u v
      | _ -> Alcotest.fail "per-server utilization gauge missing")
    report.Es_sim.Metrics.server_utilization

let test_optimizer_emits_iteration_telemetry () =
  let spec =
    Es_edge.Scenario.with_n_devices 4 (Es_workload.Scenarios.by_name "default")
  in
  let cluster = Es_edge.Scenario.build spec in
  let reg = Metric.create () in
  let sink, collected = Span.memory_sink () in
  let out = Es_joint.Optimizer.solve ~metrics:reg ~spans:sink cluster in
  (match Metric.find reg "optimizer/iterations" with
  | Some (Metric.Counter n) ->
      Alcotest.(check bool) "counted at least the primary run's iterations" true
        (n >= out.Es_joint.Optimizer.iterations)
  | _ -> Alcotest.fail "optimizer/iterations counter missing");
  let iters =
    List.filter (fun (s : Span.t) -> s.Span.name = "optimizer/iteration") (collected ())
  in
  Alcotest.(check bool) "iteration spans emitted" true (iters <> []);
  List.iter
    (fun (s : Span.t) ->
      match Span.attr s "objective" with
      | Some (Json.Float _) -> ()
      | _ -> Alcotest.fail "iteration span lacks objective attr")
    iters

let () =
  Alcotest.run "es_obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          Alcotest.test_case "nonfinite floats" `Quick test_json_nonfinite_floats;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "basics" `Quick test_histogram_basics;
          Alcotest.test_case "underflow/overflow" `Quick test_histogram_underflow_overflow;
          Alcotest.test_case "merge mismatch" `Quick test_histogram_merge_mismatch;
          histogram_quantile_monotone;
          histogram_quantile_near_exact;
          histogram_merge_count_preserved;
          histogram_merge_quantiles_bounded;
        ] );
      ( "metric",
        [ Alcotest.test_case "registry" `Quick test_metric_registry ] );
      ( "span",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "null tracer" `Quick test_null_tracer_is_inert;
          Alcotest.test_case "jsonl roundtrip" `Quick test_span_jsonl_roundtrip;
          Alcotest.test_case "metrics jsonl" `Quick test_metrics_jsonl_parses;
        ] );
      ( "integration",
        [
          Alcotest.test_case "spans tile latency" `Quick test_runner_spans_tile_latency;
          Alcotest.test_case "report gauges" `Quick test_runner_report_gauges_recorded;
          Alcotest.test_case "optimizer telemetry" `Quick test_optimizer_emits_iteration_telemetry;
        ] );
    ]
