open Es_edge
open Es_joint

let default_cluster = lazy (Scenario.build Scenario.default)

(* ---------- Objective ---------- *)

let test_objective_zero_misses_below_one () =
  let c = Lazy.force default_cluster in
  let out = Optimizer.solve c in
  let obj = Objective.of_decisions c out.Optimizer.decisions in
  let misses = Objective.misses c out.Optimizer.decisions in
  if misses = 0 then
    Alcotest.(check bool) "all-hit objective below 1" true (obj < 1.0)
  else Alcotest.(check bool) "objective counts misses" true (obj >= float_of_int misses)

let test_objective_ordering () =
  let c = Lazy.force default_cluster in
  let good = (Optimizer.solve c).Optimizer.decisions in
  let bad = Es_baselines.Baselines.device_only.Es_baselines.Baselines.solve c in
  Alcotest.(check bool) "optimizer beats device-only on the objective" true
    (Objective.of_decisions c good < Objective.of_decisions c bad)

(* ---------- Optimizer ---------- *)

let test_optimizer_output_valid () =
  let c = Lazy.force default_cluster in
  let out = Optimizer.solve c in
  (match Decision.validate c out.Optimizer.decisions with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "one decision per device" (Cluster.n_devices c)
    (Array.length out.Optimizer.decisions);
  Alcotest.(check bool) "ran at least one iteration" true (out.Optimizer.iterations >= 1);
  Alcotest.(check bool) "trace recorded" true (List.length out.Optimizer.trace >= 1)

let test_optimizer_all_stable () =
  let c = Lazy.force default_cluster in
  let out = Optimizer.solve c in
  Array.iter
    (fun d ->
      Alcotest.(check bool) "every device queueing-stable" true (Latency.device_stable c d))
    out.Optimizer.decisions

let test_optimizer_accuracy_floors () =
  let c = Lazy.force default_cluster in
  let out = Optimizer.solve c in
  Array.iteri
    (fun i (d : Decision.t) ->
      let dev = c.Cluster.devices.(i) in
      Alcotest.(check bool) "accuracy floor met" true
        (d.Decision.plan.Es_surgery.Plan.accuracy >= dev.Cluster.accuracy_floor -. 1e-9))
    out.Optimizer.decisions

let test_optimizer_beats_single_knob_ablations () =
  let c = Lazy.force default_cluster in
  let joint = Objective.of_decisions c (Optimizer.solve c).Optimizer.decisions in
  let surgery_only =
    Objective.of_decisions c
      (Es_baselines.Baselines.surgery_only.Es_baselines.Baselines.solve c)
  in
  let alloc_only =
    Objective.of_decisions c (Es_baselines.Baselines.alloc_only.Es_baselines.Baselines.solve c)
  in
  Alcotest.(check bool)
    (Printf.sprintf "joint %.3f <= surgery-only %.3f" joint surgery_only)
    true (joint <= surgery_only +. 1e-6);
  Alcotest.(check bool)
    (Printf.sprintf "joint %.3f <= alloc-only %.3f" joint alloc_only)
    true (joint <= alloc_only +. 1e-6)

let test_optimizer_trace_converges () =
  let c = Lazy.force default_cluster in
  let out = Optimizer.solve c in
  let objs =
    List.map (fun (t : Optimizer.trace_point) -> t.Optimizer.objective) out.Optimizer.trace
  in
  let best_seen = List.fold_left Float.min infinity objs in
  Alcotest.(check (float 1e-9)) "returned objective is the best feasible seen or better"
    (Float.min best_seen out.Optimizer.objective)
    out.Optimizer.objective

let test_optimizer_deterministic () =
  let c = Lazy.force default_cluster in
  let a = Optimizer.solve c and b = Optimizer.solve c in
  Alcotest.(check (float 1e-12)) "same objective" a.Optimizer.objective b.Optimizer.objective;
  Array.iteri
    (fun i (d : Decision.t) ->
      let d' = b.Optimizer.decisions.(i) in
      Alcotest.(check int) "same server" d.Decision.server d'.Decision.server;
      Alcotest.(check (float 1e-9)) "same bandwidth" d.Decision.bandwidth_bps
        d'.Decision.bandwidth_bps)
    a.Optimizer.decisions

let test_optimizer_single_server_no_reassign () =
  let spec = { Scenario.default with Scenario.servers = [ (Processor.edge_gpu, 300.0) ] } in
  let c = Scenario.build spec in
  let out = Optimizer.solve c in
  (match Decision.validate c out.Optimizer.decisions with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Array.iter
    (fun (d : Decision.t) ->
      if Decision.offloads d then Alcotest.(check int) "only server 0" 0 d.Decision.server)
    out.Optimizer.decisions

let test_optimizer_tiny_deadline_degrades () =
  (* Impossible deadlines: the optimizer must still return stable decisions
     (requests served, deadlines missed) rather than exploding. *)
  let spec = { Scenario.default with Scenario.deadline_range = (0.001, 0.002) } in
  let c = Scenario.build spec in
  let out = Optimizer.solve c in
  match Decision.validate c out.Optimizer.decisions with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_optimizer_overload_falls_back () =
  (* Rates far beyond cluster capacity: force_feasible must yield a valid
     (largely device-only) decision set. *)
  let spec =
    {
      Scenario.default with
      Scenario.rate_range = (200.0, 300.0);
      servers = [ (Processor.edge_cpu, 20.0) ];
    }
  in
  let c = Scenario.build spec in
  let out = Optimizer.solve c in
  match Decision.validate c out.Optimizer.decisions with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_optimizer_respects_device_memory () =
  let c = Lazy.force default_cluster in
  let out = Optimizer.solve c in
  Array.iteri
    (fun i (d : Decision.t) ->
      let dev = c.Cluster.devices.(i) in
      Alcotest.(check bool)
        (Printf.sprintf "device %d plan fits its RAM" i)
        true
        (Es_surgery.Plan.device_mem_bytes d.Decision.plan
        <= dev.Cluster.proc.Processor.mem_bytes +. 1.0))
    out.Optimizer.decisions

(* ---------- best_plan_for_grants ---------- *)

let test_best_plan_respects_floor () =
  let c = Lazy.force default_cluster in
  for device = 0 to Cluster.n_devices c - 1 do
    let p =
      Optimizer.best_plan_for_grants ~widths:[ 1.0; 0.5 ] c ~device ~server:0
        ~bandwidth_bps:50e6 ~compute_share:0.3
    in
    let dev = c.Cluster.devices.(device) in
    Alcotest.(check bool) "floor respected" true
      (p.Es_surgery.Plan.accuracy >= dev.Cluster.accuracy_floor -. 1e-9)
  done

let test_best_plan_uses_bandwidth () =
  (* With generous resources a weak device should offload at least some work. *)
  let c = Lazy.force default_cluster in
  let weak_device =
    let best = ref 0 in
    Array.iteri
      (fun i (d : Cluster.device) ->
        if
          d.Cluster.proc.Processor.perf.Es_dnn.Profile.flops_per_s
          < c.Cluster.devices.(!best).Cluster.proc.Processor.perf.Es_dnn.Profile.flops_per_s
        then best := i)
      c.Cluster.devices;
    !best
  in
  let p =
    Optimizer.best_plan_for_grants ~widths:[ 1.0 ] c ~device:weak_device ~server:0
      ~bandwidth_bps:100e6 ~compute_share:0.9
  in
  Alcotest.(check bool) "weak device offloads" false (Es_surgery.Plan.is_device_only p)

(* ---------- Parallel determinism ---------- *)

let plan_fingerprint (p : Es_surgery.Plan.t) =
  ( p.Es_surgery.Plan.width,
    p.Es_surgery.Plan.exit_node,
    p.Es_surgery.Plan.precision,
    p.Es_surgery.Plan.cut,
    p.Es_surgery.Plan.accuracy )

let check_outputs_identical label (a : Optimizer.output) (b : Optimizer.output) =
  Alcotest.(check bool)
    (Printf.sprintf "%s: objective bit-identical (%.17g vs %.17g)" label a.Optimizer.objective
       b.Optimizer.objective)
    true
    (a.Optimizer.objective = b.Optimizer.objective);
  Array.iteri
    (fun i (d : Decision.t) ->
      let d' = b.Optimizer.decisions.(i) in
      Alcotest.(check int) (label ^ ": same server") d.Decision.server d'.Decision.server;
      Alcotest.(check bool)
        (label ^ ": same bandwidth") true
        (d.Decision.bandwidth_bps = d'.Decision.bandwidth_bps);
      Alcotest.(check bool)
        (label ^ ": same share") true
        (d.Decision.compute_share = d'.Decision.compute_share);
      Alcotest.(check bool)
        (label ^ ": same plan") true
        (plan_fingerprint d.Decision.plan = plan_fingerprint d'.Decision.plan))
    a.Optimizer.decisions

(* The ISSUE's headline determinism contract: solve at jobs=4 is bit-identical
   to jobs=1 on every named scenario. *)
let test_solve_jobs_bit_identical () =
  List.iter
    (fun name ->
      let c = Scenario.build (Es_workload.Scenarios.by_name name) in
      let solve jobs =
        Optimizer.solve ~config:{ Optimizer.default_config with Optimizer.jobs } c
      in
      check_outputs_identical name (solve 1) (solve 4))
    [ "default"; "smart_city"; "ar_assistant"; "drone_swarm" ]

(* The allocation-free surgery step must pick the bit-identical plan the old
   Decision-per-candidate implementation picks, for arbitrary grants. *)
let best_plan_matches_reference =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:150 ~name:"best_plan_for_grants = reference implementation"
       QCheck.(
         triple (int_range 0 1000) (float_range 0.0 200e6) (float_range 0.0 1.0))
       (fun (dev_pick, bandwidth_bps, compute_share) ->
         let c = Lazy.force default_cluster in
         let device = dev_pick mod Cluster.n_devices c in
         let server = dev_pick mod Cluster.n_servers c in
         let widths = [ 1.0; 0.75; 0.5 ] in
         let p =
           Optimizer.best_plan_for_grants ~widths c ~device ~server ~bandwidth_bps
             ~compute_share
         in
         let p' =
           Optimizer.best_plan_for_grants_ref ~widths c ~device ~server ~bandwidth_bps
             ~compute_share
         in
         plan_fingerprint p = plan_fingerprint p'))

let test_annealing_restarts_jobs_identical () =
  let c = Lazy.force default_cluster in
  let solve jobs =
    Annealing.solve
      ~config:{ Annealing.default_config with Annealing.iterations = 150; restarts = 3; jobs }
      c
  in
  let a = solve 1 and b = solve 2 in
  Alcotest.(check bool) "same objective" true (a.Annealing.objective = b.Annealing.objective);
  Alcotest.(check int) "same evaluated count" a.Annealing.evaluated b.Annealing.evaluated;
  Array.iteri
    (fun i (d : Decision.t) ->
      let d' = b.Annealing.decisions.(i) in
      Alcotest.(check bool) "same decision" true
        (d.Decision.server = d'.Decision.server
        && d.Decision.bandwidth_bps = d'.Decision.bandwidth_bps
        && plan_fingerprint d.Decision.plan = plan_fingerprint d'.Decision.plan))
    a.Annealing.decisions

let test_annealing_single_restart_unchanged () =
  (* restarts = 1 must reproduce the historical single-stream result exactly
     (the PRNG is not split in that case). *)
  let c = Lazy.force default_cluster in
  let config = { Annealing.default_config with Annealing.iterations = 150 } in
  let a = Annealing.solve ~config c in
  let b = Annealing.solve ~config:{ config with Annealing.jobs = 4 } c in
  Alcotest.(check bool) "jobs irrelevant at one restart" true
    (a.Annealing.objective = b.Annealing.objective)

let test_exhaustive_jobs_identical () =
  let c =
    Scenario.build
      {
        Scenario.default with
        Scenario.n_devices = 3;
        seed = 9;
        model_names = [ "alexnet"; "mobilenet_v2" ];
      }
  in
  let solve jobs = Exhaustive.solve ~max_candidates_per_device:4 ~jobs c in
  let a = solve 1 and b = solve 4 in
  Alcotest.(check bool) "same objective" true (a.Exhaustive.objective = b.Exhaustive.objective);
  Alcotest.(check int) "same combination count" a.Exhaustive.combinations
    b.Exhaustive.combinations;
  match (a.Exhaustive.decisions, b.Exhaustive.decisions) with
  | Some da, Some db ->
      Array.iteri
        (fun i (d : Decision.t) ->
          Alcotest.(check bool) "same decision" true
            (d.Decision.server = db.(i).Decision.server
            && plan_fingerprint d.Decision.plan = plan_fingerprint db.(i).Decision.plan))
        da
  | None, None -> ()
  | _ -> Alcotest.fail "feasibility differs across jobs"

(* Satellite: the final gauges must agree with the returned output even under
   parallel multi-start (they are written once from the landing point). *)
let test_final_gauges_from_landing_point () =
  let c = Lazy.force default_cluster in
  let metrics = Es_obs.Metric.create () in
  let out =
    Optimizer.solve ~config:{ Optimizer.default_config with Optimizer.jobs = 2 } ~metrics c
  in
  (match Es_obs.Metric.find metrics "optimizer/objective" with
  | Some (Es_obs.Metric.Gauge g) ->
      Alcotest.(check bool)
        (Printf.sprintf "gauge %.6f = returned %.6f" g out.Optimizer.objective)
        true
        (g = out.Optimizer.objective)
  | _ -> Alcotest.fail "optimizer/objective gauge missing");
  (match Es_obs.Metric.find metrics "optimizer/solve_time_s" with
  | Some (Es_obs.Metric.Gauge t) ->
      Alcotest.(check bool) "solve_time gauge positive and plausible" true
        (t > 0.0 && t >= out.Optimizer.solve_time_s -. 1e-6)
  | _ -> Alcotest.fail "optimizer/solve_time_s gauge missing");
  match Es_obs.Metric.find metrics "optimizer/iterations" with
  | Some (Es_obs.Metric.Counter n) ->
      (* Both trajectories report into the same counter: at least the winner's
         iterations, plausibly more. *)
      Alcotest.(check bool) "iterations summed across trajectories" true
        (n >= out.Optimizer.iterations)
  | _ -> Alcotest.fail "optimizer/iterations counter missing"

(* ---------- Exhaustive ---------- *)

let tiny_cluster n =
  let spec =
    {
      Scenario.default with
      Scenario.n_devices = n;
      seed = 9;
      model_names = [ "alexnet"; "mobilenet_v2" ];
    }
  in
  Scenario.build spec

let test_exhaustive_feasible_and_bounds_heuristic () =
  let c = tiny_cluster 3 in
  let opt = Exhaustive.solve ~max_candidates_per_device:4 c in
  (match opt.Exhaustive.decisions with
  | None -> Alcotest.fail "tiny instance must be feasible"
  | Some ds -> (
      match Decision.validate c ds with Ok () -> () | Error e -> Alcotest.fail e));
  (* Same plan grid for the heuristic so optimal <= heuristic holds. *)
  let config = { Optimizer.default_config with max_candidates = Some 4 } in
  let heuristic = Optimizer.solve ~config c in
  Alcotest.(check bool)
    (Printf.sprintf "optimal %.4f <= heuristic %.4f" opt.Exhaustive.objective
       heuristic.Optimizer.objective)
    true
    (opt.Exhaustive.objective <= heuristic.Optimizer.objective +. 1e-6);
  Alcotest.(check bool) "searched some combinations" true (opt.Exhaustive.combinations > 10)

let test_exhaustive_caps_instance_size () =
  let c = Scenario.build Scenario.default in
  Alcotest.(check bool) "refuses huge instances" true
    (try
       ignore (Exhaustive.solve c);
       false
     with Invalid_argument _ -> true)

(* ---------- Planner ---------- *)

let planner_config =
  (* Cheap optimizer settings: the planner calls solve many times. *)
  { Optimizer.default_config with max_iters = 4; local_search_passes = 1 }

let test_planner_bandwidth () =
  let spec = { Scenario.default with Scenario.n_devices = 8 } in
  let v = Planner.required_bandwidth_mbps ~config:planner_config spec in
  Alcotest.(check bool) "feasible within the probe range" true v.Planner.feasible;
  Alcotest.(check bool) "sane magnitude" true (v.Planner.required >= 5.0 && v.Planner.required <= 2000.0);
  (* The verdict's witness must indeed achieve zero misses at the found
     capacity (the witness, not a cold re-solve: warm-started trials may
     certify a boundary a cold descent would miss). *)
  let cluster = Scenario.build (Scenario.with_ap_mbps v.Planner.required spec) in
  let witness =
    match v.Planner.witness with
    | Some w -> w
    | None -> Alcotest.fail "feasible verdict must carry a witness"
  in
  (match Decision.validate cluster witness with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("witness invalid: " ^ e));
  Alcotest.(check int) "witness has zero queueing-aware misses at the required capacity" 0
    (Objective.mm1_misses cluster witness);
  Alcotest.(check bool) "used a handful of solves" true
    (v.Planner.solves >= 2 && v.Planner.solves <= 40)

let test_planner_load_boundary () =
  let spec = { Scenario.default with Scenario.n_devices = 8 } in
  let v = Planner.max_supported_load ~config:planner_config spec in
  Alcotest.(check bool) "supports at least nominal load" true (v.Planner.required >= 1.0);
  let cluster =
    Online.scale_rates (Scenario.build spec) v.Planner.required
  in
  let witness =
    match v.Planner.witness with
    | Some w -> w
    | None -> Alcotest.fail "feasible verdict must carry a witness"
  in
  Alcotest.(check int) "witness has zero queueing-aware misses at the boundary" 0
    (Objective.mm1_misses cluster witness)

let test_planner_server_scale_monotone () =
  (* A weaker server fleet needs a larger scale factor. *)
  let spec = { Scenario.default with Scenario.n_devices = 8 } in
  let weak =
    { spec with Scenario.servers = [ (Processor.edge_cpu, 300.0) ] }
  in
  let strong =
    { spec with Scenario.servers = [ (Processor.edge_gpu, 300.0) ] }
  in
  let vw = Planner.required_server_scale ~config:planner_config weak in
  let vs = Planner.required_server_scale ~config:planner_config strong in
  Alcotest.(check bool)
    (Printf.sprintf "weak fleet needs >= scale (%.3f vs %.3f)" vw.Planner.required
       vs.Planner.required)
    true
    (vw.Planner.required >= vs.Planner.required -. 1e-6)

(* ---------- Annealing ---------- *)

let test_annealing_valid_output () =
  let c = Lazy.force default_cluster in
  let out = Annealing.solve ~config:{ Annealing.default_config with iterations = 300 } c in
  (match Decision.validate c out.Annealing.decisions with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "covers devices" (Cluster.n_devices c)
    (Array.length out.Annealing.decisions);
  Alcotest.(check bool) "evaluated some states" true (out.Annealing.evaluated > 100);
  Array.iter
    (fun d -> Alcotest.(check bool) "stable" true (Latency.device_stable c d))
    out.Annealing.decisions

let test_annealing_deterministic_per_seed () =
  let c = Lazy.force default_cluster in
  let config = { Annealing.default_config with iterations = 200 } in
  let a = Annealing.solve ~config c and b = Annealing.solve ~config c in
  Alcotest.(check (float 1e-12)) "same objective" a.Annealing.objective b.Annealing.objective

let test_annealing_improves_with_budget () =
  let c = Lazy.force default_cluster in
  let short =
    Annealing.solve ~config:{ Annealing.default_config with iterations = 50 } c
  in
  let long =
    Annealing.solve ~config:{ Annealing.default_config with iterations = 3000 } c
  in
  Alcotest.(check bool)
    (Printf.sprintf "3000 iters (%.4f) <= 50 iters (%.4f)" long.Annealing.objective
       short.Annealing.objective)
    true
    (long.Annealing.objective <= short.Annealing.objective +. 1e-9)

let test_jmsra_competitive_with_annealing () =
  let c = Lazy.force default_cluster in
  let jm = Optimizer.solve c in
  let sa = Annealing.solve c in
  (* The structured search must at least match the generic metaheuristic at
     its default budget — the F12 claim. *)
  Alcotest.(check bool)
    (Printf.sprintf "JMSRA %.4f <= SA %.4f + slack" jm.Optimizer.objective
       sa.Annealing.objective)
    true
    (jm.Optimizer.objective <= sa.Annealing.objective +. 0.05)

(* ---------- Online ---------- *)

let test_online_scale_rates () =
  let c = Lazy.force default_cluster in
  let c2 = Online.scale_rates c 2.0 in
  Array.iteri
    (fun i (d : Cluster.device) ->
      Alcotest.(check (float 1e-9)) "doubled"
        (2.0 *. c.Cluster.devices.(i).Cluster.rate)
        d.Cluster.rate)
    c2.Cluster.devices

let test_online_piecewise_arrivals_sorted () =
  let c = Lazy.force default_cluster in
  let arr =
    Online.piecewise_arrivals ~seed:3 ~duration_s:20.0
      ~rate_profile:(Es_workload.Profiles.constant 1.0) c
  in
  Alcotest.(check bool) "non-empty" true (Array.length arr > 0);
  Array.iteri
    (fun i (t, dev) ->
      if i > 0 then Alcotest.(check bool) "sorted" true (fst arr.(i - 1) <= t);
      Alcotest.(check bool) "device in range" true (dev >= 0 && dev < Cluster.n_devices c);
      Alcotest.(check bool) "time in range" true (t >= 0.0 && t < 20.0))
    arr

let test_online_burst_beats_static () =
  (* Under a 3x burst the re-optimizing scheduler should satisfy at least as
     many deadlines as the static one. *)
  let c = Lazy.force default_cluster in
  let profile = Es_workload.Profiles.step_burst ~start_s:20.0 ~stop_s:40.0 ~factor:3.0 in
  let options = { Es_sim.Runner.default_options with duration_s = 60.0; warmup_s = 5.0 } in
  let adaptive = Online.run ~options ~epoch_s:10.0 ~rate_profile:profile c in
  let static = Online.run_static ~options ~rate_profile:profile c in
  Alcotest.(check bool) "re-optimized at every epoch" true (adaptive.Online.resolve_count = 6);
  Alcotest.(check bool)
    (Printf.sprintf "adaptive DSR %.3f >= static %.3f - slack"
       adaptive.Online.report.Es_sim.Metrics.dsr static.Online.report.Es_sim.Metrics.dsr)
    true
    (adaptive.Online.report.Es_sim.Metrics.dsr
     >= static.Online.report.Es_sim.Metrics.dsr -. 0.02)

(* ---------- Zero-allocation kernels vs their oracles (DESIGN.md §15) ---------- *)

(* Bit-pattern equality: stricter than (=), which conflates 0.0 and -0.0. *)
let feq a b = Int64.bits_of_float a = Int64.bits_of_float b

let solved =
  lazy
    (let c = Lazy.force default_cluster in
     (c, Optimizer.solve ~config:{ Optimizer.default_config with Optimizer.jobs = 1 } c))

let test_objective_flat_matches_ref () =
  let c, out = Lazy.force solved in
  let check_set label ds =
    Alcotest.(check bool)
      (label ^ ": of_decisions bit-identical")
      true
      (feq (Objective.of_decisions c ds) (Objective.of_decisions_ref c ds));
    Alcotest.(check int) (label ^ ": misses") (Objective.misses_ref c ds)
      (Objective.misses c ds);
    Alcotest.(check int)
      (label ^ ": mm1_misses")
      (Objective.mm1_misses_ref c ds)
      (Objective.mm1_misses c ds)
  in
  check_set "solved" out.Optimizer.decisions;
  (* Quartered grants force deadline misses and mm1 saturation, so the miss
     branches of the flat kernels get exercised too. *)
  let starved =
    Array.map
      (fun (d : Decision.t) ->
        if d.Decision.bandwidth_bps > 0.0 then
          Decision.make ~device:d.Decision.device ~server:d.Decision.server
            ~plan:d.Decision.plan
            ~bandwidth_bps:(0.25 *. d.Decision.bandwidth_bps)
            ~compute_share:(0.25 *. d.Decision.compute_share) ()
        else d)
      out.Optimizer.decisions
  in
  check_set "starved" starved

let test_force_feasible_matches_ref () =
  (* High-rate devices against one modest server: every device offloading
     its full model cannot be stable, so both implementations must walk the
     same flip sequence. *)
  let c =
    let model = Es_dnn.Zoo.resnet18 () in
    let devices =
      List.init 12 (fun i ->
          Cluster.device ~id:i ~proc:Processor.raspberry_pi ~link:Link.wifi ~model
            ~rate:30.0 ~deadline:0.05 ())
    in
    let servers =
      [ Cluster.server ~id:0 ~proc:Processor.edge_gpu ~ap_bandwidth_mbps:100.0 () ]
    in
    Cluster.make ~devices ~servers
  in
  let n = Cluster.n_devices c in
  let config = { Optimizer.default_config with Optimizer.jobs = 1 } in
  let fresh () =
    Array.init n (fun i ->
        Es_surgery.Plan.server_only c.Cluster.devices.(i).Cluster.model)
  in
  let assignment = Array.make n 0 in
  let p = fresh () and p' = fresh () in
  let r = Optimizer.force_feasible config c p assignment in
  let r' = Optimizer.force_feasible_ref config c p' (Array.copy assignment) in
  (match (r, r') with
  | Some d, Some d' ->
      Alcotest.(check int) "same arity" (Array.length d) (Array.length d');
      Array.iteri
        (fun i (x : Decision.t) ->
          let y = d'.(i) in
          Alcotest.(check bool)
            (Printf.sprintf "decision %d identical" i)
            true
            (x.Decision.server = y.Decision.server
            && feq x.Decision.bandwidth_bps y.Decision.bandwidth_bps
            && feq x.Decision.compute_share y.Decision.compute_share
            && plan_fingerprint x.Decision.plan = plan_fingerprint y.Decision.plan))
        d
  | None, None -> ()
  | _ -> Alcotest.fail "force_feasible and its oracle diverged on feasibility");
  Array.iteri
    (fun i q ->
      Alcotest.(check bool)
        (Printf.sprintf "plan flip %d identical" i)
        true
        (plan_fingerprint q = plan_fingerprint p'.(i)))
    p;
  Alcotest.(check bool) "overload actually forced flips" true
    (Array.exists Es_surgery.Plan.is_device_only p)

let test_assignment_helpers_match_ref () =
  let c, out = Lazy.force solved in
  let plans = Array.map (fun (d : Decision.t) -> d.Decision.plan) out.Optimizer.decisions in
  let asg = Array.map (fun (d : Decision.t) -> d.Decision.server) out.Optimizer.decisions in
  let rotated = Array.map (fun s -> (s + 1) mod Cluster.n_servers c) asg in
  List.iter
    (fun assignment ->
      Alcotest.(check bool) "load_proxy bit-identical" true
        (feq
           (Optimizer.load_proxy c ~plans assignment)
           (Optimizer.load_proxy_ref c ~plans assignment));
      for device = 0 to Cluster.n_devices c - 1 do
        let b, s = Optimizer.fair_share_estimate c ~plans ~assignment ~device in
        let b', s' = Optimizer.fair_share_estimate_ref c ~plans ~assignment ~device in
        Alcotest.(check bool)
          (Printf.sprintf "fair share %d bit-identical" device)
          true
          (feq b b' && feq s s')
      done)
    [ asg; rotated ]

(* The ISSUE's headline claim: a steady-state surgery scan — the innermost
   solver loop — allocates nothing on the minor heap.  Grants are literals
   so the call site doesn't box them. *)
let test_best_scored_zero_alloc () =
  let c = Lazy.force default_cluster in
  let pool = Optimizer.device_pool ~widths:[ 1.0; 0.75; 0.5 ] c ~device:0 in
  let sink =
    ref (Optimizer.best_scored c ~device:0 ~server:0 pool ~bandwidth_bps:50e6
           ~compute_share:0.5)
  in
  let thunk () =
    sink :=
      Optimizer.best_scored c ~device:0 ~server:0 pool ~bandwidth_bps:50e6
        ~compute_share:0.5
  in
  let words = Es_util.Alloc_probe.minor_words thunk in
  Alcotest.(check (float 0.0))
    "steady-state surgery scan allocates zero minor-heap words" 0.0 words;
  ignore (Sys.opaque_identity !sink)

let () =
  Alcotest.run "es_joint"
    [
      ( "objective",
        [
          Alcotest.test_case "scale" `Quick test_objective_zero_misses_below_one;
          Alcotest.test_case "ordering" `Quick test_objective_ordering;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "valid output" `Quick test_optimizer_output_valid;
          Alcotest.test_case "all stable" `Quick test_optimizer_all_stable;
          Alcotest.test_case "accuracy floors" `Quick test_optimizer_accuracy_floors;
          Alcotest.test_case "beats ablations" `Quick test_optimizer_beats_single_knob_ablations;
          Alcotest.test_case "trace converges" `Quick test_optimizer_trace_converges;
          Alcotest.test_case "deterministic" `Quick test_optimizer_deterministic;
          Alcotest.test_case "single server" `Quick test_optimizer_single_server_no_reassign;
          Alcotest.test_case "tiny deadlines" `Quick test_optimizer_tiny_deadline_degrades;
          Alcotest.test_case "overload fallback" `Quick test_optimizer_overload_falls_back;
          Alcotest.test_case "memory respected" `Quick test_optimizer_respects_device_memory;
          Alcotest.test_case "best plan floor" `Quick test_best_plan_respects_floor;
          Alcotest.test_case "best plan offloads" `Quick test_best_plan_uses_bandwidth;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "solve jobs=4 = jobs=1 (named scenarios)" `Slow
            test_solve_jobs_bit_identical;
          best_plan_matches_reference;
          Alcotest.test_case "annealing restarts across jobs" `Quick
            test_annealing_restarts_jobs_identical;
          Alcotest.test_case "annealing restarts=1 unchanged" `Quick
            test_annealing_single_restart_unchanged;
          Alcotest.test_case "exhaustive across jobs" `Quick test_exhaustive_jobs_identical;
          Alcotest.test_case "final gauges from landing point" `Quick
            test_final_gauges_from_landing_point;
        ] );
      ( "zero-alloc",
        [
          Alcotest.test_case "objective oracles" `Quick test_objective_flat_matches_ref;
          Alcotest.test_case "force_feasible oracle" `Quick test_force_feasible_matches_ref;
          Alcotest.test_case "assignment helpers oracle" `Quick
            test_assignment_helpers_match_ref;
          Alcotest.test_case "best_scored zero minor words" `Quick
            test_best_scored_zero_alloc;
        ] );
      ( "exhaustive",
        [
          Alcotest.test_case "bounds heuristic" `Slow test_exhaustive_feasible_and_bounds_heuristic;
          Alcotest.test_case "instance cap" `Quick test_exhaustive_caps_instance_size;
        ] );
      ( "planner",
        [
          Alcotest.test_case "required bandwidth" `Slow test_planner_bandwidth;
          Alcotest.test_case "load boundary" `Slow test_planner_load_boundary;
          Alcotest.test_case "server scale monotone" `Slow test_planner_server_scale_monotone;
        ] );
      ( "annealing",
        [
          Alcotest.test_case "valid output" `Quick test_annealing_valid_output;
          Alcotest.test_case "deterministic" `Quick test_annealing_deterministic_per_seed;
          Alcotest.test_case "budget monotone" `Slow test_annealing_improves_with_budget;
          Alcotest.test_case "jmsra competitive" `Slow test_jmsra_competitive_with_annealing;
        ] );
      ( "online",
        [
          Alcotest.test_case "scale rates" `Quick test_online_scale_rates;
          Alcotest.test_case "arrivals sorted" `Quick test_online_piecewise_arrivals_sorted;
          Alcotest.test_case "burst adaptivity" `Slow test_online_burst_beats_static;
        ] );
    ]
