(* Warm-start and solve-cache semantics: the equal-or-better contract of
   Optimizer.solve's warm trajectory, bit-identical cache hits, fingerprint
   sensitivity to every cluster axis, and repair of stale incumbents. *)

open Es_edge
open Es_joint

(* Cheap optimizer settings: these tests solve many clusters. *)
let cheap = { Optimizer.default_config with max_iters = 4; local_search_passes = 1 }

let small_cluster ?(n = 6) () = Scenario.build (Scenario.with_n_devices n Scenario.default)

(* ---------- warm-start contract ---------- *)

let named_scenarios = [ "default"; "smart_city"; "ar_assistant"; "drone_swarm" ]

let test_warm_equal_or_better () =
  List.iter
    (fun name ->
      let spec = Scenario.with_n_devices 8 (Es_workload.Scenarios.by_name name) in
      let cluster = Scenario.build spec in
      (* Incumbent from nominal load, re-solved warm vs cold after a shift. *)
      let base = Optimizer.solve ~config:cheap cluster in
      let shifted = Online.scale_rates cluster 1.7 in
      let cold = Optimizer.solve ~config:cheap shifted in
      let warm =
        Optimizer.solve ~config:cheap ~warm_start:base.Optimizer.decisions shifted
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: warm (%.6f) <= cold (%.6f)" name warm.Optimizer.objective
           cold.Optimizer.objective)
        true
        (warm.Optimizer.objective <= cold.Optimizer.objective +. 1e-9))
    named_scenarios

let test_warm_jobs_deterministic () =
  let cluster = small_cluster () in
  let base = Optimizer.solve ~config:cheap cluster in
  let shifted = Online.scale_rates cluster 2.0 in
  let solve j =
    Optimizer.solve
      ~config:{ cheap with Optimizer.jobs = j }
      ~warm_start:base.Optimizer.decisions shifted
  in
  let a = solve 1 and b = solve 3 in
  Alcotest.(check string) "warm solve identical across jobs"
    (Decision.fingerprint a.Optimizer.decisions)
    (Decision.fingerprint b.Optimizer.decisions)

let test_warm_arity_mismatch_ignored () =
  let cluster = small_cluster () in
  let cold = Optimizer.solve ~config:cheap cluster in
  let bogus = Array.sub cold.Optimizer.decisions 0 2 in
  let warm = Optimizer.solve ~config:cheap ~warm_start:bogus cluster in
  Alcotest.(check string) "wrong-arity seed falls back to the cold solve"
    (Decision.fingerprint cold.Optimizer.decisions)
    (Decision.fingerprint warm.Optimizer.decisions)

(* A stale incumbent referencing a server that no longer exists must be
   repaired (device re-pointed), never crash the solve. *)
let test_stale_warm_repaired () =
  let cluster = small_cluster () in
  Alcotest.(check bool) "scenario has two servers" true (Cluster.n_servers cluster = 2);
  let base = Optimizer.solve ~config:cheap cluster in
  let residual =
    Cluster.make
      ~devices:(Array.to_list cluster.Cluster.devices)
      ~servers:[ cluster.Cluster.servers.(0) ]
  in
  (* Mark some seeds as pointing at the dead server (out of range now). *)
  let stale =
    Array.map
      (fun (d : Decision.t) -> { d with Decision.server = 1 })
      base.Optimizer.decisions
  in
  let out = Optimizer.solve ~config:cheap ~warm_start:stale residual in
  Alcotest.(check bool) "all offloads target the surviving server" true
    (Array.for_all
       (fun (d : Decision.t) -> (not (Decision.offloads d)) || d.Decision.server = 0)
       out.Optimizer.decisions);
  let cold = Optimizer.solve ~config:cheap residual in
  Alcotest.(check bool) "repaired warm solve equal-or-better than cold" true
    (out.Optimizer.objective <= cold.Optimizer.objective +. 1e-9)

let test_recover_warm_fallbacks () =
  let cluster = small_cluster () in
  let r = Recover.precompute ~config:cheap cluster in
  let base = Recover.baseline r in
  Alcotest.(check int) "baseline arity" (Cluster.n_devices cluster) (Array.length base);
  let ns = Cluster.n_servers cluster in
  for s = 0 to ns - 1 do
    let fb = Recover.fallback r ~server:s in
    Alcotest.(check bool)
      (Printf.sprintf "fallback %d avoids the dead server" s)
      true
      (Array.for_all
         (fun (d : Decision.t) -> (not (Decision.offloads d)) || d.Decision.server <> s)
         fb)
  done

(* ---------- cache behaviour ---------- *)

let test_cache_hit_identical () =
  let cluster = small_cluster () in
  let sc = Solve_cache.create () in
  let a = Solve_cache.solve sc ~config:cheap cluster in
  let b = Solve_cache.solve sc ~config:cheap cluster in
  Alcotest.(check string) "hit returns bit-identical decisions"
    (Decision.fingerprint a.Optimizer.decisions)
    (Decision.fingerprint b.Optimizer.decisions);
  Alcotest.(check bool) "hit returns identical objective" true
    (a.Optimizer.objective = b.Optimizer.objective);
  let s = Solve_cache.stats sc in
  Alcotest.(check int) "one miss" 1 s.Solve_cache.misses;
  Alcotest.(check int) "one hit" 1 s.Solve_cache.hits;
  Alcotest.(check int) "one entry" 1 s.Solve_cache.entries

let test_cache_warm_hint_not_keyed () =
  (* warm_start is a hint, not part of the key: a warm solve after a cold
     one on the same cluster is a hit returning the first entry. *)
  let cluster = small_cluster () in
  let sc = Solve_cache.create () in
  let a = Solve_cache.solve sc ~config:cheap cluster in
  let other = Optimizer.solve ~config:cheap (Online.scale_rates cluster 3.0) in
  let b =
    Solve_cache.solve sc ~config:cheap ~warm_start:other.Optimizer.decisions cluster
  in
  Alcotest.(check string) "same entry regardless of warm hint"
    (Decision.fingerprint a.Optimizer.decisions)
    (Decision.fingerprint b.Optimizer.decisions);
  Alcotest.(check int) "second call was a hit" 1 (Solve_cache.stats sc).Solve_cache.hits

let test_lru_eviction () =
  let cluster = small_cluster ~n:4 () in
  let c2 = Online.scale_rates cluster 2.0 in
  let c3 = Online.scale_rates cluster 3.0 in
  let sc = Solve_cache.create ~capacity:2 () in
  ignore (Solve_cache.solve sc ~config:cheap cluster);
  ignore (Solve_cache.solve sc ~config:cheap c2);
  (* Touch the first entry so the second is least-recently-used... *)
  ignore (Solve_cache.solve sc ~config:cheap cluster);
  (* ...then overflow: c2 must be the entry evicted. *)
  ignore (Solve_cache.solve sc ~config:cheap c3);
  let s = Solve_cache.stats sc in
  Alcotest.(check int) "one eviction" 1 s.Solve_cache.evictions;
  Alcotest.(check int) "two resident entries" 2 s.Solve_cache.entries;
  let k1 = Solve_cache.fingerprint sc ~config:cheap cluster in
  let k2 = Solve_cache.fingerprint sc ~config:cheap c2 in
  let k3 = Solve_cache.fingerprint sc ~config:cheap c3 in
  Alcotest.(check bool) "touched entry survived" true (Solve_cache.find sc k1 <> None);
  Alcotest.(check bool) "LRU entry evicted" true (Solve_cache.find sc k2 = None);
  Alcotest.(check bool) "new entry resident" true (Solve_cache.find sc k3 <> None)

let test_cache_jobs_shared () =
  (* jobs is excluded from the key: sequential and parallel callers share
     entries (the solver's output is jobs-invariant). *)
  let cluster = small_cluster ~n:4 () in
  let sc = Solve_cache.create () in
  ignore (Solve_cache.solve sc ~config:{ cheap with Optimizer.jobs = 1 } cluster);
  ignore (Solve_cache.solve sc ~config:{ cheap with Optimizer.jobs = 4 } cluster);
  Alcotest.(check int) "jobs change is a hit" 1 (Solve_cache.stats sc).Solve_cache.hits

let test_rate_grain_absorbs_jitter () =
  let cluster = small_cluster ~n:4 () in
  let sc = Solve_cache.create ~rate_grain:0.5 () in
  let jittered =
    {
      cluster with
      Cluster.devices =
        Array.map
          (fun (d : Cluster.device) -> { d with Cluster.rate = d.Cluster.rate +. 0.01 })
          cluster.Cluster.devices;
    }
  in
  Alcotest.(check string) "sub-grain jitter shares a fingerprint"
    (Solve_cache.fingerprint sc ~config:cheap cluster)
    (Solve_cache.fingerprint sc ~config:cheap jittered);
  let exact = Solve_cache.create () in
  Alcotest.(check bool) "exact grain distinguishes the jitter" true
    (Solve_cache.fingerprint exact ~config:cheap cluster
    <> Solve_cache.fingerprint exact ~config:cheap jittered)

let test_obs_counters () =
  let reg = Es_obs.Metric.create () in
  let sc = Solve_cache.create ~capacity:1 ~metrics:reg () in
  let cluster = small_cluster ~n:4 () in
  ignore (Solve_cache.solve sc ~config:cheap cluster);
  ignore (Solve_cache.solve sc ~config:cheap cluster);
  ignore (Solve_cache.solve sc ~config:cheap (Online.scale_rates cluster 2.0));
  let counter name =
    match Es_obs.Metric.find reg name with
    | Some (Es_obs.Metric.Counter n) -> n
    | _ -> Alcotest.fail (name ^ " not registered")
  in
  Alcotest.(check int) "hits counter" 1 (counter "solve_cache/hits");
  Alcotest.(check int) "misses counter" 2 (counter "solve_cache/misses");
  Alcotest.(check int) "evictions counter" 1 (counter "solve_cache/evictions")

let test_create_validation () =
  Alcotest.check_raises "zero capacity" (Invalid_argument "Solve_cache.create: non-positive capacity")
    (fun () -> ignore (Solve_cache.create ~capacity:0 ()));
  Alcotest.check_raises "negative grain" (Invalid_argument "Solve_cache.create: negative rate_grain")
    (fun () -> ignore (Solve_cache.create ~rate_grain:(-1.0) ()))

(* ---------- fingerprint sensitivity (qcheck) ---------- *)

(* Any structural mutation of the cluster must change the fingerprint. *)
let mutate cluster ~kind ~idx =
  let devices = Array.copy cluster.Cluster.devices in
  let servers = Array.copy cluster.Cluster.servers in
  let i = idx mod Array.length devices in
  let j = idx mod Array.length servers in
  let d = devices.(i) in
  match kind mod 6 with
  | 0 ->
      devices.(i) <- { d with Cluster.rate = (d.Cluster.rate *. 2.0) +. 1.0 };
      ("rate", { cluster with Cluster.devices = devices })
  | 1 ->
      devices.(i) <- { d with Cluster.deadline = d.Cluster.deadline +. 0.075 };
      ("deadline", { cluster with Cluster.devices = devices })
  | 2 ->
      devices.(i) <- { d with Cluster.accuracy_floor = d.Cluster.accuracy_floor /. 2.0 };
      ("accuracy_floor", { cluster with Cluster.devices = devices })
  | 3 ->
      servers.(j) <-
        { (servers.(j)) with Cluster.ap_bandwidth_bps = servers.(j).Cluster.ap_bandwidth_bps *. 1.5 };
      ("ap_bandwidth", { cluster with Cluster.servers = servers })
  | 4 ->
      ( "drop_device",
        Cluster.make
          ~devices:(Array.to_list (Array.sub devices 0 (Array.length devices - 1)))
          ~servers:(Array.to_list servers) )
  | _ ->
      devices.(i) <-
        {
          d with
          Cluster.link =
            { (d.Cluster.link) with Link.peak_bps = d.Cluster.link.Link.peak_bps /. 2.0 };
        };
      ("link", { cluster with Cluster.devices = devices })

let fingerprint_sensitive =
  QCheck.Test.make ~count:60 ~name:"cluster fingerprint changes on any mutation"
    QCheck.(pair (int_bound 1000) (int_bound 1000))
    (fun (kind, idx) ->
      let cluster = small_cluster ~n:5 () in
      let base = Cluster.fingerprint cluster in
      let label, mutated = mutate cluster ~kind ~idx in
      let fp = Cluster.fingerprint mutated in
      if fp = base then QCheck.Test.fail_reportf "mutation %s left fingerprint %s" label fp
      else true)

let fingerprint_stable =
  QCheck.Test.make ~count:20 ~name:"cluster fingerprint is pure"
    QCheck.(int_bound 1000)
    (fun seed ->
      let cluster =
        Scenario.build (Scenario.with_seed seed (Scenario.with_n_devices 5 Scenario.default))
      in
      Cluster.fingerprint cluster = Cluster.fingerprint cluster)

let () =
  Alcotest.run "es_cache"
    [
      ( "warm_start",
        [
          Alcotest.test_case "equal-or-better on named scenarios" `Slow
            test_warm_equal_or_better;
          Alcotest.test_case "deterministic across jobs" `Quick test_warm_jobs_deterministic;
          Alcotest.test_case "arity mismatch ignored" `Quick test_warm_arity_mismatch_ignored;
          Alcotest.test_case "stale incumbent repaired" `Quick test_stale_warm_repaired;
          Alcotest.test_case "recover fallbacks warm-seeded" `Slow test_recover_warm_fallbacks;
        ] );
      ( "solve_cache",
        [
          Alcotest.test_case "hit is bit-identical" `Quick test_cache_hit_identical;
          Alcotest.test_case "warm hint not keyed" `Quick test_cache_warm_hint_not_keyed;
          Alcotest.test_case "LRU eviction order" `Quick test_lru_eviction;
          Alcotest.test_case "jobs excluded from key" `Quick test_cache_jobs_shared;
          Alcotest.test_case "rate grain" `Quick test_rate_grain_absorbs_jitter;
          Alcotest.test_case "es_obs counters" `Quick test_obs_counters;
          Alcotest.test_case "create validation" `Quick test_create_validation;
        ] );
      ( "fingerprint",
        [
          QCheck_alcotest.to_alcotest fingerprint_sensitive;
          QCheck_alcotest.to_alcotest fingerprint_stable;
        ] );
    ]
