(* Sharded-solver contract: feasibility on every named scenario, objective
   within a bounded factor of the monolithic solve, bit-identity across
   [jobs], and Delta re-solves that are exactly a touched-shard re-solve
   stitched into the incumbent. *)

open Es_edge
open Es_joint

let named_scenarios = [ "default"; "smart_city"; "ar_assistant"; "drone_swarm" ]

let cluster_of ~n ?(servers = 2) ?(seed = 0) name =
  Es_workload.Scenarios.by_name name
  |> Scenario.with_n_devices n
  |> Scenario.with_n_servers servers
  |> Scenario.with_seed seed |> Scenario.build

(* ---------- feasibility on named scenarios ---------- *)

let test_feasible_named () =
  List.iter
    (fun name ->
      let cluster = cluster_of ~n:12 ~servers:3 name in
      let out = Es_scale.solve cluster in
      (match Decision.validate cluster out.Es_scale.decisions with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: sharded solve infeasible: %s" name e);
      Alcotest.(check int)
        (name ^ ": full arity")
        (Cluster.n_devices cluster)
        (Array.length out.Es_scale.decisions);
      Alcotest.(check bool)
        (name ^ ": assignment matches decisions")
        true
        (Array.for_all2
           (fun (d : Decision.t) s -> d.Decision.server = s)
           out.Es_scale.decisions out.Es_scale.assignment))
    named_scenarios

(* ---------- qcheck: quality vs monolithic, determinism ---------- *)

(* Sharding trades a little objective for decomposition; the coordination
   layer must keep the gap bounded on clusters small enough to solve
   monolithically. *)
let quality_vs_monolithic =
  QCheck.Test.make ~count:6 ~name:"sharded objective <= (1+eps) * monolithic (<=25 devices)"
    QCheck.(pair (int_range 6 25) (int_range 0 1000))
    (fun (n, seed) ->
      let cluster = cluster_of ~n ~servers:2 ~seed "default" in
      let mono = Optimizer.solve cluster in
      let sh = Es_scale.solve cluster in
      (match Decision.validate cluster sh.Es_scale.decisions with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "infeasible: %s" e);
      if sh.Es_scale.objective > 1.25 *. mono.Optimizer.objective +. 1e-9 then
        QCheck.Test.fail_reportf "sharded %.6f vs monolithic %.6f (n=%d seed=%d)"
          sh.Es_scale.objective mono.Optimizer.objective n seed
      else true)

let bit_identity_across_jobs =
  QCheck.Test.make ~count:6 ~name:"sharded solve bit-identical for jobs in {1,4}"
    QCheck.(pair (int_range 4 18) (int_range 0 1000))
    (fun (n, seed) ->
      let cluster = cluster_of ~n ~servers:3 ~seed "default" in
      let solve j =
        Es_scale.solve ~config:{ Es_scale.default_config with Es_scale.jobs = j } cluster
      in
      let a = solve 1 and b = solve 4 in
      Decision.fingerprint a.Es_scale.decisions = Decision.fingerprint b.Es_scale.decisions
      && a.Es_scale.objective = b.Es_scale.objective
      && a.Es_scale.assignment = b.Es_scale.assignment)

(* ---------- Delta: incremental == touched-shard re-solve ---------- *)

(* With [delta_sweeps = 0], [Delta.apply] must be *exactly* one re-solve of
   the touched shard, warm-started from the carried-over incumbent, lifted
   over the untouched decisions.  We reconstruct that by hand per event and
   demand bit-identity. *)

let delta_cfg = { Es_scale.default_config with Es_scale.delta_sweeps = 0 }

let expected_stitch cfg cluster' ~assignment' ~carried ~touched =
  let next = Array.copy carried in
  List.iter
    (fun s ->
      match Es_scale.Shard.make cluster' ~assignment:assignment' ~server:s with
      | None -> ()
      | Some sh ->
          let out = Es_scale.Shard.solve ~config:(Es_scale.shard_config cfg) ~warm:carried sh in
          Es_scale.Shard.lift_into sh out next)
    (List.sort_uniq Int.compare touched);
  next

let check_delta name st event ~cluster' ~carried ~assignment' ~touched =
  let st' = Es_scale.Delta.apply st event in
  Alcotest.(check string)
    (name ^ ": rebuilt cluster matches")
    (Cluster.fingerprint cluster')
    (Cluster.fingerprint (Es_scale.Delta.cluster st'));
  let expected = expected_stitch delta_cfg cluster' ~assignment' ~carried ~touched in
  let got = (Es_scale.Delta.output st').Es_scale.decisions in
  Alcotest.(check string)
    (name ^ ": delta == touched-shard re-solve")
    (Decision.fingerprint expected) (Decision.fingerprint got);
  match Decision.validate cluster' got with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: delta result infeasible: %s" name e

let test_delta_rate_change () =
  let cluster = cluster_of ~n:10 ~servers:3 "default" in
  let st = Es_scale.Delta.init ~config:delta_cfg cluster in
  let out = Es_scale.Delta.output st in
  let i = 4 in
  let rate = cluster.Cluster.devices.(i).Cluster.rate *. 1.8 in
  let devices' =
    List.init (Cluster.n_devices cluster) (fun j ->
        let d = cluster.Cluster.devices.(j) in
        if j = i then { d with Cluster.rate } else d)
  in
  let cluster' =
    Cluster.make ~devices:devices' ~servers:(Array.to_list cluster.Cluster.servers)
  in
  check_delta "rate_change" st
    (Es_scale.Delta.Rate_change (i, rate))
    ~cluster'
    ~carried:(Array.copy out.Es_scale.decisions)
    ~assignment':out.Es_scale.assignment
    ~touched:[ out.Es_scale.assignment.(i) ]

let test_delta_leave () =
  let cluster = cluster_of ~n:10 ~servers:3 "default" in
  let st = Es_scale.Delta.init ~config:delta_cfg cluster in
  let out = Es_scale.Delta.output st in
  let i = 3 in
  let nd = Cluster.n_devices cluster in
  let keep j = if j < i then j else j + 1 in
  let cluster' =
    Cluster.make
      ~devices:(List.init (nd - 1) (fun j -> cluster.Cluster.devices.(keep j)))
      ~servers:(Array.to_list cluster.Cluster.servers)
  in
  let carried =
    Array.init (nd - 1) (fun j ->
        { (out.Es_scale.decisions.(keep j)) with Decision.device = j })
  in
  let assignment' = Array.init (nd - 1) (fun j -> out.Es_scale.assignment.(keep j)) in
  check_delta "leave" st (Es_scale.Delta.Leave i) ~cluster' ~carried ~assignment'
    ~touched:[ out.Es_scale.assignment.(i) ]

let test_delta_join () =
  let cluster = cluster_of ~n:10 ~servers:3 "default" in
  let donor = cluster_of ~n:10 ~servers:3 ~seed:99 "default" in
  let joining = { (donor.Cluster.devices.(0)) with Cluster.dev_id = 10 } in
  let st = Es_scale.Delta.init ~config:delta_cfg cluster in
  let out = Es_scale.Delta.output st in
  let st' = Es_scale.Delta.apply st (Es_scale.Delta.Join joining) in
  let cluster' = Es_scale.Delta.cluster st' in
  Alcotest.(check int) "join: one more device" 11 (Cluster.n_devices cluster');
  (* The join target is whatever Delta picked; reconstruct its stitch. *)
  let s = (Es_scale.Delta.output st').Es_scale.assignment.(10) in
  let seed_decision =
    Decision.make ~device:10 ~server:s
      ~plan:(Es_surgery.Plan.device_only joining.Cluster.model)
      ()
  in
  let carried = Array.append out.Es_scale.decisions [| seed_decision |] in
  let assignment' = Array.append out.Es_scale.assignment [| s |] in
  let expected = expected_stitch delta_cfg cluster' ~assignment' ~carried ~touched:[ s ] in
  Alcotest.(check string) "join: delta == touched-shard re-solve"
    (Decision.fingerprint expected)
    (Decision.fingerprint (Es_scale.Delta.output st').Es_scale.decisions);
  match Decision.validate cluster' (Es_scale.Delta.output st').Es_scale.decisions with
  | Ok () -> ()
  | Error e -> Alcotest.failf "join: delta result infeasible: %s" e

let test_delta_guards () =
  let cluster = cluster_of ~n:2 "default" in
  let st = Es_scale.Delta.init ~config:delta_cfg cluster in
  Alcotest.check_raises "out-of-range device"
    (Invalid_argument "Es_scale.Delta.Rate_change: device 9 out of range") (fun () ->
      ignore (Es_scale.Delta.apply st (Es_scale.Delta.Rate_change (9, 1.0))));
  let st = Es_scale.Delta.apply st (Es_scale.Delta.Leave 0) in
  Alcotest.check_raises "cannot remove last device"
    (Invalid_argument "Es_scale.Delta.Leave: cannot remove the last device") (fun () ->
      ignore (Es_scale.Delta.apply st (Es_scale.Delta.Leave 0)))

(* ---------- solver adapter + warm/assignment contract ---------- *)

let test_solver_adapter_online () =
  let cluster = cluster_of ~n:8 ~servers:2 "default" in
  let profile = Es_workload.Profiles.step_burst ~start_s:10.0 ~stop_s:20.0 ~factor:1.5 in
  let options =
    { Es_sim.Runner.default_options with duration_s = 30.0; warmup_s = 2.0 }
  in
  let solver = Es_scale.solver () in
  let sim = Online.run ~options ~solver ~epoch_s:10.0 ~rate_profile:profile cluster in
  Alcotest.(check int) "re-optimized at every epoch" 3 sim.Online.resolve_count;
  List.iter
    (fun (t, decisions) ->
      let scaled = Online.scale_rates cluster (profile t) in
      match Decision.validate scaled decisions with
      | Ok () -> ()
      | Error e -> Alcotest.failf "epoch at t=%.1f infeasible: %s" t e)
    sim.Online.schedule

let test_bad_inputs_ignored () =
  let cluster = cluster_of ~n:6 "default" in
  let base = Es_scale.solve cluster in
  let wrong_arity = Array.sub base.Es_scale.decisions 0 2 in
  let out = Es_scale.solve ~warm_start:wrong_arity cluster in
  Alcotest.(check string) "wrong-arity warm ignored"
    (Decision.fingerprint base.Es_scale.decisions)
    (Decision.fingerprint out.Es_scale.decisions);
  let out = Es_scale.solve ~assignment:[| 0; 7; 0; 0; 0; 0 |] cluster in
  Alcotest.(check string) "out-of-range assignment ignored"
    (Decision.fingerprint base.Es_scale.decisions)
    (Decision.fingerprint out.Es_scale.decisions)

let test_config_validation () =
  let cluster = cluster_of ~n:2 "default" in
  List.iter
    (fun (name, cfg) ->
      Alcotest.(check bool)
        name true
        (try
           ignore (Es_scale.solve ~config:cfg cluster);
           false
         with Invalid_argument _ -> true))
    [
      ("max_sweeps 0", { Es_scale.default_config with Es_scale.max_sweeps = 0 });
      ("negative delta_sweeps", { Es_scale.default_config with Es_scale.delta_sweeps = -1 });
      ("move_tolerance 1", { Es_scale.default_config with Es_scale.move_tolerance = 1.0 });
      ("negative price_step", { Es_scale.default_config with Es_scale.price_step = -0.5 });
    ]

let test_counters () =
  Es_scale.reset_counters ();
  let cluster = cluster_of ~n:5 "default" in
  ignore (Es_scale.solve cluster);
  let c = Es_scale.counters () in
  Alcotest.(check bool) "sweeps counted" true (c.Es_scale.sweeps >= 1);
  Alcotest.(check bool) "shard solves counted" true (c.Es_scale.shard_solves >= 1)

let () =
  Alcotest.run "es_scale"
    [
      ( "sharded",
        [
          Alcotest.test_case "feasible on named scenarios" `Slow test_feasible_named;
          Alcotest.test_case "bad warm/assignment ignored" `Quick test_bad_inputs_ignored;
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "counters" `Quick test_counters;
          QCheck_alcotest.to_alcotest quality_vs_monolithic;
          QCheck_alcotest.to_alcotest bit_identity_across_jobs;
        ] );
      ( "delta",
        [
          Alcotest.test_case "rate change == shard re-solve" `Quick test_delta_rate_change;
          Alcotest.test_case "leave == shard re-solve" `Quick test_delta_leave;
          Alcotest.test_case "join == shard re-solve" `Quick test_delta_join;
          Alcotest.test_case "guards" `Quick test_delta_guards;
        ] );
      ( "online",
        [ Alcotest.test_case "solver adapter epochs feasible" `Slow test_solver_adapter_online ] );
    ]
