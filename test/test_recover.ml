(* Failure-aware recovery: precomputed fallback tables, fault-schedule
   compilation into reconfigurations, and the end-to-end recovery claim —
   after a server crash, the re-solve arm restores the deadline-hit rate of
   the affected devices where the no-recovery arm collapses. *)

open Es_edge

let default_cluster = lazy (Scenario.build Scenario.default)

let solved = lazy (Es_joint.Optimizer.solve (Lazy.force default_cluster))

(* ---------- fallback tables ---------- *)

let test_local_decisions_all_local () =
  let cluster = Lazy.force default_cluster in
  let ds = Es_joint.Recover.local_decisions cluster in
  Alcotest.(check int) "one decision per device" (Cluster.n_devices cluster) (Array.length ds);
  Array.iter
    (fun d -> Alcotest.(check bool) "device-only" false (Decision.offloads d))
    ds

let test_solve_without_avoids_failed_server () =
  let cluster = Lazy.force default_cluster in
  let ns = Cluster.n_servers cluster in
  for failed = 0 to ns - 1 do
    let ds = Es_joint.Recover.solve_without cluster ~failed:[ failed ] in
    (match Decision.validate cluster ds with
    | Ok () -> ()
    | Error e -> Alcotest.fail e);
    Array.iter
      (fun (d : Decision.t) ->
        if Decision.offloads d then
          Alcotest.(check bool)
            (Printf.sprintf "device %d avoids failed server %d" d.Decision.device failed)
            true
            (d.Decision.server <> failed))
      ds
  done

let test_solve_without_all_failed_goes_local () =
  let cluster = Lazy.force default_cluster in
  let all = List.init (Cluster.n_servers cluster) Fun.id in
  let ds = Es_joint.Recover.solve_without cluster ~failed:all in
  Array.iter
    (fun d -> Alcotest.(check bool) "all failed: device-only" false (Decision.offloads d))
    ds

let test_solve_without_bad_index () =
  let cluster = Lazy.force default_cluster in
  match
    try
      ignore (Es_joint.Recover.solve_without cluster ~failed:[ 99 ]);
      `No_raise
    with Invalid_argument _ -> `Raised
  with
  | `Raised -> ()
  | `No_raise -> Alcotest.fail "out-of-range server index accepted"

let test_precompute_table () =
  let cluster = Lazy.force default_cluster in
  let t = Es_joint.Recover.precompute cluster in
  for s = 0 to Cluster.n_servers cluster - 1 do
    let ds = Es_joint.Recover.fallback t ~server:s in
    Array.iter
      (fun (d : Decision.t) ->
        if Decision.offloads d then
          Alcotest.(check bool) "fallback avoids its failure domain" true
            (d.Decision.server <> s))
      ds
  done;
  match
    try
      ignore (Es_joint.Recover.fallback t ~server:(-1));
      `No_raise
    with Invalid_argument _ -> `Raised
  with
  | `Raised -> ()
  | `No_raise -> Alcotest.fail "negative server index accepted"

(* ---------- schedule compilation ---------- *)

let test_schedule_for_faults_timing () =
  let cluster = Lazy.force default_cluster in
  let decisions = (Lazy.force solved).Es_joint.Optimizer.decisions in
  let t = Es_joint.Recover.precompute cluster in
  let faults = Es_sim.Faults.scripted (Es_sim.Faults.crash ~at:20.0 ~for_s:10.0 0) in
  match Es_joint.Recover.schedule_for_faults t ~detect_s:1.0 ~decisions faults with
  | [ (t1, d1); (t2, d2) ] ->
      Alcotest.(check (float 1e-9)) "fallback 1s after the crash" 21.0 t1;
      Alcotest.(check (float 1e-9)) "restore 1s after the repair" 31.0 t2;
      Array.iter
        (fun (d : Decision.t) ->
          if Decision.offloads d then
            Alcotest.(check bool) "swap avoids crashed server" true (d.Decision.server <> 0))
        d1;
      Alcotest.(check bool) "original decisions restored" true (d2 == decisions)
  | l -> Alcotest.fail (Printf.sprintf "expected 2 entries, got %d" (List.length l))

let test_schedule_ignores_non_server_events () =
  let cluster = Lazy.force default_cluster in
  let decisions = (Lazy.force solved).Es_joint.Optimizer.decisions in
  let t = Es_joint.Recover.precompute cluster in
  let faults = Es_sim.Faults.scripted (Es_sim.Faults.outage ~at:5.0 ~for_s:2.0 1) in
  Alcotest.(check int) "link events produce no swaps" 0
    (List.length (Es_joint.Recover.schedule_for_faults t ~decisions faults))

(* ---------- end-to-end recovery ---------- *)

(* The PR's acceptance experiment: crash the busiest server mid-run and
   compare post-crash deadline-hit rates on the devices that offloaded to
   it.  The re-solve arm must recover at least 2x the no-recovery arm (and
   actually recover — not 2 x epsilon). *)
let test_resolve_recovers_affected_devices () =
  let duration = 40.0 in
  let crash_t = duration /. 2.0 in
  let cluster = Lazy.force default_cluster in
  let decisions = (Lazy.force solved).Es_joint.Optimizer.decisions in
  let counts = Array.make (Cluster.n_servers cluster) 0 in
  Array.iter
    (fun (d : Decision.t) ->
      if Decision.offloads d then counts.(d.Decision.server) <- counts.(d.Decision.server) + 1)
    decisions;
  let crash = ref 0 in
  Array.iteri (fun s c -> if c > counts.(!crash) then crash := s) counts;
  let crash = !crash in
  Alcotest.(check bool) "some devices offload to the crashed server" true (counts.(crash) > 0);
  let faults = Es_sim.Faults.scripted (Es_sim.Faults.crash ~at:crash_t crash) in
  (* Measurement window = post-crash only. *)
  let opts resilience =
    {
      Es_sim.Runner.default_options with
      duration_s = duration;
      warmup_s = crash_t;
      faults;
      resilience;
    }
  in
  let affected i =
    let d = decisions.(i) in
    Decision.offloads d && d.Decision.server = crash
  in
  let affected_rate (r : Es_sim.Metrics.report) =
    let hits = ref 0 and gen = ref 0 in
    Array.iteri
      (fun i (d : Es_sim.Metrics.device_stats) ->
        if affected i then begin
          hits := !hits + d.Es_sim.Metrics.deadline_hits;
          gen := !gen + d.Es_sim.Metrics.generated
        end)
      r.Es_sim.Metrics.per_device;
    Alcotest.(check bool) "affected devices generated requests" true (!gen > 0);
    float_of_int !hits /. float_of_int !gen
  in
  let static = Es_sim.Runner.run ~options:(opts None) cluster decisions in
  let recover = Es_joint.Recover.precompute cluster in
  let reconfigure = Es_joint.Recover.schedule_for_faults recover ~decisions faults in
  let resolve =
    Es_sim.Runner.run
      ~options:(opts (Some Es_sim.Runner.default_resilience))
      ~reconfigure cluster decisions
  in
  let s_rate = affected_rate static and r_rate = affected_rate resolve in
  Alcotest.(check bool)
    (Printf.sprintf "re-solve %.3f recovers >= 2x static %.3f on affected devices" r_rate
       s_rate)
    true
    (r_rate >= 2.0 *. s_rate);
  Alcotest.(check bool)
    (Printf.sprintf "re-solve recovery is substantial (%.3f >= 0.5)" r_rate)
    true (r_rate >= 0.5);
  Alcotest.(check bool) "overall DSR also improves" true
    (resolve.Es_sim.Metrics.dsr > static.Es_sim.Metrics.dsr)

let test_run_online_with_faults () =
  let cluster = Lazy.force default_cluster in
  let faults = Es_sim.Faults.scripted (Es_sim.Faults.crash ~at:10.0 ~for_s:10.0 0) in
  let options =
    {
      Es_sim.Runner.default_options with
      duration_s = 30.0;
      warmup_s = 0.0;
      faults;
      resilience = Some Es_sim.Runner.default_resilience;
    }
  in
  let result =
    Es_joint.Recover.run_online ~options ~epoch_s:10.0 ~rate_profile:(fun _ -> 1.0) cluster
  in
  let r = result.Es_joint.Online.report in
  Alcotest.(check int) "conservation with timeouts" r.Es_sim.Metrics.total_generated
    (r.Es_sim.Metrics.total_completed + r.Es_sim.Metrics.total_dropped
   + r.Es_sim.Metrics.total_timed_out);
  Alcotest.(check bool) "requests completed" true (r.Es_sim.Metrics.total_completed > 0);
  (* 3 epochs, the middle one starts with server 0 down: 2 genuine solves. *)
  Alcotest.(check int) "down epoch skips the optimizer" 2
    result.Es_joint.Online.resolve_count;
  List.iter
    (fun (time, ds) ->
      if time >= 10.0 && time < 20.0 then
        Array.iter
          (fun (d : Decision.t) ->
            if Decision.offloads d then
              Alcotest.(check bool) "down epoch avoids server 0" true (d.Decision.server <> 0))
          ds)
    result.Es_joint.Online.schedule

let test_schedule_backends_equal () =
  (* A full recovery pipeline — precomputed fallbacks compiled into
     reconfigurations around a crash, resilience on — must be bit-identical
     on the Heap oracle and the Calendar production backend. *)
  let cluster = Lazy.force default_cluster in
  let decisions = (Lazy.force solved).Es_joint.Optimizer.decisions in
  let faults = Es_sim.Faults.scripted (Es_sim.Faults.crash ~at:15.0 ~for_s:10.0 0) in
  let recover = Es_joint.Recover.precompute cluster in
  let reconfigure = Es_joint.Recover.schedule_for_faults recover ~decisions faults in
  Alcotest.(check bool) "schedule has swaps" true (reconfigure <> []);
  let run engine =
    Es_sim.Runner.run
      ~options:
        {
          Es_sim.Runner.default_options with
          duration_s = 40.0;
          warmup_s = 0.0;
          faults;
          resilience = Some Es_sim.Runner.default_resilience;
          engine;
        }
      ~reconfigure cluster decisions
  in
  let rh = run Es_sim.Engine.Heap and rc = run Es_sim.Engine.Calendar in
  Alcotest.(check bool) "recovery run reports identical across backends" true (rh = rc);
  Alcotest.(check int) "conservation (incl. shed outcome)" rh.Es_sim.Metrics.total_generated
    (rh.Es_sim.Metrics.total_completed + rh.Es_sim.Metrics.total_dropped
   + rh.Es_sim.Metrics.total_timed_out + rh.Es_sim.Metrics.total_shed)

let () =
  Alcotest.run "es_joint_recover"
    [
      ( "fallbacks",
        [
          Alcotest.test_case "local decisions" `Quick test_local_decisions_all_local;
          Alcotest.test_case "solve_without avoids server" `Quick
            test_solve_without_avoids_failed_server;
          Alcotest.test_case "all failed goes local" `Quick
            test_solve_without_all_failed_goes_local;
          Alcotest.test_case "bad index" `Quick test_solve_without_bad_index;
          Alcotest.test_case "precompute table" `Quick test_precompute_table;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "timing" `Quick test_schedule_for_faults_timing;
          Alcotest.test_case "ignores link events" `Quick test_schedule_ignores_non_server_events;
          Alcotest.test_case "backend equality" `Quick test_schedule_backends_equal;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "re-solve recovers affected devices" `Quick
            test_resolve_recovers_affected_devices;
          Alcotest.test_case "online with faults" `Quick test_run_online_with_faults;
        ] );
    ]
