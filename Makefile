# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench examples clean doc

all: build

build:
	dune build @all

test:
	dune runtest

test-force:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt

bench:
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

examples:
	dune exec examples/quickstart.exe
	dune exec examples/smart_city.exe
	dune exec examples/ar_assistant.exe
	dune exec examples/drone_swarm.exe
	dune exec examples/custom_model.exe

clean:
	dune clean
