# Convenience targets; everything is plain dune underneath.

.PHONY: all build test check bench bench-timing examples clean doc fmt fmt-check lint-sa

all: build

build:
	dune build @all

test:
	dune runtest

# The one-shot gate CI runs: full build (including examples and bench
# executables), the whole test suite, and the repo-wide static-analysis
# pass (which must be clean).
check:
	dune build @all && dune runtest && $(MAKE) lint-sa

# Determinism & domain-safety static analysis (es_lint, DESIGN.md §11):
# parses every .ml under lib/ bin/ bench/ and fails on any unsuppressed
# D1–D5 finding.  Findings also land in lint_findings.jsonl for tooling.
lint-sa:
	dune build bin/es_lint.exe
	dune exec bin/es_lint.exe -- --jsonl lint_findings.jsonl

# Requires odoc (opam install odoc); not part of `check`.
doc:
	dune build @doc

test-force:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt

bench:
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

# Solver-scaling + hot-path timing microbench.  Emits one JSONL record per
# measurement to BENCH_solver.json (committed once as the perf baseline);
# includes the end-to-end sweep-suite comparison at jobs=1 vs jobs=N and
# the warm-started/cached online re-solve comparison.
bench-timing:
	dune exec bench/timing.exe -- --sizes 10,25,50,100 --jobs 4 --repeats 3 --suite --warm-online --out BENCH_solver.json

# Formatting (requires ocamlformat, pinned in .ocamlformat).
fmt:
	dune build @fmt --auto-promote

fmt-check:
	dune build @fmt

examples:
	dune exec examples/quickstart.exe
	dune exec examples/smart_city.exe
	dune exec examples/ar_assistant.exe
	dune exec examples/drone_swarm.exe
	dune exec examples/custom_model.exe

clean:
	dune clean
