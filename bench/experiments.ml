(* One function per reconstructed table/figure (see DESIGN.md §4 and
   EXPERIMENTS.md).  Every function prints the table/series the figure would
   plot. *)

open Es_edge
open Common

(* ------------------------------------------------------------------ *)
(* T1 — model zoo inventory                                            *)
(* ------------------------------------------------------------------ *)

let t1 () =
  heading "T1" "Model zoo inventory (layer DAGs, costs, surgery space)";
  let rpi = Processor.raspberry_pi.Processor.perf in
  let gpu = Processor.edge_gpu.Processor.perf in
  let rows =
    List.map
      (fun g ->
        let cands = Es_surgery.Candidate.pareto_candidates g in
        [
          g.Es_dnn.Graph.name;
          string_of_int (Es_dnn.Graph.n_nodes g);
          fmt_f ~digits:2 (Es_dnn.Graph.total_flops g /. 1e9);
          fmt_f ~digits:2 (Es_dnn.Graph.total_params g /. 1e6);
          string_of_int (List.length (Es_dnn.Graph.exit_candidate_ids g));
          string_of_int (List.length cands);
          fmt_ms (Es_dnn.Profile.total_latency rpi g);
          fmt_ms (Es_dnn.Profile.total_latency gpu g);
        ])
      (Es_dnn.Zoo.all ())
  in
  print_table
    ~align:[ Es_util.Table.Left ]
    ~header:
      [ "model"; "nodes"; "GFLOPs"; "Mparams"; "exits"; "pareto-plans"; "rpi(ms)"; "gpu(ms)" ]
    rows

(* ------------------------------------------------------------------ *)
(* T2 — optimality gap vs the exhaustive solver                        *)
(* ------------------------------------------------------------------ *)

let t2 () =
  heading "T2" "Optimality gap: JMSRA heuristic vs exhaustive search (tiny instances)";
  note "Same subsampled plan grid (4 candidates/device) for both solvers.";
  let rows = ref [] in
  List.iter
    (fun n_devices ->
      List.iter
        (fun seed ->
          let spec =
            {
              Scenario.default with
              Scenario.n_devices;
              seed;
              model_names = [ "alexnet"; "mobilenet_v2" ];
            }
          in
          let cluster = Scenario.build spec in
          let opt = Es_joint.Exhaustive.solve ~max_candidates_per_device:4 cluster in
          let config =
            { Es_joint.Optimizer.default_config with max_candidates = Some 4 }
          in
          let heur = Es_joint.Optimizer.solve ~config cluster in
          let gap =
            if opt.Es_joint.Exhaustive.objective > 0.0 then
              100.0
              *. (heur.Es_joint.Optimizer.objective -. opt.Es_joint.Exhaustive.objective)
              /. opt.Es_joint.Exhaustive.objective
            else 0.0
          in
          rows :=
            [
              string_of_int n_devices;
              string_of_int seed;
              fmt_f ~digits:4 opt.Es_joint.Exhaustive.objective;
              fmt_f ~digits:4 heur.Es_joint.Optimizer.objective;
              fmt_f ~digits:2 gap;
              string_of_int opt.Es_joint.Exhaustive.combinations;
              fmt_f ~digits:3 opt.Es_joint.Exhaustive.solve_time_s;
              fmt_f ~digits:3 heur.Es_joint.Optimizer.solve_time_s;
            ]
            :: !rows)
        [ 1; 2 ])
    [ 2; 3; 4 ];
  print_table
    ~header:
      [ "devices"; "seed"; "optimal"; "JMSRA"; "gap(%)"; "combos"; "opt(s)"; "jmsra(s)" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* F1 — latency CDF on the default scenario                            *)
(* ------------------------------------------------------------------ *)

let f1 () =
  heading "F1" "End-to-end latency CDF, default scenario (20 devices, 2 servers)";
  let cluster = Scenario.build Scenario.default in
  let percentiles = [ 10.0; 25.0; 50.0; 75.0; 90.0; 95.0; 99.0 ] in
  let results =
    List.map
      (fun (p : Es_baselines.Baselines.t) ->
        let _, report = run_policy cluster p in
        (p.Es_baselines.Baselines.name, report))
      (policies ())
  in
  let rows =
    List.map
      (fun pct ->
        Printf.sprintf "p%.0f" pct
        :: List.map
             (fun (_, (r : Es_sim.Metrics.report)) ->
               if Array.length r.Es_sim.Metrics.latencies = 0 then "-"
               else fmt_ms (Es_util.Stats.percentile r.Es_sim.Metrics.latencies pct))
             results)
      percentiles
  in
  print_table
    ~align:[ Es_util.Table.Left ]
    ~header:("latency(ms)" :: List.map fst results)
    rows;
  let dsr_row =
    "DSR(%)" :: List.map (fun (_, r) -> fmt_pct r.Es_sim.Metrics.dsr) results
  in
  print_table ~align:[ Es_util.Table.Left ] ~header:("" :: List.map fst results) [ dsr_row ]

(* ------------------------------------------------------------------ *)
(* F2 — scalability with the number of devices                         *)
(* ------------------------------------------------------------------ *)

let f2 () =
  heading "F2" "Scalability: latency and DSR vs number of devices";
  let sizes = [ 5; 10; 20; 40; 80 ] in
  let pols = core_policies () in
  (* Clusters are built up front (cheap, deterministic); the independent
     (size × policy) cells then fan out across domains under --jobs. *)
  let clusters =
    List.map (fun n -> (n, Scenario.build (Scenario.with_n_devices n Scenario.default))) sizes
  in
  let cells =
    List.concat_map
      (fun (n, cluster) ->
        List.map
          (fun p () ->
            let _, r = run_policy ~point:(Printf.sprintf "devices=%d" n) cluster p in
            r)
          pols)
      clusters
  in
  let reports = parallel_cells cells in
  let npols = List.length pols in
  let results =
    List.mapi
      (fun i n -> (n, List.filteri (fun j _ -> j / npols = i) reports))
      sizes
  in
  let header = "devices" :: List.map (fun (p : Es_baselines.Baselines.t) -> p.Es_baselines.Baselines.name) pols in
  let table metric label =
    note "%s:" label;
    print_table ~header
      (List.map
         (fun (n, rs) -> string_of_int n :: List.map metric rs)
         results)
  in
  table (fun (r : Es_sim.Metrics.report) -> fmt_ms r.Es_sim.Metrics.mean_latency_s) "mean latency (ms)";
  table (fun (r : Es_sim.Metrics.report) -> fmt_ms r.Es_sim.Metrics.p99_s) "p99 latency (ms)";
  table (fun (r : Es_sim.Metrics.report) -> fmt_pct r.Es_sim.Metrics.dsr) "deadline satisfaction (%)"

(* ------------------------------------------------------------------ *)
(* F3 — deadline satisfaction vs offered load                          *)
(* ------------------------------------------------------------------ *)

let f3 () =
  heading "F3" "Deadline-satisfaction ratio vs arrival-rate multiplier";
  let multipliers = [ 0.5; 1.0; 2.0; 3.0; 4.0; 6.0 ] in
  let base = Scenario.build Scenario.default in
  let pols = core_policies () in
  let header = "rate-x" :: List.map (fun (p : Es_baselines.Baselines.t) -> p.Es_baselines.Baselines.name) pols in
  let cells =
    List.concat_map
      (fun m ->
        let cluster = Es_joint.Online.scale_rates base m in
        List.map
          (fun p () ->
            let _, r = run_policy ~point:(Printf.sprintf "rate=%.1f" m) cluster p in
            fmt_pct r.Es_sim.Metrics.dsr)
          pols)
      multipliers
  in
  let dsrs = parallel_cells cells in
  let npols = List.length pols in
  let rows =
    List.mapi
      (fun i m -> fmt_f ~digits:1 m :: List.filteri (fun j _ -> j / npols = i) dsrs)
      multipliers
  in
  print_table ~header rows

(* ------------------------------------------------------------------ *)
(* F4 — impact of uplink bandwidth                                     *)
(* ------------------------------------------------------------------ *)

let f4 () =
  heading "F4" "Mean latency vs access-point bandwidth";
  let mbps = [ 10.0; 25.0; 50.0; 100.0; 200.0; 400.0 ] in
  let pols = core_policies () in
  let header = "AP(Mbps)" :: List.map (fun (p : Es_baselines.Baselines.t) -> p.Es_baselines.Baselines.name) pols in
  let cells =
    List.concat_map
      (fun b ->
        let cluster = Scenario.build (Scenario.with_ap_mbps b Scenario.default) in
        List.map
          (fun p () -> snd (run_policy ~point:(Printf.sprintf "ap_mbps=%.0f" b) cluster p))
          pols)
      mbps
  in
  let reports = parallel_cells cells in
  let npols = List.length pols in
  let per_point i = List.filteri (fun j _ -> j / npols = i) reports in
  let mean_rows =
    List.mapi
      (fun i b ->
        fmt_f ~digits:0 b
        :: List.map
             (fun (r : Es_sim.Metrics.report) -> fmt_ms r.Es_sim.Metrics.mean_latency_s)
             (per_point i))
      mbps
  in
  let dsr_rows =
    List.mapi
      (fun i b ->
        fmt_f ~digits:0 b
        :: List.map (fun (r : Es_sim.Metrics.report) -> fmt_pct r.Es_sim.Metrics.dsr) (per_point i))
      mbps
  in
  note "mean latency (ms):";
  print_table ~header mean_rows;
  note "deadline satisfaction (%%):";
  print_table ~header dsr_rows

(* ------------------------------------------------------------------ *)
(* F5 — accuracy/latency trade-off                                     *)
(* ------------------------------------------------------------------ *)

let f5 () =
  heading "F5" "Accuracy-latency trade-off: EdgeSurgeon under tightening accuracy floors";
  let floors = [ 0.70; 0.80; 0.85; 0.90; 0.95; 0.99 ] in
  let rows =
    List.map
      (fun f ->
        let spec = { Scenario.default with Scenario.accuracy_slack = (f, f) } in
        let cluster = Scenario.build spec in
        let decisions, report = run_policy cluster Es_baselines.Baselines.edgesurgeon in
        let surgical =
          Array.fold_left
            (fun acc (d : Decision.t) ->
              let p = d.Decision.plan in
              if p.Es_surgery.Plan.width < 1.0 || p.Es_surgery.Plan.exit_node <> None then acc + 1
              else acc)
            0 decisions
        in
        [
          fmt_f ~digits:2 f;
          fmt_f ~digits:3 (mean_accuracy decisions);
          fmt_ms report.Es_sim.Metrics.mean_latency_s;
          fmt_ms report.Es_sim.Metrics.p99_s;
          fmt_pct report.Es_sim.Metrics.dsr;
          Printf.sprintf "%d/%d" surgical (Array.length decisions);
        ])
      floors
  in
  print_table
    ~header:[ "floor(rel)"; "mean-acc"; "mean(ms)"; "p99(ms)"; "DSR(%)"; "surgical-plans" ]
    rows

(* ------------------------------------------------------------------ *)
(* F6 — server heterogeneity                                           *)
(* ------------------------------------------------------------------ *)

let f6 () =
  heading "F6" "Impact of server heterogeneity (total capacity fixed, skewed split)";
  let skews = [ (1.0, 1.0); (1.4, 0.6); (1.7, 0.3); (1.9, 0.1) ] in
  let pols = core_policies () in
  let header =
    "skew" :: List.map (fun (p : Es_baselines.Baselines.t) -> p.Es_baselines.Baselines.name) pols
  in
  let dsr_rows = ref [] and mean_rows = ref [] in
  List.iter
    (fun (a, b) ->
      let spec =
        {
          Scenario.default with
          Scenario.servers =
            [
              (Processor.scaled Processor.edge_gpu_small a, 350.0);
              (Processor.scaled Processor.edge_gpu_small b, 350.0);
            ];
        }
      in
      let cluster = Scenario.build spec in
      let reports = List.map (fun p -> snd (run_policy cluster p)) pols in
      let label = Printf.sprintf "%.1f:%.1f" a b in
      dsr_rows :=
        (label :: List.map (fun (r : Es_sim.Metrics.report) -> fmt_pct r.Es_sim.Metrics.dsr) reports)
        :: !dsr_rows;
      mean_rows :=
        (label
        :: List.map (fun (r : Es_sim.Metrics.report) -> fmt_ms r.Es_sim.Metrics.mean_latency_s) reports)
        :: !mean_rows)
    skews;
  note "deadline satisfaction (%%):";
  print_table ~align:[ Es_util.Table.Left ] ~header (List.rev !dsr_rows);
  note "mean latency (ms):";
  print_table ~align:[ Es_util.Table.Left ] ~header (List.rev !mean_rows)

(* ------------------------------------------------------------------ *)
(* F7 — optimizer convergence                                          *)
(* ------------------------------------------------------------------ *)

let f7 () =
  heading "F7" "JMSRA convergence: objective after each outer iteration";
  let seeds = [ 42; 123; 777 ] in
  let traces =
    List.map
      (fun seed ->
        let cluster = Scenario.build (Scenario.with_seed seed Scenario.default) in
        let out = Es_joint.Optimizer.solve cluster in
        (seed, out.Es_joint.Optimizer.trace))
      seeds
  in
  let max_iters =
    List.fold_left (fun acc (_, t) -> max acc (List.length t)) 0 traces
  in
  let rows =
    List.init max_iters (fun i ->
        string_of_int (i + 1)
        :: List.map
             (fun (_, trace) ->
               match List.nth_opt trace i with
               | Some (t : Es_joint.Optimizer.trace_point) ->
                   fmt_f ~digits:4 t.Es_joint.Optimizer.objective
               | None -> "-")
             traces)
  in
  print_table
    ~header:("iteration" :: List.map (fun (s, _) -> Printf.sprintf "seed%d" s) traces)
    rows

(* ------------------------------------------------------------------ *)
(* F8 — ablation study                                                 *)
(* ------------------------------------------------------------------ *)

let f8 () =
  heading "F8" "Ablation: joint optimization vs single-knob variants";
  let cluster = Scenario.build Scenario.default in
  let pols =
    Es_baselines.Baselines.
      [ neurosurgeon; surgery_only; alloc_only; edgesurgeon ]
  in
  let rows =
    List.map
      (fun (p : Es_baselines.Baselines.t) ->
        let decisions, report = run_policy cluster p in
        let per_device_dsr =
          Array.map
            (fun (d : Es_sim.Metrics.device_stats) ->
              if d.Es_sim.Metrics.generated = 0 then 1.0
              else
                float_of_int d.Es_sim.Metrics.deadline_hits
                /. float_of_int d.Es_sim.Metrics.generated)
            report.Es_sim.Metrics.per_device
        in
        [
          p.Es_baselines.Baselines.name;
          fmt_f ~digits:4 (Es_joint.Objective.of_decisions cluster decisions);
          string_of_int (Es_joint.Objective.misses cluster decisions);
          fmt_pct report.Es_sim.Metrics.dsr;
          fmt_ms report.Es_sim.Metrics.mean_latency_s;
          fmt_ms report.Es_sim.Metrics.p99_s;
          fmt_f ~digits:3 (mean_accuracy decisions);
          fmt_f ~digits:3 (Es_util.Stats.jain_index per_device_dsr);
        ])
      pols
  in
  print_table
    ~align:[ Es_util.Table.Left ]
    ~header:
      [ "policy"; "objective"; "misses"; "DSR(%)"; "mean(ms)"; "p99(ms)"; "mean-acc"; "fairness" ]
    rows

(* ------------------------------------------------------------------ *)
(* F9 — per-model gains                                                *)
(* ------------------------------------------------------------------ *)

let f9 () =
  heading "F9" "Per-model latency: one Raspberry-Pi device, one GPU server";
  let rows =
    List.map
      (fun name ->
        let model = Es_dnn.Zoo.by_name name in
        let deadline = if name = "vgg16" || name = "yolo_tiny" then 0.4 else 0.25 in
        let accuracy_floor =
          0.9 *. (Es_surgery.Accuracy.profile_of_model name).Es_surgery.Accuracy.full_accuracy
        in
        let cluster =
          Cluster.make
            ~devices:
              [
                Cluster.device ~id:0 ~proc:Processor.raspberry_pi ~link:Link.wifi ~model
                  ~rate:1.0 ~deadline ~accuracy_floor ();
              ]
            ~servers:[ Cluster.server ~id:0 ~proc:Processor.edge_gpu ~ap_bandwidth_mbps:120.0 () ]
        in
        let latency (p : Es_baselines.Baselines.t) =
          Latency.mean_latency cluster (p.Es_baselines.Baselines.solve cluster)
        in
        let dev = latency Es_baselines.Baselines.device_only in
        let srv = latency Es_baselines.Baselines.server_only in
        let ns = latency Es_baselines.Baselines.neurosurgeon in
        let es = latency Es_baselines.Baselines.edgesurgeon in
        [
          name;
          fmt_ms dev;
          fmt_ms srv;
          fmt_ms ns;
          fmt_ms es;
          fmt_f ~digits:1 (dev /. es);
          fmt_f ~digits:1 (srv /. es);
          fmt_f ~digits:1 (ns /. es);
        ])
      Es_dnn.Zoo.names
  in
  print_table
    ~align:[ Es_util.Table.Left ]
    ~header:
      [
        "model"; "device(ms)"; "server(ms)"; "neurosrg(ms)"; "edgesrg(ms)"; "x-dev"; "x-srv";
        "x-ns";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* F10 — online adaptation under a load burst                          *)
(* ------------------------------------------------------------------ *)

let f10 () =
  heading "F10" "Online timeline: 80 devices, 5x load burst in [60s,120s), 10s bins";
  let profile = Es_workload.Profiles.step_burst ~start_s:60.0 ~stop_s:120.0 ~factor:5.0 in
  let options =
    { Es_sim.Runner.default_options with duration_s = 180.0; warmup_s = 5.0; seed = 7 }
  in
  let cluster = Scenario.build (Scenario.with_n_devices 80 Scenario.default) in
  let adaptive = Es_joint.Online.run ~options ~epoch_s:15.0 ~rate_profile:profile cluster in
  let static = Es_joint.Online.run_static ~options ~rate_profile:profile cluster in
  let bin_means (r : Es_sim.Metrics.report) =
    let bins = Array.make 18 (Es_util.Stats.create ()) in
    Array.iteri (fun i _ -> bins.(i) <- Es_util.Stats.create ()) bins;
    Array.iter
      (fun (t, latency) ->
        let b = int_of_float (t /. 10.0) in
        if b >= 0 && b < 18 then Es_util.Stats.add bins.(b) latency)
      r.Es_sim.Metrics.events;
    bins
  in
  let a_bins = bin_means adaptive.Es_joint.Online.report in
  let s_bins = bin_means static.Es_joint.Online.report in
  let rows =
    List.init 18 (fun i ->
        let label = Printf.sprintf "%d-%ds" (i * 10) ((i + 1) * 10) in
        let cell s =
          if Es_util.Stats.count s = 0 then "-" else fmt_ms (Es_util.Stats.mean s)
        in
        [ label; cell s_bins.(i); cell a_bins.(i) ])
  in
  print_table
    ~align:[ Es_util.Table.Left ]
    ~header:[ "window"; "static mean(ms)"; "adaptive mean(ms)" ]
    rows;
  note "summary: static DSR %s%%, adaptive DSR %s%% (re-optimized %d times)"
    (fmt_pct static.Es_joint.Online.report.Es_sim.Metrics.dsr)
    (fmt_pct adaptive.Es_joint.Online.report.Es_sim.Metrics.dsr)
    adaptive.Es_joint.Online.resolve_count

(* ------------------------------------------------------------------ *)
(* F11 — quantization ablation                                         *)
(* ------------------------------------------------------------------ *)

let f11 () =
  heading "F11" "Quantization ablation: surgery precision levels, 50 Mbps APs";
  note "Bandwidth-constrained default scenario; joint optimizer with growing precision menus.";
  let cluster = Scenario.build (Scenario.with_ap_mbps 50.0 Scenario.default) in
  let menus =
    [
      ("fp32 only", [ Es_surgery.Precision.Fp32 ]);
      ("fp32+fp16", [ Es_surgery.Precision.Fp32; Es_surgery.Precision.Fp16 ]);
      ("fp32+fp16+int8", Es_surgery.Precision.all);
    ]
  in
  let rows =
    List.map
      (fun (label, precisions) ->
        let config = { Es_joint.Optimizer.default_config with precisions } in
        let out = Es_joint.Optimizer.solve ~config cluster in
        let report = simulate cluster out.Es_joint.Optimizer.decisions in
        let quantized =
          Array.fold_left
            (fun acc (d : Decision.t) ->
              if d.Decision.plan.Es_surgery.Plan.precision <> Es_surgery.Precision.Fp32 then
                acc + 1
              else acc)
            0 out.Es_joint.Optimizer.decisions
        in
        [
          label;
          fmt_pct report.Es_sim.Metrics.dsr;
          fmt_ms report.Es_sim.Metrics.mean_latency_s;
          fmt_ms report.Es_sim.Metrics.p99_s;
          fmt_f ~digits:3 (mean_accuracy out.Es_joint.Optimizer.decisions);
          Printf.sprintf "%d/%d" quantized (Array.length out.Es_joint.Optimizer.decisions);
        ])
      menus
  in
  print_table
    ~align:[ Es_util.Table.Left ]
    ~header:[ "precision menu"; "DSR(%)"; "mean(ms)"; "p99(ms)"; "mean-acc"; "quantized" ]
    rows

(* ------------------------------------------------------------------ *)
(* F12 — search-strategy ablation: coordinate descent vs annealing     *)
(* ------------------------------------------------------------------ *)

let f12 () =
  heading "F12" "Search-strategy ablation: JMSRA coordinate descent vs simulated annealing";
  note "Both searches score states with the identical optimal allocation inner step.";
  let rows = ref [] in
  List.iter
    (fun seed ->
      let cluster = Scenario.build (Scenario.with_seed seed Scenario.default) in
      let jm = Es_joint.Optimizer.solve cluster in
      let sa = Es_joint.Annealing.solve cluster in
      let sa_long =
        Es_joint.Annealing.solve
          ~config:{ Es_joint.Annealing.default_config with iterations = 10_000 }
          cluster
      in
      rows :=
        [
          string_of_int seed;
          fmt_f ~digits:4 jm.Es_joint.Optimizer.objective;
          fmt_f ~digits:2 jm.Es_joint.Optimizer.solve_time_s;
          fmt_f ~digits:4 sa.Es_joint.Annealing.objective;
          fmt_f ~digits:2 sa.Es_joint.Annealing.solve_time_s;
          fmt_f ~digits:4 sa_long.Es_joint.Annealing.objective;
          fmt_f ~digits:2 sa_long.Es_joint.Annealing.solve_time_s;
        ]
        :: !rows)
    [ 42; 123; 777 ];
  print_table
    ~header:
      [ "seed"; "JMSRA"; "t(s)"; "SA-2k"; "t(s)"; "SA-10k"; "t(s)" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* F13 — admission control under overload                              *)
(* ------------------------------------------------------------------ *)

let f13 () =
  heading "F13" "Admission control under overload (4x load, 60 Mbps APs)";
  note "Fixed fair-share surgery plans; with vs without admission control.";
  note "Rejected devices fall back to their fastest local surgery plan.";
  let cluster =
    Es_joint.Online.scale_rates
      (Scenario.build (Scenario.with_ap_mbps 60.0 Scenario.default))
      4.0
  in
  let assignment0 =
    let plans0 =
      Array.map
        (fun (d : Cluster.device) -> Es_surgery.Plan.server_only d.Cluster.model)
        cluster.Cluster.devices
    in
    Es_alloc.Assign.balanced_greedy cluster ~plans:plans0
  in
  let plans =
    Es_baselines.Baselines.fair_share_plans ~widths:Es_surgery.Candidate.default_widths cluster
      ~assignment:assignment0
  in
  let naive =
    match Es_alloc.Policy.decisions Es_alloc.Policy.Proportional cluster ~assignment:assignment0 ~plans with
    | Some ds -> ds
    | None -> assert false
  in
  let local_plan i =
    (* Fastest on-device candidate: the rejected device sacrifices accuracy
       to keep its own queue stable. *)
    let dev = cluster.Cluster.devices.(i) in
    let locals =
      Es_surgery.Candidate.pareto_candidates dev.Cluster.model
      |> List.filter Es_surgery.Plan.is_device_only
    in
    match
      Es_util.Numeric.argmin_by
        (fun p -> Es_surgery.Plan.device_time dev.Cluster.proc.Processor.perf p)
        locals
    with
    | Some p -> p
    | None -> Es_surgery.Plan.device_only dev.Cluster.model
  in
  let admitted =
    Es_alloc.Admission.control ~weight:(fun d -> d.Cluster.rate) ~until:`Deadlines
      ~local_plan cluster ~assignment:assignment0 ~plans
  in
  let served_set = admitted.Es_alloc.Admission.served in
  let group_dsr (report : Es_sim.Metrics.report) ids =
    let hits = ref 0 and total = ref 0 in
    List.iter
      (fun i ->
        let d = report.Es_sim.Metrics.per_device.(i) in
        hits := !hits + d.Es_sim.Metrics.deadline_hits;
        total := !total + d.Es_sim.Metrics.generated)
      ids;
    if !total = 0 then nan else float_of_int !hits /. float_of_int !total
  in
  let all_ids = List.init (Cluster.n_devices cluster) Fun.id in
  let rejected_set = List.filter (fun i -> not (List.mem i served_set)) all_ids in
  let rows =
    List.map
      (fun (label, decisions, served) ->
        let report = simulate cluster decisions in
        [
          label;
          served;
          fmt_pct report.Es_sim.Metrics.dsr;
          fmt_pct (group_dsr report served_set);
          fmt_pct (group_dsr report rejected_set);
          fmt_ms report.Es_sim.Metrics.p50_s;
        ])
      [
        ( "no admission",
          naive,
          Printf.sprintf "%d/%d" (Cluster.n_devices cluster) (Cluster.n_devices cluster) );
        ( "admission",
          admitted.Es_alloc.Admission.decisions,
          Printf.sprintf "%d/%d" (List.length served_set) (Cluster.n_devices cluster) );
      ]
  in
  print_table
    ~align:[ Es_util.Table.Left ]
    ~header:
      [ "policy"; "offloading"; "DSR(%)"; "admitted-DSR(%)"; "rest-DSR(%)"; "p50(ms)" ]
    rows

(* ------------------------------------------------------------------ *)
(* F14 — device energy                                                 *)
(* ------------------------------------------------------------------ *)

let f14 () =
  heading "F14" "Device-side energy: fleet draw and per-request joules, default scenario";
  let cluster = Scenario.build Scenario.default in
  let rows =
    List.map
      (fun (p : Es_baselines.Baselines.t) ->
        let decisions = p.Es_baselines.Baselines.solve cluster in
        let per_req =
          Array.map (fun d -> Energy.per_request cluster d) decisions
        in
        let srv_w =
          Array.fold_left
            (fun acc (d : Decision.t) ->
              acc
              +. cluster.Cluster.devices.(d.Decision.device).Cluster.rate
                 *. Energy.server_joules cluster d)
            0.0 decisions
        in
        [
          p.Es_baselines.Baselines.name;
          fmt_f ~digits:2 (Energy.fleet_joules_per_s cluster decisions);
          fmt_f ~digits:3 (Es_util.Stats.mean_of per_req);
          fmt_f ~digits:3 (Es_util.Stats.percentile per_req 95.0);
          fmt_f ~digits:1 srv_w;
        ])
      (core_policies ())
  in
  print_table
    ~align:[ Es_util.Table.Left ]
    ~header:[ "policy"; "fleet(W)"; "J/req mean"; "J/req p95"; "server(W)" ]
    rows

(* ------------------------------------------------------------------ *)
(* F15 — multi-exit deployment in the loop                             *)
(* ------------------------------------------------------------------ *)

let f15 () =
  heading "F15" "Input-dependent early exits: fixed-depth plans vs multi-exit deployment";
  note "Same EdgeSurgeon decisions; multi-exit arm draws per-request depth";
  note "from the exit distribution (easy inputs leave early).";
  let cluster = Scenario.build Scenario.default in
  let out = Es_joint.Optimizer.solve cluster in
  let decisions = out.Es_joint.Optimizer.decisions in
  (* Per device: a multi-exit deployment of its plan's backbone at the
     plan's width, and the induced per-request work distribution. *)
  let deployments =
    Array.map
      (fun (d : Decision.t) ->
        let plan = d.Decision.plan in
        let me =
          (* kappa = 4: conservative confidence thresholds, trading less of
             the accuracy for most of the compute saving. *)
          Es_surgery.Multi_exit.build ~kappa:4.0 ~width:plan.Es_surgery.Plan.width
            cluster.Cluster.devices.(d.Decision.device).Cluster.model
        in
        let full = Es_dnn.Graph.total_flops plan.Es_surgery.Plan.graph in
        let ratios =
          Array.map
            (fun (e : Es_surgery.Plan.t) ->
              Float.min 1.0 (Es_dnn.Graph.total_flops e.Es_surgery.Plan.graph /. full))
            me.Es_surgery.Multi_exit.exits
        in
        (me, ratios))
      decisions
  in
  let work_scale ~device rng =
    let me, ratios = deployments.(device) in
    ratios.(Es_surgery.Multi_exit.sample_exit rng me)
  in
  let fixed = simulate cluster decisions in
  let multi = Es_sim.Runner.run ~options:(sim_options ()) ~work_scale cluster decisions in
  let fixed_acc = mean_accuracy decisions in
  let multi_acc =
    let total = ref 0.0 in
    Array.iter
      (fun (me, _) -> total := !total +. me.Es_surgery.Multi_exit.deployment_accuracy)
      deployments;
    !total /. float_of_int (Array.length deployments)
  in
  print_table
    ~align:[ Es_util.Table.Left ]
    ~header:[ "deployment"; "DSR(%)"; "mean(ms)"; "p95(ms)"; "mean-acc" ]
    [
      [
        "fixed-depth";
        fmt_pct fixed.Es_sim.Metrics.dsr;
        fmt_ms fixed.Es_sim.Metrics.mean_latency_s;
        fmt_ms fixed.Es_sim.Metrics.p95_s;
        fmt_f ~digits:3 fixed_acc;
      ];
      [
        "multi-exit";
        fmt_pct multi.Es_sim.Metrics.dsr;
        fmt_ms multi.Es_sim.Metrics.mean_latency_s;
        fmt_ms multi.Es_sim.Metrics.p95_s;
        fmt_f ~digits:3 multi_acc;
      ];
    ]

(* ------------------------------------------------------------------ *)
(* T3 — optimizer runtime scalability                                  *)
(* ------------------------------------------------------------------ *)

let t3 () =
  heading "T3" "Optimizer runtime vs cluster size";
  let rows =
    parallel_cells
      (List.map
         (fun n () ->
           let cluster = Scenario.build (Scenario.with_n_devices n Scenario.default) in
           let out = Es_joint.Optimizer.solve cluster in
           [
             string_of_int n;
             fmt_f ~digits:3 out.Es_joint.Optimizer.solve_time_s;
             string_of_int out.Es_joint.Optimizer.iterations;
             fmt_f ~digits:4 out.Es_joint.Optimizer.objective;
             string_of_int (Es_joint.Objective.misses cluster out.Es_joint.Optimizer.decisions);
           ])
         [ 10; 25; 50; 100; 200 ])
  in
  print_table ~header:[ "devices"; "solve(s)"; "iters"; "objective"; "misses" ] rows

(* ------------------------------------------------------------------ *)
(* F16 — server-side batching                                          *)
(* ------------------------------------------------------------------ *)

let f16 () =
  heading "F16" "GPU batching at the server: dedicated shares vs batched accelerator";
  note "ServerOnly traffic (full offload); batching amortizes kernel launches";
  note "(alpha = 0.7) at the cost of a collection window.";
  let modes =
    [
      ("shares (no batch)", None);
      ("batch<=4, 2ms", Some { Es_sim.Runner.max_batch = 4; window_s = 0.002; alpha = 0.7 });
      ("batch<=16, 5ms", Some { Es_sim.Runner.max_batch = 16; window_s = 0.005; alpha = 0.7 });
    ]
  in
  List.iter
    (fun (load_label, n) ->
      note "%s (%d devices, 1 Gbps APs so compute is the bottleneck):" load_label n;
      let cluster =
        Scenario.build
          (Scenario.with_ap_mbps 1000.0 (Scenario.with_n_devices n Scenario.default))
      in
      let ds = Es_baselines.Baselines.server_only.Es_baselines.Baselines.solve cluster in
      let rows =
        List.map
          (fun (label, batching) ->
            let options = { (sim_options ()) with Es_sim.Runner.batching } in
            let r = Es_sim.Runner.run ~options cluster ds in
            [
              label;
              fmt_pct r.Es_sim.Metrics.dsr;
              fmt_ms r.Es_sim.Metrics.mean_latency_s;
              fmt_ms r.Es_sim.Metrics.p99_s;
              fmt_f ~digits:2
                (Array.fold_left Float.max 0.0 r.Es_sim.Metrics.server_utilization);
            ])
          modes
      in
      print_table
        ~align:[ Es_util.Table.Left ]
        ~header:[ "server mode"; "DSR(%)"; "mean(ms)"; "p99(ms)"; "peak-util" ]
        rows)
    [ ("moderate load", 20); ("heavy load", 60) ]

(* ------------------------------------------------------------------ *)
(* T4 — prefix cuts vs optimal min-cut DAG partitioning                *)
(* ------------------------------------------------------------------ *)

(* The pathological topology where prefix cuts genuinely lose: a heavy
   branch off a small stem, in topological order before a light branch that
   consumes the big raw input (see test_surgery.ml). *)
let forked_graph () =
  let open Es_dnn in
  let b, x = Graph.Builder.create ~name:"forked(synthetic)" ~input:(Shape.map ~c:8 ~h:64 ~w:64) in
  let stem =
    Graph.Builder.add b (Layer.Conv { out_c = 8; kernel = 8; stride = 8; pad = 0; groups = 1 }) [ x ]
  in
  let b1 =
    Graph.Builder.add b (Layer.Conv { out_c = 1024; kernel = 3; stride = 1; pad = 1; groups = 1 })
      [ stem ]
  in
  let b2 =
    Graph.Builder.add b (Layer.Conv { out_c = 8; kernel = 3; stride = 1; pad = 1; groups = 1 }) [ b1 ]
  in
  let a1 =
    Graph.Builder.add b (Layer.Conv { out_c = 8; kernel = 3; stride = 1; pad = 1; groups = 1 }) [ x ]
  in
  let a2 = Graph.Builder.add b Layer.Relu [ a1 ] in
  let a3 =
    Graph.Builder.add b (Layer.Pool { kind = Layer.Max; kernel = 8; stride = 8; pad = 0 }) [ a2 ]
  in
  let cat = Graph.Builder.add b Layer.Concat [ a3; b2 ] in
  Graph.Builder.finish ~output:cat b

let t4 () =
  heading "T4" "Partitioning audit: are prefix cuts ever beaten by the optimal min-cut split?";
  note "Raspberry-Pi device, edge GPU server; worst prefix-vs-min-cut gap over";
  note "10/50/200 Mbps uplinks.  (Plan restricts cuts to topological prefixes;";
  note "this audit justifies that design for real architectures.)";
  let device = Processor.raspberry_pi.Processor.perf in
  let server = Processor.edge_gpu.Processor.perf in
  let graphs =
    List.map (fun n -> Es_dnn.Zoo.by_name n) Es_dnn.Zoo.names @ [ forked_graph () ]
  in
  let rows =
    List.map
      (fun g ->
        let worst_gain = ref 0.0 and worst_bw = ref 0.0 in
        List.iter
          (fun bw ->
            let dev, srv, xfer =
              Es_surgery.Dag_cut.latency_costs ~device ~server ~bandwidth_bps:(bw *. 1e6) g
            in
            let split =
              Es_surgery.Dag_cut.optimal_split ~dev_cost:dev ~srv_cost:srv ~transfer_cost:xfer g
            in
            let _, prefix =
              Es_surgery.Dag_cut.best_prefix_cost ~dev_cost:dev ~srv_cost:srv
                ~transfer_cost:xfer g
            in
            let gain = 100.0 *. (prefix -. split.Es_surgery.Dag_cut.total_cost) /. prefix in
            if gain > !worst_gain then begin
              worst_gain := gain;
              worst_bw := bw
            end)
          [ 10.0; 50.0; 200.0 ];
        [
          g.Es_dnn.Graph.name;
          fmt_f ~digits:3 !worst_gain;
          (if !worst_gain > 1e-6 then fmt_f ~digits:0 !worst_bw else "-");
        ])
      graphs
  in
  print_table
    ~align:[ Es_util.Table.Left ]
    ~header:[ "model"; "max min-cut gain (%)"; "at (Mbps)" ]
    rows

(* ------------------------------------------------------------------ *)
(* T5 — capacity planning                                              *)
(* ------------------------------------------------------------------ *)

let t5 () =
  heading "T5" "Capacity planning: provisioning required for a zero-miss deployment";
  note "Bisection over provisioning, full joint solve per probe (~2%% resolution).";
  let config =
    { Es_joint.Optimizer.default_config with max_iters = 6; local_search_passes = 1 }
  in
  let rows =
    List.map
      (fun n ->
        let spec = Scenario.with_n_devices n Scenario.default in
        let bw = Es_joint.Planner.required_bandwidth_mbps ~config spec in
        let load = Es_joint.Planner.max_supported_load ~config spec in
        [
          string_of_int n;
          (if bw.Es_joint.Planner.feasible then fmt_f ~digits:0 bw.Es_joint.Planner.required
           else "> probe");
          string_of_int bw.Es_joint.Planner.solves;
          (if load.Es_joint.Planner.feasible then
             fmt_f ~digits:1 load.Es_joint.Planner.required
           else "> probe");
          string_of_int load.Es_joint.Planner.solves;
        ])
      [ 5; 10; 20; 40 ]
  in
  print_table
    ~header:[ "devices"; "req AP (Mbps)"; "solves"; "max load (x)"; "solves" ]
    rows

(* ------------------------------------------------------------------ *)
(* F17 — recovery timeline after a server crash                        *)
(* ------------------------------------------------------------------ *)

let f17 () =
  heading "F17" "Recovery timeline: busiest server crashes at t=20s, 5s bins";
  let duration = 40.0 in
  let crash_t = duration /. 2.0 in
  let cluster = Scenario.build Scenario.default in
  let out = Es_joint.Optimizer.solve cluster in
  let decisions = out.Es_joint.Optimizer.decisions in
  (* Crash the server carrying the most offloaded devices — the worst
     single-server loss for this decision set. *)
  let counts = Array.make (Cluster.n_servers cluster) 0 in
  Array.iter
    (fun (d : Decision.t) ->
      if Decision.offloads d then counts.(d.Decision.server) <- counts.(d.Decision.server) + 1)
    decisions;
  let crash = ref 0 in
  Array.iteri (fun s c -> if c > counts.(!crash) then crash := s) counts;
  let crash = !crash in
  let faults = Es_sim.Faults.scripted (Es_sim.Faults.crash ~at:crash_t crash) in
  let options resilience =
    { Es_sim.Runner.default_options with duration_s = duration; warmup_s = 0.0; faults; resilience }
  in
  let static = Es_sim.Runner.run ~options:(options None) cluster decisions in
  let local =
    Es_sim.Runner.run
      ~options:(options (Some Es_sim.Runner.default_resilience))
      cluster decisions
  in
  let recover = Es_joint.Recover.precompute ~jobs:(Atomic.get jobs) cluster in
  let reconfigure = Es_joint.Recover.schedule_for_faults recover ~decisions faults in
  let resolve =
    Es_sim.Runner.run
      ~options:(options (Some Es_sim.Runner.default_resilience))
      ~reconfigure cluster decisions
  in
  log_report ~point:"static" ~policy:"EdgeSurgeon" static;
  log_report ~point:"local" ~policy:"EdgeSurgeon" local;
  log_report ~point:"resolve" ~policy:"EdgeSurgeon" resolve;
  (* Deadline-hit rate per 5s bin: generated-vs-hit over the request
     resolution timeline (event_hits covers drops and timeouts too). *)
  let nbins = int_of_float (duration /. 5.0) in
  let bin_rates (r : Es_sim.Metrics.report) =
    let hits = Array.make nbins 0 and total = Array.make nbins 0 in
    Array.iter
      (fun (t, hit) ->
        let b = int_of_float (t /. 5.0) in
        if b >= 0 && b < nbins then begin
          total.(b) <- total.(b) + 1;
          if hit then hits.(b) <- hits.(b) + 1
        end)
      r.Es_sim.Metrics.event_hits;
    Array.init nbins (fun b ->
        if total.(b) = 0 then None else Some (float_of_int hits.(b) /. float_of_int total.(b)))
  in
  let s_bins = bin_rates static and l_bins = bin_rates local and r_bins = bin_rates resolve in
  let rows =
    List.init nbins (fun i ->
        let label = Printf.sprintf "%d-%ds" (i * 5) ((i + 1) * 5) in
        let cell = function None -> "-" | Some r -> fmt_pct r in
        [ label; cell s_bins.(i); cell l_bins.(i); cell r_bins.(i) ])
  in
  note "crash: server %d at t=%.0fs (%d of %d devices offload to it); detection delay 1s"
    crash crash_t counts.(crash) (Cluster.n_devices cluster);
  print_table
    ~align:[ Es_util.Table.Left ]
    ~header:[ "window"; "no recovery"; "local fallback"; "re-solve" ]
    rows;
  (* Post-crash rate over the devices that actually depended on the crashed
     server — the overall DSR dilutes the damage with unaffected traffic. *)
  let affected i =
    let d = decisions.(i) in
    Decision.offloads d && d.Decision.server = crash
  in
  let affected_rate (r : Es_sim.Metrics.report) =
    let hits = ref 0 and gen = ref 0 in
    Array.iteri
      (fun i (d : Es_sim.Metrics.device_stats) ->
        if affected i then begin
          hits := !hits + d.Es_sim.Metrics.deadline_hits;
          gen := !gen + d.Es_sim.Metrics.generated
        end)
      r.Es_sim.Metrics.per_device;
    float_of_int !hits /. float_of_int (max 1 !gen)
  in
  let pc resilience reconfigure =
    let opts =
      {
        Es_sim.Runner.default_options with
        duration_s = duration;
        warmup_s = crash_t;
        faults;
        resilience;
      }
    in
    match reconfigure with
    | None -> Es_sim.Runner.run ~options:opts cluster decisions
    | Some rc -> Es_sim.Runner.run ~options:opts ~reconfigure:rc cluster decisions
  in
  let s_aff = affected_rate (pc None None) in
  let l_aff = affected_rate (pc (Some Es_sim.Runner.default_resilience) None) in
  let r_aff = affected_rate (pc (Some Es_sim.Runner.default_resilience) (Some reconfigure)) in
  note "overall DSR: none %s%%  local %s%%  re-solve %s%%" (fmt_pct static.Es_sim.Metrics.dsr)
    (fmt_pct local.Es_sim.Metrics.dsr) (fmt_pct resolve.Es_sim.Metrics.dsr);
  note "post-crash hit rate on affected devices: none %s%%  local %s%%  re-solve %s%%"
    (fmt_pct s_aff) (fmt_pct l_aff) (fmt_pct r_aff)

(* ------------------------------------------------------------------ *)
(* MICRO — bechamel microbenchmarks of the hot paths                   *)
(* ------------------------------------------------------------------ *)

let micro () =
  heading "MICRO" "Bechamel microbenchmarks (ns/run, OLS fit)";
  let open Bechamel in
  let cluster = Scenario.build Scenario.default in
  let model = Es_dnn.Zoo.resnet18 () in
  let plans =
    Array.map
      (fun (d : Cluster.device) ->
        Es_surgery.Plan.make ~cut:(Es_dnn.Graph.n_nodes d.Cluster.model / 2) d.Cluster.model)
      cluster.Cluster.devices
  in
  let assignment = Es_alloc.Assign.balanced_greedy cluster ~plans in
  let decisions =
    match Es_alloc.Policy.decisions Es_alloc.Policy.Equal cluster ~assignment ~plans with
    | Some ds -> ds
    | None -> assert false
  in
  let tests =
    [
      Test.make ~name:"candidate-generation" (Staged.stage (fun () ->
          Es_surgery.Candidate.clear_cache ();
          ignore (Es_surgery.Candidate.pareto_candidates model)));
      Test.make ~name:"minmax-allocation" (Staged.stage (fun () ->
          ignore
            (Es_alloc.Policy.decisions Es_alloc.Policy.Minmax_alloc cluster ~assignment ~plans)));
      Test.make ~name:"analytic-objective" (Staged.stage (fun () ->
          ignore (Es_joint.Objective.of_decisions cluster decisions)));
      Test.make ~name:"simulate-40s" (Staged.stage (fun () ->
          ignore (simulate cluster decisions)));
      Test.make ~name:"jmsra-solve" (Staged.stage (fun () ->
          ignore (Es_joint.Optimizer.solve cluster)));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~stabilize:false () in
  let rows =
    List.map
      (fun test ->
        let results = Benchmark.all cfg [ instance ] test in
        (* Bechamel hands results back in a hash table; sort by operation
           name so the printed table order is stable.  es_lint: sorted *)
        Hashtbl.fold
          (fun name raw acc ->
            let est = Analyze.one ols instance raw in
            let nanos =
              match Analyze.OLS.estimates est with
              | Some [ v ] -> v
              | _ -> nan
            in
            [ name; fmt_f ~digits:0 nanos; fmt_f ~digits:3 (nanos /. 1e6) ] :: acc)
          results []
        |> List.sort (fun r1 r2 ->
               String.compare
                 (match r1 with n :: _ -> n | [] -> "")
                 (match r2 with n :: _ -> n | [] -> "")))
      tests
    |> List.concat
  in
  print_table ~align:[ Es_util.Table.Left ] ~header:[ "operation"; "ns/run"; "ms/run" ] rows

(* ------------------------------------------------------------------ *)

let all : (string * string * (unit -> unit)) list =
  [
    ("T1", "model zoo inventory", t1);
    ("T2", "optimality gap vs exhaustive", t2);
    ("F1", "latency CDF", f1);
    ("F2", "scalability in devices", f2);
    ("F3", "DSR vs arrival rate", f3);
    ("F4", "latency vs bandwidth", f4);
    ("F5", "accuracy-latency trade-off", f5);
    ("F6", "server heterogeneity", f6);
    ("F7", "optimizer convergence", f7);
    ("F8", "ablation", f8);
    ("F9", "per-model gains", f9);
    ("F10", "online load burst", f10);
    ("F11", "quantization ablation", f11);
    ("F12", "search-strategy ablation", f12);
    ("F13", "admission control under overload", f13);
    ("F14", "device energy", f14);
    ("F15", "multi-exit deployment", f15);
    ("F16", "server-side batching", f16);
    ("F17", "recovery after server crash", f17);
    ("T3", "optimizer runtime", t3);
    ("T4", "prefix vs min-cut partitioning", t4);
    ("T5", "capacity planning", t5);
    ("MICRO", "bechamel microbenchmarks", micro);
  ]
