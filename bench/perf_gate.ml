(* CI perf-regression gate.

   Compares a fresh bench run (bench_smoke.json, produced by timing.exe on
   the CI box) against the committed baseline (BENCH_solver.json, produced
   on a dev box).  Absolute times are incomparable across machines, so the
   gate checks machine-relative quantities only, with a generous 2x band —
   it exists to catch real regressions (a warm-start that stopped helping,
   a skyline that fell back to quadratic), not scheduler noise:

     - pareto_micro skyline speedup must stay within 2x of baseline;
     - warm_online re-solve speedup must stay within 2x of baseline, and
       its equal-or-better invariant must hold;
     - every solver_scaling record must report identical objectives at
       jobs=1 and jobs=N (determinism, not performance);
     - every sharded_scaling record (baseline and current) must be
       bit-identical across jobs and feasible, and wherever a file holds
       both a >=1000-device sharded tier and a 100-device monolithic
       measurement, the sharded solve must be no slower — the headline
       scaling claim, checked same-machine within one file.  The
       monolithic reference is the sharded_vs_mono record's t_mono_s when
       present (100 devices on a comparably provisioned 4-server cluster,
       like the sharded tiers at ~40 devices/server) and the 2-server
       solver_scaling tier otherwise;
     - each sharded_vs_mono record is gated against the baseline record
       with the same device count: machine-relative speedup within the
       2x band, and the decomposition's objective give-up bounded
       (quality_ratio <= 1.25, the bound the test suite enforces);
     - each alloc_per_solve record (when the current run carries any) is
       gated absolutely: allocation counts are machine-independent, so
       minor-heap words per solve must stay within 5% + 1024 words of the
       committed baseline, and the flat kernels must agree with their
       retained reference oracles on the solve's landing point.

   Usage: perf_gate.exe --baseline BENCH_solver.json --current bench_smoke.json
   Exit 0 on pass, 1 on regression, 2 on usage/parse errors. *)

module J = Es_obs.Json

let fail_usage () =
  prerr_endline "usage: perf_gate.exe --baseline PATH --current PATH";
  exit 2

let read_records path =
  let ic =
    try open_in path
    with Sys_error e ->
      Printf.eprintf "perf-gate: cannot open %s: %s\n" path e;
      exit 2
  in
  let records = ref [] in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then
         match J.of_string line with
         | Ok j -> records := j :: !records
         | Error e ->
             Printf.eprintf "perf-gate: %s: bad JSONL line: %s\n" path e;
             exit 2
     done
   with End_of_file -> close_in ic);
  List.rev !records

let kind_of j = Option.bind (J.member "kind" j) J.to_string_opt

let find_kind kind records =
  List.find_opt (fun j -> kind_of j = Some kind) records

let float_field name j = Option.bind (J.member name j) J.to_float_opt

let bool_field name j =
  match J.member name j with Some (J.Bool b) -> Some b | _ -> None

(* Failures carry their detail string so the summary can repeat the
   absolute baseline and current values — a CI log skimmed bottom-up then
   shows the numbers, not just the check names. *)
let failures : (string * string) list ref = ref []

let check name ok detail =
  if ok then Printf.printf "perf-gate: PASS %-28s %s\n" name detail
  else begin
    Printf.printf "perf-gate: FAIL %-28s %s\n" name detail;
    failures := (name, detail) :: !failures
  end

(* A current speedup is acceptable when it retains at least half the
   baseline's; speedups below 1x in the baseline gate at half of 1x. *)
let speedup_floor baseline = Float.max baseline 1.0 /. 2.0

let gate_speedup name ~baseline ~current =
  match (baseline, current) with
  | None, _ ->
      check name false "baseline record/field missing"
  | _, None ->
      check name false "current record/field missing"
  | Some b, Some c ->
      let floor = speedup_floor b in
      check name (c >= floor)
        (Printf.sprintf "current %.2fx vs baseline %.2fx (floor %.2fx)" c b floor)

let () =
  let baseline_path = ref "" and current_path = ref "" in
  let rec parse = function
    | "--baseline" :: p :: rest ->
        baseline_path := p;
        parse rest
    | "--current" :: p :: rest ->
        current_path := p;
        parse rest
    | [] -> ()
    | _ -> fail_usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !baseline_path = "" || !current_path = "" then fail_usage ();
  let baseline = read_records !baseline_path in
  let current = read_records !current_path in

  (* pareto_micro: the sort-based skyline must stay clearly ahead of the
     quadratic reference. *)
  gate_speedup "pareto_micro.speedup"
    ~baseline:(Option.bind (find_kind "pareto_micro" baseline) (float_field "speedup"))
    ~current:(Option.bind (find_kind "pareto_micro" current) (float_field "speedup"));

  (* warm_online: warm+cached epoch re-solves vs cold. *)
  let warm_base = find_kind "warm_online" baseline in
  let warm_cur = find_kind "warm_online" current in
  gate_speedup "warm_online.speedup"
    ~baseline:(Option.bind warm_base (float_field "speedup"))
    ~current:(Option.bind warm_cur (float_field "speedup"));
  (match Option.bind warm_cur (bool_field "equal_or_better") with
  | Some b -> check "warm_online.equal_or_better" b (Printf.sprintf "%b" b)
  | None -> check "warm_online.equal_or_better" false "current record/field missing");
  (match Option.bind warm_cur (fun j -> Option.bind (J.member "cache_hits" j) J.to_int_opt) with
  | Some h -> check "warm_online.cache_hits" (h > 0) (Printf.sprintf "%d hits" h)
  | None -> check "warm_online.cache_hits" false "current record/field missing");

  (* solver_scaling: jobs=1 and jobs=N must agree bit-for-bit on every
     cluster size measured in the current run. *)
  let scaling = List.filter (fun j -> kind_of j = Some "solver_scaling") current in
  check "solver_scaling.identical"
    (scaling <> [] && List.for_all (fun j -> bool_field "identical" j = Some true) scaling)
    (Printf.sprintf "%d records" (List.length scaling));

  (* sharded_scaling: determinism + feasibility wherever measured, and the
     headline same-machine claim — a >=1000-device sharded solve no slower
     than the 100-device monolithic one — in any file holding both. *)
  let int_field name j = Option.bind (J.member name j) J.to_int_opt in
  let sharded_of records =
    List.filter (fun j -> kind_of j = Some "sharded_scaling") records
  in
  List.iter
    (fun (label, records) ->
      let sharded = sharded_of records in
      if sharded <> [] then begin
        check
          (Printf.sprintf "sharded_scaling.%s.identical" label)
          (List.for_all (fun j -> bool_field "identical" j = Some true) sharded)
          (Printf.sprintf "%d records" (List.length sharded));
        check
          (Printf.sprintf "sharded_scaling.%s.feasible" label)
          (List.for_all (fun j -> bool_field "feasible" j = Some true) sharded)
          (Printf.sprintf "%d records" (List.length sharded))
      end;
      let big_sharded =
        List.filter (fun j -> match int_field "devices" j with Some d -> d >= 1000 | None -> false) sharded
      in
      let record_with kind field =
        Option.bind
          (List.find_opt
             (fun j -> kind_of j = Some kind && int_field "devices" j = Some 100)
             records)
          (float_field field)
      in
      let mono100_t =
        match record_with "sharded_vs_mono" "t_mono_s" with
        | Some t -> Some t
        | None -> record_with "solver_scaling" "t_jobs1_s"
      in
      match (big_sharded, mono100_t) with
      | [], _ | _, None -> ()
      | big, Some tm ->
          List.iter
            (fun j ->
              match (float_field "t_jobs1_s" j, int_field "devices" j) with
              | Some ts, Some d ->
                  check
                    (Printf.sprintf "sharded_scaling.%s.%d_vs_mono100" label d)
                    (ts <= tm)
                    (Printf.sprintf "sharded@%d %.3fs vs mono@100 %.3fs" d ts tm)
              | _ ->
                  check
                    (Printf.sprintf "sharded_scaling.%s.vs_mono100" label)
                    false "missing t_jobs1_s field")
            big)
    [ ("baseline", baseline); ("current", current) ];

  (* sharded_vs_mono: machine-relative head-to-head speedup, paired by
     device count, plus the bounded objective give-up. *)
  List.iter
    (fun j ->
      match int_field "devices" j with
      | None -> check "sharded_vs_mono.devices" false "current record missing devices"
      | Some d ->
          let name suffix = Printf.sprintf "sharded_vs_mono.%d.%s" d suffix in
          let base =
            List.find_opt
              (fun b ->
                kind_of b = Some "sharded_vs_mono" && int_field "devices" b = Some d)
              baseline
          in
          (match base with
          | None -> ()
          | Some b ->
              gate_speedup (name "speedup")
                ~baseline:(float_field "speedup" b)
                ~current:(float_field "speedup" j));
          (match float_field "quality_ratio" j with
          | Some q ->
              check (name "quality") (q <= 1.25) (Printf.sprintf "quality_ratio %.3f" q)
          | None -> check (name "quality") false "missing quality_ratio");
          check (name "feasible")
            (bool_field "feasible" j = Some true)
            "sharded decisions validate")
    (List.filter (fun j -> kind_of j = Some "sharded_vs_mono") current);

  (* million_request: the serving-engine arm.  The calendar-vs-heap
     events/s ratio is machine-relative; it also shrinks with [n] (the heap
     pays log n), so a CI smoke at a smaller n than the committed baseline
     leans on the 2x band — the gate still catches the failure it exists
     for, the calendar collapsing to heap speed.  The correctness bits must
     simply hold: both backends process the same event count, produce
     byte-equal end-to-end reports, and every generated request is
     accounted for. *)
  (match find_kind "million_request" current with
  | None -> ()
  | Some cur ->
      gate_speedup "million_request.engine_speedup"
        ~baseline:
          (Option.bind (find_kind "million_request" baseline)
             (float_field "engine_speedup"))
        ~current:(float_field "engine_speedup" cur);
      List.iter
        (fun field ->
          check
            (Printf.sprintf "million_request.%s" field)
            (bool_field field cur = Some true)
            (match bool_field field cur with
            | Some b -> Printf.sprintf "%b" b
            | None -> "current record/field missing"))
        [ "identical"; "reports_match"; "conservation" ];
      (match float_field "calendar_events_per_s" cur with
      | Some eps -> check "million_request.events_per_s" (eps > 0.0) (Printf.sprintf "%.0f ev/s" eps)
      | None -> check "million_request.events_per_s" false "current record/field missing"));

  (* overload: the protection arm's checks are absolute (within-record, on
     the current machine), so no baseline pairing is needed — protection
     must lift admitted DSR >= 2x over the unprotected run without losing
     useful completions, the armed-but-lax run must be byte-identical to
     the unprotected one, and its wall-time overhead must sit inside the
     2x noise band. *)
  (match find_kind "overload" current with
  | None -> ()
  | Some cur ->
      (match float_field "protection_dsr_ratio" cur with
      | Some r ->
          check "overload.protection_dsr_ratio" (r >= 2.0)
            (Printf.sprintf "admitted-DSR ratio %.2fx (floor 2.0x)" r)
      | None -> check "overload.protection_dsr_ratio" false "current record/field missing");
      (match float_field "overhead_ratio" cur with
      | Some r ->
          check "overload.overhead_ratio" (r <= 2.0)
            (Printf.sprintf "armed-but-lax overhead %.2fx (ceiling 2.0x)" r)
      | None -> check "overload.overhead_ratio" false "current record/field missing");
      List.iter
        (fun field ->
          check
            (Printf.sprintf "overload.%s" field)
            (bool_field field cur = Some true)
            (match bool_field field cur with
            | Some b -> Printf.sprintf "%b" b
            | None -> "current record/field missing"))
        [ "no_fewer_hits"; "off_identical"; "conservation" ]);

  (* alloc_per_solve: allocated minor-heap words per steady-state solve.
     Allocation counts are machine-independent (same binary, same compiler
     -> same words), so unlike the wall-clock checks above this one is
     absolute: a small tolerance for harness jitter (5% + 1024 words), no
     2x band.  The section is skipped when the current run carries no
     alloc records (plain smoke runs), but once it does, every record must
     pair with a committed baseline and its flat kernels must agree with
     the retained reference oracles. *)
  let alloc_of records = List.filter (fun j -> kind_of j = Some "alloc_per_solve") records in
  let string_field name j = Option.bind (J.member name j) J.to_string_opt in
  List.iter
    (fun cur ->
      let scenario = Option.value ~default:"?" (string_field "scenario" cur) in
      let name suffix = Printf.sprintf "alloc.%s.%s" scenario suffix in
      (match bool_field "oracle_ok" cur with
      | Some b -> check (name "oracle") b "flat kernels vs reference oracles on the landing point"
      | None -> check (name "oracle") false "current record missing oracle_ok");
      let base =
        List.find_opt
          (fun b ->
            kind_of b = Some "alloc_per_solve"
            && string_field "scenario" b = Some scenario
            && int_field "devices" b = int_field "devices" cur)
          (alloc_of baseline)
      in
      match base with
      | None -> check (name "minor_words") false "no baseline alloc record for this scenario"
      | Some b -> (
          match
            (float_field "minor_words_per_solve" b, float_field "minor_words_per_solve" cur)
          with
          | Some bw, Some cw ->
              let ceiling = (bw *. 1.05) +. 1024.0 in
              check (name "minor_words") (cw <= ceiling)
                (Printf.sprintf "current %.0f vs baseline %.0f words/solve (ceiling %.0f)" cw
                   bw ceiling)
          | _ -> check (name "minor_words") false "missing minor_words_per_solve field"))
    (alloc_of current);

  (* Name the failed checks in the summary and flush before exiting, so a
     CI log that truncates at the non-zero exit still shows what failed. *)
  match List.rev !failures with
  | [] ->
      print_endline "perf-gate: all checks passed";
      flush stdout
  | failed ->
      Printf.printf "perf-gate: %d check(s) failed:\n" (List.length failed);
      List.iter (fun (name, detail) -> Printf.printf "  FAIL %s — %s\n" name detail) failed;
      flush stdout;
      exit 1
