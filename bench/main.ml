(* EdgeSurgeon benchmark harness.

   Usage:
     dune exec bench/main.exe                      # run every experiment
     dune exec bench/main.exe -- F1 T2             # run a subset
     dune exec bench/main.exe -- --list            # list experiment ids
     dune exec bench/main.exe -- --jsonl out.jsonl # also log every policy
                                                   # run as JSONL records
     dune exec bench/main.exe -- --jobs 4          # parallelize sweep cells
                                                   # (0 = auto-size) *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  (* Peel off --jsonl PATH and --jobs N; the remaining args are experiment
     ids. *)
  let rec extract acc = function
    | "--jsonl" :: path :: rest ->
        Common.jsonl_out := Some (open_out path);
        extract acc rest
    | "--jsonl" :: [] ->
        prerr_endline "--jsonl expects a file path";
        exit 2
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 0 ->
            Atomic.set Common.jobs (if j = 0 then Es_util.Par.default_jobs () else j);
            extract acc rest
        | Some _ | None ->
            prerr_endline "--jobs expects a non-negative integer";
            exit 2)
    | "--jobs" :: [] ->
        prerr_endline "--jobs expects a domain count";
        exit 2
    | a :: rest -> extract (a :: acc) rest
    | [] -> List.rev acc
  in
  let args = extract [] args in
  at_exit (fun () -> Option.iter close_out !Common.jsonl_out);
  let ids = List.map (fun (id, _, _) -> id) Experiments.all in
  match args with
  | [ "--list" ] ->
      List.iter (fun (id, descr, _) -> Printf.printf "%-6s %s\n" id descr) Experiments.all
  | [] ->
      Printf.printf "EdgeSurgeon experiment harness: running all %d experiments\n"
        (List.length Experiments.all);
      List.iter (fun (_, _, run) -> run ()) Experiments.all
  | requested ->
      List.iter
        (fun want ->
          match
            List.find_opt
              (fun (id, _, _) -> String.lowercase_ascii id = String.lowercase_ascii want)
              Experiments.all
          with
          | Some (_, _, run) -> run ()
          | None ->
              Printf.eprintf "unknown experiment %S; known: %s\n" want (String.concat ", " ids);
              exit 2)
        requested
