(* EdgeSurgeon benchmark harness.

   Usage:
     dune exec bench/main.exe                      # run every experiment
     dune exec bench/main.exe -- F1 T2             # run a subset
     dune exec bench/main.exe -- --list            # list experiment ids
     dune exec bench/main.exe -- --jsonl out.jsonl # also log every policy
                                                   # run as JSONL records *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  (* Peel off --jsonl PATH; the remaining args are experiment ids. *)
  let rec extract_jsonl acc = function
    | "--jsonl" :: path :: rest ->
        Common.jsonl_out := Some (open_out path);
        List.rev_append acc rest
    | "--jsonl" :: [] ->
        prerr_endline "--jsonl expects a file path";
        exit 2
    | a :: rest -> extract_jsonl (a :: acc) rest
    | [] -> List.rev acc
  in
  let args = extract_jsonl [] args in
  at_exit (fun () -> Option.iter close_out !Common.jsonl_out);
  let ids = List.map (fun (id, _, _) -> id) Experiments.all in
  match args with
  | [ "--list" ] ->
      List.iter (fun (id, descr, _) -> Printf.printf "%-6s %s\n" id descr) Experiments.all
  | [] ->
      Printf.printf "EdgeSurgeon experiment harness: running all %d experiments\n"
        (List.length Experiments.all);
      List.iter (fun (_, _, run) -> run ()) Experiments.all
  | requested ->
      List.iter
        (fun want ->
          match
            List.find_opt
              (fun (id, _, _) -> String.lowercase_ascii id = String.lowercase_ascii want)
              Experiments.all
          with
          | Some (_, _, run) -> run ()
          | None ->
              Printf.eprintf "unknown experiment %S; known: %s\n" want (String.concat ", " ids);
              exit 2)
        requested
