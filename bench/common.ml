(* Shared plumbing for the experiment harness: policy lists, simulation
   defaults, and table formatting. *)

open Es_edge

let fmt_ms = Es_util.Table.fmt_ms
let fmt_pct = Es_util.Table.fmt_pct
let fmt_f = Es_util.Table.fmt_f

(* Machine-readable result stream: when main.ml routes --jsonl here, every
   policy run is also logged as one JSONL line through the es_obs exporters
   (same format the CLI's --metrics-out uses), replacing ad-hoc scraping of
   the printed tables.  Both cells are (re)assigned only from the main domain
   (startup / heading, before any fan-out); the concurrent readers in
   log_report run under log_lock, which is the guard the attribute names. *)
let jsonl_out : out_channel option ref = ref None [@@es_lint.guarded "log_lock"]
let current_experiment = ref "" [@@es_lint.guarded "log_lock"]

(* Harness-level parallelism (bench/main.exe --jobs N): sweep experiments fan
   their independent (sweep-point × policy) cells out over this many domains.
   1 = sequential (the default).  Atomic because timing.ml flips it around
   fan-outs while measuring the harness at different widths. *)
let jobs = Atomic.make 1

(* JSONL writes are serialized: under --jobs concurrent policy runs would
   otherwise interleave partial lines.  Each record carries the sweep-point
   id ([point], "" for single-point experiments) so rows are self-describing
   regardless of completion order. *)
let log_lock = Mutex.create ()

let log_report ?(point = "") ~policy (report : Es_sim.Metrics.report) =
  match !jsonl_out with
  | None -> ()
  | Some oc ->
      let record =
        Es_obs.Json.Obj
          [
            ("kind", Es_obs.Json.String "bench_run");
            ("experiment", Es_obs.Json.String !current_experiment);
            ("point", Es_obs.Json.String point);
            ("policy", Es_obs.Json.String policy);
            ("report", Es_sim.Metrics.report_to_json report);
          ]
      in
      Mutex.lock log_lock;
      Es_obs.Export.write_jsonl_line oc record;
      Mutex.unlock log_lock

let heading id title =
  current_experiment := id;
  Printf.printf "\n================================================================\n";
  Printf.printf "%s  %s\n" id title;
  Printf.printf "================================================================\n"

let note fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n" s) fmt

(* The policy roster used across figure experiments, EdgeSurgeon last. *)
let policies () = Es_baselines.Baselines.all ()

let policy_names () =
  List.map (fun (p : Es_baselines.Baselines.t) -> p.Es_baselines.Baselines.name) (policies ())

let core_policies () =
  let open Es_baselines.Baselines in
  [ device_only; server_only; neurosurgeon; surgery_only; alloc_only; edgesurgeon ]

let sim_options ?(duration = 40.0) ?(seed = 7) () =
  { Es_sim.Runner.default_options with duration_s = duration; warmup_s = 5.0; seed }

let simulate ?duration ?seed cluster decisions =
  Es_sim.Runner.run ~options:(sim_options ?duration ?seed ()) cluster decisions

(* Run one policy end to end on a cluster: solve, then simulate. *)
let run_policy ?duration ?seed ?point cluster (p : Es_baselines.Baselines.t) =
  let decisions = p.Es_baselines.Baselines.solve cluster in
  let report = simulate ?duration ?seed cluster decisions in
  log_report ?point ~policy:p.Es_baselines.Baselines.name report;
  (decisions, report)

(* Fan a sweep's independent cells out over [jobs] domains.  Each cell is a
   closure that prints nothing (tables are rendered after collection), so
   stdout stays ordered; results come back in input order. *)
let parallel_cells cells = Es_util.Par.parallel_map ~jobs:(Atomic.get jobs) (fun f -> f ()) cells

let mean_accuracy (decisions : Decision.t array) =
  if Array.length decisions = 0 then nan
  else
    Array.fold_left
      (fun acc (d : Decision.t) -> acc +. d.Decision.plan.Es_surgery.Plan.accuracy)
      0.0 decisions
    /. float_of_int (Array.length decisions)

let print_table ?align ~header rows = Es_util.Table.print ?align ~header rows
