(* Solver-scaling and hot-path timing harness — the `make bench-timing`
   target.  Three measurements, each emitted as one JSONL record (the es_obs
   codec, same framing as --jsonl / --metrics-out) to the output file:

     pareto_micro     sort-based skyline vs the O(n^2) reference frontier on
                      real candidate plan sets, single core
     solver_scaling   Optimizer.solve wall time at jobs=1 vs jobs=N per
                      cluster size, checking the objectives are identical
     bench_suite      (--suite) the parallelized sweep experiments end to
                      end at harness jobs=1 vs jobs=N, stdout silenced

   Usage:
     dune exec bench/timing.exe -- [--sizes 10,25,50,100] [--jobs 4]
       [--repeats 3] [--out BENCH_solver.json] [--suite] *)

module J = Es_obs.Json

let wall = Es_obs.Obs.wall_clock

(* Best-of-N wall time: robust to scheduler noise without bechamel's
   minimum-runtime requirements. *)
let time_best ~repeats f =
  let best = ref infinity in
  for _ = 1 to max 1 repeats do
    let t0 = wall () in
    ignore (Sys.opaque_identity (f ()));
    let dt = wall () -. t0 in
    if dt < !best then best := dt
  done;
  !best

(* ------------------------------------------------------------------ *)
(* pareto_micro — candidate-generation kernel                          *)
(* ------------------------------------------------------------------ *)

(* The same key Candidate.pareto ranks plans under. *)
let plan_key (p : Es_surgery.Plan.t) =
  let scale = Es_surgery.Precision.compute_scale p.Es_surgery.Plan.precision in
  [|
    Es_surgery.Plan.dev_flops p /. scale;
    Es_surgery.Plan.transfer_bytes p;
    Es_surgery.Plan.srv_flops p /. scale;
    -.p.Es_surgery.Plan.accuracy;
  |]

let pareto_micro ~repeats =
  let models =
    [
      ("vgg16", Es_dnn.Zoo.vgg16 ());
      ("resnet50", Es_dnn.Zoo.resnet50 ());
      ("mobilenet_v2", Es_dnn.Zoo.mobilenet_v2 ());
      ("yolo_tiny", Es_dnn.Zoo.yolo_tiny ());
    ]
  in
  let plan_sets = List.map (fun (_, g) -> Es_surgery.Candidate.generate g) models in
  let n_plans = List.fold_left (fun acc ps -> acc + List.length ps) 0 plan_sets in
  let frontier_all impl = List.iter (fun ps -> ignore (impl plan_key ps)) plan_sets in
  List.iter
    (fun ps ->
      assert (
        Es_util.Pareto.frontier plan_key ps = Es_util.Pareto.frontier_naive plan_key ps))
    plan_sets;
  let skyline_s = time_best ~repeats (fun () -> frontier_all Es_util.Pareto.frontier) in
  let naive_s = time_best ~repeats (fun () -> frontier_all Es_util.Pareto.frontier_naive) in
  let speedup = naive_s /. skyline_s in
  Printf.printf "pareto_micro    %d plans  skyline %.4fs  naive %.4fs  speedup %.2fx\n%!"
    n_plans skyline_s naive_s speedup;
  J.Obj
    [
      ("kind", J.String "pareto_micro");
      ("models", J.List (List.map (fun (name, _) -> J.String name) models));
      ("n_plans", J.Int n_plans);
      ("skyline_s", J.Float skyline_s);
      ("naive_s", J.Float naive_s);
      ("speedup", J.Float speedup);
    ]

(* ------------------------------------------------------------------ *)
(* solver_scaling — Optimizer.solve at jobs=1 vs jobs=N                *)
(* ------------------------------------------------------------------ *)

let solver_scaling ~jobs ~repeats n =
  let open Es_edge in
  let cluster = Scenario.build (Scenario.with_n_devices n Scenario.default) in
  let config j = { Es_joint.Optimizer.default_config with jobs = j } in
  let solve j = Es_joint.Optimizer.solve ~config:(config j) cluster in
  let out1 = solve 1 in
  let outn = solve jobs in
  let identical = out1.Es_joint.Optimizer.objective = outn.Es_joint.Optimizer.objective in
  let t1 = time_best ~repeats (fun () -> solve 1) in
  let tn = time_best ~repeats (fun () -> solve jobs) in
  let speedup = t1 /. tn in
  Printf.printf
    "solver_scaling  %3d devices  jobs=1 %.3fs  jobs=%d %.3fs  speedup %.2fx  identical %b\n%!"
    n t1 jobs tn speedup identical;
  J.Obj
    [
      ("kind", J.String "solver_scaling");
      ("devices", J.Int n);
      ("jobs", J.Int jobs);
      ("t_jobs1_s", J.Float t1);
      ("t_jobsN_s", J.Float tn);
      ("speedup", J.Float speedup);
      ("objective", J.Float out1.Es_joint.Optimizer.objective);
      ("identical", J.Bool identical);
    ]

(* ------------------------------------------------------------------ *)
(* bench_suite — the parallelized sweep experiments end to end         *)
(* ------------------------------------------------------------------ *)

let silenced f =
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Unix.dup2 devnull Unix.stdout;
  Unix.close devnull;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved)
    f

let suite_ids = [ "F2"; "F3"; "F4"; "T3" ]

let bench_suite ~jobs =
  let run_suite () =
    List.iter
      (fun id ->
        let _, _, run = List.find (fun (i, _, _) -> i = id) Experiments.all in
        run ())
      suite_ids
  in
  (* Warm the candidate cache once so neither measurement pays first-touch
     plan generation. *)
  Common.jobs := 1;
  silenced run_suite;
  let t1 = time_best ~repeats:1 (fun () -> silenced run_suite) in
  Common.jobs := jobs;
  let tn = time_best ~repeats:1 (fun () -> silenced run_suite) in
  Common.jobs := 1;
  let speedup = t1 /. tn in
  Printf.printf "bench_suite     %s  jobs=1 %.2fs  jobs=%d %.2fs  speedup %.2fx\n%!"
    (String.concat "," suite_ids) t1 jobs tn speedup;
  J.Obj
    [
      ("kind", J.String "bench_suite");
      ("experiments", J.List (List.map (fun id -> J.String id) suite_ids));
      ("jobs", J.Int jobs);
      ("t_jobs1_s", J.Float t1);
      ("t_jobsN_s", J.Float tn);
      ("speedup", J.Float speedup);
    ]

(* ------------------------------------------------------------------ *)
(* driver                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  let sizes = ref [ 10; 25; 50; 100 ] in
  let jobs = ref 4 in
  let repeats = ref 3 in
  let out_path = ref "BENCH_solver.json" in
  let suite = ref false in
  let usage () =
    prerr_endline
      "usage: timing.exe [--sizes N,N,..] [--jobs N] [--repeats N] [--out PATH] [--suite]";
    exit 2
  in
  let rec parse = function
    | "--sizes" :: s :: rest -> (
        match List.map int_of_string_opt (String.split_on_char ',' s) with
        | ns when List.for_all Option.is_some ns && ns <> [] ->
            sizes := List.filter_map Fun.id ns;
            parse rest
        | _ -> usage ())
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 0 ->
            jobs := (if j = 0 then Es_util.Par.default_jobs () else j);
            parse rest
        | _ -> usage ())
    | "--repeats" :: n :: rest -> (
        match int_of_string_opt n with
        | Some r when r >= 1 ->
            repeats := r;
            parse rest
        | _ -> usage ())
    | "--out" :: p :: rest ->
        out_path := p;
        parse rest
    | "--suite" :: rest ->
        suite := true;
        parse rest
    | [] -> ()
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let oc = open_out !out_path in
  let emit record = Es_obs.Export.write_jsonl_line oc record in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "bench-timing: cores=%d jobs=%d repeats=%d sizes=%s -> %s\n%!" cores !jobs
    !repeats
    (String.concat "," (List.map string_of_int !sizes))
    !out_path;
  (* Header record: parallel speedups below only make sense relative to the
     machine's core count (on a 1-core box jobs>1 oversubscribes and loses). *)
  emit
    (J.Obj
       [
         ("kind", J.String "bench_env");
         ("cores", J.Int cores);
         ("jobs", J.Int !jobs);
         ("repeats", J.Int !repeats);
         ("sizes", J.List (List.map (fun n -> J.Int n) !sizes));
       ]);
  emit (pareto_micro ~repeats:!repeats);
  List.iter (fun n -> emit (solver_scaling ~jobs:!jobs ~repeats:!repeats n)) !sizes;
  if !suite then emit (bench_suite ~jobs:!jobs);
  close_out oc
