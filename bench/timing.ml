(* Solver-scaling and hot-path timing harness — the `make bench-timing`
   target.  Three measurements, each emitted as one JSONL record (the es_obs
   codec, same framing as --jsonl / --metrics-out) to the output file:

     pareto_micro     sort-based skyline vs the O(n^2) reference frontier on
                      real candidate plan sets, single core
     solver_scaling   Optimizer.solve wall time at jobs=1 vs jobs=N per
                      cluster size, checking the objectives are identical
     bench_suite      (--suite) the parallelized sweep experiments end to
                      end at harness jobs=1 vs jobs=N, stdout silenced

   Usage:
     dune exec bench/timing.exe -- [--sizes 10,25,50,100] [--jobs 4]
       [--repeats 3] [--out BENCH_solver.json] [--suite] *)

module J = Es_obs.Json

let wall = Es_obs.Obs.wall_clock

(* Best-of-N wall time: robust to scheduler noise without bechamel's
   minimum-runtime requirements. *)
let time_best ~repeats f =
  let best = ref infinity in
  for _ = 1 to max 1 repeats do
    let t0 = wall () in
    ignore (Sys.opaque_identity (f ()));
    let dt = wall () -. t0 in
    if dt < !best then best := dt
  done;
  !best

(* ------------------------------------------------------------------ *)
(* pareto_micro — candidate-generation kernel                          *)
(* ------------------------------------------------------------------ *)

(* The same key Candidate.pareto ranks plans under. *)
let plan_key (p : Es_surgery.Plan.t) =
  let scale = Es_surgery.Precision.compute_scale p.Es_surgery.Plan.precision in
  [|
    Es_surgery.Plan.dev_flops p /. scale;
    Es_surgery.Plan.transfer_bytes p;
    Es_surgery.Plan.srv_flops p /. scale;
    -.p.Es_surgery.Plan.accuracy;
  |]

let pareto_micro ~repeats =
  let models =
    [
      ("vgg16", Es_dnn.Zoo.vgg16 ());
      ("resnet50", Es_dnn.Zoo.resnet50 ());
      ("mobilenet_v2", Es_dnn.Zoo.mobilenet_v2 ());
      ("yolo_tiny", Es_dnn.Zoo.yolo_tiny ());
    ]
  in
  let plan_sets = List.map (fun (_, g) -> Es_surgery.Candidate.generate g) models in
  let n_plans = List.fold_left (fun acc ps -> acc + List.length ps) 0 plan_sets in
  let frontier_all impl = List.iter (fun ps -> ignore (impl plan_key ps)) plan_sets in
  List.iter
    (fun ps ->
      assert (
        Es_util.Pareto.frontier plan_key ps = Es_util.Pareto.frontier_naive plan_key ps))
    plan_sets;
  let skyline_s = time_best ~repeats (fun () -> frontier_all Es_util.Pareto.frontier) in
  let naive_s = time_best ~repeats (fun () -> frontier_all Es_util.Pareto.frontier_naive) in
  let speedup = naive_s /. skyline_s in
  Printf.printf "pareto_micro    %d plans  skyline %.4fs  naive %.4fs  speedup %.2fx\n%!"
    n_plans skyline_s naive_s speedup;
  J.Obj
    [
      ("kind", J.String "pareto_micro");
      ("models", J.List (List.map (fun (name, _) -> J.String name) models));
      ("n_plans", J.Int n_plans);
      ("skyline_s", J.Float skyline_s);
      ("naive_s", J.Float naive_s);
      ("speedup", J.Float speedup);
    ]

(* ------------------------------------------------------------------ *)
(* solver_scaling — Optimizer.solve at jobs=1 vs jobs=N                *)
(* ------------------------------------------------------------------ *)

let solver_scaling ~jobs ~repeats n =
  let open Es_edge in
  let cluster = Scenario.build (Scenario.with_n_devices n Scenario.default) in
  let config j = { Es_joint.Optimizer.default_config with jobs = j } in
  let solve j = Es_joint.Optimizer.solve ~config:(config j) cluster in
  let out1 = solve 1 in
  let outn = solve jobs in
  let identical = out1.Es_joint.Optimizer.objective = outn.Es_joint.Optimizer.objective in
  let t1 = time_best ~repeats (fun () -> solve 1) in
  let tn = time_best ~repeats (fun () -> solve jobs) in
  let speedup = t1 /. tn in
  Printf.printf
    "solver_scaling  %3d devices  jobs=1 %.3fs  jobs=%d %.3fs  speedup %.2fx  identical %b\n%!"
    n t1 jobs tn speedup identical;
  J.Obj
    [
      ("kind", J.String "solver_scaling");
      ("devices", J.Int n);
      ("jobs", J.Int jobs);
      ("t_jobs1_s", J.Float t1);
      ("t_jobsN_s", J.Float tn);
      ("speedup", J.Float speedup);
      ("objective", J.Float out1.Es_joint.Optimizer.objective);
      ("identical", J.Bool identical);
    ]

(* ------------------------------------------------------------------ *)
(* sharded_scaling — Es_scale.solve at sizes beyond monolithic reach   *)
(* ------------------------------------------------------------------ *)

(* Server count grows with the fleet (~40 devices per server: 250 -> 6,
   1000 -> 25), matching how a real deployment would be provisioned; the
   sharded solver's whole point is that per-shard work stays bounded as
   the fleet grows.  (At 1000 devices over 16 servers the system is simply
   overloaded — every solver's objective blows up on deadline misses.) *)
let sharded_servers n = max 2 (n / 40)

let sharded_scaling ~jobs ~repeats n =
  let open Es_edge in
  let servers = sharded_servers n in
  let cluster =
    Scenario.default |> Scenario.with_n_devices n |> Scenario.with_n_servers servers
    |> Scenario.build
  in
  let solve j =
    Es_scale.solve ~config:{ Es_scale.default_config with Es_scale.jobs = j } cluster
  in
  let out1 = solve 1 in
  let outn = solve jobs in
  let identical =
    Decision.fingerprint out1.Es_scale.decisions
    = Decision.fingerprint outn.Es_scale.decisions
  in
  let feasible =
    match Decision.validate cluster out1.Es_scale.decisions with
    | Ok () -> true
    | Error _ -> false
  in
  let t1 = time_best ~repeats (fun () -> solve 1) in
  let tn = time_best ~repeats (fun () -> solve jobs) in
  let speedup = t1 /. tn in
  Printf.printf
    "sharded_scaling %4d devices / %2d servers  jobs=1 %.3fs  jobs=%d %.3fs  speedup \
     %.2fx  identical %b  feasible %b\n\
     %!"
    n servers t1 jobs tn speedup identical feasible;
  J.Obj
    [
      ("kind", J.String "sharded_scaling");
      ("devices", J.Int n);
      ("servers", J.Int servers);
      ("jobs", J.Int jobs);
      ("t_jobs1_s", J.Float t1);
      ("t_jobsN_s", J.Float tn);
      ("speedup", J.Float speedup);
      ("objective", J.Float out1.Es_scale.objective);
      ("sweeps", J.Int out1.Es_scale.sweeps);
      ("shard_solves", J.Int out1.Es_scale.shard_solves);
      ("identical", J.Bool identical);
      ("feasible", J.Bool feasible);
    ]

(* ------------------------------------------------------------------ *)
(* sharded_vs_mono — both solvers on the same cluster                  *)
(* ------------------------------------------------------------------ *)

(* Head-to-head on one cluster small enough for the monolithic solver:
   wall-time speedup plus the objective the decomposition gives up. *)
let sharded_vs_mono ~repeats n =
  let open Es_edge in
  let servers = max 2 (n / 25) in
  let cluster =
    Scenario.default |> Scenario.with_n_devices n |> Scenario.with_n_servers servers
    |> Scenario.build
  in
  let mono = Es_joint.Optimizer.solve cluster in
  let sh = Es_scale.solve cluster in
  let feasible =
    match Decision.validate cluster sh.Es_scale.decisions with
    | Ok () -> true
    | Error _ -> false
  in
  let t_mono = time_best ~repeats (fun () -> Es_joint.Optimizer.solve cluster) in
  let t_sharded = time_best ~repeats (fun () -> Es_scale.solve cluster) in
  let speedup = t_mono /. t_sharded in
  let quality_ratio = sh.Es_scale.objective /. mono.Es_joint.Optimizer.objective in
  Printf.printf
    "sharded_vs_mono %4d devices / %2d servers  mono %.3fs  sharded %.3fs  speedup \
     %.2fx  quality %.3f  feasible %b\n\
     %!"
    n servers t_mono t_sharded speedup quality_ratio feasible;
  J.Obj
    [
      ("kind", J.String "sharded_vs_mono");
      ("devices", J.Int n);
      ("servers", J.Int servers);
      ("t_mono_s", J.Float t_mono);
      ("t_sharded_s", J.Float t_sharded);
      ("speedup", J.Float speedup);
      ("quality_ratio", J.Float quality_ratio);
      ("feasible", J.Bool feasible);
    ]

(* ------------------------------------------------------------------ *)
(* alloc_per_solve — allocated words per steady-state solve            *)
(* ------------------------------------------------------------------ *)

(* Allocation counts are a property of the code path, not of the machine:
   the same binary solving the same scenario allocates the same number of
   minor-heap words on every run, on every box.  Unlike the wall-clock
   records above, the gate therefore compares minor_words_per_solve
   absolutely against the committed baseline (small tolerance, no 2x noise
   band) — the budget the zero-allocation kernels (DESIGN.md §15) buy.

   Solves run at jobs=1: the parallel fan-out would add per-domain arenas
   and dispatch buffers that belong to the runtime, not to the solver.
   Each record also re-scores the landing point through the retained
   reference kernels (oracle_ok), so a flat/oracle divergence fails the
   gate even if no test caught it.  words_per_solve (minor + major -
   promoted) is recorded for context only: direct-to-major block counters
   lag the running collection slice, so that figure is not exact. *)

let alloc_per_solve_record ~scenario ~cluster ~(solve : unit -> Es_edge.Decision.t array) =
  let open Es_edge in
  ignore (Sys.opaque_identity (solve ()));
  (* warm: candidate pools, scratch arenas, lazies *)
  let sink = ref [||] in
  let thunk () = sink := solve () in
  let minor = Es_util.Alloc_probe.minor_words thunk in
  let total = Es_util.Alloc_probe.words thunk in
  let decisions = !sink in
  let oracle_ok =
    Int64.bits_of_float (Es_joint.Objective.of_decisions cluster decisions)
    = Int64.bits_of_float (Es_joint.Objective.of_decisions_ref cluster decisions)
  in
  Printf.printf
    "alloc_per_solve %-12s %4d devices  minor %.0f words/solve  total %.0f  oracle_ok %b\n%!"
    scenario (Cluster.n_devices cluster) minor total oracle_ok;
  J.Obj
    [
      ("kind", J.String "alloc_per_solve");
      ("scenario", J.String scenario);
      ("devices", J.Int (Cluster.n_devices cluster));
      ("servers", J.Int (Cluster.n_servers cluster));
      ("minor_words_per_solve", J.Float minor);
      ("words_per_solve", J.Float total);
      ("oracle_ok", J.Bool oracle_ok);
    ]

let alloc_scenario_names = [ "default"; "smart_city"; "ar_assistant"; "drone_swarm" ]

let alloc_named name =
  let open Es_edge in
  let cluster = Scenario.build (Es_workload.Scenarios.by_name name) in
  let config = { Es_joint.Optimizer.default_config with Es_joint.Optimizer.jobs = 1 } in
  alloc_per_solve_record ~scenario:name ~cluster ~solve:(fun () ->
      (Es_joint.Optimizer.solve ~config cluster).Es_joint.Optimizer.decisions)

let alloc_sharded n =
  let open Es_edge in
  let servers = sharded_servers n in
  let cluster =
    Scenario.default |> Scenario.with_n_devices n |> Scenario.with_n_servers servers
    |> Scenario.build
  in
  let config = { Es_scale.default_config with Es_scale.jobs = 1 } in
  alloc_per_solve_record
    ~scenario:(Printf.sprintf "sharded_%d" n)
    ~cluster
    ~solve:(fun () -> (Es_scale.solve ~config cluster).Es_scale.decisions)

(* ------------------------------------------------------------------ *)
(* warm_online — warm-started + cached epoch re-solves vs cold         *)
(* ------------------------------------------------------------------ *)

(* The default online scenario (F10): step burst x3 over the middle third
   of 180s, re-optimized every 15s = 12 epoch solves over 3 load levels.
   The warm arm threads the incumbent into each solve and memoizes on the
   (cluster, config) fingerprint; the cold arm solves each epoch from
   scratch.  Timing covers the re-solve loop only (the simulation cost is
   identical in both arms and would just dilute the ratio); the
   equal-or-better check runs the full Online.run pipeline on both arms
   and compares the applied schedules epoch by epoch. *)
let warm_online ~repeats =
  let open Es_edge in
  let cluster = Scenario.build Scenario.default in
  let duration = 180.0 and epoch = 15.0 in
  let profile =
    Es_workload.Profiles.step_burst ~start_s:(duration /. 3.0)
      ~stop_s:(2.0 *. duration /. 3.0) ~factor:3.0
  in
  let rec epoch_times acc t =
    if t >= duration then List.rev acc else epoch_times (t :: acc) (t +. epoch)
  in
  let times = epoch_times [] 0.0 in
  let loads = List.map (fun t -> Float.max 1e-9 (profile t)) times in
  let solve_all ~warm ~cache () =
    let prev = ref None in
    List.iter
      (fun load ->
        let scaled = Es_joint.Online.scale_rates cluster load in
        let warm_start = if warm then !prev else None in
        let out =
          match cache with
          | Some sc -> Es_joint.Solve_cache.solve sc ?warm_start scaled
          | None -> Es_joint.Optimizer.solve ?warm_start scaled
        in
        prev := Some out.Es_joint.Optimizer.decisions)
      loads
  in
  (* Warm the candidate cache so neither arm pays first-touch plan
     generation; a fresh solve cache per warm repetition keeps the
     measurement honest (hits come only from within one run). *)
  solve_all ~warm:false ~cache:None ();
  let t_cold = time_best ~repeats (fun () -> solve_all ~warm:false ~cache:None ()) in
  let t_warm =
    time_best ~repeats (fun () ->
        solve_all ~warm:true ~cache:(Some (Es_joint.Solve_cache.create ())) ())
  in
  let speedup = t_cold /. t_warm in
  (* Full-pipeline check: per epoch, the warm arm's applied decisions are
     equal-or-better under that epoch's load than the cold arm's. *)
  let options = { Es_sim.Runner.default_options with duration_s = duration } in
  let cold =
    Es_joint.Online.run ~options ~warm_start:false ~epoch_s:epoch ~rate_profile:profile
      cluster
  in
  let cache = Es_joint.Solve_cache.create () in
  let warm =
    Es_joint.Online.run ~options ~cache ~warm_start:true ~epoch_s:epoch
      ~rate_profile:profile cluster
  in
  let equal_or_better =
    List.for_all2
      (fun (t, wd) (_, cd) ->
        let scaled = Es_joint.Online.scale_rates cluster (Float.max 1e-9 (profile t)) in
        Es_joint.Objective.of_decisions scaled wd
        <= Es_joint.Objective.of_decisions scaled cd +. 1e-9)
      warm.Es_joint.Online.schedule cold.Es_joint.Online.schedule
  in
  let cache_hits = warm.Es_joint.Online.cache_hits in
  Printf.printf
    "warm_online     %d epochs  cold %.3fs  warm %.3fs  speedup %.2fx  cache_hits %d  equal_or_better %b\n%!"
    (List.length times) t_cold t_warm speedup cache_hits equal_or_better;
  J.Obj
    [
      ("kind", J.String "warm_online");
      ("devices", J.Int (Cluster.n_devices cluster));
      ("epochs", J.Int (List.length times));
      ("t_cold_s", J.Float t_cold);
      ("t_warm_s", J.Float t_warm);
      ("speedup", J.Float speedup);
      ("cache_hits", J.Int cache_hits);
      ("equal_or_better", J.Bool equal_or_better);
    ]

(* ------------------------------------------------------------------ *)
(* million_request — serving-engine throughput (events/s)              *)
(* ------------------------------------------------------------------ *)

(* Two measurements of the same question — how fast does the discrete-event
   core move — at two levels:

   1. Raw engine: [n] time-sorted arrival times pre-generated OUTSIDE the
      timed region (the RNG is shared overhead that would otherwise dilute
      the backend ratio), all scheduled up front — exactly how Runner
      pre-schedules a trace — so the pending population starts at n, then
      drained; each arrival schedules one short-delay follow-up through a
      shared zero-capture closure (2n events total, no per-event closure
      allocation inside the timed loop).  This is the regime that separates
      the backends: against an ~n-deep queue the heap pays a full O(log n)
      sift per op while the calendar appends sorted pushes in O(1) at the
      tail of the current bucket and pops in O(1).

   2. End-to-end: a Heavy.population smart-city fleet (n/100 devices) under
      a flash-crowd trace through Runner.run with streaming metrics, once
      per backend.  Checks the two backends produce byte-equal reports
      (end-to-end equivalence) and that conservation holds, and records
      sustained runner events/s. *)
let million_request ~repeats n =
  let total_events n = 2 * n in
  let times =
    let rng = Es_util.Prng.create 42 in
    let a = Array.init n (fun _ -> Es_util.Prng.float_in rng 0.0 3600.0) in
    Array.sort Float.compare a;
    a
  in
  let run_engine backend () =
    let engine = Es_sim.Engine.create ~backend () in
    let noop () = () in
    let hop () = Es_sim.Engine.schedule engine 0.001 noop in
    Array.iter (fun t -> Es_sim.Engine.schedule_at engine t hop) times;
    Es_sim.Engine.run engine;
    (Es_sim.Engine.stats engine).Es_sim.Engine.events_processed
  in
  let heap_events = run_engine Es_sim.Engine.Heap () in
  let cal_events = run_engine Es_sim.Engine.Calendar () in
  let identical = heap_events = cal_events && cal_events = total_events n in
  let t_heap = time_best ~repeats (fun () -> run_engine Es_sim.Engine.Heap ()) in
  let t_cal = time_best ~repeats (fun () -> run_engine Es_sim.Engine.Calendar ()) in
  let heap_eps = float_of_int heap_events /. t_heap in
  let cal_eps = float_of_int cal_events /. t_cal in
  let engine_speedup = t_heap /. t_cal in
  Printf.printf
    "million_request %d events  heap %.3fs (%.0f ev/s)  calendar %.3fs (%.0f ev/s)  \
     speedup %.2fx  identical %b\n\
     %!"
    (total_events n) t_heap heap_eps t_cal cal_eps engine_speedup identical;
  let devices = max 200 (n / 100) in
  let cluster =
    Es_workload.Heavy.population ~devices Es_workload.Scenarios.smart_city
  in
  let rate_sum =
    Array.fold_left
      (fun acc (d : Es_edge.Cluster.device) -> acc +. d.Es_edge.Cluster.rate)
      0.0 cluster.Es_edge.Cluster.devices
  in
  let duration = float_of_int n /. rate_sum in
  let profile = Es_workload.Heavy.profile_by_name ~duration_s:duration "flash" in
  let trace = Es_workload.Heavy.trace ~seed:42 ~duration_s:duration ~profile cluster in
  let decisions = Es_baselines.Baselines.neurosurgeon.Es_baselines.Baselines.solve cluster in
  let run_sim backend =
    let stats = ref None in
    let options =
      {
        Es_sim.Runner.default_options with
        duration_s = duration;
        warmup_s = 0.0;
        streaming = true;
        engine = backend;
      }
    in
    let t0 = wall () in
    let report =
      Es_sim.Runner.run ~options ~arrivals:trace
        ~on_stats:(fun s -> stats := Some s)
        cluster decisions
    in
    let dt = wall () -. t0 in
    (report, Option.get !stats, dt)
  in
  let heap_report, heap_stats, heap_t = run_sim Es_sim.Engine.Heap in
  let cal_report, cal_stats, cal_t = run_sim Es_sim.Engine.Calendar in
  let reports_match = heap_report = cal_report in
  let conservation =
    cal_report.Es_sim.Metrics.total_generated
    = cal_report.Es_sim.Metrics.total_completed + cal_report.Es_sim.Metrics.total_dropped
      + cal_report.Es_sim.Metrics.total_timed_out
  in
  let runner_heap_eps = float_of_int heap_stats.Es_sim.Engine.events_processed /. heap_t in
  let runner_cal_eps = float_of_int cal_stats.Es_sim.Engine.events_processed /. cal_t in
  let runner_speedup = heap_t /. cal_t in
  Printf.printf
    "million_request %d devices / %d reqs  runner heap %.2fs (%.0f ev/s)  calendar %.2fs \
     (%.0f ev/s)  speedup %.2fx  max_pending %d  reports_match %b  conservation %b\n\
     %!"
    devices cal_report.Es_sim.Metrics.total_generated heap_t runner_heap_eps cal_t
    runner_cal_eps runner_speedup cal_stats.Es_sim.Engine.max_pending reports_match
    conservation;
  J.Obj
    [
      ("kind", J.String "million_request");
      ("n", J.Int n);
      ("engine_events", J.Int cal_events);
      ("t_heap_s", J.Float t_heap);
      ("t_calendar_s", J.Float t_cal);
      ("heap_events_per_s", J.Float heap_eps);
      ("calendar_events_per_s", J.Float cal_eps);
      ("engine_speedup", J.Float engine_speedup);
      ("identical", J.Bool identical);
      ("devices", J.Int devices);
      ("requests", J.Int cal_report.Es_sim.Metrics.total_generated);
      ("runner_events", J.Int cal_stats.Es_sim.Engine.events_processed);
      ("runner_max_pending", J.Int cal_stats.Es_sim.Engine.max_pending);
      ("runner_heap_events_per_s", J.Float runner_heap_eps);
      ("runner_calendar_events_per_s", J.Float runner_cal_eps);
      ("runner_speedup", J.Float runner_speedup);
      ("reports_match", J.Bool reports_match);
      ("conservation", J.Bool conservation);
    ]

(* ------------------------------------------------------------------ *)
(* overload — flash crowd at 3x capacity, protected vs unprotected     *)
(* ------------------------------------------------------------------ *)

(* The overload-protection acceptance experiment.  A smart-city heavy
   population under the sustained "overload" profile (3x nominal from the
   quarter mark onward) runs three ways:

   - unprotected: every request admitted, queues grow without bound;
   - protected: admission + breakers + brownout + capacity-derived token
     buckets, all at defaults — hopeless requests shed at arrival;
   - armed-but-lax: every mechanism on with unreachable thresholds — the
     per-arrival gate code runs but never fires, so comparing its wall
     time against the unprotected run prices the shed path at parity,
     and its report must be byte-identical (arming costs nothing).

   Gated downstream: protection lifts admitted DSR >= 2x over the
   unprotected DSR without losing useful completions (deadline hits), and
   the disabled/lax overhead stays within the 2x noise band. *)
let overload_protection ~repeats n =
  let devices = max 200 (n / 100) in
  let cluster = Es_workload.Heavy.population ~devices Es_workload.Scenarios.smart_city in
  let rate_sum =
    Array.fold_left
      (fun acc (d : Es_edge.Cluster.device) -> acc +. d.Es_edge.Cluster.rate)
      0.0 cluster.Es_edge.Cluster.devices
  in
  let duration = float_of_int n /. rate_sum in
  let profile = Es_workload.Heavy.profile_by_name ~duration_s:duration "overload" in
  let trace = Es_workload.Heavy.trace ~seed:42 ~duration_s:duration ~profile cluster in
  let decisions = Es_baselines.Baselines.neurosurgeon.Es_baselines.Baselines.solve cluster in
  let protections =
    {
      Es_sim.Overload.admission = Some Es_sim.Overload.default_admission;
      breaker = Some Es_sim.Overload.default_breaker;
      brownout = Some Es_sim.Overload.default_brownout;
      rate_limit = Some Es_sim.Overload.default_rate_limit;
    }
  in
  let lax =
    {
      Es_sim.Overload.admission = Some { Es_sim.Overload.slack = 1e9 };
      breaker = Some Es_sim.Overload.default_breaker;
      brownout =
        Some
          {
            Es_sim.Overload.default_brownout with
            Es_sim.Overload.high_watermark = max_int / 2;
            low_watermark = 0;
          };
      rate_limit = Some { Es_sim.Overload.rate_per_server = 1e12; burst = 1e9 };
    }
  in
  let run overload () =
    let options =
      {
        Es_sim.Runner.default_options with
        duration_s = duration;
        warmup_s = 0.0;
        streaming = true;
        overload;
      }
    in
    Es_sim.Runner.run ~options ~arrivals:trace cluster decisions
  in
  let r_off = run Es_sim.Overload.off () in
  let r_on = run protections () in
  let r_lax = run lax () in
  let t_off = time_best ~repeats (fun () -> ignore (run Es_sim.Overload.off ())) in
  let t_on = time_best ~repeats (fun () -> ignore (run protections ())) in
  let t_lax = time_best ~repeats (fun () -> ignore (run lax ())) in
  let hits (r : Es_sim.Metrics.report) =
    Array.fold_left
      (fun acc (d : Es_sim.Metrics.device_stats) -> acc + d.Es_sim.Metrics.deadline_hits)
      0 r.Es_sim.Metrics.per_device
  in
  let hits_off = hits r_off and hits_on = hits r_on in
  let dsr_ratio = r_on.Es_sim.Metrics.dsr_admitted /. Float.max 1e-9 r_off.Es_sim.Metrics.dsr in
  let no_fewer_hits = hits_on >= hits_off in
  let off_identical = r_lax = r_off in
  let overhead_ratio = t_lax /. Float.max 1e-9 t_off in
  let conservation =
    r_on.Es_sim.Metrics.total_generated
    = r_on.Es_sim.Metrics.total_completed + r_on.Es_sim.Metrics.total_dropped
      + r_on.Es_sim.Metrics.total_timed_out + r_on.Es_sim.Metrics.total_shed
  in
  Printf.printf
    "overload        %d devices / %d reqs  unprotected DSR %.1f%% (%d hits)  protected \
     admitted DSR %.1f%% (%d hits, %d shed)  ratio %.2fx  overhead %.2fx  off_identical %b\n\
     %!"
    devices r_off.Es_sim.Metrics.total_generated
    (100.0 *. r_off.Es_sim.Metrics.dsr)
    hits_off
    (100.0 *. r_on.Es_sim.Metrics.dsr_admitted)
    hits_on r_on.Es_sim.Metrics.total_shed dsr_ratio overhead_ratio off_identical;
  J.Obj
    [
      ("kind", J.String "overload");
      ("n", J.Int n);
      ("devices", J.Int devices);
      ("requests", J.Int r_off.Es_sim.Metrics.total_generated);
      ("dsr_unprotected", J.Float r_off.Es_sim.Metrics.dsr);
      ("dsr_admitted_protected", J.Float r_on.Es_sim.Metrics.dsr_admitted);
      ("protection_dsr_ratio", J.Float dsr_ratio);
      ("hits_unprotected", J.Int hits_off);
      ("hits_protected", J.Int hits_on);
      ("no_fewer_hits", J.Bool no_fewer_hits);
      ("shed", J.Int r_on.Es_sim.Metrics.total_shed);
      ("t_unprotected_s", J.Float t_off);
      ("t_protected_s", J.Float t_on);
      ("t_armed_lax_s", J.Float t_lax);
      ("overhead_ratio", J.Float overhead_ratio);
      ("off_identical", J.Bool off_identical);
      ("conservation", J.Bool conservation);
    ]

(* ------------------------------------------------------------------ *)
(* bench_suite — the parallelized sweep experiments end to end         *)
(* ------------------------------------------------------------------ *)

let silenced f =
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Unix.dup2 devnull Unix.stdout;
  Unix.close devnull;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved)
    f

let suite_ids = [ "F2"; "F3"; "F4"; "T3" ]

let bench_suite ~jobs =
  let run_suite () =
    List.iter
      (fun id ->
        let _, _, run = List.find (fun (i, _, _) -> i = id) Experiments.all in
        run ())
      suite_ids
  in
  (* Warm the candidate cache once so neither measurement pays first-touch
     plan generation. *)
  Atomic.set Common.jobs 1;
  silenced run_suite;
  let t1 = time_best ~repeats:1 (fun () -> silenced run_suite) in
  Atomic.set Common.jobs jobs;
  let tn = time_best ~repeats:1 (fun () -> silenced run_suite) in
  Atomic.set Common.jobs 1;
  let speedup = t1 /. tn in
  Printf.printf "bench_suite     %s  jobs=1 %.2fs  jobs=%d %.2fs  speedup %.2fx\n%!"
    (String.concat "," suite_ids) t1 jobs tn speedup;
  J.Obj
    [
      ("kind", J.String "bench_suite");
      ("experiments", J.List (List.map (fun id -> J.String id) suite_ids));
      ("jobs", J.Int jobs);
      ("t_jobs1_s", J.Float t1);
      ("t_jobsN_s", J.Float tn);
      ("speedup", J.Float speedup);
    ]

(* ------------------------------------------------------------------ *)
(* driver                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  let sizes = ref [ 10; 25; 50; 100 ] in
  let sharded_sizes = ref [] in
  let vs_mono_sizes = ref [] in
  let jobs = ref 4 in
  let repeats = ref 3 in
  let out_path = ref "BENCH_solver.json" in
  let suite = ref false in
  let warm = ref false in
  let million = ref 0 in
  let overload = ref 0 in
  let alloc = ref false in
  let alloc_sharded_sizes = ref [] in
  let usage () =
    prerr_endline
      "usage: timing.exe [--sizes N,N,..] [--sharded-sizes N,N,..] [--vs-mono N,N,..] [--jobs N] [--repeats N] [--out PATH] [--suite] [--warm-online] [--million-request N] [--overload N] [--alloc] [--alloc-sharded N,N,..]";
    exit 2
  in
  let parse_sizes into s rest k =
    match List.map int_of_string_opt (String.split_on_char ',' s) with
    | ns when List.for_all Option.is_some ns && ns <> [] ->
        into := List.filter_map Fun.id ns;
        k rest
    | _ -> usage ()
  in
  let rec parse = function
    | "--sizes" :: s :: rest -> parse_sizes sizes s rest parse
    | "--sharded-sizes" :: s :: rest -> parse_sizes sharded_sizes s rest parse
    | "--vs-mono" :: s :: rest -> parse_sizes vs_mono_sizes s rest parse
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 0 ->
            jobs := (if j = 0 then Es_util.Par.default_jobs () else j);
            parse rest
        | _ -> usage ())
    | "--repeats" :: n :: rest -> (
        match int_of_string_opt n with
        | Some r when r >= 1 ->
            repeats := r;
            parse rest
        | _ -> usage ())
    | "--out" :: p :: rest ->
        out_path := p;
        parse rest
    | "--suite" :: rest ->
        suite := true;
        parse rest
    | "--warm-online" :: rest ->
        warm := true;
        parse rest
    | "--alloc" :: rest ->
        alloc := true;
        parse rest
    | "--alloc-sharded" :: s :: rest -> parse_sizes alloc_sharded_sizes s rest parse
    | "--million-request" :: n :: rest -> (
        match int_of_string_opt n with
        | Some m when m >= 1 ->
            million := m;
            parse rest
        | _ -> usage ())
    | "--overload" :: n :: rest -> (
        match int_of_string_opt n with
        | Some m when m >= 1 ->
            overload := m;
            parse rest
        | _ -> usage ())
    | [] -> ()
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let oc = open_out !out_path in
  let emit record = Es_obs.Export.write_jsonl_line oc record in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "bench-timing: cores=%d jobs=%d repeats=%d sizes=%s -> %s\n%!" cores !jobs
    !repeats
    (String.concat "," (List.map string_of_int !sizes))
    !out_path;
  (* Header record: parallel speedups below only make sense relative to the
     machine's core count (on a 1-core box jobs>1 oversubscribes and loses). *)
  emit
    (J.Obj
       [
         ("kind", J.String "bench_env");
         ("cores", J.Int cores);
         ("jobs", J.Int !jobs);
         ("repeats", J.Int !repeats);
         ("sizes", J.List (List.map (fun n -> J.Int n) !sizes));
       ]);
  emit (pareto_micro ~repeats:!repeats);
  List.iter (fun n -> emit (solver_scaling ~jobs:!jobs ~repeats:!repeats n)) !sizes;
  List.iter (fun n -> emit (sharded_scaling ~jobs:!jobs ~repeats:!repeats n)) !sharded_sizes;
  List.iter (fun n -> emit (sharded_vs_mono ~repeats:!repeats n)) !vs_mono_sizes;
  if !alloc then List.iter (fun name -> emit (alloc_named name)) alloc_scenario_names;
  List.iter (fun n -> emit (alloc_sharded n)) !alloc_sharded_sizes;
  if !warm then emit (warm_online ~repeats:!repeats);
  if !million >= 1 then emit (million_request ~repeats:!repeats !million);
  if !overload >= 1 then emit (overload_protection ~repeats:!repeats !overload);
  if !suite then emit (bench_suite ~jobs:!jobs);
  close_out oc
