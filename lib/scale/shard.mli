(** One server's subproblem in the sharded decomposition.

    A shard is the sub-cluster of the devices currently assigned to one
    server, over that single server.  With the assignment fixed by the
    coordination layer ({!Es_scale}), each shard's (surgery plan, bandwidth,
    compute-share) subproblem is independent of every other shard's, so
    shards solve in parallel as whole-{!Es_joint.Optimizer.solve} tasks —
    work coarse enough for the {!Es_util.Par} domain pool to win. *)

type t = {
  server : int;  (** parent server id this shard solves for *)
  part : Es_edge.Subcluster.t;  (** its devices + that single server *)
}

val make : Es_edge.Cluster.t -> assignment:int array -> server:int -> t option
(** The shard of [server] under [assignment] (device i belongs to server
    [assignment.(i)]); [None] when no device is assigned to it.  Shard
    device order is parent device order, so the shard — and any solve of it
    — is a deterministic function of (cluster, assignment).
    @raise Invalid_argument on arity mismatch or out-of-range server. *)

val n_devices : t -> int

val solve :
  config:Es_joint.Optimizer.config ->
  ?cache:Es_joint.Solve_cache.t ->
  ?warm:Es_edge.Decision.t array ->
  t ->
  Es_joint.Optimizer.output
(** Solve the shard's subproblem.  [warm] is an incumbent in the {e parent}
    numbering (full parent arity); it is restricted to the shard — a device
    whose incumbent server lies outside the shard keeps its plan and is
    repaired by the optimizer's warm-start machinery.  [cache] memoizes by
    the shard sub-cluster's fingerprint, so re-solving an untouched shard
    (same devices, same rates) is a lookup.  Output decisions are in shard
    numbering; lift with {!lift_into}. *)

val lift_into : t -> Es_joint.Optimizer.output -> Es_edge.Decision.t array -> unit
(** Write a shard solve's decisions into a parent-numbered array. *)
