open Es_edge
module Optimizer = Es_joint.Optimizer
module Solve_cache = Es_joint.Solve_cache
module Shard = Shard

(* Sharded hierarchical solver: dual-price coordination over per-server
   subproblems.

   The monolithic JMSRA descent couples every device through the assignment
   step, which is what makes it superlinear in cluster size.  Here the
   coupling is priced instead: the outer loop owns the device→server
   assignment and a pair of dual prices per server (bandwidth and compute
   utilization), each inner subproblem is one server's independent
   Optimizer.solve over only its assigned devices, and devices migrate
   between servers by best-response moves against price-augmented latency
   estimates.  Prices ascend on utilization above target (never below
   zero), the move sweep visits devices in fixed ascending order, and a
   stitched result is accepted only when it strictly improves the global
   objective — so the loop is monotone after the first stitch and always
   terminates, within max_sweeps, on a feasible full decision set.

   Determinism: shard lists are built in ascending server order, fanned out
   through Es_util.Par (index-addressed results, input-order merge), each
   inner solve runs with jobs = 1, and every tie in the move sweep breaks
   toward the lowest server index — decisions are bit-identical for every
   [jobs] value. *)

type config = {
  shard : Optimizer.config;
  max_sweeps : int;
  delta_sweeps : int;
  price_step : float;
  price_target : float;
  move_tolerance : float;
  max_moves_per_sweep : int;
  jobs : int;
}

let default_config =
  {
    shard = { Optimizer.default_config with Optimizer.jobs = 1; multi_start = false };
    max_sweeps = 3;
    delta_sweeps = 1;
    price_step = 0.5;
    price_target = 0.75;
    move_tolerance = 0.05;
    max_moves_per_sweep = 32;
    jobs = 0;
  }

let shard_config cfg = { cfg.shard with Optimizer.jobs = 1 }

type output = {
  decisions : Decision.t array;
  objective : float;
  assignment : int array;
  sweeps : int;
  shard_solves : int;
  moves : int;
  solve_time_s : float;
}

(* Cumulative process-wide counters (observability; never read back by the
   solver).  All fields are Atomic.t — lock-free domain-safe state that
   needs no mutex guard (es_lint D4 recognizes Atomic.t record fields). *)
type counters = { sweeps : int; shard_solves : int; moves : int; delta_events : int }

type live = {
  sweeps : int Atomic.t;
  shard_solves : int Atomic.t;
  moves : int Atomic.t;
  delta_events : int Atomic.t;
}

let live : live =
  {
    sweeps = Atomic.make 0;
    shard_solves = Atomic.make 0;
    moves = Atomic.make 0;
    delta_events = Atomic.make 0;
  }

let counters () : counters =
  {
    sweeps = Atomic.get live.sweeps;
    shard_solves = Atomic.get live.shard_solves;
    moves = Atomic.get live.moves;
    delta_events = Atomic.get live.delta_events;
  }

let reset_counters () =
  Atomic.set live.sweeps 0;
  Atomic.set live.shard_solves 0;
  Atomic.set live.moves 0;
  Atomic.set live.delta_events 0

(* Mutable bookkeeping local to one solve/apply call. *)
type sweep_state = { mutable sweeps : int; mutable shard_solves : int; mutable moves : int }

(* Per-server running totals during one coordination sweep. *)
type tally = { mutable offloaders : int; mutable bw_frac : float; mutable cpu_frac : float }

let validate_config cfg =
  if cfg.max_sweeps < 1 then invalid_arg "Es_scale: max_sweeps must be >= 1";
  if cfg.delta_sweeps < 0 then invalid_arg "Es_scale: negative delta_sweeps";
  if cfg.price_step < 0.0 || not (Float.is_finite cfg.price_step) then
    invalid_arg "Es_scale: bad price_step";
  if cfg.price_target <= 0.0 || not (Float.is_finite cfg.price_target) then
    invalid_arg "Es_scale: bad price_target";
  if cfg.move_tolerance < 0.0 || cfg.move_tolerance >= 1.0 then
    invalid_arg "Es_scale: move_tolerance must be in [0, 1)";
  if cfg.max_moves_per_sweep < 0 then invalid_arg "Es_scale: negative max_moves_per_sweep"

let fastest_server (servers : Cluster.server array) =
  let best = ref 0 in
  Array.iteri
    (fun s (srv : Cluster.server) ->
      if
        srv.Cluster.sproc.Processor.perf.Es_dnn.Profile.flops_per_s
        > servers.(!best).Cluster.sproc.Processor.perf.Es_dnn.Profile.flops_per_s
      then best := s)
    servers;
  !best

(* Applied utilization per server under a decision set: offloader count,
   bandwidth fraction of the AP and compute seconds-per-second offered. *)
let util_tallies cluster (decisions : Decision.t array) =
  let ns = Cluster.n_servers cluster in
  let tallies =
    Array.init ns (fun _ -> { offloaders = 0; bw_frac = 0.0; cpu_frac = 0.0 })
  in
  Array.iter
    (fun (d : Decision.t) ->
      if Decision.offloads d then begin
        let s = d.Decision.server in
        let dev = cluster.Cluster.devices.(d.Decision.device) in
        let srv = cluster.Cluster.servers.(s) in
        let plan = d.Decision.plan in
        let bits =
          8.0 *. (Es_surgery.Plan.transfer_bytes plan +. Es_surgery.Plan.result_bytes plan)
        in
        let t = tallies.(s) in
        t.offloaders <- t.offloaders + 1;
        t.bw_frac <- t.bw_frac +. (dev.Cluster.rate *. bits /. srv.Cluster.ap_bandwidth_bps);
        t.cpu_frac <-
          t.cpu_frac
          +. dev.Cluster.rate
             *. Es_surgery.Plan.server_time srv.Cluster.sproc.Processor.perf plan
      end)
    decisions;
  tallies

(* Price ascent on utilization above target, clamped at zero: an overloaded
   server's resources get more expensive, pushing best responses elsewhere;
   an idle server's prices decay back toward free. *)
let price_update cfg ~prices_bw ~prices_cpu (tallies : tally array) =
  Array.iteri
    (fun s (t : tally) ->
      prices_bw.(s) <-
        Float.max 0.0 (prices_bw.(s) +. (cfg.price_step *. (t.bw_frac -. cfg.price_target)));
      prices_cpu.(s) <-
        Float.max 0.0 (prices_cpu.(s) +. (cfg.price_step *. (t.cpu_frac -. cfg.price_target))))
    tallies

(* Price-augmented cost of running [d]'s current plan on [server]: a
   fair-share latency estimate (the grants a re-solve would plausibly hand
   out) plus what the device's demand costs at that server's dual prices. *)
let move_cost cluster ~prices_bw ~prices_cpu ~(tallies : tally array) (d : Decision.t) ~server =
  let device = d.Decision.device in
  let dev = cluster.Cluster.devices.(device) in
  let srv = cluster.Cluster.servers.(server) in
  let joining = if d.Decision.server = server then 0 else 1 in
  let k = float_of_int (max 1 (tallies.(server).offloaders + joining)) in
  let plan = d.Decision.plan in
  let estimate =
    Decision.make ~device ~server ~plan
      ~bandwidth_bps:(Float.max (srv.Cluster.ap_bandwidth_bps /. k) 1.0)
      ~compute_share:(1.0 /. k) ()
  in
  let lat = Latency.of_decision cluster estimate in
  let bits =
    8.0 *. (Es_surgery.Plan.transfer_bytes plan +. Es_surgery.Plan.result_bytes plan)
  in
  let work = Es_surgery.Plan.server_time srv.Cluster.sproc.Processor.perf plan in
  lat
  +. (prices_bw.(server) *. dev.Cluster.rate *. bits /. srv.Cluster.ap_bandwidth_bps)
  +. (prices_cpu.(server) *. dev.Cluster.rate *. work)

(* One best-response sweep in fixed ascending device order.  Ties break
   toward the lowest server index (strict < during the scan); a move must
   beat staying put by a relative margin so price noise cannot oscillate
   devices.  Tallies update as moves land, so later devices respond to
   earlier moves within the same sweep — still deterministic, the order is
   fixed.  Returns the number of devices moved; marks source and target
   shards dirty. *)
let move_pass cfg cluster ~prices_bw ~prices_cpu ~tallies ~(decisions : Decision.t array)
    ~assignment ~dirty ~(st : sweep_state) =
  let ns = Cluster.n_servers cluster in
  let budget =
    if cfg.max_moves_per_sweep = 0 then max_int else cfg.max_moves_per_sweep
  in
  let moved = ref 0 in
  Array.iter
    (fun (d : Decision.t) ->
      if !moved < budget && Decision.offloads d then begin
        let i = d.Decision.device in
        let cur = d.Decision.server in
        let cost_cur = move_cost cluster ~prices_bw ~prices_cpu ~tallies d ~server:cur in
        let best_s = ref cur and best_c = ref cost_cur in
        for s = 0 to ns - 1 do
          if s <> cur then begin
            let c = move_cost cluster ~prices_bw ~prices_cpu ~tallies d ~server:s in
            if c < !best_c then begin
              best_s := s;
              best_c := c
            end
          end
        done;
        if !best_s <> cur && !best_c < cost_cur *. (1.0 -. cfg.move_tolerance) then begin
          let dev = cluster.Cluster.devices.(i) in
          let plan = d.Decision.plan in
          let bits =
            8.0
            *. (Es_surgery.Plan.transfer_bytes plan +. Es_surgery.Plan.result_bytes plan)
          in
          let src = tallies.(cur) and dst = tallies.(!best_s) in
          let cap_src = cluster.Cluster.servers.(cur).Cluster.ap_bandwidth_bps in
          let cap_dst = cluster.Cluster.servers.(!best_s).Cluster.ap_bandwidth_bps in
          let work_src =
            Es_surgery.Plan.server_time
              cluster.Cluster.servers.(cur).Cluster.sproc.Processor.perf plan
          in
          let work_dst =
            Es_surgery.Plan.server_time
              cluster.Cluster.servers.(!best_s).Cluster.sproc.Processor.perf plan
          in
          src.offloaders <- src.offloaders - 1;
          src.bw_frac <- src.bw_frac -. (dev.Cluster.rate *. bits /. cap_src);
          src.cpu_frac <- src.cpu_frac -. (dev.Cluster.rate *. work_src);
          dst.offloaders <- dst.offloaders + 1;
          dst.bw_frac <- dst.bw_frac +. (dev.Cluster.rate *. bits /. cap_dst);
          dst.cpu_frac <- dst.cpu_frac +. (dev.Cluster.rate *. work_dst);
          assignment.(i) <- !best_s;
          dirty.(cur) <- true;
          dirty.(!best_s) <- true;
          incr moved;
          st.moves <- st.moves + 1
        end
      end)
    decisions;
  !moved

(* Re-solve every dirty shard (ascending server order) and stitch the
   results over a copy of [current].  Shard solves are whole-subproblem
   tasks over the domain pool — input-order merge keeps the stitch
   deterministic at any [jobs]. *)
let solve_dirty cfg ~cache ~cluster ~assignment ~dirty ~warm ~current ~(st : sweep_state) =
  let ns = Cluster.n_servers cluster in
  let shards =
    List.filter_map
      (fun s -> if dirty.(s) then Shard.make cluster ~assignment ~server:s else None)
      (List.init ns Fun.id)
  in
  let config = shard_config cfg in
  let outs =
    Es_util.Par.parallel_map ~jobs:cfg.jobs
      (fun sh -> Shard.solve ~config ?cache ?warm sh)
      shards
  in
  st.shard_solves <- st.shard_solves + List.length shards;
  let next = Array.copy current in
  List.iter2 (fun sh out -> Shard.lift_into sh out next) shards outs;
  Array.fill dirty 0 ns false;
  next

(* The coordination loop.  [current] must be a full-arity decision set
   consistent with [assignment]; [warm_first] seeds the first round of
   shard solves (None = cold descent).  The first stitched result is
   accepted unconditionally (there is nothing comparable before it: arity
   or rates may have just changed); afterwards a round is accepted only on
   strict objective improvement, else the loop reverts to the best snapshot
   and stops.  Bounded by [max_sweeps] rounds and one move pass per round,
   so it always terminates. *)
let coordinate cfg ~cache ~cluster ~assignment ~current ~warm_first ~dirty ~max_sweeps
    ~(st : sweep_state) =
  let ns = Cluster.n_servers cluster in
  let prices_bw = Array.make ns 0.0 and prices_cpu = Array.make ns 0.0 in
  let best = ref None in
  let current = ref current in
  let warm = ref warm_first in
  let stop = ref false in
  let sweep = ref 0 in
  while (not !stop) && !sweep < max_sweeps do
    incr sweep;
    st.sweeps <- st.sweeps + 1;
    let stitched =
      solve_dirty cfg ~cache ~cluster ~assignment ~dirty ~warm:!warm ~current:!current ~st
    in
    let objective = Es_joint.Objective.of_decisions cluster stitched in
    match !best with
    | Some (b, _, _) when not (objective < b -. 1e-9) ->
        (* Monotone acceptance guard: no strict improvement — revert to the
           best snapshot (decisions and assignment both) and stop. *)
        stop := true
    | _ ->
        best := Some (objective, stitched, Array.copy assignment);
        current := stitched;
        warm := Some stitched;
        if !sweep < max_sweeps then begin
          let tallies = util_tallies cluster stitched in
          price_update cfg ~prices_bw ~prices_cpu tallies;
          let moved =
            move_pass cfg cluster ~prices_bw ~prices_cpu ~tallies ~decisions:stitched
              ~assignment ~dirty ~st
          in
          if moved = 0 then stop := true
        end
  done;
  match !best with
  | Some (objective, decisions, assignment) -> (decisions, objective, assignment)
  | None -> assert false (* max_sweeps >= 1: at least one round ran *)

(* Cold start, mirroring the monolithic optimizer's: per-device best plan
   against a fair share of the fastest server, then balanced greedy
   placement on those plans. *)
let cold_assignment cfg cluster =
  let servers = cluster.Cluster.servers in
  let nd = Cluster.n_devices cluster in
  let fastest = fastest_server servers in
  let per_server = float_of_int (max 1 (nd / Array.length servers)) in
  let sc = cfg.shard in
  let plans =
    Array.init nd (fun device ->
        Optimizer.best_plan_for_grants ?max_candidates:sc.Optimizer.max_candidates
          ~precisions:sc.Optimizer.precisions ~widths:sc.Optimizer.widths cluster ~device
          ~server:fastest
          ~bandwidth_bps:(servers.(fastest).Cluster.ap_bandwidth_bps /. per_server)
          ~compute_share:(1.0 /. per_server))
  in
  Es_alloc.Assign.balanced_greedy cluster ~plans

(* Full-arity placeholder so the first stitch has an array to write over;
   every slot is replaced in the first sweep (all shards dirty). *)
let placeholder_decisions cluster =
  Array.map
    (fun (dev : Cluster.device) ->
      Decision.make ~device:dev.Cluster.dev_id ~server:0
        ~plan:(Es_surgery.Plan.device_only dev.Cluster.model) ())
    cluster.Cluster.devices

let bump_live (st : sweep_state) =
  ignore (Atomic.fetch_and_add live.sweeps st.sweeps);
  ignore (Atomic.fetch_and_add live.shard_solves st.shard_solves);
  ignore (Atomic.fetch_and_add live.moves st.moves)

let solve ?(config = default_config) ?cache ?warm_start ?assignment cluster =
  let t0 = Es_obs.Obs.wall_clock () in
  validate_config config;
  let nd = Cluster.n_devices cluster and ns = Cluster.n_servers cluster in
  if nd = 0 then invalid_arg "Es_scale.solve: empty cluster";
  let st : sweep_state = { sweeps = 0; shard_solves = 0; moves = 0 } in
  (* Repair-or-ignore inputs, like the optimizer's warm-start contract:
     wrong arity is dropped, an out-of-range server re-points at the
     fastest server. *)
  let warm =
    match warm_start with Some w when Array.length w = nd -> Some w | Some _ | None -> None
  in
  let assignment =
    match assignment with
    | Some a when Array.length a = nd && Array.for_all (fun s -> s >= 0 && s < ns) a ->
        Array.copy a
    | Some _ | None -> (
        match warm with
        | Some w ->
            let fastest = fastest_server cluster.Cluster.servers in
            Array.map
              (fun (d : Decision.t) ->
                let s = d.Decision.server in
                if s >= 0 && s < ns then s else fastest)
              w
        | None -> cold_assignment config cluster)
  in
  let current, warm_first =
    match warm with
    | Some w -> (Array.copy w, Some w)
    | None -> (placeholder_decisions cluster, None)
  in
  let dirty = Array.make ns true in
  let decisions, objective, assignment =
    coordinate config ~cache ~cluster ~assignment ~current ~warm_first ~dirty
      ~max_sweeps:config.max_sweeps ~st
  in
  bump_live st;
  ({
     decisions;
     objective;
     assignment;
     sweeps = st.sweeps;
     shard_solves = st.shard_solves;
     moves = st.moves;
     solve_time_s = Es_obs.Obs.wall_clock () -. t0;
   }
    : output)

let solver ?config ?cache () : Optimizer.solver =
  let prev_assignment = ref None in
  fun ~warm cluster ->
    let out = solve ?config ?cache ?warm_start:warm ?assignment:!prev_assignment cluster in
    prev_assignment := Some out.assignment;
    {
      Optimizer.decisions = out.decisions;
      objective = out.objective;
      iterations = out.sweeps;
      trace = [];
      solve_time_s = out.solve_time_s;
    }

module Delta = struct
  type event =
    | Join of Cluster.device
    | Leave of int
    | Rate_change of int * float

  type state = {
    config : config;
    cache : Solve_cache.t option;
    cluster : Cluster.t;
    output : output;
  }

  let init ?(config = default_config) ?cache cluster =
    { config; cache; cluster; output = solve ~config ?cache cluster }

  let cluster st = st.cluster
  let output st = st.output

  (* Pick the join server by applied utilization (worst of the two
     resources), ties toward the lowest index. *)
  let least_loaded_server cluster decisions =
    let tallies = util_tallies cluster decisions in
    let best = ref 0 and best_load = ref infinity in
    Array.iteri
      (fun s (t : tally) ->
        let load = Float.max t.bw_frac t.cpu_frac in
        if load < !best_load then begin
          best := s;
          best_load := load
        end)
      tallies;
    !best

  let apply st event =
    let t0 = Es_obs.Obs.wall_clock () in
    Atomic.incr live.delta_events;
    let cfg = st.config in
    let cluster = st.cluster in
    let nd = Cluster.n_devices cluster and ns = Cluster.n_servers cluster in
    let asg = st.output.assignment in
    let servers = Array.to_list cluster.Cluster.servers in
    let check_device i name =
      if i < 0 || i >= nd then
        invalid_arg (Printf.sprintf "Es_scale.Delta.%s: device %d out of range" name i)
    in
    let cluster', decisions', assignment', touched =
      match event with
      | Join dev ->
          let cluster' =
            Cluster.make ~devices:(Array.to_list cluster.Cluster.devices @ [ dev ]) ~servers
          in
          let s = least_loaded_server cluster st.output.decisions in
          let seed =
            Decision.make ~device:nd ~server:s
              ~plan:(Es_surgery.Plan.device_only dev.Cluster.model) ()
          in
          ( cluster',
            Array.append st.output.decisions [| seed |],
            Array.append asg [| s |],
            [ s ] )
      | Leave i ->
          check_device i "Leave";
          if nd = 1 then invalid_arg "Es_scale.Delta.Leave: cannot remove the last device";
          let keep j = if j < i then j else j + 1 in
          let devices' =
            List.init (nd - 1) (fun j -> cluster.Cluster.devices.(keep j))
          in
          let decisions' =
            Array.init (nd - 1) (fun j ->
                { (st.output.decisions.(keep j)) with Decision.device = j })
          in
          ( Cluster.make ~devices:devices' ~servers,
            decisions',
            Array.init (nd - 1) (fun j -> asg.(keep j)),
            [ asg.(i) ] )
      | Rate_change (i, rate) ->
          check_device i "Rate_change";
          if rate <= 0.0 || not (Float.is_finite rate) then
            invalid_arg "Es_scale.Delta.Rate_change: rate must be positive and finite";
          let devices' =
            List.init nd (fun j ->
                let d = cluster.Cluster.devices.(j) in
                if j = i then { d with Cluster.rate } else d)
          in
          ( Cluster.make ~devices:devices' ~servers,
            Array.copy st.output.decisions,
            Array.copy asg,
            [ asg.(i) ] )
    in
    let st_run : sweep_state = { sweeps = 0; shard_solves = 0; moves = 0 } in
    let dirty = Array.make ns false in
    List.iter (fun s -> dirty.(s) <- true) touched;
    let decisions, objective, assignment =
      coordinate cfg ~cache:st.cache ~cluster:cluster' ~assignment:assignment'
        ~current:decisions' ~warm_first:(Some decisions') ~dirty
        ~max_sweeps:(1 + cfg.delta_sweeps) ~st:st_run
    in
    bump_live st_run;
    let out : output =
      {
        decisions;
        objective;
        assignment;
        sweeps = st_run.sweeps;
        shard_solves = st_run.shard_solves;
        moves = st_run.moves;
        solve_time_s = Es_obs.Obs.wall_clock () -. t0;
      }
    in
    { st with cluster = cluster'; output = out }
end
