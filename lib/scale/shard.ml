open Es_edge

(* One server's subproblem: the sub-cluster of its assigned devices over
   that single server.  Extraction order is the parent's device order, so
   shard numbering — and therefore every shard solve — is deterministic in
   (cluster, assignment). *)

type t = { server : int; part : Subcluster.t }

let make cluster ~assignment ~server =
  let nd = Cluster.n_devices cluster in
  let ns = Cluster.n_servers cluster in
  if server < 0 || server >= ns then
    invalid_arg (Printf.sprintf "Shard.make: server %d out of range" server);
  if Array.length assignment <> nd then invalid_arg "Shard.make: assignment arity mismatch";
  let devices = ref [] in
  for i = nd - 1 downto 0 do
    if assignment.(i) = server then devices := i :: !devices
  done;
  match !devices with
  | [] -> None
  | devices -> Some { server; part = Subcluster.extract cluster ~devices ~servers:[ server ] }

let n_devices t = Subcluster.n_devices t.part

let solve ~config ?cache ?warm t =
  let warm_start = Option.map (Subcluster.restrict t.part) warm in
  let sub = t.part.Subcluster.cluster in
  match cache with
  | Some sc -> Es_joint.Solve_cache.solve sc ~config ?warm_start sub
  | None -> Es_joint.Optimizer.solve ~config ?warm_start sub

let lift_into t (out : Es_joint.Optimizer.output) into =
  Subcluster.lift_into t.part out.Es_joint.Optimizer.decisions into
