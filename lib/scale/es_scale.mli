(** Sharded hierarchical JMSRA solver: per-server subproblems under a
    dual-price coordination layer.

    The monolithic {!Es_joint.Optimizer} couples every device through its
    assignment step; here the coupling is priced instead.  An outer loop
    owns the device→server assignment and per-server dual prices on AP
    bandwidth and server compute.  Each server's (surgery plan, bandwidth,
    compute-share) subproblem over its assigned devices is an independent
    {!Es_joint.Optimizer.solve} ({!Shard}), dispatched as whole-shard tasks
    across the {!Es_util.Par} pool and warm-started per shard.  Between
    rounds, prices ascend on utilization above target and devices make
    best-response moves against price-augmented latency estimates.

    Termination and feasibility: rounds are capped by [max_sweeps]; after
    the first stitch, a round is kept only on strict global-objective
    improvement, else the loop reverts to the best snapshot and stops.
    Every stitched result is a full decision set built from feasible shard
    solves, so the solver always terminates feasible.

    Determinism: fixed ascending sweep orders, lowest-index tie-breaks,
    [jobs = 1] inner solves and input-order shard merges make the output
    bit-identical for every [jobs] value. *)

module Shard = Shard

type config = {
  shard : Es_joint.Optimizer.config;
      (** per-shard solver configuration; its [jobs] is forced to 1 *)
  max_sweeps : int;  (** coordination rounds cap for a full solve, >= 1 *)
  delta_sweeps : int;
      (** extra rounds after the first on a {!Delta.apply} re-solve, >= 0 *)
  price_step : float;  (** dual ascent step on utilization violation *)
  price_target : float;  (** utilization fraction prices steer toward *)
  move_tolerance : float;
      (** a device moves only when the target beats staying put by this
          relative margin, in [0, 1) — hysteresis against price noise *)
  max_moves_per_sweep : int;
      (** accepted-migration budget per sweep (0 = unbounded): every move
          dirties two shards, so unbounded churn makes the next round
          re-solve nearly everything; the budget keeps incremental rounds
          incremental.  Moves past the budget wait for the next sweep. *)
  jobs : int;  (** shard fan-out parallelism; 0 = auto *)
}

val default_config : config
(** [max_sweeps = 3], [delta_sweeps = 1], [price_step = 0.5],
    [price_target = 0.75], [move_tolerance = 0.05],
    [max_moves_per_sweep = 32], [jobs = 0]; the shard
    config is {!Es_joint.Optimizer.default_config} with a single
    trajectory ([multi_start = false]) — inter-shard coordination replaces
    multi-start diversification. *)

val shard_config : config -> Es_joint.Optimizer.config
(** The exact per-shard optimizer config a solve uses: [cfg.shard] with
    [jobs] forced to 1.  Exposed so tests can reproduce single-shard
    solves bit-exactly. *)

type output = {
  decisions : Es_edge.Decision.t array;
  objective : float;
  assignment : int array;  (** final device→server assignment *)
  sweeps : int;  (** coordination rounds run *)
  shard_solves : int;  (** inner solves dispatched (dirty shards only) *)
  moves : int;  (** accepted best-response migrations *)
  solve_time_s : float;
}

val solve :
  ?config:config ->
  ?cache:Es_joint.Solve_cache.t ->
  ?warm_start:Es_edge.Decision.t array ->
  ?assignment:int array ->
  Es_edge.Cluster.t ->
  output
(** Solve the cluster by sharded coordination.  [warm_start] follows the
    monolithic solver's contract (wrong arity ignored); [assignment] seeds
    the device→server map (wrong arity or range ignored) — absent both, a
    cold assignment is derived per-device against a fair share of the
    fastest server and placed by {!Es_alloc.Assign.balanced_greedy}.
    [cache] memoizes shard solves by sub-cluster fingerprint, so untouched
    shards re-solve as lookups.
    @raise Invalid_argument on an empty cluster or a nonsensical config. *)

val solver :
  ?config:config -> ?cache:Es_joint.Solve_cache.t -> unit -> Es_joint.Optimizer.solver
(** An {!Es_joint.Optimizer.solver} adapter for {!Es_joint.Online.run} and
    {!Es_joint.Recover}: each call re-solves sharded, carrying the previous
    call's assignment forward as the seed.  The returned closure is
    stateful; make one per episode. *)

(** Incremental re-solves: join / leave / rate-change events touch one
    shard, so only the affected shard(s) are re-solved (plus up to
    [delta_sweeps] coordination rounds to let neighbours react). *)
module Delta : sig
  type event =
    | Join of Es_edge.Cluster.device
        (** device ids are re-numbered by position; the joining device is
            appended and seeded on the least-loaded server *)
    | Leave of int  (** remove device [i]; later devices shift down by one *)
    | Rate_change of int * float  (** device [i]'s mean rate becomes [r] *)

  type state

  val init :
    ?config:config -> ?cache:Es_joint.Solve_cache.t -> Es_edge.Cluster.t -> state
  (** Full sharded solve; the starting point for a delta sequence. *)

  val apply : state -> event -> state
  (** Apply one event: rebuild the cluster, mark the touched shard(s)
      dirty, and coordinate for [1 + delta_sweeps] rounds starting from the
      carried-over decisions.  The first stitched result is accepted
      unconditionally (the cluster just changed, so the old objective is
      not comparable); with [delta_sweeps = 0] the result is exactly a
      re-solve of the touched shard stitched into the incumbent.
      @raise Invalid_argument on an out-of-range device, a non-positive
      rate, or removing the last device. *)

  val cluster : state -> Es_edge.Cluster.t
  val output : state -> output
end

(** {1 Observability} *)

type counters = { sweeps : int; shard_solves : int; moves : int; delta_events : int }

val counters : unit -> counters
(** Cumulative process-wide totals across all solves since start (or the
    last {!reset_counters}); never read back by the solver. *)

val reset_counters : unit -> unit
