(* Domain-local arena of reusable scratch buffers for the zero-allocation
   numeric kernels (DESIGN.md §15).

   Each domain owns one arena: a stack of float buffers and a stack of int
   buffers.  [borrow_*] hands out the buffer at the current stack depth
   (growing it geometrically when too small — the only allocation, and only
   on first touch or growth); [release_*] pops it back in LIFO order.  The
   steady state therefore allocates nothing: the same solve borrowing the
   same shapes touches only preexisting arrays.

   Aliasing is the hazard this discipline exists to prevent: two live
   borrows must never see the same backing array.  The LIFO stack makes
   aliasing structurally impossible as long as borrows and releases pair up
   — so [release_*] always verifies the released array is physically the
   most recent live borrow and raises [Misuse] otherwise (a mispaired
   release is exactly the bug that would alias the next borrower).  Debug
   mode ([set_debug true]) additionally pads every borrow with canary cells
   beyond the requested length and verifies them on release, catching
   kernels that write past what they asked for (which would corrupt the
   next deeper borrow — aliasing by overflow). *)

type arena = {
  mutable fbufs : float array array;  (* slot per borrow depth *)
  mutable freq : int array;  (* requested length per live borrow *)
  mutable fdepth : int;
  mutable ibufs : int array array;
  mutable ireq : int array;
  mutable idepth : int;
}

exception Misuse of string

(* Flipping debug is a test-harness action; reads on the hot path are a
   single atomic load. *)
let debug_flag = Atomic.make false
let set_debug b = Atomic.set debug_flag b
let debug () = Atomic.get debug_flag

let float_canary = -6.02214076e23
let int_canary = min_int + 77
let canary_pad = 4

let arena_key : arena Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        fbufs = Array.make 8 [||];
        freq = Array.make 8 0;
        fdepth = 0;
        ibufs = Array.make 8 [||];
        ireq = Array.make 8 0;
        idepth = 0;
      })

let live () =
  let a = Domain.DLS.get arena_key in
  (a.fdepth, a.idepth)

(* Slot-stack growth (rare: only when borrow nesting gets deeper than ever
   before on this domain). *)
let grow_slots a =
  let grow_f n = Array.make n [||] and grow_i n = Array.make n 0 in
  if a.fdepth >= Array.length a.fbufs then begin
    let n = 2 * Array.length a.fbufs in
    let fb = grow_f n and fr = grow_i n in
    Array.blit a.fbufs 0 fb 0 (Array.length a.fbufs);
    Array.blit a.freq 0 fr 0 (Array.length a.freq);
    a.fbufs <- fb;
    a.freq <- fr
  end;
  if a.idepth >= Array.length a.ibufs then begin
    let n = 2 * Array.length a.ibufs in
    let ib = Array.make n [||] and ir = grow_i n in
    Array.blit a.ibufs 0 ib 0 (Array.length a.ibufs);
    Array.blit a.ireq 0 ir 0 (Array.length a.ireq);
    a.ibufs <- ib;
    a.ireq <- ir
  end

let borrow_floats n =
  if n < 0 then invalid_arg "Scratch.borrow_floats: negative length";
  let a = Domain.DLS.get arena_key in
  if a.fdepth >= Array.length a.fbufs then grow_slots a;
  let d = a.fdepth in
  let want = n + if debug () then canary_pad else 0 in
  let buf =
    let cur = a.fbufs.(d) in
    if Array.length cur >= want then cur
    else begin
      let cap = max want (2 * Array.length cur) in
      let fresh = Array.make cap 0.0 in
      a.fbufs.(d) <- fresh;
      fresh
    end
  in
  a.freq.(d) <- n;
  a.fdepth <- d + 1;
  if debug () then
    for i = n to Array.length buf - 1 do
      buf.(i) <- float_canary
    done;
  buf

let release_floats buf =
  let a = Domain.DLS.get arena_key in
  if a.fdepth = 0 then raise (Misuse "Scratch.release_floats: nothing borrowed");
  let d = a.fdepth - 1 in
  if not (buf == a.fbufs.(d)) then
    raise (Misuse "Scratch.release_floats: non-LIFO release (aliasing hazard)");
  if debug () then begin
    let n = a.freq.(d) in
    for i = n to Array.length buf - 1 do
      if buf.(i) <> float_canary then
        raise
          (Misuse
             (Printf.sprintf
                "Scratch.release_floats: canary clobbered at %d (borrowed %d)" i n))
    done
  end;
  a.fdepth <- d

let borrow_ints n =
  if n < 0 then invalid_arg "Scratch.borrow_ints: negative length";
  let a = Domain.DLS.get arena_key in
  if a.idepth >= Array.length a.ibufs then grow_slots a;
  let d = a.idepth in
  let want = n + if debug () then canary_pad else 0 in
  let buf =
    let cur = a.ibufs.(d) in
    if Array.length cur >= want then cur
    else begin
      let cap = max want (2 * Array.length cur) in
      let fresh = Array.make cap 0 in
      a.ibufs.(d) <- fresh;
      fresh
    end
  in
  a.ireq.(d) <- n;
  a.idepth <- d + 1;
  if debug () then
    for i = n to Array.length buf - 1 do
      buf.(i) <- int_canary
    done;
  buf

let release_ints buf =
  let a = Domain.DLS.get arena_key in
  if a.idepth = 0 then raise (Misuse "Scratch.release_ints: nothing borrowed");
  let d = a.idepth - 1 in
  if not (buf == a.ibufs.(d)) then
    raise (Misuse "Scratch.release_ints: non-LIFO release (aliasing hazard)");
  if debug () then begin
    let n = a.ireq.(d) in
    for i = n to Array.length buf - 1 do
      if buf.(i) <> int_canary then
        raise
          (Misuse
             (Printf.sprintf "Scratch.release_ints: canary clobbered at %d (borrowed %d)"
                i n))
    done
  end;
  a.idepth <- d

let with_floats n f =
  let buf = borrow_floats n in
  Fun.protect ~finally:(fun () -> release_floats buf) (fun () -> f buf)

let with_ints n f =
  let buf = borrow_ints n in
  Fun.protect ~finally:(fun () -> release_ints buf) (fun () -> f buf)
