(** Exact allocation measurement around a thunk ([Gc.counters] deltas).

    Allocated words are deterministic for a given binary and compiler —
    the machine-independent regression metric the allocation gate in
    [bench/perf_gate.exe] checks absolutely, where wall-clock ratios on
    shared CI runners are noise.  The harness's own constant overhead (the
    [Gc.counters] result tuples) is calibrated once and subtracted from
    every reported figure.

    The thunk must return [unit]: a polymorphic return value would make
    the measured call allocate its own boxed result. *)

type sample = { minor_words : float; promoted_words : float; major_words : float }

val sample : unit -> sample
(** Current allocation counters.  Allocates (its own result); take samples
    outside the region you care about. *)

val allocated_words : sample -> sample -> float
(** Total words allocated between two samples: minor + major − promoted
    (promotions appear in both counters). *)

val words : (unit -> unit) -> float
(** Calibrated total allocated words of one call of the thunk.  The thunk
    is run once first as warm-up (caches, scratch-arena growth, lazy init),
    then measured — i.e. this reports the steady state. *)

val minor_words : (unit -> unit) -> float
(** Calibrated minor-heap words of one steady-state call — the figure the
    zero-allocation kernel tests assert to be exactly [0.0]. *)

val words_cold : (unit -> unit) -> float
(** Like {!words} but without the warm-up call: includes first-touch
    allocation (cache fills, arena growth). *)
