(** Pareto-frontier extraction.

    Surgery-candidate generation produces thousands of (device-compute,
    transfer-bytes, server-compute, negated-accuracy) tuples; the optimizer
    only ever needs the non-dominated ones.  All objectives are minimized. *)

val dominates : float array -> float array -> bool
(** [dominates a b] iff [a] is no worse than [b] in every coordinate and
    strictly better in at least one.  Arrays must have equal length. *)

val frontier : ('a -> float array) -> 'a list -> 'a list
(** [frontier key items] keeps exactly the non-dominated items, preserving
    the relative order of survivors and deduplicating exact-key ties to the
    first occurrence.  Sort-based skyline, O(n log n + n·F·d) for frontier
    size F — the candidate-generation hot path. *)

val frontier_naive : ('a -> float array) -> 'a list -> 'a list
(** The original O(n²·d) scan, kept as the qcheck reference oracle:
    [frontier key items = frontier_naive key items] for all inputs. *)

val frontier_arr : ('a -> float array) -> 'a array -> 'a array
