(** Fixed-size domain pool for deterministic fork/join parallelism.

    A single process-wide pool of worker domains (spawned lazily on first
    parallel call, joined at exit) serves every [parallel_map]-style call in
    the program.  Calls are fork/join: the caller chunks its input, pool
    workers and the caller itself claim chunks off a shared counter, and
    results land in index-addressed slots — so the output order is always the
    input order, independent of scheduling.

    Determinism contract: for a pure [f], [parallel_map ~jobs f xs] returns
    exactly [List.map f xs] for every [jobs].  Effectful [f]s observe the
    usual caveats (side effects run concurrently and unordered); callers that
    need reproducible randomness must pre-split PRNG streams per element
    before the fan-out ({!Prng.split}).

    Nesting is safe and cheap: a parallel call made from inside a pool task
    (or from a worker domain) degrades to plain sequential [List.map], so
    parallel code can call parallel code without deadlocking or
    oversubscribing the machine. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count], capped at 8.  This is what [~jobs:0]
    and an omitted [?jobs] resolve to — on a single-core machine it is 1, so
    auto-sized calls run sequentially there (extra domains cannot add
    throughput and only amplify stop-the-world GC synchronization).  An
    explicit [jobs >= 2] always uses real domains. *)

val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map ~jobs f xs] maps [f] over [xs] on up to [jobs] domains
    (including the calling one).  [jobs] ≤ 1 (or a nested call) runs
    sequentially; [jobs] = 0 or omitted means {!default_jobs}.  Result order
    is input order.  If any application raises, the first exception (in
    completion order) is re-raised in the caller after all chunks settle. *)

val parallel_map_array : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** Array variant of {!parallel_map}; same contract. *)

val parallel_iter : ?jobs:int -> ('a -> unit) -> 'a list -> unit
(** [parallel_map] for effects only. *)

val both : ?jobs:int -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** [both fa fb] runs the two thunks concurrently (when [jobs] > 1) and
    returns both results; the sequential fallback runs [fa] first. *)

val inside_pool : unit -> bool
(** True while executing on a pool worker or inside a chunk the caller is
    processing — i.e. when a nested parallel call would run sequentially.
    Exposed for tests. *)
