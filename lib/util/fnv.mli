(** Streaming FNV-1a (64-bit) accumulator.

    A cheap, deterministic digest over primitive fields, for structural
    fingerprints (cluster topology, decision sets, solver configurations)
    used as memoization keys.  Floats are hashed by their IEEE-754 bits, so
    two fingerprints agree exactly when every hashed field is bit-identical.
    Not cryptographic — collision resistance is the 64-bit birthday bound,
    ample for bounded solve caches. *)

type t

val create : unit -> t

val add_int : t -> int -> unit
val add_int64 : t -> int64 -> unit

val add_float : t -> float -> unit
(** Hashes [Int64.bits_of_float]: distinguishes [-0.] from [0.] and every
    NaN payload — bit-identity, not numeric equality. *)

val add_bool : t -> bool -> unit

val add_string : t -> string -> unit
(** Length-terminated, so adjacent strings cannot collide by reslicing. *)

val value : t -> int64
val to_hex : t -> string
(** 16 lowercase hex digits. *)
