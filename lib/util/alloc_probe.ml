(* Exact allocation measurement around a thunk, via Gc.counters deltas.

   Allocated words are a machine-independent, noise-free metric: the same
   binary on the same compiler allocates the same number of words on every
   run, on every machine — unlike wall clock, which CI runners render
   useless.  The perf gate therefore gates allocations-per-solve absolutely
   (bench/timing.exe --alloc), and the test suite asserts exact zeros for
   the steady-state kernels.

   Gc.counters itself allocates its result (a tuple of three boxed floats),
   so raw deltas carry a small constant harness overhead.  [calibrate]
   measures that constant against a no-op thunk once (minimum over a few
   trials, in case a minor collection lands mid-measurement) and every
   reported figure subtracts it. *)

type sample = { minor_words : float; promoted_words : float; major_words : float }

let sample () =
  let minor_words, promoted_words, major_words = Gc.counters () in
  { minor_words; promoted_words; major_words }

(* Total words allocated between two samples: minor plus major, minus
   promotions (promoted words appear in both counters). *)
let allocated_words a b =
  b.minor_words -. a.minor_words
  +. (b.major_words -. a.major_words)
  -. (b.promoted_words -. a.promoted_words)

let minor_delta a b = b.minor_words -. a.minor_words

let raw_words f =
  let a = sample () in
  f ();
  let b = sample () in
  allocated_words a b

let raw_minor f =
  let a = sample () in
  f ();
  let b = sample () in
  minor_delta a b

let noop () = ()

let calibrate raw =
  ignore (raw noop);
  let best = ref infinity in
  for _ = 1 to 5 do
    let w = raw noop in
    if w < !best then best := w
  done;
  !best

let words_overhead = lazy (calibrate raw_words)
let minor_overhead = lazy (calibrate raw_minor)

let words f =
  let overhead = Lazy.force words_overhead in
  f ();
  (* warm-up call: caches, arena growth, lazy init *)
  raw_words f -. overhead

let minor_words f =
  let overhead = Lazy.force minor_overhead in
  f ();
  raw_minor f -. overhead

let words_cold f =
  let overhead = Lazy.force words_overhead in
  raw_words f -. overhead
