type t = {
  mutable n : int;
  mutable mu : float;
  mutable m2 : float;
  mutable lo : float;
  mutable hi : float;
  mutable total : float;
}

let create () = { n = 0; mu = 0.0; m2 = 0.0; lo = infinity; hi = neg_infinity; total = 0.0 }

let add t x =
  t.n <- t.n + 1;
  let d = x -. t.mu in
  t.mu <- t.mu +. (d /. float_of_int t.n);
  t.m2 <- t.m2 +. (d *. (x -. t.mu));
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x;
  t.total <- t.total +. x

let count t = t.n
let mean t = if t.n = 0 then nan else t.mu
let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min t = t.lo
let max t = t.hi
let sum t = t.total

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let d = b.mu -. a.mu in
    let mu = a.mu +. (d *. float_of_int b.n /. float_of_int n) in
    let m2 = a.m2 +. b.m2 +. (d *. d *. float_of_int a.n *. float_of_int b.n /. float_of_int n) in
    {
      n;
      mu;
      m2;
      lo = Float.min a.lo b.lo;
      hi = Float.max a.hi b.hi;
      total = a.total +. b.total;
    }
  end

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p outside [0,100]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median xs = percentile xs 50.0

let mean_of xs =
  let n = Array.length xs in
  if n = 0 then nan else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let stddev_of xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let mu = mean_of xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. mu) *. (x -. mu))) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let cdf_points xs n =
  if Array.length xs = 0 || n <= 0 then []
  else begin
    let sorted = Array.copy xs in
    Array.sort Float.compare sorted;
    let last = Array.length sorted - 1 in
    List.init (n + 1) (fun i ->
        let p = float_of_int i /. float_of_int n in
        let idx = int_of_float (Float.round (p *. float_of_int last)) in
        (sorted.(idx), p))
  end

let confidence_interval_95 xs =
  let n = Array.length xs in
  if n = 0 then (nan, nan)
  else begin
    let mu = mean_of xs in
    let half = 1.96 *. stddev_of xs /. sqrt (float_of_int n) in
    (mu -. half, mu +. half)
  end

let jain_index xs =
  let n = Array.length xs in
  if n = 0 then nan
  else begin
    Array.iter (fun x -> if x < 0.0 then invalid_arg "Stats.jain_index: negative entry") xs;
    let s = Array.fold_left ( +. ) 0.0 xs in
    let s2 = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
    if s2 = 0.0 then 1.0 else s *. s /. (float_of_int n *. s2)
  end

let histogram xs ~bins =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  if Array.length xs = 0 then [||]
  else begin
    let lo = Array.fold_left Float.min infinity xs in
    let hi = Array.fold_left Float.max neg_infinity xs in
    let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
    let counts = Array.make bins 0 in
    Array.iter
      (fun x ->
        let b = int_of_float ((x -. lo) /. width) in
        let b = Stdlib.min b (bins - 1) in
        counts.(b) <- counts.(b) + 1)
      xs;
    Array.mapi (fun i c -> (lo +. (float_of_int i *. width), c)) counts
  end
