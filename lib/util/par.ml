(* One process-wide pool.  Workers block on a Mutex/Condition task queue;
   tasks are closures that cooperate with a per-call chunk counter, so a
   worker that dequeues a task after the call has finished finds the counter
   exhausted and returns immediately. *)

type task = unit -> unit

type pool_state = {
  m : Mutex.t;
  cv : Condition.t;
  queue : task Queue.t;
  mutable workers : unit Domain.t list;
  mutable started : bool;
  mutable stopping : bool;
}

let pool =
  {
    m = Mutex.create ();
    cv = Condition.create ();
    queue = Queue.create ();
    workers = [];
    started = false;
    stopping = false;
  }
[@@es_lint.guarded "pool.m"]

(* Marks pool workers, and the caller while it processes chunks, so nested
   parallel calls degrade to sequential instead of deadlocking on the queue. *)
let in_pool : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

let inside_pool () = !(Domain.DLS.get in_pool)

let n_workers = lazy (max 1 (min 7 (Domain.recommended_domain_count () - 1)))

(* Auto-sizing for [jobs = 0]: the recommended domain count, capped.  On a
   single-core machine this is 1 — sequential — because extra domains there
   cannot add throughput and every one amplifies stop-the-world minor-GC
   synchronization.  An explicit [jobs >= 2] still spawns real domains even
   on one core (useful for exercising cross-domain code paths). *)
let default_jobs () = max 1 (min 8 (Domain.recommended_domain_count ()))

let worker () =
  Domain.DLS.get in_pool := true;
  let rec loop () =
    Mutex.lock pool.m;
    while Queue.is_empty pool.queue && not pool.stopping do
      Condition.wait pool.cv pool.m
    done;
    if Queue.is_empty pool.queue then Mutex.unlock pool.m (* stopping *)
    else begin
      let t = Queue.pop pool.queue in
      Mutex.unlock pool.m;
      t ();
      loop ()
    end
  in
  loop ()

let shutdown () =
  Mutex.lock pool.m;
  pool.stopping <- true;
  Condition.broadcast pool.cv;
  let ws = pool.workers in
  pool.workers <- [];
  Mutex.unlock pool.m;
  List.iter Domain.join ws

let ensure_started () =
  Mutex.lock pool.m;
  if not pool.started then begin
    pool.started <- true;
    pool.workers <- List.init (Lazy.force n_workers) (fun _ -> Domain.spawn worker);
    at_exit shutdown
  end;
  Mutex.unlock pool.m

let submit t =
  Mutex.lock pool.m;
  Queue.add t pool.queue;
  Condition.signal pool.cv;
  Mutex.unlock pool.m

let resolve_jobs = function
  | None | Some 0 -> default_jobs ()
  | Some j when j < 1 -> 1
  | Some j -> j

(* Fork/join over [n] indices: [run_chunk lo hi] covers [lo, hi).  Chunks are
   claimed off an atomic counter by pool workers and the caller alike; a
   worker arriving late just sees the counter exhausted.  All results are
   index-addressed by the closure, so ordering is deterministic. *)
let run_indexed ~jobs ~n run_chunk =
  let nchunks = min n (jobs * 4) in
  let next = Atomic.make 0 in
  let remaining = ref nchunks in
  let done_m = Mutex.create () in
  let done_cv = Condition.create () in
  let first_exn = ref None in
  let work () =
    let flag = Domain.DLS.get in_pool in
    let saved = !flag in
    flag := true;
    let rec claim () =
      let c = Atomic.fetch_and_add next 1 in
      if c < nchunks then begin
        (try run_chunk (c * n / nchunks) ((c + 1) * n / nchunks)
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           Mutex.lock done_m;
           if !first_exn = None then first_exn := Some (e, bt);
           Mutex.unlock done_m);
        Mutex.lock done_m;
        decr remaining;
        if !remaining = 0 then Condition.broadcast done_cv;
        Mutex.unlock done_m;
        claim ()
      end
    in
    claim ();
    flag := saved
  in
  ensure_started ();
  for _ = 2 to min jobs (nchunks + 1) do
    submit work
  done;
  work ();
  Mutex.lock done_m;
  while !remaining > 0 do
    Condition.wait done_cv done_m
  done;
  Mutex.unlock done_m;
  match !first_exn with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let parallel_map_array ?jobs f arr =
  let jobs = resolve_jobs jobs in
  let n = Array.length arr in
  if n = 0 then [||]
  else if jobs <= 1 || n = 1 || inside_pool () then Array.map f arr
  else begin
    let out = Array.make n None in
    run_indexed ~jobs:(min jobs n) ~n (fun lo hi ->
        for i = lo to hi - 1 do
          out.(i) <- Some (f arr.(i))
        done);
    Array.map (function Some v -> v | None -> assert false) out
  end

let parallel_map ?jobs f l =
  match l with
  | [] -> []
  | [ x ] -> [ f x ]
  | l ->
      let jobs = resolve_jobs jobs in
      if jobs <= 1 || inside_pool () then List.map f l
      else Array.to_list (parallel_map_array ~jobs f (Array.of_list l))

let parallel_iter ?jobs f l = ignore (parallel_map ?jobs f l)

let both ?jobs fa fb =
  let jobs = resolve_jobs jobs in
  if jobs <= 1 || inside_pool () then begin
    let a = fa () in
    let b = fb () in
    (a, b)
  end
  else begin
    let a = ref None and b = ref None in
    run_indexed ~jobs:2 ~n:2 (fun lo hi ->
        for i = lo to hi - 1 do
          if i = 0 then a := Some (fa ()) else b := Some (fb ())
        done);
    match (!a, !b) with
    | Some a, Some b -> (a, b)
    | _ -> assert false
  end
