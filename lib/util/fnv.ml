(* FNV-1a, 64-bit.  Streaming accumulator over primitive fields; used for
   structural fingerprints (cluster / decision / solver config) where we
   need a cheap, deterministic, allocation-light digest — not
   cryptographic strength. *)

type t = int64 ref

let offset_basis = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let create () = ref offset_basis

let add_byte (h : t) b =
  h := Int64.mul (Int64.logxor !h (Int64.of_int (b land 0xff))) prime

let add_int64 h x =
  for i = 0 to 7 do
    add_byte h (Int64.to_int (Int64.shift_right_logical x (8 * i)))
  done

let add_int h x = add_int64 h (Int64.of_int x)
let add_float h x = add_int64 h (Int64.bits_of_float x)
let add_bool h b = add_byte h (if b then 1 else 0)

let add_string h s =
  String.iter (fun c -> add_byte h (Char.code c)) s;
  (* Length terminator: "ab"+"c" must not collide with "a"+"bc". *)
  add_int h (String.length s)

let value h = !h
let to_hex h = Printf.sprintf "%016Lx" !h
