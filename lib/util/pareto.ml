let dominates a b =
  let n = Array.length a in
  if n <> Array.length b then invalid_arg "Pareto.dominates: dimension mismatch";
  let no_worse = ref true in
  let strictly = ref false in
  for i = 0 to n - 1 do
    if a.(i) > b.(i) then no_worse := false;
    if a.(i) < b.(i) then strictly := true
  done;
  !no_worse && !strictly

let frontier_naive key items =
  let keyed = List.map (fun x -> (key x, x)) items in
  let non_dominated (k, _) =
    not (List.exists (fun (k', _) -> dominates k' k) keyed)
  in
  (* Keep one representative among exact duplicates: the first occurrence. *)
  let rec dedup seen = function
    | [] -> []
    | ((k, _) as item) :: rest ->
        if List.exists (fun k' -> k' = k) seen then dedup seen rest
        else item :: dedup (k :: seen) rest
  in
  dedup [] (List.filter non_dominated keyed) |> List.map snd

(* Sort-based skyline.  Domination implies strict lexicographic precedence,
   so after sorting by (key lex, input index) every potential dominator of an
   item precedes it, and by induction the already-kept frontier members
   suffice as dominance witnesses: if y dominates x then either y is kept, or
   y shares its key with an earlier kept item, or y is itself dominated by
   something lexicographically even smaller — following that chain bottoms
   out at a kept dominator of x.  Exact-duplicate keys sort adjacent with the
   smallest input index first, matching the first-occurrence dedup of the
   naive version.  O(n log n + n·F·d) for frontier size F vs the old
   O(n²·d). *)
let skyline ~n ~key_at =
  let keys = Array.init n key_at in
  let d = Array.length keys.(0) in
  Array.iter
    (fun k ->
      if Array.length k <> d then invalid_arg "Pareto.frontier: dimension mismatch")
    keys;
  let lex_cmp a b =
    let rec go i =
      if i = d then 0
      else
        let c = Float.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun i j ->
      let c = lex_cmp keys.(i) keys.(j) in
      if c <> 0 then c else Int.compare i j)
    order;
  let kept_keys = Array.make n [||] in
  let kept_n = ref 0 in
  let keep = Array.make n false in
  for r = 0 to n - 1 do
    let i = order.(r) in
    let k = keys.(i) in
    let duplicate = r > 0 && lex_cmp k keys.(order.(r - 1)) = 0 in
    if not duplicate then begin
      let dominated = ref false in
      let j = ref 0 in
      while (not !dominated) && !j < !kept_n do
        if dominates kept_keys.(!j) k then dominated := true;
        incr j
      done;
      if not !dominated then begin
        kept_keys.(!kept_n) <- k;
        incr kept_n;
        keep.(i) <- true
      end
    end
  done;
  keep

let frontier key items =
  match items with
  | [] | [ _ ] -> items
  | _ ->
      let arr = Array.of_list items in
      let n = Array.length arr in
      let keep = skyline ~n ~key_at:(fun i -> key arr.(i)) in
      let out = ref [] in
      for i = n - 1 downto 0 do
        if keep.(i) then out := arr.(i) :: !out
      done;
      !out

let frontier_arr key items =
  let n = Array.length items in
  if n <= 1 then Array.copy items
  else begin
    let keep = skyline ~n ~key_at:(fun i -> key items.(i)) in
    let count = ref 0 in
    Array.iter (fun b -> if b then incr count) keep;
    let out = Array.make !count items.(0) in
    let w = ref 0 in
    for i = 0 to n - 1 do
      if keep.(i) then begin
        out.(!w) <- items.(i);
        incr w
      end
    done;
    out
  end
