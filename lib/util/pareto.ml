(* es_lint: hot *)

let dominates a b =
  let n = Array.length a in
  if n <> Array.length b then invalid_arg "Pareto.dominates: dimension mismatch";
  let no_worse = ref true in
  let strictly = ref false in
  for i = 0 to n - 1 do
    if a.(i) > b.(i) then no_worse := false;
    if a.(i) < b.(i) then strictly := true
  done;
  !no_worse && !strictly

let frontier_naive key items =
  (* es_lint: cold — the O(n²) reference oracle, list-based on purpose *)
  let keyed = List.map (fun x -> (key x, x)) items in
  let non_dominated (k, _) =
    (* es_lint: cold *)
    not (List.exists (fun (k', _) -> dominates k' k) keyed)
  in
  (* Keep one representative among exact duplicates: the first occurrence. *)
  let rec dedup seen = function
    | [] -> []
    | ((k, _) as item) :: rest ->
        (* es_lint: cold *)
        if List.exists (fun k' -> k' = k) seen then dedup seen rest
        else item :: dedup (k :: seen) rest
  in
  (* es_lint: cold *)
  dedup [] (List.filter non_dominated keyed) |> List.map snd

(* The skyline internals run on rows of one flat scratch buffer: row [i]
   lives at [flat.(i*d) .. flat.(i*d + d - 1)].  Comparators and dominance
   tests are top-level functions over (buffer, d, row, row) so the sort and
   the frontier scan construct no closures and box no floats. *)

(* Lexicographic row order, ties broken by row index — a strict total
   order, so any comparison sort produces the same permutation the old
   [Array.sort] closure did. *)
let row_cmp flat d i j =
  let r = ref 0 in
  let c = ref 0 in
  while !r = 0 && !c < d do
    let cmp = Float.compare flat.((i * d) + !c) flat.((j * d) + !c) in
    if cmp <> 0 then r := cmp;
    incr c
  done;
  if !r <> 0 then !r else Int.compare i j

let rows_lex_equal flat d i j =
  let eq = ref true in
  let c = ref 0 in
  while !eq && !c < d do
    if Float.compare flat.((i * d) + !c) flat.((j * d) + !c) <> 0 then eq := false;
    incr c
  done;
  !eq

(* Same float comparisons as [dominates], reading two rows of [flat]. *)
let row_dominates flat d i j =
  let no_worse = ref true in
  let strictly = ref false in
  for c = 0 to d - 1 do
    let a = flat.((i * d) + c) and b = flat.((j * d) + c) in
    if a > b then no_worse := false;
    if a < b then strictly := true
  done;
  !no_worse && !strictly

(* In-place heapsort of [order.(0..n-1)] under [row_cmp] (strict total
   order, so stability is moot and the result is unique). *)
let sift_down flat d (order : int array) n root =
  let j = ref root in
  let walking = ref true in
  while !walking do
    let l = (2 * !j) + 1 in
    if l >= n then walking := false
    else begin
      let c =
        if l + 1 < n && row_cmp flat d order.(l) order.(l + 1) < 0 then l + 1 else l
      in
      if row_cmp flat d order.(!j) order.(c) < 0 then begin
        let t = order.(!j) in
        order.(!j) <- order.(c);
        order.(c) <- t;
        j := c
      end
      else walking := false
    end
  done

let sort_order flat d order n =
  for root = (n / 2) - 1 downto 0 do
    sift_down flat d order n root
  done;
  for last = n - 1 downto 1 do
    let t = order.(0) in
    order.(0) <- order.(last);
    order.(last) <- t;
    sift_down flat d order last 0
  done

(* Sort-based skyline.  Domination implies strict lexicographic precedence,
   so after sorting by (key lex, input index) every potential dominator of an
   item precedes it, and by induction the already-kept frontier members
   suffice as dominance witnesses: if y dominates x then either y is kept, or
   y shares its key with an earlier kept item, or y is itself dominated by
   something lexicographically even smaller — following that chain bottoms
   out at a kept dominator of x.  Exact-duplicate keys sort adjacent with the
   smallest input index first, matching the first-occurrence dedup of the
   naive version.  O(n log n + n·F·d) for frontier size F vs the old
   O(n²·d); all working state is borrowed scratch, so the steady state
   allocates only the caller-visible outputs. *)
let skyline ~n ~key_at =
  let k0 = key_at 0 in
  let d = Array.length k0 in
  let flat = Scratch.borrow_floats (n * d) in
  let order = Scratch.borrow_ints n in
  (* kept.(0..kept_n-1): row indices of frontier members found so far *)
  let kept = Scratch.borrow_ints n in
  let keep = Array.make n false in
  let dim_ok = ref true in
  for i = 0 to n - 1 do
    let k = if i = 0 then k0 else key_at i in
    if Array.length k <> d then dim_ok := false
    else
      for c = 0 to d - 1 do
        flat.((i * d) + c) <- k.(c)
      done;
    order.(i) <- i
  done;
  if not !dim_ok then begin
    Scratch.release_ints kept;
    Scratch.release_ints order;
    Scratch.release_floats flat;
    invalid_arg "Pareto.frontier: dimension mismatch"
  end;
  sort_order flat d order n;
  let kept_n = ref 0 in
  for r = 0 to n - 1 do
    let i = order.(r) in
    let duplicate = r > 0 && rows_lex_equal flat d i order.(r - 1) in
    if not duplicate then begin
      let dominated = ref false in
      let j = ref 0 in
      while (not !dominated) && !j < !kept_n do
        if row_dominates flat d kept.(!j) i then dominated := true;
        incr j
      done;
      if not !dominated then begin
        kept.(!kept_n) <- i;
        incr kept_n;
        keep.(i) <- true
      end
    end
  done;
  Scratch.release_ints kept;
  Scratch.release_ints order;
  Scratch.release_floats flat;
  keep

let frontier key items =
  match items with
  | [] | [ _ ] -> items
  | _ ->
      let arr = Array.of_list items in
      let n = Array.length arr in
      (* es_lint: cold — per-call key adapter, one closure per frontier *)
      let keep = skyline ~n ~key_at:(fun i -> key arr.(i)) in
      let out = ref [] in
      for i = n - 1 downto 0 do
        if keep.(i) then out := arr.(i) :: !out
      done;
      !out

let frontier_arr key items =
  let n = Array.length items in
  if n <= 1 then Array.copy items
  else begin
    (* es_lint: cold — per-call key adapter, one closure per frontier *)
    let keep = skyline ~n ~key_at:(fun i -> key items.(i)) in
    let count = ref 0 in
    for i = 0 to n - 1 do
      if keep.(i) then incr count
    done;
    let out = Array.make !count items.(0) in
    let w = ref 0 in
    for i = 0 to n - 1 do
      if keep.(i) then begin
        out.(!w) <- items.(i);
        incr w
      end
    done;
    out
  end
