(** Domain-local arena of reusable float/int scratch buffers.

    The zero-allocation kernels (DESIGN.md §15) borrow their working arrays
    from here instead of allocating per call: each domain keeps a stack of
    buffers per element type, [borrow_*] returns the buffer at the current
    depth (growing it geometrically only when too small), and [release_*]
    pops it back.  After warm-up a solve that borrows the same shapes
    allocates nothing.

    Discipline: borrows and releases must pair in LIFO order within one
    domain — [release_*] verifies physical identity with the most recent
    live borrow and raises {!Misuse} otherwise, because a mispaired release
    would alias the next borrower onto a live buffer.  Buffer contents are
    unspecified at borrow time (no clearing on the hot path); never hold a
    borrowed buffer across a release of an earlier borrow.

    Debug mode pads every borrow with canary cells past the requested
    length and verifies them on release, catching out-of-bounds writes that
    would corrupt a deeper borrow.  Do not toggle debug while borrows are
    live. *)

exception Misuse of string
(** Raised on non-LIFO release, release with nothing borrowed, or a
    clobbered debug canary. *)

val borrow_floats : int -> float array
(** [borrow_floats n] returns a buffer of length at least [n] (unspecified
    contents).  Allocation-free once the arena slot has grown to [n].
    @raise Invalid_argument on negative [n]. *)

val release_floats : float array -> unit
(** Return the most recent live float borrow.  @raise Misuse otherwise. *)

val borrow_ints : int -> int array
val release_ints : int array -> unit

val with_floats : int -> (float array -> 'a) -> 'a
(** Borrow/release bracketed by [Fun.protect].  Convenient and
    exception-safe, but the closure argument allocates at the call site —
    use the raw borrow/release pair inside allocation-budgeted kernels. *)

val with_ints : int -> (int array -> 'a) -> 'a

val set_debug : bool -> unit
(** Enable canary padding + verification on every borrow/release (test
    harness use; borrows become slightly larger and releases O(pad)). *)

val debug : unit -> bool

val live : unit -> int * int
(** Current (float, int) borrow depths on this domain — (0, 0) when every
    borrow has been released. *)
