(** Calendar queue: a bucketed priority queue with O(1) amortized insert
    and pop-min (Brown 1988), keyed by float priority.

    The future-event list of the discrete-event simulator.  Priorities map
    to a ring of time buckets of uniform [width]; pop scans forward from
    the last-popped bucket, so a schedule whose events are spread within a
    few bucket widths of the current time — the steady state of a
    simulation — pays a constant number of bucket probes per operation
    where a binary heap pays O(log n) comparisons.  The bucket array is
    resized (and the width re-estimated from sampled inter-event gaps)
    when the population doubles or quarters, keeping occupancy near one
    event per bucket; a far-future jump past a whole empty lap of the
    calendar falls back to a direct minimum search that repositions the
    scan.

    Ties pop in insertion order (entries carry a sequence number), exactly
    like {!Heap} — which the test suite keeps as the reference oracle for
    this module. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push q prio v] inserts [v] with priority [prio]; smaller pops first,
    equal priorities pop in insertion order.
    @raise Invalid_argument when [prio] is negative, NaN or infinite
    (simulation timestamps are finite and non-negative; the bucket index
    of an infinite priority is meaningless). *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element. *)

val pop_exn : 'a t -> float * 'a
(** @raise Invalid_argument when empty. *)

val pop_before : 'a t -> float -> (float * 'a) option
(** [pop_before q horizon] pops the minimum element if its priority is
    [<= horizon], else returns [None] and leaves the queue intact — the
    single-scan primitive behind [Engine.run ?until] (no separate peek
    then pop). *)

val peek : 'a t -> (float * 'a) option

val clear : 'a t -> unit

val to_sorted_list : 'a t -> (float * 'a) list
(** Non-destructive: elements in pop order (priority, then insertion). *)

