(* Calendar queue (Brown 1988).  Entries live in singly-linked,
   (prio, seq)-sorted bucket lists; bucket = virtual bucket mod array
   size, virtual bucket = floor(prio / width).  [cur_vb] is the scan
   position: the invariant is that no entry has a virtual bucket below
   it, so pop only ever looks forward.

   Entries are slots in a struct-of-arrays pool rather than heap-allocated
   nodes: priorities live in an unboxed float array, links and bucket
   heads/tails are int arrays (slot index, -1 = nil).  A push is then a few
   scalar array stores — no node allocation, no option boxing, and no GC
   write barrier except the single [value] store — which is what lets the
   push side keep up with a binary heap's near-free append while the pop
   side stays O(1). *)

type 'a t = {
  (* Slot pool: parallel arrays indexed by slot id.  [nxt] doubles as the
     free list (threaded through freed slots, [free] its head). *)
  mutable prio : float array;
  mutable seq : int array;
  mutable value : 'a array;
  mutable nxt : int array;
  mutable free : int;
  mutable pool_fill : int;  (* slots ever handed out; above = untouched *)
  (* Calendar proper. *)
  mutable heads : int array;
  mutable tails : int array;
  mutable mask : int;  (* bucket count - 1; count is a power of two *)
  mutable width : float;  (* seconds of simulated time per bucket *)
  mutable inv_width : float;  (* 1/width — buckets are found by multiply *)
  mutable size : int;
  mutable next_seq : int;  (* monotone tie-breaker: FIFO within a prio *)
  mutable cur_vb : int;  (* virtual bucket the next pop scans from *)
}

let min_buckets = 8
let nil = -1

(* Virtual-bucket indices are capped so [prio /. width] can never leave
   int range (absurdly far-future priorities all share the last virtual
   bucket; the sorted bucket list keeps them ordered). *)
let vb_cap = 1 lsl 55

let create () =
  {
    prio = [||];
    seq = [||];
    value = [||];
    nxt = [||];
    free = nil;
    pool_fill = 0;
    heads = Array.make min_buckets nil;
    tails = Array.make min_buckets nil;
    mask = min_buckets - 1;
    width = 1.0;
    inv_width = 1.0;
    size = 0;
    next_seq = 0;
    cur_vb = 0;
  }

let length t = t.size
let is_empty t = t.size = 0

let vb_of t prio =
  let q = prio *. t.inv_width in
  if q >= float_of_int vb_cap then vb_cap else int_of_float q

(* (prio, seq) lexicographic order — the pop order. *)
let before t i j =
  t.prio.(i) < t.prio.(j) || (t.prio.(i) = t.prio.(j) && t.seq.(i) < t.seq.(j))

(* [vb] must be [vb_of t t.prio.(i)] — passed in because every caller has
   already computed it. *)
let insert_slot t i vb =
  let b = vb land t.mask in
  let tl = t.tails.(b) in
  if tl = nil then begin
    t.heads.(b) <- i;
    t.tails.(b) <- i
  end
  else if before t tl i then begin
    (* The common case: pushes carry a fresh (monotone) seq, so ties and
       later times always append at the tail in O(1). *)
    t.nxt.(tl) <- i;
    t.tails.(b) <- i
  end
  else begin
    (* Out-of-order arrival (a push into the past, or reinsertion during
       a rebuild): splice before the first entry ordered after it. *)
    let prev = ref nil in
    let cur = ref t.heads.(b) in
    while !cur <> nil && before t !cur i do
      prev := !cur;
      cur := t.nxt.(!cur)
    done;
    t.nxt.(i) <- !cur;
    if !prev = nil then t.heads.(b) <- i else t.nxt.(!prev) <- i;
    if !cur = nil then t.tails.(b) <- i
  end

(* Every live slot, bucket-major (unordered across buckets). *)
let gather t =
  let all = Array.make (max 1 t.size) nil in
  let k = ref 0 in
  Array.iter
    (fun h ->
      let cur = ref h in
      while !cur <> nil do
        all.(!k) <- !cur;
        incr k;
        cur := t.nxt.(!cur)
      done)
    t.heads;
  if t.size = 0 then [||] else all

(* Width rule: ~3x the population's mean inter-event gap, estimated as the
   priority span of a stride-sample divided by the FULL population size
   (the sample's own adjacent gaps average span/64 regardless of how many
   events share that span — using them directly would oversize buckets by
   n/64 and collapse the calendar into a few linearly-scanned lists).
   Falls back to the old width when everything pending shares one
   timestamp. *)
let sampled_width t all old_width =
  let n = Array.length all in
  if n < 2 then old_width
  else begin
    let m = min 64 n in
    let stride = n / m in
    let lo = ref t.prio.(all.(0)) and hi = ref t.prio.(all.(0)) in
    for i = 0 to m - 1 do
      let p = t.prio.(all.(i * stride)) in
      if p < !lo then lo := p;
      if p > !hi then hi := p
    done;
    let span = !hi -. !lo in
    if span <= 0.0 then old_width else 3.0 *. span /. float_of_int n
  end

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go min_buckets

let rebuild t =
  let all = gather t in
  let n = Array.length all in
  let count = next_pow2 (max min_buckets n) in
  let max_prio = Array.fold_left (fun acc i -> Float.max acc t.prio.(i)) 0.0 all in
  let w = sampled_width t all t.width in
  (* Floors: stay above float noise, and keep every seen priority's
     virtual bucket well inside int range. *)
  let w = Float.max w (Float.max 1e-9 (max_prio /. 1e12)) in
  t.heads <- Array.make count nil;
  t.tails <- Array.make count nil;
  t.mask <- count - 1;
  t.width <- w;
  t.inv_width <- 1.0 /. w;
  Array.iter (fun i -> t.nxt.(i) <- nil) all;
  let min_vb = ref max_int in
  Array.iter
    (fun i ->
      let vb = vb_of t t.prio.(i) in
      if vb < !min_vb then min_vb := vb;
      insert_slot t i vb)
    all;
  t.cur_vb <- (if n = 0 then 0 else !min_vb)

(* Take a free slot, growing the pool by doubling.  The pool starts empty
   because an ['a] array needs a seed element — the first pushed value. *)
let alloc_slot t v =
  if t.free <> nil then begin
    let i = t.free in
    t.free <- t.nxt.(i);
    i
  end
  else begin
    let cap = Array.length t.prio in
    if t.pool_fill >= cap then begin
      let ncap = max 16 (2 * cap) in
      let np = Array.make ncap 0.0
      and ns = Array.make ncap 0
      and nv = Array.make ncap v
      and nn = Array.make ncap nil in
      Array.blit t.prio 0 np 0 cap;
      Array.blit t.seq 0 ns 0 cap;
      Array.blit t.value 0 nv 0 cap;
      Array.blit t.nxt 0 nn 0 cap;
      t.prio <- np;
      t.seq <- ns;
      t.value <- nv;
      t.nxt <- nn
    end;
    let i = t.pool_fill in
    t.pool_fill <- t.pool_fill + 1;
    i
  end

(* Return a slot to the free list.  The [value] slot is deliberately left
   in place (there is no dummy ['a] to overwrite with); [release_pool]
   drops the whole pool the moment the queue drains, so popped values are
   retained at most until the queue next becomes empty. *)
let free_slot t i =
  t.nxt.(i) <- t.free;
  t.free <- i

let release_pool t =
  t.prio <- [||];
  t.seq <- [||];
  t.value <- [||];
  t.nxt <- [||];
  t.free <- nil;
  t.pool_fill <- 0

let push t prio value =
  if not (prio >= 0.0 && Float.is_finite prio) then
    invalid_arg "Calendar_queue.push: priority must be finite and >= 0";
  let i = alloc_slot t value in
  t.prio.(i) <- prio;
  t.seq.(i) <- t.next_seq;
  t.value.(i) <- value;
  t.nxt.(i) <- nil;
  t.next_seq <- t.next_seq + 1;
  let vb = vb_of t prio in
  insert_slot t i vb;
  t.size <- t.size + 1;
  if t.size = 1 || vb < t.cur_vb then t.cur_vb <- vb;
  if t.size > 2 * (t.mask + 1) then rebuild t

(* Bucket holding the next entry to pop, or -1 when empty; leaves [cur_vb]
   on that entry's virtual bucket.  One forward scan: an entry in the slot
   being probed is detected via its own virtual bucket, so a far-future
   entry sharing the bucket ring position doesn't stop the scan early.
   After a fruitless full lap (population spread far beyond one calendar
   span) a direct search over the bucket heads finds the minimum and jumps
   the scan position to it. *)
let locate t =
  if t.size = 0 then -1
  else begin
    let nb = t.mask + 1 in
    let found = ref (-1) in
    let vb = ref t.cur_vb in
    let steps = ref 0 in
    while !found < 0 && !steps < nb do
      let h = t.heads.(!vb land t.mask) in
      if h <> nil && vb_of t t.prio.(h) <= !vb then begin
        found := !vb land t.mask;
        t.cur_vb <- !vb
      end
      else begin
        incr vb;
        incr steps
      end
    done;
    if !found >= 0 then !found
    else begin
      let best = ref nil in
      Array.iter
        (fun h -> if h <> nil && (!best = nil || before t h !best) then best := h)
        t.heads;
      if !best = nil then -1
      else begin
        let vb = vb_of t t.prio.(!best) in
        t.cur_vb <- vb;
        vb land t.mask
      end
    end
  end

let pop_before t horizon =
  let b = locate t in
  if b < 0 then None
  else begin
    let h = t.heads.(b) in
    if h = nil then None
    else if t.prio.(h) <= horizon then begin
      t.heads.(b) <- t.nxt.(h);
      if t.nxt.(h) = nil then t.tails.(b) <- nil;
      let p = t.prio.(h) and v = t.value.(h) in
      free_slot t h;
      t.size <- t.size - 1;
      if t.size = 0 then release_pool t
      (* Wide hysteresis (grow past 2x buckets, shrink under 1/4) so a
         push/pop sequence hovering at a threshold cannot thrash
         O(n) rebuilds. *)
      else if t.mask + 1 > min_buckets && t.size < (t.mask + 1) / 4 then rebuild t;
      Some (p, v)
    end
    else None
  end

let pop t = pop_before t infinity

let pop_exn t =
  match pop t with
  | Some e -> e
  | None -> invalid_arg "Calendar_queue.pop_exn: empty"

let peek t =
  let b = locate t in
  if b < 0 then None
  else
    let h = t.heads.(b) in
    if h = nil then None else Some (t.prio.(h), t.value.(h))

let clear t =
  release_pool t;
  t.heads <- Array.make min_buckets nil;
  t.tails <- Array.make min_buckets nil;
  t.mask <- min_buckets - 1;
  t.width <- 1.0;
  t.inv_width <- 1.0;
  t.size <- 0;
  t.cur_vb <- 0

let to_sorted_list t =
  let all = gather t in
  Array.sort
    (fun i j ->
      match Float.compare t.prio.(i) t.prio.(j) with
      | 0 -> Int.compare t.seq.(i) t.seq.(j)
      | c -> c)
    all;
  Array.to_list (Array.map (fun i -> (t.prio.(i), t.value.(i))) all)
