type node = {
  id : int;
  node_name : string;
  layer : Layer.t;
  preds : int array;
  exitable : bool;
}

type t = {
  uid : int;
  name : string;
  input_shape : Shape.t;
  nodes : node array;
  output : int;
  shapes : Shape.t array;
}

let pred_shapes input_shape shapes node =
  if Array.length node.preds = 0 then [ input_shape ]
  else Array.to_list (Array.map (fun p -> shapes.(p)) node.preds)

module Builder = struct
  type b = {
    bname : string;
    binput : Shape.t;
    mutable rev_nodes : node list;
    mutable bshapes : Shape.t list;  (* reversed *)
    mutable count : int;
  }

  let create ~name ~input =
    let b = { bname = name; binput = input; rev_nodes = []; bshapes = []; count = 0 } in
    let input_node =
      { id = 0; node_name = "input"; layer = Layer.Input; preds = [||]; exitable = false }
    in
    b.rev_nodes <- [ input_node ];
    b.bshapes <- [ input ];
    b.count <- 1;
    (b, 0)

  let shape_of b id = List.nth b.bshapes (b.count - 1 - id)

  let add b ?name ?(exitable = false) layer preds =
    List.iter
      (fun p ->
        if p < 0 || p >= b.count then
          invalid_arg (Printf.sprintf "Graph.Builder.add: unknown predecessor %d" p))
      preds;
    if preds = [] then invalid_arg "Graph.Builder.add: a non-input node needs predecessors";
    let id = b.count in
    let node_name = match name with Some n -> n | None -> Layer.name layer in
    let shape = Layer.output_shape layer (List.map (shape_of b) preds) in
    let node = { id; node_name; layer; preds = Array.of_list preds; exitable } in
    b.rev_nodes <- node :: b.rev_nodes;
    b.bshapes <- shape :: b.bshapes;
    b.count <- id + 1;
    id

  (* Atomic: graphs are built from multiple domains under --jobs, and a
     duplicated uid would alias entries in the per-(graph, processor)
     profile caches. *)
  let next_uid =
    let counter = Atomic.make 0 in
    fun () -> Atomic.fetch_and_add counter 1 + 1

  let finish ?output b =
    let nodes = Array.of_list (List.rev b.rev_nodes) in
    let shapes = Array.of_list (List.rev b.bshapes) in
    let output = match output with Some o -> o | None -> b.count - 1 in
    if output < 0 || output >= b.count then invalid_arg "Graph.Builder.finish: bad output id";
    { uid = next_uid (); name = b.bname; input_shape = b.binput; nodes; output; shapes }
end

let sequential ~name ~input layers =
  let b, first = Builder.create ~name ~input in
  let last =
    List.fold_left
      (fun prev (lname, exitable, layer) -> Builder.add b ?name:lname ~exitable layer [ prev ])
      first layers
  in
  Builder.finish ~output:last b

let n_nodes g = Array.length g.nodes
let node_shape g id = g.shapes.(id)

let node_pred_shapes g node = pred_shapes g.input_shape g.shapes node

let node_flops g id =
  let node = g.nodes.(id) in
  Layer.flops node.layer (node_pred_shapes g node)

let node_params g id =
  let node = g.nodes.(id) in
  Layer.params node.layer (node_pred_shapes g node)

let fold_nodes f init g =
  let acc = ref init in
  for i = 0 to n_nodes g - 1 do
    acc := f !acc i
  done;
  !acc

let total_flops g = fold_nodes (fun acc i -> acc +. node_flops g i) 0.0 g
let total_params g = fold_nodes (fun acc i -> acc +. node_params g i) 0.0 g
let output_shape g = g.shapes.(g.output)

let successors g id =
  fold_nodes
    (fun acc i ->
      if Array.exists (fun p -> p = id) g.nodes.(i).preds then i :: acc else acc)
    [] g
  |> List.rev

let exit_candidate_ids g =
  fold_nodes (fun acc i -> if g.nodes.(i).exitable then i :: acc else acc) [] g |> List.rev

let validate g =
  let n = n_nodes g in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if n = 0 then err "empty graph"
  else if g.output < 0 || g.output >= n then err "output id %d out of range" g.output
  else if g.nodes.(0).layer <> Layer.Input then err "node 0 is not the input"
  else begin
    let rec check i =
      if i >= n then Ok ()
      else begin
        let node = g.nodes.(i) in
        if node.id <> i then err "node %d has id %d" i node.id
        else if Array.exists (fun p -> p >= i || p < 0) node.preds then
          err "node %d has a non-topological predecessor" i
        else begin
          match Layer.output_shape node.layer (node_pred_shapes g node) with
          | shape ->
              if Shape.equal shape g.shapes.(i) then check (i + 1)
              else err "node %d shape mismatch" i
          | exception Invalid_argument m -> err "node %d: %s" i m
        end
      end
    in
    check 0
  end

let prefix_flops g k = fold_nodes (fun acc i -> if i < k then acc +. node_flops g i else acc) 0.0 g
let suffix_flops g k = fold_nodes (fun acc i -> if i >= k then acc +. node_flops g i else acc) 0.0 g

let cut_transfer_bytes ?(bytes_per_elt = 4) g k =
  let n = n_nodes g in
  if k <= 0 then float_of_int (Shape.bytes ~bytes_per_elt g.input_shape)
  else if k >= n then 0.0
  else begin
    (* A node i < k crosses the cut when some consumer has id >= k.  Each
       crossing activation is shipped once even with several consumers. *)
    let crosses = Array.make k false in
    for i = k to n - 1 do
      Array.iter (fun p -> if p < k then crosses.(p) <- true) g.nodes.(i).preds
    done;
    let total = ref 0.0 in
    for i = 0 to k - 1 do
      if crosses.(i) then total := !total +. float_of_int (Shape.bytes ~bytes_per_elt g.shapes.(i))
    done;
    !total
  end

let scale_width f g =
  if f <= 0.0 || f > 1.0 then invalid_arg "Graph.scale_width: factor outside (0,1]";
  if f = 1.0 then g
  else begin
    let b, _ = Builder.create ~name:(Printf.sprintf "%s@w%.2f" g.name f) ~input:g.input_shape in
    Array.iter
      (fun node ->
        if node.id > 0 then begin
          let layer =
            (* The classifier head (the output node) keeps its dimension so
               the model still predicts the same classes. *)
            if node.id = g.output then node.layer else Layer.scale_width f node.layer
          in
          let id =
            Builder.add b ~name:node.node_name ~exitable:node.exitable layer
              (Array.to_list node.preds)
          in
          assert (id = node.id)
        end)
      g.nodes;
    Builder.finish ~output:g.output b
  end

let pp_summary fmt g =
  Format.fprintf fmt "%s: %d nodes, %.1f MFLOPs, %.2f M params@."
    g.name (n_nodes g) (total_flops g /. 1e6) (total_params g /. 1e6);
  Array.iter
    (fun node ->
      Format.fprintf fmt "  %3d %-12s %-12s %-10s %8.2f MFLOPs%s@." node.id node.node_name
        (Layer.name node.layer)
        (Shape.to_string g.shapes.(node.id))
        (node_flops g node.id /. 1e6)
        (if node.exitable then "  [exit]" else ""))
    g.nodes
