type perf = {
  flops_per_s : float;
  mem_bytes_per_s : float;
  layer_overhead_s : float;
}

let perf ~flops_per_s ~mem_bytes_per_s ~layer_overhead_s =
  if flops_per_s <= 0.0 || mem_bytes_per_s <= 0.0 then
    invalid_arg "Profile.perf: non-positive throughput";
  if layer_overhead_s < 0.0 then invalid_arg "Profile.perf: negative overhead";
  { flops_per_s; mem_bytes_per_s; layer_overhead_s }

let layer_bytes_touched (g : Graph.t) id =
  let node = g.nodes.(id) in
  let input_bytes =
    if Array.length node.preds = 0 then float_of_int (Shape.bytes g.input_shape)
    else
      Array.fold_left
        (fun acc p -> acc +. float_of_int (Shape.bytes g.shapes.(p)))
        0.0 node.preds
  in
  let output_bytes = float_of_int (Shape.bytes g.shapes.(id)) in
  let param_bytes = 4.0 *. Graph.node_params g id in
  input_bytes +. output_bytes +. param_bytes

let layer_latency perf g id =
  (* The input node is a placeholder, not a kernel: no cost anywhere. *)
  if g.Graph.nodes.(id).Graph.layer = Layer.Input then 0.0
  else begin
    let compute = Graph.node_flops g id /. perf.flops_per_s in
    let memory = layer_bytes_touched g id /. perf.mem_bytes_per_s in
    Float.max compute memory +. perf.layer_overhead_s
  end

(* Per-(graph, processor) prefix sums of layer latencies.  The optimizer's
   inner loops evaluate millions of (cut, processor) latencies on a handful
   of graphs; memoizing turns each evaluation into two array reads.  The
   cache is domain-local (one table per domain, no locking): this lookup is
   hot enough that even an uncontended mutex measurably slows the solver,
   and a contended one serializes parallel trajectories outright.  Each
   domain recomputes at most (graphs × processors) small arrays. *)
let prefix_cache : (int * perf, float array) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let prefix_sums perf g =
  let cache = Domain.DLS.get prefix_cache in
  let key = (g.Graph.uid, perf) in
  match Hashtbl.find_opt cache key with
  | Some sums -> sums
  | None ->
      let n = Graph.n_nodes g in
      let sums = Array.make (n + 1) 0.0 in
      for i = 0 to n - 1 do
        sums.(i + 1) <- sums.(i) +. layer_latency perf g i
      done;
      Hashtbl.replace cache key sums;
      sums

let range_latency perf g ~lo ~hi =
  let n = Graph.n_nodes g in
  let lo = max lo 0 and hi = min hi n in
  if hi <= lo then 0.0
  else begin
    let sums = prefix_sums perf g in
    sums.(hi) -. sums.(lo)
  end

let total_latency perf g = range_latency perf g ~lo:0 ~hi:(Graph.n_nodes g)
