(* Sub-cluster extraction for the sharded solver: a shard is a sub-cluster
   over a subset of devices and servers, renumbered to positions (Cluster.make
   re-numbers ids), plus the index maps needed to move decisions between the
   two numberings in both directions. *)

type t = {
  cluster : Cluster.t;
  devices : int array;
  servers : int array;
  dev_of_orig : int array;
  srv_of_orig : int array;
}

let extract parent ~devices ~servers =
  let nd = Cluster.n_devices parent and ns = Cluster.n_servers parent in
  let devices = List.sort_uniq Int.compare devices in
  let servers = List.sort_uniq Int.compare servers in
  List.iter
    (fun d ->
      if d < 0 || d >= nd then
        invalid_arg (Printf.sprintf "Subcluster.extract: device %d out of range" d))
    devices;
  List.iter
    (fun s ->
      if s < 0 || s >= ns then
        invalid_arg (Printf.sprintf "Subcluster.extract: server %d out of range" s))
    servers;
  if devices = [] then invalid_arg "Subcluster.extract: no devices";
  if servers = [] then invalid_arg "Subcluster.extract: no servers";
  let cluster =
    Cluster.make
      ~devices:(List.map (fun d -> parent.Cluster.devices.(d)) devices)
      ~servers:(List.map (fun s -> parent.Cluster.servers.(s)) servers)
  in
  let devices = Array.of_list devices and servers = Array.of_list servers in
  let dev_of_orig = Array.make nd (-1) and srv_of_orig = Array.make ns (-1) in
  Array.iteri (fun sub orig -> dev_of_orig.(orig) <- sub) devices;
  Array.iteri (fun sub orig -> srv_of_orig.(orig) <- sub) servers;
  { cluster; devices; servers; dev_of_orig; srv_of_orig }

let n_devices t = Array.length t.devices

let restrict t (decisions : Decision.t array) =
  Array.mapi
    (fun sub orig ->
      let d = decisions.(orig) in
      let server =
        if d.Decision.server >= 0 && d.Decision.server < Array.length t.srv_of_orig then
          t.srv_of_orig.(d.Decision.server)
        else -1
      in
      { d with Decision.device = sub; server })
    t.devices

let lift_into t (sub_decisions : Decision.t array) (into : Decision.t array) =
  if Array.length sub_decisions <> Array.length t.devices then
    invalid_arg "Subcluster.lift_into: decision arity mismatch";
  Array.iteri
    (fun sub (d : Decision.t) ->
      let orig = t.devices.(sub) in
      let server =
        if d.Decision.server >= 0 && d.Decision.server < Array.length t.servers then
          t.servers.(d.Decision.server)
        else d.Decision.server
      in
      into.(orig) <- { d with Decision.device = orig; server })
    sub_decisions
