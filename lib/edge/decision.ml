type t = {
  device : int;
  server : int;
  plan : Es_surgery.Plan.t;
  bandwidth_bps : float;
  compute_share : float;
}

let offloads t = not (Es_surgery.Plan.is_device_only t.plan)

let make ~device ~server ~plan ?(bandwidth_bps = 0.0) ?(compute_share = 0.0) () =
  if bandwidth_bps < 0.0 || compute_share < 0.0 then
    invalid_arg "Decision.make: negative resource grant";
  let d = { device; server; plan; bandwidth_bps; compute_share } in
  if offloads d then begin
    if bandwidth_bps <= 0.0 then invalid_arg "Decision.make: offloading needs bandwidth";
    if Es_surgery.Plan.srv_flops plan > 0.0 && compute_share <= 0.0 then
      invalid_arg "Decision.make: offloading needs a compute share"
  end;
  d

let eps = 1e-6

let validate cluster decisions =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let nd = Cluster.n_devices cluster and ns = Cluster.n_servers cluster in
  if Array.length decisions <> nd then
    err "expected %d decisions, got %d" nd (Array.length decisions)
  else begin
    let bw = Array.make ns 0.0 and share = Array.make ns 0.0 in
    let rec check i =
      if i >= nd then Ok ()
      else begin
        let d = decisions.(i) in
        if d.device <> i then err "decision %d is for device %d" i d.device
        else if not (Float.is_finite d.bandwidth_bps) || d.bandwidth_bps < 0.0 then
          err "device %d: bandwidth grant %g is not finite and non-negative" i d.bandwidth_bps
        else if not (Float.is_finite d.compute_share) || d.compute_share < 0.0 then
          err "device %d: compute share %g is not finite and non-negative" i d.compute_share
        else if offloads d && (d.server < 0 || d.server >= ns) then
          err "device %d: server %d out of range" i d.server
        else begin
          let dev = cluster.Cluster.devices.(i) in
          if d.plan.Es_surgery.Plan.accuracy < dev.Cluster.accuracy_floor -. eps then
            err "device %d: accuracy %.3f below floor %.3f" i
              d.plan.Es_surgery.Plan.accuracy dev.Cluster.accuracy_floor
          else begin
            if offloads d then begin
              bw.(d.server) <- bw.(d.server) +. d.bandwidth_bps;
              share.(d.server) <- share.(d.server) +. d.compute_share
            end;
            check (i + 1)
          end
        end
      end
    in
    match check 0 with
    | Error _ as e -> e
    | Ok () ->
        let rec caps s =
          if s >= ns then Ok ()
          else begin
            let srv = cluster.Cluster.servers.(s) in
            if bw.(s) > srv.Cluster.ap_bandwidth_bps *. (1.0 +. eps) then
              err "server %d: bandwidth oversubscribed (%.1f of %.1f Mbps)" s (bw.(s) /. 1e6)
                (srv.Cluster.ap_bandwidth_bps /. 1e6)
            else if share.(s) > 1.0 +. eps then
              err "server %d: compute oversubscribed (%.3f)" s share.(s)
            else caps (s + 1)
          end
        in
        caps 0
  end

let add_plan h (p : Es_surgery.Plan.t) =
  Es_util.Fnv.add_string h p.Es_surgery.Plan.base_name;
  Es_util.Fnv.add_float h p.Es_surgery.Plan.width;
  Es_util.Fnv.add_int h
    (match p.Es_surgery.Plan.exit_node with None -> -1 | Some id -> id);
  Es_util.Fnv.add_string h (Es_surgery.Precision.name p.Es_surgery.Plan.precision);
  Es_util.Fnv.add_int h p.Es_surgery.Plan.cut

let fingerprint decisions =
  let h = Es_util.Fnv.create () in
  Es_util.Fnv.add_int h (Array.length decisions);
  Array.iter
    (fun d ->
      Es_util.Fnv.add_int h d.device;
      Es_util.Fnv.add_int h d.server;
      add_plan h d.plan;
      Es_util.Fnv.add_float h d.bandwidth_bps;
      Es_util.Fnv.add_float h d.compute_share)
    decisions;
  Es_util.Fnv.to_hex h

let pp fmt t =
  Format.fprintf fmt "dev%d -> srv%d  %s  bw=%.1fMbps share=%.3f" t.device t.server
    (Es_surgery.Plan.describe t.plan)
    (t.bandwidth_bps /. 1e6) t.compute_share
