type device = {
  dev_id : int;
  dev_name : string;
  proc : Processor.t;
  link : Link.t;
  model : Es_dnn.Graph.t;
  rate : float;
  deadline : float;
  accuracy_floor : float;
}

type server = {
  srv_id : int;
  srv_name : string;
  sproc : Processor.t;
  ap_bandwidth_bps : float;
}

type t = { devices : device array; servers : server array }

let device ~id ?name ~proc ~link ~model ~rate ~deadline ?(accuracy_floor = 0.0) () =
  if rate <= 0.0 then invalid_arg "Cluster.device: non-positive rate";
  if deadline <= 0.0 then invalid_arg "Cluster.device: non-positive deadline";
  let dev_name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "dev%d(%s,%s)" id proc.Processor.name model.Es_dnn.Graph.name
  in
  { dev_id = id; dev_name; proc; link; model; rate; deadline; accuracy_floor }

let server ~id ?name ~proc ~ap_bandwidth_mbps () =
  if ap_bandwidth_mbps <= 0.0 then invalid_arg "Cluster.server: non-positive AP bandwidth";
  let srv_name =
    match name with Some n -> n | None -> Printf.sprintf "srv%d(%s)" id proc.Processor.name
  in
  { srv_id = id; srv_name; sproc = proc; ap_bandwidth_bps = ap_bandwidth_mbps *. 1e6 }

let make ~devices ~servers =
  if devices = [] then invalid_arg "Cluster.make: no devices";
  if servers = [] then invalid_arg "Cluster.make: no servers";
  let devices =
    Array.of_list devices |> Array.mapi (fun i d -> { d with dev_id = i })
  in
  let servers =
    Array.of_list servers |> Array.mapi (fun i s -> { s with srv_id = i })
  in
  { devices; servers }

let n_devices t = Array.length t.devices
let n_servers t = Array.length t.servers

let add_perf h (p : Es_dnn.Profile.perf) =
  Es_util.Fnv.add_float h p.Es_dnn.Profile.flops_per_s;
  Es_util.Fnv.add_float h p.Es_dnn.Profile.mem_bytes_per_s;
  Es_util.Fnv.add_float h p.Es_dnn.Profile.layer_overhead_s

let add_proc h (p : Processor.t) =
  Es_util.Fnv.add_string h p.Processor.name;
  add_perf h p.Processor.perf;
  Es_util.Fnv.add_float h p.Processor.mem_bytes;
  let pw = p.Processor.power in
  Es_util.Fnv.add_float h pw.Processor.idle_w;
  Es_util.Fnv.add_float h pw.Processor.busy_w;
  Es_util.Fnv.add_float h pw.Processor.tx_w;
  Es_util.Fnv.add_float h pw.Processor.rx_w

(* Rates are hashed quantized to [rate_grain] (nearest multiple), so small
   load jitter maps to the same fingerprint while epoch-scale level changes
   do not; [rate_grain <= 0] hashes the exact float bits. *)
let fingerprint ?(rate_grain = 0.0) t =
  let h = Es_util.Fnv.create () in
  Es_util.Fnv.add_int h (n_devices t);
  Es_util.Fnv.add_int h (n_servers t);
  Array.iter
    (fun d ->
      add_proc h d.proc;
      Es_util.Fnv.add_string h d.link.Link.name;
      Es_util.Fnv.add_float h d.link.Link.peak_bps;
      Es_util.Fnv.add_float h d.link.Link.rtt_s;
      Es_util.Fnv.add_float h d.link.Link.fading_sigma;
      (* Model identity, as in Candidate's cache key: name + structure. *)
      Es_util.Fnv.add_string h d.model.Es_dnn.Graph.name;
      Es_util.Fnv.add_int h (Es_dnn.Graph.n_nodes d.model);
      Es_util.Fnv.add_float h (Es_dnn.Graph.total_flops d.model);
      (if rate_grain > 0.0 then
         Es_util.Fnv.add_int64 h (Int64.of_float (Float.round (d.rate /. rate_grain)))
       else Es_util.Fnv.add_float h d.rate);
      Es_util.Fnv.add_float h d.deadline;
      Es_util.Fnv.add_float h d.accuracy_floor)
    t.devices;
  Array.iter
    (fun s ->
      add_proc h s.sproc;
      Es_util.Fnv.add_float h s.ap_bandwidth_bps)
    t.servers;
  Es_util.Fnv.to_hex h

let pp_summary fmt t =
  Format.fprintf fmt "cluster: %d devices, %d servers@." (n_devices t) (n_servers t);
  Array.iter
    (fun s ->
      Format.fprintf fmt "  %s  ap=%.0f Mbps@." s.srv_name (s.ap_bandwidth_bps /. 1e6))
    t.servers;
  Array.iter
    (fun d ->
      Format.fprintf fmt "  %-28s %s rate=%.1f/s deadline=%.0fms acc>=%.2f@." d.dev_name
        d.link.Link.name d.rate (d.deadline *. 1000.0) d.accuracy_floor)
    t.devices
