(** Reproducible cluster generation.

    A [spec] describes a population statistically; [build] expands it into a
    concrete {!Cluster.t} deterministically from the seed.  The [default]
    spec is the baseline configuration every experiment perturbs. *)

type spec = {
  seed : int;
  n_devices : int;
  servers : (Processor.t * float) list;  (** (processor, AP Mbps) per server *)
  device_mix : (Processor.t * Link.t * float) list;  (** weighted classes *)
  model_names : string list;  (** zoo models devices draw from *)
  rate_range : float * float;  (** req/s, uniform *)
  deadline_range : float * float;  (** seconds, uniform *)
  accuracy_slack : float * float;
      (** accuracy floor = published full accuracy × uniform draw from this
          range; 0.85–0.95 means devices tolerate a 5–15% relative drop *)
}

val default : spec
(** 20 devices (IoT boards to Jetsons on WiFi/LTE/5G), one CPU and one GPU
    server, the five classification models, 100–400 ms deadlines. *)

val build : spec -> Cluster.t
(** @raise Invalid_argument on empty mixes or inverted ranges. *)

val with_n_devices : int -> spec -> spec
val with_seed : int -> spec -> spec
val with_ap_mbps : float -> spec -> spec
(** Override every server's AP capacity. *)

val with_n_servers : int -> spec -> spec
(** Resize the server fleet to [n] by cycling the spec's server list, so
    larger deployments keep the same processor/AP mix.  @raise
    Invalid_argument when [n < 1]. *)
