(** Analytic (contention-free) end-to-end latency of a decision.

    This is the objective the optimizer manipulates:
    device compute + uplink transfer + server compute at the granted share +
    downlink of the result.  Queueing under load is measured by {!Es_sim};
    a property test pins this estimator to the simulator in the single
    in-flight request case. *)

type breakdown = {
  device_s : float;
  uplink_s : float;
  server_s : float;
  downlink_s : float;
}

val breakdown : Cluster.t -> Decision.t -> breakdown

val total : breakdown -> float

val of_decision : Cluster.t -> Decision.t -> float
(** The end-to-end latency, computed straight-line (no intermediate
    {!breakdown} record) — the optimizer's hottest scalar.  Bit-identical
    to {!of_decision_ref} on every input (qcheck-asserted). *)

val of_decision_ref : Cluster.t -> Decision.t -> float
(** [total (breakdown c d)] — the record-allocating original, kept as the
    reference oracle for {!of_decision}. *)

val meets_deadline : Cluster.t -> Decision.t -> bool

val server_load : Cluster.t -> Decision.t array -> float array
(** Per-server offered load: Σ λ_i · server-work_i / capacity — must stay
    below the compute shares granted for the system to be stable. *)

val server_load_into : Cluster.t -> Decision.t array -> float array -> unit
(** {!server_load} into a caller-owned buffer of length ≥ n_servers
    (cleared first) — the allocation-free form for per-iteration use. *)

val server_load_ref : Cluster.t -> Decision.t array -> float array
(** Closure-based original of {!server_load}, kept as the oracle. *)

val device_stable : Cluster.t -> Decision.t -> bool
(** λ_i · (device service time) < 1 and, when offloading, λ_i · (server
    service time at its share) < 1 — the queueing-stability conditions. *)

val device_stable_ref : Cluster.t -> Decision.t -> bool
(** Breakdown-based original of {!device_stable}, kept as the oracle. *)

val mm1_estimate : Cluster.t -> Decision.t -> float
(** Queueing-aware expected latency: every stage's service time is inflated
    by the M/M/1 sojourn factor 1/(1−ρ) at that stage's utilization
    (ρ = rate × service time), matching the dedicated-share FIFO stations
    of the simulator under Poisson arrivals.  [infinity] when any stage is
    saturated.  This is what SLO-grade admission control must test — the
    plain analytic latency is the zero-load limit and is optimistic under
    contention. *)

val mm1_estimate_ref : Cluster.t -> Decision.t -> float
(** Breakdown-based original of {!mm1_estimate}, kept as the oracle. *)

val deadline_satisfaction : Cluster.t -> Decision.t array -> float
(** Fraction of devices whose analytic latency meets their deadline. *)

val deadline_satisfaction_ref : Cluster.t -> Decision.t array -> float

val mean_latency : Cluster.t -> Decision.t array -> float

val mean_latency_ref : Cluster.t -> Decision.t array -> float
