type spec = {
  seed : int;
  n_devices : int;
  servers : (Processor.t * float) list;
  device_mix : (Processor.t * Link.t * float) list;
  model_names : string list;
  rate_range : float * float;
  deadline_range : float * float;
  accuracy_slack : float * float;
}

let default =
  {
    seed = 42;
    n_devices = 20;
    servers = [ (Processor.edge_gpu, 400.0); (Processor.edge_cpu, 300.0) ];
    device_mix =
      [
        (Processor.iot_board, Link.wifi, 0.25);
        (Processor.raspberry_pi, Link.wifi, 0.25);
        (Processor.smartphone, Link.lte, 0.2);
        (Processor.smartphone, Link.nr5g, 0.15);
        (Processor.jetson_nano, Link.wifi, 0.15);
      ];
    model_names = [ "alexnet"; "resnet18"; "resnet50"; "mobilenet_v2"; "vgg16" ];
    rate_range = (0.5, 3.0);
    deadline_range = (0.1, 0.4);
    (* Published slimmable/multi-exit results put a 0.5x width or a mid-depth
       exit at a 5-9% relative accuracy drop, so this range makes aggressive
       surgery available to some devices and forbidden to others. *)
    accuracy_slack = (0.90, 0.97);
  }

let build spec =
  if spec.n_devices <= 0 then invalid_arg "Scenario.build: no devices";
  if spec.device_mix = [] then invalid_arg "Scenario.build: empty device mix";
  if spec.model_names = [] then invalid_arg "Scenario.build: no models";
  let check_range name (lo, hi) =
    if lo > hi || lo <= 0.0 then invalid_arg (Printf.sprintf "Scenario.build: bad %s range" name)
  in
  check_range "rate" spec.rate_range;
  check_range "deadline" spec.deadline_range;
  let rng = Es_util.Prng.create spec.seed in
  (* One graph instance per model name, shared across devices. *)
  let graphs = Hashtbl.create 8 in
  let graph_of name =
    match Hashtbl.find_opt graphs name with
    | Some g -> g
    | None ->
        let g = Es_dnn.Zoo.by_name name in
        Hashtbl.add graphs name g;
        g
  in
  let mix = Array.of_list (List.map (fun (p, l, w) -> ((p, l), w)) spec.device_mix) in
  let models = Array.of_list spec.model_names in
  let devices =
    List.init spec.n_devices (fun i ->
        let proc, link = Es_util.Prng.weighted_choice rng mix in
        let name = models.(Es_util.Prng.int rng (Array.length models)) in
        let model = graph_of name in
        let lo, hi = spec.rate_range in
        let rate = Es_util.Prng.float_in rng lo hi in
        let lo, hi = spec.deadline_range in
        let deadline = Es_util.Prng.float_in rng lo hi in
        let slo, shi = spec.accuracy_slack in
        let full = (Es_surgery.Accuracy.profile_of_model name).Es_surgery.Accuracy.full_accuracy in
        let accuracy_floor = full *. Es_util.Prng.float_in rng slo shi in
        Cluster.device ~id:i ~proc ~link ~model ~rate ~deadline ~accuracy_floor ())
  in
  let servers =
    List.mapi
      (fun i (proc, mbps) -> Cluster.server ~id:i ~proc ~ap_bandwidth_mbps:mbps ())
      spec.servers
  in
  Cluster.make ~devices ~servers

let with_n_devices n spec = { spec with n_devices = n }
let with_seed seed spec = { spec with seed }

let with_ap_mbps mbps spec =
  { spec with servers = List.map (fun (p, _) -> (p, mbps)) spec.servers }

let with_n_servers n spec =
  if n < 1 then invalid_arg "Scenario.with_n_servers: need at least one server";
  let base = Array.of_list spec.servers in
  let k = Array.length base in
  if k = 0 then invalid_arg "Scenario.with_n_servers: empty server list";
  { spec with servers = List.init n (fun i -> base.(i mod k)) }
