(** A joint decision: surgery plan + placement + resources for one device.

    An array of decisions indexed by device id is the full output of any
    policy (the joint optimizer and every baseline alike); the analytic
    latency model and the discrete-event simulator both consume it. *)

type t = {
  device : int;
  server : int;  (** meaningful only when the plan offloads work *)
  plan : Es_surgery.Plan.t;
  bandwidth_bps : float;  (** granted uplink share; 0 for device-only *)
  compute_share : float;  (** granted fraction of the server; 0 for device-only *)
}

val make :
  device:int ->
  server:int ->
  plan:Es_surgery.Plan.t ->
  ?bandwidth_bps:float ->
  ?compute_share:float ->
  unit ->
  t
(** @raise Invalid_argument when an offloading plan comes with a
    non-positive bandwidth or compute share, or shares are negative. *)

val offloads : t -> bool
(** True when any work or data goes to the server. *)

val validate : Cluster.t -> t array -> (unit, string) result
(** Checks: one decision per device in order; grants finite and
    non-negative (NaN/∞ rejected); server ids in range; per-server
    bandwidth sums within AP capacity and compute shares within 1 (small
    epsilon); accuracy floors respected. *)

val fingerprint : t array -> string
(** Digest (16 hex chars) of a whole decision set: per device, the placement,
    the plan's surgery knobs (base model, width, exit, precision, cut) and
    the exact grant bits.  Equal fingerprints mean bit-identical decisions up
    to hash collision — the equality the solve cache's hit test and the
    warm-start regression tests assert. *)

val pp : Format.formatter -> t -> unit
