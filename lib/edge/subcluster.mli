(** Sub-cluster extraction and renumbering for sharded solving.

    A shard of a cluster is a sub-cluster over a subset of its devices and
    servers.  {!Cluster.make} re-numbers ids to positions, so an extracted
    sub-cluster is a first-class input to any solver; this module keeps the
    index maps to carry decisions between the parent's numbering and the
    shard's in both directions. *)

type t = {
  cluster : Cluster.t;  (** the extracted sub-cluster, ids renumbered *)
  devices : int array;  (** shard device index → parent device id *)
  servers : int array;  (** shard server index → parent server id *)
  dev_of_orig : int array;  (** parent device id → shard index, [-1] if absent *)
  srv_of_orig : int array;  (** parent server id → shard index, [-1] if absent *)
}

val extract : Cluster.t -> devices:int list -> servers:int list -> t
(** Indices are de-duplicated and sorted ascending, so the shard's numbering
    is deterministic in the parent's.  @raise Invalid_argument on an empty
    or out-of-range subset. *)

val n_devices : t -> int

val restrict : t -> Decision.t array -> Decision.t array
(** Restrict a parent-numbered decision set (full parent arity) to the
    shard's numbering — the warm-start seed for a shard re-solve.  A
    decision pointing at a server outside the shard keeps its plan with
    server [-1]; the optimizer's warm repair re-points exactly that shape. *)

val lift_into : t -> Decision.t array -> Decision.t array -> unit
(** [lift_into t sub_decisions into] writes the shard's decisions into a
    parent-numbered array, remapping device and server indices.
    @raise Invalid_argument when [sub_decisions] doesn't match the shard. *)
