(** Static description of a heterogeneous edge cluster.

    Devices generate inference requests for one model each, under a latency
    deadline and an accuracy floor; servers offer compute behind an access
    point whose uplink capacity their assigned devices share. *)

type device = {
  dev_id : int;
  dev_name : string;
  proc : Processor.t;
  link : Link.t;  (** the device's radio; caps its achievable rate *)
  model : Es_dnn.Graph.t;
  rate : float;  (** mean request rate, req/s *)
  deadline : float;  (** end-to-end latency bound, seconds *)
  accuracy_floor : float;  (** minimum acceptable expected accuracy *)
}

type server = {
  srv_id : int;
  srv_name : string;
  sproc : Processor.t;
  ap_bandwidth_bps : float;  (** uplink capacity shared by assigned devices *)
}

type t = { devices : device array; servers : server array }

val make : devices:device list -> servers:server list -> t
(** Re-numbers ids to positions. @raise Invalid_argument when either list is
    empty. *)

val device :
  id:int ->
  ?name:string ->
  proc:Processor.t ->
  link:Link.t ->
  model:Es_dnn.Graph.t ->
  rate:float ->
  deadline:float ->
  ?accuracy_floor:float ->
  unit ->
  device
(** @raise Invalid_argument on non-positive rate or deadline. *)

val server :
  id:int -> ?name:string -> proc:Processor.t -> ap_bandwidth_mbps:float -> unit -> server

val n_devices : t -> int
val n_servers : t -> int

val fingerprint : ?rate_grain:float -> t -> string
(** Structural digest (16 hex chars) of the whole cluster: every device's
    processor (perf, memory, power), link, model identity (name, node count,
    total FLOPs), rate, deadline and accuracy floor, plus every server's
    processor and AP capacity.  Two clusters with the same fingerprint are
    interchangeable inputs to the solvers up to hash collision (64-bit).

    [rate_grain > 0] quantizes each device rate to the nearest multiple of
    the grain before hashing, so load levels that recur within jitter share
    a fingerprint — the knob behind {!Es_joint.Solve_cache} hits on diurnal
    profiles.  The default ([0.]) hashes exact rate bits. *)

val pp_summary : Format.formatter -> t -> unit
