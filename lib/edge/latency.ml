(* es_lint: hot *)
open Es_surgery

type breakdown = {
  device_s : float;
  uplink_s : float;
  server_s : float;
  downlink_s : float;
}

let breakdown cluster (d : Decision.t) =
  let dev = cluster.Cluster.devices.(d.Decision.device) in
  let plan = d.Decision.plan in
  let device_s = Plan.device_time dev.Cluster.proc.Processor.perf plan in
  if not (Decision.offloads d) then { device_s; uplink_s = 0.0; server_s = 0.0; downlink_s = 0.0 }
  else begin
    let srv = cluster.Cluster.servers.(d.Decision.server) in
    let rate = d.Decision.bandwidth_bps in
    let uplink_s = Link.transfer_time dev.Cluster.link ~rate_bps:rate (Plan.transfer_bytes plan) in
    let server_s =
      let work = Plan.server_time srv.Cluster.sproc.Processor.perf plan in
      if work <= 0.0 then 0.0 else work /. d.Decision.compute_share
    in
    let downlink_s =
      Link.transfer_time dev.Cluster.link ~rate_bps:rate (Plan.result_bytes plan)
    in
    { device_s; uplink_s; server_s; downlink_s }
  end

let total b = b.device_s +. b.uplink_s +. b.server_s +. b.downlink_s

let of_decision_ref cluster d = total (breakdown cluster d)

(* Straight-line [of_decision]: the same stage terms summed in the same
   operation order as [total (breakdown ...)], minus the intermediate
   record.  The zero additions on the local path keep bit-parity with the
   four-term sum (−0.0 +. 0.0 normalizes identically on both). *)
let of_decision cluster (d : Decision.t) =
  let dev = cluster.Cluster.devices.(d.Decision.device) in
  let plan = d.Decision.plan in
  let device_s = Plan.device_time dev.Cluster.proc.Processor.perf plan in
  if not (Decision.offloads d) then device_s +. 0.0 +. 0.0 +. 0.0
  else begin
    let srv = cluster.Cluster.servers.(d.Decision.server) in
    let rate = d.Decision.bandwidth_bps in
    let uplink_s = Link.transfer_time dev.Cluster.link ~rate_bps:rate (Plan.transfer_bytes plan) in
    let work = Plan.server_time srv.Cluster.sproc.Processor.perf plan in
    let server_s = if work <= 0.0 then 0.0 else work /. d.Decision.compute_share in
    let downlink_s =
      Link.transfer_time dev.Cluster.link ~rate_bps:rate (Plan.result_bytes plan)
    in
    device_s +. uplink_s +. server_s +. downlink_s
  end

let meets_deadline cluster d =
  let dev = cluster.Cluster.devices.(d.Decision.device) in
  of_decision cluster d <= dev.Cluster.deadline +. 1e-12

let server_load_into cluster decisions load =
  let ns = Cluster.n_servers cluster in
  Array.fill load 0 ns 0.0;
  for i = 0 to Array.length decisions - 1 do
    let d = decisions.(i) in
    if Decision.offloads d then begin
      let dev = cluster.Cluster.devices.(d.Decision.device) in
      let srv = cluster.Cluster.servers.(d.Decision.server) in
      let work = Plan.server_time srv.Cluster.sproc.Processor.perf d.Decision.plan in
      load.(d.Decision.server) <- load.(d.Decision.server) +. (dev.Cluster.rate *. work)
    end
  done

let server_load cluster decisions =
  let load = Array.make (Cluster.n_servers cluster) 0.0 in
  server_load_into cluster decisions load;
  load

let server_load_ref cluster decisions =
  let ns = Cluster.n_servers cluster in
  let load = Array.make ns 0.0 in
  (* es_lint: cold — list/closure reference oracle *)
  Array.iter
    (fun (d : Decision.t) ->
      if Decision.offloads d then begin
        let dev = cluster.Cluster.devices.(d.Decision.device) in
        let srv = cluster.Cluster.servers.(d.Decision.server) in
        let work = Plan.server_time srv.Cluster.sproc.Processor.perf d.Decision.plan in
        load.(d.Decision.server) <- load.(d.Decision.server) +. (dev.Cluster.rate *. work)
      end)
    decisions;
  load

let device_stable_ref cluster (d : Decision.t) =
  let dev = cluster.Cluster.devices.(d.Decision.device) in
  let b = breakdown cluster d in
  let local_ok = dev.Cluster.rate *. b.device_s < 1.0 in
  let remote_ok =
    (not (Decision.offloads d)) || dev.Cluster.rate *. b.server_s < 1.0
  in
  local_ok && remote_ok

let device_stable cluster (d : Decision.t) =
  let dev = cluster.Cluster.devices.(d.Decision.device) in
  let plan = d.Decision.plan in
  let device_s = Plan.device_time dev.Cluster.proc.Processor.perf plan in
  let local_ok = dev.Cluster.rate *. device_s < 1.0 in
  local_ok
  && ((not (Decision.offloads d))
     ||
     let srv = cluster.Cluster.servers.(d.Decision.server) in
     let work = Plan.server_time srv.Cluster.sproc.Processor.perf plan in
     let server_s = if work <= 0.0 then 0.0 else work /. d.Decision.compute_share in
     dev.Cluster.rate *. server_s < 1.0)

(* Propagation is not queued; inflate only the service portions. *)
let inflate rate service =
  if service <= 0.0 then 0.0
  else begin
    let rho = rate *. service in
    if rho >= 1.0 then infinity else service /. (1.0 -. rho)
  end

let mm1_estimate_ref cluster (d : Decision.t) =
  let dev = cluster.Cluster.devices.(d.Decision.device) in
  let rate = dev.Cluster.rate in
  let b = breakdown cluster d in
  let rtt = if Decision.offloads d then dev.Cluster.link.Link.rtt_s else 0.0 in
  let half_rtt = rtt /. 2.0 in
  inflate rate b.device_s
  +. inflate rate (Float.max 0.0 (b.uplink_s -. half_rtt))
  +. inflate rate b.server_s
  +. inflate rate (Float.max 0.0 (b.downlink_s -. half_rtt))
  +. rtt

let mm1_estimate cluster (d : Decision.t) =
  let dev = cluster.Cluster.devices.(d.Decision.device) in
  let rate = dev.Cluster.rate in
  let plan = d.Decision.plan in
  let device_s = Plan.device_time dev.Cluster.proc.Processor.perf plan in
  if not (Decision.offloads d) then
    (* Stage terms of the local breakdown are 0; only device time inflates.
       The explicit zero terms keep bit-parity with the five-term sum. *)
    inflate rate device_s +. 0.0 +. 0.0 +. 0.0 +. 0.0
  else begin
    let srv = cluster.Cluster.servers.(d.Decision.server) in
    let bw = d.Decision.bandwidth_bps in
    let uplink_s = Link.transfer_time dev.Cluster.link ~rate_bps:bw (Plan.transfer_bytes plan) in
    let work = Plan.server_time srv.Cluster.sproc.Processor.perf plan in
    let server_s = if work <= 0.0 then 0.0 else work /. d.Decision.compute_share in
    let downlink_s =
      Link.transfer_time dev.Cluster.link ~rate_bps:bw (Plan.result_bytes plan)
    in
    let rtt = dev.Cluster.link.Link.rtt_s in
    let half_rtt = rtt /. 2.0 in
    inflate rate device_s
    +. inflate rate (Float.max 0.0 (uplink_s -. half_rtt))
    +. inflate rate server_s
    +. inflate rate (Float.max 0.0 (downlink_s -. half_rtt))
    +. rtt
  end

let deadline_satisfaction_ref cluster decisions =
  if Array.length decisions = 0 then 1.0
  else begin
    let hits =
      (* es_lint: cold — fold/closure reference oracle *)
      Array.fold_left
        (fun acc d -> if meets_deadline cluster d then acc + 1 else acc)
        0 decisions
    in
    float_of_int hits /. float_of_int (Array.length decisions)
  end

let deadline_satisfaction cluster decisions =
  let n = Array.length decisions in
  if n = 0 then 1.0
  else begin
    let hits = ref 0 in
    for i = 0 to n - 1 do
      if meets_deadline cluster decisions.(i) then incr hits
    done;
    float_of_int !hits /. float_of_int n
  end

let mean_latency_ref cluster decisions =
  if Array.length decisions = 0 then 0.0
  else
    (* es_lint: cold — fold/closure reference oracle *)
    Array.fold_left (fun acc d -> acc +. of_decision_ref cluster d) 0.0 decisions
    /. float_of_int (Array.length decisions)

let mean_latency cluster decisions =
  let n = Array.length decisions in
  if n = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. of_decision cluster decisions.(i)
    done;
    !acc /. float_of_int n
  end
