open Es_edge
open Es_surgery

let balanced_greedy cluster ~plans =
  let nd = Cluster.n_devices cluster and ns = Cluster.n_servers cluster in
  if Array.length plans <> nd then invalid_arg "Assign.balanced_greedy: plans size mismatch";
  let bw_load = Array.make ns 0.0 in
  let cpu_load = Array.make ns 0.0 in
  let assignment = Array.make nd 0 in
  let demand dev_id =
    let dev = cluster.Cluster.devices.(dev_id) in
    let plan = plans.(dev_id) in
    dev.Cluster.rate
    *. ((8.0 *. Plan.transfer_bytes plan /. 1e6) +. (Plan.srv_flops plan /. 1e9))
  in
  let order = Array.init nd (fun i -> i) in
  Array.sort (fun a b -> Float.compare (demand b) (demand a)) order;
  Array.iter
    (fun dev_id ->
      let dev = cluster.Cluster.devices.(dev_id) in
      let plan = plans.(dev_id) in
      let best = ref 0 and best_load = ref infinity in
      for s = 0 to ns - 1 do
        let srv = cluster.Cluster.servers.(s) in
        let work = Plan.server_time srv.Cluster.sproc.Processor.perf plan in
        let bw =
          bw_load.(s)
          +. (dev.Cluster.rate *. 8.0 *. Plan.transfer_bytes plan /. srv.Cluster.ap_bandwidth_bps)
        in
        let cpu = cpu_load.(s) +. (dev.Cluster.rate *. work) in
        let load = Float.max bw cpu in
        if load < !best_load then begin
          best_load := load;
          best := s
        end
      done;
      let s = !best in
      assignment.(dev_id) <- s;
      if not (Plan.is_device_only plan) then begin
        let srv = cluster.Cluster.servers.(s) in
        let work = Plan.server_time srv.Cluster.sproc.Processor.perf plan in
        bw_load.(s) <-
          bw_load.(s)
          +. (dev.Cluster.rate *. 8.0 *. Plan.transfer_bytes plan /. srv.Cluster.ap_bandwidth_bps);
        cpu_load.(s) <- cpu_load.(s) +. (dev.Cluster.rate *. work)
      end)
    order;
  assignment

let local_search ?(max_passes = 3) ~n_servers ~eval assignment =
  let a = Array.copy assignment in
  let n = Array.length a in
  let best = ref (eval a) in
  let improved = ref true in
  let pass = ref 0 in
  while !improved && !pass < max_passes do
    improved := false;
    incr pass;
    (* Single-device moves. *)
    for i = 0 to n - 1 do
      let original = a.(i) in
      for s = 0 to n_servers - 1 do
        if s <> original then begin
          a.(i) <- s;
          let v = eval a in
          if v < !best -. 1e-12 then begin
            best := v;
            improved := true
          end
          else a.(i) <- original
        end
      done
    done;
    (* Pairwise swaps. *)
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if a.(i) <> a.(j) then begin
          let ai = a.(i) and aj = a.(j) in
          a.(i) <- aj;
          a.(j) <- ai;
          let v = eval a in
          if v < !best -. 1e-12 then begin
            best := v;
            improved := true
          end
          else begin
            a.(i) <- ai;
            a.(j) <- aj
          end
        end
      done
    done
  done;
  a
