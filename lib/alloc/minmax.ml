(* es_lint: hot *)
type item = {
  key : int;
  fixed_s : float;
  bits : float;
  work_s : float;
  deadline_s : float;
  peak_bps : float;
  rate : float;
}

type grant = { bandwidth_bps : float; compute_share : float }

type result = { theta : float; grants : (int * grant) list }

(* ------------------------------------------------------------------ *)
(* Reference implementation, kept verbatim as the qcheck oracle for the
   flat solver below ([solve] and [solve_ref] must agree bit-for-bit on
   every input).  Allocates per-θ-probe bounds records, options and
   closures — exactly the cost the flat port removes.                  *)
(* ------------------------------------------------------------------ *)

(* Per-item transfer-time bounds at a trial θ.  [u] is the per-request
   transfer time; the server time is s = R − u. *)
type split_bounds = { item : item; slack : float; u_lo : float; u_hi : float }

let margin_time margin it = margin /. it.rate

let bounds_at margin theta it =
  let slack = (theta *. it.deadline_s) -. it.fixed_s in
  if slack <= 0.0 then None
  else begin
    let mt = margin_time margin it in
    if it.bits = 0.0 && it.work_s = 0.0 then
      Some { item = it; slack; u_lo = 0.0; u_hi = 0.0 }
    else if it.bits = 0.0 then begin
      (* Compute-only: the whole slack (capped by stability) is server time. *)
      if it.work_s <= Float.min slack mt then Some { item = it; slack; u_lo = 0.0; u_hi = 0.0 }
      else None
    end
    else if it.work_s = 0.0 then begin
      let u = Float.min slack mt in
      let u_min = it.bits /. it.peak_bps in
      if u_min <= u then Some { item = it; slack; u_lo = u; u_hi = u } else None
    end
    else begin
      let u_lo = Float.max (it.bits /. it.peak_bps) (slack -. mt) in
      let u_hi = Float.min (slack -. it.work_s) mt in
      if u_lo <= u_hi && u_lo > 0.0 then Some { item = it; slack; u_lo; u_hi } else None
    end
  end

(* KKT split for multiplier mu, clamped to the per-item bounds. *)
let split_at mu b bounds =
  let it = bounds.item in
  if it.bits = 0.0 then 0.0
  else if it.work_s = 0.0 then bounds.u_hi
  else begin
    let u = bounds.slack /. (1.0 +. sqrt (mu *. b *. it.work_s /. it.bits)) in
    Es_util.Numeric.clamp ~lo:bounds.u_lo ~hi:bounds.u_hi u
  end

let fill_splits mu b all_bounds us =
  for i = 0 to Array.length all_bounds - 1 do
    us.(i) <- split_at mu b all_bounds.(i)
  done

let loads margin b all_bounds us =
  let f = ref 0.0 and g = ref 0.0 in
  for i = 0 to Array.length all_bounds - 1 do
    let bounds = all_bounds.(i) in
    let u = us.(i) in
    let it = bounds.item in
    if it.bits > 0.0 then f := !f +. (it.bits /. u /. b);
    if it.work_s > 0.0 then begin
      let s =
        if it.bits = 0.0 then Float.min bounds.slack (margin_time margin it)
        else bounds.slack -. u
      in
      g := !g +. (it.work_s /. s)
    end
  done;
  (!f, !g)

(* Minimum of max(bandwidth load, compute load) over the splits; convex, the
   optimum is at the f = g crossing of the KKT path (or at a clamp end). *)
let best_loadmax margin b all_bounds =
  let us = Array.make (Array.length all_bounds) 0.0 in
  let eval mu =
    fill_splits mu b all_bounds us;
    let f, g = loads margin b all_bounds us in
    (Float.max f g, us)
  in
  let lo = ref 1e-12 and hi = ref 1e12 in
  (* f − g is increasing in mu; find the sign change. *)
  let fg mu =
    fill_splits mu b all_bounds us;
    let f, g = loads margin b all_bounds us in
    f -. g
  in
  if fg !lo >= 0.0 then eval !lo
  else if fg !hi <= 0.0 then eval !hi
  else begin
    for _ = 1 to 60 do
      let mid = sqrt (!lo *. !hi) in
      if fg mid < 0.0 then lo := mid else hi := mid
    done;
    eval !hi
  end

exception Infeasible_theta

let feasible_at margin b items theta =
  match
    (* es_lint: cold — reference path, per-probe record/option build *)
    Array.map
      (fun it ->
        match bounds_at margin theta it with
        | Some bnd -> bnd
        | None -> raise Infeasible_theta)
      items
  with
  | exception Infeasible_theta -> None
  | all_bounds ->
      let loadmax, us = best_loadmax margin b all_bounds in
      if loadmax <= 1.0 +. 1e-9 then Some (all_bounds, us) else None

(* Redistribute leftover capacity proportionally, respecting per-item caps;
   a few clip passes suffice. *)
let scale_up_bandwidth b grants peaks =
  let grants = Array.copy grants in
  for _ = 1 to 3 do
    let used = Array.fold_left ( +. ) 0.0 grants in
    let spare = b -. used in
    if spare > 1e-6 then begin
      let expandable = ref 0.0 in
      (* es_lint: cold *)
      Array.iteri (fun i g -> if g > 0.0 && g < peaks.(i) then expandable := !expandable +. g) grants;
      if !expandable > 0.0 then
        (* es_lint: cold *)
        Array.iteri
          (fun i g ->
            if g > 0.0 && g < peaks.(i) then
              grants.(i) <- Float.min peaks.(i) (g +. (spare *. g /. !expandable)))
          grants
    end
  done;
  grants

let scale_up_shares shares =
  let used = Array.fold_left ( +. ) 0.0 shares in
  if used > 0.0 && used < 1.0 then
    (* es_lint: cold *)
    Array.map (fun s -> if s > 0.0 then Float.min 1.0 (s /. used) else 0.0) shares
  else shares

let solve_ref ?(stability_margin = 0.95) ?(tol = 1e-3) ~bandwidth_bps items =
  if bandwidth_bps <= 0.0 then invalid_arg "Minmax.solve: non-positive bandwidth";
  if items = [] then Some { theta = 0.0; grants = [] }
  else begin
    let items = Array.of_list items in
    (* Sustained-load prechecks: no θ is feasible when offered load exceeds
       capacity. *)
    let bit_load = ref 0.0 and work_load = ref 0.0 in
    (* es_lint: cold *)
    Array.iter
      (fun it ->
        bit_load := !bit_load +. (it.rate *. it.bits);
        work_load := !work_load +. (it.rate *. it.work_s))
      items;
    let peak_ok =
      (* es_lint: cold *)
      Array.for_all
        (fun it -> it.bits = 0.0 || it.rate *. it.bits /. it.peak_bps <= stability_margin)
        items
    in
    if
      !bit_load > stability_margin *. bandwidth_bps
      || !work_load > stability_margin || not peak_ok
    then None
    else begin
      let feasible = feasible_at stability_margin bandwidth_bps items in
      let theta_lo =
        (* es_lint: cold *)
        Array.fold_left (fun acc it -> Float.max acc (it.fixed_s /. it.deadline_s)) 0.0 items
      in
      (* Grow an upper bracket. *)
      let rec grow theta n =
        if n > 64 then None
        else
          match feasible theta with
          | Some _ -> Some theta
          | None -> grow (theta *. 2.0) (n + 1)
      in
      match grow (Float.max 1.0 (theta_lo +. 1e-6)) 0 with
      | None -> None
      | Some hi0 ->
          let lo = ref theta_lo and hi = ref hi0 in
          while !hi -. !lo > tol *. Float.max 1.0 !hi do
            let mid = 0.5 *. (!lo +. !hi) in
            match feasible mid with Some _ -> hi := mid | None -> lo := mid
          done;
          (match feasible !hi with
          | None -> None (* numerically impossible, but keep total *)
          | Some (all_bounds, us) ->
              let n = Array.length all_bounds in
              let bws = Array.make n 0.0 in
              let peaks = Array.make n 0.0 in
              let shares = Array.make n 0.0 in
              (* es_lint: cold *)
              Array.iteri
                (fun i bounds ->
                  let it = bounds.item in
                  let u = us.(i) in
                  peaks.(i) <- it.peak_bps;
                  if it.bits > 0.0 then bws.(i) <- it.bits /. u;
                  if it.work_s > 0.0 then begin
                    let s =
                      if it.bits = 0.0 then
                        Float.min bounds.slack (margin_time stability_margin it)
                      else bounds.slack -. u
                    in
                    shares.(i) <- it.work_s /. s
                  end)
                all_bounds;
              let bws = scale_up_bandwidth bandwidth_bps bws peaks in
              let shares = scale_up_shares shares in
              let grants =
                (* es_lint: cold *)
                List.init n (fun i ->
                    ( all_bounds.(i).item.key,
                      { bandwidth_bps = bws.(i); compute_share = shares.(i) } ))
              in
              Some { theta = !hi; grants })
    end
  end

(* ------------------------------------------------------------------ *)
(* Flat solver: the same bisections running over parallel scratch arrays
   (one block borrowed per solve), with the per-probe state — slack and
   split bounds, KKT splits, induced loads — written in place.  Every
   float operation replicates the reference in the same order, so results
   are bit-identical; the steady state allocates only the output grant
   list.  [cells] carries the cross-closure scalars (f, g, μ, θ) so inner
   evaluations neither box arguments nor return floats.                 *)
(* ------------------------------------------------------------------ *)

let cell_f = 0
let cell_g = 1
let cell_mu = 2
let cell_theta = 3

let solve ?(stability_margin = 0.95) ?(tol = 1e-3) ~bandwidth_bps items =
  if bandwidth_bps <= 0.0 then invalid_arg "Minmax.solve: non-positive bandwidth";
  if items = [] then Some { theta = 0.0; grants = [] }
  else begin
    let n = List.length items in
    let b = bandwidth_bps in
    let margin = stability_margin in
    let keys = Es_util.Scratch.borrow_ints n in
    let fx = Es_util.Scratch.borrow_floats n in
    let bits = Es_util.Scratch.borrow_floats n in
    let work = Es_util.Scratch.borrow_floats n in
    let dl = Es_util.Scratch.borrow_floats n in
    let peak = Es_util.Scratch.borrow_floats n in
    let rate = Es_util.Scratch.borrow_floats n in
    let slack = Es_util.Scratch.borrow_floats n in
    let ulo = Es_util.Scratch.borrow_floats n in
    let uhi = Es_util.Scratch.borrow_floats n in
    let us = Es_util.Scratch.borrow_floats n in
    let bws = Es_util.Scratch.borrow_floats n in
    let shares = Es_util.Scratch.borrow_floats n in
    let cells = Es_util.Scratch.borrow_floats 4 in
    let release_all () =
      Es_util.Scratch.release_floats cells;
      Es_util.Scratch.release_floats shares;
      Es_util.Scratch.release_floats bws;
      Es_util.Scratch.release_floats us;
      Es_util.Scratch.release_floats uhi;
      Es_util.Scratch.release_floats ulo;
      Es_util.Scratch.release_floats slack;
      Es_util.Scratch.release_floats rate;
      Es_util.Scratch.release_floats peak;
      Es_util.Scratch.release_floats dl;
      Es_util.Scratch.release_floats work;
      Es_util.Scratch.release_floats bits;
      Es_util.Scratch.release_floats fx;
      Es_util.Scratch.release_ints keys
    in
    (* es_lint: cold — once-per-solve release bracket, not a per-item closure *)
    Fun.protect ~finally:release_all (fun () ->
        let rec fill i = function
          | [] -> ()
          | (it : item) :: tl ->
              keys.(i) <- it.key;
              fx.(i) <- it.fixed_s;
              bits.(i) <- it.bits;
              work.(i) <- it.work_s;
              dl.(i) <- it.deadline_s;
              peak.(i) <- it.peak_bps;
              rate.(i) <- it.rate;
              fill (i + 1) tl
        in
        fill 0 items;
        (* Sustained-load prechecks: no θ is feasible when offered load
           exceeds capacity. *)
        let bit_load = ref 0.0 and work_load = ref 0.0 in
        for i = 0 to n - 1 do
          bit_load := !bit_load +. (rate.(i) *. bits.(i));
          work_load := !work_load +. (rate.(i) *. work.(i))
        done;
        let peak_ok = ref true in
        for i = 0 to n - 1 do
          if not (bits.(i) = 0.0 || rate.(i) *. bits.(i) /. peak.(i) <= margin) then
            peak_ok := false
        done;
        if !bit_load > margin *. b || !work_load > margin || not !peak_ok then None
        else begin
          (* [bounds_at] over every item at θ = cells.(cell_theta); false as
             soon as one item has no admissible split. *)
          let bounds_ok () =
            let theta = cells.(cell_theta) in
            let ok = ref true in
            let i = ref 0 in
            while !ok && !i < n do
              let k = !i in
              let slack_k = (theta *. dl.(k)) -. fx.(k) in
              if slack_k <= 0.0 then ok := false
              else begin
                let mt = margin /. rate.(k) in
                if bits.(k) = 0.0 && work.(k) = 0.0 then begin
                  slack.(k) <- slack_k;
                  ulo.(k) <- 0.0;
                  uhi.(k) <- 0.0
                end
                else if bits.(k) = 0.0 then begin
                  (* Compute-only: the whole slack (capped by stability) is
                     server time. *)
                  if work.(k) <= Float.min slack_k mt then begin
                    slack.(k) <- slack_k;
                    ulo.(k) <- 0.0;
                    uhi.(k) <- 0.0
                  end
                  else ok := false
                end
                else if work.(k) = 0.0 then begin
                  let u = Float.min slack_k mt in
                  let u_min = bits.(k) /. peak.(k) in
                  if u_min <= u then begin
                    slack.(k) <- slack_k;
                    ulo.(k) <- u;
                    uhi.(k) <- u
                  end
                  else ok := false
                end
                else begin
                  let u_lo = Float.max (bits.(k) /. peak.(k)) (slack_k -. mt) in
                  let u_hi = Float.min (slack_k -. work.(k)) mt in
                  if u_lo <= u_hi && u_lo > 0.0 then begin
                    slack.(k) <- slack_k;
                    ulo.(k) <- u_lo;
                    uhi.(k) <- u_hi
                  end
                  else ok := false
                end
              end;
              incr i
            done;
            !ok
          in
          (* KKT splits at μ = cells.(cell_mu) and the induced loads, fused
             into one pass: us.(i) is written before it is read, so the
             (f, g) sums accumulate in the reference's index order. *)
          let fg_eval () =
            let mu = cells.(cell_mu) in
            let f = ref 0.0 and g = ref 0.0 in
            for i = 0 to n - 1 do
              let u =
                if bits.(i) = 0.0 then 0.0
                else if work.(i) = 0.0 then uhi.(i)
                else begin
                  let u0 = slack.(i) /. (1.0 +. sqrt (mu *. b *. work.(i) /. bits.(i))) in
                  (* Numeric.clamp, inlined *)
                  if u0 < ulo.(i) then ulo.(i) else if u0 > uhi.(i) then uhi.(i) else u0
                end
              in
              us.(i) <- u;
              if bits.(i) > 0.0 then f := !f +. (bits.(i) /. u /. b);
              if work.(i) > 0.0 then begin
                let s =
                  if bits.(i) = 0.0 then Float.min slack.(i) (margin /. rate.(i))
                  else slack.(i) -. u
                in
                g := !g +. (work.(i) /. s)
              end
            done;
            cells.(cell_f) <- !f;
            cells.(cell_g) <- !g
          in
          (* best_loadmax: f − g is increasing in μ; geometric bisection to
             the crossing, leaving [us] filled at the final μ. *)
          let loadmax () =
            cells.(cell_mu) <- 1e-12;
            fg_eval ();
            if cells.(cell_f) -. cells.(cell_g) >= 0.0 then
              Float.max cells.(cell_f) cells.(cell_g)
            else begin
              cells.(cell_mu) <- 1e12;
              fg_eval ();
              if cells.(cell_f) -. cells.(cell_g) <= 0.0 then
                Float.max cells.(cell_f) cells.(cell_g)
              else begin
                let lo = ref 1e-12 and hi = ref 1e12 in
                for _ = 1 to 60 do
                  let mid = sqrt (!lo *. !hi) in
                  cells.(cell_mu) <- mid;
                  fg_eval ();
                  if cells.(cell_f) -. cells.(cell_g) < 0.0 then lo := mid else hi := mid
                done;
                cells.(cell_mu) <- !hi;
                fg_eval ();
                Float.max cells.(cell_f) cells.(cell_g)
              end
            end
          in
          let feasible () = bounds_ok () && loadmax () <= 1.0 +. 1e-9 in
          let theta_lo = ref 0.0 in
          for i = 0 to n - 1 do
            theta_lo := Float.max !theta_lo (fx.(i) /. dl.(i))
          done;
          let theta_lo = !theta_lo in
          (* Grow an upper bracket. *)
          let th = ref (Float.max 1.0 (theta_lo +. 1e-6)) in
          let tries = ref 0 in
          let found = ref false in
          while (not !found) && !tries <= 64 do
            cells.(cell_theta) <- !th;
            if feasible () then found := true
            else begin
              th := !th *. 2.0;
              incr tries
            end
          done;
          if not !found then None
          else begin
            let lo = ref theta_lo and hi = ref !th in
            while !hi -. !lo > tol *. Float.max 1.0 !hi do
              let mid = 0.5 *. (!lo +. !hi) in
              cells.(cell_theta) <- mid;
              if feasible () then hi := mid else lo := mid
            done;
            cells.(cell_theta) <- !hi;
            if not (feasible ()) then None (* numerically impossible, but keep total *)
            else begin
              for i = 0 to n - 1 do
                bws.(i) <- 0.0;
                shares.(i) <- 0.0;
                if bits.(i) > 0.0 then bws.(i) <- bits.(i) /. us.(i);
                if work.(i) > 0.0 then begin
                  let s =
                    if bits.(i) = 0.0 then Float.min slack.(i) (margin /. rate.(i))
                    else slack.(i) -. us.(i)
                  in
                  shares.(i) <- work.(i) /. s
                end
              done;
              (* scale_up_bandwidth, in place: redistribute leftover capacity
                 proportionally, respecting per-item caps. *)
              for _ = 1 to 3 do
                let used = ref 0.0 in
                for i = 0 to n - 1 do
                  used := !used +. bws.(i)
                done;
                let spare = b -. !used in
                if spare > 1e-6 then begin
                  let expandable = ref 0.0 in
                  for i = 0 to n - 1 do
                    if bws.(i) > 0.0 && bws.(i) < peak.(i) then
                      expandable := !expandable +. bws.(i)
                  done;
                  if !expandable > 0.0 then
                    for i = 0 to n - 1 do
                      let g = bws.(i) in
                      if g > 0.0 && g < peak.(i) then
                        bws.(i) <- Float.min peak.(i) (g +. (spare *. g /. !expandable))
                    done
                end
              done;
              (* scale_up_shares, in place *)
              let used = ref 0.0 in
              for i = 0 to n - 1 do
                used := !used +. shares.(i)
              done;
              if !used > 0.0 && !used < 1.0 then begin
                let u = !used in
                for i = 0 to n - 1 do
                  if shares.(i) > 0.0 then shares.(i) <- Float.min 1.0 (shares.(i) /. u)
                done
              end;
              let grants =
                (* es_lint: cold — the keyed grant list is the API's output shape *)
                List.init n (fun i ->
                    (keys.(i), { bandwidth_bps = bws.(i); compute_share = shares.(i) }))
              in
              Some { theta = !hi; grants }
            end
          end
        end)
  end

let grants_array result ~n =
  let arr = Array.make n None in
  (* es_lint: cold *)
  List.iter (fun (k, g) -> if k >= 0 && k < n then arr.(k) <- Some g) result.grants;
  arr
