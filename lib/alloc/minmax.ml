type item = {
  key : int;
  fixed_s : float;
  bits : float;
  work_s : float;
  deadline_s : float;
  peak_bps : float;
  rate : float;
}

type grant = { bandwidth_bps : float; compute_share : float }

type result = { theta : float; grants : (int * grant) list }

(* Per-item transfer-time bounds at a trial θ.  [u] is the per-request
   transfer time; the server time is s = R − u. *)
type split_bounds = { item : item; slack : float; u_lo : float; u_hi : float }

let margin_time margin it = margin /. it.rate

let bounds_at margin theta it =
  let slack = (theta *. it.deadline_s) -. it.fixed_s in
  if slack <= 0.0 then None
  else begin
    let mt = margin_time margin it in
    if it.bits = 0.0 && it.work_s = 0.0 then
      Some { item = it; slack; u_lo = 0.0; u_hi = 0.0 }
    else if it.bits = 0.0 then begin
      (* Compute-only: the whole slack (capped by stability) is server time. *)
      if it.work_s <= Float.min slack mt then Some { item = it; slack; u_lo = 0.0; u_hi = 0.0 }
      else None
    end
    else if it.work_s = 0.0 then begin
      let u = Float.min slack mt in
      let u_min = it.bits /. it.peak_bps in
      if u_min <= u then Some { item = it; slack; u_lo = u; u_hi = u } else None
    end
    else begin
      let u_lo = Float.max (it.bits /. it.peak_bps) (slack -. mt) in
      let u_hi = Float.min (slack -. it.work_s) mt in
      if u_lo <= u_hi && u_lo > 0.0 then Some { item = it; slack; u_lo; u_hi } else None
    end
  end

(* KKT split for multiplier mu, clamped to the per-item bounds. *)
let split_at mu b bounds =
  let it = bounds.item in
  if it.bits = 0.0 then 0.0
  else if it.work_s = 0.0 then bounds.u_hi
  else begin
    let u = bounds.slack /. (1.0 +. sqrt (mu *. b *. it.work_s /. it.bits)) in
    Es_util.Numeric.clamp ~lo:bounds.u_lo ~hi:bounds.u_hi u
  end

(* The bisection inner loops run on flat arrays with a single reusable split
   buffer: ~60 θ probes × ~60 μ probes per server per outer iteration made
   the old per-probe List.map/List.iter2 allocation the solver's top cost. *)
let fill_splits mu b all_bounds us =
  for i = 0 to Array.length all_bounds - 1 do
    us.(i) <- split_at mu b all_bounds.(i)
  done

let loads margin b all_bounds us =
  let f = ref 0.0 and g = ref 0.0 in
  for i = 0 to Array.length all_bounds - 1 do
    let bounds = all_bounds.(i) in
    let u = us.(i) in
    let it = bounds.item in
    if it.bits > 0.0 then f := !f +. (it.bits /. u /. b);
    if it.work_s > 0.0 then begin
      let s =
        if it.bits = 0.0 then Float.min bounds.slack (margin_time margin it)
        else bounds.slack -. u
      in
      g := !g +. (it.work_s /. s)
    end
  done;
  (!f, !g)

(* Minimum of max(bandwidth load, compute load) over the splits; convex, the
   optimum is at the f = g crossing of the KKT path (or at a clamp end). *)
let best_loadmax margin b all_bounds =
  let us = Array.make (Array.length all_bounds) 0.0 in
  let eval mu =
    fill_splits mu b all_bounds us;
    let f, g = loads margin b all_bounds us in
    (Float.max f g, us)
  in
  let lo = ref 1e-12 and hi = ref 1e12 in
  (* f − g is increasing in mu; find the sign change. *)
  let fg mu =
    fill_splits mu b all_bounds us;
    let f, g = loads margin b all_bounds us in
    f -. g
  in
  if fg !lo >= 0.0 then eval !lo
  else if fg !hi <= 0.0 then eval !hi
  else begin
    for _ = 1 to 60 do
      let mid = sqrt (!lo *. !hi) in
      if fg mid < 0.0 then lo := mid else hi := mid
    done;
    eval !hi
  end

exception Infeasible_theta

let feasible_at margin b items theta =
  match
    Array.map
      (fun it ->
        match bounds_at margin theta it with
        | Some bnd -> bnd
        | None -> raise Infeasible_theta)
      items
  with
  | exception Infeasible_theta -> None
  | all_bounds ->
      let loadmax, us = best_loadmax margin b all_bounds in
      if loadmax <= 1.0 +. 1e-9 then Some (all_bounds, us) else None

(* Redistribute leftover capacity proportionally, respecting per-item caps;
   a few clip passes suffice. *)
let scale_up_bandwidth b grants peaks =
  let grants = Array.copy grants in
  for _ = 1 to 3 do
    let used = Array.fold_left ( +. ) 0.0 grants in
    let spare = b -. used in
    if spare > 1e-6 then begin
      let expandable = ref 0.0 in
      Array.iteri (fun i g -> if g > 0.0 && g < peaks.(i) then expandable := !expandable +. g) grants;
      if !expandable > 0.0 then
        Array.iteri
          (fun i g ->
            if g > 0.0 && g < peaks.(i) then
              grants.(i) <- Float.min peaks.(i) (g +. (spare *. g /. !expandable)))
          grants
    end
  done;
  grants

let scale_up_shares shares =
  let used = Array.fold_left ( +. ) 0.0 shares in
  if used > 0.0 && used < 1.0 then
    Array.map (fun s -> if s > 0.0 then Float.min 1.0 (s /. used) else 0.0) shares
  else shares

let solve ?(stability_margin = 0.95) ?(tol = 1e-3) ~bandwidth_bps items =
  if bandwidth_bps <= 0.0 then invalid_arg "Minmax.solve: non-positive bandwidth";
  if items = [] then Some { theta = 0.0; grants = [] }
  else begin
    let items = Array.of_list items in
    (* Sustained-load prechecks: no θ is feasible when offered load exceeds
       capacity. *)
    let bit_load = ref 0.0 and work_load = ref 0.0 in
    Array.iter
      (fun it ->
        bit_load := !bit_load +. (it.rate *. it.bits);
        work_load := !work_load +. (it.rate *. it.work_s))
      items;
    let peak_ok =
      Array.for_all
        (fun it -> it.bits = 0.0 || it.rate *. it.bits /. it.peak_bps <= stability_margin)
        items
    in
    if
      !bit_load > stability_margin *. bandwidth_bps
      || !work_load > stability_margin || not peak_ok
    then None
    else begin
      let feasible = feasible_at stability_margin bandwidth_bps items in
      let theta_lo =
        Array.fold_left (fun acc it -> Float.max acc (it.fixed_s /. it.deadline_s)) 0.0 items
      in
      (* Grow an upper bracket. *)
      let rec grow theta n =
        if n > 64 then None
        else
          match feasible theta with
          | Some _ -> Some theta
          | None -> grow (theta *. 2.0) (n + 1)
      in
      match grow (Float.max 1.0 (theta_lo +. 1e-6)) 0 with
      | None -> None
      | Some hi0 ->
          let lo = ref theta_lo and hi = ref hi0 in
          while !hi -. !lo > tol *. Float.max 1.0 !hi do
            let mid = 0.5 *. (!lo +. !hi) in
            match feasible mid with Some _ -> hi := mid | None -> lo := mid
          done;
          (match feasible !hi with
          | None -> None (* numerically impossible, but keep total *)
          | Some (all_bounds, us) ->
              let n = Array.length all_bounds in
              let bws = Array.make n 0.0 in
              let peaks = Array.make n 0.0 in
              let shares = Array.make n 0.0 in
              Array.iteri
                (fun i bounds ->
                  let it = bounds.item in
                  let u = us.(i) in
                  peaks.(i) <- it.peak_bps;
                  if it.bits > 0.0 then bws.(i) <- it.bits /. u;
                  if it.work_s > 0.0 then begin
                    let s =
                      if it.bits = 0.0 then
                        Float.min bounds.slack (margin_time stability_margin it)
                      else bounds.slack -. u
                    in
                    shares.(i) <- it.work_s /. s
                  end)
                all_bounds;
              let bws = scale_up_bandwidth bandwidth_bps bws peaks in
              let shares = scale_up_shares shares in
              let grants =
                List.init n (fun i ->
                    ( all_bounds.(i).item.key,
                      { bandwidth_bps = bws.(i); compute_share = shares.(i) } ))
              in
              Some { theta = !hi; grants })
    end
  end

let grants_array result ~n =
  let arr = Array.make n None in
  List.iter (fun (k, g) -> if k >= 0 && k < n then arr.(k) <- Some g) result.grants;
  arr
