(** Optimal min-max resource allocation for one server — the convex inner
    step of the joint optimizer.

    Given the devices assigned to a server with their surgery plans fixed,
    allocate uplink bandwidth [b_i] (Σ b_i ≤ B, b_i ≤ radio peak) and
    compute shares [ρ_i] (Σ ρ_i ≤ 1) to minimize the maximum
    deadline-normalized latency

      θ = max_i (fixed_i + bits_i/b_i + work_i/ρ_i) / deadline_i.

    Solved exactly (up to tolerance) by bisection on θ: a trial θ gives each
    device a slack R_i to split between transfer time u_i and server time
    s_i = R_i − u_i; minimizing the worse of the two induced resource loads
    over the splits is a separable convex problem whose KKT point is

      u_i(μ) = R_i / (1 + √(μ·B·work_i/bits_i)),

    with the scalar multiplier μ found by a second bisection balancing the
    bandwidth load against the compute load.  Queueing-stability caps
    (λ_i·u_i ≤ margin, λ_i·s_i ≤ margin) bound the split so the granted
    rates survive sustained load, not just one request. *)

type item = {
  key : int;  (** caller's identifier (device id) *)
  fixed_s : float;  (** latency the allocator cannot influence: device-side
                        compute + link RTT *)
  bits : float;  (** uplink + downlink volume per request, in bits *)
  work_s : float;  (** server execution time per request at full speed *)
  deadline_s : float;
  peak_bps : float;  (** the device radio's ceiling *)
  rate : float;  (** mean request rate, for the stability caps *)
}

type grant = { bandwidth_bps : float; compute_share : float }

type result = {
  theta : float;  (** achieved max deadline-normalized latency *)
  grants : (int * grant) list;  (** keyed by [item.key] *)
}

val solve :
  ?stability_margin:float ->
  ?tol:float ->
  bandwidth_bps:float ->
  item list ->
  result option
(** [None] when no allocation keeps every device stable (load exceeds the
    server's bandwidth or compute capacity outright).  A result with
    [theta > 1.0] is stable but misses some deadline.  Unused capacity is
    redistributed after the min-max point is found, so grants are
    leftover-free.  [stability_margin] defaults to 0.95; [tol] is the
    relative bisection tolerance on θ (default 1e-3). *)

val solve_ref :
  ?stability_margin:float ->
  ?tol:float ->
  bandwidth_bps:float ->
  item list ->
  result option
(** The original record/closure-based solver, kept verbatim as the qcheck
    oracle: {!solve} (which runs the same bisections over borrowed scratch
    arrays, allocation-free in steady state) must return bit-identical
    results on every input. *)

val grants_array : result -> n:int -> grant option array
(** Scatter the keyed grants into a device-indexed array. *)
