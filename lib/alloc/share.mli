(** Non-optimal bandwidth/compute sharing rules.

    These are the allocation policies the baselines use (and what the
    ablation compares the optimal {!Minmax} step against): equal split,
    demand-proportional split, and the square-root rule that is optimal for
    the *sum*-latency objective (by Cauchy–Schwarz, minimizing
    Σ w_i·(bits_i/b_i) under Σ b_i ≤ B gives b_i ∝ √(w_i·bits_i)). *)

val equal : bandwidth_bps:float -> Minmax.item list -> (int * Minmax.grant) list
(** Every offloading device gets [B/n] (capped at its radio peak) and [1/n]
    of the server. *)

val proportional : bandwidth_bps:float -> Minmax.item list -> (int * Minmax.grant) list
(** Shares proportional to each device's demand (bits, server work). *)

val sqrt_rule :
  ?weights:(Minmax.item -> float) ->
  bandwidth_bps:float ->
  Minmax.item list ->
  (int * Minmax.grant) list
(** Sum-latency-optimal square-root allocation; default weight is the
    request rate (minimizing aggregate latency per unit time).  Peak caps
    are honored by iterative clipping. *)

(** {2 Reference oracles}

    The closure/[Array.map]-based originals of the three rules, retained as
    qcheck oracles for the scratch-buffer ports above: each rule and its
    [_ref] twin must return bit-identical grant lists on every input. *)

val equal_ref : bandwidth_bps:float -> Minmax.item list -> (int * Minmax.grant) list

val proportional_ref :
  bandwidth_bps:float -> Minmax.item list -> (int * Minmax.grant) list

val sqrt_rule_ref :
  ?weights:(Minmax.item -> float) ->
  bandwidth_bps:float ->
  Minmax.item list ->
  (int * Minmax.grant) list
