(** Admission control for overload.

    When the offered load exceeds what any allocation can stabilize, the
    remaining degree of freedom is *which* devices get served remotely.
    Rejected devices fall back to their given local plan (their requests
    never enter the network) instead of destabilizing everyone's queues.

    The policy is the classic greedy knapsack heuristic: repeatedly evict
    the offloading device with the highest load density (server + uplink
    demand per unit of value) until the min-max allocator accepts every
    server. *)

type outcome = {
  decisions : Es_edge.Decision.t array;
  served : int list;  (** device ids still offloading *)
  rejected : int list;  (** device ids forced local, eviction order *)
}

(** Deterministic token bucket for per-request rate limiting.

    Tokens refill lazily as a pure function of the clock handed in by the
    caller (the simulator passes simulated time), so behavior is
    bit-identical under any sampling pattern and the bucket never schedules
    anything itself.  The serving runner keeps one bucket per server and —
    when the configured rate is 0 — re-derives the refill rate from the
    server's aggregate granted service capacity on every reconfiguration,
    which is what makes the limiter utilization-aware. *)
module Token_bucket : sig
  type t

  val create : ?initial:float -> rate:float -> burst:float -> unit -> t
  (** [create ~rate ~burst ()] starts full (or at [initial] tokens,
      clamped to [burst]).  [rate] is tokens/second.
      @raise Invalid_argument on negative or non-finite parameters. *)

  val try_take : ?cost:float -> t -> now:float -> bool
  (** Refill to [now], then atomically take [cost] (default 1) tokens;
      [false] leaves the bucket unchanged apart from the refill. *)

  val tokens : t -> now:float -> float
  (** Balance after refilling to [now]. *)

  val set_rate : t -> now:float -> float -> unit
  (** Refill at the old rate up to [now], then switch rates. *)

  val rate : t -> float
  val burst : t -> float
end

type criterion =
  [ `Stable  (** stop once every queue is stable (no unbounded backlog) *)
  | `Deadlines
    (** keep evicting until every still-offloading device also meets its
        deadline analytically — SLO-grade admission *) ]

val control :
  ?metrics:Es_obs.Metric.registry ->
  ?weight:(Es_edge.Cluster.device -> float) ->
  ?until:criterion ->
  local_plan:(int -> Es_surgery.Plan.t) ->
  Es_edge.Cluster.t ->
  assignment:int array ->
  plans:Es_surgery.Plan.t array ->
  outcome
(** [control ~local_plan cluster ~assignment ~plans] serves the largest
    weighted set of devices satisfying [until] (default [`Stable]).
    [weight] (default 1 per device) is the value of serving a device —
    weight devices by rate to maximize served requests instead.
    [local_plan dev_id] supplies the fallback plan for an evicted device.
    Always returns a decision set: with every offloader evicted the
    allocation is trivially feasible.

    [metrics] (optional, off by default) accrues [admission/served] and
    [admission/rejected{reason=stable|deadlines}] counters per call, plus
    [admission/allocation_attempts] counting inner allocator solves. *)

val load_density : Es_edge.Cluster.t -> assignment:int array -> Es_surgery.Plan.t -> int -> float
(** The eviction key: (rate × server work + normalized uplink demand) of a
    device's plan at its assigned server, for tests and introspection. *)
