(* es_lint: hot *)
open Minmax

(* Proportional allocation with per-item caps: clip, then hand the excess
   to unclipped items; three passes make the residual negligible.  An item
   is active iff its raw demand is positive, so the check is inlined rather
   than materialized.  Operates in place on caller-owned arrays (scratch on
   the solver path), touching indices [0..n-1] in order — float op order
   matches the original [Array.iteri] passes exactly. *)
let cap_and_redistribute_into ~budget ~n raw caps grant =
  Array.fill grant 0 n 0.0;
  let remaining = ref budget in
  for _ = 1 to 3 do
    let total_raw = ref 0.0 in
    for i = 0 to n - 1 do
      if raw.(i) > 0.0 && grant.(i) < caps.(i) then total_raw := !total_raw +. raw.(i)
    done;
    if !total_raw > 0.0 && !remaining > 1e-9 then begin
      let budget_now = !remaining in
      for i = 0 to n - 1 do
        if raw.(i) > 0.0 && grant.(i) < caps.(i) then begin
          let add = budget_now *. raw.(i) /. !total_raw in
          let newg = Float.min caps.(i) (grant.(i) +. add) in
          remaining := !remaining -. (newg -. grant.(i));
          grant.(i) <- newg
        end
      done
    end
  done

let cap_and_redistribute_ref ~budget raw caps =
  let n = Array.length raw in
  let grant = Array.make n 0.0 in
  let remaining = ref budget in
  (* es_lint: cold — closure-based reference oracle *)
  let active = Array.map (fun r -> r > 0.0) raw in
  for _ = 1 to 3 do
    let total_raw = ref 0.0 in
    (* es_lint: cold *)
    Array.iteri
      (fun i r -> if active.(i) && grant.(i) < caps.(i) then total_raw := !total_raw +. r)
      raw;
    if !total_raw > 0.0 && !remaining > 1e-9 then begin
      let budget_now = !remaining in
      (* es_lint: cold *)
      Array.iteri
        (fun i r ->
          if active.(i) && grant.(i) < caps.(i) then begin
            let add = budget_now *. r /. !total_raw in
            let newg = Float.min caps.(i) (grant.(i) +. add) in
            remaining := !remaining -. (newg -. grant.(i));
            grant.(i) <- newg
          end)
        raw
    end
  done;
  grant

(* Demand models, as top-level functions so rule application constructs no
   closures.  [`Unit`]-demand for the equal split, raw demand for the
   proportional split, √(weight·demand) for the square-root rule. *)
let bw_demand_equal it = if it.bits > 0.0 then 1.0 else 0.0
let share_demand_equal it = if it.work_s > 0.0 then 1.0 else 0.0
let bw_demand_prop it = it.bits
let share_demand_prop it = it.work_s

let build_grants ~bandwidth_bps items bw_demand share_demand =
  let items = Array.of_list items in
  let n = Array.length items in
  let bw_raw = Es_util.Scratch.borrow_floats n in
  let caps = Es_util.Scratch.borrow_floats n in
  let bws = Es_util.Scratch.borrow_floats n in
  let share_raw = Es_util.Scratch.borrow_floats n in
  for i = 0 to n - 1 do
    bw_raw.(i) <- bw_demand items.(i);
    caps.(i) <- items.(i).peak_bps;
    share_raw.(i) <- share_demand items.(i)
  done;
  cap_and_redistribute_into ~budget:bandwidth_bps ~n bw_raw caps bws;
  let share_total = ref 0.0 in
  for i = 0 to n - 1 do
    share_total := !share_total +. share_raw.(i)
  done;
  let share_total = !share_total in
  let grants =
    (* es_lint: cold — the keyed grant list is the API's output shape *)
    List.init n (fun i ->
        let share = if share_total > 0.0 then share_raw.(i) /. share_total else 0.0 in
        ( items.(i).key,
          { bandwidth_bps = bws.(i); compute_share = share } ))
  in
  Es_util.Scratch.release_floats share_raw;
  Es_util.Scratch.release_floats bws;
  Es_util.Scratch.release_floats caps;
  Es_util.Scratch.release_floats bw_raw;
  grants

let build_grants_ref ~bandwidth_bps items bw_demand share_demand =
  let items = Array.of_list items in
  let n = Array.length items in
  (* es_lint: cold — closure-based reference oracle *)
  let bw_raw = Array.map bw_demand items in
  (* es_lint: cold *)
  let caps = Array.map (fun it -> it.peak_bps) items in
  let bws = cap_and_redistribute_ref ~budget:bandwidth_bps bw_raw caps in
  (* es_lint: cold *)
  let share_raw = Array.map share_demand items in
  let share_total = Array.fold_left ( +. ) 0.0 share_raw in
  (* es_lint: cold *)
  List.init n (fun i ->
      let share = if share_total > 0.0 then share_raw.(i) /. share_total else 0.0 in
      ( items.(i).key,
        { bandwidth_bps = bws.(i); compute_share = share } ))

let equal ~bandwidth_bps items =
  build_grants ~bandwidth_bps items bw_demand_equal share_demand_equal

let proportional ~bandwidth_bps items =
  build_grants ~bandwidth_bps items bw_demand_prop share_demand_prop

let sqrt_rule ?(weights = fun it -> it.rate) ~bandwidth_bps items =
  (* es_lint: cold — per-call demand closures capture [weights] *)
  build_grants ~bandwidth_bps items
    (fun it -> sqrt (Float.max 0.0 (weights it) *. it.bits))
    (fun it -> sqrt (Float.max 0.0 (weights it) *. it.work_s))

let equal_ref ~bandwidth_bps items =
  build_grants_ref ~bandwidth_bps items bw_demand_equal share_demand_equal

let proportional_ref ~bandwidth_bps items =
  build_grants_ref ~bandwidth_bps items bw_demand_prop share_demand_prop

let sqrt_rule_ref ?(weights = fun it -> it.rate) ~bandwidth_bps items =
  (* es_lint: cold — per-call demand closures capture [weights] *)
  build_grants_ref ~bandwidth_bps items
    (fun it -> sqrt (Float.max 0.0 (weights it) *. it.bits))
    (fun it -> sqrt (Float.max 0.0 (weights it) *. it.work_s))
