open Es_edge
open Es_surgery

type outcome = {
  decisions : Decision.t array;
  served : int list;
  rejected : int list;
}

module Token_bucket = struct
  type t = {
    mutable rate : float;
    burst : float;
    mutable tokens : float;
    mutable last : float;
  }

  let create ?initial ~rate ~burst () =
    if not (Float.is_finite rate) || rate < 0.0 then
      invalid_arg "Token_bucket.create: rate must be finite and >= 0";
    if not (Float.is_finite burst) || burst <= 0.0 then
      invalid_arg "Token_bucket.create: burst must be finite and > 0";
    let initial = match initial with Some i -> Float.min i burst | None -> burst in
    if not (Float.is_finite initial) || initial < 0.0 then
      invalid_arg "Token_bucket.create: initial must be finite and >= 0";
    { rate; burst; tokens = initial; last = 0.0 }

  (* Lazy refill: tokens accrue as a pure function of elapsed time, so the
     bucket is deterministic under any sampling pattern and costs nothing
     between requests.  Time must not go backwards (simulated clocks do
     not). *)
  let refill t ~now =
    if now > t.last then begin
      t.tokens <- Float.min t.burst (t.tokens +. ((now -. t.last) *. t.rate));
      t.last <- now
    end

  let tokens t ~now =
    refill t ~now;
    t.tokens

  let try_take ?(cost = 1.0) t ~now =
    refill t ~now;
    if t.tokens +. 1e-12 >= cost then begin
      t.tokens <- t.tokens -. cost;
      true
    end
    else false

  let set_rate t ~now rate =
    if not (Float.is_finite rate) || rate < 0.0 then
      invalid_arg "Token_bucket.set_rate: rate must be finite and >= 0";
    refill t ~now;
    t.rate <- rate

  let rate t = t.rate
  let burst t = t.burst
end

let load_density cluster ~assignment plan dev_id =
  let dev = cluster.Cluster.devices.(dev_id) in
  let srv = cluster.Cluster.servers.(assignment.(dev_id)) in
  let work = Plan.server_time srv.Cluster.sproc.Processor.perf plan in
  let bw_frac =
    8.0 *. (Plan.transfer_bytes plan +. Plan.result_bytes plan) /. srv.Cluster.ap_bandwidth_bps
  in
  dev.Cluster.rate *. (work +. bw_frac)

type criterion = [ `Stable | `Deadlines ]

let control ?metrics ?(weight = fun _ -> 1.0) ?(until = `Stable) ~local_plan cluster ~assignment
    ~plans =
  let nd = Cluster.n_devices cluster in
  if Array.length plans <> nd || Array.length assignment <> nd then
    invalid_arg "Admission.control: plans/assignment size mismatch";
  let reason = match until with `Stable -> "stable" | `Deadlines -> "deadlines" in
  let note_attempt, note_outcome =
    match metrics with
    | None -> ((fun () -> ()), fun ~served:_ ~rejected:_ -> ())
    | Some reg ->
        let attempts = Es_obs.Metric.counter reg "admission/allocation_attempts" in
        let served_c = Es_obs.Metric.counter reg "admission/served" in
        let rejected_c =
          Es_obs.Metric.counter reg ~labels:[ ("reason", reason) ] "admission/rejected"
        in
        ( (fun () -> Es_obs.Metric.inc attempts),
          fun ~served ~rejected ->
            Es_obs.Metric.inc ~by:(List.length served) served_c;
            Es_obs.Metric.inc ~by:(List.length rejected) rejected_c )
  in
  let plans = Array.copy plans in
  let rejected = ref [] in
  let satisfies decisions =
    match until with
    | `Stable -> true
    | `Deadlines ->
        Array.for_all
          (fun (d : Decision.t) ->
            (not (Decision.offloads d))
            || Latency.mm1_estimate cluster d
               <= cluster.Cluster.devices.(d.Decision.device).Cluster.deadline)
          decisions
  in
  let try_allocate () =
    note_attempt ();
    match Policy.decisions Policy.Minmax_alloc cluster ~assignment ~plans with
    | Some ds when satisfies ds -> Some ds
    | Some _ | None -> None
  in
  let offloaders () =
    Array.to_list (Array.mapi (fun i p -> (i, p)) plans)
    |> List.filter (fun (_, p) -> not (Plan.is_device_only p))
    |> List.map fst
  in
  let rec loop () =
    match try_allocate () with
    | Some decisions ->
        let served = offloaders () in
        let rejected = List.rev !rejected in
        note_outcome ~served ~rejected;
        { decisions; served; rejected }
    | None -> (
        (* Evict the worst load-per-value offloader. *)
        let candidates = offloaders () in
        match
          Es_util.Numeric.argmax_by
            (fun i ->
              let dev = cluster.Cluster.devices.(i) in
              let w = Float.max (weight dev) 1e-9 in
              load_density cluster ~assignment plans.(i) i /. w)
            candidates
        with
        | None ->
            (* No offloaders left yet still infeasible: cannot happen — the
               min-max allocator accepts an empty item set. *)
            assert false
        | Some victim ->
            let fallback = local_plan victim in
            if not (Plan.is_device_only fallback) then
              invalid_arg "Admission.control: local_plan must be device-only";
            plans.(victim) <- fallback;
            rejected := victim :: !rejected;
            loop ())
  in
  loop ()
