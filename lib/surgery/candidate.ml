let default_widths = [ 1.0; 0.75; 0.5 ]

let exit_nodes g =
  List.map (fun id -> Some id) (Es_dnn.Graph.exit_candidate_ids g) @ [ None ]

let default_precisions = [ Precision.Fp32; Precision.Int8 ]

let generate ?(widths = default_widths) ?exits ?(precisions = default_precisions) g =
  let exits = match exits with Some e -> e | None -> exit_nodes g in
  List.concat_map
    (fun exit_node ->
      List.concat_map
        (fun width ->
          List.concat_map
            (fun precision ->
              let base_plan = Plan.make ~width ?exit_node ~precision g in
              let n = Es_dnn.Graph.n_nodes base_plan.Plan.graph in
              List.init (n + 1) (fun cut -> Plan.with_cut base_plan cut))
            precisions)
        widths)
    exits

let plan_key (p : Plan.t) =
  (* Effective compute (FLOPs divided by the precision's throughput gain)
     rather than raw FLOPs, so faster-precision plans are comparable. *)
  let scale = Precision.compute_scale p.Plan.precision in
  [| Plan.dev_flops p /. scale; Plan.transfer_bytes p; Plan.srv_flops p /. scale;
     -.p.Plan.accuracy |]

let pareto plans = Es_util.Pareto.frontier plan_key plans

(* Domain-safe with per-model once semantics: the first caller to ask for a
   key publishes a [Building] marker and generates outside the lock; racing
   callers block on the condition until the plans are [Ready] instead of
   duplicating the (expensive) generate + frontier work. *)
type cache_entry = Building | Ready of Plan.t list

let cache : (string, cache_entry) Hashtbl.t = Hashtbl.create 16 [@@es_lint.guarded "cache_lock"]
let cache_lock = Mutex.create ()
let cache_cond = Condition.create ()

(* Keyed by name *and* a structural fingerprint, so distinct user models
   sharing a name don't collide, while fresh instances of the same zoo
   architecture (one per Scenario.build) still share candidates. *)
let cache_key g widths exits precisions =
  Printf.sprintf "%s|%d|%.0f|%s|%s|%s" g.Es_dnn.Graph.name (Es_dnn.Graph.n_nodes g)
    (Es_dnn.Graph.total_flops g)
    (String.concat "," (List.map (Printf.sprintf "%.3f") widths))
    (String.concat ","
       (List.map (function None -> "full" | Some i -> string_of_int i) exits))
    (String.concat "," (List.map Precision.name precisions))

let pareto_candidates ?(widths = default_widths) ?exits ?(precisions = default_precisions) g =
  let exits = match exits with Some e -> e | None -> exit_nodes g in
  let key = cache_key g widths exits precisions in
  let rec await () =
    match Hashtbl.find_opt cache key with
    | Some (Ready plans) ->
        Mutex.unlock cache_lock;
        plans
    | Some Building ->
        Condition.wait cache_cond cache_lock;
        await ()
    | None ->
        Hashtbl.replace cache key Building;
        Mutex.unlock cache_lock;
        let plans =
          try pareto (generate ~widths ~exits ~precisions g)
          with e ->
            (* Withdraw the marker so waiters retry rather than hang. *)
            Mutex.lock cache_lock;
            Hashtbl.remove cache key;
            Condition.broadcast cache_cond;
            Mutex.unlock cache_lock;
            raise e
        in
        Mutex.lock cache_lock;
        Hashtbl.replace cache key (Ready plans);
        Condition.broadcast cache_cond;
        Mutex.unlock cache_lock;
        plans
  in
  Mutex.lock cache_lock;
  await ()

let clear_cache () =
  Mutex.lock cache_lock;
  Hashtbl.reset cache;
  (* Any in-flight builder re-publishes its entry on completion; waiters on a
     dropped [Building] marker wake here and become builders themselves. *)
  Condition.broadcast cache_cond;
  Mutex.unlock cache_lock

let subsample k plans =
  if k <= 0 then invalid_arg "Candidate.subsample: k must be positive";
  let arr = Array.of_list plans in
  let n = Array.length arr in
  if n <= k then plans
  else if k = 1 then [ arr.(0) ]
  else List.init k (fun i -> arr.(i * (n - 1) / (k - 1)))
