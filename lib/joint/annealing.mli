(** Simulated-annealing joint solver — a metaheuristic comparator for the
    block-coordinate JMSRA optimizer.

    The state is (candidate-plan index, server) per device; neighbors
    mutate one device's plan or placement; every state is scored by the
    same {!Optimizer.best_allocation} inner step and {!Objective}, so the
    comparison isolates the *search strategy*: structured coordinate
    descent vs randomized global search.  Used by the optimizer-comparison
    experiment (F12). *)

type config = {
  iterations : int;  (** proposal count (default 2000) *)
  initial_temp : float;  (** in objective units (default 1.0) *)
  cooling : float;  (** geometric factor per proposal (default 0.995) *)
  seed : int;
  widths : float list;
  precisions : Es_surgery.Precision.t list;
  restarts : int;
      (** independent trajectories (default 1).  With several, each draws
          its own {!Es_util.Prng.split} stream created before the fan-out,
          so the returned best is identical at any [jobs]; ties go to the
          lowest restart index.  [restarts = 1] keeps the historical
          single-stream behavior exactly *)
  jobs : int;  (** domains for the restart fan-out: [1] sequential, [0] auto *)
}

val default_config : config

type output = {
  decisions : Es_edge.Decision.t array;
  objective : float;
  evaluated : int;  (** states actually scored *)
  accepted : int;  (** proposals accepted *)
  solve_time_s : float;
}

val solve :
  ?config:config ->
  ?metrics:Es_obs.Metric.registry ->
  ?spans:Es_obs.Span.sink ->
  Es_edge.Cluster.t ->
  output
(** Starts from the all-device-only state (always stable).  Infeasible
    proposals (no stable allocation) are rejected outright.  Returns the
    best state visited.

    Telemetry (both optional, off by default): [metrics] accrues
    [annealing/evaluated] / [annealing/accepted] / [annealing/rejected]
    counters (summed across restarts), the [annealing/accepted_objective]
    histogram, and final [annealing/objective] / [annealing/final_temperature]
    gauges written once from the winning restart; [spans] receives an
    [annealing/solve] root span per restart (wall-clock, with a [restart]
    attribute) carrying [annealing/checkpoint] children (~64 per run)
    sampling temperature, objective and acceptance along the cooling
    schedule.  Under parallel restarts the sink is serialized internally.

    @raise Invalid_argument on an empty cluster. *)
