(** Online operation: periodic re-optimization under time-varying load.

    Real edge load is non-stationary; EdgeSurgeon's online mode re-runs the
    joint optimizer every epoch against the load level observed at the epoch
    boundary and pushes the new decisions into the running system (new
    requests use the new plans; grants change for subsequent transfers).
    This is the mechanism behind the load-burst timeline experiment (F10). *)

type result = {
  report : Es_sim.Metrics.report;
  schedule : (float * Es_edge.Decision.t array) list;
      (** decisions applied at each epoch boundary (including t = 0) *)
  resolve_count : int;  (** optimizer solves attempted (one per epoch) *)
  resolve_rejected : int;
      (** epoch solves discarded by the guard: a re-solve whose output was
          structurally unsound (non-finite grants, bad server index) or
          strictly worse under the epoch's load than keeping the previous
          decisions leaves the previous decisions in place *)
  cache_hits : int;
      (** epoch solves answered by the solve cache (0 without [cache]) *)
}

val scale_rates : Es_edge.Cluster.t -> float -> Es_edge.Cluster.t
(** Cluster with every device's request rate multiplied. *)

val piecewise_arrivals :
  seed:int ->
  duration_s:float ->
  rate_profile:(float -> float) ->
  Es_edge.Cluster.t ->
  (float * int) array
(** Sorted (time, device) trace: per-device Poisson whose instantaneous rate
    is [device.rate × rate_profile t], with the profile sampled per inter-
    arrival step (adequate for profiles that vary on epoch scale). *)

val run :
  ?options:Es_sim.Runner.options ->
  ?config:Optimizer.config ->
  ?cache:Solve_cache.t ->
  ?solver:Optimizer.solver ->
  ?warm_start:bool ->
  epoch_s:float ->
  rate_profile:(float -> float) ->
  Es_edge.Cluster.t ->
  result
(** Simulate [options.duration_s] seconds, re-optimizing every [epoch_s]
    against the profile value at the epoch start, over arrivals drawn from
    the same profile.

    [warm_start] (default true) seeds every epoch re-solve from the
    incumbent — the decisions actually applied at the previous epoch — so
    each re-solve is equal-or-better than a cold one under the epoch's
    load.  [cache] memoizes epoch solves keyed on the scaled cluster:
    diurnal or bursty profiles revisit load levels constantly, and a
    revisited level is then a lookup, not a descent.  The per-epoch guard
    is unchanged: malformed or worsening candidates leave the incumbent in
    place.

    [solver] replaces the epoch solve wholesale (e.g. [Es_scale.solver] for
    the sharded path); it receives the warm incumbent and the scaled
    cluster.  When given, [config] and [cache] are not consulted by [run]
    itself — a sharded solver carries its own config and may consult the
    same cache per shard ([cache_hits] then stays 0 unless the solver was
    built over this cache).  The guard still applies to its output.

    @raise Invalid_argument on non-positive [epoch_s]. *)

val run_static :
  ?options:Es_sim.Runner.options ->
  ?config:Optimizer.config ->
  rate_profile:(float -> float) ->
  Es_edge.Cluster.t ->
  result
(** Control arm: one optimization at the nominal (t = 0) load, never
    revisited, over the identical arrival trace. *)
