(** EdgeSurgeon's joint optimizer (JMSRA): block-coordinate descent over
    model surgery and resource allocation.

    Each outer iteration performs:

    + {b Allocation step} — with surgery fixed, every server's bandwidth and
      compute split is solved optimally by the convex min-max allocator
      ({!Es_alloc.Minmax}); when a server's offered load admits no stable
      allocation, a proportional split stands in for this iteration so the
      surgery step can shed load.
    + {b Surgery step} — with grants fixed, each device scans its Pareto
      candidate set ({!Es_surgery.Candidate}) for the plan minimizing its
      latency subject to its accuracy floor and the queueing-stability
      conditions.  Devices without grants (device-only in the previous
      round) evaluate offloading against a fair-share estimate so they can
      re-enter.
    + {b Assignment step} — devices are re-placed by load-balanced greedy
      construction plus move/swap local search on a cheap load proxy.

    The best feasible configuration seen is kept; the loop stops when the
    objective stops improving or after [max_iters].  Complexity per
    iteration is O(D·C + S·A) for D devices with C candidates each and A
    the allocator's bisection cost — polynomial, matching the paper-style
    claim, vs. the exponential exhaustive search ({!Exhaustive}). *)

type config = {
  widths : float list;  (** width-multiplier grid for surgery candidates *)
  precisions : Es_surgery.Precision.t list;  (** quantization levels on offer *)
  max_iters : int;  (** outer-loop bound (default 12) *)
  allocator : Es_alloc.Policy.allocator;  (** inner step (default Minmax) *)
  reassign : bool;  (** run the assignment step each iteration *)
  local_search_passes : int;
  seed : int;
  max_candidates : int option;
      (** cap each device's Pareto set (evenly subsampled); [None] = full.
          Used to compare against {!Exhaustive} on an identical plan grid *)
  jobs : int;
      (** domains for the multi-start fan-out: [1] sequential, [0] (the
          default) auto-sizes from {!Es_util.Par.default_jobs}.  Decisions
          and objective are bit-identical for every [jobs] value — the
          trajectories are deterministic and independent.  Regardless of
          [jobs], the fan-out runs sequentially when the solve is too
          fine-grained to win ({!par_fanout_min_devices}) or when jobs
          auto-sizing reports a single usable core — dispatch overhead then
          exceeds the overlap (the fine-grain loss measured in
          [BENCH_solver.json]); only timing changes, never decisions *)
  multi_start : bool;
      (** [true] (the default): the full multi-start portfolio — primary
          trajectory, equal-share alternate, warm trajectory when an
          incumbent is given, merged best-first.  [false]: exactly one
          descent trajectory (warm when an incumbent is given, cold
          otherwise) — the cheap mode for callers that already supply
          diversity across many solves, e.g. {!Es_scale}'s per-shard
          subproblems; the warm-never-worse-than-cold merge guarantee does
          not apply in this mode *)
}

val default_config : config

type trace_point = {
  iteration : int;
  objective : float;
  misses : int;
  mean_latency_s : float;
}

type output = {
  decisions : Es_edge.Decision.t array;
  objective : float;
  iterations : int;  (** outer iterations actually run *)
  trace : trace_point list;  (** objective after each iteration, in order *)
  solve_time_s : float;
      (** wall-clock optimizer runtime ({!Es_obs.Obs.wall_clock}): elapsed
          time for the whole solve, including parallel trajectories *)
}

val solve :
  ?config:config ->
  ?metrics:Es_obs.Metric.registry ->
  ?spans:Es_obs.Span.sink ->
  ?warm_start:Es_edge.Decision.t array ->
  Es_edge.Cluster.t ->
  output
(** Always returns a decision set: if even full degradation cannot
    stabilize a server, the offending devices fall back to device-only
    execution (their requests never enter the network).

    [warm_start] seeds one extra descent trajectory from an incumbent
    decision set (the previous epoch's deployment, a bisection bracket
    endpoint, the pre-failure baseline) alongside the cold multi-start
    trajectories.  The incumbent is validated and repaired first: a stale
    plan (device model changed) reverts to the cold initial plan, a
    decision referencing an out-of-range server (downed or renumbered) is
    re-pointed at the fastest surviving server; an incumbent of the wrong
    arity is ignored entirely.  The merge evaluates the cold candidates
    first, so the result is equal-or-better than the cold solve by
    construction and bit-identical to it on an exact objective tie — and the
    bit-identical-for-all-[jobs] determinism contract is preserved (fixed
    fan-out order, input-order merge).

    Telemetry (both optional, off by default): [metrics] accrues
    [optimizer/iterations] (summed across multi-start trajectories), the
    [optimizer/iteration_objective] histogram, and the final
    [optimizer/objective] / [optimizer/solve_time_s] gauges — the gauges are
    written once per solve from the chosen landing point, so they always
    agree with the returned output regardless of which trajectory won.
    [spans] receives one [optimizer/solve] root span per trajectory
    (wall-clock) with an [optimizer/iteration] child per outer iteration
    carrying objective / misses / mean-latency / feasibility attributes;
    under parallel multi-start the sink is serialized internally.

    @raise Invalid_argument on an empty cluster. *)

type solver = warm:Es_edge.Decision.t array option -> Es_edge.Cluster.t -> output
(** The shape of a drop-in replacement for {!solve} as used by the epoch
    and recovery drivers ({!Online.run}, {!Recover}): given an optional
    incumbent and a cluster, produce a full decision set.  Implemented by
    the sharded solver ([Es_scale.solver]). *)

val par_fanout_min_devices : int
(** Device-count threshold below which the multi-start fan-out is
    sequential regardless of [jobs] (see the [jobs] field). *)

val clear_pool_cache : unit -> unit
(** Drop the process-wide scored-candidate pools (archetype-keyed: model ×
    device processor × server perf vector × candidate knobs).  The cache
    never changes results, only solve cost; exposed for benchmarks that
    need cold-start timings. *)

val best_allocation :
  ?allocator:Es_alloc.Policy.allocator ->
  Es_edge.Cluster.t ->
  assignment:int array ->
  plans:Es_surgery.Plan.t array ->
  Es_edge.Decision.t array option
(** The allocation step in isolation: the primary allocator's grants, plus —
    when the primary is the min-max solver — the queueing-stable share rules,
    keeping whichever decision set scores best on {!Objective}.  [None] when
    nothing stable exists.  {!Exhaustive} evaluates every configuration
    through this same function so the heuristic and the optimal search rank
    allocations identically. *)

val best_plan_for_grants :
  ?exits:int option list ->
  ?max_candidates:int ->
  ?precisions:Es_surgery.Precision.t list ->
  widths:float list ->
  Es_edge.Cluster.t ->
  device:int ->
  server:int ->
  bandwidth_bps:float ->
  compute_share:float ->
  Es_surgery.Plan.t
(** The surgery step for one device, exposed for tests and baselines: the
    latency-minimizing stable candidate meeting the accuracy floor under the
    given grants (falling back to the accuracy-best candidate when nothing
    is stable).  Scores candidates over precomputed per-plan invariants with
    no per-plan allocation — the solver's hottest loop. *)

val best_plan_for_grants_ref :
  ?exits:int option list ->
  ?max_candidates:int ->
  ?precisions:Es_surgery.Precision.t list ->
  widths:float list ->
  Es_edge.Cluster.t ->
  device:int ->
  server:int ->
  bandwidth_bps:float ->
  compute_share:float ->
  Es_surgery.Plan.t
(** The original list-based implementation (allocates a Decision per
    candidate), kept as the qcheck reference oracle for
    {!best_plan_for_grants}: both must return bit-identical plans. *)

type scored
(** Precomputed per-plan invariants for one device archetype (device time,
    transfer bytes, per-server work), the unit the surgery step scans. *)

val device_pool :
  ?exits:int option list ->
  ?max_candidates:int ->
  ?precisions:Es_surgery.Precision.t list ->
  widths:float list ->
  Es_edge.Cluster.t ->
  device:int ->
  scored array
(** The device's scored candidate pool, built once per archetype and cached
    process-wide (see {!clear_pool_cache}). *)

val best_scored :
  Es_edge.Cluster.t ->
  device:int ->
  server:int ->
  scored array ->
  bandwidth_bps:float ->
  compute_share:float ->
  Es_surgery.Plan.t
(** The surgery step over a prebuilt pool — the solver's innermost loop,
    and the zero-allocation kernel: a steady-state call performs no minor-
    heap allocation at all (asserted by the Alloc_probe test; the alloc
    gate in [bench/perf_gate.exe] budgets the full solve around it). *)

val force_feasible :
  config -> Es_edge.Cluster.t -> Es_surgery.Plan.t array -> int array ->
  Es_edge.Decision.t array option
(** Last-resort degradation: flip the heaviest offloaders to device-only
    (mutating [plans]) until the allocator accepts the assignment.  Exposed
    for the oracle test against {!force_feasible_ref}. *)

val force_feasible_ref :
  config -> Es_edge.Cluster.t -> Es_surgery.Plan.t array -> int array ->
  Es_edge.Decision.t array option
(** List-sorting original of {!force_feasible}; both must make identical
    plan flips and return identical decisions. *)

val load_proxy : Es_edge.Cluster.t -> plans:Es_surgery.Plan.t array -> int array -> float
(** The local-search load proxy (worst server's max of bandwidth and
    compute load), accumulating into borrowed scratch. *)

val load_proxy_ref :
  Es_edge.Cluster.t -> plans:Es_surgery.Plan.t array -> int array -> float

val fair_share_estimate :
  Es_edge.Cluster.t ->
  plans:Es_surgery.Plan.t array ->
  assignment:int array ->
  device:int ->
  float * float
(** Fair-share (bandwidth, compute) guess for a device holding no grant. *)

val fair_share_estimate_ref :
  Es_edge.Cluster.t ->
  plans:Es_surgery.Plan.t array ->
  assignment:int array ->
  device:int ->
  float * float
