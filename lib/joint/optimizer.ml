open Es_edge
open Es_surgery
open Es_alloc

type config = {
  widths : float list;
  precisions : Precision.t list;
  max_iters : int;
  allocator : Policy.allocator;
  reassign : bool;
  local_search_passes : int;
  seed : int;
  max_candidates : int option;
  jobs : int;
  multi_start : bool;
}

let default_config =
  {
    widths = Candidate.default_widths;
    precisions = Candidate.default_precisions;
    max_iters = 12;
    allocator = Policy.Minmax_alloc;
    reassign = true;
    local_search_passes = 2;
    seed = 1;
    max_candidates = None;
    jobs = 0;
    multi_start = true;
  }

type trace_point = {
  iteration : int;
  objective : float;
  misses : int;
  mean_latency_s : float;
}

type output = {
  decisions : Decision.t array;
  objective : float;
  iterations : int;
  trace : trace_point list;
  solve_time_s : float;
}

type solver = warm:Decision.t array option -> Cluster.t -> output

let stability_margin = 0.95

let plan_latency cluster ~device ~server plan ~bandwidth_bps ~compute_share =
  let d =
    Decision.make ~device ~server ~plan
      ~bandwidth_bps:(Float.max bandwidth_bps 1.0)
      ~compute_share:(Float.max compute_share 1e-6) ()
  in
  Latency.of_decision cluster d

let plan_stable cluster ~device ~server plan ~bandwidth_bps ~compute_share =
  let dev = cluster.Cluster.devices.(device) in
  let rate = dev.Cluster.rate in
  let dev_time = Plan.device_time dev.Cluster.proc.Processor.perf plan in
  Plan.device_mem_bytes plan <= dev.Cluster.proc.Processor.mem_bytes
  && rate *. dev_time < stability_margin
  && (Plan.is_device_only plan
     ||
     let bits = 8.0 *. (Plan.transfer_bytes plan +. Plan.result_bytes plan) in
     let bw = Float.min bandwidth_bps dev.Cluster.link.Link.peak_bps in
     let srv = cluster.Cluster.servers.(server) in
     let work = Plan.server_time srv.Cluster.sproc.Processor.perf plan in
     bw > 0.0
     && rate *. bits /. bw < stability_margin
     && (work = 0.0 || (compute_share > 0.0 && rate *. work /. compute_share < stability_margin)))

(* Per-plan invariants, so the surgery step scores a (plan, grants) pair
   with a handful of float operations and zero allocation — no Decision
   record, no Latency.breakdown, no list filtering.  [work] is indexed by
   server.  Everything here depends only on the device's archetype (model,
   processor) and the server perf vector — not on its rate, deadline,
   accuracy floor or link, which are inputs to [best_scored] — so pools are
   shared process-wide across devices, trajectories and solves. *)
type scored = {
  plan : Plan.t;
  local : bool;
  mem_ok : bool;
  dev_s : float;
  up_bytes : float;
  down_bytes : float;
  bits : float;
  work : float array;
}

let score_candidates cluster ~device candidates =
  let dev = cluster.Cluster.devices.(device) in
  let dperf = dev.Cluster.proc.Processor.perf in
  let servers = cluster.Cluster.servers in
  Array.map
    (fun (p : Plan.t) ->
      {
        plan = p;
        local = Plan.is_device_only p;
        mem_ok = Plan.device_mem_bytes p <= dev.Cluster.proc.Processor.mem_bytes;
        dev_s = Plan.device_time dperf p;
        up_bytes = Plan.transfer_bytes p;
        down_bytes = Plan.result_bytes p;
        bits = 8.0 *. (Plan.transfer_bytes p +. Plan.result_bytes p);
        work =
          Array.map (fun (s : Cluster.server) -> Plan.server_time s.Cluster.sproc.Processor.perf p) servers;
      })
    (Array.of_list candidates)

(* Process-wide cache of scored pools.  Building a pool is the solver's
   dominant per-device cost at scale (per-plan timing over every layer of
   every Pareto candidate), yet the result is archetype-keyed: devices
   sharing (model, processor, candidate knobs) against the same server perf
   vector — and the same device across shard re-solves, trajectories and
   epochs — share one build.  Same domain-safety posture as
   [Candidate.cache]: the first caller publishes a [Building] marker and
   builds outside the lock; racing callers wait on the condition.  Presence
   or absence of an entry never changes any result, only its cost. *)
type pool_entry = Pool_building | Pool_ready of scored array

let pool_cache : (string, pool_entry) Hashtbl.t = Hashtbl.create 64
[@@es_lint.guarded "pool_cache_lock"]

let pool_cache_lock = Mutex.create ()
let pool_cache_cond = Condition.create ()

(* Entry count is bounded by archetype combinations in practice; the cap is
   a backstop for adversarial churn (e.g. qcheck sweeping server perf). *)
let pool_cache_cap = 512

let pool_key ?exits ?max_candidates ?precisions ~widths cluster ~device =
  let dev = cluster.Cluster.devices.(device) in
  let h = Es_util.Fnv.create () in
  let add_perf (p : Es_dnn.Profile.perf) =
    Es_util.Fnv.add_float h p.Es_dnn.Profile.flops_per_s;
    Es_util.Fnv.add_float h p.Es_dnn.Profile.mem_bytes_per_s;
    Es_util.Fnv.add_float h p.Es_dnn.Profile.layer_overhead_s
  in
  (* Model identity, as in Candidate's cache key: name + structure. *)
  Es_util.Fnv.add_string h dev.Cluster.model.Es_dnn.Graph.name;
  Es_util.Fnv.add_int h (Es_dnn.Graph.n_nodes dev.Cluster.model);
  Es_util.Fnv.add_float h (Es_dnn.Graph.total_flops dev.Cluster.model);
  add_perf dev.Cluster.proc.Processor.perf;
  Es_util.Fnv.add_float h dev.Cluster.proc.Processor.mem_bytes;
  Array.iter (fun (s : Cluster.server) -> add_perf s.Cluster.sproc.Processor.perf) cluster.Cluster.servers;
  Es_util.Fnv.add_int h (Cluster.n_servers cluster);
  List.iter (Es_util.Fnv.add_float h) widths;
  Es_util.Fnv.add_int h (List.length widths);
  (match precisions with
  | None -> Es_util.Fnv.add_int h (-1)
  | Some ps ->
      Es_util.Fnv.add_int h (List.length ps);
      List.iter (fun p -> Es_util.Fnv.add_string h (Precision.name p)) ps);
  (match exits with
  | None -> Es_util.Fnv.add_int h (-1)
  | Some es ->
      Es_util.Fnv.add_int h (List.length es);
      List.iter (fun e -> Es_util.Fnv.add_int h (Option.value e ~default:(-2))) es);
  Es_util.Fnv.add_int h (Option.value max_candidates ~default:(-1));
  Es_util.Fnv.to_hex h

let clear_pool_cache () =
  Mutex.lock pool_cache_lock;
  Hashtbl.reset pool_cache;
  Condition.broadcast pool_cache_cond;
  Mutex.unlock pool_cache_lock

(* The surgery step over a scored pool.  Float arithmetic mirrors
   [plan_latency] (Decision clamps + Link.transfer_time + Latency.total, in
   the same operation order) and [plan_stable] exactly, so decisions are
   bit-identical to the record-allocating path; selection replicates
   argmin_by's first-wins tie-break over (eligible | all) × (stable | any). *)
let best_scored cluster ~device ~server (pool : scored array) ~bandwidth_bps ~compute_share =
  let dev = cluster.Cluster.devices.(device) in
  let rate = dev.Cluster.rate in
  let floor = dev.Cluster.accuracy_floor -. 1e-9 in
  let peak = dev.Cluster.link.Link.peak_bps in
  let half_rtt = dev.Cluster.link.Link.rtt_s /. 2.0 in
  (* Latency path: Decision.make clamps grants; transfer_time caps at peak. *)
  let bw_lat = Float.min (Float.max bandwidth_bps 1.0) peak in
  let share_lat = Float.max compute_share 1e-6 in
  (* Stability path: unclamped grants, capped at peak. *)
  let bw_st = Float.min bandwidth_bps peak in
  let el_st = ref (-1) and el_st_l = ref infinity in
  let el_any = ref (-1) and el_any_l = ref infinity in
  let all_st = ref (-1) and all_st_l = ref infinity in
  let all_any = ref (-1) and all_any_l = ref infinity in
  (* Latency and stability are written inline in the scan (not as local
     closures) so the steady-state loop is allocation-free: record-field
     reads, array loads and register float arithmetic only — the property
     the Alloc_probe test asserts as exactly zero minor words. *)
  for i = 0 to Array.length pool - 1 do
    let c = pool.(i) in
    let l =
      if c.local then c.dev_s
      else begin
        let up = if c.up_bytes <= 0.0 then 0.0 else (c.up_bytes *. 8.0 /. bw_lat) +. half_rtt in
        let srv = c.work.(server) /. share_lat in
        let down =
          if c.down_bytes <= 0.0 then 0.0 else (c.down_bytes *. 8.0 /. bw_lat) +. half_rtt
        in
        c.dev_s +. up +. srv +. down
      end
    in
    let st =
      c.mem_ok
      && rate *. c.dev_s < stability_margin
      && (c.local
         || bw_st > 0.0
            && rate *. c.bits /. bw_st < stability_margin
            && (let w = c.work.(server) in
                w = 0.0 || (compute_share > 0.0 && rate *. w /. compute_share < stability_margin)))
    in
    if c.plan.Plan.accuracy >= floor then begin
      if !el_any < 0 || l < !el_any_l then begin
        el_any := i;
        el_any_l := l
      end;
      if st && (!el_st < 0 || l < !el_st_l) then begin
        el_st := i;
        el_st_l := l
      end
    end;
    if !all_any < 0 || l < !all_any_l then begin
      all_any := i;
      all_any_l := l
    end;
    if st && (!all_st < 0 || l < !all_st_l) then begin
      all_st := i;
      all_st_l := l
    end
  done;
  let pick =
    if !el_any >= 0 then if !el_st >= 0 then !el_st else !el_any
    else if !all_st >= 0 then !all_st
    else !all_any
  in
  (* candidate sets are never empty: full model always present *)
  assert (pick >= 0);
  pool.(pick).plan

let build_pool ?exits ?max_candidates ?precisions ~widths cluster ~device =
  let dev = cluster.Cluster.devices.(device) in
  let candidates = Candidate.pareto_candidates ?exits ?precisions ~widths dev.Cluster.model in
  let candidates =
    match max_candidates with Some k -> Candidate.subsample k candidates | None -> candidates
  in
  score_candidates cluster ~device candidates

let device_pool ?exits ?max_candidates ?precisions ~widths cluster ~device =
  let key = pool_key ?exits ?max_candidates ?precisions ~widths cluster ~device in
  let rec await () =
    match Hashtbl.find_opt pool_cache key with
    | Some (Pool_ready pool) ->
        Mutex.unlock pool_cache_lock;
        pool
    | Some Pool_building ->
        Condition.wait pool_cache_cond pool_cache_lock;
        await ()
    | None ->
        Hashtbl.replace pool_cache key Pool_building;
        Mutex.unlock pool_cache_lock;
        let pool =
          try build_pool ?exits ?max_candidates ?precisions ~widths cluster ~device
          with e ->
            (* Withdraw the marker so waiters retry rather than hang. *)
            Mutex.lock pool_cache_lock;
            Hashtbl.remove pool_cache key;
            Condition.broadcast pool_cache_cond;
            Mutex.unlock pool_cache_lock;
            raise e
        in
        Mutex.lock pool_cache_lock;
        (if Hashtbl.length pool_cache >= pool_cache_cap then begin
           (* Backstop flush, as in Candidate.cache: dropping a [Pool_building]
              marker is safe — its builder re-publishes on completion, and
              woken waiters finding no entry become builders themselves. *)
           Hashtbl.reset pool_cache;
           Condition.broadcast pool_cache_cond
         end);
        Hashtbl.replace pool_cache key (Pool_ready pool);
        Condition.broadcast pool_cache_cond;
        Mutex.unlock pool_cache_lock;
        pool
  in
  Mutex.lock pool_cache_lock;
  await ()

let best_plan_for_grants ?exits ?max_candidates ?precisions ~widths cluster ~device ~server
    ~bandwidth_bps ~compute_share =
  let pool = device_pool ?exits ?max_candidates ?precisions ~widths cluster ~device in
  best_scored cluster ~device ~server pool ~bandwidth_bps ~compute_share

(* The original list-based surgery step (one Decision + Latency.breakdown per
   candidate), kept as the qcheck oracle: [best_plan_for_grants] must return
   the bit-identical plan on every input. *)
let best_plan_for_grants_ref ?exits ?max_candidates ?precisions ~widths cluster ~device ~server
    ~bandwidth_bps ~compute_share =
  let dev = cluster.Cluster.devices.(device) in
  let candidates = Candidate.pareto_candidates ?exits ?precisions ~widths dev.Cluster.model in
  let candidates =
    match max_candidates with Some k -> Candidate.subsample k candidates | None -> candidates
  in
  let acc_ok (p : Plan.t) = p.Plan.accuracy >= dev.Cluster.accuracy_floor -. 1e-9 in
  let latency p = plan_latency cluster ~device ~server p ~bandwidth_bps ~compute_share in
  let eligible = List.filter acc_ok candidates in
  let pool = if eligible = [] then candidates else eligible in
  let stable =
    List.filter (fun p -> plan_stable cluster ~device ~server p ~bandwidth_bps ~compute_share) pool
  in
  let pick pool = Es_util.Numeric.argmin_by latency pool in
  match pick stable with
  | Some p -> p
  | None -> (
      match pick pool with
      | Some p -> p
      | None -> (* candidate sets are never empty: full model always present *) assert false)

let best_allocation ?(allocator = Policy.Minmax_alloc) cluster ~assignment ~plans =
  (* The configured allocator is accepted as-is (the min-max solver is
     stable by construction; ablation arms keep their naive rule, warts and
     all).  When running the full joint configuration, the cheap share
     rules are also evaluated — min-max optimizes the worst device, not the
     mean — and the best objective wins; share-rule extras must pass the
     queueing-stability check to be considered. *)
  let all_stable ds = Array.for_all (Latency.device_stable cluster) ds in
  let primary =
    match Policy.decisions allocator cluster ~assignment ~plans with
    | Some ds -> [ ds ]
    | None -> []
  in
  let extras =
    if allocator <> Policy.Minmax_alloc then []
    else
      List.filter_map
        (fun alloc ->
          match Policy.decisions alloc cluster ~assignment ~plans with
          | Some ds when all_stable ds -> Some ds
          | Some _ | None -> None)
        [ Policy.Sum_sqrt; Policy.Equal ]
  in
  Es_util.Numeric.argmin_by (Objective.of_decisions cluster) (primary @ extras)

(* Cheap per-assignment load proxy used by the local search: the worst
   server's max of bandwidth and compute load.  Called once per candidate
   move/swap the local search evaluates, so the per-server accumulators are
   borrowed scratch rather than fresh arrays. *)
let load_proxy cluster ~plans assignment =
  let ns = Cluster.n_servers cluster in
  let bw = Es_util.Scratch.borrow_floats ns in
  let cpu = Es_util.Scratch.borrow_floats ns in
  Array.fill bw 0 ns 0.0;
  Array.fill cpu 0 ns 0.0;
  for dev_id = 0 to Array.length assignment - 1 do
    let s = assignment.(dev_id) in
    let plan = plans.(dev_id) in
    if not (Plan.is_device_only plan) then begin
      let dev = cluster.Cluster.devices.(dev_id) in
      let srv = cluster.Cluster.servers.(s) in
      bw.(s) <-
        bw.(s)
        +. dev.Cluster.rate
           *. 8.0
           *. (Plan.transfer_bytes plan +. Plan.result_bytes plan)
           /. srv.Cluster.ap_bandwidth_bps;
      cpu.(s) <-
        cpu.(s)
        +. (dev.Cluster.rate *. Plan.server_time srv.Cluster.sproc.Processor.perf plan)
    end
  done;
  let worst = ref 0.0 in
  for s = 0 to ns - 1 do
    worst := Float.max !worst (Float.max bw.(s) cpu.(s))
  done;
  let w = !worst in
  Es_util.Scratch.release_floats cpu;
  Es_util.Scratch.release_floats bw;
  w

let load_proxy_ref cluster ~plans assignment =
  let ns = Cluster.n_servers cluster in
  let bw = Array.make ns 0.0 and cpu = Array.make ns 0.0 in
  Array.iteri
    (fun dev_id s ->
      let plan = plans.(dev_id) in
      if not (Plan.is_device_only plan) then begin
        let dev = cluster.Cluster.devices.(dev_id) in
        let srv = cluster.Cluster.servers.(s) in
        bw.(s) <-
          bw.(s)
          +. dev.Cluster.rate
             *. 8.0
             *. (Plan.transfer_bytes plan +. Plan.result_bytes plan)
             /. srv.Cluster.ap_bandwidth_bps;
        cpu.(s) <-
          cpu.(s)
          +. (dev.Cluster.rate *. Plan.server_time srv.Cluster.sproc.Processor.perf plan)
      end)
    assignment;
  let worst = ref 0.0 in
  for s = 0 to ns - 1 do
    worst := Float.max !worst (Float.max bw.(s) cpu.(s))
  done;
  !worst

(* Fair-share grant estimate for a device that currently holds none, so the
   surgery step can evaluate (re-)entering the network. *)
let fair_share_estimate cluster ~plans ~assignment ~device =
  let s = assignment.(device) in
  let srv = cluster.Cluster.servers.(s) in
  let n_active = ref 0 in
  for i = 0 to Array.length assignment - 1 do
    if assignment.(i) = s && not (Plan.is_device_only plans.(i)) then incr n_active
  done;
  let k = float_of_int (!n_active + 1) in
  (srv.Cluster.ap_bandwidth_bps /. k, 1.0 /. k)

let fair_share_estimate_ref cluster ~plans ~assignment ~device =
  let s = assignment.(device) in
  let srv = cluster.Cluster.servers.(s) in
  let n_active =
    Array.to_list assignment
    |> List.mapi (fun i a -> (i, a))
    |> List.filter (fun (i, a) -> a = s && not (Plan.is_device_only plans.(i)))
    |> List.length
  in
  let k = float_of_int (n_active + 1) in
  (srv.Cluster.ap_bandwidth_bps /. k, 1.0 /. k)

let force_feasible config cluster plans assignment =
  (* Last-resort degradation: flip the heaviest offloaders to device-only
     until the allocator accepts (guaranteed once everyone is local).
     Ordering runs on scratch (heapsort under the same strict total order
     the reference's stable sort induces: weight descending, index
     ascending on ties); the device-only fallback scans the cached scored
     pool instead of regenerating and filtering the candidate list. *)
  let n = Array.length plans in
  let order = Es_util.Scratch.borrow_ints n in
  let weight = Es_util.Scratch.borrow_floats n in
  for i = 0 to n - 1 do
    order.(i) <- i;
    weight.(i) <- cluster.Cluster.devices.(i).Cluster.rate *. Plan.srv_flops plans.(i)
  done;
  let cmp i j =
    let c = Float.compare weight.(j) weight.(i) in
    if c <> 0 then c else Int.compare i j
  in
  let sift root len =
    let j = ref root in
    let walking = ref true in
    while !walking do
      let l = (2 * !j) + 1 in
      if l >= len then walking := false
      else begin
        let c = if l + 1 < len && cmp order.(l) order.(l + 1) < 0 then l + 1 else l in
        if cmp order.(!j) order.(c) < 0 then begin
          let t = order.(!j) in
          order.(!j) <- order.(c);
          order.(c) <- t;
          j := c
        end
        else walking := false
      end
    done
  in
  for root = (n / 2) - 1 downto 0 do
    sift root n
  done;
  for last = n - 1 downto 1 do
    let t = order.(0) in
    order.(0) <- order.(last);
    order.(last) <- t;
    sift 0 last
  done;
  let rec go k =
    if k >= n then Policy.decisions config.allocator cluster ~assignment ~plans
    else
      match Policy.decisions config.allocator cluster ~assignment ~plans with
      | Some ds -> Some ds
      | None ->
          let i = order.(k) in
          let dev = cluster.Cluster.devices.(i) in
          let pool =
            device_pool ?max_candidates:config.max_candidates ~precisions:config.precisions
              ~widths:config.widths cluster ~device:i
          in
          (* Fastest device-only candidate, first-wins like argmin_by. *)
          let best = ref (-1) and best_t = ref infinity in
          for j = 0 to Array.length pool - 1 do
            let c = pool.(j) in
            if c.local && (!best < 0 || c.dev_s < !best_t) then begin
              best := j;
              best_t := c.dev_s
            end
          done;
          if !best >= 0 then plans.(i) <- pool.(!best).plan
          else plans.(i) <- Plan.device_only dev.Cluster.model;
          go (k + 1)
  in
  let out = go 0 in
  Es_util.Scratch.release_floats weight;
  Es_util.Scratch.release_ints order;
  out

(* The original list-sorting, candidate-regenerating implementation, kept
   as the qcheck oracle: [force_feasible] must make the same plan flips and
   return the same decisions on every input. *)
let force_feasible_ref config cluster plans assignment =
  let order =
    Array.init (Array.length plans) (fun i -> i)
    |> Array.to_list
    |> List.sort (fun a b ->
           Float.compare
             (cluster.Cluster.devices.(b).Cluster.rate *. Plan.srv_flops plans.(b))
             (cluster.Cluster.devices.(a).Cluster.rate *. Plan.srv_flops plans.(a)))
  in
  let rec go = function
    | [] -> Policy.decisions config.allocator cluster ~assignment ~plans
    | i :: rest -> (
        match Policy.decisions config.allocator cluster ~assignment ~plans with
        | Some ds -> Some ds
        | None ->
            let dev = cluster.Cluster.devices.(i) in
            let local =
              let all =
                Candidate.pareto_candidates ~widths:config.widths
                  ~precisions:config.precisions dev.Cluster.model
              in
              (match config.max_candidates with
              | Some k -> Candidate.subsample k all
              | None -> all)
              |> List.filter Plan.is_device_only
              |> Es_util.Numeric.argmin_by (fun p ->
                     Plan.device_time dev.Cluster.proc.Processor.perf p)
            in
            (match local with
            | Some p -> plans.(i) <- p
            | None -> plans.(i) <- Plan.device_only dev.Cluster.model);
            go rest)
  in
  go order

(* Fastest server by sustained throughput: the deterministic anchor for
   cold initial surgery and for warm-start repairs. *)
let fastest_server (servers : Cluster.server array) =
  let best = ref 0 in
  Array.iteri
    (fun s (srv : Cluster.server) ->
      if
        srv.Cluster.sproc.Processor.perf.Es_dnn.Profile.flops_per_s
        > servers.(!best).Cluster.sproc.Processor.perf.Es_dnn.Profile.flops_per_s
      then best := s)
    servers;
  !best

let solve_one ~config ?metrics ?spans ?init cluster =
  let t0 = Es_obs.Obs.wall_clock () in
  let nd = Cluster.n_devices cluster in
  if nd = 0 then invalid_arg "Optimizer.solve: empty cluster";
  let tracer =
    match spans with
    | None -> Es_obs.Span.null
    | Some sink -> Es_obs.Span.tracer ~sink ~clock:Es_obs.Obs.wall_clock ()
  in
  let root = Es_obs.Span.start tracer "optimizer/solve" in
  let note_iteration =
    match metrics with
    | None -> fun _ -> ()
    | Some reg ->
        let iters = Es_obs.Metric.counter reg "optimizer/iterations" in
        let obj_h = Es_obs.Metric.histogram reg "optimizer/iteration_objective" in
        fun obj ->
          Es_obs.Metric.inc iters;
          Es_obs.Histogram.observe obj_h obj
  in
  let widths = config.widths in
  let pools =
    Array.init nd (fun device ->
        device_pool ?max_candidates:config.max_candidates ~precisions:config.precisions ~widths
          cluster ~device)
  in
  let best_plan ~device ~server ~bandwidth_bps ~compute_share =
    best_scored cluster ~device ~server pools.(device) ~bandwidth_bps ~compute_share
  in
  (* Starting point: a warm seed when given, else cold initial surgery
     against a fair-share estimate on the fastest server. *)
  let servers = cluster.Cluster.servers in
  let plans, assignment =
    match init with
    | Some (seed_plans, seed_assignment) ->
        (Array.copy seed_plans, ref (Array.copy seed_assignment))
    | None ->
        let fastest = fastest_server servers in
        let per_server = float_of_int (max 1 (nd / Array.length servers)) in
        let plans =
          Array.init nd (fun device ->
              let bw = servers.(fastest).Cluster.ap_bandwidth_bps /. per_server in
              best_plan ~device ~server:fastest ~bandwidth_bps:bw
                ~compute_share:(1.0 /. per_server))
        in
        (plans, ref (Assign.balanced_greedy cluster ~plans))
  in
  let best : (float * Decision.t array) option ref = ref None in
  let trace = ref [] in
  let iterations = ref 0 in
  let no_improve = ref 0 in
  (try
     for iter = 1 to config.max_iters do
       iterations := iter;
       let iter_span = Es_obs.Span.start tracer ~parent:root "optimizer/iteration" in
       (* The finally-finish keeps the iteration span well-formed on the
          early-exit path too (Exit propagates through Fun.protect). *)
       Fun.protect
         ~finally:(fun () -> Es_obs.Span.finish tracer iter_span)
         (fun () ->
           (* --- Allocation step --- *)
           let working, feasible =
             match
               best_allocation ~allocator:config.allocator cluster ~assignment:!assignment ~plans
             with
             | Some ds -> (ds, true)
             | None -> (
                 match
                   Policy.decisions Policy.Proportional cluster ~assignment:!assignment ~plans
                 with
                 | Some ds -> (ds, false)
                 | None -> assert false (* share rules always allocate *))
           in
           let obj =
             Objective.of_decisions cluster working +. if feasible then 0.0 else 100.0
           in
           let misses = Objective.misses cluster working in
           let mean_latency_s = Latency.mean_latency cluster working in
           trace := { iteration = iter; objective = obj; misses; mean_latency_s } :: !trace;
           note_iteration obj;
           Es_obs.Span.set_attr iter_span "iteration" (Es_obs.Json.Int iter);
           Es_obs.Span.set_attr iter_span "objective" (Es_obs.Json.Float obj);
           Es_obs.Span.set_attr iter_span "misses" (Es_obs.Json.Int misses);
           Es_obs.Span.set_attr iter_span "mean_latency_s" (Es_obs.Json.Float mean_latency_s);
           Es_obs.Span.set_attr iter_span "feasible" (Es_obs.Json.Bool feasible);
           let improved =
             match !best with
             | Some (b, _) -> obj < b -. 1e-9
             | None -> feasible
           in
           if improved && feasible then begin
             best := Some (obj, working);
             no_improve := 0
           end
           else incr no_improve;
           if !no_improve >= 3 then raise Exit;
           (* --- Surgery step --- *)
           Array.iteri
             (fun device (d : Decision.t) ->
               let server = !assignment.(device) in
               let bandwidth_bps, compute_share =
                 if Decision.offloads d && d.Decision.bandwidth_bps > 0.0 then
                   (d.Decision.bandwidth_bps, d.Decision.compute_share)
                 else fair_share_estimate cluster ~plans ~assignment:!assignment ~device
               in
               plans.(device) <- best_plan ~device ~server ~bandwidth_bps ~compute_share)
             working;
           (* --- Assignment step --- *)
           if config.reassign && Array.length servers > 1 then begin
             let greedy = Assign.balanced_greedy cluster ~plans in
             assignment :=
               Assign.local_search ~max_passes:config.local_search_passes
                 ~n_servers:(Array.length servers)
                 ~eval:(load_proxy cluster ~plans)
                 greedy
           end)
     done
   with Exit -> ());
  let decisions =
    match !best with
    | Some (_, ds) -> ds
    | None -> (
        match force_feasible config cluster plans !assignment with
        | Some ds -> ds
        | None -> assert false)
  in
  let objective = Objective.of_decisions cluster decisions in
  Es_obs.Span.finish tracer
    ~attrs:
      [
        ("objective", Es_obs.Json.Float objective);
        ("iterations", Es_obs.Json.Int !iterations);
      ]
    root;
  {
    decisions;
    objective;
    iterations = !iterations;
    trace = List.rev !trace;
    solve_time_s = Es_obs.Obs.wall_clock () -. t0;
  }

(* Final gauges are set exactly once per [solve], from the chosen landing
   point — the multi-start trajectories themselves no longer write them, so
   the exported values cannot disagree with the returned result. *)
let set_final_gauges metrics ~objective ~solve_time_s =
  match metrics with
  | None -> ()
  | Some reg ->
      Es_obs.Metric.set (Es_obs.Metric.gauge reg "optimizer/objective") objective;
      Es_obs.Metric.set (Es_obs.Metric.gauge reg "optimizer/solve_time_s") solve_time_s

(* Validate-and-repair an incumbent decision set into the (plans,
   assignment) seed of one descent trajectory.  [None] when the incumbent
   is unusable wholesale (wrong arity for this cluster).  Per-device
   repairs, for incumbents that went stale between solves:
   - a plan built for a different model (the device changed) is replaced by
     the cold-start plan (fair share against the fastest server);
   - a decision referencing an out-of-range server (downed, or renumbered
     away in a residual cluster) is re-pointed at the fastest surviving
     server, keeping its plan — the descent's assignment step re-places it
     from there. *)
let warm_seed config cluster (incumbent : Decision.t array) =
  let nd = Cluster.n_devices cluster in
  if Array.length incumbent <> nd then None
  else begin
    let servers = cluster.Cluster.servers in
    let ns = Array.length servers in
    let fastest = fastest_server servers in
    let per_server = float_of_int (max 1 (nd / ns)) in
    let cold_plan device =
      let bw = servers.(fastest).Cluster.ap_bandwidth_bps /. per_server in
      best_plan_for_grants ?max_candidates:config.max_candidates
        ~precisions:config.precisions ~widths:config.widths cluster ~device ~server:fastest
        ~bandwidth_bps:bw ~compute_share:(1.0 /. per_server)
    in
    let plans =
      Array.init nd (fun device ->
          let plan = incumbent.(device).Decision.plan in
          let model = cluster.Cluster.devices.(device).Cluster.model in
          if plan.Es_surgery.Plan.base_name = model.Es_dnn.Graph.name then plan
          else cold_plan device)
    in
    let assignment =
      Array.init nd (fun device ->
          let s = incumbent.(device).Decision.server in
          if s >= 0 && s < ns then s else fastest)
    in
    Some (plans, assignment)
  end

(* Candidate decision sets contributed by a finished secondary trajectory:
   its own landing point (when queueing-stable on the target cluster) plus
   that landing point with the allocation re-polished by the optimal inner
   step.  Evaluation order is fixed, so the merge is deterministic. *)
let trajectory_candidates ~allocator cluster (out : output) =
  let plans = Array.map (fun (d : Decision.t) -> d.Decision.plan) out.decisions in
  let assignment = Array.map (fun (d : Decision.t) -> d.Decision.server) out.decisions in
  (if Array.for_all (Latency.device_stable cluster) out.decisions then [ out.decisions ]
   else [])
  @
  match best_allocation ~allocator cluster ~assignment ~plans with
  | Some ds -> [ ds ]
  | None -> []

(* Below this many devices a descent trajectory is too fine-grained for the
   domain pool: dispatch and stop-the-world GC synchronization cost more
   than the overlap buys (BENCH_solver.json's solver_scaling rows measured
   speedup ≈ 0.4 on small solves).  The multi-start fan-out then runs
   sequentially — and likewise whenever jobs auto-sizing says the machine
   has one usable core, where domains cannot add throughput at any size.
   Decisions are bit-identical either way (determinism contract), so this
   only moves time. *)
let par_fanout_min_devices = 32

let fanout_jobs config cluster =
  if Es_util.Par.default_jobs () = 1 || Cluster.n_devices cluster < par_fanout_min_devices then 1
  else config.jobs

let solve ?(config = default_config) ?metrics ?spans ?warm_start cluster =
  let t0 = Es_obs.Obs.wall_clock () in
  let warm_init = Option.bind warm_start (warm_seed config cluster) in
  if not config.multi_start then begin
    (* Single-trajectory mode for callers that already provide diversity
       elsewhere (the sharded solver runs many shard solves per sweep):
       descend once, warm when an incumbent is given, cold otherwise.  The
       warm-never-worse-than-cold guarantee of the multi-start merge does
       not apply here — the caller owns that guard. *)
    let out =
      match warm_init with
      | Some init -> solve_one ~config ?metrics ?spans ~init cluster
      | None -> solve_one ~config ?metrics ?spans cluster
    in
    set_final_gauges metrics ~objective:out.objective ~solve_time_s:out.solve_time_s;
    out
  end
  else
  match (config.allocator, warm_init) with
  | alloc, Some init when alloc <> Policy.Minmax_alloc ->
      (* Ablation allocators keep their single cold trajectory, plus the
         warm one; the better landing point wins, cold first on ties. *)
      let spans = Option.map Es_obs.Span.locked_sink spans in
      let cold, warm =
        Es_util.Par.both ~jobs:(fanout_jobs config cluster)
          (fun () -> solve_one ~config ?metrics ?spans cluster)
          (fun () -> solve_one ~config ?metrics ?spans ~init cluster)
      in
      let candidates =
        [ cold.decisions ] @ trajectory_candidates ~allocator:alloc cluster warm
      in
      let best =
        match Es_util.Numeric.argmin_by (Objective.of_decisions cluster) candidates with
        | Some ds -> ds
        | None -> cold.decisions
      in
      let solve_time_s = Es_obs.Obs.wall_clock () -. t0 in
      let objective = Objective.of_decisions cluster best in
      set_final_gauges metrics ~objective ~solve_time_s;
      { cold with decisions = best; objective; solve_time_s }
  | alloc, None when alloc <> Policy.Minmax_alloc ->
      let out = solve_one ~config ?metrics ?spans cluster in
      set_final_gauges metrics ~objective:out.objective ~solve_time_s:out.solve_time_s;
      out
  | _, Some init ->
      (* Full joint configuration with an incumbent: the two cold
         multi-start trajectories (primary min-max and equal-share, exactly
         as in the cold path) plus one warm trajectory seeded from the
         incumbent.  The merge evaluates the cold candidates first, so on an
         exact objective tie the result is bit-identical to the cold solve —
         a warm start can therefore never be worse, and never perturbs a
         solve it cannot improve.  The thunk list is fanned out over the
         domain pool in fixed order; results are merged in input order, so
         decisions are bit-identical for every [jobs]. *)
      let spans = Option.map Es_obs.Span.locked_sink spans in
      let outs =
        Es_util.Par.parallel_map ~jobs:(fanout_jobs config cluster)
          (fun f -> f ())
          [
            (fun () -> solve_one ~config ?metrics ?spans cluster);
            (fun () ->
              solve_one ~config:{ config with allocator = Policy.Equal } ?metrics ?spans
                cluster);
            (fun () -> solve_one ~config ?metrics ?spans ~init cluster);
          ]
      in
      let primary, alt, warm =
        match outs with [ p; a; w ] -> (p, a, w) | _ -> assert false
      in
      let candidates =
        [ primary.decisions ]
        @ trajectory_candidates ~allocator:Policy.Minmax_alloc cluster alt
        @ trajectory_candidates ~allocator:Policy.Minmax_alloc cluster warm
      in
      let best =
        match Es_util.Numeric.argmin_by (Objective.of_decisions cluster) candidates with
        | Some ds -> ds
        | None -> primary.decisions
      in
      let solve_time_s = Es_obs.Obs.wall_clock () -. t0 in
      let objective = Objective.of_decisions cluster best in
      set_final_gauges metrics ~objective ~solve_time_s;
      { primary with decisions = best; objective; solve_time_s }
  | _, None -> begin
    (* Multi-start: coordinate descent is sensitive to the allocator driving
       its surgery steps, so the full joint configuration also runs the
       equal-share trajectory and keeps the better landing point (with its
       allocation re-polished by the optimal inner step).  This makes the
       joint result never worse than the surgery-only ablation by
       construction.

       The two trajectories are independent and deterministic (no shared
       mutable state beyond the domain-safe caches and the metrics registry),
       so they run concurrently under [config.jobs] with results identical to
       the sequential order.  A shared span sink is serialized; the
       [optimizer/iterations] counter accumulates both trajectories. *)
    let spans = Option.map Es_obs.Span.locked_sink spans in
    let primary, alt =
      Es_util.Par.both ~jobs:(fanout_jobs config cluster)
        (fun () -> solve_one ~config ?metrics ?spans cluster)
        (fun () ->
          solve_one ~config:{ config with allocator = Policy.Equal } ?metrics ?spans cluster)
    in
    let alt_plans = Array.map (fun (d : Decision.t) -> d.Decision.plan) alt.decisions in
    let alt_assignment = Array.map (fun (d : Decision.t) -> d.Decision.server) alt.decisions in
    let candidates =
      [ primary.decisions ]
      @ (if Array.for_all (Latency.device_stable cluster) alt.decisions then [ alt.decisions ]
         else [])
      @
      match best_allocation cluster ~assignment:alt_assignment ~plans:alt_plans with
      | Some ds -> [ ds ]
      | None -> []
    in
    let best =
      match Es_util.Numeric.argmin_by (Objective.of_decisions cluster) candidates with
      | Some ds -> ds
      | None -> primary.decisions
    in
    let solve_time_s = Es_obs.Obs.wall_clock () -. t0 in
    let objective = Objective.of_decisions cluster best in
    set_final_gauges metrics ~objective ~solve_time_s;
    { primary with decisions = best; objective; solve_time_s }
  end
