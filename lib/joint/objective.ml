(* es_lint: hot *)
open Es_edge

let latency_cap = 10.0
let infeasible = 1e18

let misses_ref cluster decisions =
  (* es_lint: cold — fold/closure reference oracle *)
  Array.fold_left
    (fun acc d -> if Latency.meets_deadline cluster d then acc else acc + 1)
    0 decisions

let misses cluster decisions =
  let miss = ref 0 in
  for i = 0 to Array.length decisions - 1 do
    if not (Latency.meets_deadline cluster decisions.(i)) then incr miss
  done;
  !miss

let mm1_misses_ref cluster decisions =
  (* es_lint: cold — fold/closure reference oracle *)
  Array.fold_left
    (fun acc (d : Decision.t) ->
      let dev = cluster.Cluster.devices.(d.Decision.device) in
      if Latency.mm1_estimate cluster d <= dev.Cluster.deadline +. 1e-12 then acc else acc + 1)
    0 decisions

let mm1_misses cluster decisions =
  let miss = ref 0 in
  for i = 0 to Array.length decisions - 1 do
    let d = decisions.(i) in
    let dev = cluster.Cluster.devices.(d.Decision.device) in
    if not (Latency.mm1_estimate cluster d <= dev.Cluster.deadline +. 1e-12) then incr miss
  done;
  !miss

let of_decisions_ref cluster decisions =
  let n = Array.length decisions in
  if n = 0 then 0.0
  else begin
    let miss = ref 0 and norm = ref 0.0 in
    (* es_lint: cold — iter/closure reference oracle *)
    Array.iter
      (fun (d : Decision.t) ->
        let dev = cluster.Cluster.devices.(d.Decision.device) in
        let ratio = Latency.of_decision_ref cluster d /. dev.Cluster.deadline in
        if ratio > 1.0 +. 1e-9 then incr miss;
        norm := !norm +. Float.min ratio latency_cap)
      decisions;
    float_of_int !miss +. (!norm /. float_of_int n)
  end

let of_decisions cluster decisions =
  let n = Array.length decisions in
  if n = 0 then 0.0
  else begin
    let miss = ref 0 and norm = ref 0.0 in
    for i = 0 to n - 1 do
      let d = decisions.(i) in
      let dev = cluster.Cluster.devices.(d.Decision.device) in
      let ratio = Latency.of_decision cluster d /. dev.Cluster.deadline in
      if ratio > 1.0 +. 1e-9 then incr miss;
      norm := !norm +. Float.min ratio latency_cap
    done;
    float_of_int !miss +. (!norm /. float_of_int n)
  end
