(** The scalar objective the joint optimizer minimizes.

    Primary goal: deadline satisfaction; secondary: low latency.  Both are
    folded into one number so coordinate descent and local search can
    compare configurations:

      objective = (#analytic deadline misses) + mean_i min(L_i/τ_i, cap)

    A miss costs at least 1 while the normalized-latency term of an
    all-hitting configuration stays below 1 per device on average, so the
    ordering is effectively lexicographic (miss count first), yet the
    latency term still rewards improving latency when misses are equal —
    and pushing an already-missing device closer to its deadline. *)

val latency_cap : float
(** Normalized latencies are clamped here (10.0) so one hopeless device
    cannot dominate the sum. *)

val of_decisions : Es_edge.Cluster.t -> Es_edge.Decision.t array -> float

val of_decisions_ref : Es_edge.Cluster.t -> Es_edge.Decision.t array -> float
(** Closure-based original of {!of_decisions} (over
    {!Es_edge.Latency.of_decision_ref}), kept as the qcheck oracle — both
    must agree to the last bit on every input. *)

val misses : Es_edge.Cluster.t -> Es_edge.Decision.t array -> int

val misses_ref : Es_edge.Cluster.t -> Es_edge.Decision.t array -> int

val mm1_misses : Es_edge.Cluster.t -> Es_edge.Decision.t array -> int

val mm1_misses_ref : Es_edge.Cluster.t -> Es_edge.Decision.t array -> int
(** Deadline misses under the queueing-aware {!Es_edge.Latency.mm1_estimate}
    — the criterion capacity planning must use: the plain analytic latency
    ignores congestion, so a deployment can be "zero-miss" analytically yet
    drown in queues at high load. *)

val infeasible : float
(** Sentinel (1e18) for configurations with no stable allocation. *)
