open Es_edge
open Es_surgery

type output = {
  decisions : Decision.t array option;
  objective : float;
  combinations : int;
  solve_time_s : float;
}

let solve ?(widths = Candidate.default_widths) ?(max_candidates_per_device = 6) ?jobs cluster =
  let t0 = Es_obs.Obs.wall_clock () in
  let nd = Cluster.n_devices cluster and ns = Cluster.n_servers cluster in
  (* Subsample the Pareto frontier exactly the way the heuristic does
     (subsample first, then the accuracy filter), so that with the same cap
     the heuristic's plan grid is a subset of the exhaustive one and the
     measured optimality gap is meaningful. *)
  let cands =
    Array.init nd (fun i ->
        let dev = cluster.Cluster.devices.(i) in
        let all = Candidate.pareto_candidates ~widths dev.Cluster.model in
        let sub = Candidate.subsample max_candidates_per_device all in
        let acc_ok =
          List.filter
            (fun (p : Plan.t) -> p.Plan.accuracy >= dev.Cluster.accuracy_floor -. 1e-9)
            sub
        in
        let pool = if acc_ok = [] then sub else acc_ok in
        Array.of_list pool)
  in
  let total =
    Array.fold_left
      (fun acc c -> acc *. float_of_int (Array.length c) *. float_of_int ns)
      1.0 cands
  in
  if total > 2e6 then
    invalid_arg
      (Printf.sprintf "Exhaustive.solve: %.0f combinations exceed the 2e6 cap" total);
  (* The search below device [from] with the prefix already pinned in
     [assignment]/[choice]; each parallel branch owns private copies. *)
  let enumerate_from ~assignment ~choice from =
    let best_obj = ref Objective.infeasible in
    let best_ds = ref None in
    let combos = ref 0 in
    let rec enumerate device =
      if device = nd then begin
        incr combos;
        let plans = Array.init nd (fun i -> cands.(i).(choice.(i))) in
        match Optimizer.best_allocation cluster ~assignment ~plans with
        | None -> ()
        | Some ds ->
            let obj = Objective.of_decisions cluster ds in
            if obj < !best_obj then begin
              best_obj := obj;
              best_ds := Some ds
            end
      end
      else
        for c = 0 to Array.length cands.(device) - 1 do
          choice.(device) <- c;
          let plan = cands.(device).(c) in
          if Plan.is_device_only plan then begin
            (* The server choice is inert for local plans: fix it to 0. *)
            assignment.(device) <- 0;
            enumerate (device + 1)
          end
          else
            for s = 0 to ns - 1 do
              assignment.(device) <- s;
              enumerate (device + 1)
            done
        done
    in
    enumerate from;
    (!best_obj, !best_ds, !combos)
  in
  let best_obj, best_ds, combos =
    if nd = 0 then enumerate_from ~assignment:[||] ~choice:[||] 0
    else begin
      (* Fan out over device 0's (plan, server) branches.  Each branch is an
         independent sub-search on private state; merging in branch order
         with a strict [<] reproduces the sequential first-wins tie-break
         exactly, and the per-branch combination counts sum to the
         sequential total. *)
      let branches =
        List.concat_map
          (fun c ->
            if Plan.is_device_only cands.(0).(c) then [ (c, 0) ]
            else List.init ns (fun s -> (c, s)))
          (List.init (Array.length cands.(0)) Fun.id)
      in
      let results =
        Es_util.Par.parallel_map ?jobs
          (fun (c, s) ->
            let assignment = Array.make nd 0 in
            let choice = Array.make nd 0 in
            choice.(0) <- c;
            assignment.(0) <- s;
            enumerate_from ~assignment ~choice 1)
          branches
      in
      List.fold_left
        (fun (bo, bd, bc) (o, d, n) -> if o < bo then (o, d, bc + n) else (bo, bd, bc + n))
        (Objective.infeasible, None, 0)
        results
    end
  in
  {
    decisions = best_ds;
    objective = best_obj;
    combinations = combos;
    solve_time_s = Es_obs.Obs.wall_clock () -. t0;
  }
