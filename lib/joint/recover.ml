open Es_edge

type t = {
  cluster : Cluster.t;
  config : Optimizer.config;
  solver : Optimizer.solver option;
  baseline : Decision.t array;
  fallbacks : Decision.t array array;
}

(* All-local decisions: per device, the fastest device-only plan meeting its
   accuracy floor, or failing that the fastest device-only plan outright —
   when no server is left, degraded answers beat dropped requests.  The
   selection lives in [Es_sim.Overload] so the runner's breaker/brownout
   reroutes and this recovery path degrade to the same plans. *)
let local_decisions = Es_sim.Overload.local_decisions

let solve_without ?(config = Optimizer.default_config) ?solver ?warm_start cluster ~failed =
  let ns = Cluster.n_servers cluster in
  List.iter
    (fun s ->
      if s < 0 || s >= ns then
        invalid_arg (Printf.sprintf "Recover.solve_without: server %d out of range" s))
    failed;
  let keep =
    List.filter (fun s -> not (List.mem s failed)) (List.init ns Fun.id)
  in
  if keep = [] then local_decisions cluster
  else begin
    (* Re-solve the residual problem on the surviving servers.  Cluster.make
       re-numbers server ids to positions, so map the reduced indices back
       to the original cluster's. *)
    let orig_of_new = Array.of_list keep in
    let new_of_orig = Array.make ns (-1) in
    Array.iteri (fun n o -> new_of_orig.(o) <- n) orig_of_new;
    let residual =
      Cluster.make
        ~devices:(Array.to_list cluster.Cluster.devices)
        ~servers:(List.map (fun s -> cluster.Cluster.servers.(s)) keep)
    in
    (* Re-index a warm incumbent into the residual numbering.  A device on
       a failed server keeps its plan but gets server -1 — the optimizer's
       warm-start repair marks exactly that shape for reassignment. *)
    let warm_start =
      Option.map
        (Array.map (fun (d : Decision.t) ->
             let s = d.Decision.server in
             let s' = if s >= 0 && s < ns then new_of_orig.(s) else -1 in
             { d with Decision.server = s' }))
        warm_start
    in
    let out =
      match solver with
      | Some (f : Optimizer.solver) -> f ~warm:warm_start residual
      | None -> Optimizer.solve ~config ?warm_start residual
    in
    Array.map
      (fun (d : Decision.t) ->
        if Decision.offloads d then { d with Decision.server = orig_of_new.(d.Decision.server) }
        else d)
      out.Optimizer.decisions
  end

let precompute ?(config = Optimizer.default_config) ?solver ?(jobs = 0) ?baseline cluster =
  let ns = Cluster.n_servers cluster in
  (* The healthy-cluster baseline seeds every failure domain: losing one
     server perturbs only that server's devices, so the survivors' plans
     and placements are a near-optimal starting trajectory. *)
  let baseline =
    match baseline with
    | Some ds when Array.length ds = Cluster.n_devices cluster -> ds
    | Some _ | None -> (
        match solver with
        | Some (f : Optimizer.solver) -> (f ~warm:None cluster).Optimizer.decisions
        | None -> (Optimizer.solve ~config cluster).Optimizer.decisions)
  in
  let fallbacks =
    Es_util.Par.parallel_map_array ~jobs
      (fun s -> solve_without ~config ?solver ~warm_start:baseline cluster ~failed:[ s ])
      (Array.init ns Fun.id)
  in
  { cluster; config; solver; baseline; fallbacks }

let baseline t = t.baseline

let fallback t ~server =
  if server < 0 || server >= Array.length t.fallbacks then
    invalid_arg (Printf.sprintf "Recover.fallback: server %d out of range" server);
  t.fallbacks.(server)

let decisions_for t ~decisions down =
  match down with
  | [] -> decisions
  | [ s ] -> t.fallbacks.(s)
  | many -> solve_without ~config:t.config ?solver:t.solver ~warm_start:t.baseline t.cluster ~failed:many

let schedule_for_faults t ?(detect_s = 1.0) ~decisions faults =
  if detect_s < 0.0 then invalid_arg "Recover.schedule_for_faults: negative detect_s";
  let down = ref [] in
  let entries = ref [] in
  List.iter
    (fun (tau, ev) ->
      let changed =
        match ev with
        | Es_sim.Faults.Server_down s when not (List.mem s !down) ->
            down := List.sort Int.compare (s :: !down);
            true
        | Es_sim.Faults.Server_up s when List.mem s !down ->
            down := List.filter (fun x -> x <> s) !down;
            true
        | _ -> false
      in
      if changed then entries := (tau +. detect_s, decisions_for t ~decisions !down) :: !entries)
    (Es_sim.Faults.events faults);
  List.rev !entries

let run_online ?(options = Es_sim.Runner.default_options) ?(config = Optimizer.default_config)
    ?recover ~epoch_s ~rate_profile cluster =
  if epoch_s <= 0.0 then invalid_arg "Recover.run_online: non-positive epoch";
  let faults = options.Es_sim.Runner.faults in
  let recover =
    match recover with Some r -> r | None -> precompute ~config cluster
  in
  let duration_s = options.Es_sim.Runner.duration_s in
  let arrivals =
    Online.piecewise_arrivals ~seed:options.Es_sim.Runner.seed ~duration_s ~rate_profile cluster
  in
  let rec epochs acc time =
    if time >= duration_s then List.rev acc else epochs (time :: acc) (time +. epoch_s)
  in
  let resolve_count = ref 0 in
  let schedule =
    List.map
      (fun time ->
        (* Availability check at the epoch boundary: the runner's fault
           state isn't visible from here, so detection reads the schedule —
           an oracle detector with epoch-granularity reaction time. *)
        let down = Es_sim.Faults.down_at faults ~time in
        let ds =
          match down with
          | [] ->
              incr resolve_count;
              let load = Float.max 1e-9 (rate_profile time) in
              let out = Optimizer.solve ~config (Online.scale_rates cluster load) in
              out.Optimizer.decisions
          | _ -> decisions_for recover ~decisions:[||] down
          (* decisions_for only returns its [decisions] argument when the
             down-set is empty, which the [[]] branch above handles *)
        in
        (time, ds))
      (epochs [] 0.0)
  in
  match schedule with
  | [] -> invalid_arg "Recover.run_online: empty schedule"
  | (_, initial) :: rest ->
      let report = Es_sim.Runner.run ~options ~arrivals ~reconfigure:rest cluster initial in
      {
        Online.report;
        schedule;
        resolve_count = !resolve_count;
        resolve_rejected = 0;
        cache_hits = 0;
      }
