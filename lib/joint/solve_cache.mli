(** Keyed memoization of {!Optimizer.solve}.

    Every repeated-solve consumer in the system — {!Online.run} revisiting a
    diurnal load level, {!Planner} bisection probing the same trial point
    from both planners, {!Recover.precompute} rebuilt after a transient —
    re-pays a full block-coordinate descent for an input it has already
    solved.  This cache closes that loop: a solve is fingerprinted by
    everything its output depends on and the memoized {!Optimizer.output} is
    returned bit-identically on a hit.

    {b Key.} {!Es_edge.Cluster.fingerprint} of the cluster (devices,
    servers, links, models, deadlines, floors) with the rate vector
    quantized to [rate_grain], combined with the optimizer config —
    excluding [jobs], whose value never changes the output (the solver's
    determinism contract), so sequential and parallel callers share
    entries.

    {b Bounds and safety.} A mutex-protected LRU bounded by [capacity]
    (like [Candidate.cache], it may be shared across domains — e.g. under
    {!Recover.precompute}'s fan-out).  Hit / miss / eviction counts are kept
    internally and, when a registry is supplied, mirrored to the
    [solve_cache/hits|misses|evictions] counters in {!Es_obs}.

    {b When the cache is bypassed.} Consumers skip the cache rather than
    widening the key: any input outside the fingerprint (a different
    scenario axis, a hand-mutated cluster) simply produces a different
    fingerprint, and callers that must observe telemetry of the actual
    descent (spans) should call {!Optimizer.solve} directly — a cache hit
    emits no spans and runs no trajectories. *)

type t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;  (** currently resident *)
}

val create :
  ?capacity:int -> ?rate_grain:float -> ?metrics:Es_obs.Metric.registry -> unit -> t
(** [capacity] bounds resident entries (default 64); [rate_grain] is the
    rate-vector quantization grain in req/s (default 1e-6 — effectively
    exact recurrence; raise it to absorb load jitter).  [metrics] registers
    the hit/miss/eviction counters.
    @raise Invalid_argument on a non-positive capacity or negative grain. *)

val capacity : t -> int
val rate_grain : t -> float

val fingerprint : t -> config:Optimizer.config -> Es_edge.Cluster.t -> string
(** The cache key for this (cluster, config) under the cache's grain.
    Exposed for tests and for callers managing entries directly. *)

val find : t -> string -> Optimizer.output option
(** Lookup by key; counts a hit or a miss and refreshes LRU order. *)

val store : t -> string -> Optimizer.output -> unit
(** Insert, evicting least-recently-used entries past capacity.  An
    existing key is left untouched (first solve wins — all solves for a key
    are identical by the determinism contract). *)

val solve :
  t ->
  ?config:Optimizer.config ->
  ?metrics:Es_obs.Metric.registry ->
  ?spans:Es_obs.Span.sink ->
  ?warm_start:Es_edge.Decision.t array ->
  Es_edge.Cluster.t ->
  Optimizer.output
(** Memoized {!Optimizer.solve}: on a hit the cached output is returned
    bit-identically (no trajectories run, no spans emitted, [solve_time_s]
    is the original solve's); on a miss the solve runs — with [warm_start]
    passed through — and the result is stored.  [warm_start] is a hint, not
    part of the key: whichever equal-or-better landing point was computed
    first is the entry. *)

val stats : t -> stats
val clear : t -> unit
(** Drops entries; counters keep accumulating. *)
