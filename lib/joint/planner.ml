open Es_edge

type verdict = {
  required : float;
  feasible : bool;
  solves : int;
  witness : Decision.t array option;
}

(* Queueing-aware zero-miss test: the analytic latency alone would declare
   arbitrarily high loads feasible (it has no congestion term).  Returns the
   solved decision set alongside the verdict so the bisection can thread it
   into the next trial as a warm start. *)
let zero_miss ?config ?warm_start cluster =
  let out = Optimizer.solve ?config ?warm_start cluster in
  (Objective.mm1_misses cluster out.Optimizer.decisions = 0, out.Optimizer.decisions)

(* Warm-start threading for geometric bisection: each trial is seeded from
   the nearer (in log space — the bisection's own metric) bracket endpoint's
   solution, the low endpoint winning the exact tie at the geometric mean.
   [ok] receives the trial point and the chosen seed. *)
type 'a bracket = { point : float; solution : 'a option }

let nearer_seed lo hi mid =
  if log mid -. log lo.point <= log hi.point -. log mid then lo.solution else hi.solution

(* Find the smallest x in [lo, hi] with ok x (monotone), to ~2% relative
   tolerance; counts evaluations. *)
let bisect_min ~lo ~hi ok =
  let solves = ref 0 in
  let eval ?warm x =
    incr solves;
    ok ?warm x
  in
  let ok_lo, sol_lo = eval lo in
  if ok_lo then { required = lo; feasible = true; solves = !solves; witness = Some sol_lo }
  else begin
    let ok_hi, sol_hi = eval ~warm:sol_lo hi in
    if not ok_hi then
      { required = hi; feasible = false; solves = !solves; witness = None }
    else begin
      let lo = ref { point = lo; solution = Some sol_lo } in
      let hi = ref { point = hi; solution = Some sol_hi } in
      while !hi.point /. !lo.point > 1.02 do
        let mid = sqrt (!lo.point *. !hi.point) in
        let ok_mid, sol = eval ?warm:(nearer_seed !lo !hi mid) mid in
        let bracket = { point = mid; solution = Some sol } in
        if ok_mid then hi := bracket else lo := bracket
      done;
      { required = !hi.point; feasible = true; solves = !solves; witness = !hi.solution }
    end
  end

(* The dual direction: the largest x with ok x. *)
let bisect_max ~lo ~hi ok =
  let solves = ref 0 in
  let eval ?warm x =
    incr solves;
    ok ?warm x
  in
  let ok_lo, sol_lo = eval lo in
  if not ok_lo then { required = lo; feasible = false; solves = !solves; witness = None }
  else begin
    let ok_hi, sol_hi = eval ~warm:sol_lo hi in
    if ok_hi then
      { required = hi; feasible = true; solves = !solves; witness = Some sol_hi }
    else begin
      let lo = ref { point = lo; solution = Some sol_lo } in
      let hi = ref { point = hi; solution = Some sol_hi } in
      while !hi.point /. !lo.point > 1.02 do
        let mid = sqrt (!lo.point *. !hi.point) in
        let ok_mid, sol = eval ?warm:(nearer_seed !lo !hi mid) mid in
        let bracket = { point = mid; solution = Some sol } in
        if ok_mid then lo := bracket else hi := bracket
      done;
      { required = !lo.point; feasible = true; solves = !solves; witness = !lo.solution }
    end
  end

let required_bandwidth_mbps ?config ?(lo_mbps = 5.0) ?(hi_mbps = 2000.0) spec =
  bisect_min ~lo:lo_mbps ~hi:hi_mbps (fun ?warm mbps ->
      zero_miss ?config ?warm_start:warm
        (Scenario.build (Scenario.with_ap_mbps mbps spec)))

let scale_servers spec factor =
  {
    spec with
    Scenario.servers =
      List.map (fun (p, mbps) -> (Processor.scaled p factor, mbps)) spec.Scenario.servers;
  }

let required_server_scale ?config ?(lo = 0.05) ?(hi = 16.0) spec =
  bisect_min ~lo ~hi (fun ?warm f ->
      zero_miss ?config ?warm_start:warm (Scenario.build (scale_servers spec f)))

let max_supported_load ?config ?(hi = 32.0) spec =
  let base = Scenario.build spec in
  bisect_max ~lo:0.05 ~hi (fun ?warm m ->
      zero_miss ?config ?warm_start:warm (Online.scale_rates base m))
