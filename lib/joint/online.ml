open Es_edge

type result = {
  report : Es_sim.Metrics.report;
  schedule : (float * Decision.t array) list;
  resolve_count : int;
  resolve_rejected : int;
  cache_hits : int;
}

let scale_rates cluster m =
  if m <= 0.0 then invalid_arg "Online.scale_rates: non-positive multiplier";
  {
    cluster with
    Cluster.devices =
      Array.map
        (fun (d : Cluster.device) -> { d with Cluster.rate = d.Cluster.rate *. m })
        cluster.Cluster.devices;
  }

let piecewise_arrivals ~seed ~duration_s ~rate_profile cluster =
  Es_workload.Traces.piecewise ~seed ~duration_s ~rate_profile cluster

let epochs_of ~epoch_s ~duration_s =
  let rec go acc t = if t >= duration_s then List.rev acc else go (t :: acc) (t +. epoch_s) in
  go [] 0.0

let run ?(options = Es_sim.Runner.default_options) ?config ?cache ?solver
    ?(warm_start = true) ~epoch_s ~rate_profile cluster =
  if epoch_s <= 0.0 then invalid_arg "Online.run: non-positive epoch";
  let duration_s = options.Es_sim.Runner.duration_s in
  let arrivals =
    piecewise_arrivals ~seed:options.Es_sim.Runner.seed ~duration_s ~rate_profile cluster
  in
  (* Structural sanity for a fresh solve: a candidate that would crash the
     runner (NaN grants, out-of-range server) can never replace a working
     decision set.  Deliberately weaker than [Decision.validate] — a
     force-feasible solve may legitimately trade away accuracy floors. *)
  let ns = Cluster.n_servers cluster in
  let structurally_sound ds =
    Array.for_all
      (fun (d : Decision.t) ->
        Float.is_finite d.Decision.bandwidth_bps
        && d.Decision.bandwidth_bps >= 0.0
        && Float.is_finite d.Decision.compute_share
        && d.Decision.compute_share >= 0.0
        && ((not (Decision.offloads d))
           || (d.Decision.server >= 0 && d.Decision.server < ns && d.Decision.bandwidth_bps > 0.0)
           ))
      ds
  in
  let rejected = ref 0 in
  let prev = ref None in
  let hits0 =
    match cache with None -> 0 | Some sc -> (Solve_cache.stats sc).Solve_cache.hits
  in
  let schedule =
    List.map
      (fun t ->
        let load = Float.max 1e-9 (rate_profile t) in
        let scaled = scale_rates cluster load in
        (* Warm-start from the incumbent (the previous epoch's applied
           decisions); consult the solve cache when a load level recurs. *)
        let warm = if warm_start then !prev else None in
        let out =
          match solver with
          | Some (f : Optimizer.solver) -> f ~warm scaled
          | None -> (
              match cache with
              | Some sc -> Solve_cache.solve sc ?config ?warm_start:warm scaled
              | None -> Optimizer.solve ?config ?warm_start:warm scaled)
        in
        let cand = out.Optimizer.decisions in
        (* Guard the re-solve: keep the previous decisions when the fresh
           solve is malformed or strictly worse under the current load than
           simply not moving. *)
        let chosen =
          match !prev with
          | None -> cand
          | Some p ->
              if
                structurally_sound cand
                && Objective.of_decisions scaled cand
                   <= Objective.of_decisions scaled p +. 1e-9
              then cand
              else begin
                incr rejected;
                p
              end
        in
        prev := Some chosen;
        (t, chosen))
      (epochs_of ~epoch_s ~duration_s)
  in
  match schedule with
  | [] -> invalid_arg "Online.run: empty schedule"
  | (_, initial) :: rest ->
      let report =
        Es_sim.Runner.run ~options ~arrivals ~reconfigure:rest cluster initial
      in
      let cache_hits =
        match cache with
        | None -> 0
        | Some sc -> (Solve_cache.stats sc).Solve_cache.hits - hits0
      in
      {
        report;
        schedule;
        resolve_count = List.length schedule;
        resolve_rejected = !rejected;
        cache_hits;
      }

let run_static ?(options = Es_sim.Runner.default_options) ?config ~rate_profile cluster =
  let duration_s = options.Es_sim.Runner.duration_s in
  let arrivals =
    piecewise_arrivals ~seed:options.Es_sim.Runner.seed ~duration_s ~rate_profile cluster
  in
  let nominal = scale_rates cluster (Float.max 1e-9 (rate_profile 0.0)) in
  let out = Optimizer.solve ?config nominal in
  let report = Es_sim.Runner.run ~options ~arrivals cluster out.Optimizer.decisions in
  {
    report;
    schedule = [ (0.0, out.Optimizer.decisions) ];
    resolve_count = 1;
    resolve_rejected = 0;
    cache_hits = 0;
  }
