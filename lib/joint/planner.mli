(** Capacity planning: invert the optimizer.

    Operators ask the dual question of scheduling: not "what is the best we
    can do with this hardware" but "how much hardware does this workload
    need".  Both planners bisect over a provisioning axis, solving the full
    joint optimization at each trial point, and return the smallest
    provisioning whose optimized deployment meets every deadline
    analytically (objective < 1, i.e. zero misses).

    Consecutive trial points differ only along the bisected axis, so each
    trial solve is warm-started from the nearer (log-space) bracket
    endpoint's solution — the trial is equal-or-better than a cold solve by
    {!Optimizer.solve}'s warm-start contract, and the feasibility boundary
    can only tighten.  The decision set certifying the returned provisioning
    is exposed as the [witness]. *)

type verdict = {
  required : float;  (** the provisioning level found *)
  feasible : bool;  (** false if even the upper bound fails ([required] is
                        then that bound) *)
  solves : int;  (** optimizer invocations spent *)
  witness : Es_edge.Decision.t array option;
      (** the zero-miss decision set the optimizer found at [required]
          (None when infeasible): the verdict's certificate, checkable with
          {!Objective.mm1_misses} on the cluster built at [required] *)
}

val required_bandwidth_mbps :
  ?config:Optimizer.config ->
  ?lo_mbps:float ->
  ?hi_mbps:float ->
  Es_edge.Scenario.spec ->
  verdict
(** Minimum access-point capacity (applied to every AP via
    {!Es_edge.Scenario.with_ap_mbps}) such that the joint optimizer finds a
    zero-miss deployment.  Default search range 5–2000 Mbps, resolved to
    ~2%. *)

val required_server_scale :
  ?config:Optimizer.config ->
  ?lo:float ->
  ?hi:float ->
  Es_edge.Scenario.spec ->
  verdict
(** Minimum multiplier on every server's compute throughput achieving a
    zero-miss deployment.  Default range 0.05–16. *)

val max_supported_load :
  ?config:Optimizer.config ->
  ?hi:float ->
  Es_edge.Scenario.spec ->
  verdict
(** Largest global rate multiplier the scenario sustains with zero misses
    (the capacity region boundary along the load axis).  Default upper
    probe 32×. *)
