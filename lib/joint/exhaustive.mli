(** Exhaustive joint solver for optimality-gap measurements.

    Enumerates every device→server assignment and every combination of
    surgery candidates (capped per device to keep the search tractable),
    solving the allocation inner step optimally for each — so the returned
    objective is the true optimum over the searched plan grid.  Exponential:
    use only on the small instances of experiment T2. *)

type output = {
  decisions : Es_edge.Decision.t array option;  (** [None] if nothing stable *)
  objective : float;  (** {!Objective.infeasible} when [None] *)
  combinations : int;  (** configurations evaluated *)
  solve_time_s : float;
}

val solve :
  ?widths:float list ->
  ?max_candidates_per_device:int ->
  ?jobs:int ->
  Es_edge.Cluster.t ->
  output
(** [max_candidates_per_device] (default 6) subsamples each device's Pareto
    frontier evenly (always keeping the device-only and full-offload
    extremes).  [jobs] fans the first device's (plan, server) branches out
    over domains ([1] sequential, [0]/omitted auto); the returned optimum,
    tie-breaks and combination count are identical at any [jobs].
    @raise Invalid_argument when the instance exceeds 2 million
    combinations — that is the exhaustive solver telling you to use
    {!Optimizer}. *)
