(** Failure-aware recovery planning.

    For every failure domain (today: the loss of one server) the recovery
    planner precomputes the best response — a full re-solve of the residual
    problem with that server removed, its devices re-placed and re-granted
    on the survivors.  When a fault actually fires, recovery is then a
    table lookup plus one reconfiguration, not an optimization run in the
    detection path.

    Two consumers:
    - {!schedule_for_faults} turns a known fault schedule into a
      [reconfigure] list for {!Es_sim.Runner.run} — fallback decisions
      swap in a fixed detection delay after each crash, the original
      decisions return after repair;
    - {!run_online} is the failure-aware variant of {!Online.run}: at each
      epoch boundary it checks server availability and swaps in the
      precomputed fallback within one epoch, re-optimizing for load as
      usual while the cluster is healthy. *)

type t
(** Precomputed fallback table for one cluster. *)

val local_decisions : Es_edge.Cluster.t -> Es_edge.Decision.t array
(** All-device-only decisions: per device, the fastest local plan meeting
    its accuracy floor, else the fastest local plan outright.  The fallback
    of last resort when no server survives. *)

val solve_without :
  ?config:Optimizer.config ->
  ?solver:Optimizer.solver ->
  ?warm_start:Es_edge.Decision.t array ->
  Es_edge.Cluster.t ->
  failed:int list ->
  Es_edge.Decision.t array
(** Best decision set with the [failed] servers removed: a fresh
    {!Optimizer.solve} on the residual cluster, server indices mapped back
    to the original cluster's numbering.  No fallback decision ever targets
    a failed server.  All servers failed degrades to {!local_decisions}.

    [warm_start] (in the {e original} cluster's server numbering, e.g. the
    healthy-cluster solution) seeds the residual solve: decisions on
    surviving servers are re-indexed, decisions on failed servers keep
    their plan but are marked for reassignment by the optimizer's
    warm-start repair.  [solver] replaces the residual {!Optimizer.solve}
    (e.g. [Es_scale.solver] at fleet scale); it receives the re-indexed
    warm incumbent and the residual cluster.
    @raise Invalid_argument on an out-of-range server index. *)

val precompute :
  ?config:Optimizer.config ->
  ?solver:Optimizer.solver ->
  ?jobs:int ->
  ?baseline:Es_edge.Decision.t array ->
  Es_edge.Cluster.t ->
  t
(** [precompute cluster] solves the single-server-loss response for every
    server, fanning the solves out over the {!Es_util.Par} pool ([jobs] as
    in {!Es_util.Par.parallel_map}; nested parallelism inside each solve
    degrades safely).  Each failure domain is warm-started from the
    healthy-cluster [baseline] decisions (solved here if not supplied;
    ignored if its arity doesn't match the cluster): losing one server
    perturbs only that server's devices, so the survivors' incumbent is a
    near-optimal seed and every fallback is equal-or-better than a cold
    residual solve.  [solver] is used for the baseline solve and every
    failure-domain re-solve, and is remembered for the multi-failure
    re-solves of {!schedule_for_faults}. *)

val baseline : t -> Es_edge.Decision.t array
(** The healthy-cluster decisions the fallback table was seeded from. *)

val fallback : t -> server:int -> Es_edge.Decision.t array
(** The precomputed response to losing [server].
    @raise Invalid_argument when out of range. *)

val schedule_for_faults :
  t ->
  ?detect_s:float ->
  decisions:Es_edge.Decision.t array ->
  Es_sim.Faults.t ->
  (float * Es_edge.Decision.t array) list
(** Reconfiguration entries for a known fault schedule: after every change
    to the set of down servers, the appropriate decisions (original when
    all are up, the precomputed fallback for a single loss, a fresh
    residual solve for multiple) apply [detect_s] seconds later
    (default 1.0 — the failure-detection delay).  Feed to
    {!Es_sim.Runner.run}'s [reconfigure] alongside the same fault schedule
    in its options. *)

val run_online :
  ?options:Es_sim.Runner.options ->
  ?config:Optimizer.config ->
  ?recover:t ->
  epoch_s:float ->
  rate_profile:(float -> float) ->
  Es_edge.Cluster.t ->
  Online.result
(** Failure-aware {!Online.run}: epochs where every server is up re-solve
    against the epoch's load; an epoch that starts with servers down (read
    from [options.faults] — an oracle detector with epoch-granularity
    reaction) swaps in the fallback decisions instead.  The fault schedule
    in [options.faults] is also injected into the simulation itself;
    [resolve_count] counts only genuine optimizer runs.  Builds its own
    fallback table unless [recover] is supplied.
    @raise Invalid_argument on a non-positive [epoch_s]. *)
