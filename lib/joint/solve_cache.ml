open Es_edge
open Es_alloc

(* Keyed memoization of Optimizer.solve.  The key fingerprints everything
   the solver's output depends on — cluster structure, the rate vector
   (quantized to [rate_grain]) and the optimizer config except [jobs]
   (decisions are bit-identical for every jobs value, so domain count must
   not split the cache).  Entries are held in a mutex-protected bounded LRU
   (same domain-safety posture as Candidate.cache): the store is shared by
   parallel consumers such as Recover.precompute's fan-out. *)

type entry = { output : Optimizer.output; mutable last_use : int }

type t = {
  capacity : int;
  rate_grain : float;
  table : (string, entry) Hashtbl.t;
  lock : Mutex.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  obs_hits : Es_obs.Metric.counter option;
  obs_misses : Es_obs.Metric.counter option;
  obs_evictions : Es_obs.Metric.counter option;
}

type stats = { hits : int; misses : int; evictions : int; entries : int }

let default_capacity = 64
let default_rate_grain = 1e-6

let create ?(capacity = default_capacity) ?(rate_grain = default_rate_grain) ?metrics () =
  if capacity <= 0 then invalid_arg "Solve_cache.create: non-positive capacity";
  if rate_grain < 0.0 then invalid_arg "Solve_cache.create: negative rate_grain";
  let c name = Option.map (fun reg -> Es_obs.Metric.counter reg name) metrics in
  {
    capacity;
    rate_grain;
    table = Hashtbl.create 32;
    lock = Mutex.create ();
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    obs_hits = c "solve_cache/hits";
    obs_misses = c "solve_cache/misses";
    obs_evictions = c "solve_cache/evictions";
  }

let capacity t = t.capacity
let rate_grain t = t.rate_grain

let allocator_tag = function
  | Policy.Minmax_alloc -> "minmax"
  | Policy.Sum_sqrt -> "sum_sqrt"
  | Policy.Equal -> "equal"
  | Policy.Proportional -> "proportional"

let fingerprint t ~config cluster =
  let h = Es_util.Fnv.create () in
  Es_util.Fnv.add_string h (Cluster.fingerprint ~rate_grain:t.rate_grain cluster);
  List.iter (Es_util.Fnv.add_float h) config.Optimizer.widths;
  Es_util.Fnv.add_int h (List.length config.Optimizer.widths);
  List.iter
    (fun p -> Es_util.Fnv.add_string h (Es_surgery.Precision.name p))
    config.Optimizer.precisions;
  Es_util.Fnv.add_int h config.Optimizer.max_iters;
  Es_util.Fnv.add_string h (allocator_tag config.Optimizer.allocator);
  Es_util.Fnv.add_bool h config.Optimizer.reassign;
  Es_util.Fnv.add_int h config.Optimizer.local_search_passes;
  Es_util.Fnv.add_int h config.Optimizer.seed;
  Es_util.Fnv.add_int h (Option.value config.Optimizer.max_candidates ~default:(-1));
  Es_util.Fnv.add_bool h config.Optimizer.multi_start;
  (* config.jobs deliberately excluded: output is jobs-invariant. *)
  Es_util.Fnv.to_hex h

let bump c = Option.iter Es_obs.Metric.inc c

let find t key =
  Mutex.lock t.lock;
  let r =
    match Hashtbl.find_opt t.table key with
    | Some e ->
        t.tick <- t.tick + 1;
        e.last_use <- t.tick;
        t.hits <- t.hits + 1;
        Some e.output
    | None ->
        t.misses <- t.misses + 1;
        None
  in
  Mutex.unlock t.lock;
  (match r with Some _ -> bump t.obs_hits | None -> bump t.obs_misses);
  r

let store t key output =
  Mutex.lock t.lock;
  let evicted = ref 0 in
  if not (Hashtbl.mem t.table key) then begin
    while Hashtbl.length t.table >= t.capacity do
      (* O(n) LRU scan: capacities are tens of entries, eviction is rare. *)
      let victim = ref None in
      (* Min over last_use ticks, which are unique, so the victim is the
         same whatever order the table yields entries.  es_lint: sorted *)
      Hashtbl.iter
        (fun k e ->
          match !victim with
          | Some (_, lu) when lu <= e.last_use -> ()
          | _ -> victim := Some (k, e.last_use))
        t.table;
      match !victim with
      | Some (k, _) ->
          Hashtbl.remove t.table k;
          t.evictions <- t.evictions + 1;
          incr evicted
      | None -> assert false (* table non-empty inside the loop *)
    done;
    t.tick <- t.tick + 1;
    Hashtbl.replace t.table key { output; last_use = t.tick }
  end;
  Mutex.unlock t.lock;
  for _ = 1 to !evicted do
    bump t.obs_evictions
  done

let solve t ?(config = Optimizer.default_config) ?metrics ?spans ?warm_start cluster =
  let key = fingerprint t ~config cluster in
  match find t key with
  | Some out -> out
  | None ->
      let out = Optimizer.solve ~config ?metrics ?spans ?warm_start cluster in
      store t key out;
      out

let stats t =
  Mutex.lock t.lock;
  let s =
    {
      hits = t.hits;
      misses = t.misses;
      evictions = t.evictions;
      entries = Hashtbl.length t.table;
    }
  in
  Mutex.unlock t.lock;
  s

let clear t =
  Mutex.lock t.lock;
  Hashtbl.reset t.table;
  Mutex.unlock t.lock
