open Es_edge
open Es_surgery

type config = {
  iterations : int;
  initial_temp : float;
  cooling : float;
  seed : int;
  widths : float list;
  precisions : Precision.t list;
  restarts : int;
  jobs : int;
}

let default_config =
  {
    iterations = 2000;
    initial_temp = 1.0;
    cooling = 0.995;
    seed = 17;
    widths = Candidate.default_widths;
    precisions = Candidate.default_precisions;
    restarts = 1;
    jobs = 0;
  }

type output = {
  decisions : Decision.t array;
  objective : float;
  evaluated : int;
  accepted : int;
  solve_time_s : float;
}

(* One annealing trajectory over pre-built candidate pools.  All randomness
   comes from [rng], so a trajectory is fully determined by its stream —
   which is what lets restarts run on any number of domains with
   bit-identical results: the streams are split off before the fan-out. *)
let anneal_one ~config ~restart ~rng ~pools ?metrics ?spans cluster =
  let nd = Cluster.n_devices cluster and ns = Cluster.n_servers cluster in
  let tracer =
    match spans with
    | None -> Es_obs.Span.null
    | Some sink -> Es_obs.Span.tracer ~sink ~clock:Es_obs.Obs.wall_clock ()
  in
  let root = Es_obs.Span.start tracer ~attrs:[ ("restart", Es_obs.Json.Int restart) ] "annealing/solve" in
  let obj_histo =
    Option.map (fun reg -> Es_obs.Metric.histogram reg "annealing/accepted_objective") metrics
  in
  (* State: plan index + server per device.  Start all-local (stable). *)
  let local_index pool =
    let best = ref 0 and best_flops = ref infinity in
    Array.iteri
      (fun i (p : Plan.t) ->
        if Plan.is_device_only p && Plan.dev_flops p < !best_flops then begin
          best := i;
          best_flops := Plan.dev_flops p
        end)
      pool;
    !best
  in
  let plan_idx = Array.mapi (fun i _ -> local_index pools.(i)) pools in
  let assignment = Array.make nd 0 in
  let evaluated = ref 0 and accepted = ref 0 in
  let score () =
    incr evaluated;
    let plans = Array.mapi (fun i idx -> pools.(i).(idx)) plan_idx in
    match Optimizer.best_allocation cluster ~assignment ~plans with
    | Some ds ->
        (* Queueing-unstable states stay comparable (the initial all-local
           state can be unstable on very weak devices) but are penalized
           out of any feasible region. *)
        let penalty =
          if Array.for_all (Latency.device_stable cluster) ds then 0.0 else 50.0
        in
        Some (Objective.of_decisions cluster ds +. penalty, ds)
    | None -> None
  in
  let current = ref (match score () with Some s -> s | None -> assert false) in
  let best = ref !current in
  let temp = ref config.initial_temp in
  let checkpoint_every = Stdlib.max 1 (config.iterations / 64) in
  for _ = 1 to config.iterations do
    let device = Es_util.Prng.int rng nd in
    let mutate_plan = ns <= 1 || Es_util.Prng.bool rng in
    let saved_plan = plan_idx.(device) and saved_srv = assignment.(device) in
    if mutate_plan then plan_idx.(device) <- Es_util.Prng.int rng (Array.length pools.(device))
    else assignment.(device) <- Es_util.Prng.int rng ns;
    (match score () with
    | None ->
        plan_idx.(device) <- saved_plan;
        assignment.(device) <- saved_srv
    | Some ((obj, _) as state) ->
        let cur_obj = fst !current in
        let accept =
          obj <= cur_obj
          || Es_util.Prng.float rng 1.0 < exp ((cur_obj -. obj) /. Float.max !temp 1e-9)
        in
        if accept then begin
          incr accepted;
          (match obj_histo with Some h -> Es_obs.Histogram.observe h obj | None -> ());
          current := state;
          if obj < fst !best then best := state
        end
        else begin
          plan_idx.(device) <- saved_plan;
          assignment.(device) <- saved_srv
        end);
    temp := !temp *. config.cooling;
    (* Checkpoint spans sample the cooling schedule: temperature, current
       and best objective, and the running acceptance rate. *)
    if Es_obs.Span.enabled tracer && !evaluated mod checkpoint_every = 0 then begin
      let sp = Es_obs.Span.start tracer ~parent:root "annealing/checkpoint" in
      Es_obs.Span.finish tracer
        ~attrs:
          [
            ("evaluated", Es_obs.Json.Int !evaluated);
            ("accepted", Es_obs.Json.Int !accepted);
            ("temperature", Es_obs.Json.Float !temp);
            ("objective", Es_obs.Json.Float (fst !current));
            ("best_objective", Es_obs.Json.Float (fst !best));
          ]
        sp
    end
  done;
  let obj, ds = !best in
  (match metrics with
  | None -> ()
  | Some reg ->
      Es_obs.Metric.inc ~by:!evaluated (Es_obs.Metric.counter reg "annealing/evaluated");
      Es_obs.Metric.inc ~by:!accepted (Es_obs.Metric.counter reg "annealing/accepted");
      Es_obs.Metric.inc
        ~by:(!evaluated - !accepted)
        (Es_obs.Metric.counter reg "annealing/rejected"));
  Es_obs.Span.finish tracer
    ~attrs:
      [
        ("objective", Es_obs.Json.Float obj);
        ("evaluated", Es_obs.Json.Int !evaluated);
        ("accepted", Es_obs.Json.Int !accepted);
      ]
    root;
  (obj, ds, !evaluated, !accepted, !temp)

let solve ?(config = default_config) ?metrics ?spans cluster =
  let t0 = Es_obs.Obs.wall_clock () in
  let nd = Cluster.n_devices cluster in
  if nd = 0 then invalid_arg "Annealing.solve: empty cluster";
  (* Per-device candidate pools, accuracy-filtered like the main optimizer;
     built once and shared read-only across restarts. *)
  let pools =
    Array.init nd (fun i ->
        let dev = cluster.Cluster.devices.(i) in
        let all =
          Candidate.pareto_candidates ~widths:config.widths ~precisions:config.precisions
            dev.Cluster.model
        in
        let ok =
          List.filter
            (fun (p : Plan.t) -> p.Plan.accuracy >= dev.Cluster.accuracy_floor -. 1e-9)
            all
        in
        Array.of_list (if ok = [] then all else ok))
  in
  let restarts = Stdlib.max 1 config.restarts in
  (* A single restart keeps the historical stream (create seed); with more,
     every restart gets an independent stream split off a base generator
     before the fan-out, so the result is the same at any [jobs]. *)
  let streams =
    if restarts = 1 then [ (0, Es_util.Prng.create config.seed) ]
    else begin
      let base = Es_util.Prng.create config.seed in
      List.init restarts (fun i -> (i, Es_util.Prng.split base))
    end
  in
  let spans = if restarts > 1 then Option.map Es_obs.Span.locked_sink spans else spans in
  let results =
    Es_util.Par.parallel_map ~jobs:(if restarts = 1 then 1 else config.jobs)
      (fun (restart, rng) -> anneal_one ~config ~restart ~rng ~pools ?metrics ?spans cluster)
      streams
  in
  let best_obj, best_ds, _, _, best_temp =
    match results with
    | [] -> assert false
    | r :: rest ->
        (* Strict <, so the lowest-index restart wins ties — the order a
           sequential run would have kept. *)
        List.fold_left
          (fun (bo, bd, be, ba, bt) (o, d, e, a, t) ->
            if o < bo then (o, d, e, a, t) else (bo, bd, be, ba, bt))
          r rest
  in
  let evaluated = List.fold_left (fun acc (_, _, e, _, _) -> acc + e) 0 results in
  let accepted = List.fold_left (fun acc (_, _, _, a, _) -> acc + a) 0 results in
  (match metrics with
  | None -> ()
  | Some reg ->
      Es_obs.Metric.set (Es_obs.Metric.gauge reg "annealing/objective") best_obj;
      Es_obs.Metric.set (Es_obs.Metric.gauge reg "annealing/final_temperature") best_temp);
  {
    decisions = best_ds;
    objective = best_obj;
    evaluated;
    accepted;
    solve_time_s = Es_obs.Obs.wall_clock () -. t0;
  }
