type backend = Heap | Calendar

type queue =
  | Q_heap of (unit -> unit) Es_util.Heap.t
  | Q_cal of (unit -> unit) Es_util.Calendar_queue.t

type t = {
  mutable clock : float;
  q : queue;
  mutable events_processed : int;
  mutable max_pending : int;
}

type stats = { events_processed : int; max_pending : int; pending : int }

let create ?(backend = Calendar) () =
  let q =
    match backend with
    | Heap -> Q_heap (Es_util.Heap.create ())
    | Calendar -> Q_cal (Es_util.Calendar_queue.create ())
  in
  { clock = 0.0; q; events_processed = 0; max_pending = 0 }

let now t = t.clock

let pending t =
  match t.q with
  | Q_heap h -> Es_util.Heap.length h
  | Q_cal c -> Es_util.Calendar_queue.length c

let push t time f =
  let n =
    match t.q with
    | Q_heap h ->
        Es_util.Heap.push h time f;
        Es_util.Heap.length h
    | Q_cal c ->
        Es_util.Calendar_queue.push c time f;
        Es_util.Calendar_queue.length c
  in
  if n > t.max_pending then t.max_pending <- n

let schedule t delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  push t (t.clock +. delay) f

let schedule_at t time f = push t (Float.max time t.clock) f

(* The backend dispatch is hoisted out of the drain loop: inside it each
   event is exactly one queue pop (the calendar resumes its bucket scan
   where the previous pop stopped, so a run of same-timestamp events
   drains at the head of one bucket; the heap peeks before popping), the
   clock update and the callback. *)
let run ?(until = infinity) t =
  let continue = ref true in
  (match t.q with
  | Q_cal c ->
      while !continue do
        match Es_util.Calendar_queue.pop_before c until with
        | Some (time, f) ->
            t.clock <- time;
            t.events_processed <- t.events_processed + 1;
            f ()
        | None -> continue := false
      done
  | Q_heap h ->
      while !continue do
        match Es_util.Heap.peek h with
        | Some (time, _) when time <= until ->
            let time, f = Es_util.Heap.pop_exn h in
            t.clock <- time;
            t.events_processed <- t.events_processed + 1;
            f ()
        | _ -> continue := false
      done);
  if pending t > 0 then t.clock <- until

let stats (t : t) : stats =
  { events_processed = t.events_processed; max_pending = t.max_pending; pending = pending t }
