(** Declarative fault injection for the simulator.

    A fault schedule is a time-ordered list of instantaneous state
    transitions over the cluster: servers crash and recover, device links
    black out, fade to a fraction of their rate, or a server temporarily
    straggles (every service on it slows by a factor).  {!Runner.run}
    compiles the schedule onto the engine timeline and applies each event to
    the affected stations:

    - a down server rejects new submissions and evicts its queued and
      in-service jobs (the per-request resilience policy decides whether an
      evicted request retries, falls back to local execution, or drops);
    - a link outage likewise rejects and evicts both transfer directions;
    - a degraded link or a straggling server only rescales station speeds,
      affecting subsequently started jobs.

    Schedules are plain data: scripted ({!scripted}, {!of_spec}) or drawn
    from a seeded stochastic profile ({!random}) — either way the simulation
    stays fully deterministic under its seed, and an empty schedule leaves
    the runner's behavior bit-identical to a fault-free build. *)

type event =
  | Server_down of int  (** server crashes: rejects + evicts its queues *)
  | Server_up of int  (** server restored *)
  | Link_outage of int  (** device's uplink/downlink go dark *)
  | Link_restored of int
  | Link_degraded of int * float
      (** device's effective link rate × factor; factor 1 restores.
          Factor must be finite and positive. *)
  | Straggler of int * float
      (** server's services slowed by factor (≥ 1 slows, 1 restores) *)

type t
(** A compiled, time-sorted schedule.  Events at equal times apply in their
    scripted order. *)

val empty : t
val is_empty : t -> bool

val events : t -> (float * event) list
(** Time-sorted [(time, event)] pairs. *)

val scripted : (float * event) list -> t
(** Sorts (stably) by time.
    @raise Invalid_argument on negative/non-finite times or non-positive /
    non-finite factors. *)

(* Duration sugar: each helper emits the begin event and its paired end. *)

val crash : at:float -> ?for_s:float -> int -> (float * event) list
(** Server down at [at]; with [for_s], back up at [at +. for_s]. *)

val outage : at:float -> for_s:float -> int -> (float * event) list
val degrade : at:float -> for_s:float -> factor:float -> int -> (float * event) list
val straggle : at:float -> for_s:float -> factor:float -> int -> (float * event) list

val random :
  seed:int ->
  duration_s:float ->
  n_servers:int ->
  n_devices:int ->
  ?server_mtbf_s:float ->
  ?server_mttr_s:float ->
  ?outage_rate:float ->
  ?outage_mean_s:float ->
  ?straggler_rate:float ->
  ?straggler_factor:float ->
  ?straggler_mean_s:float ->
  unit ->
  t
(** Seeded stochastic schedule over [0, duration_s): per-server
    crash/repair renewal processes (exponential up-times with mean
    [server_mtbf_s], repairs with mean [server_mttr_s]; default: no
    crashes), per-device Poisson link outages ([outage_rate] per second,
    exponential [outage_mean_s] durations; default none) and per-server
    Poisson straggler episodes.  Identical inputs give identical
    schedules. *)

val validate : n_devices:int -> n_servers:int -> t -> (unit, string) result
(** Every server/device index in range. *)

val down_at : t -> time:float -> int list
(** Servers down at [time] (events at exactly [time] included), sorted. *)

val down_intervals : t -> horizon_s:float -> (int * float * float) list
(** Per-server down intervals [(server, from, until)] clipped to
    [0, horizon_s]; a crash that is never repaired extends to the horizon. *)

val spec_syntax : string
(** One-line grammar summary for CLI help/errors. *)

val of_spec : string -> ((float * event) list, string) result
(** Parse a comma/semicolon-separated scripted spec.  Tokens:
    [down:S\@T], [up:S\@T], [down:S\@T+DUR], [outage:D\@T+DUR],
    [degrade:D:F\@T+DUR], [straggle:S:F\@T+DUR] — times/durations in
    seconds, [S]/[D] server/device indices, [F] a positive factor. *)

val of_spec_or_file : string -> (t, string) result
(** If the argument names a readable file, parse one token per line
    (blank lines and [#] comments ignored); otherwise parse it as an
    inline spec. *)

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
