(** Overload-protection policy for the serving runner.

    Four independently switchable mechanisms, all off by default so the
    fault-free golden run stays byte-identical, all driven purely by
    simulated time with zero extra RNG draws:

    - {b deadline-aware admission}: shed a request at arrival when the
      backlog-based completion estimate already exceeds its latency budget
      ([timeout_factor ×] deadline under a resilience policy, the bare
      deadline otherwise);
    - {b per-server circuit breakers}: a rolling failure-rate window trips
      the breaker; while open, new offloads are rerouted to the local plan
      (or shed), and half-open probes re-close it after a cooldown;
    - {b brownout}: a backlog-watermark controller that swaps incoming
      devices onto cheaper pre-computed plans under pressure and restores
      the optimal plans once the backlog drains (hysteresis between the
      two watermarks);
    - {b rate limiting}: a per-server token bucket
      ({!Es_alloc.Admission.Token_bucket}) refilled at the server's
      capacity-derived service rate.

    Requests refused by any mechanism end in the exactly-once [shed]
    outcome, extending the conservation law to
    [generated = completed + dropped + timed_out + shed]
    (degraded completions remain a subset of [completed]). *)

type admission = {
  slack : float;
      (** shed when the completion estimate exceeds [slack ×] the latency
          budget; > 1 sheds later (more optimistic), < 1 sheds earlier *)
}

val default_admission : admission
(** [slack = 1.0]. *)

type breaker_cfg = {
  window : int;  (** rolling outcome window per server *)
  failure_rate : float;  (** trip at this failure fraction, in (0, 1] *)
  min_samples : int;  (** no trip before this many outcomes are in the window *)
  cooldown_s : float;  (** open → half-open after this long *)
  half_open_probes : int;  (** consecutive probe successes required to re-close *)
  shed_on_open : bool;
      (** [true] sheds requests while open; [false] (default) reroutes them
          to the device's local plan *)
}

val default_breaker : breaker_cfg
(** window 32, trip at 50% failures (min 8 samples), 5 s cooldown, 3
    probes, reroute-local. *)

type brownout_mode =
  | Local_only  (** swap to the fastest device-only plan (server bypassed) *)
  | Min_server
      (** keep offloading but swap to the Pareto plan with the least server
          work (falls back to [Local_only] for devices with no offloading
          candidate) *)

type brownout_cfg = {
  high_watermark : int;  (** per-server queued jobs that engage brownout *)
  low_watermark : int;  (** backlog at or below this restores optimal plans *)
  check_every_s : float;  (** controller sampling period (simulated time) *)
  mode : brownout_mode;
}

val default_brownout : brownout_cfg
(** engage at 32 queued jobs, release at 8, sampled every 0.5 s, local-only
    swaps. *)

type rate_limit = {
  rate_per_server : float;
      (** token refill rate in requests/s per server; 0 derives the rate
          from the server's aggregate granted service capacity (re-derived
          on every reconfiguration and straggler fault, making the limiter
          utilization-aware) *)
  burst : float;  (** bucket depth in tokens *)
}

val default_rate_limit : rate_limit
(** capacity-derived rate, burst 20. *)

type policy = {
  admission : admission option;
  breaker : breaker_cfg option;
  brownout : brownout_cfg option;
  rate_limit : rate_limit option;
}

val off : policy
(** All four mechanisms disabled — the default; {!Runner.run} under [off]
    is bit-identical to a build without overload protection. *)

val is_off : policy -> bool

val validate : policy -> unit
(** @raise Invalid_argument on out-of-range parameters (non-positive
    slack, failure rate outside (0,1], inverted watermarks, …). *)

(** {2 Degraded-plan selection}

    The local-decision machinery shared with [Es_joint.Recover]: per
    device, the fastest device-only Pareto plan meeting its accuracy
    floor, or failing that the fastest device-only plan outright. *)

val local_plan : Es_edge.Cluster.device -> Es_surgery.Plan.t

val local_decision : Es_edge.Cluster.device -> Es_edge.Decision.t
(** Device-only decision on {!local_plan} (placement fields unused). *)

val local_decisions : Es_edge.Cluster.t -> Es_edge.Decision.t array

val min_server_plan : Es_edge.Cluster.device -> Es_surgery.Plan.t option
(** The offloading Pareto plan with the least server work (floor-meeting
    plans preferred); [None] when every candidate is device-only. *)

(** {2 Circuit breaker}

    A deterministic per-server state machine over simulated time:
    [Closed] → (failure rate over the rolling window ≥ threshold) → [Open]
    → (cooldown elapsed) → [Half_open] → (probe successes) → [Closed], or
    (probe failure) → [Open] again. *)

module Breaker : sig
  type state = Closed | Half_open | Open

  type t

  val create : ?on_transition:(state -> unit) -> breaker_cfg -> t
  (** [on_transition] fires on every state change (gauge exports). *)

  val state : t -> state

  val opens : t -> int
  (** Times the breaker has tripped. *)

  val state_code : state -> int
  (** Gauge encoding: Closed 0, Half_open 1, Open 2. *)

  val allow : t -> now:float -> bool
  (** May this request proceed to the server?  [Closed]: always.  [Open]:
      false until the cooldown elapses, at which point the breaker moves to
      [Half_open] and admits the first probe.  [Half_open]: true while
      fewer than [half_open_probes] probes are in flight. *)

  val record : t -> now:float -> ok:bool -> unit
  (** Report an attempt outcome (server-stage completion, failure, or
      timeout).  Ignored while [Open]; in [Half_open] a failure re-opens
      immediately and enough successes re-close. *)
end
