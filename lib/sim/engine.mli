(** Discrete-event simulation core: a clock and a time-ordered event list.

    Events scheduled for the same instant fire in scheduling order (both
    queue backends are stabilized with sequence numbers), so runs are fully
    deterministic — and identical across backends, a property the test
    suite pins by running the same schedules on both. *)

type t

type backend =
  | Heap  (** binary heap — O(log n) per op; kept as the reference oracle *)
  | Calendar
      (** calendar queue ({!Es_util.Calendar_queue}) — O(1) amortized per
          op, the default; the win over the heap grows with the pending
          population (pre-scheduled arrival traces, heavy traffic) *)

val create : ?backend:backend -> unit -> t
(** [backend] defaults to [Calendar]. *)

val now : t -> float

val schedule : t -> float -> (unit -> unit) -> unit
(** [schedule t delay f] fires [f] at [now t +. delay].
    @raise Invalid_argument on negative delay. *)

val schedule_at : t -> float -> (unit -> unit) -> unit
(** Absolute-time variant; clamps to the current time if in the past.
    @raise Invalid_argument on a NaN or infinite time (the calendar
    backend buckets by finite timestamps). *)

val run : ?until:float -> t -> unit
(** Drain events until the list is empty or the clock passes [until]
    (events scheduled beyond the horizon stay unexecuted but the clock stops
    at [until]).  One queue operation per event: no separate peek-then-pop
    rescan per timestamp. *)

val pending : t -> int

type stats = {
  events_processed : int;  (** events popped and fired so far *)
  max_pending : int;  (** high-water mark of the future-event list *)
  pending : int;  (** events still queued *)
}

val stats : t -> stats
(** Cheap counters for throughput accounting (events/s) and obs gauges;
    reading them does not disturb the queue. *)
