type device_stats = {
  generated : int;
  completed : int;
  degraded : int;
  dropped : int;
  timed_out : int;
  shed : int;
  deadline_hits : int;
  latency : Es_util.Stats.t;
  samples : float array;
}

type report = {
  per_device : device_stats array;
  latencies : float array;
  dsr : float;
  dsr_admitted : float;
  mean_latency_s : float;
  p50_s : float;
  p95_s : float;
  p99_s : float;
  total_generated : int;
  total_completed : int;
  total_degraded : int;
  total_dropped : int;
  total_timed_out : int;
  total_shed : int;
  server_utilization : float array;
  measured_duration_s : float;
  events : (float * float) array;
  event_hits : (float * bool) array;
}

type dev_acc = {
  mutable generated : int;
  mutable completed : int;
  mutable degraded : int;
  mutable dropped : int;
  mutable timed_out : int;
  mutable shed : int;
  mutable hits : int;
  stats : Es_util.Stats.t;
  mutable rev_samples : float list;  (* exact mode only *)
}

(* One entry per resolved request, newest first (exact mode only).
   Completions carry their latency; drops and timeouts carry [nan] — the
   marker that keeps a single log where two parallel lists
   ([rev_events]/[rev_hits]) used to duplicate every completion. *)
type outcome_ev = { at : float; lat : float; hit : bool }

type collector = {
  devs : dev_acc array;
  window_start : float;
  window_end : float;
  streaming : bool;
  pooled : Es_util.Stats.t;  (* streaming: exact count/mean/sum of latencies *)
  sketch : Es_obs.Histogram.t;  (* streaming: fixed-size quantile sketch *)
  mutable rev_log : outcome_ev list;
  mutable n_logged : int;
  mutable n_completions : int;
}

let create_collector ?(streaming = false) ~n_devices ~window_start ~window_end () =
  {
    devs =
      Array.init n_devices (fun _ ->
          {
            generated = 0;
            completed = 0;
            degraded = 0;
            dropped = 0;
            timed_out = 0;
            shed = 0;
            hits = 0;
            stats = Es_util.Stats.create ();
            rev_samples = [];
          });
    window_start;
    window_end;
    streaming;
    pooled = Es_util.Stats.create ();
    sketch = Es_obs.Histogram.create ();
    rev_log = [];
    n_logged = 0;
    n_completions = 0;
  }

let in_window c t = t >= c.window_start && t <= c.window_end

let on_arrival c ~device ~now =
  if in_window c now then begin
    let d = c.devs.(device) in
    d.generated <- d.generated + 1
  end

let log_outcome c ~at ~lat ~hit =
  if not c.streaming then begin
    c.rev_log <- { at; lat; hit } :: c.rev_log;
    c.n_logged <- c.n_logged + 1;
    if not (Float.is_nan lat) then c.n_completions <- c.n_completions + 1
  end

let on_drop c ~device ~now =
  if in_window c now then begin
    let d = c.devs.(device) in
    d.dropped <- d.dropped + 1;
    log_outcome c ~at:now ~lat:nan ~hit:false
  end

let on_shed c ~device ~now =
  (* Sheds happen at arrival, so [now] doubles as the arrival time; the
     outcome joins the event_hits timeline as a miss at that instant. *)
  if in_window c now then begin
    let d = c.devs.(device) in
    d.shed <- d.shed + 1;
    log_outcome c ~at:now ~lat:nan ~hit:false
  end

let on_timeout c ~device ~arrival =
  (* Attribute to the arrival, like completions, so the window's
     conservation law (generated = completed + dropped + timed out) holds
     for requests that expire after the horizon's edge. *)
  if in_window c arrival then begin
    let d = c.devs.(device) in
    d.timed_out <- d.timed_out + 1;
    log_outcome c ~at:arrival ~lat:nan ~hit:false
  end

let on_completion c ?(degraded = false) ~device ~arrival ~now ~deadline () =
  (* Attribute the sample to the request's arrival, matching on_arrival. *)
  if in_window c arrival then begin
    let d = c.devs.(device) in
    let latency = now -. arrival in
    d.completed <- d.completed + 1;
    if degraded then d.degraded <- d.degraded + 1;
    let hit = latency <= deadline +. 1e-12 in
    if hit then d.hits <- d.hits + 1;
    Es_util.Stats.add d.stats latency;
    if c.streaming then begin
      (* O(1) per request: Welford accumulator + fixed-size histogram
         instead of sample lists. *)
      Es_util.Stats.add c.pooled latency;
      Es_obs.Histogram.observe c.sketch latency
    end
    else begin
      d.rev_samples <- latency :: d.rev_samples;
      log_outcome c ~at:now ~lat:latency ~hit
    end
  end

(* Reversed list -> array in a single backward-fill pass (the length is
   tracked by the counters, so no List.rev / List.length prewalk).
   Streaming collectors keep no sample lists, so their per-device and
   pooled raw-sample arrays are empty by construction. *)
let samples_of c d =
  let n = if c.streaming then 0 else d.completed in
  if n = 0 then [||]
  else begin
    let a = Array.make n 0.0 in
    let i = ref (n - 1) in
    List.iter
      (fun s ->
        a.(!i) <- s;
        decr i)
      d.rev_samples;
    a
  end

let finalize c ~server_busy ~duration =
  let per_device =
    Array.map
      (fun d ->
        {
          generated = d.generated;
          completed = d.completed;
          degraded = d.degraded;
          dropped = d.dropped;
          timed_out = d.timed_out;
          shed = d.shed;
          deadline_hits = d.hits;
          latency = d.stats;
          samples = samples_of c d;
        })
      c.devs
  in
  let latencies =
    Array.concat (Array.to_list (Array.map (fun d -> d.samples) per_device))
  in
  let total f = Array.fold_left (fun acc d -> acc + f d) 0 per_device in
  let total_generated = total (fun d -> d.generated) in
  let total_completed = total (fun d -> d.completed) in
  let total_degraded = total (fun d -> d.degraded) in
  let total_dropped = total (fun d -> d.dropped) in
  let total_timed_out = total (fun d -> d.timed_out) in
  let total_shed = total (fun d -> d.shed) in
  let hits = total (fun d -> d.deadline_hits) in
  let dsr =
    if total_generated = 0 then 1.0 else float_of_int hits /. float_of_int total_generated
  in
  let admitted = total_generated - total_shed in
  let dsr_admitted =
    if admitted = 0 then 1.0 else float_of_int hits /. float_of_int admitted
  in
  let mean, pct =
    if c.streaming then
      ( (if Es_util.Stats.count c.pooled = 0 then nan else Es_util.Stats.mean c.pooled),
        fun p ->
          if Es_obs.Histogram.count c.sketch = 0 then nan
          else Es_obs.Histogram.quantile c.sketch p )
    else
      ( Es_util.Stats.mean_of latencies,
        fun p ->
          if Array.length latencies = 0 then nan else Es_util.Stats.percentile latencies p )
  in
  let window = Float.max 1e-9 (Float.min c.window_end duration -. c.window_start) in
  (* Both outcome arrays are filled from one walk of the single log:
     [events] gets the completions (chronological completion order),
     [event_hits] every resolution. *)
  let events = Array.make c.n_completions (0.0, 0.0) in
  let event_hits = Array.make c.n_logged (0.0, false) in
  let i = ref (c.n_completions - 1) in
  let j = ref (c.n_logged - 1) in
  List.iter
    (fun e ->
      event_hits.(!j) <- (e.at, e.hit);
      decr j;
      if not (Float.is_nan e.lat) then begin
        events.(!i) <- (e.at, e.lat);
        decr i
      end)
    c.rev_log;
  {
    per_device;
    latencies;
    dsr;
    dsr_admitted;
    mean_latency_s = mean;
    p50_s = pct 50.0;
    p95_s = pct 95.0;
    p99_s = pct 99.0;
    total_generated;
    total_completed;
    total_degraded;
    total_dropped;
    total_timed_out;
    total_shed;
    server_utilization = Array.map (fun b -> b /. window) server_busy;
    measured_duration_s = window;
    events;
    event_hits;
  }

let pp_report fmt r =
  (* Every summary path goes through here so the human-readable report and
     the JSONL export never disagree on what they cover: totals (including
     drops), pooled quantiles, and per-server utilization. *)
  Format.fprintf fmt
    "requests: %d generated, %d completed, %d dropped | DSR %.1f%% | latency mean %.1f ms p50 \
     %.1f p95 %.1f p99 %.1f@."
    r.total_generated r.total_completed r.total_dropped (100.0 *. r.dsr)
    (1000.0 *. r.mean_latency_s) (1000.0 *. r.p50_s) (1000.0 *. r.p95_s) (1000.0 *. r.p99_s);
  (* Printed only when fault injection / resilience actually fired, so a
     fault-free run's report is byte-identical to pre-fault builds. *)
  if r.total_degraded > 0 || r.total_timed_out > 0 then
    Format.fprintf fmt "resilience: %d degraded completions, %d timed out@." r.total_degraded
      r.total_timed_out;
  if r.total_shed > 0 then
    Format.fprintf fmt "overload: %d shed | admitted DSR %.1f%%@." r.total_shed
      (100.0 *. r.dsr_admitted);
  Array.iteri
    (fun s u -> Format.fprintf fmt "  server %d: utilization %.2f@." s u)
    r.server_utilization

let report_to_json (r : report) =
  let open Es_obs.Json in
  Obj
    [
      ("kind", String "report");
      ("generated", Int r.total_generated);
      ("completed", Int r.total_completed);
      ("degraded", Int r.total_degraded);
      ("dropped", Int r.total_dropped);
      ("timed_out", Int r.total_timed_out);
      ("shed", Int r.total_shed);
      ("dsr", Float r.dsr);
      ("dsr_admitted", Float r.dsr_admitted);
      ("mean_latency_s", Float r.mean_latency_s);
      ("p50_s", Float r.p50_s);
      ("p95_s", Float r.p95_s);
      ("p99_s", Float r.p99_s);
      ("measured_duration_s", Float r.measured_duration_s);
      ( "server_utilization",
        List (Array.to_list (Array.map (fun u -> Float u) r.server_utilization)) );
      ( "per_device",
        List
          (Array.to_list
             (Array.mapi
                (fun i (d : device_stats) ->
                  Obj
                    [
                      ("device", Int i);
                      ("generated", Int d.generated);
                      ("completed", Int d.completed);
                      ("degraded", Int d.degraded);
                      ("dropped", Int d.dropped);
                      ("timed_out", Int d.timed_out);
                      ("shed", Int d.shed);
                      ("deadline_hits", Int d.deadline_hits);
                      ("mean_latency_s", Float (Es_util.Stats.mean d.latency));
                    ])
                r.per_device)) );
    ]

let record_to reg (r : report) =
  let set name v = Es_obs.Metric.set (Es_obs.Metric.gauge reg name) v in
  set "report/dsr" r.dsr;
  set "report/dsr_admitted" r.dsr_admitted;
  set "report/mean_latency_s" r.mean_latency_s;
  set "report/p50_s" r.p50_s;
  set "report/p95_s" r.p95_s;
  set "report/p99_s" r.p99_s;
  set "report/generated" (float_of_int r.total_generated);
  set "report/completed" (float_of_int r.total_completed);
  set "report/dropped" (float_of_int r.total_dropped);
  set "report/degraded" (float_of_int r.total_degraded);
  set "report/timed_out" (float_of_int r.total_timed_out);
  set "report/shed" (float_of_int r.total_shed);
  set "report/measured_duration_s" r.measured_duration_s;
  Array.iteri
    (fun s u ->
      Es_obs.Metric.set
        (Es_obs.Metric.gauge reg ~labels:[ ("server", string_of_int s) ] "report/server_utilization")
        u)
    r.server_utilization
