(** End-to-end simulation of a cluster executing a decision set.

    Each request walks: device CPU queue → (if offloading) uplink queue at
    the granted rate → server queue at the granted compute share → downlink
    of the result — all FIFO stations dedicated per device, which is exactly
    the dedicated-share semantics the allocator assumes.  Propagation delay
    (half the link RTT each way), optional per-transfer wireless fading, and
    optional log-normal compute jitter complete the model.

    With default options (no fading, no jitter) and a single in-flight
    request, the measured latency equals {!Es_edge.Latency.of_decision} —
    a property pinned by the test suite.

    {2 Faults and resilience}

    A {!Faults.t} schedule injects failures: a down server (or a link in
    outage) evicts its queued work and rejects new submissions until
    restored; degraded links and stragglers rescale station speeds.  A
    {!resilience} policy decides what a request does about it — bounded
    retries with exponential backoff from the failed phase, an optional
    per-request timeout, and an optional local fallback that re-executes
    the request on the device with the fastest device-only surgery plan
    (accuracy floors deliberately waived: a degraded answer beats a lost
    request).  Requests then end in one of five outcomes — completed,
    completed-degraded, dropped, timed-out, or shed (refused at arrival by
    an {!Overload} policy) — each traced (root-span [outcome] attribute)
    and counted ({!Metrics}, live registry counters).

    Everything stays deterministic under [seed]: fault injection draws no
    simulation randomness, and with [faults = Faults.empty] and
    [resilience = None] (the defaults) the run is bit-identical to the
    pre-fault simulator — pinned by the test suite. *)

type batching = {
  max_batch : int;
  window_s : float;
  alpha : float;  (** parallelizable fraction; see {!Batcher} *)
}

type resilience = {
  timeout_factor : float;
      (** a request times out [timeout_factor ×] its device deadline after
          arrival; 0 disables the timeout.  If a local fallback is enabled
          and not yet running, the timeout starts it instead of giving up. *)
  max_retries : int;  (** failed attempts retried before falling back/dropping *)
  backoff_base_s : float;
      (** retry [k] (1-based) waits [backoff_base_s × 2{^ k-1}] *)
  local_fallback : bool;
      (** after retries are exhausted (or on timeout), re-execute on the
          device CPU with the fastest device-only plan; completions count
          as degraded *)
}

val default_resilience : resilience
(** 3× deadline timeout, 1 retry, 50 ms base backoff, local fallback on. *)

type options = {
  duration_s : float;  (** simulated horizon (default 60) *)
  warmup_s : float;  (** samples before this are discarded (default 5) *)
  seed : int;
  fading : bool;  (** draw per-transfer link fading (default false) *)
  compute_jitter : float;  (** log-normal sigma on compute times (default 0) *)
  queue_capacity : int option;  (** per-station backlog bound; [None] = unbounded *)
  batching : batching option;
      (** [Some _] replaces the per-device dedicated-share server stations
          with one {!Batcher} per server (GPU batching semantics; compute
          shares are then ignored).  Default [None].  Faults gate admission
          to a batched server but cannot evict batched work. *)
  faults : Faults.t;  (** fault schedule (default {!Faults.empty}) *)
  resilience : resilience option;
      (** per-request retry/timeout/fallback policy (default [None]:
          requests hit by a fault are dropped, as are capacity rejections) *)
  streaming : bool;
      (** collect metrics with O(1)-per-request sketches instead of raw
          sample lists (default [false]); see
          {!Metrics.create_collector} for the accuracy contract and which
          report fields come back empty *)
  engine : Engine.backend;
      (** event-queue backend (default {!Engine.Calendar}); {!Engine.Heap}
          is the reference oracle — both produce identical runs *)
  overload : Overload.policy;
      (** overload protection: deadline-aware admission shedding, per-server
          circuit breakers, brownout plan degradation, and per-server token
          buckets (default {!Overload.off}).  Requests refused by any
          mechanism end in the exactly-once [shed] outcome, extending the
          conservation law to generated = completed + dropped + timed out +
          shed.  With the policy off the run is bit-identical to a build
          without overload protection — pinned by the test suite. *)
}

val default_options : options

val stages : string list
(** The segment names a request can traverse, in path order:
    ["device"; "uplink"; "uplink_prop"; "server"; "downlink";
    "downlink_prop"].  Span names and the [stage] label on [segment_s] /
    [requests_dropped] metrics draw from this list.  (The local-fallback
    re-execution is traced as a separate ["fallback"] span and is not a
    stage.) *)

val run :
  ?options:options ->
  ?metrics:Es_obs.Metric.registry ->
  ?spans:Es_obs.Span.sink ->
  ?arrivals:(float * int) array ->
  ?reconfigure:(float * Es_edge.Decision.t array) list ->
  ?work_scale:(device:int -> Es_util.Prng.t -> float) ->
  ?on_stats:(Engine.stats -> unit) ->
  Es_edge.Cluster.t ->
  Es_edge.Decision.t array ->
  Metrics.report
(** [run cluster decisions] simulates the cluster under the decision set.

    - [arrivals]: explicit (time, device) request trace, sorted by time;
      defaults to per-device Poisson processes at each device's rate.
    - [reconfigure]: piecewise decision changes [(t, decisions)] applied at
      time [t] — new requests use the new plans, granted rates/shares change
      for subsequently started transfers/executions (the online scheduler's
      mechanism).  At an equal timestamp, fault events apply before
      reconfigurations, which apply before arrivals.
    - [work_scale]: per-request work multiplier hook (e.g. multi-exit
      early-exit draws); applied to device and server compute.
    - [metrics]: live telemetry — counters [requests_generated] /
      [requests_completed] / [requests_completed_degraded] /
      [requests_timed_out] / [requests_shed] /
      [requests_dropped{stage}] and histograms
      [request_latency_s] / [segment_s{stage}] restricted to the
      measurement window (matching the report), [queue_depth{station}]
      gauges, plus the end-of-run [report/…] gauges via
      {!Metrics.record_to}.  With an overload policy on, also
      [overload/breaker_state{server}] and
      [overload/brownout_active{server}] gauges and an
      [overload/brownout_switches] counter.
    - [on_stats]: called once after the run drains with the engine's
      {!Engine.stats} (events processed, queue high-water mark) — the
      basis of events/s accounting.  With [metrics] set the same numbers
      also land in [engine/events_processed] / [engine/max_pending]
      gauges.
    - [spans]: per-request traces in *simulated* time — a ["request"] root
      span per request whose child segments ({!stages}) tile
      [arrival, completion] exactly, each with a [queue_s] attribute
      splitting waiting from service.  Omitting both [metrics] and [spans]
      leaves the simulator on its uninstrumented (near-zero-cost) path.

    Decision arrays (initial and every reconfiguration) are validated up
    front: non-finite or negative grants, an out-of-range server on an
    offloading plan, or an offloading plan with no bandwidth raise
    [Invalid_argument] — bad plans fail loudly instead of being clamped.

    @raise Invalid_argument on malformed decision arrays, a fault schedule
    referencing out-of-range devices/servers, or a negative/non-finite
    resilience parameter. *)
