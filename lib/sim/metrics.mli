(** Measurement collection for simulation runs. *)

type device_stats = {
  generated : int;  (** requests arriving inside the measurement window *)
  completed : int;
  degraded : int;
      (** completions served by the local-fallback path (subset of
          [completed]) *)
  dropped : int;  (** rejected at a full queue, or lost to a fault *)
  timed_out : int;  (** expired before completing (resilience timeout) *)
  shed : int;
      (** refused at arrival by overload protection (admission estimate,
          open breaker with shedding, or rate limit) — never entered a
          queue *)
  deadline_hits : int;
  latency : Es_util.Stats.t;  (** end-to-end latency of completed requests *)
  samples : float array;  (** raw latency samples, completion order *)
}

type report = {
  per_device : device_stats array;
  latencies : float array;  (** all completed-request latencies pooled *)
  dsr : float;
      (** deadline-satisfaction ratio: hits / generated — requests that
          never completed (still queued at the horizon, dropped, timed
          out, or shed) count as misses *)
  dsr_admitted : float;
      (** hits / (generated − shed): deadline satisfaction over the
          requests the system actually accepted.  Equal to [dsr] when
          nothing was shed; 1.0 when everything was. *)
  mean_latency_s : float;
  p50_s : float;
  p95_s : float;
  p99_s : float;
  total_generated : int;
  total_completed : int;
  total_degraded : int;
  total_dropped : int;
  total_timed_out : int;
  total_shed : int;
  server_utilization : float array;  (** busy fraction per server *)
  measured_duration_s : float;
  events : (float * float) array;
      (** pooled (completion time, latency) pairs in completion order, for
          timeline plots *)
  event_hits : (float * bool) array;
      (** pooled (resolution time, deadline hit?) pairs over every request
          outcome — completions at completion time, drops at drop time,
          timeouts and sheds at arrival time — so recovery-timeline plots
          see the damage window, not just the surviving completions *)
}

type collector

val create_collector :
  ?streaming:bool -> n_devices:int -> window_start:float -> window_end:float -> unit -> collector
(** [streaming] (default [false]) selects O(1)-per-request accumulation:
    latency samples feed a pooled Welford accumulator plus a fixed-size
    log-bucketed histogram sketch ({!Es_obs.Histogram}, default geometry)
    instead of per-request lists, so memory stays constant however many
    requests the run generates.

    Tolerance contract of a streaming report versus the exact collector on
    the same run — pinned by the test suite:
    - all counts ([total_*], per-device counters, [deadline_hits]) and
      therefore [dsr] are {b exactly} equal;
    - [mean_latency_s] agrees to float rounding (Welford vs. pooled-array
      summation order);
    - [p50_s]/[p95_s]/[p99_s] agree within one sketch bucket, i.e. a
      relative error bounded by the bucket growth factor (≈ ±4.5%);
    - the raw-sample fields are empty ([samples], [latencies], [events],
      [event_hits] are [[||]]) — consumers that need them (plot exports)
      must use the exact collector. *)

val on_arrival : collector -> device:int -> now:float -> unit
val on_drop : collector -> device:int -> now:float -> unit

val on_shed : collector -> device:int -> now:float -> unit
(** A request refused at arrival by overload protection.  [now] is its
    arrival time, so the conservation law extends to
    generated = completed + dropped + timed out + shed. *)

val on_timeout : collector -> device:int -> arrival:float -> unit
(** A request that expired without completing; attributed to its arrival
    time (like completions) so in-window conservation holds:
    generated = completed + dropped + timed out once the run drains. *)

val on_completion :
  collector ->
  ?degraded:bool ->
  device:int ->
  arrival:float ->
  now:float ->
  deadline:float ->
  unit ->
  unit
(** [degraded] marks a completion served by the local-fallback path after
    the offload plan failed; it still counts toward [completed] (and
    toward [deadline_hits] if it met the deadline). *)

val finalize :
  collector -> server_busy:float array -> duration:float -> report
(** [server_busy] is cumulative busy seconds per server over the whole run;
    utilization is normalized by the measurement window. *)

val pp_report : Format.formatter -> report -> unit
(** Totals (generated/completed/dropped), DSR, pooled latency quantiles,
    then one line of utilization per server — the same fields, same
    grouping, as the JSONL export.  A resilience line (degraded/timed-out
    counts) and an overload line (shed count, admitted DSR) appear only
    when those counts are non-zero, so fault-free unprotected output is
    unchanged from pre-fault builds. *)

val report_to_json : report -> Es_obs.Json.t
(** One [kind="report"] JSON object: totals, quantiles, per-server
    utilization and a per-device summary array.  Exactly the fields
    {!pp_report} prints (plus per-device detail), for machine consumers. *)

val record_to : Es_obs.Metric.registry -> report -> unit
(** Mirror the report's summary into gauges ([report/dsr],
    [report/p99_s], [report/server_utilization{server=…}], …) so a metrics
    snapshot contains the end-of-run view alongside live counters. *)
