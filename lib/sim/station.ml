type job = { work : float; on_start : (unit -> unit) option; k : unit -> unit }

type t = {
  engine : Engine.t;
  name : string;
  mutable rate : float;
  capacity : int;
  waiting : job Queue.t;
  mutable in_service : bool;
  mutable busy : float;
  mutable n_completed : int;
  mutable n_dropped : int;
}

let create engine ?(capacity = max_int) ?(name = "station") ~speed () =
  if speed <= 0.0 then invalid_arg "Station.create: non-positive speed";
  {
    engine;
    name;
    rate = speed;
    capacity;
    waiting = Queue.create ();
    in_service = false;
    busy = 0.0;
    n_completed = 0;
    n_dropped = 0;
  }

let queue_length t = Queue.length t.waiting + if t.in_service then 1 else 0

let rec start_next t =
  match Queue.take_opt t.waiting with
  | None -> t.in_service <- false
  | Some job ->
      t.in_service <- true;
      (match job.on_start with Some f -> f () | None -> ());
      let service = job.work /. t.rate in
      t.busy <- t.busy +. service;
      Engine.schedule t.engine service (fun () ->
          t.n_completed <- t.n_completed + 1;
          job.k ();
          start_next t)

let submit t ?on_start ~work k =
  if work < 0.0 then invalid_arg "Station.submit: negative work";
  if queue_length t >= t.capacity then begin
    t.n_dropped <- t.n_dropped + 1;
    false
  end
  else begin
    Queue.add { work; on_start; k } t.waiting;
    if not t.in_service then start_next t;
    true
  end

let set_speed t speed =
  if speed <= 0.0 then invalid_arg "Station.set_speed: non-positive speed";
  t.rate <- speed

let speed t = t.rate
let name t = t.name
let busy_time t = t.busy
let completed t = t.n_completed
let dropped t = t.n_dropped
