type job = {
  work : float;
  on_start : (unit -> unit) option;
  on_evict : (unit -> unit) option;
  k : unit -> unit;
}

type t = {
  engine : Engine.t;
  name : string;
  mutable rate : float;
  capacity : int;
  waiting : job Queue.t;
  mutable in_service : job option;
  mutable service_end : float;
  mutable epoch : int;
      (* bumped by [flush] so the completion closure of an evicted
         in-service job can recognize itself as stale and do nothing *)
  mutable queued_work : float;
      (* total work units of the waiting jobs (excludes the job in
         service), maintained incrementally for O(1) backlog estimates *)
  mutable busy : float;
  mutable n_completed : int;
  mutable n_dropped : int;
  mutable n_evicted : int;
}

let create engine ?(capacity = max_int) ?(name = "station") ~speed () =
  if speed <= 0.0 then invalid_arg "Station.create: non-positive speed";
  {
    engine;
    name;
    rate = speed;
    capacity;
    waiting = Queue.create ();
    in_service = None;
    service_end = 0.0;
    epoch = 0;
    queued_work = 0.0;
    busy = 0.0;
    n_completed = 0;
    n_dropped = 0;
    n_evicted = 0;
  }

let queue_length t = Queue.length t.waiting + if t.in_service <> None then 1 else 0

let rec start_next t =
  match Queue.take_opt t.waiting with
  | None -> t.in_service <- None
  | Some job ->
      t.in_service <- Some job;
      t.queued_work <- Float.max 0.0 (t.queued_work -. job.work);
      (match job.on_start with Some f -> f () | None -> ());
      let service = job.work /. t.rate in
      t.busy <- t.busy +. service;
      t.service_end <- Engine.now t.engine +. service;
      let epoch = t.epoch in
      Engine.schedule t.engine service (fun () ->
          if t.epoch = epoch then begin
            t.n_completed <- t.n_completed + 1;
            job.k ();
            start_next t
          end)

let submit t ?on_start ?on_evict ~work k =
  if work < 0.0 then invalid_arg "Station.submit: negative work";
  if queue_length t >= t.capacity then begin
    t.n_dropped <- t.n_dropped + 1;
    false
  end
  else begin
    Queue.add { work; on_start; on_evict; k } t.waiting;
    t.queued_work <- t.queued_work +. work;
    if t.in_service = None then start_next t;
    true
  end

let flush t =
  let evicted = ref [] in
  (match t.in_service with
  | Some job ->
      (* refund the unserved remainder of the busy-time we booked upfront *)
      let remaining = t.service_end -. Engine.now t.engine in
      if remaining > 0.0 then t.busy <- t.busy -. remaining;
      t.epoch <- t.epoch + 1;
      t.in_service <- None;
      evicted := [ job ]
  | None -> ());
  Queue.iter (fun job -> evicted := job :: !evicted) t.waiting;
  Queue.clear t.waiting;
  t.queued_work <- 0.0;
  let jobs = List.rev !evicted in
  let n = List.length jobs in
  t.n_evicted <- t.n_evicted + n;
  (* state is already reset, so eviction callbacks may safely resubmit *)
  List.iter (fun job -> match job.on_evict with Some f -> f () | None -> ()) jobs;
  n

let backlog_eta t =
  let in_service =
    match t.in_service with
    | Some _ -> Float.max 0.0 (t.service_end -. Engine.now t.engine)
    | None -> 0.0
  in
  in_service +. (t.queued_work /. t.rate)

let eta t ~work = backlog_eta t +. (work /. t.rate)

let set_speed t speed =
  if speed <= 0.0 then invalid_arg "Station.set_speed: non-positive speed";
  t.rate <- speed

let speed t = t.rate
let name t = t.name
let busy_time t = t.busy
let completed t = t.n_completed
let dropped t = t.n_dropped
let evicted t = t.n_evicted
