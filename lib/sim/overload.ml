open Es_edge

type admission = { slack : float }

let default_admission = { slack = 1.0 }

type breaker_cfg = {
  window : int;
  failure_rate : float;
  min_samples : int;
  cooldown_s : float;
  half_open_probes : int;
  shed_on_open : bool;
}

let default_breaker =
  {
    window = 32;
    failure_rate = 0.5;
    min_samples = 8;
    cooldown_s = 5.0;
    half_open_probes = 3;
    shed_on_open = false;
  }

type brownout_mode = Local_only | Min_server

type brownout_cfg = {
  high_watermark : int;
  low_watermark : int;
  check_every_s : float;
  mode : brownout_mode;
}

let default_brownout =
  { high_watermark = 32; low_watermark = 8; check_every_s = 0.5; mode = Local_only }

type rate_limit = { rate_per_server : float; burst : float }

let default_rate_limit = { rate_per_server = 0.0; burst = 20.0 }

type policy = {
  admission : admission option;
  breaker : breaker_cfg option;
  brownout : brownout_cfg option;
  rate_limit : rate_limit option;
}

let off = { admission = None; breaker = None; brownout = None; rate_limit = None }

let is_off p =
  Option.is_none p.admission && Option.is_none p.breaker && Option.is_none p.brownout
  && Option.is_none p.rate_limit

let validate p =
  let bad fmt = Printf.ksprintf invalid_arg fmt in
  (match p.admission with
  | Some a ->
      if not (Float.is_finite a.slack) || a.slack <= 0.0 then
        bad "Overload: admission slack must be finite and > 0 (got %g)" a.slack
  | None -> ());
  (match p.breaker with
  | Some b ->
      if b.window < 1 then bad "Overload: breaker window must be >= 1";
      if not (Float.is_finite b.failure_rate) || b.failure_rate <= 0.0 || b.failure_rate > 1.0
      then bad "Overload: breaker failure_rate must be in (0, 1]";
      if b.min_samples < 1 || b.min_samples > b.window then
        bad "Overload: breaker min_samples must be in [1, window]";
      if not (Float.is_finite b.cooldown_s) || b.cooldown_s < 0.0 then
        bad "Overload: breaker cooldown_s must be finite and >= 0";
      if b.half_open_probes < 1 then bad "Overload: breaker half_open_probes must be >= 1"
  | None -> ());
  (match p.brownout with
  | Some b ->
      if b.high_watermark < 1 then bad "Overload: brownout high watermark must be >= 1";
      if b.low_watermark < 0 || b.low_watermark >= b.high_watermark then
        bad "Overload: brownout low watermark must be in [0, high)";
      if not (Float.is_finite b.check_every_s) || b.check_every_s <= 0.0 then
        bad "Overload: brownout check_every_s must be finite and > 0"
  | None -> ());
  match p.rate_limit with
  | Some r ->
      if not (Float.is_finite r.rate_per_server) || r.rate_per_server < 0.0 then
        bad "Overload: rate_per_server must be finite and >= 0 (0 = capacity-derived)";
      if not (Float.is_finite r.burst) || r.burst < 1.0 then
        bad "Overload: rate-limit burst must be finite and >= 1"
  | None -> ()

(* ---------- degraded-plan selection (shared with Es_joint.Recover) ---------- *)

let fastest_by perf plans =
  match plans with
  | [] -> None
  | p :: rest ->
      Some
        (List.fold_left
           (fun acc q ->
             if Es_surgery.Plan.device_time perf q < Es_surgery.Plan.device_time perf acc then q
             else acc)
           p rest)

let local_plan (dev : Cluster.device) =
  let perf = dev.Cluster.proc.Processor.perf in
  let locals =
    List.filter Es_surgery.Plan.is_device_only
      (Es_surgery.Candidate.pareto_candidates dev.Cluster.model)
  in
  let meeting_floor =
    List.filter
      (fun p -> p.Es_surgery.Plan.accuracy >= dev.Cluster.accuracy_floor -. 1e-9)
      locals
  in
  match fastest_by perf meeting_floor with
  | Some p -> p
  | None -> (
      match fastest_by perf locals with
      | Some p -> p
      | None -> Es_surgery.Plan.device_only dev.Cluster.model)

let local_decision (dev : Cluster.device) =
  Decision.make ~device:dev.Cluster.dev_id ~server:0 ~plan:(local_plan dev) ()

let local_decisions cluster = Array.map local_decision cluster.Cluster.devices

(* The lowest-server-load offloading plan on the Pareto frontier: the
   brownout swap that keeps the device remote but minimizes what it asks of
   the congested server.  Plans meeting the device's accuracy floor win over
   plans that merely offload less. *)
let min_server_plan (dev : Cluster.device) =
  let offloading =
    List.filter
      (fun p -> not (Es_surgery.Plan.is_device_only p))
      (Es_surgery.Candidate.pareto_candidates dev.Cluster.model)
  in
  let lightest plans =
    match plans with
    | [] -> None
    | p :: rest ->
        Some
          (List.fold_left
             (fun acc q ->
               if Es_surgery.Plan.srv_flops q < Es_surgery.Plan.srv_flops acc then q else acc)
             p rest)
  in
  let meeting_floor =
    List.filter
      (fun p -> p.Es_surgery.Plan.accuracy >= dev.Cluster.accuracy_floor -. 1e-9)
      offloading
  in
  match lightest meeting_floor with Some p -> Some p | None -> lightest offloading

(* ---------- circuit breaker ---------- *)

module Breaker = struct
  type state = Closed | Half_open | Open

  type t = {
    cfg : breaker_cfg;
    ring : Bytes.t;  (* 1 = failure, ring buffer of the last [window] outcomes *)
    mutable n : int;
    mutable head : int;
    mutable failures : int;
    mutable state : state;
    mutable opened_at : float;
    mutable probes_inflight : int;
    mutable probe_successes : int;
    mutable opens : int;
    on_transition : state -> unit;
  }

  let create ?(on_transition = fun _ -> ()) cfg =
    {
      cfg;
      ring = Bytes.make cfg.window '\000';
      n = 0;
      head = 0;
      failures = 0;
      state = Closed;
      opened_at = 0.0;
      probes_inflight = 0;
      probe_successes = 0;
      opens = 0;
      on_transition;
    }

  let state t = t.state
  let opens t = t.opens
  let state_code = function Closed -> 0 | Half_open -> 1 | Open -> 2

  let reset_ring t =
    Bytes.fill t.ring 0 t.cfg.window '\000';
    t.n <- 0;
    t.head <- 0;
    t.failures <- 0

  let transition t s =
    t.state <- s;
    t.on_transition s

  let allow t ~now =
    match t.state with
    | Closed -> true
    | Open ->
        if now >= t.opened_at +. t.cfg.cooldown_s then begin
          transition t Half_open;
          t.probe_successes <- 0;
          t.probes_inflight <- 1;
          true
        end
        else false
    | Half_open ->
        if t.probes_inflight < t.cfg.half_open_probes then begin
          t.probes_inflight <- t.probes_inflight + 1;
          true
        end
        else false

  let trip t ~now =
    t.opens <- t.opens + 1;
    t.opened_at <- now;
    t.probes_inflight <- 0;
    t.probe_successes <- 0;
    reset_ring t;
    transition t Open

  let record t ~now ~ok =
    match t.state with
    | Open -> ()  (* stragglers from before the trip carry no signal *)
    | Half_open ->
        t.probes_inflight <- max 0 (t.probes_inflight - 1);
        if ok then begin
          t.probe_successes <- t.probe_successes + 1;
          if t.probe_successes >= t.cfg.half_open_probes then begin
            reset_ring t;
            transition t Closed
          end
        end
        else trip t ~now
    | Closed ->
        let fail_bit = if ok then '\000' else '\001' in
        if t.n = t.cfg.window then begin
          if Bytes.get t.ring t.head = '\001' then t.failures <- t.failures - 1
        end
        else t.n <- t.n + 1;
        if Bytes.get t.ring t.head <> fail_bit then Bytes.set t.ring t.head fail_bit;
        t.head <- (t.head + 1) mod t.cfg.window;
        if not ok then t.failures <- t.failures + 1;
        if
          t.n >= t.cfg.min_samples
          && float_of_int t.failures >= t.cfg.failure_rate *. float_of_int t.n
        then trip t ~now
end
