type event =
  | Server_down of int
  | Server_up of int
  | Link_outage of int
  | Link_restored of int
  | Link_degraded of int * float
  | Straggler of int * float

type t = (float * event) array

let empty : t = [||]
let is_empty t = Array.length t = 0
let events t = Array.to_list t

let check_factor what f =
  if not (Float.is_finite f) || f <= 0.0 then
    invalid_arg (Printf.sprintf "Faults: %s factor must be finite and positive, got %g" what f)

let check_event = function
  | Server_down _ | Server_up _ | Link_outage _ | Link_restored _ -> ()
  | Link_degraded (_, f) -> check_factor "link" f
  | Straggler (_, f) -> check_factor "straggler" f

let scripted evs =
  List.iter
    (fun (time, ev) ->
      if not (Float.is_finite time) || time < 0.0 then
        invalid_arg (Printf.sprintf "Faults: event time must be finite and >= 0, got %g" time);
      check_event ev)
    evs;
  let arr = Array.of_list evs in
  (* stable, so equal-time events keep their scripted order *)
  let tagged = Array.mapi (fun i (time, ev) -> (time, i, ev)) arr in
  Array.sort
    (fun (t1, i1, _) (t2, i2, _) -> if t1 <> t2 then Float.compare t1 t2 else Int.compare i1 i2)
    tagged;
  Array.map (fun (time, _, ev) -> (time, ev)) tagged

let crash ~at ?for_s s =
  match for_s with
  | None -> [ (at, Server_down s) ]
  | Some d -> [ (at, Server_down s); (at +. d, Server_up s) ]

let outage ~at ~for_s d = [ (at, Link_outage d); (at +. for_s, Link_restored d) ]

let degrade ~at ~for_s ~factor d =
  [ (at, Link_degraded (d, factor)); (at +. for_s, Link_degraded (d, 1.0)) ]

let straggle ~at ~for_s ~factor s =
  [ (at, Straggler (s, factor)); (at +. for_s, Straggler (s, 1.0)) ]

let random ~seed ~duration_s ~n_servers ~n_devices ?(server_mtbf_s = 0.0) ?(server_mttr_s = 5.0)
    ?(outage_rate = 0.0) ?(outage_mean_s = 2.0) ?(straggler_rate = 0.0) ?(straggler_factor = 4.0)
    ?(straggler_mean_s = 5.0) () =
  let root = Es_util.Prng.create seed in
  let evs = ref [] in
  let push time ev = if time < duration_s then evs := (time, ev) :: !evs in
  (* Per-entity independent streams, split in a fixed order so adding one
     fault class never perturbs another. *)
  let server_rngs = Array.init n_servers (fun _ -> Es_util.Prng.split root) in
  let device_rngs = Array.init n_devices (fun _ -> Es_util.Prng.split root) in
  let straggler_rngs = Array.init n_servers (fun _ -> Es_util.Prng.split root) in
  if server_mtbf_s > 0.0 then
    Array.iteri
      (fun s rng ->
        let t = ref 0.0 in
        while !t < duration_s do
          t := !t +. Es_util.Prng.exponential rng (1.0 /. server_mtbf_s);
          if !t < duration_s then begin
            push !t (Server_down s);
            t := !t +. Es_util.Prng.exponential rng (1.0 /. Float.max server_mttr_s 1e-9);
            push !t (Server_up s)
          end
        done)
      server_rngs;
  if outage_rate > 0.0 then
    Array.iteri
      (fun d rng ->
        let t = ref 0.0 in
        while !t < duration_s do
          t := !t +. Es_util.Prng.exponential rng outage_rate;
          if !t < duration_s then begin
            push !t (Link_outage d);
            t := !t +. Es_util.Prng.exponential rng (1.0 /. Float.max outage_mean_s 1e-9);
            push !t (Link_restored d)
          end
        done)
      device_rngs;
  if straggler_rate > 0.0 then
    Array.iteri
      (fun s rng ->
        let t = ref 0.0 in
        while !t < duration_s do
          t := !t +. Es_util.Prng.exponential rng straggler_rate;
          if !t < duration_s then begin
            push !t (Straggler (s, straggler_factor));
            t := !t +. Es_util.Prng.exponential rng (1.0 /. Float.max straggler_mean_s 1e-9);
            push !t (Straggler (s, 1.0))
          end
        done)
      straggler_rngs;
  scripted (List.rev !evs)

let validate ~n_devices ~n_servers t =
  let server_ok s = s >= 0 && s < n_servers in
  let device_ok d = d >= 0 && d < n_devices in
  let problem =
    Array.fold_left
      (fun acc (_, ev) ->
        match acc with
        | Some _ -> acc
        | None -> (
            match ev with
            | Server_down s | Server_up s | Straggler (s, _) ->
                if server_ok s then None
                else Some (Printf.sprintf "server index %d out of range (have %d servers)" s n_servers)
            | Link_outage d | Link_restored d | Link_degraded (d, _) ->
                if device_ok d then None
                else Some (Printf.sprintf "device index %d out of range (have %d devices)" d n_devices)))
      None t
  in
  match problem with None -> Ok () | Some msg -> Error msg

let down_at t ~time =
  let down = Hashtbl.create 4 in
  Array.iter
    (fun (tau, ev) ->
      if tau <= time then
        match ev with
        | Server_down s -> Hashtbl.replace down s ()
        | Server_up s -> Hashtbl.remove down s
        | _ -> ())
    t;
  (* es_lint: sorted — the explicit Int.compare sort fixes the order. *)
  Hashtbl.fold (fun s () acc -> s :: acc) down [] |> List.sort Int.compare

let down_intervals t ~horizon_s =
  let open_at = Hashtbl.create 4 in
  let intervals = ref [] in
  Array.iter
    (fun (tau, ev) ->
      match ev with
      | Server_down s -> if not (Hashtbl.mem open_at s) then Hashtbl.add open_at s tau
      | Server_up s -> (
          match Hashtbl.find_opt open_at s with
          | Some from ->
              Hashtbl.remove open_at s;
              if from < horizon_s then intervals := (s, from, Float.min tau horizon_s) :: !intervals
          | None -> ())
      | _ -> ())
    t;
  (* es_lint: sorted — the explicit sort below fixes the order. *)
  Hashtbl.iter
    (fun s from -> if from < horizon_s then intervals := (s, from, horizon_s) :: !intervals)
    open_at;
  List.sort
    (fun (s1, f1, u1) (s2, f2, u2) ->
      match Int.compare s1 s2 with
      | 0 -> ( match Float.compare f1 f2 with 0 -> Float.compare u1 u2 | c -> c)
      | c -> c)
    !intervals

let spec_syntax =
  "down:S@T[+DUR] | up:S@T | outage:D@T+DUR | degrade:D:F@T+DUR | straggle:S:F@T+DUR \
   (comma/semicolon separated; S=server, D=device, F=factor, times in seconds)"

(* One token, e.g. "down:1@20+5" or "degrade:0:0.25@10+8". *)
let parse_token tok =
  let ( let* ) = Result.bind in
  let fail () = Error (Printf.sprintf "bad fault token %S (expected %s)" tok spec_syntax) in
  let parse_int s = match int_of_string_opt (String.trim s) with Some i -> Ok i | None -> fail () in
  let parse_float s =
    match float_of_string_opt (String.trim s) with
    | Some f when Float.is_finite f -> Ok f
    | _ -> fail ()
  in
  match String.index_opt tok ':' with
  | None -> fail ()
  | Some i -> (
      let kind = String.sub tok 0 i in
      let rest = String.sub tok (i + 1) (String.length tok - i - 1) in
      (* rest is ARGS@T[+DUR] *)
      match String.index_opt rest '@' with
      | None -> fail ()
      | Some j ->
          let args = String.sub rest 0 j in
          let timing = String.sub rest (j + 1) (String.length rest - j - 1) in
          let* at, dur =
            match String.index_opt timing '+' with
            | None ->
                let* at = parse_float timing in
                Ok (at, None)
            | Some k ->
                let* at = parse_float (String.sub timing 0 k) in
                let* dur = parse_float (String.sub timing (k + 1) (String.length timing - k - 1)) in
                Ok (at, Some dur)
          in
          let* idx, factor =
            match String.split_on_char ':' args with
            | [ i ] ->
                let* i = parse_int i in
                Ok (i, None)
            | [ i; f ] ->
                let* i = parse_int i in
                let* f = parse_float f in
                Ok (i, Some f)
            | _ -> fail ()
          in
          let need_dur k =
            match dur with
            | Some d when d > 0.0 -> Ok (k d)
            | _ -> Error (Printf.sprintf "fault token %S needs a positive +DUR" tok)
          in
          if at < 0.0 then Error (Printf.sprintf "fault token %S has a negative time" tok)
          else
            match (kind, factor) with
            | "down", None -> Ok (crash ~at ?for_s:dur idx)
            | "up", None -> if dur = None then Ok [ (at, Server_up idx) ] else fail ()
            | "outage", None -> need_dur (fun d -> outage ~at ~for_s:d idx)
            | "degrade", Some f when f > 0.0 -> need_dur (fun d -> degrade ~at ~for_s:d ~factor:f idx)
            | "straggle", Some f when f > 0.0 ->
                need_dur (fun d -> straggle ~at ~for_s:d ~factor:f idx)
            | ("degrade" | "straggle"), Some _ ->
                Error (Printf.sprintf "fault token %S needs a positive factor" tok)
            | _ -> fail ())

let of_spec spec =
  let tokens =
    String.split_on_char ',' spec
    |> List.concat_map (String.split_on_char ';')
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if tokens = [] then Error "empty fault spec"
  else
    List.fold_left
      (fun acc tok ->
        match acc with
        | Error _ as e -> e
        | Ok evs -> ( match parse_token tok with Ok more -> Ok (evs @ more) | Error _ as e -> e))
      (Ok []) tokens

let of_spec_or_file arg =
  let from_tokens tokens =
    List.fold_left
      (fun acc tok ->
        match acc with
        | Error _ as e -> e
        | Ok evs -> ( match parse_token tok with Ok more -> Ok (evs @ more) | Error _ as e -> e))
      (Ok []) tokens
  in
  let result =
    if Sys.file_exists arg && not (Sys.is_directory arg) then begin
      let ic = open_in arg in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let tokens =
        List.rev !lines
        |> List.map (fun line ->
               match String.index_opt line '#' with
               | Some i -> String.sub line 0 i
               | None -> line)
        |> List.concat_map (fun line -> String.split_on_char ',' line)
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
      in
      if tokens = [] then Error (Printf.sprintf "fault file %s contains no events" arg)
      else from_tokens tokens
    end
    else of_spec arg
  in
  match result with
  | Error _ as e -> e
  | Ok evs -> ( try Ok (scripted evs) with Invalid_argument msg -> Error msg)

let pp_event ppf = function
  | Server_down s -> Format.fprintf ppf "server %d down" s
  | Server_up s -> Format.fprintf ppf "server %d up" s
  | Link_outage d -> Format.fprintf ppf "device %d link outage" d
  | Link_restored d -> Format.fprintf ppf "device %d link restored" d
  | Link_degraded (d, f) -> Format.fprintf ppf "device %d link x%g" d f
  | Straggler (s, f) -> Format.fprintf ppf "server %d straggle x%g" s f

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iter (fun (time, ev) -> Format.fprintf ppf "%8.3fs  %a@," time pp_event ev) t;
  Format.fprintf ppf "@]"
