(** FIFO service station.

    Models any sequential resource: a device CPU, a device's granted slice
    of an access point, or its granted share of a server.  Work is expressed
    in abstract units; the station's [speed] converts units to seconds
    (service time = units / speed), so reconfiguring the speed (e.g. the
    online scheduler changing a bandwidth grant) affects jobs that start
    after the change.

    An optional queue capacity drops arrivals when the backlog (including
    the job in service) is full — overload experiments count these drops. *)

type t

val create : Engine.t -> ?capacity:int -> ?name:string -> speed:float -> unit -> t
(** @raise Invalid_argument on non-positive speed. *)

val submit :
  t -> ?on_start:(unit -> unit) -> ?on_evict:(unit -> unit) -> work:float -> (unit -> unit) -> bool
(** [submit st ~work k] enqueues a job needing [work] units and calls [k]
    at its completion.  Returns [false] (and drops the job, never calling
    [k]) when the station is at capacity.  Zero-work jobs complete
    immediately but still pass through the queue discipline.
    [on_start] fires when the job leaves the queue and begins service
    (telemetry uses it to split waiting from service time); for a job
    submitted to an idle station it fires within [submit] itself.
    [on_evict] fires if the job is thrown away by {!flush} before
    completing — exactly one of [k] / [on_evict] ever runs. *)

val flush : t -> int
(** [flush st] evicts every queued job and cancels the job in service (its
    already-booked busy time is refunded for the unserved remainder), then
    fires each evicted job's [on_evict] callback, in-service job first then
    FIFO order.  The station is idle-and-empty before the callbacks run, so
    they may resubmit.  Returns the number of jobs evicted.  Fault
    injection uses this when a server crashes or a link goes dark. *)

val set_speed : t -> float -> unit
(** Takes effect for subsequently started jobs. *)

val speed : t -> float
val name : t -> string
val queue_length : t -> int
(** Jobs waiting or in service. *)

val backlog_eta : t -> float
(** Seconds until the current backlog (remaining service of the job in
    service plus all waiting work) clears at the current speed — the
    admission controller's per-station congestion signal.  Exact for a
    dedicated FIFO station absent future speed changes and evictions. *)

val eta : t -> work:float -> float
(** [eta st ~work] = {!backlog_eta} plus the service time of a
    hypothetical [work]-unit job submitted now. *)

val busy_time : t -> float
(** Cumulative seconds the station has been serving jobs. *)

val completed : t -> int

val dropped : t -> int
(** Arrivals rejected at capacity (does not include evictions). *)

val evicted : t -> int
(** Jobs thrown away by {!flush}. *)
