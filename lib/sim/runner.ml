open Es_edge
open Es_surgery

type batching = { max_batch : int; window_s : float; alpha : float }

type options = {
  duration_s : float;
  warmup_s : float;
  seed : int;
  fading : bool;
  compute_jitter : float;
  queue_capacity : int option;
  batching : batching option;
}

let default_options =
  {
    duration_s = 60.0;
    warmup_s = 5.0;
    seed = 7;
    fading = false;
    compute_jitter = 0.0;
    queue_capacity = None;
    batching = None;
  }

type dev_stations = {
  cpu : Station.t;
  up : Station.t;
  srv : Station.t;
  down : Station.t;
}

let positive x = Float.max x 1e-3

let stages = [ "device"; "uplink"; "uplink_prop"; "server"; "downlink"; "downlink_prop" ]

let run ?(options = default_options) ?metrics ?spans ?arrivals ?reconfigure
    ?(work_scale = fun ~device:_ _ -> 1.0) cluster decisions =
  let nd = Cluster.n_devices cluster and ns = Cluster.n_servers cluster in
  if Array.length decisions <> nd then invalid_arg "Runner.run: decisions size mismatch";
  let engine = Engine.create () in
  let tracer =
    match spans with
    | None -> Es_obs.Span.null
    | Some sink -> Es_obs.Span.tracer ~sink ~clock:(fun () -> Engine.now engine) ()
  in
  let arrival_rng = Es_util.Prng.create options.seed in
  let jitter_rng = Es_util.Prng.split arrival_rng in
  let fade_rng = Es_util.Prng.split arrival_rng in
  let scale_rng = Es_util.Prng.split arrival_rng in
  let current = Array.copy decisions in
  let capacity = options.queue_capacity in
  let stations =
    Array.init nd (fun i ->
        let d = current.(i) in
        let station name speed =
          Station.create engine ?capacity ~name ~speed:(positive speed) ()
        in
        {
          cpu = station (Printf.sprintf "cpu%d" i) 1.0;
          up = station (Printf.sprintf "up%d" i) d.Decision.bandwidth_bps;
          srv = station (Printf.sprintf "srv%d" i) d.Decision.compute_share;
          down = station (Printf.sprintf "down%d" i) d.Decision.bandwidth_bps;
        })
  in
  let server_busy = Array.make ns 0.0 in
  let batchers =
    match options.batching with
    | None -> [||]
    | Some cfg ->
        Array.init ns (fun _ ->
            Batcher.create engine ~max_batch:cfg.max_batch ~window_s:cfg.window_s
              ~alpha:cfg.alpha ~speed:1.0 ())
  in
  let collector =
    Metrics.create_collector ~n_devices:nd ~window_start:options.warmup_s
      ~window_end:options.duration_s
  in
  (* Metric handles are resolved once up front; with [metrics = None] every
     note_* is a constant no-op closure, so the uninstrumented hot path pays
     only the call.  Counting windows mirror the collector's, so live
     counters, the end-of-run report and the JSONL export all agree. *)
  let in_window t = t >= options.warmup_s && t <= options.duration_s in
  let note_arrival, note_completion, note_drop, note_segment =
    match metrics with
    | None -> ((fun _ -> ()), (fun ~arrival:_ _ -> ()), (fun _ _ -> ()), fun _ _ -> ())
    | Some reg ->
        let generated = Es_obs.Metric.counter reg "requests_generated" in
        let completed = Es_obs.Metric.counter reg "requests_completed" in
        let latency = Es_obs.Metric.histogram reg "request_latency_s" in
        let seg_h =
          List.map
            (fun s -> (s, Es_obs.Metric.histogram reg ~labels:[ ("stage", s) ] "segment_s"))
            stages
        in
        let drop_c =
          List.map
            (fun s -> (s, Es_obs.Metric.counter reg ~labels:[ ("stage", s) ] "requests_dropped"))
            stages
        in
        ( (fun now -> if in_window now then Es_obs.Metric.inc generated),
          (fun ~arrival l ->
            if in_window arrival then begin
              Es_obs.Metric.inc completed;
              Es_obs.Histogram.observe latency l
            end),
          (fun stage now -> if in_window now then Es_obs.Metric.inc (List.assoc stage drop_c)),
          fun stage dt -> Es_obs.Histogram.observe (List.assoc stage seg_h) dt )
  in
  let note_queue =
    match metrics with
    | None -> fun _ -> ()
    | Some reg ->
        let tbl = Hashtbl.create (4 * nd) in
        Array.iter
          (fun s ->
            List.iter
              (fun st ->
                Hashtbl.replace tbl (Station.name st)
                  (Es_obs.Metric.gauge reg ~labels:[ ("station", Station.name st) ] "queue_depth"))
              [ s.cpu; s.up; s.srv; s.down ])
          stations;
        fun st ->
          match Hashtbl.find_opt tbl (Station.name st) with
          | Some g -> Es_obs.Metric.set g (float_of_int (Station.queue_length st))
          | None -> ()
  in
  let apply_decisions ds =
    Array.iteri
      (fun i (d : Decision.t) ->
        current.(i) <- d;
        let st = stations.(i) in
        (* A zero grant means the new plan no longer uses the stage; keep
           the old speed so in-flight jobs drain instead of stalling. *)
        if d.Decision.bandwidth_bps > 0.0 then begin
          Station.set_speed st.up d.Decision.bandwidth_bps;
          Station.set_speed st.down d.Decision.bandwidth_bps
        end;
        if d.Decision.compute_share > 0.0 then Station.set_speed st.srv d.Decision.compute_share)
      ds
  in
  (match reconfigure with
  | None -> ()
  | Some changes ->
      List.iter
        (fun (t, ds) ->
          if Array.length ds <> nd then invalid_arg "Runner.run: reconfigure size mismatch";
          Engine.schedule_at engine t (fun () -> apply_decisions ds))
        changes);
  let jitter () =
    if options.compute_jitter <= 0.0 then 1.0
    else begin
      let sigma = options.compute_jitter in
      Es_util.Prng.lognormal jitter_rng ~mu:(-.sigma *. sigma /. 2.0) ~sigma
    end
  in
  let fade_factor link =
    if not options.fading then 1.0
    else begin
      let nominal = 1.0 in
      let eff = Link.effective_rate fade_rng link nominal in
      if eff <= 0.0 then 10.0 else nominal /. eff
    end
  in
  let tracing = Es_obs.Span.enabled tracer in
  let process dev_id arrival =
    let d = current.(dev_id) in
    let dev = cluster.Cluster.devices.(dev_id) in
    let st = stations.(dev_id) in
    let plan = d.Decision.plan in
    let scale = work_scale ~device:dev_id scale_rng *. jitter () in
    (* One trace per request: a root "request" span whose child segments
       tile [arrival, completion] exactly — the chain below submits each
       stage synchronously at the previous stage's completion, so segment
       durations sum to the end-to-end latency. *)
    let root =
      Es_obs.Span.start tracer
        ~attrs:
          [
            ("device", Es_obs.Json.Int dev_id); ("server", Es_obs.Json.Int d.Decision.server);
          ]
        "request"
    in
    let complete () =
      let now = Engine.now engine in
      note_completion ~arrival (now -. arrival);
      Es_obs.Span.finish tracer
        ~attrs:
          [
            ("outcome", Es_obs.Json.String "completed");
            ("latency_s", Es_obs.Json.Float (now -. arrival));
          ]
        root;
      Metrics.on_completion collector ~device:dev_id ~arrival ~now
        ~deadline:dev.Cluster.deadline
    in
    let drop stage =
      let now = Engine.now engine in
      note_drop stage now;
      Es_obs.Span.finish tracer
        ~attrs:
          [ ("outcome", Es_obs.Json.String "dropped"); ("stage", Es_obs.Json.String stage) ]
        root;
      Metrics.on_drop collector ~device:dev_id ~now
    in
    (* A traced station hop: the segment span opens at submission; queueing
       time (submission → service start) is recorded as an attribute so the
       span decomposes further without breaking the tiling. *)
    let submit stage station ~work k =
      let sp = Es_obs.Span.start tracer ~parent:root stage in
      let submitted = Engine.now engine in
      let on_start =
        if tracing then
          Some
            (fun () ->
              Es_obs.Span.set_attr sp "queue_s"
                (Es_obs.Json.Float (Engine.now engine -. submitted)))
        else None
      in
      let ok =
        Station.submit station ?on_start ~work (fun () ->
            note_segment stage (Engine.now engine -. submitted);
            Es_obs.Span.finish tracer sp;
            k ())
      in
      note_queue station;
      if not ok then begin
        Es_obs.Span.finish tracer
          ~attrs:[ ("outcome", Es_obs.Json.String "dropped") ]
          sp;
        drop stage
      end
    in
    (* Propagation legs get their own child spans so the segments still tile
       the request's full lifetime. *)
    let propagate stage delay k =
      let sp = Es_obs.Span.start tracer ~parent:root stage in
      Engine.schedule engine delay (fun () ->
          note_segment stage delay;
          Es_obs.Span.finish tracer sp;
          k ())
    in
    note_arrival arrival;
    Metrics.on_arrival collector ~device:dev_id ~now:arrival;
    let dev_work = Plan.device_time dev.Cluster.proc.Processor.perf plan *. scale in
    submit "device" st.cpu ~work:dev_work (fun () ->
        if not (Decision.offloads d) then complete ()
        else begin
          let link = dev.Cluster.link in
          let half_rtt = link.Link.rtt_s /. 2.0 in
          let up_bits = 8.0 *. Plan.transfer_bytes plan *. fade_factor link in
          submit "uplink" st.up ~work:up_bits (fun () ->
              propagate "uplink_prop" half_rtt (fun () ->
                  let srv = cluster.Cluster.servers.(d.Decision.server) in
                  let work_s =
                    Plan.server_time srv.Cluster.sproc.Processor.perf plan *. scale
                  in
                  let after_server () =
                    let down_bits = 8.0 *. Plan.result_bytes plan *. fade_factor link in
                    submit "downlink" st.down ~work:down_bits (fun () ->
                        propagate "downlink_prop" half_rtt complete)
                  in
                  match options.batching with
                  | Some _ ->
                      (* One batched accelerator per server; shares ignored.
                         The "server" segment span covers queue + batch wait +
                         service, measured around the batcher. *)
                      let sp = Es_obs.Span.start tracer ~parent:root "server" in
                      let submitted = Engine.now engine in
                      Batcher.submit batchers.(d.Decision.server) ~work:work_s (fun () ->
                          note_segment "server" (Engine.now engine -. submitted);
                          Es_obs.Span.finish tracer sp;
                          after_server ())
                  | None ->
                      let record_busy =
                        let share = Station.speed st.srv in
                        fun () ->
                          server_busy.(d.Decision.server) <-
                            server_busy.(d.Decision.server) +. (work_s /. Float.max share 1e-9)
                      in
                      submit "server" st.srv ~work:work_s (fun () ->
                          record_busy ();
                          after_server ())))
        end)
  in
  (match arrivals with
  | Some trace ->
      Array.iter
        (fun (t, dev_id) ->
          if dev_id < 0 || dev_id >= nd then invalid_arg "Runner.run: bad device in trace";
          if t <= options.duration_s then
            Engine.schedule_at engine t (fun () -> process dev_id t))
        trace
  | None ->
      (* Per-device Poisson processes, generated event-recursively. *)
      let rngs = Array.init nd (fun _ -> Es_util.Prng.split arrival_rng) in
      let rec arrive dev_id t =
        if t <= options.duration_s then begin
          Engine.schedule_at engine t (fun () ->
              process dev_id t;
              let gap =
                Es_util.Prng.exponential rngs.(dev_id) cluster.Cluster.devices.(dev_id).Cluster.rate
              in
              arrive dev_id (t +. gap))
        end
      in
      Array.iteri
        (fun dev_id _ ->
          let first = Es_util.Prng.exponential rngs.(dev_id) cluster.Cluster.devices.(dev_id).Cluster.rate in
          arrive dev_id first)
        cluster.Cluster.devices);
  (* Arrivals stop at the horizon; the system then drains so every admitted
     request completes and horizon-edge requests are not unfairly counted as
     deadline misses. *)
  Engine.run engine;
  (match options.batching with
  | None -> ()
  | Some _ ->
      Array.iteri (fun s b -> server_busy.(s) <- Batcher.busy_time b) batchers);
  let report = Metrics.finalize collector ~server_busy ~duration:options.duration_s in
  Option.iter (fun reg -> Metrics.record_to reg report) metrics;
  report
