open Es_edge
open Es_surgery

type batching = { max_batch : int; window_s : float; alpha : float }

type resilience = {
  timeout_factor : float;
  max_retries : int;
  backoff_base_s : float;
  local_fallback : bool;
}

let default_resilience =
  { timeout_factor = 3.0; max_retries = 1; backoff_base_s = 0.05; local_fallback = true }

type options = {
  duration_s : float;
  warmup_s : float;
  seed : int;
  fading : bool;
  compute_jitter : float;
  queue_capacity : int option;
  batching : batching option;
  faults : Faults.t;
  resilience : resilience option;
  streaming : bool;
  engine : Engine.backend;
  overload : Overload.policy;
}

let default_options =
  {
    duration_s = 60.0;
    warmup_s = 5.0;
    seed = 7;
    fading = false;
    compute_jitter = 0.0;
    queue_capacity = None;
    batching = None;
    faults = Faults.empty;
    resilience = None;
    streaming = false;
    engine = Engine.Calendar;
    overload = Overload.off;
  }

type dev_stations = {
  cpu : Station.t;
  up : Station.t;
  srv : Station.t;
  down : Station.t;
}

let stage_names = [| "device"; "uplink"; "uplink_prop"; "server"; "downlink"; "downlink_prop" |]
let stages = Array.to_list stage_names

(* Stage indices into [stage_names]. *)
let s_device = 0

and s_uplink = 1

and s_uplink_prop = 2

and s_server = 3

and s_downlink = 4

and s_downlink_prop = 5

(* Per-request state is packed into one int per request: outcome in bits
   0–2, the fallback-started flag in bit 3, the retry attempt count in the
   bits above.  Outcome 0 is "in flight". *)
let o_completed = 1

and o_degraded = 2

and o_dropped = 3

and o_timed_out = 4

and o_shed = 5

(* Bad plans used to be masked by clamping speeds to a tiny positive value;
   now they fail loudly at the boundary.  A decision that leaves a stage
   unused (zero grant on a device-only plan) is fine — that station simply
   never sees a job. *)
let check_decision ~ns i (d : Decision.t) =
  let bad fmt = Printf.ksprintf invalid_arg fmt in
  let finite_nonneg what v =
    if not (Float.is_finite v) || v < 0.0 then
      bad "Runner.run: decision %d has %s = %g (must be finite and >= 0)" i what v
  in
  finite_nonneg "bandwidth_bps" d.Decision.bandwidth_bps;
  finite_nonneg "compute_share" d.Decision.compute_share;
  if Decision.offloads d then begin
    if d.Decision.server < 0 || d.Decision.server >= ns then
      bad "Runner.run: decision %d targets server %d (cluster has %d)" i d.Decision.server ns;
    if d.Decision.bandwidth_bps <= 0.0 then
      bad "Runner.run: decision %d offloads but grants no bandwidth" i;
    if Plan.srv_flops d.Decision.plan > 0.0 && d.Decision.compute_share <= 0.0 then
      bad "Runner.run: decision %d runs server work but grants no compute share" i
  end

let check_resilience (r : resilience) =
  if not (Float.is_finite r.timeout_factor) || r.timeout_factor < 0.0 then
    invalid_arg "Runner.run: resilience timeout_factor must be finite and >= 0";
  if r.max_retries < 0 then invalid_arg "Runner.run: resilience max_retries must be >= 0";
  if not (Float.is_finite r.backoff_base_s) || r.backoff_base_s < 0.0 then
    invalid_arg "Runner.run: resilience backoff_base_s must be finite and >= 0"

(* The fastest device-only plan for a model: the degraded-mode fallback a
   device runs when its offload path is gone.  Accuracy floors are
   deliberately ignored — a degraded answer beats a dropped request. *)
let fallback_work_of (dev : Cluster.device) =
  let perf = dev.Cluster.proc.Processor.perf in
  let locals =
    List.filter Plan.is_device_only (Candidate.pareto_candidates dev.Cluster.model)
  in
  let best =
    match locals with
    | [] -> Plan.device_only dev.Cluster.model
    | p :: rest ->
        List.fold_left
          (fun acc q -> if Plan.device_time perf q < Plan.device_time perf acc then q else acc)
          p rest
  in
  Plan.device_time perf best

let run ?(options = default_options) ?metrics ?spans ?arrivals ?reconfigure
    ?(work_scale = fun ~device:_ _ -> 1.0) ?on_stats cluster decisions =
  let nd = Cluster.n_devices cluster and ns = Cluster.n_servers cluster in
  if Array.length decisions <> nd then invalid_arg "Runner.run: decisions size mismatch";
  Array.iteri (check_decision ~ns) decisions;
  Option.iter check_resilience options.resilience;
  Overload.validate options.overload;
  (match Faults.validate ~n_devices:nd ~n_servers:ns options.faults with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Runner.run: bad fault schedule: " ^ msg));
  let engine = Engine.create ~backend:options.engine () in
  let tracer =
    match spans with
    | None -> Es_obs.Span.null
    | Some sink -> Es_obs.Span.tracer ~sink ~clock:(fun () -> Engine.now engine) ()
  in
  let arrival_rng = Es_util.Prng.create options.seed in
  let jitter_rng = Es_util.Prng.split arrival_rng in
  let fade_rng = Es_util.Prng.split arrival_rng in
  let scale_rng = Es_util.Prng.split arrival_rng in
  let current = Array.copy decisions in
  let capacity = options.queue_capacity in
  let stations =
    Array.init nd (fun i ->
        let d = current.(i) in
        let station name speed =
          (* unused stages (zero grants on device-only plans) get a
             placeholder speed; validation above guarantees every stage a
             request can actually reach has a real positive grant *)
          let speed = if speed > 0.0 then speed else 1.0 in
          Station.create engine ?capacity ~name ~speed ()
        in
        {
          cpu = station (Printf.sprintf "cpu%d" i) 1.0;
          up = station (Printf.sprintf "up%d" i) d.Decision.bandwidth_bps;
          srv = station (Printf.sprintf "srv%d" i) d.Decision.compute_share;
          down = station (Printf.sprintf "down%d" i) d.Decision.bandwidth_bps;
        })
  in
  let server_busy = Array.make ns 0.0 in
  let batchers =
    match options.batching with
    | None -> [||]
    | Some cfg ->
        Array.init ns (fun _ ->
            Batcher.create engine ~max_batch:cfg.max_batch ~window_s:cfg.window_s
              ~alpha:cfg.alpha ~speed:1.0 ())
  in
  (* Live fault state.  All 1.0 / all-up when the schedule is empty, in
     which case every use below reduces to the fault-free arithmetic
     exactly ([x *. 1.0] and [x /. 1.0] are bit-identities). *)
  let server_up = Array.make ns true in
  let server_factor = Array.make ns 1.0 in
  let link_up = Array.make nd true in
  let link_factor = Array.make nd 1.0 in
  (* Overload-protection state.  With [options.overload = Overload.off]
     (the default) every array below is empty or untouched, every gate in
     [process] short-circuits on [overload_on], and the run is
     bit-identical to a build without overload protection — no extra
     events, no extra RNG draws. *)
  let ov = options.overload in
  let overload_on = not (Overload.is_off ov) in
  let protect_local =
    (* device-only reroute targets for open breakers and brownout swaps *)
    match (ov.Overload.breaker, ov.Overload.brownout) with
    | None, None -> [||]
    | _ -> Overload.local_decisions cluster
  in
  let brownout_plan =
    match ov.Overload.brownout with
    | Some { Overload.mode = Overload.Min_server; _ } ->
        Array.map Overload.min_server_plan cluster.Cluster.devices
    | _ -> [||]
  in
  let brownout_active = Array.make ns false in
  let collector =
    Metrics.create_collector ~streaming:options.streaming ~n_devices:nd
      ~window_start:options.warmup_s ~window_end:options.duration_s ()
  in
  (* Metric handles are resolved once up front; with [metrics = None] every
     note_* is a constant no-op closure, so the uninstrumented hot path pays
     only the call.  Counting windows mirror the collector's, so live
     counters, the end-of-run report and the JSONL export all agree.
     Per-stage handles live in arrays indexed by stage id — the per-event
     path does no list or string lookups. *)
  let in_window t = t >= options.warmup_s && t <= options.duration_s in
  let note_arrival, note_completion, note_drop, note_segment, note_timeout, note_shed =
    match metrics with
    | None ->
        ( (fun _ -> ()),
          (fun ~arrival:_ ~degraded:_ _ -> ()),
          (fun _ _ -> ()),
          (fun _ _ -> ()),
          (fun _ -> ()),
          fun _ -> () )
    | Some reg ->
        let generated = Es_obs.Metric.counter reg "requests_generated" in
        let completed = Es_obs.Metric.counter reg "requests_completed" in
        let latency = Es_obs.Metric.histogram reg "request_latency_s" in
        let seg_h =
          Array.map
            (fun s -> Es_obs.Metric.histogram reg ~labels:[ ("stage", s) ] "segment_s")
            stage_names
        in
        let drop_c =
          Array.map
            (fun s -> Es_obs.Metric.counter reg ~labels:[ ("stage", s) ] "requests_dropped")
            stage_names
        in
        let degraded_c = Es_obs.Metric.counter reg "requests_completed_degraded" in
        let timed_out_c = Es_obs.Metric.counter reg "requests_timed_out" in
        let shed_c = Es_obs.Metric.counter reg "requests_shed" in
        ( (fun now -> if in_window now then Es_obs.Metric.inc generated),
          (fun ~arrival ~degraded l ->
            if in_window arrival then begin
              Es_obs.Metric.inc completed;
              if degraded then Es_obs.Metric.inc degraded_c;
              Es_obs.Histogram.observe latency l
            end),
          (fun stage now -> if in_window now then Es_obs.Metric.inc drop_c.(stage)),
          (fun stage dt -> Es_obs.Histogram.observe seg_h.(stage) dt),
          (fun arrival -> if in_window arrival then Es_obs.Metric.inc timed_out_c),
          fun now -> if in_window now then Es_obs.Metric.inc shed_c )
  in
  let note_queue =
    match metrics with
    | None -> fun _ -> ()
    | Some reg ->
        let tbl = Hashtbl.create (4 * nd) in
        Array.iter
          (fun s ->
            List.iter
              (fun st ->
                Hashtbl.replace tbl (Station.name st)
                  (Es_obs.Metric.gauge reg ~labels:[ ("station", Station.name st) ] "queue_depth"))
              [ s.cpu; s.up; s.srv; s.down ])
          stations;
        fun st ->
          match Hashtbl.find_opt tbl (Station.name st) with
          | Some g -> Es_obs.Metric.set g (float_of_int (Station.queue_length st))
          | None -> ()
  in
  (* Per-server circuit breakers.  State transitions export a gauge
     (Closed 0 / Half_open 1 / Open 2) when a registry is attached;
     overload gauges/counters are created only when the corresponding
     mechanism is on, so unprotected runs' metric registries are
     unchanged. *)
  let breakers =
    match ov.Overload.breaker with
    | None -> [||]
    | Some cfg ->
        let gauge_of =
          match metrics with
          | None -> fun _ -> fun _ -> ()
          | Some reg ->
              fun s ->
                let g =
                  Es_obs.Metric.gauge reg
                    ~labels:[ ("server", string_of_int s) ]
                    "overload/breaker_state"
                in
                fun st -> Es_obs.Metric.set g (float_of_int (Overload.Breaker.state_code st))
        in
        Array.init ns (fun s -> Overload.Breaker.create ~on_transition:(gauge_of s) cfg)
  in
  (* Per-server token buckets.  A configured rate of 0 derives the refill
     rate from the server's aggregate granted service capacity
     (Σ share / service-time over its offloaders), re-derived on every
     reconfiguration and straggler fault — the utilization-aware mode. *)
  let refresh_bucket_rates = ref (fun () -> ()) in
  let buckets =
    match ov.Overload.rate_limit with
    | None -> [||]
    | Some rl ->
        let bks =
          Array.init ns (fun _ ->
              Es_alloc.Admission.Token_bucket.create ~rate:rl.Overload.rate_per_server
                ~burst:rl.Overload.burst ())
        in
        if rl.Overload.rate_per_server <= 0.0 then begin
          let refresh () =
            let now = Engine.now engine in
            let cap = Array.make ns 0.0 in
            Array.iteri
              (fun _ (d : Decision.t) ->
                if Decision.offloads d && d.Decision.compute_share > 0.0 then begin
                  let srv = cluster.Cluster.servers.(d.Decision.server) in
                  let w = Plan.server_time srv.Cluster.sproc.Processor.perf d.Decision.plan in
                  if w > 0.0 then
                    cap.(d.Decision.server) <-
                      cap.(d.Decision.server)
                      +. d.Decision.compute_share
                         /. (w *. server_factor.(d.Decision.server))
                end)
              current;
            Array.iteri
              (fun s b -> Es_alloc.Admission.Token_bucket.set_rate b ~now cap.(s))
              bks
          in
          refresh ();
          refresh_bucket_rates := refresh
        end;
        bks
  in
  let brownout_gauge, note_brownout_switch =
    match (ov.Overload.brownout, metrics) with
    | Some _, Some reg ->
        let g =
          Array.init ns (fun s ->
              Es_obs.Metric.gauge reg
                ~labels:[ ("server", string_of_int s) ]
                "overload/brownout_active")
        in
        let c = Es_obs.Metric.counter reg "overload/brownout_switches" in
        ((fun s v -> Es_obs.Metric.set g.(s) v), fun () -> Es_obs.Metric.inc c)
    | _ -> ((fun _ _ -> ()), fun () -> ())
  in
  let apply_decisions ds =
    Array.iteri
      (fun i (d : Decision.t) ->
        current.(i) <- d;
        let st = stations.(i) in
        (* A zero grant means the new plan no longer uses the stage; keep
           the old speed so in-flight jobs drain instead of stalling. *)
        if d.Decision.bandwidth_bps > 0.0 then begin
          let bw = d.Decision.bandwidth_bps *. link_factor.(i) in
          Station.set_speed st.up bw;
          Station.set_speed st.down bw
        end;
        if d.Decision.compute_share > 0.0 then
          Station.set_speed st.srv
            (d.Decision.compute_share /. server_factor.(d.Decision.server)))
      ds;
    !refresh_bucket_rates ()
  in
  let apply_fault = function
    | Faults.Server_down s ->
        if server_up.(s) then begin
          server_up.(s) <- false;
          Array.iteri
            (fun i st ->
              let d = current.(i) in
              if Decision.offloads d && d.Decision.server = s then ignore (Station.flush st.srv))
            stations
        end
    | Faults.Server_up s -> server_up.(s) <- true
    | Faults.Link_outage d ->
        if link_up.(d) then begin
          link_up.(d) <- false;
          ignore (Station.flush stations.(d).up);
          ignore (Station.flush stations.(d).down)
        end
    | Faults.Link_restored d -> link_up.(d) <- true
    | Faults.Link_degraded (d, f) ->
        link_factor.(d) <- f;
        let dec = current.(d) in
        if dec.Decision.bandwidth_bps > 0.0 then begin
          let bw = dec.Decision.bandwidth_bps *. f in
          Station.set_speed stations.(d).up bw;
          Station.set_speed stations.(d).down bw
        end
    | Faults.Straggler (s, f) ->
        server_factor.(s) <- f;
        Array.iteri
          (fun i st ->
            let dec = current.(i) in
            if Decision.offloads dec && dec.Decision.server = s
               && dec.Decision.compute_share > 0.0
            then Station.set_speed st.srv (dec.Decision.compute_share /. f))
          stations;
        !refresh_bucket_rates ()
  in
  (* Fault events are scheduled before reconfigurations and arrivals, so at
     an equal timestamp the fault applies first — a recovery schedule firing
     at crash time sees the crashed state. *)
  List.iter
    (fun (t, ev) ->
      if t <= options.duration_s then Engine.schedule_at engine t (fun () -> apply_fault ev))
    (Faults.events options.faults);
  (match reconfigure with
  | None -> ()
  | Some changes ->
      List.iter
        (fun (t, ds) ->
          if Array.length ds <> nd then invalid_arg "Runner.run: reconfigure size mismatch";
          Array.iteri (check_decision ~ns) ds;
          Engine.schedule_at engine t (fun () -> apply_decisions ds))
        changes);
  (* Brownout watermark controller: a periodic sweep (simulated time) of
     per-server backlog with hysteresis — engage at the high watermark,
     release at the low one.  Scheduled only when brownout is configured,
     so the default event stream is untouched. *)
  (match ov.Overload.brownout with
  | None -> ()
  | Some b ->
      let backlog = Array.make ns 0 in
      let rec tick t =
        if t <= options.duration_s then
          Engine.schedule_at engine t (fun () ->
              Array.fill backlog 0 ns 0;
              Array.iteri
                (fun i st ->
                  let d = current.(i) in
                  if Decision.offloads d then
                    backlog.(d.Decision.server) <-
                      backlog.(d.Decision.server) + Station.queue_length st.srv)
                stations;
              for s = 0 to ns - 1 do
                if (not brownout_active.(s)) && backlog.(s) >= b.Overload.high_watermark
                then begin
                  brownout_active.(s) <- true;
                  note_brownout_switch ();
                  brownout_gauge s 1.0
                end
                else if brownout_active.(s) && backlog.(s) <= b.Overload.low_watermark
                then begin
                  brownout_active.(s) <- false;
                  note_brownout_switch ();
                  brownout_gauge s 0.0
                end
              done;
              tick (t +. b.Overload.check_every_s))
      in
      tick b.Overload.check_every_s);
  let fallback_work =
    match options.resilience with
    | Some r when r.local_fallback -> Some (Array.map fallback_work_of cluster.Cluster.devices)
    | _ -> None
  in
  let jitter () =
    if options.compute_jitter <= 0.0 then 1.0
    else begin
      let sigma = options.compute_jitter in
      Es_util.Prng.lognormal jitter_rng ~mu:(-.sigma *. sigma /. 2.0) ~sigma
    end
  in
  let fade_factor link =
    if not options.fading then 1.0
    else begin
      let nominal = 1.0 in
      let eff = Link.effective_rate fade_rng link nominal in
      if eff <= 0.0 then 10.0 else nominal /. eff
    end
  in
  let tracing = Es_obs.Span.enabled tracer in
  (* Flat per-request state, indexed by request id: parallel growable
     arrays instead of a closure full of refs per request, so steady-state
     simulation allocates O(1) per request.  [req_span] is only grown (and
     only read) when tracing — the untraced hot path never touches it. *)
  let n_req = ref 0 in
  let req_state = ref [||] in
  let req_arrival = ref [||] in
  let req_scale = ref [||] in
  let req_dev = ref [||] in
  let req_dec : Decision.t array ref = ref [||] in
  let req_span = ref [||] in
  let no_span = Es_obs.Span.start Es_obs.Span.null "unused" in
  let initial_cap =
    let expected =
      match arrivals with
      | Some trace -> Array.length trace
      | None ->
          let rate_sum =
            Array.fold_left
              (fun acc (d : Cluster.device) -> acc +. d.Cluster.rate)
              0.0 cluster.Cluster.devices
          in
          int_of_float (1.5 *. rate_sum *. options.duration_s)
    in
    min (1 lsl 22) (max 64 expected)
  in
  (* [fill_dec] seeds the decision array on first growth (there is no
     synthesizable dummy [Decision.t]); afterwards existing slot 0 works. *)
  let ensure_cap fill_dec =
    let cap = Array.length !req_state in
    if !n_req >= cap then begin
      let ncap = if cap = 0 then initial_cap else 2 * cap in
      let grow a fill =
        let b = Array.make ncap fill in
        Array.blit !a 0 b 0 cap;
        a := b
      in
      grow req_state 0;
      grow req_arrival 0.0;
      grow req_scale 1.0;
      grow req_dev 0;
      grow req_dec fill_dec;
      if tracing then grow req_span no_span
    end
  in
  let resolved rid = (!req_state).(rid) land 7 <> 0 in
  let set_outcome rid o = (!req_state).(rid) <- (!req_state).(rid) lor o in
  let fallback_started rid = (!req_state).(rid) land 8 <> 0 in
  let set_fallback rid = (!req_state).(rid) <- (!req_state).(rid) lor 8 in
  let attempts rid = (!req_state).(rid) lsr 4 in
  let incr_attempts rid = (!req_state).(rid) <- (!req_state).(rid) + 16 in
  (* Feed the server's breaker from this request's offload-path outcomes:
     a server-stage completion closes in success, a server-stage failure or
     a timeout in failure.  No-op without breakers or for device-only
     requests. *)
  let breaker_note rid ok =
    if Array.length breakers > 0 then begin
      let d = (!req_dec).(rid) in
      if Decision.offloads d then
        Overload.Breaker.record breakers.(d.Decision.server) ~now:(Engine.now engine) ~ok
    end
  in
  (* Under resilience a request can have several racing continuations (a
     retry, the fallback, a late original completion); the outcome bits
     make the first one the only one that touches metrics and finishes the
     request's root span. *)
  let complete rid =
    if not (resolved rid) then begin
      breaker_note rid true;
      set_outcome rid o_completed;
      let now = Engine.now engine in
      let arrival = (!req_arrival).(rid) in
      let dev_id = (!req_dev).(rid) in
      note_completion ~arrival ~degraded:false (now -. arrival);
      if tracing then
        Es_obs.Span.finish tracer
          ~attrs:
            [
              ("outcome", Es_obs.Json.String "completed");
              ("latency_s", Es_obs.Json.Float (now -. arrival));
            ]
          (!req_span).(rid);
      Metrics.on_completion collector ~device:dev_id ~arrival ~now
        ~deadline:cluster.Cluster.devices.(dev_id).Cluster.deadline ()
    end
  in
  let complete_degraded rid =
    if not (resolved rid) then begin
      set_outcome rid o_degraded;
      let now = Engine.now engine in
      let arrival = (!req_arrival).(rid) in
      let dev_id = (!req_dev).(rid) in
      note_completion ~arrival ~degraded:true (now -. arrival);
      if tracing then
        Es_obs.Span.finish tracer
          ~attrs:
            [
              ("outcome", Es_obs.Json.String "completed_degraded");
              ("latency_s", Es_obs.Json.Float (now -. arrival));
            ]
          (!req_span).(rid);
      Metrics.on_completion collector ~degraded:true ~device:dev_id ~arrival ~now
        ~deadline:cluster.Cluster.devices.(dev_id).Cluster.deadline ()
    end
  in
  let drop rid stage =
    if not (resolved rid) then begin
      set_outcome rid o_dropped;
      let now = Engine.now engine in
      note_drop stage now;
      if tracing then
        Es_obs.Span.finish tracer
          ~attrs:
            [
              ("outcome", Es_obs.Json.String "dropped");
              ("stage", Es_obs.Json.String stage_names.(stage));
            ]
          (!req_span).(rid);
      Metrics.on_drop collector ~device:(!req_dev).(rid) ~now
    end
  in
  let timed_out rid =
    if not (resolved rid) then begin
      breaker_note rid false;
      set_outcome rid o_timed_out;
      let arrival = (!req_arrival).(rid) in
      note_timeout arrival;
      if tracing then
        Es_obs.Span.finish tracer
          ~attrs:[ ("outcome", Es_obs.Json.String "timed_out") ]
          (!req_span).(rid);
      Metrics.on_timeout collector ~device:(!req_dev).(rid) ~arrival
    end
  in
  (* Exactly-once shed: overload protection refused the request at arrival,
     before it entered any queue. *)
  let shed rid =
    if not (resolved rid) then begin
      set_outcome rid o_shed;
      let now = Engine.now engine in
      note_shed now;
      if tracing then
        Es_obs.Span.finish tracer
          ~attrs:[ ("outcome", Es_obs.Json.String "shed") ]
          (!req_span).(rid);
      Metrics.on_shed collector ~device:(!req_dev).(rid) ~now
    end
  in
  let start_fallback rid =
    match fallback_work with
    | Some works when (not (resolved rid)) && not (fallback_started rid) ->
        set_fallback rid;
        let dev_id = (!req_dev).(rid) in
        let st = stations.(dev_id) in
        let work = works.(dev_id) *. (!req_scale).(rid) in
        if tracing then begin
          let sp = Es_obs.Span.start tracer ~parent:(!req_span).(rid) "fallback" in
          let submitted = Engine.now engine in
          let on_start =
            Some
              (fun () ->
                Es_obs.Span.set_attr sp "queue_s"
                  (Es_obs.Json.Float (Engine.now engine -. submitted)))
          in
          let ok =
            Station.submit st.cpu ?on_start ~work (fun () ->
                Es_obs.Span.finish tracer sp;
                complete_degraded rid)
          in
          note_queue st.cpu;
          if not ok then begin
            Es_obs.Span.finish tracer ~attrs:[ ("outcome", Es_obs.Json.String "dropped") ] sp;
            drop rid s_device
          end
        end
        else begin
          let ok = Station.submit st.cpu ~work (fun () -> complete_degraded rid) in
          note_queue st.cpu;
          if not ok then drop rid s_device
        end
    | _ -> ()
  in
  (* Failure of an attempt at [stage]: retry with exponential backoff from
     the failed phase, then fall back locally, then drop.  Without a
     resilience policy the request is simply dropped (pre-fault
     behavior).  [restart] is the phase to re-enter, keyed by request id. *)
  let fail rid stage (restart : int -> unit) =
    if not (resolved rid) then begin
      if stage = s_server then breaker_note rid false;
      match options.resilience with
      | None -> drop rid stage
      | Some r ->
          incr_attempts rid;
          if attempts rid <= r.max_retries then begin
            let backoff = r.backoff_base_s *. (2.0 ** float_of_int (attempts rid - 1)) in
            Engine.schedule engine backoff (fun () -> if not (resolved rid) then restart rid)
          end
          else if r.local_fallback then start_fallback rid
          else drop rid stage
    end
  in
  (* A traced station hop: the segment span opens at submission; queueing
     time (submission → service start) is recorded as an attribute so the
     span decomposes further without breaking the tiling. *)
  let submit rid stage station ~work ~restart k =
    if tracing then begin
      let sp = Es_obs.Span.start tracer ~parent:(!req_span).(rid) stage_names.(stage) in
      let submitted = Engine.now engine in
      let on_start =
        Some
          (fun () ->
            Es_obs.Span.set_attr sp "queue_s"
              (Es_obs.Json.Float (Engine.now engine -. submitted)))
      in
      let on_evict () =
        Es_obs.Span.finish tracer ~attrs:[ ("outcome", Es_obs.Json.String "evicted") ] sp;
        fail rid stage restart
      in
      let ok =
        Station.submit station ?on_start ~on_evict ~work (fun () ->
            note_segment stage (Engine.now engine -. submitted);
            Es_obs.Span.finish tracer sp;
            k ())
      in
      note_queue station;
      if not ok then begin
        Es_obs.Span.finish tracer ~attrs:[ ("outcome", Es_obs.Json.String "dropped") ] sp;
        fail rid stage restart
      end
    end
    else begin
      let submitted = Engine.now engine in
      let on_evict () = fail rid stage restart in
      let ok =
        Station.submit station ~on_evict ~work (fun () ->
            note_segment stage (Engine.now engine -. submitted);
            k ())
      in
      note_queue station;
      if not ok then fail rid stage restart
    end
  in
  (* Propagation legs get their own child spans so the segments still tile
     the request's full lifetime. *)
  let propagate rid stage delay k =
    if tracing then begin
      let sp = Es_obs.Span.start tracer ~parent:(!req_span).(rid) stage_names.(stage) in
      Engine.schedule engine delay (fun () ->
          note_segment stage delay;
          Es_obs.Span.finish tracer sp;
          k ())
    end
    else
      Engine.schedule engine delay (fun () ->
          note_segment stage delay;
          k ())
  in
  let rec attempt_device rid =
    let dev_id = (!req_dev).(rid) in
    let d = (!req_dec).(rid) in
    let dev = cluster.Cluster.devices.(dev_id) in
    let dev_work =
      Plan.device_time dev.Cluster.proc.Processor.perf d.Decision.plan *. (!req_scale).(rid)
    in
    submit rid s_device stations.(dev_id).cpu ~work:dev_work ~restart:attempt_device (fun () ->
        if not (Decision.offloads d) then complete rid else attempt_offload rid)
  and attempt_offload rid =
    let dev_id = (!req_dev).(rid) in
    let d = (!req_dec).(rid) in
    let dev = cluster.Cluster.devices.(dev_id) in
    let st = stations.(dev_id) in
    let plan = d.Decision.plan in
    if not link_up.(dev_id) then fail rid s_uplink attempt_offload
    else begin
      let link = dev.Cluster.link in
      let half_rtt = link.Link.rtt_s /. 2.0 in
      let up_bits = 8.0 *. Plan.transfer_bytes plan *. fade_factor link in
      submit rid s_uplink st.up ~work:up_bits ~restart:attempt_offload (fun () ->
          propagate rid s_uplink_prop half_rtt (fun () ->
              if not server_up.(d.Decision.server) then fail rid s_server attempt_offload
              else begin
                let srv = cluster.Cluster.servers.(d.Decision.server) in
                let work_s =
                  Plan.server_time srv.Cluster.sproc.Processor.perf plan *. (!req_scale).(rid)
                in
                let after_server () =
                  if not link_up.(dev_id) then fail rid s_downlink attempt_offload
                  else begin
                    let down_bits = 8.0 *. Plan.result_bytes plan *. fade_factor link in
                    submit rid s_downlink st.down ~work:down_bits ~restart:attempt_offload
                      (fun () -> propagate rid s_downlink_prop half_rtt (fun () -> complete rid))
                  end
                in
                match options.batching with
                | Some _ ->
                    (* One batched accelerator per server; shares ignored.
                       The "server" segment span covers queue + batch wait +
                       service, measured around the batcher.  Batchers have
                       no eviction path: faults only gate admission here. *)
                    if tracing then begin
                      let sp = Es_obs.Span.start tracer ~parent:(!req_span).(rid) "server" in
                      let submitted = Engine.now engine in
                      Batcher.submit batchers.(d.Decision.server) ~work:work_s (fun () ->
                          note_segment s_server (Engine.now engine -. submitted);
                          Es_obs.Span.finish tracer sp;
                          after_server ())
                    end
                    else begin
                      let submitted = Engine.now engine in
                      Batcher.submit batchers.(d.Decision.server) ~work:work_s (fun () ->
                          note_segment s_server (Engine.now engine -. submitted);
                          after_server ())
                    end
                | None ->
                    let record_busy =
                      let share = Station.speed st.srv in
                      fun () ->
                        server_busy.(d.Decision.server) <-
                          server_busy.(d.Decision.server) +. (work_s /. Float.max share 1e-9)
                    in
                    submit rid s_server st.srv ~work:work_s ~restart:attempt_offload (fun () ->
                        record_busy ();
                        after_server ())
              end))
    end
  in
  (* A lower bound on this request's completion delay given the current
     per-station backlog: stage k's finish is max(own pipeline, stage k's
     backlog clearing) plus its service time.  Stations are dedicated per
     device and FIFO, so the bound is tight when one stage dominates; it
     ignores wireless fading (no RNG draws) and, under batching, the
     shared batcher's queue (only the service time is charged).  A request
     shed on this estimate provably cannot meet its budget. *)
  let estimate_completion dev_id (d : Decision.t) scale =
    let dev = cluster.Cluster.devices.(dev_id) in
    let st = stations.(dev_id) in
    let dev_work =
      Plan.device_time dev.Cluster.proc.Processor.perf d.Decision.plan *. scale
    in
    let f0 = Station.eta st.cpu ~work:dev_work in
    if not (Decision.offloads d) then f0
    else begin
      let link = dev.Cluster.link in
      let half_rtt = link.Link.rtt_s /. 2.0 in
      let plan = d.Decision.plan in
      let up_bits = 8.0 *. Plan.transfer_bytes plan in
      let down_bits = 8.0 *. Plan.result_bytes plan in
      let srv = cluster.Cluster.servers.(d.Decision.server) in
      let work_s = Plan.server_time srv.Cluster.sproc.Processor.perf plan *. scale in
      let f1 = Float.max f0 (Station.backlog_eta st.up) +. (up_bits /. Station.speed st.up) in
      let f2 = f1 +. half_rtt in
      let f3 =
        match options.batching with
        | Some _ -> f2 +. work_s
        | None -> Float.max f2 (Station.backlog_eta st.srv) +. (work_s /. Station.speed st.srv)
      in
      let f4 =
        Float.max f3 (Station.backlog_eta st.down) +. (down_bits /. Station.speed st.down)
      in
      f4 +. half_rtt
    end
  in
  (* The latency budget admission sheds against: the request's effective
     give-up point — timeout_factor × deadline when a timeout is armed, the
     bare deadline otherwise. *)
  let budget_factor =
    match options.resilience with
    | Some r when r.timeout_factor > 0.0 -> r.timeout_factor
    | _ -> 1.0
  in
  let process dev_id arrival =
    let d = current.(dev_id) in
    let dev = cluster.Cluster.devices.(dev_id) in
    let scale = work_scale ~device:dev_id scale_rng *. jitter () in
    (* Overload gates, in order: brownout plan swap, breaker, deadline-aware
       admission, rate limit.  All skipped (one branch) when the policy is
       off. *)
    let d, shed_now =
      if not overload_on then (d, false)
      else begin
        let d =
          if Decision.offloads d && brownout_active.(d.Decision.server) then begin
            match ov.Overload.brownout with
            | Some { Overload.mode = Overload.Local_only; _ } -> protect_local.(dev_id)
            | Some { Overload.mode = Overload.Min_server; _ } -> (
                match brownout_plan.(dev_id) with
                | Some p
                  when d.Decision.compute_share > 0.0 || Plan.srv_flops p <= 0.0 ->
                    { d with Decision.plan = p }
                | _ -> protect_local.(dev_id))
            | None -> d
          end
          else d
        in
        let d, shed_now =
          if
            Decision.offloads d
            && Array.length breakers > 0
            && not (Overload.Breaker.allow breakers.(d.Decision.server) ~now:arrival)
          then begin
            match ov.Overload.breaker with
            | Some { Overload.shed_on_open = true; _ } -> (d, true)
            | _ -> (protect_local.(dev_id), false)
          end
          else (d, false)
        in
        let shed_now =
          shed_now
          ||
          match ov.Overload.admission with
          | Some a ->
              estimate_completion dev_id d scale
              > a.Overload.slack *. budget_factor *. dev.Cluster.deadline
          | None -> false
        in
        let shed_now =
          shed_now
          || Decision.offloads d
             && Array.length buckets > 0
             && not
                  (Es_alloc.Admission.Token_bucket.try_take
                     buckets.(d.Decision.server)
                     ~now:arrival)
        in
        (d, shed_now)
      end
    in
    let rid = !n_req in
    ensure_cap d;
    incr n_req;
    (!req_state).(rid) <- 0;
    (!req_arrival).(rid) <- arrival;
    (!req_scale).(rid) <- scale;
    (!req_dev).(rid) <- dev_id;
    (!req_dec).(rid) <- d;
    (* One trace per request: a root "request" span whose child segments
       tile [arrival, completion] exactly — each stage is submitted
       synchronously at the previous stage's completion, so segment
       durations sum to the end-to-end latency. *)
    if tracing then
      (!req_span).(rid) <-
        Es_obs.Span.start tracer
          ~attrs:
            [
              ("device", Es_obs.Json.Int dev_id);
              ("server", Es_obs.Json.Int d.Decision.server);
            ]
          "request";
    note_arrival arrival;
    Metrics.on_arrival collector ~device:dev_id ~now:arrival;
    if shed_now then shed rid
    else begin
      (match options.resilience with
      | Some r when r.timeout_factor > 0.0 ->
          Engine.schedule engine (r.timeout_factor *. dev.Cluster.deadline) (fun () ->
              if not (resolved rid) then
                if r.local_fallback && not (fallback_started rid) then start_fallback rid
                else if not (fallback_started rid) then timed_out rid)
      | _ -> ());
      attempt_device rid
    end
  in
  (match arrivals with
  | Some trace ->
      Array.iter
        (fun (t, dev_id) ->
          if dev_id < 0 || dev_id >= nd then invalid_arg "Runner.run: bad device in trace";
          if t <= options.duration_s then
            Engine.schedule_at engine t (fun () -> process dev_id t))
        trace
  | None ->
      (* Per-device Poisson processes, generated event-recursively. *)
      let rngs = Array.init nd (fun _ -> Es_util.Prng.split arrival_rng) in
      let rec arrive dev_id t =
        if t <= options.duration_s then begin
          Engine.schedule_at engine t (fun () ->
              process dev_id t;
              let gap =
                Es_util.Prng.exponential rngs.(dev_id) cluster.Cluster.devices.(dev_id).Cluster.rate
              in
              arrive dev_id (t +. gap))
        end
      in
      Array.iteri
        (fun dev_id _ ->
          let first = Es_util.Prng.exponential rngs.(dev_id) cluster.Cluster.devices.(dev_id).Cluster.rate in
          arrive dev_id first)
        cluster.Cluster.devices);
  (* Arrivals stop at the horizon; the system then drains so every admitted
     request completes and horizon-edge requests are not unfairly counted as
     deadline misses. *)
  Engine.run engine;
  (match options.batching with
  | None -> ()
  | Some _ ->
      Array.iteri (fun s b -> server_busy.(s) <- Batcher.busy_time b) batchers);
  let report = Metrics.finalize collector ~server_busy ~duration:options.duration_s in
  let estats = Engine.stats engine in
  Option.iter
    (fun reg ->
      Metrics.record_to reg report;
      let set name v = Es_obs.Metric.set (Es_obs.Metric.gauge reg name) v in
      set "engine/events_processed" (float_of_int estats.Engine.events_processed);
      set "engine/max_pending" (float_of_int estats.Engine.max_pending))
    metrics;
  Option.iter (fun f -> f estats) on_stats;
  report
