(* Instruments are lock-free atomics so handle operations stay cheap under
   --jobs (counters/gauges are mutated concurrently by solver trajectories);
   the registry table itself is mutex-protected so get-or-create from
   multiple domains cannot corrupt the Hashtbl or register twice. *)

type counter = int Atomic.t
type gauge = float Atomic.t
type value = Counter of int | Gauge of float | Histo of Histogram.t

type instrument = I_counter of counter | I_gauge of gauge | I_histo of Histogram.t

type key = string * (string * string) list

type registry = { tbl : (key, instrument) Hashtbl.t; lock : Mutex.t }

let create () : registry = { tbl = Hashtbl.create 64; lock = Mutex.create () }

let normalize_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let get_or_create (reg : registry) name labels make =
  let key = (name, normalize_labels labels) in
  Mutex.lock reg.lock;
  let i =
    match Hashtbl.find_opt reg.tbl key with
    | Some i -> i
    | None ->
        let i = make () in
        Hashtbl.add reg.tbl key i;
        i
  in
  Mutex.unlock reg.lock;
  i

let counter reg ?(labels = []) name =
  match get_or_create reg name labels (fun () -> I_counter (Atomic.make 0)) with
  | I_counter c -> c
  | _ -> invalid_arg (Printf.sprintf "Metric.counter: %s is registered as another kind" name)

let gauge reg ?(labels = []) name =
  match get_or_create reg name labels (fun () -> I_gauge (Atomic.make 0.0)) with
  | I_gauge g -> g
  | _ -> invalid_arg (Printf.sprintf "Metric.gauge: %s is registered as another kind" name)

let histogram reg ?(labels = []) ?growth ?min_value ?buckets name =
  match
    get_or_create reg name labels (fun () ->
        I_histo (Histogram.create ?growth ?min_value ?buckets ()))
  with
  | I_histo h -> h
  | _ -> invalid_arg (Printf.sprintf "Metric.histogram: %s is registered as another kind" name)

let inc ?(by = 1) c = ignore (Atomic.fetch_and_add c by)
let counter_value c = Atomic.get c

let set g v = Atomic.set g v

let rec add g v =
  let old = Atomic.get g in
  if not (Atomic.compare_and_set g old (old +. v)) then add g v

let gauge_value g = Atomic.get g

type sample = { name : string; labels : (string * string) list; value : value }

let value_of_instrument = function
  | I_counter c -> Counter (Atomic.get c)
  | I_gauge g -> Gauge (Atomic.get g)
  | I_histo h -> Histo h

let snapshot reg =
  Mutex.lock reg.lock;
  let samples =
    (* es_lint: sorted — export order is fixed by the explicit sort below. *)
    Hashtbl.fold
      (fun (name, labels) i acc -> { name; labels; value = value_of_instrument i } :: acc)
      reg.tbl []
  in
  Mutex.unlock reg.lock;
  let cmp_label (k1, v1) (k2, v2) =
    match String.compare k1 k2 with 0 -> String.compare v1 v2 | c -> c
  in
  List.sort
    (fun a b ->
      match String.compare a.name b.name with
      | 0 -> List.compare cmp_label a.labels b.labels
      | c -> c)
    samples

let find reg ?(labels = []) name =
  Mutex.lock reg.lock;
  let v = Hashtbl.find_opt reg.tbl (name, normalize_labels labels) in
  Mutex.unlock reg.lock;
  Option.map value_of_instrument v
