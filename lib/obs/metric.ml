type counter = { mutable c : int }
type gauge = { mutable g : float }
type value = Counter of int | Gauge of float | Histo of Histogram.t

type instrument = I_counter of counter | I_gauge of gauge | I_histo of Histogram.t

type key = string * (string * string) list

type registry = (key, instrument) Hashtbl.t

let create () : registry = Hashtbl.create 64

let normalize_labels labels =
  List.sort (fun (a, _) (b, _) -> compare a b) labels

let get_or_create (reg : registry) name labels make =
  let key = (name, normalize_labels labels) in
  match Hashtbl.find_opt reg key with
  | Some i -> i
  | None ->
      let i = make () in
      Hashtbl.add reg key i;
      i

let counter reg ?(labels = []) name =
  match get_or_create reg name labels (fun () -> I_counter { c = 0 }) with
  | I_counter c -> c
  | _ -> invalid_arg (Printf.sprintf "Metric.counter: %s is registered as another kind" name)

let gauge reg ?(labels = []) name =
  match get_or_create reg name labels (fun () -> I_gauge { g = 0.0 }) with
  | I_gauge g -> g
  | _ -> invalid_arg (Printf.sprintf "Metric.gauge: %s is registered as another kind" name)

let histogram reg ?(labels = []) ?growth ?min_value ?buckets name =
  match
    get_or_create reg name labels (fun () ->
        I_histo (Histogram.create ?growth ?min_value ?buckets ()))
  with
  | I_histo h -> h
  | _ -> invalid_arg (Printf.sprintf "Metric.histogram: %s is registered as another kind" name)

let inc ?(by = 1) c = c.c <- c.c + by
let counter_value c = c.c

let set g v = g.g <- v
let add g v = g.g <- g.g +. v
let gauge_value g = g.g

type sample = { name : string; labels : (string * string) list; value : value }

let value_of_instrument = function
  | I_counter c -> Counter c.c
  | I_gauge g -> Gauge g.g
  | I_histo h -> Histo h

let snapshot reg =
  Hashtbl.fold
    (fun (name, labels) i acc -> { name; labels; value = value_of_instrument i } :: acc)
    reg []
  |> List.sort (fun a b -> compare (a.name, a.labels) (b.name, b.labels))

let find reg ?(labels = []) name =
  Option.map value_of_instrument
    (Hashtbl.find_opt reg (name, normalize_labels labels))
