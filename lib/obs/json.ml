type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------- printing ---------- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_repr x =
  (* Shortest representation that round-trips; %.17g always round-trips but
     is noisy, so try increasing precision. *)
  let s = Printf.sprintf "%.12g" x in
  let s = if float_of_string s = x then s else Printf.sprintf "%.17g" x in
  (* "1." or "1" are valid JSON numbers only with a fraction or as integers;
     %g can emit "1" for 1.0 which is fine, but never emits a bare trailing
     dot. "inf"/"nan" are handled by the caller. *)
  s

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x ->
      if Float.is_finite x then Buffer.add_string buf (float_repr x)
      else Buffer.add_string buf "null"
  | String s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

(* ---------- parsing ---------- *)

exception Parse_error of string

type state = { src : string; mutable pos : int }

let error st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))
let eof st = st.pos >= String.length st.src
let peek st = st.src.[st.pos]

let skip_ws st =
  while (not (eof st)) && (match peek st with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
    st.pos <- st.pos + 1
  done

let expect st c =
  if eof st || peek st <> c then error st (Printf.sprintf "expected %c" c);
  st.pos <- st.pos + 1

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else error st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if eof st then error st "unterminated string";
    match peek st with
    | '"' -> st.pos <- st.pos + 1
    | '\\' ->
        st.pos <- st.pos + 1;
        if eof st then error st "unterminated escape";
        let c = peek st in
        st.pos <- st.pos + 1;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
            if st.pos + 4 > String.length st.src then error st "truncated \\u escape";
            let hex = String.sub st.src st.pos 4 in
            st.pos <- st.pos + 4;
            let code =
              try int_of_string ("0x" ^ hex) with _ -> error st "bad \\u escape"
            in
            (* Telemetry strings are ASCII; encode the code point as UTF-8. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
        | _ -> error st "unknown escape");
        go ()
    | c ->
        Buffer.add_char buf c;
        st.pos <- st.pos + 1;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while (not (eof st)) && is_num_char (peek st) do
    st.pos <- st.pos + 1
  done;
  let s = String.sub st.src start (st.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> error st (Printf.sprintf "bad number %S" s))

let rec parse_value st =
  skip_ws st;
  if eof st then error st "unexpected end of input";
  match peek st with
  | 'n' -> literal st "null" Null
  | 't' -> literal st "true" (Bool true)
  | 'f' -> literal st "false" (Bool false)
  | '"' -> String (parse_string st)
  | '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if (not (eof st)) && peek st = ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          if eof st then error st "unterminated array";
          match peek st with
          | ',' ->
              st.pos <- st.pos + 1;
              items (v :: acc)
          | ']' ->
              st.pos <- st.pos + 1;
              List.rev (v :: acc)
          | _ -> error st "expected , or ]"
        in
        List (items [])
      end
  | '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if (not (eof st)) && peek st = '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          if eof st then error st "unterminated object";
          match peek st with
          | ',' ->
              st.pos <- st.pos + 1;
              members ((k, v) :: acc)
          | '}' ->
              st.pos <- st.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> error st "expected , or }"
        in
        Obj (members [])
      end
  | _ -> parse_number st

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if eof st then Ok v else Error (Printf.sprintf "trailing input at offset %d" st.pos)
  | exception Parse_error msg -> Error msg

(* ---------- accessors ---------- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let to_float_opt = function
  | Float x -> Some x
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_list_opt = function List xs -> Some xs | _ -> None
