type span_record = {
  id : int;
  parent : int option;
  trace : int;
  name : string;
  start_s : float;
  end_s : float;
  attrs : (string * Json.t) list;
}

let record_of_span (s : Span.t) =
  {
    id = s.Span.id;
    parent = s.Span.parent;
    trace = s.Span.trace;
    name = s.Span.name;
    start_s = s.Span.start_s;
    end_s = s.Span.end_s;
    attrs = s.Span.attrs;
  }

let span_record_to_json r =
  Json.Obj
    ([
       ("kind", Json.String "span");
       ("trace", Json.Int r.trace);
       ("id", Json.Int r.id);
     ]
    @ (match r.parent with Some p -> [ ("parent", Json.Int p) ] | None -> [])
    @ [
        ("name", Json.String r.name);
        ("start_s", Json.Float r.start_s);
        ("end_s", Json.Float r.end_s);
        ("duration_s", Json.Float (r.end_s -. r.start_s));
      ]
    @ if r.attrs = [] then [] else [ ("attrs", Json.Obj r.attrs) ])

let span_to_json s = span_record_to_json (record_of_span s)

let span_of_json j =
  let ( let* ) = Result.bind in
  let req name conv =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "span line: missing or ill-typed %S" name)
  in
  let* () =
    match Option.bind (Json.member "kind" j) Json.to_string_opt with
    | Some "span" -> Ok ()
    | _ -> Error "span line: kind is not \"span\""
  in
  let* trace = req "trace" Json.to_int_opt in
  let* id = req "id" Json.to_int_opt in
  let parent = Option.bind (Json.member "parent" j) Json.to_int_opt in
  let* name = req "name" Json.to_string_opt in
  let* start_s = req "start_s" Json.to_float_opt in
  let* end_s = req "end_s" Json.to_float_opt in
  let attrs =
    match Json.member "attrs" j with Some (Json.Obj kvs) -> kvs | _ -> []
  in
  Ok { id; parent; trace; name; start_s; end_s; attrs }

let labels_json labels = Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)

let sample_to_json (s : Metric.sample) =
  let base =
    [ ("kind", Json.String "metric"); ("name", Json.String s.Metric.name) ]
    @ if s.Metric.labels = [] then [] else [ ("labels", labels_json s.Metric.labels) ]
  in
  match s.Metric.value with
  | Metric.Counter c -> Json.Obj (base @ [ ("type", Json.String "counter"); ("value", Json.Int c) ])
  | Metric.Gauge g -> Json.Obj (base @ [ ("type", Json.String "gauge"); ("value", Json.Float g) ])
  | Metric.Histo h ->
      let q p = Json.Float (Histogram.quantile h p) in
      Json.Obj
        (base
        @ [
            ("type", Json.String "histogram");
            ("count", Json.Int (Histogram.count h));
            ("sum", Json.Float (Histogram.sum h));
            ("min", Json.Float (Histogram.min_observed h));
            ("max", Json.Float (Histogram.max_observed h));
            ("p50", q 50.0);
            ("p95", q 95.0);
            ("p99", q 99.0);
            ( "buckets",
              Json.List
                (List.map
                   (fun (lo, hi, c) ->
                     Json.Obj
                       [ ("lo", Json.Float lo); ("hi", Json.Float hi); ("count", Json.Int c) ])
                   (Histogram.nonempty_buckets h)) );
          ])

let write_jsonl_line oc j =
  output_string oc (Json.to_string j);
  output_char oc '\n'

let jsonl_span_sink oc : Span.sink = fun s -> write_jsonl_line oc (span_to_json s)

let metrics_to_jsonl oc reg =
  List.iter (fun s -> write_jsonl_line oc (sample_to_json s)) (Metric.snapshot reg)

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let labels_string labels =
  String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) labels)

let metrics_to_csv oc reg =
  output_string oc "name,labels,kind,count,value,sum,p50,p95,p99\n";
  List.iter
    (fun (s : Metric.sample) ->
      let name = csv_escape s.Metric.name in
      let labels = csv_escape (labels_string s.Metric.labels) in
      match s.Metric.value with
      | Metric.Counter c -> Printf.fprintf oc "%s,%s,counter,,%d,,,,\n" name labels c
      | Metric.Gauge g -> Printf.fprintf oc "%s,%s,gauge,,%.9g,,,,\n" name labels g
      | Metric.Histo h ->
          Printf.fprintf oc "%s,%s,histogram,%d,,%.9g,%.9g,%.9g,%.9g\n" name labels
            (Histogram.count h) (Histogram.sum h) (Histogram.quantile h 50.0)
            (Histogram.quantile h 95.0) (Histogram.quantile h 99.0))
    (Metric.snapshot reg)

let spans_to_csv oc spans =
  output_string oc "trace,id,parent,name,start_s,end_s,duration_s\n";
  List.iter
    (fun (s : Span.t) ->
      Printf.fprintf oc "%d,%d,%s,%s,%.9g,%.9g,%.9g\n" s.Span.trace s.Span.id
        (match s.Span.parent with Some p -> string_of_int p | None -> "")
        (csv_escape s.Span.name) s.Span.start_s s.Span.end_s (Span.duration_s s))
    spans

let with_file path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let read_jsonl path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go lineno acc =
        match input_line ic with
        | exception End_of_file -> Ok (List.rev acc)
        | "" -> go (lineno + 1) acc
        | line -> (
            match Json.of_string line with
            | Ok j -> go (lineno + 1) (j :: acc)
            | Error e -> Error (Printf.sprintf "%s:%d: %s" path lineno e))
      in
      go 1 [])
