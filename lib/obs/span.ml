type t = {
  id : int;
  parent : int option;
  trace : int;
  name : string;
  start_s : float;
  mutable end_s : float;
  mutable attrs : (string * Json.t) list;
  recording : bool;
}

type sink = t -> unit

type tracer = {
  clock : unit -> float;
  sink : sink;
  mutable next_id : int;
  live : bool;
}

let noop_sink : sink = ignore

let tracer ?(sink = noop_sink) ~clock () = { clock; sink; next_id = 1; live = true }

let dummy =
  {
    id = 0;
    parent = None;
    trace = 0;
    name = "";
    start_s = 0.0;
    end_s = 0.0;
    attrs = [];
    recording = false;
  }

let null = { clock = (fun () -> 0.0); sink = noop_sink; next_id = 0; live = false }

let enabled tr = tr.live

let start tr ?parent ?(attrs = []) name =
  if not tr.live then dummy
  else begin
    let id = tr.next_id in
    tr.next_id <- id + 1;
    {
      id;
      parent = Option.map (fun p -> p.id) parent;
      trace = (match parent with Some p -> p.trace | None -> id);
      name;
      start_s = tr.clock ();
      end_s = nan;
      attrs;
      recording = true;
    }
  end

let set_attr s k v = if s.recording then s.attrs <- s.attrs @ [ (k, v) ]

let finish tr ?(attrs = []) s =
  if s.recording then begin
    if attrs <> [] then s.attrs <- s.attrs @ attrs;
    s.end_s <- tr.clock ();
    tr.sink s
  end

let attr s k = List.assoc_opt k s.attrs

let duration_s s = s.end_s -. s.start_s

let memory_sink () =
  let acc = ref [] in
  ((fun s -> acc := s :: !acc), fun () -> List.rev !acc)

let locked_sink sink =
  let m = Mutex.create () in
  fun s ->
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () -> sink s)
