(** Facade: the handles instrumented code passes around.

    Instrumentation sites across the simulator, optimizer and allocator take
    an optional {!Metric.registry} and {!Span.sink}; this module supplies
    the disabled defaults and a convenience bundle for enabling everything
    at once from the CLI. *)

val noop : Span.sink
(** The global no-op sink: spans are dropped.  Combined with {!Span.null}
    this is the disabled path instrumented code compiles down to. *)

val wall_clock : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]) — the clock solvers use for
    spans and runtimes, as distinct from the simulator's virtual clock.
    Wall time (not process CPU time) so parallel solver trajectories are
    measured by elapsed time rather than by summed per-domain CPU. *)

type scope = {
  metrics : Metric.registry option;
  spans : Span.sink option;
}
(** What a caller wants recorded.  [disabled] is all-[None]. *)

val disabled : scope

val scoped : ?metrics:Metric.registry -> ?spans:Span.sink -> unit -> scope
