(** Facade: the handles instrumented code passes around.

    Instrumentation sites across the simulator, optimizer and allocator take
    an optional {!Metric.registry} and {!Span.sink}; this module supplies
    the disabled defaults and a convenience bundle for enabling everything
    at once from the CLI. *)

val noop : Span.sink
(** The global no-op sink: spans are dropped.  Combined with {!Span.null}
    this is the disabled path instrumented code compiles down to. *)

val wall_clock : unit -> float
(** Process CPU clock ({!Sys.time}) — the clock solvers use for spans, as
    distinct from the simulator's virtual clock. *)

type scope = {
  metrics : Metric.registry option;
  spans : Span.sink option;
}
(** What a caller wants recorded.  [disabled] is all-[None]. *)

val disabled : scope

val scoped : ?metrics:Metric.registry -> ?spans:Span.sink -> unit -> scope
