type t = {
  growth : float;
  log_growth : float;
  min_value : float;
  nbuckets : int;
  counts : int array;
  lock : Mutex.t;  (* serializes [observe]: instruments are shared across domains *)
  mutable underflow : int;
  mutable overflow : int;
  mutable n : int;
  mutable total : float;
  mutable lo : float;
  mutable hi : float;
}

let default_growth = Float.pow 2.0 0.125
let default_min_value = 1e-9
let default_buckets = 512

let create ?(growth = default_growth) ?(min_value = default_min_value)
    ?(buckets = default_buckets) () =
  if growth <= 1.0 then invalid_arg "Histogram.create: growth must exceed 1";
  if min_value <= 0.0 then invalid_arg "Histogram.create: min_value must be positive";
  if buckets < 1 then invalid_arg "Histogram.create: buckets must be positive";
  {
    growth;
    log_growth = log growth;
    min_value;
    nbuckets = buckets;
    counts = Array.make buckets 0;
    lock = Mutex.create ();
    underflow = 0;
    overflow = 0;
    n = 0;
    total = 0.0;
    lo = infinity;
    hi = neg_infinity;
  }

let bucket_index t v = int_of_float (Float.floor (log (v /. t.min_value) /. t.log_growth))

let observe t v =
  if not (Float.is_nan v) then begin
    Mutex.lock t.lock;
    t.n <- t.n + 1;
    t.total <- t.total +. v;
    if v < t.lo then t.lo <- v;
    if v > t.hi then t.hi <- v;
    if v < t.min_value then t.underflow <- t.underflow + 1
    else begin
      let i = bucket_index t v in
      if i >= t.nbuckets then t.overflow <- t.overflow + 1
      else t.counts.(Stdlib.max i 0) <- t.counts.(Stdlib.max i 0) + 1
    end;
    Mutex.unlock t.lock
  end

let count t = t.n
let sum t = t.total
let mean t = if t.n = 0 then nan else t.total /. float_of_int t.n
let min_observed t = t.lo
let max_observed t = t.hi

let lower_edge t i = t.min_value *. Float.pow t.growth (float_of_int i)

let quantile t p =
  if p < 0.0 || p > 100.0 then invalid_arg "Histogram.quantile: p outside [0,100]";
  if t.n = 0 then nan
  else begin
    (* Same rank convention as Stats.percentile: the p-quantile is the
       order statistic at rank p/100·(n−1), located by cumulative count. *)
    let target = p /. 100.0 *. float_of_int (t.n - 1) in
    let clamp x = Float.max t.lo (Float.min t.hi x) in
    let cum = ref (float_of_int t.underflow) in
    if target < !cum then clamp t.lo
    else begin
      let result = ref None in
      (try
         for i = 0 to t.nbuckets - 1 do
           let c = t.counts.(i) in
           if c > 0 then begin
             cum := !cum +. float_of_int c;
             if target < !cum then begin
               (* Geometric midpoint of the bucket. *)
               result := Some (lower_edge t i *. sqrt t.growth);
               raise Exit
             end
           end
         done
       with Exit -> ());
      match !result with Some v -> clamp v | None -> clamp t.hi
    end
  end

let bucket_width_at t v =
  if v < t.min_value then t.min_value
  else begin
    let i = Stdlib.min (bucket_index t v) (t.nbuckets - 1) in
    lower_edge t i *. (t.growth -. 1.0)
  end

let params t = (t.growth, t.min_value, t.nbuckets)

let merge a b =
  if params a <> params b then invalid_arg "Histogram.merge: parameter mismatch";
  let m = create ~growth:a.growth ~min_value:a.min_value ~buckets:a.nbuckets () in
  Array.iteri (fun i c -> m.counts.(i) <- c + b.counts.(i)) a.counts;
  m.underflow <- a.underflow + b.underflow;
  m.overflow <- a.overflow + b.overflow;
  m.n <- a.n + b.n;
  m.total <- a.total +. b.total;
  m.lo <- Float.min a.lo b.lo;
  m.hi <- Float.max a.hi b.hi;
  m

let nonempty_buckets t =
  let acc = ref [] in
  if t.overflow > 0 then acc := (lower_edge t t.nbuckets, infinity, t.overflow) :: !acc;
  for i = t.nbuckets - 1 downto 0 do
    if t.counts.(i) > 0 then acc := (lower_edge t i, lower_edge t (i + 1), t.counts.(i)) :: !acc
  done;
  if t.underflow > 0 then acc := (0.0, t.min_value, t.underflow) :: !acc;
  !acc
