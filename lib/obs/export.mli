(** Telemetry exporters: JSONL (one JSON object per line) and CSV.

    JSONL is the interchange format between the simulator/CLI and the bench
    harness: it streams (spans are written as they finish), appends cleanly,
    and every line is independently parseable.  CSV is provided for
    spreadsheet-style consumption of metric snapshots.

    Span lines carry ([kind="span"], ids, times, attrs); metric lines carry
    ([kind="metric"], instrument type, value — histograms additionally
    export count/sum/min/max, p50/p95/p99 and their populated buckets). *)

type span_record = {
  id : int;
  parent : int option;
  trace : int;
  name : string;
  start_s : float;
  end_s : float;
  attrs : (string * Json.t) list;
}
(** A plain (constructible) image of {!Span.t}, as recovered by the JSONL
    parser — {!Span.t} itself is private to its tracer. *)

val record_of_span : Span.t -> span_record

val span_to_json : Span.t -> Json.t
val span_record_to_json : span_record -> Json.t

val span_of_json : Json.t -> (span_record, string) result
(** Inverse of {!span_to_json} / {!span_record_to_json}. *)

val sample_to_json : Metric.sample -> Json.t

val write_jsonl_line : out_channel -> Json.t -> unit
(** One compact JSON rendering plus ['\n']. *)

val jsonl_span_sink : out_channel -> Span.sink
(** A streaming sink: each finished span becomes one JSONL line
    immediately (no buffering beyond the channel's). *)

val metrics_to_jsonl : out_channel -> Metric.registry -> unit
(** One line per registered instrument, snapshot order (sorted). *)

val metrics_to_csv : out_channel -> Metric.registry -> unit
(** Header then one row per instrument:
    [name,labels,kind,count,value,sum,p50,p95,p99] — non-applicable cells
    are empty. *)

val spans_to_csv : out_channel -> Span.t list -> unit
(** Header then one row per span: [trace,id,parent,name,start_s,end_s,duration_s]. *)

val with_file : string -> (out_channel -> 'a) -> 'a
(** Opens (truncating), runs, closes — also on exception. *)

val read_jsonl : string -> (Json.t list, string) result
(** Parse every non-empty line of a JSONL file; the first malformed line
    fails the whole read with its line number. *)
