(** Trace spans: named, attributed time intervals with parent/child nesting.

    A {!tracer} binds a clock source to a sink.  The clock is abstract so
    the same instrumentation serves both real processes ([Unix]-free
    [Sys.time] or any monotonic source the caller supplies) and the
    discrete-event simulator (where the clock is {!Es_sim.Engine.now} and
    spans measure *simulated* time).

    Finished spans are pushed to the sink immediately on {!finish}; the
    tracer retains nothing, so tracing arbitrarily long runs is
    constant-memory as long as the sink streams (e.g. the JSONL sink in
    {!Export}).

    The {!null} tracer is the disabled path: {!start} returns a shared
    non-recording dummy span and every other operation is a cheap no-op, so
    instrumentation can stay unconditional in hot code. *)

type t = private {
  id : int;  (** unique within a tracer, dense from 1 *)
  parent : int option;  (** id of the enclosing span *)
  trace : int;  (** id of the root span of this span's tree *)
  name : string;
  start_s : float;
  mutable end_s : float;  (** [nan] until finished *)
  mutable attrs : (string * Json.t) list;
  recording : bool;
}

type sink = t -> unit

type tracer

val noop_sink : sink

val tracer : ?sink:sink -> clock:(unit -> float) -> unit -> tracer
(** A live tracer.  [sink] defaults to {!noop_sink} (spans are still
    created and timed, useful when only attributes read back matter). *)

val null : tracer
(** The disabled tracer: spans returned by {!start} are a shared dummy with
    [recording = false]; {!finish} and {!set_attr} on them do nothing. *)

val enabled : tracer -> bool

val start : tracer -> ?parent:t -> ?attrs:(string * Json.t) list -> string -> t
(** [start tr name] opens a span at the clock's current time.  With
    [?parent] the span joins the parent's trace tree; without, it roots a
    new trace. *)

val finish : tracer -> ?attrs:(string * Json.t) list -> t -> unit
(** Stamps the end time and emits the span to the sink.  Extra [attrs] are
    appended first.  Finishing twice emits twice (callers own the
    discipline); finishing a non-recording span does nothing. *)

val set_attr : t -> string -> Json.t -> unit
(** No-op on non-recording spans. *)

val attr : t -> string -> Json.t option

val duration_s : t -> float
(** [end_s -. start_s]; [nan] while unfinished. *)

val memory_sink : unit -> sink * (unit -> t list)
(** An accumulating sink for tests: the second component returns all spans
    emitted so far, in emission (i.e. finish) order. *)

val locked_sink : sink -> sink
(** Serializes emissions behind a mutex, for sinks shared by tracers running
    on different domains (e.g. both multi-start trajectories streaming into
    one JSONL channel under [--jobs]).  Per-span order across domains is
    whatever completion order was; each emission is atomic. *)
