(** Minimal JSON tree, printer and parser.

    The observability exporters need machine-readable output without pulling
    an external JSON dependency into the build; this module implements the
    small subset the telemetry formats use.  Numbers are kept as OCaml
    [Int]/[Float] so counters round-trip exactly; non-finite floats print as
    [null] (JSON has no representation for them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering (no trailing newline), suitable for JSONL. *)

val of_string : string -> (t, string) result
(** Strict parser for the output of {!to_string} (and ordinary JSON: any
    whitespace between tokens, escape sequences, exponent notation).
    Trailing garbage after the top-level value is an error. *)

(** {1 Accessors} — convenience for tests and ingest code. *)

val member : string -> t -> t option
(** First binding of the key in an [Obj]; [None] otherwise. *)

val to_float_opt : t -> float option
(** [Int] and [Float] both coerce. *)

val to_int_opt : t -> int option
val to_string_opt : t -> string option
val to_list_opt : t -> t list option
