(** Metric registry: named counters, gauges and histograms.

    Instruments are registered get-or-create by [(name, labels)], so
    instrumentation sites can be written declaratively — asking for
    ["requests_dropped" (reason=queue_full)] twice yields the same counter.
    Hot paths should resolve their instrument handle once and hold on to it;
    the handle operations ({!inc}, {!set}, {!Histogram.observe}) are plain
    field updates with no lookup.

    Naming convention (documented in DESIGN.md): lower_snake_case with a
    unit suffix where applicable ([request_latency_s], [queue_depth]),
    namespaced by subsystem with a [/] ([annealing/accepted]).  Labels are
    sorted at registration, so label order at call sites is irrelevant.

    Thread-safety: a registry may be shared across domains (parallel solver
    trajectories report into one registry under [--jobs]).  Registration is
    mutex-protected; counters and gauges are atomics, so {!inc} and {!add}
    are linearizable; {!Histogram.observe} serializes internally. *)

type registry

type counter
type gauge

val create : unit -> registry

val counter : registry -> ?labels:(string * string) list -> string -> counter
val gauge : registry -> ?labels:(string * string) list -> string -> gauge

val histogram :
  registry ->
  ?labels:(string * string) list ->
  ?growth:float ->
  ?min_value:float ->
  ?buckets:int ->
  string ->
  Histogram.t
(** Histogram parameters are taken from the first registration; later
    registrations of the same [(name, labels)] return the existing
    instrument regardless of the parameters passed. *)

val inc : ?by:int -> counter -> unit
val counter_value : counter -> int

val set : gauge -> float -> unit
val add : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Introspection and export} *)

type value = Counter of int | Gauge of float | Histo of Histogram.t

type sample = { name : string; labels : (string * string) list; value : value }

val snapshot : registry -> sample list
(** All registered instruments, sorted by [(name, labels)] for
    deterministic export. *)

val find : registry -> ?labels:(string * string) list -> string -> value option
(** Current value of one instrument, for tests. *)
