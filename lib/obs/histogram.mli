(** Constant-memory log-bucketed histogram.

    Bucket [i] covers the geometric interval
    [[min_value·growth^i, min_value·growth^(i+1))], so relative resolution
    is uniform across the whole dynamic range: with the default growth
    factor [2^(1/8) ≈ 1.09] any quantile is recovered to within ~9% of its
    true value, from microseconds to hours, in a fixed 512-slot array.

    Histograms with identical parameters merge exactly (bucket-wise sum),
    which is what lets per-device or per-shard telemetry be combined into a
    cluster-wide view without keeping raw samples.  Quantile queries follow
    the same rank convention as {!Es_util.Stats.percentile} ([p] in
    [0,100]), so simulator reports and exported telemetry agree to within
    one bucket width — a property the test suite pins. *)

type t

val create : ?growth:float -> ?min_value:float -> ?buckets:int -> unit -> t
(** [create ()] uses growth [2^(1/8)], [min_value 1e-9] and [512] buckets
    (spanning > 2^63 of dynamic range).  Values below [min_value]
    (including zero and negatives) land in a dedicated underflow bucket;
    values beyond the last bucket in an overflow bucket.
    @raise Invalid_argument if [growth <= 1], [min_value <= 0] or
    [buckets < 1]. *)

val observe : t -> float -> unit
(** NaN observations are ignored. *)

val count : t -> int

val sum : t -> float

val mean : t -> float
(** [nan] when empty. *)

val min_observed : t -> float
(** Exact smallest observation; [infinity] when empty. *)

val max_observed : t -> float
(** Exact largest observation; [neg_infinity] when empty. *)

val quantile : t -> float -> float
(** [quantile h p] with [p] in [0,100]: the geometric midpoint of the
    bucket holding the rank-[p] observation, clamped to the exact observed
    min/max.  Monotone non-decreasing in [p].  [nan] when empty.
    @raise Invalid_argument when [p] is outside [0,100]. *)

val bucket_width_at : t -> float -> float
(** Width of the bucket that would hold value [v] — the resolution of any
    quantile answer near [v].  Used by tests to assert "within one bucket". *)

val merge : t -> t -> t
(** Fresh histogram equivalent to having observed both streams.
    @raise Invalid_argument when the two histograms' parameters differ. *)

val nonempty_buckets : t -> (float * float * int) list
(** [(lower, upper, count)] per populated bucket in increasing value order,
    for exporters.  The underflow bucket reports [(0., min_value, n)], the
    overflow bucket [(upper_bound, infinity, n)]. *)

val params : t -> float * float * int
(** [(growth, min_value, buckets)] — exported so telemetry consumers can
    reconstruct bucket boundaries. *)
