let noop = Span.noop_sink

let wall_clock () = Sys.time ()

type scope = {
  metrics : Metric.registry option;
  spans : Span.sink option;
}

let disabled = { metrics = None; spans = None }

let scoped ?metrics ?spans () = { metrics; spans }
