let noop = Span.noop_sink

(* Wall clock, not [Sys.time]: process CPU time double-counts across domains
   and would misreport solver runtimes the moment multi-start runs under
   --jobs. *)
let wall_clock () = Unix.gettimeofday ()

type scope = {
  metrics : Metric.registry option;
  spans : Span.sink option;
}

let disabled = { metrics = None; spans = None }

let scoped ?metrics ?spans () = { metrics; spans }
