(** Time-varying load profiles: global multipliers applied to every
    device's nominal request rate. *)

type t = float -> float

val constant : float -> t

val step_burst : start_s:float -> stop_s:float -> factor:float -> t
(** 1.0 outside the burst window, [factor] inside — the F10 flash-crowd
    shape. *)

val diurnal : period_s:float -> amplitude:float -> t
(** 1 + amplitude·sin(2πt/period), floored at 0.05. *)

val square_wave : period_s:float -> high:float -> low:float -> t
(** Alternates [high] and [low] every half period (an MMPP-like two-state
    modulated load). *)

val ramp : until_s:float -> peak:float -> t
(** Linear climb from 1.0 to [peak] over [0, until_s], flat after. *)

val flash_crowd : at_s:float -> rise_s:float -> decay_s:float -> factor:float -> t
(** 1.0 until [at_s], a linear surge to [factor] over [rise_s], then an
    exponential relaxation back toward 1.0 with time constant [decay_s] —
    the asymmetric spike of a real flash crowd, unlike the rectangular
    {!step_burst}. *)

val product : t -> t -> t
(** Pointwise product, e.g. a diurnal baseline carrying a flash crowd. *)

val scale : float -> t -> t
(** Constant multiplier on a profile — e.g. [scale 3.0] turns any shape
    into a 3×-capacity stress variant. *)

val sustained_flash : at_s:float -> rise_s:float -> factor:float -> t
(** A flash crowd that never relaxes: 1.0 until [at_s], a linear surge to
    [factor] over [rise_s], then flat at [factor] — the sustained-overload
    shape the overload-protection bench sheds against. *)
