open Es_edge

type archetype = {
  name : string;
  proc : Processor.t;
  link : Link.t;
  model : Es_dnn.Graph.t;
  model_name : string;
  rate : float;
  deadline : float;
  accuracy_floor : float;
}

let check_spec (spec : Scenario.spec) =
  if spec.Scenario.device_mix = [] then invalid_arg "Heavy: empty device mix";
  if spec.Scenario.model_names = [] then invalid_arg "Heavy: no models";
  let check_range what (lo, hi) =
    if lo > hi || lo <= 0.0 then invalid_arg (Printf.sprintf "Heavy: bad %s range" what)
  in
  check_range "rate" spec.Scenario.rate_range;
  check_range "deadline" spec.Scenario.deadline_range

(* Same per-archetype draw sequence as Scenario.build's per-device one, so
   an archetype is exactly "a device the spec could have generated". *)
let draw_archetypes rng k (spec : Scenario.spec) =
  let graphs = Hashtbl.create 8 in
  let graph_of name =
    match Hashtbl.find_opt graphs name with
    | Some g -> g
    | None ->
        let g = Es_dnn.Zoo.by_name name in
        Hashtbl.add graphs name g;
        g
  in
  let mix =
    Array.of_list (List.map (fun (p, l, w) -> ((p, l), w)) spec.Scenario.device_mix)
  in
  let models = Array.of_list spec.Scenario.model_names in
  Array.init k (fun j ->
      let proc, link = Es_util.Prng.weighted_choice rng mix in
      let model_name = models.(Es_util.Prng.int rng (Array.length models)) in
      let model = graph_of model_name in
      let lo, hi = spec.Scenario.rate_range in
      let rate = Es_util.Prng.float_in rng lo hi in
      let lo, hi = spec.Scenario.deadline_range in
      let deadline = Es_util.Prng.float_in rng lo hi in
      let slo, shi = spec.Scenario.accuracy_slack in
      let full =
        (Es_surgery.Accuracy.profile_of_model model_name).Es_surgery.Accuracy.full_accuracy
      in
      let accuracy_floor = full *. Es_util.Prng.float_in rng slo shi in
      {
        name = Printf.sprintf "arch%d-%s" j model_name;
        proc;
        link;
        model;
        model_name;
        rate;
        deadline;
        accuracy_floor;
      })

let archetypes ?(k = 4) spec =
  if k < 1 then invalid_arg "Heavy.archetypes: k must be >= 1";
  check_spec spec;
  draw_archetypes (Es_util.Prng.create spec.Scenario.seed) k spec

let population ?(k = 4) ?(rate_spread = 0.1) ?(devices_per_server = 40) ~devices spec =
  if devices < 1 then invalid_arg "Heavy.population: devices must be >= 1";
  if k < 1 then invalid_arg "Heavy.population: k must be >= 1";
  if not (Float.is_finite rate_spread) || rate_spread < 0.0 then
    invalid_arg "Heavy.population: rate_spread must be finite and >= 0";
  if devices_per_server < 1 then invalid_arg "Heavy.population: devices_per_server must be >= 1";
  check_spec spec;
  let rng = Es_util.Prng.create spec.Scenario.seed in
  let archs = draw_archetypes rng k spec in
  (* mu = -sigma^2/2 keeps the jitter mean-preserving, so the population's
     aggregate rate stays ~devices x the archetype mean however wide the
     spread. *)
  let jitter () =
    if rate_spread <= 0.0 then 1.0
    else
      Es_util.Prng.lognormal rng ~mu:(-.rate_spread *. rate_spread /. 2.0) ~sigma:rate_spread
  in
  let device_list =
    List.init devices (fun i ->
        let a = archs.(Es_util.Prng.int rng k) in
        Cluster.device ~id:i ~proc:a.proc ~link:a.link ~model:a.model
          ~rate:(a.rate *. jitter ()) ~deadline:a.deadline ~accuracy_floor:a.accuracy_floor ())
  in
  let base = Array.of_list spec.Scenario.servers in
  if Array.length base = 0 then invalid_arg "Heavy.population: spec has no servers";
  let n_srv =
    max (Array.length base) ((devices + devices_per_server - 1) / devices_per_server)
  in
  let servers =
    List.init n_srv (fun i ->
        let proc, mbps = base.(i mod Array.length base) in
        Cluster.server ~id:i ~proc ~ap_bandwidth_mbps:mbps ())
  in
  Cluster.make ~devices:device_list ~servers

let trace ~seed ~duration_s ~profile cluster =
  let rng = Es_util.Prng.create seed in
  (* Flat time/device arrays grown by doubling; events land unsorted
     (device-major) and a final index sort restores time order — same
     result as Traces.piecewise's list build, without a cons + tuple per
     event. *)
  let cap = ref 1024 in
  let times = ref (Array.make !cap 0.0) in
  let devs = ref (Array.make !cap 0) in
  let n = ref 0 in
  let push t d =
    if !n >= !cap then begin
      let ncap = 2 * !cap in
      let ts = Array.make ncap 0.0 and ds = Array.make ncap 0 in
      Array.blit !times 0 ts 0 !cap;
      Array.blit !devs 0 ds 0 !cap;
      times := ts;
      devs := ds;
      cap := ncap
    end;
    (!times).(!n) <- t;
    (!devs).(!n) <- d;
    incr n
  in
  Array.iter
    (fun (dev : Cluster.device) ->
      let dev_rng = Es_util.Prng.split rng in
      let rec go t =
        if t < duration_s then begin
          let rate = dev.Cluster.rate *. Float.max 1e-9 (profile t) in
          let t' = t +. Es_util.Prng.exponential dev_rng rate in
          if t' < duration_s then begin
            push t' dev.Cluster.dev_id;
            go t'
          end
        end
      in
      go 0.0)
    cluster.Cluster.devices;
  let times = !times and devs = !devs in
  let idx = Array.init !n (fun i -> i) in
  Array.sort
    (fun i j ->
      match Float.compare times.(i) times.(j) with
      | 0 -> Int.compare devs.(i) devs.(j)
      | c -> c)
    idx;
  Array.map (fun i -> (times.(i), devs.(i))) idx

let profile_names = [ "constant"; "diurnal"; "flash"; "diurnal-flash"; "overload" ]

let profile_by_name ~duration_s name =
  let diurnal () = Profiles.diurnal ~period_s:duration_s ~amplitude:0.6 in
  let flash () =
    Profiles.flash_crowd ~at_s:(0.5 *. duration_s) ~rise_s:(0.05 *. duration_s)
      ~decay_s:(0.1 *. duration_s) ~factor:8.0
  in
  match name with
  | "constant" -> Profiles.constant 1.0
  | "diurnal" -> diurnal ()
  | "flash" -> flash ()
  | "diurnal-flash" -> Profiles.product (diurnal ()) (flash ())
  | "overload" ->
      (* A flash crowd that never relaxes: 3x nominal from the quarter mark
         to the end of the run — the overload-protection stress shape. *)
      Profiles.sustained_flash ~at_s:(0.25 *. duration_s) ~rise_s:(0.05 *. duration_s)
        ~factor:3.0
  | _ -> raise Not_found
