open Es_edge

let event_compare (t1, d1) (t2, d2) =
  match Float.compare t1 t2 with 0 -> Int.compare d1 d2 | c -> c

let piecewise ~seed ~duration_s ~rate_profile cluster =
  let rng = Es_util.Prng.create seed in
  let events = ref [] in
  Array.iter
    (fun (dev : Cluster.device) ->
      let dev_rng = Es_util.Prng.split rng in
      let rec go t =
        if t < duration_s then begin
          let rate = dev.Cluster.rate *. Float.max 1e-9 (rate_profile t) in
          let t' = t +. Es_util.Prng.exponential dev_rng rate in
          if t' < duration_s then begin
            events := (t', dev.Cluster.dev_id) :: !events;
            go t'
          end
        end
      in
      go 0.0)
    cluster.Cluster.devices;
  let arr = Array.of_list !events in
  Array.sort event_compare arr;
  arr

let poisson ~seed ~duration_s cluster =
  piecewise ~seed ~duration_s ~rate_profile:(Profiles.constant 1.0) cluster

let merge traces =
  let arr = Array.concat traces in
  Array.sort event_compare arr;
  arr

let save_csv trace ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "time_s,device\n";
      Array.iter (fun (t, d) -> Printf.fprintf oc "%.9f,%d\n" t d) trace)

let load_csv ~path =
  match open_in path with
  | exception Sys_error m -> Error m
  | ic ->
      let result =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () ->
            let events = ref [] in
            let line_no = ref 0 in
            let error = ref None in
            (try
               while !error = None do
                 let line = input_line ic in
                 incr line_no;
                 let line = String.trim line in
                 if line <> "" && line <> "time_s,device" then begin
                   match String.split_on_char ',' line with
                   | [ t; d ] -> (
                       match (float_of_string_opt t, int_of_string_opt d) with
                       | Some t, Some d when t >= 0.0 && d >= 0 ->
                           events := (t, d) :: !events
                       | _ ->
                           error := Some (Printf.sprintf "line %d: bad event %S" !line_no line))
                   | _ -> error := Some (Printf.sprintf "line %d: expected time,device" !line_no)
                 end
               done
             with End_of_file -> ());
            match !error with
            | Some e -> Error e
            | None ->
                let arr = Array.of_list !events in
                Array.sort event_compare arr;
                Ok arr)
      in
      result
