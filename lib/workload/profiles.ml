type t = float -> float

let constant c _ = c

let step_burst ~start_s ~stop_s ~factor t =
  if t >= start_s && t < stop_s then factor else 1.0

let diurnal ~period_s ~amplitude t =
  Float.max 0.05 (1.0 +. (amplitude *. sin (2.0 *. Float.pi *. t /. period_s)))

let square_wave ~period_s ~high ~low t =
  let phase = Float.rem t period_s /. period_s in
  if phase < 0.5 then high else low

let ramp ~until_s ~peak t =
  if t >= until_s then peak else 1.0 +. ((peak -. 1.0) *. t /. until_s)

let flash_crowd ~at_s ~rise_s ~decay_s ~factor t =
  if t < at_s then 1.0
  else if t < at_s +. rise_s then
    1.0 +. ((factor -. 1.0) *. (t -. at_s) /. Float.max 1e-9 rise_s)
  else 1.0 +. ((factor -. 1.0) *. exp (-.(t -. at_s -. rise_s) /. Float.max 1e-9 decay_s))

let product f g t = f t *. g t

let scale k f t = k *. f t

let sustained_flash ~at_s ~rise_s ~factor t =
  if t < at_s then 1.0
  else if t < at_s +. rise_s then
    1.0 +. ((factor -. 1.0) *. (t -. at_s) /. Float.max 1e-9 rise_s)
  else factor
