(** Heavy-traffic workload family: device populations scaled to 10⁴–10⁵
    nodes and the arrival traces that drive million-request runs.

    A {!Scenario.spec} describes a population statistically but
    {!Es_edge.Scenario.build} draws every device independently — fine for
    tens of devices, wasteful for tens of thousands.  This module instead
    samples a handful of device {e archetypes} from the spec and stamps the
    population out of them: every device of an archetype shares its model
    graph (one {!Es_dnn.Graph.t} per archetype, not per device) and varies
    only by a log-normal rate jitter, which is also how real fleets look —
    a few hardware/model SKUs, correlated behavior within each.

    Everything is deterministic from the spec's seed. *)

type archetype = {
  name : string;
  proc : Es_edge.Processor.t;
  link : Es_edge.Link.t;
  model : Es_dnn.Graph.t;
  model_name : string;
  rate : float;  (** nominal req/s before per-device jitter *)
  deadline : float;
  accuracy_floor : float;
}

val archetypes : ?k:int -> Es_edge.Scenario.spec -> archetype array
(** [k] (default 4) archetypes drawn from the spec's device mix, model
    list and rate/deadline/slack ranges, deterministically from its seed.
    @raise Invalid_argument when [k < 1] or the spec is malformed. *)

val population :
  ?k:int ->
  ?rate_spread:float ->
  ?devices_per_server:int ->
  devices:int ->
  Es_edge.Scenario.spec ->
  Es_edge.Cluster.t
(** [population ~devices spec] builds a [devices]-strong cluster by
    sampling an archetype per device and jittering its rate log-normally
    with sigma [rate_spread] (default 0.1; mean-preserving).  The server
    fleet is the spec's server list cycled up to
    [devices / devices_per_server] (default 40) servers, so capacity
    scales with the population.
    @raise Invalid_argument when [devices < 1], [rate_spread < 0] or
    [devices_per_server < 1]. *)

val trace :
  seed:int ->
  duration_s:float ->
  profile:Profiles.t ->
  Es_edge.Cluster.t ->
  (float * int) array
(** Non-stationary Poisson arrivals under a load profile — draw-for-draw
    identical to {!Traces.piecewise} (a property the test suite pins), but
    generated into flat arrays with an index sort, so building a
    multi-million-event trace allocates O(1) per event instead of a list
    cell plus a tuple. *)

val profile_by_name : duration_s:float -> string -> Profiles.t
(** Named load shapes scaled to the run horizon:
    ["constant"] — flat 1.0;
    ["diurnal"] — one sinusoidal day compressed into the horizon
    (amplitude 0.6);
    ["flash"] — a flash crowd at mid-run, 8× peak, 5% rise / 10% decay of
    the horizon;
    ["diurnal-flash"] — the product of the two;
    ["overload"] — a sustained flash crowd: 3× nominal from the quarter
    mark to the end of the run (the overload-protection stress shape).
    @raise Not_found for any other name. *)

val profile_names : string list
