(** Rendering: report lines, the per-rule summary table and JSONL export.
    All output is a pure function of the (already sorted) finding lists. *)

val render_findings : Finding.t list -> string
(** One [file:line:col [rule] message] line per finding. *)

val render_summary : Engine.result -> string
(** Per-rule table of fired/suppressed counts plus a one-line verdict. *)

val jsonl : Finding.t list -> string
(** One JSON object per line (see {!Finding.to_jsonl}). *)

val write_jsonl : path:string -> Finding.t list -> unit
