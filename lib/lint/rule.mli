(** Rule identifiers for the es_lint determinism & domain-safety pass.

    Per-file rules (phase 1, a single parsetree walk):

    - {b D1} nondeterminism sources: [Sys.time], [Unix.gettimeofday]/[time]/
      [localtime]/[gmtime], [Random.self_init] and every other global-[Random]
      call ([Random.State] is fine) anywhere except the designated clock
      module ([lib/obs/obs.ml]) and [bench/].
    - {b D2} unordered iteration: [Hashtbl.iter]/[fold]/[to_seq]* call sites,
      unless the line (or the line above) carries an
      [(* es_lint: sorted *)] comment proving a downstream sort.
    - {b D3} polymorphic compare: bare [compare] (or [Stdlib.compare]) in a
      module whose type declarations mention [float] — NaN and representation
      issues make the polymorphic version a determinism hazard there.
    - {b D4} mutable toplevel state: module-level [ref]/[Hashtbl.create]/
      [Buffer.create]/[Queue.create]/[Stack.create] bindings and record
      literals with mutable fields, unless annotated
      [[@@es_lint.guarded "<mutex>"]] where [<mutex>] names a [Mutex.t] —
      a toplevel binding, a [name.field] path to a [Mutex.t] record field,
      a toplevel alias of either, or (resolved interprocedurally) a
      [Module.name] path into another linted unit.
    - {b D5} interface coverage: every [lib/**/*.ml] and [bin/**/*.ml] must
      have a sibling [.mli].
    - {b D6} hot-path allocation: inside a file tagged [(* es_lint: hot *)]
      (the zero-allocation numeric kernels, DESIGN.md §15), [List.map]/
      [List.init] call sites and closure literals in argument position,
      unless the line (or the line above) carries an
      [(* es_lint: cold *)] comment marking a deliberate cold path
      (reference oracles, API-shaped outputs).  Files without the hot tag
      are never checked.

    Interprocedural rules (phase 2, over the fixpointed whole-program
    call-graph effect summaries — DESIGN.md §16):

    - {b D7} domain-escape race: a closure literal or function reference
      shipped to [Es_util.Par.parallel_map]/[parallel_map_array]/
      [parallel_iter]/[both] or [Domain.spawn] whose transitive effect set
      mutates unguarded toplevel state, or which assigns a mutable local
      captured from the enclosing scope.
    - {b D8} transitive nondeterminism: a call site whose callee's
      transitive effect set reads a D1 source outside the clock module —
      D1 propagated through the call graph so wrappers fire at every
      reachable call site.
    - {b D9} lock-order consistency: the global acquisition-order graph
      over named (module-level) mutexes contains a cycle; every edge of
      the cycle is a finding at its acquisition witness.
    - {b D10} D6 gone interprocedural: a call site in a hot-tagged file
      whose callee transitively allocates ([List.map]/[List.init]
      anywhere in its call tree), suppressible like D6 with
      [(* es_lint: cold *)].

    - {b parse} is the pseudo-rule for files the parser rejects. *)

type t = Parse_error | D1 | D2 | D3 | D4 | D5 | D6 | D7 | D8 | D9 | D10

val all : t list
(** All rules, in presentation order. *)

val id : t -> string
(** Stable short id: ["parse"], ["D1"] … ["D10"]. *)

val describe : t -> string
(** One-line human description, used in the summary table. *)

val of_id : string -> t option
(** Case-insensitive inverse of {!id}. *)

val compare : t -> t -> int

val interprocedural : t -> bool
(** Whether the rule needs the phase-2 whole-program analysis (D7–D10). *)
