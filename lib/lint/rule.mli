(** Rule identifiers for the es_lint determinism & domain-safety pass.

    - {b D1} nondeterminism sources: [Sys.time], [Unix.gettimeofday]/[time]/
      [localtime]/[gmtime], [Random.self_init] and every other global-[Random]
      call ([Random.State] is fine) anywhere except the designated clock
      module ([lib/obs/obs.ml]) and [bench/].
    - {b D2} unordered iteration: [Hashtbl.iter]/[fold]/[to_seq]* call sites,
      unless the line (or the line above) carries an
      [(* es_lint: sorted *)] comment proving a downstream sort.
    - {b D3} polymorphic compare: bare [compare] (or [Stdlib.compare]) in a
      module whose type declarations mention [float] — NaN and representation
      issues make the polymorphic version a determinism hazard there.
    - {b D4} mutable toplevel state: module-level [ref]/[Hashtbl.create]/
      [Buffer.create]/[Queue.create]/[Stack.create] bindings and record
      literals with mutable fields, unless annotated
      [[@@es_lint.guarded "<mutex>"]] where [<mutex>] names a [Mutex.t] in
      the same file (a toplevel binding or a [name.field] path to a
      [Mutex.t] record field).
    - {b D5} interface coverage: every [lib/**/*.ml] and [bin/**/*.ml] must
      have a sibling [.mli].
    - {b D6} hot-path allocation: inside a file tagged [(* es_lint: hot *)]
      (the zero-allocation numeric kernels, DESIGN.md §15), [List.map]/
      [List.init] call sites and closure literals in argument position,
      unless the line (or the line above) carries an
      [(* es_lint: cold *)] comment marking a deliberate cold path
      (reference oracles, API-shaped outputs).  Files without the hot tag
      are never checked.
    - {b parse} is the pseudo-rule for files the parser rejects. *)

type t = Parse_error | D1 | D2 | D3 | D4 | D5 | D6

val all : t list
(** All rules, in presentation order. *)

val id : t -> string
(** Stable short id: ["parse"], ["D1"] … ["D5"]. *)

val describe : t -> string
(** One-line human description, used in the summary table. *)

val of_id : string -> t option
(** Case-insensitive inverse of {!id}. *)

val compare : t -> t -> int
