(* Phase 2 of the interprocedural analysis: resolve the per-unit summaries
   ({!Summary}) into a module-qualified whole-program call graph, fixpoint
   the effect lattice over its strongly connected components, and fire the
   interprocedural rules:

   - D7: a closure or function reference shipped to a [Par]/[Domain]
     fan-out sink whose transitive effects mutate unguarded toplevel state
     (or assign a captured local);
   - D8: a call site whose callee transitively reads a D1 nondeterminism
     source;
   - D9: a cycle in the global lock-acquisition-order graph over named
     mutexes;
   - D10: a call site in a hot-tagged file whose callee transitively
     allocates.

   Cross-unit [@@es_lint.guarded "Module.path"] guards (deferred by phase
   1 as pending guards) are verified here too.

   Two propagation passes share one Tarjan pass each: clock/alloc/race
   effects flow over every edge, while lock sets flow over synchronous
   call edges only — the parent → par-site edges are asynchronous, so a
   lock held around [Domain.spawn] is NOT held inside the spawned closure
   and must not manufacture self-deadlock cycles.

   Like phase 1 this module is Hashtbl-free: nodes live in sorted
   [Map.Make(String)]s, every adjacency list is sorted, and witness sets
   are canonically deduplicated, so the computed effects — and therefore
   the findings — are a pure function of the summary set. *)

module SMap = Map.Make (String)
module SSet = Set.Make (String)

type witness = { w_what : string; w_file : string; w_line : int }

type eff = { clock : witness list; alloc : witness list; races : witness list }

let empty_eff = { clock = []; alloc = []; races = [] }

(* Canonical witness union: sorted, one witness per distinct [w_what]
   (the smallest (file, line) wins), so joins are order-independent. *)
let merge_w a b =
  let rec dedup = function
    | x :: (y :: _ as rest) when x.w_what = y.w_what -> dedup (x :: List.tl rest)
    | x :: rest -> x :: dedup rest
    | [] -> []
  in
  dedup (List.sort Stdlib.compare (a @ b))

let join_eff a b =
  { clock = merge_w a.clock b.clock; alloc = merge_w a.alloc b.alloc; races = merge_w a.races b.races }

type node = {
  nd_file : string;
  nd_unit : string;
  nd_fn : string;
  nd_sync : string list;  (* resolved callee node ids, sorted *)
  nd_async : string list;  (* par-site nodes reachable from this fn, sorted *)
  nd_direct : eff;
  nd_direct_locks : SSet.t;
}

type lock_edge = { le_held : string; le_acq : string; le_file : string; le_line : int; le_col : int }

type t = {
  sums : Summary.t list;  (* sorted by file *)
  units : Summary.t list SMap.t;
  nodes : node SMap.t;
  eff_all : eff SMap.t;  (* transitive clock/alloc/races (all edges) *)
  eff_locks : SSet.t SMap.t;  (* transitive lock sets (sync edges only) *)
  lock_edges : lock_edge list;  (* deduped, sorted *)
  lock_adj : string list SMap.t;
  lock_cyclic : SSet.t;  (* lock ids inside a cyclic SCC *)
}

let node_id file fn = file ^ "#" ^ fn

let is_module_seg s = String.length s > 0 && s.[0] >= 'A' && s.[0] <= 'Z'

(* ------------------------------------------------------------------ *)
(* Tarjan SCC: returns components in reverse topological order of the
   condensation (every component is emitted after all components it can
   reach), which is exactly the evaluation order the fixpoint wants. *)

let sccs (adj_of : string -> string list) (roots : string list) =
  let index = ref SMap.empty in
  let low = ref SMap.empty in
  let on_stack = ref SSet.empty in
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let rec strong v =
    index := SMap.add v !counter !index;
    low := SMap.add v !counter !low;
    incr counter;
    stack := v :: !stack;
    on_stack := SSet.add v !on_stack;
    List.iter
      (fun w ->
        if not (SMap.mem w !index) then begin
          strong w;
          low := SMap.add v (min (SMap.find v !low) (SMap.find w !low)) !low
        end
        else if SSet.mem w !on_stack then
          low := SMap.add v (min (SMap.find v !low) (SMap.find w !index)) !low)
      (adj_of v);
    if SMap.find v !low = SMap.find v !index then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            on_stack := SSet.remove w !on_stack;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      out := pop [] :: !out
    end
  in
  List.iter (fun v -> if not (SMap.mem v !index) then strong v) roots;
  List.rev !out

(* Condensation fixpoint: each SCC's effect is the join of its members'
   direct effects and the (already computed) effects of every successor
   outside the component. *)
let propagate ~adj_of ~direct_of ~join ~empty order =
  List.fold_left
    (fun acc scc ->
      let inside = List.fold_left (fun s v -> SSet.add v s) SSet.empty scc in
      let combined =
        List.fold_left
          (fun e v ->
            let e = join e (direct_of v) in
            List.fold_left
              (fun e w ->
                if SSet.mem w inside then e
                else match SMap.find_opt w acc with Some ew -> join e ew | None -> e)
              e (adj_of v))
          empty scc
      in
      List.fold_left (fun acc v -> SMap.add v combined acc) acc scc)
    SMap.empty order

(* ------------------------------------------------------------------ *)
(* Name resolution                                                     *)

let defines (s : Summary.t) fname = List.exists (fun (f : Summary.fn) -> f.f_name = fname) s.fns

let resolve_in_unit units uname fname =
  match SMap.find_opt uname units with
  | None -> None
  | Some sums ->
      List.find_map
        (fun (s : Summary.t) -> if defines s fname then Some (node_id s.file fname) else None)
        sums

(* Resolve a call path seen in [s].  Unqualified names resolve within the
   same file; qualified paths scan left to right for the first module
   segment that names a linted unit defining the remaining path (so
   [Es_util.Par.parallel_map] resolves through [Par] even though
   [Es_util] is a library wrapper, not a unit).  A qualified path that
   resolves nowhere falls back to a nested-module binding of the same
   file ([M.f] is stored under that dotted name). *)
let resolve_call units (s : Summary.t) path =
  match path with
  | [] -> None
  | first :: _ when not (is_module_seg first) ->
      let fname = String.concat "." path in
      if defines s fname then Some (node_id s.file fname) else None
  | _ ->
      let rec scan = function
        | seg :: (_ :: _ as rest) when is_module_seg seg -> (
            match resolve_in_unit units (String.uncapitalize_ascii seg) (String.concat "." rest) with
            | Some id -> Some id
            | None -> scan rest)
        | _ -> None
      in
      (match scan path with
      | Some id -> Some id
      | None ->
          let fname = String.concat "." path in
          if defines s fname then Some (node_id s.file fname) else None)

(* Resolve a mutation target (the base identifier of an assignment /
   container-mutator argument) to a module-level mutable binding. *)
type mut_res = Unguarded of string | Guarded | Unresolved

let resolve_mut units (s : Summary.t) base =
  let lookup (s2 : Summary.t) n =
    match List.assoc_opt n s2.mutables with
    | Some true -> Some Guarded
    | Some false -> Some (Unguarded (Summary.display_unit s2.unit_name ^ "." ^ n))
    | None -> None
  in
  match base with
  | [ n ] when not (is_module_seg n) -> ( match lookup s n with Some r -> r | None -> Unresolved)
  | _ ->
      let rec scan = function
        | seg :: (_ :: _ as rest) when is_module_seg seg -> (
            let u = String.uncapitalize_ascii seg in
            match (SMap.find_opt u units, rest) with
            | Some sums, [ n ] -> (
                match List.find_map (fun s2 -> lookup s2 n) sums with
                | Some r -> Some r
                | None -> scan rest)
            | _ -> scan rest)
        | _ -> None
      in
      (match scan base with Some r -> r | None -> Unresolved)

(* Canonicalize a raw lock path ([m], [pool.m], [Par.pool_mutex],
   [Par.pool.m]) to a unit-qualified lock identity, or [None] when the
   lock is a parameter / local and has no global identity. *)
let resolve_lock units (s : Summary.t) path =
  let local (s2 : Summary.t) = function
    | [ n ] when List.mem n s2.top_mutexes ->
        Some (Summary.display_unit s2.unit_name ^ "." ^ n)
    | [ v; f ] when List.mem v s2.top_values && List.mem f s2.mutex_fields ->
        Some (Summary.display_unit s2.unit_name ^ "." ^ v ^ "." ^ f)
    | _ -> None
  in
  match path with
  | seg :: _ when not (is_module_seg seg) -> local s path
  | _ ->
      let rec scan = function
        | seg :: (_ :: _ as rest) when is_module_seg seg -> (
            let u = String.uncapitalize_ascii seg in
            match SMap.find_opt u units with
            | Some sums -> (
                match List.find_map (fun s2 -> local s2 rest) sums with
                | Some id -> Some id
                | None -> scan rest)
            | None -> scan rest)
        | _ -> None
      in
      scan path

(* ------------------------------------------------------------------ *)
(* Graph construction                                                  *)

let direct_eff units (s : Summary.t) (f : Summary.fn) =
  let clock = List.map (fun (what, line) -> { w_what = what; w_file = s.file; w_line = line }) f.f_clock in
  let alloc = List.map (fun (what, line) -> { w_what = what; w_file = s.file; w_line = line }) f.f_allocs in
  let muts =
    List.filter_map
      (fun (m : Summary.site) ->
        match resolve_mut units s m.s_path with
        | Unguarded target -> Some { w_what = target; w_file = s.file; w_line = m.s_line }
        | Guarded | Unresolved -> None)
      f.f_muts
  in
  let captured =
    List.filter_map
      (fun (n, line) ->
        if List.mem n s.top_values then None
        else Some { w_what = Printf.sprintf "captured local %S" n; w_file = s.file; w_line = line })
      f.f_captured
  in
  {
    clock = merge_w clock [];
    alloc = merge_w alloc [];
    races = merge_w muts captured;
  }

let build (sums : Summary.t list) =
  let sums = List.sort (fun (a : Summary.t) b -> Stdlib.compare a.file b.file) sums in
  let units =
    List.fold_left
      (fun m (s : Summary.t) ->
        SMap.update s.unit_name (function Some l -> Some (l @ [ s ]) | None -> Some [ s ]) m)
      SMap.empty sums
  in
  let nodes =
    List.fold_left
      (fun m (s : Summary.t) ->
        List.fold_left
          (fun m (f : Summary.fn) ->
            let sync =
              List.filter_map (fun (c : Summary.site) -> resolve_call units s c.s_path) f.f_calls
              |> List.sort_uniq Stdlib.compare
            in
            let async =
              List.filter_map
                (fun (p : Summary.par_site) ->
                  if p.ps_parent = f.f_name then Some (node_id s.file p.ps_node) else None)
                s.par_sites
              |> List.sort_uniq Stdlib.compare
            in
            let locks =
              List.fold_left
                (fun acc (l : Summary.site) ->
                  match resolve_lock units s l.s_path with
                  | Some id -> SSet.add id acc
                  | None -> acc)
                SSet.empty f.f_locks
            in
            SMap.add (node_id s.file f.f_name)
              {
                nd_file = s.file;
                nd_unit = s.unit_name;
                nd_fn = f.f_name;
                nd_sync = sync;
                nd_async = async;
                nd_direct = direct_eff units s f;
                nd_direct_locks = locks;
              }
              m)
          m s.fns)
      SMap.empty sums
  in
  let ids = SMap.fold (fun id _ acc -> id :: acc) nodes [] |> List.rev in
  let sync_of id = match SMap.find_opt id nodes with Some n -> n.nd_sync | None -> [] in
  let all_of id =
    match SMap.find_opt id nodes with Some n -> n.nd_sync @ n.nd_async | None -> []
  in
  let eff_all =
    propagate ~adj_of:all_of
      ~direct_of:(fun id -> (SMap.find id nodes).nd_direct)
      ~join:join_eff ~empty:empty_eff (sccs all_of ids)
  in
  let eff_locks =
    propagate ~adj_of:sync_of
      ~direct_of:(fun id -> (SMap.find id nodes).nd_direct_locks)
      ~join:SSet.union ~empty:SSet.empty (sccs sync_of ids)
  in
  (* The lock-order graph: direct held→acquired pairs, plus the transitive
     lock set of every callee invoked while holding a lock. *)
  let lock_edges =
    List.concat_map
      (fun (s : Summary.t) ->
        List.concat_map
          (fun (f : Summary.fn) ->
            let direct =
              List.filter_map
                (fun (p : Summary.pair_site) ->
                  match (resolve_lock units s p.pr_held, resolve_lock units s p.pr_acq) with
                  | Some h, Some a ->
                      Some { le_held = h; le_acq = a; le_file = s.file; le_line = p.pr_line; le_col = p.pr_col }
                  | _ -> None)
                f.f_pairs
            in
            let via_calls =
              List.concat_map
                (fun (h : Summary.held_call) ->
                  match (resolve_lock units s h.hc_held, resolve_call units s h.hc_callee) with
                  | Some held, Some callee ->
                      let callee_locks =
                        match SMap.find_opt callee eff_locks with
                        | Some l -> SSet.elements l
                        | None -> []
                      in
                      List.map
                        (fun a ->
                          { le_held = held; le_acq = a; le_file = s.file; le_line = h.hc_line; le_col = h.hc_col })
                        callee_locks
                  | _ -> [])
                f.f_held_calls
            in
            direct @ via_calls)
          s.fns)
      sums
  in
  (* One witness per distinct (held, acquired) edge: the smallest
     (file, line, col) after sorting. *)
  let lock_edges =
    let sorted =
      List.sort
        (fun a b ->
          Stdlib.compare
            (a.le_held, a.le_acq, a.le_file, a.le_line, a.le_col)
            (b.le_held, b.le_acq, b.le_file, b.le_line, b.le_col))
        lock_edges
    in
    let rec dedup = function
      | x :: (y :: _ as rest) when x.le_held = y.le_held && x.le_acq = y.le_acq ->
          dedup (x :: List.tl rest)
      | x :: rest -> x :: dedup rest
      | [] -> []
    in
    dedup sorted
  in
  let lock_adj =
    List.fold_left
      (fun m e ->
        SMap.update e.le_held
          (function Some l -> Some (List.sort_uniq Stdlib.compare (e.le_acq :: l)) | None -> Some [ e.le_acq ])
          m)
      SMap.empty lock_edges
  in
  let lock_ids =
    List.concat_map (fun e -> [ e.le_held; e.le_acq ]) lock_edges |> List.sort_uniq Stdlib.compare
  in
  let lock_adj_of id = match SMap.find_opt id lock_adj with Some l -> l | None -> [] in
  let lock_cyclic =
    List.fold_left
      (fun acc scc ->
        match scc with
        | [ v ] ->
            if List.mem v (lock_adj_of v) then SSet.add v acc else acc
        | _ :: _ :: _ -> List.fold_left (fun acc v -> SSet.add v acc) acc scc
        | [] -> acc)
      SSet.empty
      (sccs lock_adj_of lock_ids)
  in
  { sums; units; nodes; eff_all; eff_locks; lock_edges; lock_adj; lock_cyclic }

(* ------------------------------------------------------------------ *)
(* Findings                                                            *)

let eff_of t id = match SMap.find_opt id t.eff_all with Some e -> e | None -> empty_eff

let callee_display t id =
  match SMap.find_opt id t.nodes with
  | Some n -> Summary.display_unit n.nd_unit ^ "." ^ n.nd_fn
  | None -> id

(* Edges participating in a cycle: both endpoints inside the same cyclic
   SCC (self-edges included by construction). *)
let cyclic_edge t e =
  (e.le_held = e.le_acq && SSet.mem e.le_held t.lock_cyclic)
  || (e.le_held <> e.le_acq && SSet.mem e.le_held t.lock_cyclic && SSet.mem e.le_acq t.lock_cyclic
      &&
      (* same component: [a] must reach [held] back *)
      let rec reach visited frontier =
        match frontier with
        | [] -> false
        | v :: rest ->
            if v = e.le_held then true
            else
              let succs =
                (match SMap.find_opt v t.lock_adj with Some l -> l | None -> [])
                |> List.filter (fun w -> not (SSet.mem w visited))
              in
              reach (List.fold_left (fun s w -> SSet.add w s) visited succs) (rest @ succs)
      in
      reach (SSet.singleton e.le_acq) [ e.le_acq ])

let findings t =
  let acc = ref [] in
  let push ?(inline = false) ~rule ~file ~line ~col msg =
    acc := (Finding.make ~rule ~file ~line ~col msg, inline) :: !acc
  in
  List.iter
    (fun (s : Summary.t) ->
      (* D7: effects shipped across a fan-out sink. *)
      List.iter
        (fun (p : Summary.par_site) ->
          let e = eff_of t (node_id s.file p.ps_node) in
          List.iter
            (fun w ->
              let msg =
                if String.length w.w_what >= 14 && String.sub w.w_what 0 14 = "captured local" then
                  Printf.sprintf
                    "work shipped to %s assigns %s; aggregate per-domain results and combine \
                     after the join"
                    p.ps_sink w.w_what
                else
                  Printf.sprintf
                    "work shipped to %s mutates unguarded toplevel state %s (via %s:%d); guard \
                     the target with a mutex and [@@es_lint.guarded], or keep domain-shipped \
                     work pure"
                    p.ps_sink w.w_what w.w_file w.w_line
              in
              push ~rule:Rule.D7 ~file:s.file ~line:p.ps_line ~col:p.ps_col msg)
            e.races)
        s.par_sites;
      (* D8 / D10: per call site, against the callee's transitive effects. *)
      List.iter
        (fun (f : Summary.fn) ->
          List.iter
            (fun (c : Summary.site) ->
              match resolve_call t.units s c.s_path with
              | None -> ()
              | Some callee ->
                  let e = eff_of t callee in
                  (if (not s.exempt) && e.clock <> [] then
                     match e.clock with
                     | w :: _ ->
                         push ~rule:Rule.D8 ~file:s.file ~line:c.s_line ~col:c.s_col
                           (Printf.sprintf
                              "call into %s transitively reads %s (via %s:%d); route time \
                               through Es_obs.Obs.wall_clock and randomness through a seeded \
                               Es_util.Prng"
                              (callee_display t callee) w.w_what w.w_file w.w_line)
                     | [] -> ());
                  if s.hot && e.alloc <> [] then
                    match e.alloc with
                    | w :: _ ->
                        push
                          ~inline:(Source.suppressed_at s.cold_lines ~line:c.s_line)
                          ~rule:Rule.D10 ~file:s.file ~line:c.s_line ~col:c.s_col
                          (Printf.sprintf
                             "call into %s, which transitively allocates (%s at %s:%d); inline \
                              an allocation-free path or mark the call site (* es_lint: cold *)"
                             (callee_display t callee) w.w_what w.w_file w.w_line)
                    | [] -> ())
            f.f_calls)
        s.fns;
      (* Cross-unit [@@es_lint.guarded "Module.path"] verification. *)
      List.iter
        (fun (p : Summary.pending_guard) ->
          let guard = String.concat "." p.pg_guard in
          let verified =
            let check (s2 : Summary.t) rest =
              match rest with
              | [ m ] -> List.mem m s2.top_mutexes
              | [ v; f ] -> List.mem v s2.top_values && List.mem f s2.mutex_fields
              | _ -> false
            in
            let rec scan = function
              | seg :: (_ :: _ as rest) when is_module_seg seg -> (
                  match SMap.find_opt (String.uncapitalize_ascii seg) t.units with
                  | Some sums when List.exists (fun s2 -> check s2 rest) sums -> true
                  | _ -> scan rest)
              | _ -> false
            in
            scan p.pg_guard
          in
          if verified then
            push ~inline:true ~rule:Rule.D4 ~file:s.file ~line:p.pg_line ~col:p.pg_col
              (Printf.sprintf "%s %S guarded by %s" p.pg_what p.pg_name guard)
          else
            push ~rule:Rule.D4 ~file:s.file ~line:p.pg_line ~col:p.pg_col
              (Printf.sprintf
                 "[@@es_lint.guarded %S] on %S resolves to no Mutex.t in the linted units" guard
                 p.pg_name))
        s.pending_guards)
    t.sums;
  (* D9: every witnessed edge inside a lock-order cycle. *)
  List.iter
    (fun e ->
      if cyclic_edge t e then
        let msg =
          if e.le_held = e.le_acq then
            Printf.sprintf "acquires %s while it is already held (self-deadlock)" e.le_acq
          else
            Printf.sprintf
              "acquires %s while holding %s, completing a lock-order cycle; acquire mutexes in \
               one global order"
              e.le_acq e.le_held
        in
        push ~rule:Rule.D9 ~file:e.le_file ~line:e.le_line ~col:e.le_col msg)
    t.lock_edges;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* --why: reconstruct the call chain behind an interprocedural finding  *)

let bfs_path adj_of start pred =
  let rec go visited = function
    | [] -> None
    | (v, rpath) :: rest ->
        if pred v then Some (List.rev (v :: rpath))
        else
          let succs = adj_of v |> List.filter (fun w -> not (SSet.mem w visited)) in
          let visited = List.fold_left (fun s w -> SSet.add w s) visited succs in
          go visited (rest @ List.map (fun w -> (w, v :: rpath)) succs)
  in
  go (SSet.singleton start) [ (start, []) ]

let all_adj_of t id = match SMap.find_opt id t.nodes with Some n -> n.nd_sync @ n.nd_async | None -> []

let render_chain t ~header ~footer path =
  header :: List.map (fun id -> "  -> " ^ callee_display t id ^ " (" ^ (SMap.find id t.nodes).nd_file ^ ")") path
  @ [ footer ]

let witness_line pick verb t path =
  match List.rev path with
  | last :: _ -> (
      match pick (SMap.find last t.nodes).nd_direct with
      | w :: _ -> Printf.sprintf "  %s %s at %s:%d" verb w.w_what w.w_file w.w_line
      | [] -> "  (no direct witness)")
  | [] -> "  (empty chain)"

let explain t ~rule ~file ~line =
  match rule with
  | Rule.D8 | Rule.D10 ->
      let pick (e : eff) = if rule = Rule.D8 then e.clock else e.alloc in
      let verb = if rule = Rule.D8 then "reads" else "allocates via" in
      List.concat_map
        (fun (s : Summary.t) ->
          if s.file <> file then []
          else
            List.concat_map
              (fun (f : Summary.fn) ->
                List.concat_map
                  (fun (c : Summary.site) ->
                    if c.s_line <> line then []
                    else
                      match resolve_call t.units s c.s_path with
                      | None -> []
                      | Some callee ->
                          if pick (eff_of t callee) = [] then []
                          else
                            (match bfs_path (all_adj_of t) callee (fun id ->
                                 pick (SMap.find id t.nodes).nd_direct <> [])
                             with
                            | Some path ->
                                render_chain t
                                  ~header:
                                    (Printf.sprintf "%s at %s:%d — call from %s" (Rule.id rule)
                                       file line f.f_name)
                                  ~footer:(witness_line pick verb t path)
                                  path
                            | None -> []))
                  f.f_calls)
              s.fns)
        t.sums
  | Rule.D7 ->
      List.concat_map
        (fun (s : Summary.t) ->
          if s.file <> file then []
          else
            List.concat_map
              (fun (p : Summary.par_site) ->
                if p.ps_line <> line then []
                else
                  let start = node_id s.file p.ps_node in
                  if (eff_of t start).races = [] then []
                  else
                    match bfs_path (all_adj_of t) start (fun id ->
                        (SMap.find id t.nodes).nd_direct.races <> [])
                    with
                    | Some path ->
                        render_chain t
                          ~header:
                            (Printf.sprintf "D7 at %s:%d — work shipped to %s from %s" file line
                               p.ps_sink p.ps_parent)
                          ~footer:(witness_line (fun e -> e.races) "mutates" t path)
                          path
                    | None -> [])
              s.par_sites)
        t.sums
  | Rule.D9 ->
      List.concat_map
        (fun e ->
          if e.le_file <> file || e.le_line <> line || not (cyclic_edge t e) then []
          else
            let cycle =
              if e.le_held = e.le_acq then [ e.le_held; e.le_held ]
              else
                match
                  bfs_path
                    (fun v -> match SMap.find_opt v t.lock_adj with Some l -> l | None -> [])
                    e.le_acq
                    (fun v -> v = e.le_held)
                with
                | Some path -> e.le_held :: path
                | None -> [ e.le_held; e.le_acq ]
            in
            [
              Printf.sprintf "D9 at %s:%d — acquiring %s while holding %s" file line e.le_acq
                e.le_held;
              "  cycle: " ^ String.concat " -> " cycle;
            ])
        t.lock_edges
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Effects dump                                                        *)

let dump t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "es_lint effects dump v1\n";
  SMap.iter
    (fun id node ->
      let e = eff_of t id in
      let locks = match SMap.find_opt id t.eff_locks with Some l -> SSet.elements l | None -> [] in
      if e.clock <> [] || e.alloc <> [] || e.races <> [] || locks <> [] then begin
        Buffer.add_string b id;
        let field name ws =
          if ws <> [] then begin
            Buffer.add_string b
              (Printf.sprintf "\t%s=[%s]" name
                 (String.concat ";"
                    (List.map (fun w -> Printf.sprintf "%s@%s:%d" w.w_what w.w_file w.w_line) ws)))
          end
        in
        field "clock" e.clock;
        field "alloc" e.alloc;
        field "races" e.races;
        if locks <> [] then Buffer.add_string b (Printf.sprintf "\tlocks=[%s]" (String.concat ";" locks));
        ignore node;
        Buffer.add_char b '\n'
      end)
    t.nodes;
  Buffer.contents b
