(** The analysis orchestrator: phase 1 ({!Summary}, one parse per unit —
    per-file rules D1–D4/D6 plus effect extraction, optionally cached)
    feeding phase 2 ({!Callgraph}, the whole-program SCC effect fixpoint
    behind D7–D10), with the filesystem-dependent D5 evaluated fresh and
    the configuration (enabled rules, allowlist) applied to the union.

    The engine is purely syntactic (no typing pass) and deliberately
    Hashtbl-free, so its output depends only on the set of input paths —
    never on discovery or hashing order. *)

type mli_mode =
  | Mli_by_path  (** D5 applies under [lib/] and [bin/]; bench/tests exempt *)
  | Mli_always  (** D5 applies to every file (used by the fixture tests) *)
  | Mli_never

type config = {
  rules : Rule.t list;  (** enabled rules; {!Rule.Parse_error} is implicit *)
  allow : Allowlist.t;  (** committed legacy exceptions (rule:path) *)
  mli_mode : mli_mode;
  root : string;  (** directory the relative input paths resolve against *)
  cache_dir : string option;
      (** per-file summary cache directory ([None] = no caching); entries
          are keyed by content hash, so cold and warm runs are identical *)
}

val default_config : config
(** All rules, empty allowlist, [Mli_by_path], root ["."], no cache. *)

type result = {
  findings : Finding.t list;  (** unsuppressed, sorted by {!Finding.compare} *)
  suppressed : Finding.t list;
      (** findings disarmed by an [(* es_lint: sorted *)]/[cold] comment,
          a verified [[@@es_lint.guarded]] attribute, or an allowlist
          entry; sorted *)
}

type analysis = {
  summaries : Summary.t list;  (** phase-1 unit summaries, path-sorted *)
  graph : Callgraph.t;  (** the phase-2 call graph (for --why / --effects-dump) *)
  result : result;
}

val normalize_rel : string -> string
(** Canonicalize a root-relative path (strip [./], collapse separators). *)

val d1_exempt : string -> bool
(** D1/D8 carve-outs: the clock module and [bench/]. *)

val analyze_files : config -> string list -> analysis
(** Full two-phase analysis over a set of root-relative paths.  Paths are
    normalized, deduplicated and sorted first; the analysis — summaries,
    graph and both finding lists — is byte-identical for any permutation
    or duplication of the input.  Non-[.ml] paths are ignored. *)

val lint_files : config -> string list -> result
(** [analyze_files] keeping only the findings. *)

val lint_one : config -> string -> Finding.t list * Finding.t list
(** Lint a single root-relative [.ml] path; returns (findings, suppressed)
    sorted by {!Finding.compare}.  Interprocedural rules see only this one
    unit.  Raises [Sys_error] if the file cannot be read. *)
