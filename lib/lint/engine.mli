(** The analysis core: parses [.ml] files with compiler-libs and runs the
    D1–D6 determinism/domain-safety rules over the parsetree.

    The engine is purely syntactic (no typing pass) and deliberately
    Hashtbl-free, so its output depends only on the set of input paths —
    never on discovery or hashing order. *)

type mli_mode =
  | Mli_by_path  (** D5 applies under [lib/] and [bin/]; bench/tests exempt *)
  | Mli_always  (** D5 applies to every file (used by the fixture tests) *)
  | Mli_never

type config = {
  rules : Rule.t list;  (** enabled rules; {!Rule.Parse_error} is implicit *)
  allow : Allowlist.t;  (** committed legacy exceptions (rule:path) *)
  mli_mode : mli_mode;
  root : string;  (** directory the relative input paths resolve against *)
}

val default_config : config
(** All rules, empty allowlist, [Mli_by_path], root ["."]. *)

type result = {
  findings : Finding.t list;  (** unsuppressed, sorted by {!Finding.compare} *)
  suppressed : Finding.t list;
      (** findings disarmed by an [(* es_lint: sorted *)] comment, a valid
          [[@@es_lint.guarded]] attribute, or an allowlist entry; sorted *)
}

val lint_one : config -> string -> Finding.t list * Finding.t list
(** Lint a single root-relative [.ml] path; returns (findings, suppressed)
    in source order.  Raises [Sys_error] if the file cannot be read. *)

val lint_files : config -> string list -> result
(** Lint a set of root-relative paths.  Paths are normalized, deduplicated
    and sorted first and both output lists are sorted, so the result is
    byte-identical for any permutation or duplication of [paths].  Non-[.ml]
    paths are ignored. *)
