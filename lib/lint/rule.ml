type t = Parse_error | D1 | D2 | D3 | D4 | D5 | D6 | D7 | D8 | D9 | D10

let all = [ Parse_error; D1; D2; D3; D4; D5; D6; D7; D8; D9; D10 ]

let id = function
  | Parse_error -> "parse"
  | D1 -> "D1"
  | D2 -> "D2"
  | D3 -> "D3"
  | D4 -> "D4"
  | D5 -> "D5"
  | D6 -> "D6"
  | D7 -> "D7"
  | D8 -> "D8"
  | D9 -> "D9"
  | D10 -> "D10"

let describe = function
  | Parse_error -> "file failed to parse"
  | D1 -> "nondeterminism source (wall clock / global RNG) outside the clock module"
  | D2 -> "unordered Hashtbl iteration without a downstream-sort suppression"
  | D3 -> "polymorphic compare in a float-bearing module"
  | D4 -> "mutable toplevel state without a [@@es_lint.guarded] mutex"
  | D5 -> "missing sibling .mli interface"
  | D6 -> "allocation (List.map/List.init/closure argument) in a hot-tagged file"
  | D7 -> "unguarded shared-state mutation reachable from a Par/Domain fan-out"
  | D8 -> "call into a function that transitively reads a nondeterminism source"
  | D9 -> "inconsistent lock acquisition order (deadlock-risk cycle)"
  | D10 -> "hot-tagged call into a function that transitively allocates"

let of_id s =
  match String.lowercase_ascii (String.trim s) with
  | "parse" -> Some Parse_error
  | "d1" -> Some D1
  | "d2" -> Some D2
  | "d3" -> Some D3
  | "d4" -> Some D4
  | "d5" -> Some D5
  | "d6" -> Some D6
  | "d7" -> Some D7
  | "d8" -> Some D8
  | "d9" -> Some D9
  | "d10" -> Some D10
  | _ -> None

(* Rank order = presentation order; Parse_error sorts first so a broken
   file's findings lead its listing. *)
let rank = function
  | Parse_error -> 0
  | D1 -> 1
  | D2 -> 2
  | D3 -> 3
  | D4 -> 4
  | D5 -> 5
  | D6 -> 6
  | D7 -> 7
  | D8 -> 8
  | D9 -> 9
  | D10 -> 10

let compare a b = Int.compare (rank a) (rank b)

let interprocedural = function D7 | D8 | D9 | D10 -> true | _ -> false
