type t = Parse_error | D1 | D2 | D3 | D4 | D5 | D6

let all = [ Parse_error; D1; D2; D3; D4; D5; D6 ]

let id = function
  | Parse_error -> "parse"
  | D1 -> "D1"
  | D2 -> "D2"
  | D3 -> "D3"
  | D4 -> "D4"
  | D5 -> "D5"
  | D6 -> "D6"

let describe = function
  | Parse_error -> "file failed to parse"
  | D1 -> "nondeterminism source (wall clock / global RNG) outside the clock module"
  | D2 -> "unordered Hashtbl iteration without a downstream-sort suppression"
  | D3 -> "polymorphic compare in a float-bearing module"
  | D4 -> "mutable toplevel state without a [@@es_lint.guarded] mutex"
  | D5 -> "missing sibling .mli interface"
  | D6 -> "allocation (List.map/List.init/closure argument) in a hot-tagged file"

let of_id s =
  match String.lowercase_ascii (String.trim s) with
  | "parse" -> Some Parse_error
  | "d1" -> Some D1
  | "d2" -> Some D2
  | "d3" -> Some D3
  | "d4" -> Some D4
  | "d5" -> Some D5
  | "d6" -> Some D6
  | _ -> None

(* Rank order = presentation order; Parse_error sorts first so a broken
   file's findings lead its listing. *)
let rank = function
  | Parse_error -> 0
  | D1 -> 1
  | D2 -> 2
  | D3 -> 3
  | D4 -> 4
  | D5 -> 5
  | D6 -> 6
let compare a b = Int.compare (rank a) (rank b)
