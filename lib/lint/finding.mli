(** A single lint finding, anchored to a source position. *)

type t = { rule : Rule.t; file : string; line : int; col : int; msg : string }

val make : rule:Rule.t -> file:string -> line:int -> col:int -> string -> t

val compare : t -> t -> int
(** Total order by (file, line, col, rule, message) — the canonical output
    order, independent of discovery order. *)

val to_line : t -> string
(** ["file:line:col [rule-id] message"] — the grep-able report line. *)

val to_jsonl : t -> string
(** One JSON object per finding (no trailing newline). *)
