(* Legacy exceptions, committed as `lint.allow` at the repo root.  One entry
   per line, `RULE:PATH` (path relative to the repo root, forward slashes);
   blank lines and `#` comments are ignored.  Entries suppress every finding
   of RULE in PATH, so they are for whole-file legacy carve-outs — new code
   should use the inline mechanisms instead. *)

type t = (string * string) list (* (rule id, path), sorted, deduped *)

let empty = []

let norm_rule r = String.trim r
let norm_path p = String.trim p

let of_entries es =
  es
  |> List.map (fun (r, p) -> (norm_rule r, norm_path p))
  |> List.sort_uniq (fun (r1, p1) (r2, p2) ->
         match String.compare r1 r2 with 0 -> String.compare p1 p2 | c -> c)

let entries t = t

let parse_line ~file ~line_no line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else
    match String.index_opt line ':' with
    | None -> Error (Printf.sprintf "%s:%d: expected RULE:PATH, got %S" file line_no line)
    | Some i ->
        let rule = String.sub line 0 i in
        let path = String.sub line (i + 1) (String.length line - i - 1) in
        if Rule.of_id rule = None then
          Error (Printf.sprintf "%s:%d: unknown rule %S" file line_no rule)
        else if String.trim path = "" then
          Error (Printf.sprintf "%s:%d: empty path in %S" file line_no line)
        else Ok (Some (norm_rule rule, norm_path path))

let of_string ~file text =
  let lines = String.split_on_char '\n' text in
  let rec go acc line_no = function
    | [] -> Ok (of_entries (List.rev acc))
    | line :: rest -> (
        match parse_line ~file ~line_no line with
        | Error _ as e -> e
        | Ok None -> go acc (line_no + 1) rest
        | Ok (Some entry) -> go (entry :: acc) (line_no + 1) rest)
  in
  go [] 1 lines

let load path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      of_string ~file:path text

let to_lines t = List.map (fun (rule, path) -> rule ^ ":" ^ path) t

let mem t ~rule_id ~path = List.mem (rule_id, path) t
