(* Shared vocabulary for both analysis phases: the path classifiers behind
   D1/D2/D3/D6, the Par/Domain fan-out sinks and container mutators behind
   D7–D10, and the small parsetree helpers every walk needs.  Everything
   here is a pure function of a flattened [Longident] path (or of raw
   source text for the closure sniff), so it stays portable across the
   compiler-libs versions the CI matrix builds against. *)

open Parsetree

(* ------------------------------------------------------------------ *)
(* Longident / location helpers                                        *)

let flatten lid = try Longident.flatten lid with _ -> []

let rec peel_expr e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> peel_expr e
  | _ -> e

let rec peel_pat p = match p.ppat_desc with Ppat_constraint (p, _) -> peel_pat p | _ -> p

let pos_of (loc : Location.t) =
  let p = loc.loc_start in
  (p.pos_lnum, p.pos_cnum - p.pos_bol)

(* Peel a chain of field projections down to its base identifier:
   [pool.queue] → (["pool"], ["queue"]), [Par.pool.m] → (["Par"; "pool"],
   ["m"]).  Returns [None] when the base is not a plain identifier. *)
let rec field_chain e =
  match (peel_expr e).pexp_desc with
  | Pexp_ident { txt; _ } -> ( match flatten txt with [] -> None | p -> Some (p, []))
  | Pexp_field (base, { txt; _ }) -> (
      match field_chain base with
      | Some (p, fields) -> Some (p, fields @ [ Longident.last txt ])
      | None -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Per-file rule classifiers (D1/D2/D3/D6)                             *)

let d1_violation path =
  match path with
  | [ "Sys"; "time" ] -> Some "Sys.time"
  | [ "Unix"; ("gettimeofday" | "time" | "localtime" | "gmtime") ] ->
      Some (String.concat "." path)
  | [ "Random"; "State"; "make_self_init" ] -> Some "Random.State.make_self_init"
  | [ "Random"; _ ] -> Some (String.concat "." path)
  | _ -> None

let d2_violation path =
  match path with
  | [ "Hashtbl"; ("iter" | "fold" | "to_seq" | "to_seq_keys" | "to_seq_values") ] ->
      Some (String.concat "." path)
  | _ -> None

let d3_violation path =
  match path with
  | [ "compare" ] | [ "Stdlib"; "compare" ] | [ "Pervasives"; "compare" ] ->
      Some (String.concat "." path)
  | _ -> None

(* D6 (hot-tagged files only): the list builders named by the rule, plus
   closure literals in argument position (detected separately below).
   This set is also the "allocates" effect the phase-2 summaries
   propagate for D10 — deliberately without the closure sniff, so the
   interprocedural effect means "runs a per-element list builder", not
   "builds one closure". *)
let d6_violation path =
  match path with
  | [ "List"; ("map" | "init") ] -> Some (String.concat "." path)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Phase-2 effect classifiers                                          *)

(* The fan-out sinks whose function arguments escape to other domains.
   Matched on the qualified suffix so [Es_util.Par.parallel_map],
   [Par.parallel_map] and a local [Par.both] all count. *)
let par_sink path =
  match path with
  | [ "Domain"; "spawn" ] -> Some "Domain.spawn"
  | _ -> (
      match List.rev path with
      | fn :: "Par" :: _
        when fn = "parallel_map" || fn = "parallel_map_array" || fn = "parallel_iter"
             || fn = "both" ->
          Some ("Par." ^ fn)
      | _ -> None)

(* Stdlib calls that mutate a container passed as an argument, with the
   positional indices of the argument(s) actually mutated — only those
   positions count as mutations (keys/values/sources are merely read). *)
let container_mutator path =
  let name = String.concat "." path in
  match path with
  | [ "Hashtbl"; ("add" | "replace" | "remove" | "reset" | "clear") ] -> Some (name, [ 0 ])
  | [ "Hashtbl"; "filter_map_inplace" ] -> Some (name, [ 1 ])
  | [ "Buffer";
      ( "add_string" | "add_char" | "add_bytes" | "add_buffer" | "add_subbytes"
      | "add_substring" | "clear" | "reset" | "truncate" ) ] ->
      Some (name, [ 0 ])
  | [ "Queue"; ("add" | "push") ] -> Some (name, [ 1 ])
  | [ "Queue"; ("pop" | "take" | "clear") ] -> Some (name, [ 0 ])
  | [ "Queue"; "transfer" ] -> Some (name, [ 0; 1 ])
  | [ "Stack"; "push" ] -> Some (name, [ 1 ])
  | [ "Stack"; ("pop" | "clear") ] -> Some (name, [ 0 ])
  | _ -> None

let assignment_op path = match path with [ ":=" ] | [ "Stdlib"; ":=" ] -> true | _ -> false

let incr_decr path =
  match path with [ ("incr" | "decr") ] | [ "Stdlib"; ("incr" | "decr") ] -> true | _ -> false

type lock_op = Lock | Unlock

let mutex_op path =
  match path with
  | [ "Mutex"; "lock" ] -> Some Lock
  | [ "Mutex"; "unlock" ] -> Some Unlock
  | _ -> None

(* A call head worth recording as a call-graph edge: a plain (possibly
   qualified) identifier whose last segment is an alphabetic name —
   operators and the mutation/locking primitives handled above are not
   edges. *)
let callable_head path =
  match List.rev path with
  | last :: _ when String.length last > 0 -> (
      match last.[0] with 'a' .. 'z' | '_' -> true | _ -> false)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* D6 closure-argument sniff.  [Pexp_fun]'s parsetree representation
   changed between compiler-libs versions this linter builds against, so
   argument expressions are classified textually instead of by
   constructor: from the argument's source offset (the lexbuf is fed the
   whole file, so [pos_cnum] is an absolute offset), skip opening
   parens/[begin]/whitespace and test for the [fun]/[function] keyword.
   The parser relocates a parenthesized expression to span its parens, so
   the sniff lands on the right token. *)

let ident_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' -> true
  | _ -> false

let keyword_at text i kw =
  let k = String.length kw in
  i + k <= String.length text
  && String.sub text i k = kw
  && (i + k = String.length text || not (ident_char text.[i + k]))

let is_closure_literal text (e : expression) =
  let n = String.length text in
  let rec skip i =
    if i >= n then n
    else
      match text.[i] with
      | ' ' | '\t' | '\n' | '\r' | '(' -> skip (i + 1)
      | 'b' when keyword_at text i "begin" -> skip (i + 5)
      | _ -> i
  in
  let off = e.pexp_loc.Location.loc_start.Lexing.pos_cnum in
  off >= 0 && off < n
  &&
  let i = skip off in
  keyword_at text i "fun" || keyword_at text i "function"
