(* Ratchet baseline: the committed findings inventory (lint_findings.jsonl)
   that CI diffs against.  A run fails only on findings NOT in the
   baseline, so adopting a new rule never blocks the tree — the existing
   debt is frozen in the file and only regressions (or new code tripping
   the rules) fail the gate.

   Format: one schema-version header line, then one JSON object per
   finding ({!Finding.to_jsonl}), sorted by {!Finding.compare} so
   regeneration is a stable diff.  Matching ignores line/col — a finding
   is baselined by (rule, file, message), so unrelated edits that shift
   line numbers don't resurrect frozen findings. *)

module SSet = Set.Make (String)

type t = SSet.t

let schema_line = {|{"schema":"es_lint-baseline","version":1}|}

let key_of (f : Finding.t) = Rule.id f.Finding.rule ^ "\t" ^ f.Finding.file ^ "\t" ^ f.Finding.msg

let empty = SSet.empty

let of_findings fs = List.fold_left (fun s f -> SSet.add (key_of f) s) SSet.empty fs

let mem t f = SSet.mem (key_of f) t

let diff t fs = List.filter (fun f -> not (mem t f)) fs

let render findings =
  schema_line ^ "\n" ^ Report.jsonl (List.sort_uniq Finding.compare findings)

let save ~path findings =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (render findings))

(* ------------------------------------------------------------------ *)
(* Loading: a minimal parser for the exact JSONL shape the writer above
   produces.  Fields are scanned in writer order (rule, file, …,
   message), so field markers inside message text cannot confuse the
   scan. *)

let find_from hay needle start =
  let n = String.length hay and m = String.length needle in
  let rec go i = if i + m > n then None else if String.sub hay i m = needle then Some i else go (i + 1) in
  if start > n then None else go start

let string_field line name start =
  match find_from line ("\"" ^ name ^ "\":\"") start with
  | None -> None
  | Some i ->
      let j0 = i + String.length name + 4 in
      let n = String.length line in
      let buf = Buffer.create 64 in
      let rec go j =
        if j >= n then None
        else
          match line.[j] with
          | '"' -> Some (Buffer.contents buf, j + 1)
          | '\\' when j + 1 < n -> (
              match line.[j + 1] with
              | 'n' ->
                  Buffer.add_char buf '\n';
                  go (j + 2)
              | 't' ->
                  Buffer.add_char buf '\t';
                  go (j + 2)
              | 'r' ->
                  Buffer.add_char buf '\r';
                  go (j + 2)
              | 'u' when j + 5 < n -> (
                  match int_of_string_opt ("0x" ^ String.sub line (j + 2) 4) with
                  | Some code when code < 0x100 ->
                      Buffer.add_char buf (Char.chr code);
                      go (j + 6)
                  | _ -> None)
              | c ->
                  Buffer.add_char buf c;
                  go (j + 2))
          | c ->
              Buffer.add_char buf c;
              go (j + 1)
      in
      go j0

let parse_line line =
  match string_field line "rule" 0 with
  | None -> None
  | Some (rule, after_rule) -> (
      match Rule.of_id rule with
      | None -> None
      | Some r -> (
          match string_field line "file" after_rule with
          | None -> None
          | Some (file, after_file) -> (
              match string_field line "message" after_file with
              | None -> None
              | Some (msg, _) ->
                  Some (Rule.id r ^ "\t" ^ file ^ "\t" ^ msg))))

let of_string ~file text =
  match String.split_on_char '\n' text with
  | header :: rest when header = schema_line ->
      let bad = ref None in
      let set =
        List.fold_left
          (fun s line ->
            if line = "" || !bad <> None then s
            else
              match parse_line line with
              | Some k -> SSet.add k s
              | None ->
                  bad := Some line;
                  s)
          SSet.empty rest
      in
      (match !bad with
      | Some line -> Error (Printf.sprintf "%s: unparsable baseline line %S" file line)
      | None -> Ok set)
  | header :: _ ->
      Error
        (Printf.sprintf "%s: bad or missing schema header %S (expected %S); regenerate with \
                         --write-baseline"
           file header schema_line)
  | [] -> Error (Printf.sprintf "%s: empty baseline" file)

let load path =
  match Source.read_file path with
  | exception Sys_error m -> Error m
  | text -> of_string ~file:path text
