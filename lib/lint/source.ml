let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains_at text ~pos ~sub =
  pos + String.length sub <= String.length text
  && String.sub text pos (String.length sub) = sub

let line_contains line sub =
  let n = String.length line in
  let rec go i = i < n && (contains_at line ~pos:i ~sub || go (i + 1)) in
  go 0

(* Comment markers (D2 suppression, D6 hot tag and cold suppression).  A
   plain substring scan (rather than a token stream walk) deliberately also
   matches a marker inside strings — the false-positive risk is negligible
   and the scan stays independent of lexer versioning. *)
let marker_lines marker text =
  String.split_on_char '\n' text
  |> List.mapi (fun i line -> (i + 1, line))
  |> List.filter_map (fun (n, line) -> if line_contains line marker then Some n else None)

let sorted_marker = "es_lint: sorted"
let suppression_lines text = marker_lines sorted_marker text

(* Spelled as concatenations so the markers' own definitions don't tag this
   very file hot when the linter scans itself. *)
let hot_marker = "es_lint: " ^ "hot"
let cold_marker = "es_lint: " ^ "cold"
let is_hot text = line_contains text hot_marker
let cold_lines text = marker_lines cold_marker text

let suppressed_at lines ~line = List.mem line lines || List.mem (line - 1) lines
