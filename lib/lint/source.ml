let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains_at text ~pos ~sub =
  pos + String.length sub <= String.length text
  && String.sub text pos (String.length sub) = sub

let line_contains line sub =
  let n = String.length line in
  let rec go i = i < n && (contains_at line ~pos:i ~sub || go (i + 1)) in
  go 0

(* The D2 suppression marker.  A plain substring scan (rather than a token
   stream walk) deliberately also matches the marker inside strings — the
   false-positive risk is negligible and the scan stays independent of
   lexer versioning. *)
let sorted_marker = "es_lint: sorted"

let suppression_lines text =
  String.split_on_char '\n' text
  |> List.mapi (fun i line -> (i + 1, line))
  |> List.filter_map (fun (n, line) -> if line_contains line sorted_marker then Some n else None)

let suppressed_at lines ~line = List.mem line lines || List.mem (line - 1) lines
