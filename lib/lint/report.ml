let render_findings findings = String.concat "" (List.map (fun f -> Finding.to_line f ^ "\n") findings)

let count rule fs = List.length (List.filter (fun (f : Finding.t) -> f.rule = rule) fs)

let render_summary (r : Engine.result) =
  let rows =
    List.map
      (fun rule ->
        [
          Rule.id rule;
          Rule.describe rule;
          string_of_int (count rule r.findings);
          string_of_int (count rule r.suppressed);
        ])
      Rule.all
  in
  let table =
    Es_util.Table.render
      ~align:[ Es_util.Table.Left; Es_util.Table.Left ]
      ~header:[ "rule"; "description"; "findings"; "suppressed" ]
      rows
  in
  let verdict =
    match List.length r.findings with
    | 0 -> "es_lint: clean (0 findings)"
    | 1 -> "es_lint: 1 finding"
    | n -> Printf.sprintf "es_lint: %d findings" n
  in
  table ^ verdict ^ "\n"

let jsonl findings = String.concat "" (List.map (fun f -> Finding.to_jsonl f ^ "\n") findings)

let write_jsonl ~path findings =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (jsonl findings))
