(* The analysis core: parse each .ml with compiler-libs, walk the parsetree,
   and emit findings for the six determinism/domain-safety rules (see
   Rule).  Everything here is list-based on purpose — the linter that
   enforces "no unordered iteration feeding output" must itself be trivially
   order-independent, so it never touches Hashtbl.

   Known syntactic approximations (documented in DESIGN.md §11): module
   aliases (`module H = Hashtbl`) hide D2 sites; D3 triggers on any bare
   [compare] in a file whose type declarations mention [float]; D4 sees only
   directly-initialized module-level bindings, and its record check is
   name-based per file — a field declared [Atomic.t] anywhere in the file
   exempts that name even where another type declares it plain mutable; D6
   sees only the named List builders and syntactic closure literals in
   argument position — partial applications and let-bound closures that
   escape are invisible to it (the allocation gate, not the linter, is the
   ground truth for words-per-solve). *)

open Parsetree

type mli_mode = Mli_by_path | Mli_always | Mli_never

type config = {
  rules : Rule.t list;
  allow : Allowlist.t;
  mli_mode : mli_mode;
  root : string;
}

let default_config =
  { rules = Rule.all; allow = Allowlist.empty; mli_mode = Mli_by_path; root = "." }

type result = { findings : Finding.t list; suppressed : Finding.t list }

(* ------------------------------------------------------------------ *)
(* Path scoping                                                        *)

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let normalize_rel path =
  let path = if starts_with ~prefix:"./" path then String.sub path 2 (String.length path - 2) else path in
  String.concat "/" (List.filter (fun seg -> seg <> "" && seg <> ".") (String.split_on_char '/' path))

(* D1 carve-outs: the designated clock module and the benchmark harness
   (benches measure real wall time by definition). *)
let d1_exempt rel = rel = "lib/obs/obs.ml" || starts_with ~prefix:"bench/" rel

(* D5 scope under [Mli_by_path]: the library and binary trees must ship
   interfaces; bench/, examples/ and tests stay exempt. *)
let mli_required_by_path rel = starts_with ~prefix:"lib/" rel || starts_with ~prefix:"bin/" rel

(* ------------------------------------------------------------------ *)
(* Longident helpers                                                   *)

let flatten lid = try Longident.flatten lid with _ -> []

let rec peel_expr e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> peel_expr e
  | _ -> e

let rec peel_pat p = match p.ppat_desc with Ppat_constraint (p, _) -> peel_pat p | _ -> p

let pos_of (loc : Location.t) =
  let p = loc.loc_start in
  (p.pos_lnum, p.pos_cnum - p.pos_bol)

(* ------------------------------------------------------------------ *)
(* Per-file context: what the module's own declarations tell us        *)

type ctx = {
  mutable float_bearing : bool;  (* a type declaration mentions float *)
  mutable mutable_fields : string list;  (* record fields declared mutable *)
  mutable atomic_fields : string list;  (* record fields of type _ Atomic.t *)
  mutable mutex_fields : string list;  (* record fields of type Mutex.t *)
  mutable top_values : string list;  (* module-level value names *)
  mutable top_mutexes : string list;  (* module-level `let m = Mutex.create ()` *)
}

let rec core_type_mentions_float ty =
  match ty.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, args) ->
      (match flatten txt with
      | [ "float" ] | [ "Float"; "t" ] -> true
      | _ -> List.exists core_type_mentions_float args)
  | Ptyp_tuple tys -> List.exists core_type_mentions_float tys
  | Ptyp_arrow (_, a, b) -> core_type_mentions_float a || core_type_mentions_float b
  | Ptyp_alias (ty, _) | Ptyp_poly (_, ty) -> core_type_mentions_float ty
  | _ -> false

let is_mutex_type ty =
  match ty.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, _) -> flatten txt = [ "Mutex"; "t" ]
  | _ -> false

(* An [Atomic.t] field is already domain-safe state: a record of atomics
   needs no mutex, so D4 must not count such fields as guard-needing —
   even when an unrelated type in the file declares a plain-mutable field
   of the same name (the record check below is name-based). *)
let is_atomic_type ty =
  match ty.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, _) -> flatten txt = [ "Atomic"; "t" ]
  | _ -> false

let scan_type_decl ctx (td : type_declaration) =
  let scan_label (ld : label_declaration) =
    if core_type_mentions_float ld.pld_type then ctx.float_bearing <- true;
    if ld.pld_mutable = Mutable then ctx.mutable_fields <- ld.pld_name.txt :: ctx.mutable_fields;
    if is_atomic_type ld.pld_type then ctx.atomic_fields <- ld.pld_name.txt :: ctx.atomic_fields;
    if is_mutex_type ld.pld_type then ctx.mutex_fields <- ld.pld_name.txt :: ctx.mutex_fields
  in
  let scan_constructor (cd : constructor_declaration) =
    match cd.pcd_args with
    | Pcstr_tuple tys -> if List.exists core_type_mentions_float tys then ctx.float_bearing <- true
    | Pcstr_record lds -> List.iter scan_label lds
  in
  (match td.ptype_manifest with
  | Some ty -> if core_type_mentions_float ty then ctx.float_bearing <- true
  | None -> ());
  match td.ptype_kind with
  | Ptype_record lds -> List.iter scan_label lds
  | Ptype_variant cds -> List.iter scan_constructor cds
  | Ptype_abstract | Ptype_open -> ()

(* Walk module-level bindings, recursing into nested module structures
   (their bodies are still module-level state once the module is applied
   or bound at the top). *)
let rec walk_toplevel f str =
  List.iter
    (fun (si : structure_item) ->
      match si.pstr_desc with
      | Pstr_value (_, vbs) -> List.iter f vbs
      | Pstr_module mb -> walk_toplevel_me f mb.pmb_expr
      | Pstr_recmodule mbs -> List.iter (fun mb -> walk_toplevel_me f mb.pmb_expr) mbs
      | Pstr_include inc -> walk_toplevel_me f inc.pincl_mod
      | _ -> ())
    str

and walk_toplevel_me f me =
  match me.pmod_desc with
  | Pmod_structure str -> walk_toplevel f str
  | Pmod_constraint (me, _) -> walk_toplevel_me f me
  | Pmod_functor (_, me) -> walk_toplevel_me f me
  | _ -> ()

let collect_ctx str =
  let ctx =
    {
      float_bearing = false;
      mutable_fields = [];
      atomic_fields = [];
      mutex_fields = [];
      top_values = [];
      top_mutexes = [];
    }
  in
  let it =
    {
      Ast_iterator.default_iterator with
      type_declaration =
        (fun it td ->
          scan_type_decl ctx td;
          Ast_iterator.default_iterator.type_declaration it td);
    }
  in
  it.structure it str;
  walk_toplevel
    (fun vb ->
      match (peel_pat vb.pvb_pat).ppat_desc with
      | Ppat_var { txt = name; _ } ->
          ctx.top_values <- name :: ctx.top_values;
          (match (peel_expr vb.pvb_expr).pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
            when flatten txt = [ "Mutex"; "create" ] ->
              ctx.top_mutexes <- name :: ctx.top_mutexes
          | _ -> ())
      | _ -> ())
    str;
  ctx

(* ------------------------------------------------------------------ *)
(* Rules over expressions (D1/D2/D3)                                   *)

let d1_violation path =
  match path with
  | [ "Sys"; "time" ] -> Some "Sys.time"
  | [ "Unix"; ("gettimeofday" | "time" | "localtime" | "gmtime") ] ->
      Some (String.concat "." path)
  | [ "Random"; "State"; "make_self_init" ] -> Some "Random.State.make_self_init"
  | [ "Random"; _ ] -> Some (String.concat "." path)
  | _ -> None

let d2_violation path =
  match path with
  | [ "Hashtbl"; ("iter" | "fold" | "to_seq" | "to_seq_keys" | "to_seq_values") ] ->
      Some (String.concat "." path)
  | _ -> None

let d3_violation path =
  match path with
  | [ "compare" ] | [ "Stdlib"; "compare" ] | [ "Pervasives"; "compare" ] ->
      Some (String.concat "." path)
  | _ -> None

(* D6 (hot-tagged files only): the list builders named by the rule, plus
   closure literals in argument position (detected separately below). *)
let d6_violation path =
  match path with
  | [ "List"; ("map" | "init") ] -> Some (String.concat "." path)
  | _ -> None

(* D6 closure-argument sniff.  [Pexp_fun]'s parsetree representation
   changed between compiler-libs versions this linter builds against, so
   argument expressions are classified textually instead of by
   constructor: from the argument's source offset (the lexbuf is fed the
   whole file, so [pos_cnum] is an absolute offset), skip opening
   parens/[begin]/whitespace and test for the [fun]/[function] keyword.
   The parser relocates a parenthesized expression to span its parens, so
   the sniff lands on the right token. *)
let ident_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' -> true
  | _ -> false

let keyword_at text i kw =
  let k = String.length kw in
  i + k <= String.length text
  && String.sub text i k = kw
  && (i + k = String.length text || not (ident_char text.[i + k]))

let is_closure_literal text (e : expression) =
  let n = String.length text in
  let rec skip i =
    if i >= n then n
    else
      match text.[i] with
      | ' ' | '\t' | '\n' | '\r' | '(' -> skip (i + 1)
      | 'b' when keyword_at text i "begin" -> skip (i + 5)
      | _ -> i
  in
  let off = e.pexp_loc.Location.loc_start.Lexing.pos_cnum in
  off >= 0 && off < n
  &&
  let i = skip off in
  keyword_at text i "fun" || keyword_at text i "function"

(* ------------------------------------------------------------------ *)
(* D4: module-level mutable state                                      *)

let mutable_init ctx e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match flatten txt with
      | [ "ref" ] | [ "Stdlib"; "ref" ] -> Some "ref cell"
      | [ "Hashtbl"; "create" ] -> Some "Hashtbl.t"
      | [ "Buffer"; "create" ] -> Some "Buffer.t"
      | [ "Queue"; "create" ] -> Some "Queue.t"
      | [ "Stack"; "create" ] -> Some "Stack.t"
      | _ -> None)
  | Pexp_record (fields, _) ->
      let counts n = List.mem n ctx.mutable_fields && not (List.mem n ctx.atomic_fields) in
      if
        List.exists
          (fun (({ txt; _ } : Longident.t Location.loc), _) ->
            match txt with
            | Longident.Lident n -> counts n
            | _ -> counts (Longident.last txt))
          fields
      then Some "record with mutable fields"
      else None
  | _ -> None

let guarded_attr vb =
  List.find_map
    (fun (a : attribute) ->
      if a.attr_name.txt <> "es_lint.guarded" then None
      else
        match a.attr_payload with
        | PStr
            [
              {
                pstr_desc =
                  Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
                _;
              };
            ] ->
            Some (`Named s)
        | _ -> Some `Malformed)
    vb.pvb_attributes

let guard_exists ctx name =
  match String.split_on_char '.' name with
  | [ m ] -> List.mem m ctx.top_mutexes
  | [ v; f ] -> List.mem v ctx.top_values && List.mem f ctx.mutex_fields
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Driving one file                                                    *)

let parse_impl ~rel text =
  let lexbuf = Lexing.from_string text in
  lexbuf.Lexing.lex_curr_p <- { pos_fname = rel; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 };
  Parse.implementation lexbuf

let loc_of_exn exn =
  match Location.error_of_exn exn with
  | Some (`Ok e) -> Some e.Location.main.Location.loc
  | _ -> None

let lint_one config rel =
  let abs = Filename.concat config.root rel in
  let enabled r = List.mem r config.rules in
  let findings = ref [] and suppressed = ref [] in
  let emit ?(suppress = false) ~rule ~line ~col msg =
    let f = Finding.make ~rule ~file:rel ~line ~col msg in
    if suppress || Allowlist.mem config.allow ~rule_id:(Rule.id rule) ~path:rel then
      suppressed := f :: !suppressed
    else findings := f :: !findings
  in
  (* D5 needs no parse. *)
  let mli_required =
    match config.mli_mode with
    | Mli_always -> true
    | Mli_never -> false
    | Mli_by_path -> mli_required_by_path rel
  in
  if enabled Rule.D5 && mli_required && Filename.check_suffix rel ".ml" then begin
    let mli = Filename.chop_suffix abs ".ml" ^ ".mli" in
    if not (Sys.file_exists mli) then
      emit ~rule:Rule.D5 ~line:1 ~col:0
        (Printf.sprintf "missing sibling interface %s"
           (Filename.basename (Filename.chop_suffix rel ".ml" ^ ".mli")))
  end;
  let text = Source.read_file abs in
  match parse_impl ~rel text with
  | exception exn ->
      let line, col = match loc_of_exn exn with Some loc -> pos_of loc | None -> (1, 0) in
      emit ~rule:Rule.Parse_error ~line ~col "syntax error";
      (List.rev !findings, List.rev !suppressed)
  | str ->
      let ctx = collect_ctx str in
      let sorted_lines = Source.suppression_lines text in
      let hot = enabled Rule.D6 && Source.is_hot text in
      let cold_lines = Source.cold_lines text in
      let on_ident loc path =
        let line, col = pos_of loc in
        (match d1_violation path with
        | Some what when enabled Rule.D1 && not (d1_exempt rel) ->
            emit ~rule:Rule.D1 ~line ~col
              (Printf.sprintf
                 "nondeterministic call %s; route time through Es_obs.Obs.wall_clock and \
                  randomness through a seeded Es_util.Prng"
                 what)
        | _ -> ());
        (match d2_violation path with
        | Some what when enabled Rule.D2 ->
            emit
              ~suppress:(Source.suppressed_at sorted_lines ~line)
              ~rule:Rule.D2 ~line ~col
              (Printf.sprintf
                 "unordered %s; sort before the result can reach output or fingerprints, then \
                  mark the call site (* es_lint: sorted *)"
                 what)
        | _ -> ());
        (match d3_violation path with
        | Some what when enabled Rule.D3 && ctx.float_bearing ->
            emit ~rule:Rule.D3 ~line ~col
              (Printf.sprintf
                 "polymorphic %s in a float-bearing module; use Float.compare or an explicit \
                  comparator"
                 what)
        | _ -> ());
        match d6_violation path with
        | Some what when hot ->
            emit
              ~suppress:(Source.suppressed_at cold_lines ~line)
              ~rule:Rule.D6 ~line ~col
              (Printf.sprintf
                 "allocating %s in a hot-tagged file; use a preallocated-array loop or mark \
                  the call site (* es_lint: cold *)"
                 what)
        | _ -> ()
      in
      (* One D6 finding per application carrying closure-literal arguments,
         anchored at the application itself — cold markers sit above the
         call site, which may start lines before the closure token. *)
      let on_apply loc args =
        if hot && List.exists (fun (_, a) -> is_closure_literal text a) args then begin
          let line, col = pos_of loc in
          emit
            ~suppress:(Source.suppressed_at cold_lines ~line)
            ~rule:Rule.D6 ~line ~col
            "closure literal in argument position in a hot-tagged file; hoist it to a \
             top-level function or mark the call site (* es_lint: cold *)"
        end
      in
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun it e ->
              (match e.pexp_desc with
              | Pexp_ident { txt; loc } -> on_ident loc (flatten txt)
              | Pexp_apply (_, args) -> on_apply e.pexp_loc args
              | _ -> ());
              Ast_iterator.default_iterator.expr it e);
        }
      in
      it.structure it str;
      if enabled Rule.D4 then
        walk_toplevel
          (fun vb ->
            match (peel_pat vb.pvb_pat).ppat_desc with
            | Ppat_var { txt = name; _ } -> (
                match mutable_init ctx (peel_expr vb.pvb_expr) with
                | None -> ()
                | Some what -> (
                    let line, col = pos_of vb.pvb_pat.ppat_loc in
                    match guarded_attr vb with
                    | Some (`Named guard) when guard_exists ctx guard ->
                        emit ~suppress:true ~rule:Rule.D4 ~line ~col
                          (Printf.sprintf "%s %S guarded by %s" what name guard)
                    | Some (`Named guard) ->
                        emit ~rule:Rule.D4 ~line ~col
                          (Printf.sprintf
                             "[@@es_lint.guarded %S] on %S names no Mutex.t in this file" guard
                             name)
                    | Some `Malformed ->
                        emit ~rule:Rule.D4 ~line ~col
                          (Printf.sprintf
                             "[@@es_lint.guarded] on %S: payload must be a string literal \
                              naming a mutex"
                             name)
                    | None ->
                        emit ~rule:Rule.D4 ~line ~col
                          (Printf.sprintf
                             "module-level mutable state (%s) %S; guard it with a mutex and \
                              annotate [@@es_lint.guarded \"<mutex>\"]"
                             what name)))
            | _ -> ())
          str;
      (List.rev !findings, List.rev !suppressed)

(* ------------------------------------------------------------------ *)

let lint_files config paths =
  let paths =
    paths |> List.map normalize_rel
    |> List.filter (fun p -> Filename.check_suffix p ".ml")
    |> List.sort_uniq String.compare
  in
  let findings, suppressed =
    List.fold_left
      (fun (fs, ss) rel ->
        let f, s = lint_one config rel in
        (f :: fs, s :: ss))
      ([], []) paths
  in
  {
    findings = List.sort_uniq Finding.compare (List.concat findings);
    suppressed = List.sort_uniq Finding.compare (List.concat suppressed);
  }
