(* The analysis orchestrator.  Phase 1 ({!Summary}) parses each .ml once
   and produces both its per-file raw findings (D1–D4, D6, parse) and a
   serializable effect summary; phase 2 ({!Callgraph}) resolves the
   summaries into a whole-program call graph, fixpoints the effect
   lattice over its SCCs and fires the interprocedural rules (D7–D10)
   plus the cross-unit [@@es_lint.guarded] verifications.  This module
   wires the phases together, evaluates the one filesystem-dependent rule
   (D5) fresh every run, and applies the configuration — enabled rules
   and the allowlist — to the union.

   Everything stays list/Map-based on purpose: the linter that enforces
   "no unordered iteration feeding output" must itself be trivially
   order-independent, so it never touches Hashtbl.

   Known syntactic approximations (documented in DESIGN.md §11/§16):
   module aliases (`module H = Hashtbl`) hide D2 sites; D3 triggers on
   any bare [compare] in a file whose type declarations mention [float];
   D4 sees only directly-initialized module-level bindings, and its
   record check is name-based per file; D6 sees only the named List
   builders and syntactic closure literals in argument position; the
   call graph sees only direct applications of (possibly qualified)
   identifiers — functions passed as values are invisible to D7–D10, and
   the lock-order walk is linear in source order, so branch-local
   acquisitions blend across arms of the same function. *)

type mli_mode = Mli_by_path | Mli_always | Mli_never

type config = {
  rules : Rule.t list;
  allow : Allowlist.t;
  mli_mode : mli_mode;
  root : string;
  cache_dir : string option;
}

let default_config =
  {
    rules = Rule.all;
    allow = Allowlist.empty;
    mli_mode = Mli_by_path;
    root = ".";
    cache_dir = None;
  }

type result = { findings : Finding.t list; suppressed : Finding.t list }

type analysis = { summaries : Summary.t list; graph : Callgraph.t; result : result }

(* ------------------------------------------------------------------ *)
(* Path scoping                                                        *)

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let normalize_rel path =
  let path = if starts_with ~prefix:"./" path then String.sub path 2 (String.length path - 2) else path in
  String.concat "/" (List.filter (fun seg -> seg <> "" && seg <> ".") (String.split_on_char '/' path))

(* D1 carve-outs: the designated clock module and the benchmark harness
   (benches measure real wall time by definition).  The same files are
   exempt from D8 — clock effects neither originate nor fire there. *)
let d1_exempt rel = rel = "lib/obs/obs.ml" || starts_with ~prefix:"bench/" rel

(* D5 scope under [Mli_by_path]: the library and binary trees must ship
   interfaces; bench/, examples/ and tests stay exempt. *)
let mli_required_by_path rel = starts_with ~prefix:"lib/" rel || starts_with ~prefix:"bin/" rel

(* ------------------------------------------------------------------ *)

let analyze_files config paths =
  let paths =
    paths |> List.map normalize_rel
    |> List.filter (fun p -> Filename.check_suffix p ".ml")
    |> List.sort_uniq String.compare
  in
  let summaries =
    List.map
      (fun rel ->
        Summary.of_file ?cache_dir:config.cache_dir ~rel ~exempt:(d1_exempt rel)
          ~root:config.root ())
      paths
  in
  let graph = Callgraph.build summaries in
  let enabled r = r = Rule.Parse_error || List.mem r config.rules in
  let findings = ref [] in
  let suppressed = ref [] in
  let route ~inline (f : Finding.t) =
    if enabled f.Finding.rule then
      if inline || Allowlist.mem config.allow ~rule_id:(Rule.id f.Finding.rule) ~path:f.Finding.file
      then suppressed := f :: !suppressed
      else findings := f :: !findings
  in
  List.iter
    (fun (s : Summary.t) ->
      (* D5 is filesystem state, not parse state: evaluated fresh every
         run so a cache hit can never mask a deleted interface. *)
      let mli_required =
        match config.mli_mode with
        | Mli_always -> true
        | Mli_never -> false
        | Mli_by_path -> mli_required_by_path s.file
      in
      if mli_required then begin
        let mli = Filename.chop_suffix (Filename.concat config.root s.file) ".ml" ^ ".mli" in
        if not (Sys.file_exists mli) then
          route ~inline:false
            (Finding.make ~rule:Rule.D5 ~file:s.file ~line:1 ~col:0
               (Printf.sprintf "missing sibling interface %s"
                  (Filename.basename (Filename.chop_suffix s.file ".ml" ^ ".mli"))));
      end;
      List.iter
        (fun (r : Summary.raw_finding) ->
          route ~inline:r.rf_inline
            (Finding.make ~rule:r.rf_rule ~file:s.file ~line:r.rf_line ~col:r.rf_col r.rf_msg))
        s.raw)
    summaries;
  List.iter (fun (f, inline) -> route ~inline f) (Callgraph.findings graph);
  {
    summaries;
    graph;
    result =
      {
        findings = List.sort_uniq Finding.compare !findings;
        suppressed = List.sort_uniq Finding.compare !suppressed;
      };
  }

let lint_files config paths = (analyze_files config paths).result

let lint_one config rel =
  let r = lint_files config [ rel ] in
  (r.findings, r.suppressed)
