(** The committed legacy-exception file ([lint.allow]): `RULE:PATH` lines
    that suppress every finding of RULE in the file PATH.  Paths are
    repo-root-relative with forward slashes; [#] starts a comment. *)

type t

val empty : t

val of_entries : (string * string) list -> t
(** Build from (rule id, path) pairs; entries are sorted and deduped, so
    [entries (of_entries e)] is canonical. *)

val entries : t -> (string * string) list
(** Canonical (sorted, deduped) entry list. *)

val of_string : file:string -> string -> (t, string) result
(** Parse allow-file text; [file] is used in error messages only. *)

val load : string -> (t, string) result
(** Read and parse a file. *)

val to_lines : t -> string list
(** Render back to `RULE:PATH` lines; [of_string] of the joined lines
    round-trips to an equal [t]. *)

val mem : t -> rule_id:string -> path:string -> bool
