(** Ratchet baseline ([lint_findings.jsonl]): the committed findings
    inventory a CI run diffs against, failing only on findings absent
    from it.  The file is one schema-version header line followed by one
    sorted JSON object per finding; matching ignores line/col — a
    finding is baselined by (rule, file, message), so edits that merely
    shift line numbers don't resurrect frozen findings. *)

type t

val empty : t

val schema_line : string
(** The exact header line: [{"schema":"es_lint-baseline","version":1}]. *)

val of_findings : Finding.t list -> t

val mem : t -> Finding.t -> bool

val diff : t -> Finding.t list -> Finding.t list
(** Findings not covered by the baseline (order preserved). *)

val render : Finding.t list -> string
(** Header + sorted findings as JSONL — what [--write-baseline] commits. *)

val save : path:string -> Finding.t list -> unit

val of_string : file:string -> string -> (t, string) result
(** Parse baseline text; [file] is used in error messages only.  Rejects
    a missing/mismatched schema header and unparsable lines. *)

val load : string -> (t, string) result
