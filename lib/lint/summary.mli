(** Phase 1 of the interprocedural analysis: one parse of a compilation
    unit yields its per-file raw findings (D1–D4 and D6, evaluated under
    every configuration with inline suppressions recorded as a flag — the
    engine filters afterwards) plus a serializable effect summary: per-
    function direct effects, call edges, lock-order observations and
    Par/Domain fan-out sites for phase 2 ({!Callgraph}) to propagate.

    Summaries are a deterministic function of the file text alone, which
    makes them cacheable: {!of_file} keys cache entries by an FNV-1a
    content hash, so a warm run never re-parses an unchanged unit.  D5
    (interface presence) depends on the filesystem rather than the parse
    and is never part of a summary. *)

type raw_finding = {
  rf_rule : Rule.t;
  rf_line : int;
  rf_col : int;
  rf_msg : string;
  rf_inline : bool;
      (** disarmed by an inline mechanism (sorted/cold marker, verified
          guard) rather than the allowlist *)
}

type pending_guard = {
  pg_name : string;  (** the guarded binding *)
  pg_what : string;  (** "ref cell", "Hashtbl.t", … *)
  pg_guard : string list;  (** alias-resolved qualified path to verify *)
  pg_line : int;
  pg_col : int;
}

type site = { s_path : string list; s_line : int; s_col : int }

type pair_site = {
  pr_held : string list;
  pr_acq : string list;
  pr_line : int;
  pr_col : int;
}

type held_call = {
  hc_held : string list;
  hc_callee : string list;
  hc_line : int;
  hc_col : int;
}

type fn = {
  f_name : string;
      (** dotted path within the unit; a ["#par@line.col.i"] suffix marks a
          synthetic node holding the effects shipped to a fan-out sink *)
  mutable f_clock : (string * int) list;
  mutable f_allocs : (string * int) list;
  mutable f_muts : site list;
  mutable f_captured : (string * int) list;
  mutable f_locks : site list;
  mutable f_pairs : pair_site list;
  mutable f_held_calls : held_call list;
  mutable f_calls : site list;
}

type par_site = {
  ps_parent : string;
  ps_node : string;
  ps_sink : string;
  ps_line : int;
  ps_col : int;
}

type t = {
  file : string;
  unit_name : string;
  hot : bool;
  exempt : bool;
  cold_lines : int list;
  top_values : string list;
  top_mutexes : string list;
  mutex_fields : string list;
  mutables : (string * bool) list;
  pending_guards : pending_guard list;
  fns : fn list;
  par_sites : par_site list;
  raw : raw_finding list;
}

val unit_of_path : string -> string
(** Lowercased module basename: ["lib/util/par.ml"] ↦ ["par"]. *)

val display_unit : string -> string
(** Capitalized module name for messages: ["par"] ↦ ["Par"]. *)

val analyze : rel:string -> exempt:bool -> string -> t
(** Summarize file text.  [exempt] marks D1-exempt files (the clock
    module and [bench/]): they produce no D1 findings and contribute no
    clock effect to D8 propagation.  Parse failures yield a summary whose
    only content is the [parse] raw finding. *)

val of_file : ?cache_dir:string -> rel:string -> exempt:bool -> root:string -> unit -> t
(** Read [root/rel] and summarize it, going through the per-file cache in
    [cache_dir] when given: a hit (same path, same content hash, same
    format version) skips the parse entirely; a miss stores the fresh
    summary.  Cache corruption degrades to re-analysis, never to wrong
    results. *)

val format_version : string
(** First line of every serialized summary; bumping it invalidates all
    caches. *)

val to_string : t -> string
(** Serialize (stable text form; [of_string] round-trips). *)

val of_string : string -> t option
(** Parse a serialized summary; [None] on version mismatch or damage. *)
