(* Phase 1 of the interprocedural analysis: one parse of a compilation
   unit produces (a) the per-file D1–D6 raw findings exactly as the old
   single-phase engine emitted them, and (b) a serializable effect summary
   — per-function direct effects (clock/RNG reads, list-builder
   allocations, candidate toplevel mutations, lock acquisitions and the
   lock-order pairs observed while holding one) plus the call edges and
   Par/Domain fan-out sites phase 2 propagates over.

   Raw findings are config-independent: every rule is evaluated, inline
   suppressions (sorted/cold markers, locally-verified guards) are
   recorded as a flag, and the engine applies the enabled-rule filter and
   the allowlist afterwards.  That is what makes the summary cacheable:
   a cache hit must be byte-equivalent to a fresh parse under any
   configuration.  D5 (interface presence) is the one rule excluded here
   — it depends on the filesystem, not the parse, so the engine always
   evaluates it fresh.

   Like the rest of the linter, this module is Hashtbl-free and appends
   in source order, so a summary is a deterministic function of the file
   text alone. *)

open Parsetree

(* ------------------------------------------------------------------ *)
(* Types                                                               *)

type raw_finding = {
  rf_rule : Rule.t;
  rf_line : int;
  rf_col : int;
  rf_msg : string;
  rf_inline : bool;  (* disarmed by an inline mechanism, not the allowlist *)
}

type pending_guard = {
  pg_name : string;  (* the guarded binding *)
  pg_what : string;  (* "ref cell", "Hashtbl.t", … *)
  pg_guard : string list;  (* alias-resolved qualified path to verify *)
  pg_line : int;
  pg_col : int;
}

type site = { s_path : string list; s_line : int; s_col : int }
type pair_site = { pr_held : string list; pr_acq : string list; pr_line : int; pr_col : int }

type held_call = {
  hc_held : string list;
  hc_callee : string list;
  hc_line : int;
  hc_col : int;
}

type fn = {
  f_name : string;  (* dotted within the unit; "#par@L.C" suffix = synthetic *)
  mutable f_clock : (string * int) list;  (* direct D1 sources (what, line) *)
  mutable f_allocs : (string * int) list;  (* direct list builders (what, line) *)
  mutable f_muts : site list;  (* candidate toplevel mutations, unresolved *)
  mutable f_captured : (string * int) list;  (* closure-captured assignments *)
  mutable f_locks : site list;  (* mutex acquisitions *)
  mutable f_pairs : pair_site list;  (* direct lock-order pairs *)
  mutable f_held_calls : held_call list;  (* calls made while holding a lock *)
  mutable f_calls : site list;  (* call edges (callee path, line, col) *)
}

type par_site = {
  ps_parent : string;  (* enclosing function node *)
  ps_node : string;  (* the synthetic node holding the shipped effects *)
  ps_sink : string;  (* display name: "Par.parallel_map", "Domain.spawn" *)
  ps_line : int;
  ps_col : int;
}

type t = {
  file : string;  (* root-relative path *)
  unit_name : string;  (* lowercase module basename *)
  hot : bool;
  exempt : bool;  (* D1-exempt (clock module / bench) *)
  cold_lines : int list;
  top_values : string list;
  top_mutexes : string list;
  mutex_fields : string list;
  mutables : (string * bool) list;  (* toplevel mutable bindings, guarded? *)
  pending_guards : pending_guard list;
  fns : fn list;
  par_sites : par_site list;
  raw : raw_finding list;
}

let unit_of_path rel = String.uncapitalize_ascii (Filename.remove_extension (Filename.basename rel))

let display_unit u = String.capitalize_ascii u

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

let parse_impl ~rel text =
  let lexbuf = Lexing.from_string text in
  lexbuf.Lexing.lex_curr_p <- { pos_fname = rel; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 };
  Parse.implementation lexbuf

let loc_of_exn exn =
  match Location.error_of_exn exn with
  | Some (`Ok e) -> Some e.Location.main.Location.loc
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Per-file declaration context (types, toplevel bindings, aliases)    *)

type ctx = {
  mutable float_bearing : bool;
  mutable mutable_fields : string list;
  mutable atomic_fields : string list;
  mutable mutex_fields_c : string list;
  mutable top_values_c : string list;
  mutable top_mutexes_c : string list;
  mutable value_aliases : (string * string list) list;  (* let m = <path> *)
  mutable module_aliases : (string * string list) list;  (* module M = <path> *)
}

let rec core_type_mentions_float ty =
  match ty.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, args) -> (
      match Effects.flatten txt with
      | [ "float" ] | [ "Float"; "t" ] -> true
      | _ -> List.exists core_type_mentions_float args)
  | Ptyp_tuple tys -> List.exists core_type_mentions_float tys
  | Ptyp_arrow (_, a, b) -> core_type_mentions_float a || core_type_mentions_float b
  | Ptyp_alias (ty, _) | Ptyp_poly (_, ty) -> core_type_mentions_float ty
  | _ -> false

let type_is path ty =
  match ty.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, _) -> Effects.flatten txt = path
  | _ -> false

let scan_type_decl ctx (td : type_declaration) =
  let scan_label (ld : label_declaration) =
    if core_type_mentions_float ld.pld_type then ctx.float_bearing <- true;
    if ld.pld_mutable = Mutable then ctx.mutable_fields <- ld.pld_name.txt :: ctx.mutable_fields;
    if type_is [ "Atomic"; "t" ] ld.pld_type then
      ctx.atomic_fields <- ld.pld_name.txt :: ctx.atomic_fields;
    if type_is [ "Mutex"; "t" ] ld.pld_type then
      ctx.mutex_fields_c <- ld.pld_name.txt :: ctx.mutex_fields_c
  in
  let scan_constructor (cd : constructor_declaration) =
    match cd.pcd_args with
    | Pcstr_tuple tys -> if List.exists core_type_mentions_float tys then ctx.float_bearing <- true
    | Pcstr_record lds -> List.iter scan_label lds
  in
  (match td.ptype_manifest with
  | Some ty -> if core_type_mentions_float ty then ctx.float_bearing <- true
  | None -> ());
  match td.ptype_kind with
  | Ptype_record lds -> List.iter scan_label lds
  | Ptype_variant cds -> List.iter scan_constructor cds
  | Ptype_abstract | Ptype_open -> ()

(* Walk module-level bindings, recursing into nested module structures;
   [f] receives the binding together with the dotted module prefix. *)
let rec walk_toplevel ~prefix f str =
  List.iter
    (fun (si : structure_item) ->
      match si.pstr_desc with
      | Pstr_value (_, vbs) -> List.iter (f ~prefix) vbs
      | Pstr_module mb ->
          let sub =
            match mb.pmb_name.txt with
            | Some n -> if prefix = "" then n else prefix ^ "." ^ n
            | None -> prefix
          in
          walk_toplevel_me ~prefix:sub f mb.pmb_expr
      | Pstr_recmodule mbs ->
          List.iter
            (fun mb ->
              let sub =
                match mb.pmb_name.txt with
                | Some n -> if prefix = "" then n else prefix ^ "." ^ n
                | None -> prefix
              in
              walk_toplevel_me ~prefix:sub f mb.pmb_expr)
            mbs
      | Pstr_include inc -> walk_toplevel_me ~prefix f inc.pincl_mod
      | _ -> ())
    str

and walk_toplevel_me ~prefix f me =
  match me.pmod_desc with
  | Pmod_structure str -> walk_toplevel ~prefix f str
  | Pmod_constraint (me, _) -> walk_toplevel_me ~prefix f me
  | Pmod_functor (_, me) -> walk_toplevel_me ~prefix f me
  | _ -> ()

let rec collect_module_aliases ctx str =
  List.iter
    (fun (si : structure_item) ->
      match si.pstr_desc with
      | Pstr_module mb -> (
          match (mb.pmb_name.txt, mb.pmb_expr.pmod_desc) with
          | Some n, Pmod_ident { txt; _ } ->
              ctx.module_aliases <- (n, Effects.flatten txt) :: ctx.module_aliases
          | Some _, Pmod_structure sub -> collect_module_aliases ctx sub
          | _ -> ())
      | _ -> ())
    str

let collect_ctx str =
  let ctx =
    {
      float_bearing = false;
      mutable_fields = [];
      atomic_fields = [];
      mutex_fields_c = [];
      top_values_c = [];
      top_mutexes_c = [];
      value_aliases = [];
      module_aliases = [];
    }
  in
  let it =
    {
      Ast_iterator.default_iterator with
      type_declaration =
        (fun it td ->
          scan_type_decl ctx td;
          Ast_iterator.default_iterator.type_declaration it td);
    }
  in
  it.structure it str;
  collect_module_aliases ctx str;
  walk_toplevel ~prefix:""
    (fun ~prefix:_ vb ->
      match (Effects.peel_pat vb.pvb_pat).ppat_desc with
      | Ppat_var { txt = name; _ } -> (
          ctx.top_values_c <- name :: ctx.top_values_c;
          match (Effects.peel_expr vb.pvb_expr).pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
            when Effects.flatten txt = [ "Mutex"; "create" ] ->
              ctx.top_mutexes_c <- name :: ctx.top_mutexes_c
          | Pexp_ident { txt; _ } -> (
              match Effects.flatten txt with
              | [] -> ()
              | p -> ctx.value_aliases <- (name, p) :: ctx.value_aliases)
          | _ -> ())
      | _ -> ())
    str;
  ctx

(* ------------------------------------------------------------------ *)
(* D4: module-level mutable state and guard resolution                 *)

let mutable_init ctx e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match Effects.flatten txt with
      | [ "ref" ] | [ "Stdlib"; "ref" ] -> Some "ref cell"
      | [ "Hashtbl"; "create" ] -> Some "Hashtbl.t"
      | [ "Buffer"; "create" ] -> Some "Buffer.t"
      | [ "Queue"; "create" ] -> Some "Queue.t"
      | [ "Stack"; "create" ] -> Some "Stack.t"
      | _ -> None)
  | Pexp_record (fields, _) ->
      let counts n = List.mem n ctx.mutable_fields && not (List.mem n ctx.atomic_fields) in
      if
        List.exists
          (fun (({ txt; _ } : Longident.t Location.loc), _) ->
            match txt with
            | Longident.Lident n -> counts n
            | _ -> counts (Longident.last txt))
          fields
      then Some "record with mutable fields"
      else None
  | _ -> None

let guarded_attr vb =
  List.find_map
    (fun (a : attribute) ->
      if a.attr_name.txt <> "es_lint.guarded" then None
      else
        match a.attr_payload with
        | PStr
            [
              {
                pstr_desc =
                  Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
                _;
              };
            ] ->
            Some (`Named s)
        | _ -> Some `Malformed)
    vb.pvb_attributes

let is_module_seg s = String.length s > 0 && s.[0] >= 'A' && s.[0] <= 'Z'

(* Resolve a guard name against this file's declarations.  Aliases are
   followed one hop: a toplevel [let m = other] or [module M = Other]
   substitutes before classification.  Qualified paths (any module
   segment) cannot be checked per-file and become pending guards, verified
   against the named unit's summary in phase 2. *)
type guard_status = Verified | Unverified | Deferred of string list

let resolve_guard ctx name =
  let segs = String.split_on_char '.' name in
  let segs =
    match segs with
    | first :: rest when not (is_module_seg first) -> (
        match List.assoc_opt first ctx.value_aliases with
        | Some target -> target @ rest
        | None -> segs)
    | first :: rest -> (
        match List.assoc_opt first ctx.module_aliases with
        | Some target -> target @ rest
        | None -> segs)
    | [] -> segs
  in
  if List.exists is_module_seg segs then Deferred segs
  else
    match segs with
    | [ m ] -> if List.mem m ctx.top_mutexes_c then Verified else Unverified
    | [ v; f ] ->
        if List.mem v ctx.top_values_c && List.mem f ctx.mutex_fields_c then Verified
        else Unverified
    | _ -> Unverified

(* ------------------------------------------------------------------ *)
(* The extraction walk                                                 *)

let new_fn name =
  {
    f_name = name;
    f_clock = [];
    f_allocs = [];
    f_muts = [];
    f_captured = [];
    f_locks = [];
    f_pairs = [];
    f_held_calls = [];
    f_calls = [];
  }

(* Names bound anywhere inside an expression (fun parameters and let
   bindings alike): the complement is what a closure captures. *)
let bound_names e =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } -> acc := txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.pat it p);
    }
  in
  it.expr it e;
  !acc

type walk_state = {
  text : string;
  exempt : bool;
  hot : bool;
  cold_lines : int list;
  sorted_lines : int list;
  ctx : ctx;
  mutable node : fn;  (* effects accumulate here *)
  mutable bound : string list option;  (* Some names inside a par closure *)
  mutable held : string list list;  (* raw lock paths currently held *)
  mutable done_fns : fn list;  (* completed synthetic nodes, reversed *)
  mutable sites : par_site list;  (* reversed *)
  mutable raw_rev : raw_finding list;
}

let emit st ?(inline = false) ~rule ~line ~col msg =
  st.raw_rev <- { rf_rule = rule; rf_line = line; rf_col = col; rf_msg = msg; rf_inline = inline } :: st.raw_rev

let record_mut st e loc =
  match Effects.field_chain e with
  | None -> ()
  | Some (base, _fields) ->
      let line, col = Effects.pos_of loc in
      st.node.f_muts <- { s_path = base; s_line = line; s_col = col } :: st.node.f_muts;
      (match (st.bound, base) with
      | Some bound, [ name ] when not (is_module_seg name) ->
          if not (List.mem name bound) then
            st.node.f_captured <- (name, line) :: st.node.f_captured
      | _ -> ())

let lock_path e =
  match Effects.field_chain e with Some (base, fields) -> Some (base @ fields) | None -> None

let positional args = List.filter_map (fun (lbl, a) -> match lbl with Asttypes.Nolabel -> Some a | _ -> None) args

(* Emission shared by the D1/D2/D3/D6 per-file rules: called on every
   identifier occurrence, mirroring the single-phase engine. *)
let on_ident st loc path =
  let line, col = Effects.pos_of loc in
  (match Effects.d1_violation path with
  | Some what when not st.exempt ->
      st.node.f_clock <- (what, line) :: st.node.f_clock;
      emit st ~rule:Rule.D1 ~line ~col
        (Printf.sprintf
           "nondeterministic call %s; route time through Es_obs.Obs.wall_clock and randomness \
            through a seeded Es_util.Prng"
           what)
  | _ -> ());
  (match Effects.d2_violation path with
  | Some what ->
      emit st
        ~inline:(Source.suppressed_at st.sorted_lines ~line)
        ~rule:Rule.D2 ~line ~col
        (Printf.sprintf
           "unordered %s; sort before the result can reach output or fingerprints, then mark \
            the call site (* es_lint: sorted *)"
           what)
  | _ -> ());
  (match Effects.d3_violation path with
  | Some what when st.ctx.float_bearing ->
      emit st ~rule:Rule.D3 ~line ~col
        (Printf.sprintf
           "polymorphic %s in a float-bearing module; use Float.compare or an explicit \
            comparator"
           what)
  | _ -> ());
  match Effects.d6_violation path with
  | Some what ->
      (* The allocation effect skips cold-marked sites: the marker is the
         reviewed claim that this allocation is a deliberate cold path, so
         it neither fires D6 here nor propagates to D10 call sites. *)
      if not (Source.suppressed_at st.cold_lines ~line) then
        st.node.f_allocs <- (what, line) :: st.node.f_allocs;
      if st.hot then
        emit st
          ~inline:(Source.suppressed_at st.cold_lines ~line)
          ~rule:Rule.D6 ~line ~col
          (Printf.sprintf
             "allocating %s in a hot-tagged file; use a preallocated-array loop or mark the \
              call site (* es_lint: cold *)"
             what)
  | _ -> ()

let rec walk_expr st it (e : expression) =
  (* A par-sink application takes over traversal of its own arguments (the
     closure walks under its synthetic node, everything else under the
     parent), so the default recursion must not re-visit them. *)
  let handled = ref false in
  (match e.pexp_desc with
  | Pexp_ident { txt; loc } -> on_ident st loc (Effects.flatten txt)
  | Pexp_setfield (lhs, _, _) -> record_mut st lhs e.pexp_loc
  | Pexp_apply (head, args) -> (
      let line, col = Effects.pos_of e.pexp_loc in
      (* One D6 finding per application carrying closure-literal arguments,
         anchored at the application itself — cold markers sit above the
         call site, which may start lines before the closure token. *)
      if st.hot && List.exists (fun (_, a) -> Effects.is_closure_literal st.text a) args then
        emit st
          ~inline:(Source.suppressed_at st.cold_lines ~line)
          ~rule:Rule.D6 ~line ~col
          "closure literal in argument position in a hot-tagged file; hoist it to a top-level \
           function or mark the call site (* es_lint: cold *)";
      match (Effects.peel_expr head).pexp_desc with
      | Pexp_ident { txt; _ } -> (
          let path = Effects.flatten txt in
          let pos = positional args in
          if Effects.assignment_op path then (
            match pos with lhs :: _ -> record_mut st lhs e.pexp_loc | [] -> ())
          else if Effects.incr_decr path then (
            match pos with arg :: _ -> record_mut st arg e.pexp_loc | [] -> ());
          (match Effects.container_mutator path with
          | Some (_, idxs) ->
              List.iteri (fun i a -> if List.mem i idxs then record_mut st a e.pexp_loc) pos
          | None -> ());
          (match Effects.mutex_op path with
          | Some Effects.Lock -> (
              match pos with
              | arg :: _ -> (
                  match lock_path arg with
                  | Some lk ->
                      st.node.f_locks <-
                        { s_path = lk; s_line = line; s_col = col } :: st.node.f_locks;
                      List.iter
                        (fun held ->
                          st.node.f_pairs <-
                            { pr_held = held; pr_acq = lk; pr_line = line; pr_col = col }
                            :: st.node.f_pairs)
                        st.held;
                      st.held <- lk :: st.held
                  | None -> ())
              | [] -> ())
          | Some Effects.Unlock -> (
              match pos with
              | arg :: _ -> (
                  match lock_path arg with
                  | Some lk ->
                      let rec drop = function
                        | [] -> []
                        | h :: t -> if h = lk then t else h :: drop t
                      in
                      st.held <- drop st.held
                  | None -> ())
              | [] -> ())
          | None -> ());
          if Effects.callable_head path && Effects.mutex_op path = None then begin
            st.node.f_calls <- { s_path = path; s_line = line; s_col = col } :: st.node.f_calls;
            List.iter
              (fun held ->
                st.node.f_held_calls <-
                  { hc_held = held; hc_callee = path; hc_line = line; hc_col = col }
                  :: st.node.f_held_calls)
              st.held
          end;
          match Effects.par_sink path with
          | Some sink ->
              handled := true;
              let parent = st.node in
              let parent_bound = st.bound in
              let add_site node_name =
                st.sites <-
                  {
                    ps_parent = parent.f_name;
                    ps_node = node_name;
                    ps_sink = sink;
                    ps_line = line;
                    ps_col = col;
                  }
                  :: st.sites
              in
              let idx = ref (-1) in
              List.iter
                (fun (lbl, a) ->
                  let positional = lbl = Asttypes.Nolabel in
                  if positional then incr idx;
                  if positional && Effects.is_closure_literal st.text a then begin
                    let node_name = Printf.sprintf "%s#par@%d.%d.%d" parent.f_name line col !idx in
                    let node = new_fn node_name in
                    add_site node_name;
                    st.node <- node;
                    st.bound <- Some (bound_names a);
                    it.Ast_iterator.expr it a;
                    st.done_fns <- node :: st.done_fns;
                    st.node <- parent;
                    st.bound <- parent_bound
                  end
                  else
                    match (Effects.peel_expr a).pexp_desc with
                    | Pexp_ident { txt; _ }
                      when positional && Effects.callable_head (Effects.flatten txt) ->
                        (* A function reference shipped by name: give it a
                           synthetic node holding one call edge, so its
                           transitive effects cross the fan-out like a
                           closure's would. *)
                        let fpath = Effects.flatten txt in
                        let node_name =
                          Printf.sprintf "%s#par@%d.%d.%d" parent.f_name line col !idx
                        in
                        let node = new_fn node_name in
                        node.f_calls <- [ { s_path = fpath; s_line = line; s_col = col } ];
                        st.done_fns <- node :: st.done_fns;
                        add_site node_name
                    | _ -> it.Ast_iterator.expr it a)
                args
          | None -> ())
      | _ -> ())
  | _ -> ());
  if not !handled then Ast_iterator.default_iterator.expr it e

and iterator_of st =
  {
    Ast_iterator.default_iterator with
    expr = (fun it e -> walk_expr st it e);
  }

(* ------------------------------------------------------------------ *)
(* Putting a file together                                             *)

let analyze ~rel ~exempt text =
  let unit_name = unit_of_path rel in
  let hot = Source.is_hot text in
  let cold_lines = Source.cold_lines text in
  let empty =
    {
      file = rel;
      unit_name;
      hot;
      exempt;
      cold_lines;
      top_values = [];
      top_mutexes = [];
      mutex_fields = [];
      mutables = [];
      pending_guards = [];
      fns = [];
      par_sites = [];
      raw = [];
    }
  in
  match parse_impl ~rel text with
  | exception exn ->
      let line, col = match loc_of_exn exn with Some loc -> Effects.pos_of loc | None -> (1, 0) in
      {
        empty with
        raw =
          [ { rf_rule = Rule.Parse_error; rf_line = line; rf_col = col; rf_msg = "syntax error"; rf_inline = false } ];
      }
  | str ->
      let ctx = collect_ctx str in
      let st =
        {
          text;
          exempt;
          hot;
          cold_lines;
          sorted_lines = Source.suppression_lines text;
          ctx;
          node = new_fn "";
          bound = None;
          held = [];
          done_fns = [];
          sites = [];
          raw_rev = [];
        }
      in
      let it = iterator_of st in
      let fns = ref [] in
      let mutables = ref [] in
      let pending = ref [] in
      (* Walk every toplevel binding as one function node; [let () = …] and
         other nameless bindings become per-line [_init@] nodes whose effects
         run at module initialization. *)
      let visit_binding ~prefix vb =
        let line, col = Effects.pos_of vb.pvb_pat.ppat_loc in
        let base_name =
          match (Effects.peel_pat vb.pvb_pat).ppat_desc with
          | Ppat_var { txt; _ } -> txt
          | _ -> Printf.sprintf "_init@%d" line
        in
        let name = if prefix = "" then base_name else prefix ^ "." ^ base_name in
        let node = new_fn name in
        st.node <- node;
        st.bound <- None;
        st.held <- [];
        (* Eta aliases ([let wrap = base]) carry the target's effects: record
           the bare identifier as a call edge. *)
        (match (Effects.peel_expr vb.pvb_expr).pexp_desc with
        | Pexp_ident { txt; _ } when Effects.callable_head (Effects.flatten txt) ->
            node.f_calls <- [ { s_path = Effects.flatten txt; s_line = line; s_col = col } ]
        | _ -> ());
        it.Ast_iterator.expr it vb.pvb_expr;
        List.iter (fun a -> it.Ast_iterator.attribute it a) vb.pvb_attributes;
        fns := node :: !fns;
        (* D4 over the same binding. *)
        match (Effects.peel_pat vb.pvb_pat).ppat_desc with
        | Ppat_var { txt = bname; _ } -> (
            match mutable_init ctx (Effects.peel_expr vb.pvb_expr) with
            | None -> ()
            | Some what -> (
                match guarded_attr vb with
                | Some (`Named guard) -> (
                    match resolve_guard ctx guard with
                    | Verified ->
                        mutables := (bname, true) :: !mutables;
                        emit st ~inline:true ~rule:Rule.D4 ~line ~col
                          (Printf.sprintf "%s %S guarded by %s" what bname guard)
                    | Deferred path ->
                        (* Cross-unit guard: verified against the named unit's
                           summary in phase 2; the binding counts as guarded
                           for D7 either way — a bad name is its own D4
                           finding. *)
                        mutables := (bname, true) :: !mutables;
                        pending :=
                          {
                            pg_name = bname;
                            pg_what = what;
                            pg_guard = path;
                            pg_line = line;
                            pg_col = col;
                          }
                          :: !pending
                    | Unverified ->
                        mutables := (bname, false) :: !mutables;
                        emit st ~rule:Rule.D4 ~line ~col
                          (Printf.sprintf
                             "[@@es_lint.guarded %S] on %S names no Mutex.t in this file" guard
                             bname))
                | Some `Malformed ->
                    mutables := (bname, false) :: !mutables;
                    emit st ~rule:Rule.D4 ~line ~col
                      (Printf.sprintf
                         "[@@es_lint.guarded] on %S: payload must be a string literal naming \
                          a mutex"
                         bname)
                | None ->
                    mutables := (bname, false) :: !mutables;
                    emit st ~rule:Rule.D4 ~line ~col
                      (Printf.sprintf
                         "module-level mutable state (%s) %S; guard it with a mutex and \
                          annotate [@@es_lint.guarded \"<mutex>\"]"
                         what bname)))
        | _ -> ()
      in
      walk_toplevel ~prefix:"" visit_binding str;
      (* Toplevel expressions outside value bindings ([Pstr_eval]) still need
         the per-file rules; give them init nodes too. *)
      List.iter
        (fun (si : structure_item) ->
          match si.pstr_desc with
          | Pstr_eval (e, _) ->
              let line, _ = Effects.pos_of si.pstr_loc in
              let node = new_fn (Printf.sprintf "_init@%d" line) in
              st.node <- node;
              st.bound <- None;
              st.held <- [];
              it.Ast_iterator.expr it e;
              fns := node :: !fns
          | _ -> ())
        str;
      {
        file = rel;
        unit_name;
        hot;
        exempt;
        cold_lines;
        top_values = List.rev ctx.top_values_c;
        top_mutexes = List.rev ctx.top_mutexes_c;
        mutex_fields = List.rev ctx.mutex_fields_c;
        mutables = List.rev !mutables;
        pending_guards = List.rev !pending;
        fns = List.rev_append st.done_fns (List.rev !fns) |> List.rev;
        par_sites = List.rev st.sites;
        raw = List.rev st.raw_rev;
      }

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)

let format_version = "eslint-summary 3"

let dot = String.concat "."
let undot s = String.split_on_char '.' s

let to_string (t : t) =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  line "%s" format_version;
  line "file\t%s" t.file;
  line "unit\t%s" t.unit_name;
  line "hot\t%d" (if t.hot then 1 else 0);
  line "exempt\t%d" (if t.exempt then 1 else 0);
  List.iter (fun l -> line "cold\t%d" l) t.cold_lines;
  List.iter (fun v -> line "value\t%s" v) t.top_values;
  List.iter (fun m -> line "mutex\t%s" m) t.top_mutexes;
  List.iter (fun f -> line "mutexfield\t%s" f) t.mutex_fields;
  List.iter (fun (n, g) -> line "mutable\t%s\t%d" n (if g then 1 else 0)) t.mutables;
  List.iter
    (fun p -> line "pending\t%s\t%s\t%s\t%d\t%d" p.pg_name p.pg_what (dot p.pg_guard) p.pg_line p.pg_col)
    t.pending_guards;
  List.iter
    (fun r ->
      line "raw\t%s\t%d\t%d\t%d\t%s" (Rule.id r.rf_rule) r.rf_line r.rf_col
        (if r.rf_inline then 1 else 0)
        r.rf_msg)
    t.raw;
  List.iter
    (fun p -> line "par\t%s\t%s\t%s\t%d\t%d" p.ps_parent p.ps_node p.ps_sink p.ps_line p.ps_col)
    t.par_sites;
  List.iter
    (fun f ->
      line "fn\t%s" f.f_name;
      List.iter (fun (w, l) -> line "clock\t%s\t%d" w l) f.f_clock;
      List.iter (fun (w, l) -> line "alloc\t%s\t%d" w l) f.f_allocs;
      List.iter (fun m -> line "mut\t%s\t%d\t%d" (dot m.s_path) m.s_line m.s_col) f.f_muts;
      List.iter (fun (n, l) -> line "cap\t%s\t%d" n l) f.f_captured;
      List.iter (fun m -> line "lock\t%s\t%d\t%d" (dot m.s_path) m.s_line m.s_col) f.f_locks;
      List.iter
        (fun p -> line "pair\t%s\t%s\t%d\t%d" (dot p.pr_held) (dot p.pr_acq) p.pr_line p.pr_col)
        f.f_pairs;
      List.iter
        (fun h -> line "hcall\t%s\t%s\t%d\t%d" (dot h.hc_held) (dot h.hc_callee) h.hc_line h.hc_col)
        f.f_held_calls;
      List.iter (fun c -> line "call\t%s\t%d\t%d" (dot c.s_path) c.s_line c.s_col) f.f_calls)
    t.fns;
  Buffer.contents b

let of_string text =
  let lines = String.split_on_char '\n' text in
  match lines with
  | v :: lines when v = format_version -> (
      let t =
        ref
          {
            file = "";
            unit_name = "";
            hot = false;
            exempt = false;
            cold_lines = [];
            top_values = [];
            top_mutexes = [];
            mutex_fields = [];
            mutables = [];
            pending_guards = [];
            fns = [];
            par_sites = [];
            raw = [];
          }
      in
      let cur : fn option ref = ref None in
      let flush_fn () =
        match !cur with
        | Some f ->
            (* Reverse the accumulated per-fn lists back to file order. *)
            let f =
              {
                f with
                f_clock = List.rev f.f_clock;
                f_allocs = List.rev f.f_allocs;
                f_muts = List.rev f.f_muts;
                f_captured = List.rev f.f_captured;
                f_locks = List.rev f.f_locks;
                f_pairs = List.rev f.f_pairs;
                f_held_calls = List.rev f.f_held_calls;
                f_calls = List.rev f.f_calls;
              }
            in
            t := { !t with fns = f :: !t.fns };
            cur := None
        | None -> ()
      in
      let bad = ref false in
      let int_of s = match int_of_string_opt s with Some i -> i | None -> bad := true; 0 in
      let with_fn k =
        match !cur with Some f -> k f | None -> bad := true
      in
      List.iter
        (fun line ->
          if line <> "" && not !bad then
            match String.split_on_char '\t' line with
            | [ "file"; v ] -> t := { !t with file = v }
            | [ "unit"; v ] -> t := { !t with unit_name = v }
            | [ "hot"; v ] -> t := { !t with hot = v = "1" }
            | [ "exempt"; v ] -> t := { !t with exempt = v = "1" }
            | [ "cold"; v ] -> t := { !t with cold_lines = int_of v :: !t.cold_lines }
            | [ "value"; v ] -> t := { !t with top_values = v :: !t.top_values }
            | [ "mutex"; v ] -> t := { !t with top_mutexes = v :: !t.top_mutexes }
            | [ "mutexfield"; v ] -> t := { !t with mutex_fields = v :: !t.mutex_fields }
            | [ "mutable"; n; g ] -> t := { !t with mutables = (n, g = "1") :: !t.mutables }
            | [ "pending"; n; w; g; l; c ] ->
                t :=
                  {
                    !t with
                    pending_guards =
                      { pg_name = n; pg_what = w; pg_guard = undot g; pg_line = int_of l; pg_col = int_of c }
                      :: !t.pending_guards;
                  }
            | "raw" :: rule :: l :: c :: inl :: msg_parts -> (
                match Rule.of_id rule with
                | Some r ->
                    t :=
                      {
                        !t with
                        raw =
                          {
                            rf_rule = r;
                            rf_line = int_of l;
                            rf_col = int_of c;
                            rf_inline = inl = "1";
                            rf_msg = String.concat "\t" msg_parts;
                          }
                          :: !t.raw;
                      }
                | None -> bad := true)
            | [ "par"; parent; node; sink; l; c ] ->
                t :=
                  {
                    !t with
                    par_sites =
                      { ps_parent = parent; ps_node = node; ps_sink = sink; ps_line = int_of l; ps_col = int_of c }
                      :: !t.par_sites;
                  }
            | [ "fn"; name ] ->
                flush_fn ();
                cur := Some (new_fn name)
            | [ "clock"; w; l ] -> with_fn (fun f -> f.f_clock <- (w, int_of l) :: f.f_clock)
            | [ "alloc"; w; l ] -> with_fn (fun f -> f.f_allocs <- (w, int_of l) :: f.f_allocs)
            | [ "mut"; p; l; c ] ->
                with_fn (fun f ->
                    f.f_muts <- { s_path = undot p; s_line = int_of l; s_col = int_of c } :: f.f_muts)
            | [ "cap"; n; l ] -> with_fn (fun f -> f.f_captured <- (n, int_of l) :: f.f_captured)
            | [ "lock"; p; l; c ] ->
                with_fn (fun f ->
                    f.f_locks <- { s_path = undot p; s_line = int_of l; s_col = int_of c } :: f.f_locks)
            | [ "pair"; h; a; l; c ] ->
                with_fn (fun f ->
                    f.f_pairs <-
                      { pr_held = undot h; pr_acq = undot a; pr_line = int_of l; pr_col = int_of c }
                      :: f.f_pairs)
            | [ "hcall"; h; callee; l; c ] ->
                with_fn (fun f ->
                    f.f_held_calls <-
                      { hc_held = undot h; hc_callee = undot callee; hc_line = int_of l; hc_col = int_of c }
                      :: f.f_held_calls)
            | [ "call"; p; l; c ] ->
                with_fn (fun f ->
                    f.f_calls <- { s_path = undot p; s_line = int_of l; s_col = int_of c } :: f.f_calls)
            | _ -> bad := true)
        lines;
      flush_fn ();
      if !bad then None
      else
        Some
          {
            !t with
            cold_lines = List.rev !t.cold_lines;
            top_values = List.rev !t.top_values;
            top_mutexes = List.rev !t.top_mutexes;
            mutex_fields = List.rev !t.mutex_fields;
            mutables = List.rev !t.mutables;
            pending_guards = List.rev !t.pending_guards;
            fns = List.rev !t.fns;
            par_sites = List.rev !t.par_sites;
            raw = List.rev !t.raw;
          })
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The per-file summary cache                                          *)

let content_key text =
  let h = Es_util.Fnv.create () in
  Es_util.Fnv.add_string h format_version;
  Es_util.Fnv.add_string h text;
  Es_util.Fnv.to_hex h

let mangle rel =
  String.map (fun c -> match c with '/' | '\\' -> '_' | c -> c) rel

let cache_path ~dir ~rel ~text = Filename.concat dir (mangle rel ^ "." ^ content_key text ^ ".sum")

let load_cached ~dir ~rel ~text =
  let path = cache_path ~dir ~rel ~text in
  if Sys.file_exists path then (
    match of_string (Source.read_file path) with
    | Some t when t.file = rel -> Some t
    | _ -> None)
  else None

let store_cached ~dir ~rel ~text t =
  (try if not (Sys.file_exists dir) then Sys.mkdir dir 0o755 with Sys_error _ -> ());
  let path = cache_path ~dir ~rel ~text in
  try
    let oc = open_out_bin path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string t))
  with Sys_error _ -> ()

let of_file ?cache_dir ~rel ~exempt ~root () =
  let abs = Filename.concat root rel in
  let text = Source.read_file abs in
  match cache_dir with
  | None -> analyze ~rel ~exempt text
  | Some dir -> (
      match load_cached ~dir ~rel ~text with
      | Some t when t.exempt = exempt -> t
      | _ ->
          let t = analyze ~rel ~exempt text in
          store_cached ~dir ~rel ~text t;
          t)
