type t = { rule : Rule.t; file : string; line : int; col : int; msg : string }

let make ~rule ~file ~line ~col msg = { rule; file; line; col; msg }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = Rule.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.msg b.msg

let to_line f = Printf.sprintf "%s:%d:%d [%s] %s" f.file f.line f.col (Rule.id f.rule) f.msg

(* Minimal JSON string escaping — enough for paths and messages (ASCII
   source text; control chars escaped numerically). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_jsonl f =
  Printf.sprintf {|{"rule":"%s","file":"%s","line":%d,"col":%d,"message":"%s"}|}
    (Rule.id f.rule) (json_escape f.file) f.line f.col (json_escape f.msg)
