(** Raw source-text helpers: file slurping and the line-based
    [(* es_lint: sorted *)] / [(* es_lint: hot *)] / [(* es_lint: cold *)]
    marker scans (comments are not part of the parsetree, so D2/D6 markers
    are matched textually). *)

val read_file : string -> string
(** Whole file contents (binary-safe). *)

val suppression_lines : string -> int list
(** 1-based line numbers containing the [es_lint: sorted] marker, in
    ascending order. *)

val is_hot : string -> bool
(** Whether the file carries the [es_lint: hot] tag anywhere — opting the
    whole file into the D6 hot-path allocation rule. *)

val cold_lines : string -> int list
(** 1-based line numbers containing the [es_lint: cold] marker (D6
    suppression), in ascending order. *)

val suppressed_at : int list -> line:int -> bool
(** A finding on [line] is suppressed when the marker sits on the same line
    or on the line directly above it. *)
