(** Raw source-text helpers: file slurping and the line-based
    [(* es_lint: sorted *)] suppression scan (comments are not part of the
    parsetree, so D2 suppressions are matched textually). *)

val read_file : string -> string
(** Whole file contents (binary-safe). *)

val suppression_lines : string -> int list
(** 1-based line numbers containing the [es_lint: sorted] marker, in
    ascending order. *)

val suppressed_at : int list -> line:int -> bool
(** A finding on [line] is suppressed when the marker sits on the same line
    or on the line directly above it. *)
