(** Shared vocabulary for both analysis phases: path classifiers for the
    per-file rules (D1/D2/D3/D6), the fan-out sinks and container mutators
    the interprocedural rules track (D7–D10), and small version-portable
    parsetree helpers. *)

val flatten : Longident.t -> string list
(** [Longident.flatten] that returns [[]] instead of raising on
    applicative paths. *)

val peel_expr : Parsetree.expression -> Parsetree.expression
(** Strip [Pexp_constraint]/[Pexp_coerce] wrappers. *)

val peel_pat : Parsetree.pattern -> Parsetree.pattern
(** Strip [Ppat_constraint] wrappers. *)

val pos_of : Location.t -> int * int
(** (1-based line, 0-based column) of the location's start. *)

val field_chain : Parsetree.expression -> (string list * string list) option
(** Peel a chain of field projections down to its base identifier:
    [pool.queue] ↦ [(["pool"], ["queue"])]; [None] when the base is not a
    plain identifier. *)

val d1_violation : string list -> string option
(** Wall-clock / global-RNG read; returns the display name. *)

val d2_violation : string list -> string option
(** Unordered [Hashtbl] iteration. *)

val d3_violation : string list -> string option
(** Bare polymorphic [compare]. *)

val d6_violation : string list -> string option
(** Per-element list builders ([List.map]/[List.init]) — also the
    "allocates" effect propagated for D10. *)

val par_sink : string list -> string option
(** [Par.parallel_map]/[parallel_map_array]/[parallel_iter]/[both] (any
    qualification) or [Domain.spawn]; returns the display name. *)

val container_mutator : string list -> (string * int list) option
(** Stdlib call that mutates a container argument
    ([Hashtbl.add]/[replace]/…, [Buffer.add_*], [Queue], [Stack]);
    returns the display name and the positional indices of the mutated
    argument(s). *)

val assignment_op : string list -> bool
(** The [:=] operator. *)

val incr_decr : string list -> bool
(** [incr]/[decr]. *)

type lock_op = Lock | Unlock

val mutex_op : string list -> lock_op option
(** [Mutex.lock]/[Mutex.unlock]. *)

val callable_head : string list -> bool
(** Whether the application head is a plain identifier worth recording as
    a call-graph edge (last segment alphabetic — not an operator). *)

val is_closure_literal : string -> Parsetree.expression -> bool
(** Textual sniff: does the expression's source text (after parens /
    [begin] / whitespace) start with [fun]/[function]?  Version-portable
    replacement for matching [Pexp_fun]. *)
