(** Phase 2 of the interprocedural analysis: the module-qualified
    whole-program call graph over unit summaries ({!Summary}), the SCC
    effect fixpoint, and the D7–D10 rules plus cross-unit
    [[@@es_lint.guarded]] verification (DESIGN.md §16).

    Determinism contract: nodes, adjacency lists and witness sets are all
    kept canonically sorted, so {!findings}, {!explain} and {!dump} are
    pure functions of the summary {e set} — any permutation of the input
    list produces byte-identical output. *)

type t

val build : Summary.t list -> t
(** Resolve calls, fixpoint effects over SCCs, build the lock-order
    graph.  Clock/alloc/race effects propagate over every edge; lock
    sets propagate over synchronous call edges only (a lock held around
    a [Par]/[Domain] fan-out is not held inside the shipped work). *)

val findings : t -> (Finding.t * bool) list
(** All interprocedural findings (D7/D8/D9/D10) plus the resolved
    cross-unit D4 pending guards.  The boolean marks findings disarmed
    inline (a verified guard, a [cold] marker on a D10 call site); the
    engine routes those to the suppressed list and applies the
    enabled-rule filter and allowlist on the rest. *)

val explain : t -> rule:Rule.t -> file:string -> line:int -> string list
(** The [--why RULE:FILE:LINE] chain: for D7/D8/D10, the shortest call
    path from the finding's node to a function with the direct effect,
    ending in the witness source position; for D9, the lock cycle the
    witnessed edge completes.  Empty when no interprocedural finding is
    anchored there. *)

val dump : t -> string
(** The [--effects-dump] artifact: one line per node with a non-empty
    transitive effect set ([clock]/[alloc]/[races]/[locks]), sorted by
    node id. *)
