(* Quickstart: the EdgeSurgeon public API in ~60 lines.

   Build a tiny edge cluster by hand, let the joint optimizer pick a surgery
   plan and resource grant for every device, inspect them, and verify the
   result in the discrete-event simulator.

     dune exec examples/quickstart.exe *)

open Es_edge

let () =
  (* 1. Models come from the zoo: layer-accurate DAGs with analytic costs. *)
  let resnet = Es_dnn.Zoo.resnet18 () in
  let mobilenet = Es_dnn.Zoo.mobilenet_v2 () in
  Printf.printf "resnet18: %.2f GFLOPs, mobilenet_v2: %.2f GFLOPs\n"
    (Es_dnn.Graph.total_flops resnet /. 1e9)
    (Es_dnn.Graph.total_flops mobilenet /. 1e9);

  (* 2. Describe the cluster: two wireless devices, one GPU edge server. *)
  let cluster =
    Cluster.make
      ~devices:
        [
          Cluster.device ~id:0 ~proc:Processor.raspberry_pi ~link:Link.wifi ~model:resnet
            ~rate:2.0 ~deadline:0.15 ~accuracy_floor:0.62 ();
          Cluster.device ~id:1 ~proc:Processor.smartphone ~link:Link.nr5g ~model:mobilenet
            ~rate:4.0 ~deadline:0.08 ~accuracy_floor:0.64 ();
        ]
      ~servers:[ Cluster.server ~id:0 ~proc:Processor.edge_gpu ~ap_bandwidth_mbps:200.0 () ]
  in

  (* 3. Jointly optimize model surgery + resource allocation. *)
  let out = Es_joint.Optimizer.solve cluster in
  Printf.printf "\noptimizer: objective %.4f after %d iterations (%.3fs)\n"
    out.Es_joint.Optimizer.objective out.Es_joint.Optimizer.iterations
    out.Es_joint.Optimizer.solve_time_s;
  Array.iter
    (fun d ->
      Format.printf "  %a@." Decision.pp d;
      let b = Latency.breakdown cluster d in
      Printf.printf "    device %.1fms + uplink %.1fms + server %.1fms + downlink %.1fms = %.1fms\n"
        (1000. *. b.Latency.device_s) (1000. *. b.Latency.uplink_s)
        (1000. *. b.Latency.server_s) (1000. *. b.Latency.downlink_s)
        (1000. *. Latency.total b))
    out.Es_joint.Optimizer.decisions;

  (* 4. Verify under queueing in the simulator. *)
  let report = Es_sim.Runner.run cluster out.Es_joint.Optimizer.decisions in
  Printf.printf "\nsimulated 60s: DSR %.1f%%, mean %.1fms, p99 %.1fms over %d requests\n"
    (100. *. report.Es_sim.Metrics.dsr)
    (1000. *. report.Es_sim.Metrics.mean_latency_s)
    (1000. *. report.Es_sim.Metrics.p99_s)
    report.Es_sim.Metrics.total_generated
