(* Drone swarm over LTE.

   Twelve drones with Jetson-class onboard compute stream detection
   workloads over a bandwidth-poor LTE uplink to a single ground-station
   GPU.  The example shows (a) how the optimizer's placement shifts from
   offloading to on-board execution as the uplink shrinks, and (b) online
   re-optimization when half the swarm starts a high-rate survey burst.

     dune exec examples/drone_swarm.exe *)

open Es_edge

let () =
  let base = Es_workload.Scenarios.drone_swarm in

  (* (a) Bandwidth sweep: watch offloading collapse gracefully. *)
  Printf.printf "%-10s %8s %10s %12s %12s\n" "AP(Mbps)" "DSR(%)" "mean(ms)" "offloading"
    "mean-width";
  List.iter
    (fun mbps ->
      let cluster = Scenario.build (Scenario.with_ap_mbps mbps base) in
      let out = Es_joint.Optimizer.solve cluster in
      let report = Es_sim.Runner.run cluster out.Es_joint.Optimizer.decisions in
      let offloading =
        Array.fold_left
          (fun acc d -> if Decision.offloads d then acc + 1 else acc)
          0 out.Es_joint.Optimizer.decisions
      in
      let widths =
        Array.map
          (fun (d : Decision.t) -> d.Decision.plan.Es_surgery.Plan.width)
          out.Es_joint.Optimizer.decisions
      in
      Printf.printf "%-10.0f %8.1f %10.1f %9d/%d %12.2f\n" mbps
        (100. *. report.Es_sim.Metrics.dsr)
        (1000. *. report.Es_sim.Metrics.mean_latency_s)
        offloading (Cluster.n_devices cluster) (Es_util.Stats.mean_of widths))
    [ 200.0; 100.0; 50.0; 20.0; 8.0 ];

  (* (b) Survey burst: doubled load for a minute; adaptive vs static. *)
  let cluster = Scenario.build base in
  let profile = Es_workload.Profiles.step_burst ~start_s:60.0 ~stop_s:120.0 ~factor:2.0 in
  let options = { Es_sim.Runner.default_options with duration_s = 180.0 } in
  let adaptive = Es_joint.Online.run ~options ~epoch_s:15.0 ~rate_profile:profile cluster in
  let static = Es_joint.Online.run_static ~options ~rate_profile:profile cluster in
  let summary label (r : Es_sim.Metrics.report) =
    Printf.printf "%-10s DSR %5.1f%%  mean %7.1fms  p99 %8.1fms\n" label
      (100. *. r.Es_sim.Metrics.dsr)
      (1000. *. r.Es_sim.Metrics.mean_latency_s)
      (1000. *. r.Es_sim.Metrics.p99_s)
  in
  Printf.printf "\nsurvey burst x2 during [60s,120s):\n";
  summary "static" static.Es_joint.Online.report;
  summary
    (Printf.sprintf "adapt(%dx)" adaptive.Es_joint.Online.resolve_count)
    adaptive.Es_joint.Online.report
