(* Augmented-reality assistant.

   Eight wearable-class devices run per-frame scene understanding with
   50-120 ms motion-to-photon deadlines over 5G/WiFi.  The example explores
   the accuracy-latency trade-off: how much accuracy must the deployment
   give up as the latency budget tightens, and what does the multi-exit
   deployment look like?

     dune exec examples/ar_assistant.exe *)

open Es_edge

let () =
  let base = Es_workload.Scenarios.ar_assistant in
  Printf.printf "AR assistant: %d devices, deadlines %.0f-%.0f ms\n\n" base.Scenario.n_devices
    (1000. *. fst base.Scenario.deadline_range)
    (1000. *. snd base.Scenario.deadline_range);

  (* Sweep the latency budget: scale every deadline down and watch the
     optimizer trade accuracy for speed. *)
  Printf.printf "%-12s %8s %10s %10s %10s\n" "deadline-x" "DSR(%)" "mean(ms)" "mean-acc"
    "surgical";
  List.iter
    (fun scale ->
      let lo, hi = base.Scenario.deadline_range in
      let spec = { base with Scenario.deadline_range = (lo *. scale, hi *. scale) } in
      let cluster = Scenario.build spec in
      let out = Es_joint.Optimizer.solve cluster in
      let report = Es_sim.Runner.run cluster out.Es_joint.Optimizer.decisions in
      let accs =
        Array.map
          (fun (d : Decision.t) -> d.Decision.plan.Es_surgery.Plan.accuracy)
          out.Es_joint.Optimizer.decisions
      in
      let surgical =
        Array.fold_left
          (fun acc (d : Decision.t) ->
            let p = d.Decision.plan in
            if p.Es_surgery.Plan.width < 1.0 || p.Es_surgery.Plan.exit_node <> None then acc + 1
            else acc)
          0 out.Es_joint.Optimizer.decisions
      in
      Printf.printf "%-12.2f %8.1f %10.1f %10.3f %7d/%d\n" scale
        (100. *. report.Es_sim.Metrics.dsr)
        (1000. *. report.Es_sim.Metrics.mean_latency_s)
        (Es_util.Stats.mean_of accs) surgical (Array.length accs))
    [ 2.0; 1.0; 0.75; 0.5; 0.35 ];

  (* A multi-exit deployment for one wearable model: where do inputs leave? *)
  let model = Es_dnn.Zoo.mobilenet_v2 () in
  let me = Es_surgery.Multi_exit.build model in
  Printf.printf "\nmulti-exit mobilenet_v2 deployment (input-dependent exits):\n";
  Array.iteri
    (fun i (p : Es_surgery.Plan.t) ->
      Printf.printf "  exit %d: %5.1f%% of inputs, %6.1f MFLOPs, accuracy %.3f\n" i
        (100. *. me.Es_surgery.Multi_exit.probs.(i))
        (Es_dnn.Graph.total_flops p.Es_surgery.Plan.graph /. 1e6)
        p.Es_surgery.Plan.accuracy)
    me.Es_surgery.Multi_exit.exits;
  Printf.printf "  expected compute: %.1f MFLOPs (full model %.1f), deployment accuracy %.3f\n"
    (Es_surgery.Multi_exit.expected_flops me /. 1e6)
    (Es_dnn.Graph.total_flops model /. 1e6)
    me.Es_surgery.Multi_exit.deployment_accuracy
