examples/ar_assistant.ml: Array Decision Es_dnn Es_edge Es_joint Es_sim Es_surgery Es_util Es_workload List Printf Scenario
