examples/quickstart.ml: Array Cluster Decision Es_dnn Es_edge Es_joint Es_sim Format Latency Link Printf Processor
