examples/smart_city.mli:
