examples/drone_swarm.mli:
