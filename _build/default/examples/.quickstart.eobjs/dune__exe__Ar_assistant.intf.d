examples/ar_assistant.mli:
