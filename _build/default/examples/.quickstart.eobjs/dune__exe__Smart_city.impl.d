examples/smart_city.ml: Array Cluster Decision Es_baselines Es_edge Es_joint Es_sim Es_surgery Es_workload Format List Printf Scenario
