examples/drone_swarm.ml: Array Cluster Decision Es_edge Es_joint Es_sim Es_surgery Es_util Es_workload List Printf Scenario
