examples/custom_model.ml: Array Cluster Decision Es_dnn Es_edge Es_joint Es_sim Es_surgery Filename Format Graph Layer Link List Printf Processor Serialize Shape Sys
