examples/quickstart.mli:
