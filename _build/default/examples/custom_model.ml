(* Bringing your own model.

   EdgeSurgeon is not limited to the zoo: any layer DAG built through
   Es_dnn.Graph.Builder (or loaded from the textual model format) gets the
   full treatment — surgery candidates, joint optimization, simulation.
   This example builds a compact audio/keyword-spotting-style CNN from
   scratch, saves and reloads it through the serializer, and deploys it.

     dune exec examples/custom_model.exe *)

open Es_dnn
open Es_edge

let build_kws_net () =
  (* A small conv net over a 1x64x64 spectrogram with two exit points. *)
  let conv out_c k s p = Layer.Conv { out_c; kernel = k; stride = s; pad = p; groups = 1 } in
  let b, x = Graph.Builder.create ~name:"kws_net" ~input:(Shape.map ~c:1 ~h:64 ~w:64) in
  let x = Graph.Builder.add b (conv 32 3 1 1) [ x ] in
  let x = Graph.Builder.add b Layer.Batch_norm [ x ] in
  let x = Graph.Builder.add b Layer.Relu [ x ] in
  let x = Graph.Builder.add b (Layer.Pool { kind = Layer.Max; kernel = 2; stride = 2; pad = 0 }) [ x ] in
  let x = Graph.Builder.add b (conv 64 3 1 1) [ x ] in
  let x = Graph.Builder.add b Layer.Batch_norm [ x ] in
  let x = Graph.Builder.add b ~exitable:true Layer.Relu [ x ] in
  let x = Graph.Builder.add b (Layer.Pool { kind = Layer.Max; kernel = 2; stride = 2; pad = 0 }) [ x ] in
  let x = Graph.Builder.add b (conv 128 3 1 1) [ x ] in
  let x = Graph.Builder.add b Layer.Batch_norm [ x ] in
  let x = Graph.Builder.add b ~exitable:true Layer.Relu [ x ] in
  let x = Graph.Builder.add b (conv 128 3 1 1) [ x ] in
  let x = Graph.Builder.add b Layer.Relu [ x ] in
  let x = Graph.Builder.add b (Layer.Global_pool Layer.Avg) [ x ] in
  let x = Graph.Builder.add b Layer.Flatten [ x ] in
  let x = Graph.Builder.add b ~name:"logits" (Layer.Fc { out_features = 35 }) [ x ] in
  let x = Graph.Builder.add b Layer.Softmax [ x ] in
  Graph.Builder.finish ~output:x b

let () =
  let model = build_kws_net () in
  (match Graph.validate model with
  | Ok () -> Printf.printf "built %s: %.1f MFLOPs, %.2f M params, %d exit points\n"
               model.Graph.name
               (Graph.total_flops model /. 1e6)
               (Graph.total_params model /. 1e6)
               (List.length (Graph.exit_candidate_ids model))
  | Error e -> failwith e);

  (* Round-trip through the on-disk model format. *)
  let path = Filename.temp_file "kws_net" ".esm" in
  Serialize.save model ~path;
  let model =
    match Serialize.load ~path with Ok g -> g | Error e -> failwith e
  in
  Sys.remove path;
  Printf.printf "serialized and reloaded from disk\n";

  (* Surgery space: unknown models fall back to the generic accuracy
     profile, so candidates still carry a sane accuracy ladder. *)
  let candidates = Es_surgery.Candidate.pareto_candidates model in
  Printf.printf "%d Pareto surgery candidates; e.g. %s\n" (List.length candidates)
    (Es_surgery.Plan.describe (List.nth candidates (List.length candidates / 2)));

  (* Deploy on a small fleet of microphones and optimize jointly. *)
  let cluster =
    Cluster.make
      ~devices:
        (List.init 6 (fun i ->
             Cluster.device ~id:i ~proc:Processor.iot_board ~link:Link.wifi ~model
               ~rate:5.0 ~deadline:0.05 ~accuracy_floor:0.60 ()))
      ~servers:[ Cluster.server ~id:0 ~proc:Processor.edge_gpu_small ~ap_bandwidth_mbps:150.0 () ]
  in
  let out = Es_joint.Optimizer.solve cluster in
  Array.iter (fun d -> Format.printf "  %a@." Decision.pp d) out.Es_joint.Optimizer.decisions;
  let report = Es_sim.Runner.run cluster out.Es_joint.Optimizer.decisions in
  Printf.printf "simulated: DSR %.1f%%, mean %.1fms over %d requests\n"
    (100. *. report.Es_sim.Metrics.dsr)
    (1000. *. report.Es_sim.Metrics.mean_latency_s)
    report.Es_sim.Metrics.total_generated
