(* Smart-city camera analytics.

   24 street cameras (IoT boards and Raspberry Pis, a few Jetson cabinets)
   run detection and classification models against two curbside servers.
   The example compares every policy on the same deployment and then shows
   what surgery the joint optimizer actually performed per camera.

     dune exec examples/smart_city.exe *)

open Es_edge

let () =
  let cluster = Scenario.build Es_workload.Scenarios.smart_city in
  Format.printf "%a@." Cluster.pp_summary cluster;

  (* Side-by-side policy comparison under simulation. *)
  Printf.printf "%-14s %8s %10s %10s %10s\n" "policy" "DSR(%)" "mean(ms)" "p95(ms)" "p99(ms)";
  List.iter
    (fun (p : Es_baselines.Baselines.t) ->
      let decisions = p.Es_baselines.Baselines.solve cluster in
      let report = Es_sim.Runner.run cluster decisions in
      Printf.printf "%-14s %8.1f %10.1f %10.1f %10.1f\n" p.Es_baselines.Baselines.name
        (100. *. report.Es_sim.Metrics.dsr)
        (1000. *. report.Es_sim.Metrics.mean_latency_s)
        (1000. *. report.Es_sim.Metrics.p95_s)
        (1000. *. report.Es_sim.Metrics.p99_s))
    (Es_baselines.Baselines.all ());

  (* What did the joint optimizer decide, camera by camera? *)
  let out = Es_joint.Optimizer.solve cluster in
  Printf.printf "\nEdgeSurgeon decisions (%d cameras):\n" (Cluster.n_devices cluster);
  Printf.printf "%-30s %-9s %6s %6s %9s %9s %7s\n" "camera" "placement" "width" "exit"
    "bw(Mbps)" "share(%)" "acc";
  Array.iter
    (fun (d : Decision.t) ->
      let dev = cluster.Cluster.devices.(d.Decision.device) in
      let plan = d.Decision.plan in
      let placement =
        if Es_surgery.Plan.is_device_only plan then "local"
        else if Es_surgery.Plan.is_server_only plan then
          Printf.sprintf "srv%d" d.Decision.server
        else Printf.sprintf "split@%d" plan.Es_surgery.Plan.cut
      in
      Printf.printf "%-30s %-9s %6.2f %6s %9.1f %9.1f %7.3f\n" dev.Cluster.dev_name placement
        plan.Es_surgery.Plan.width
        (match plan.Es_surgery.Plan.exit_node with
        | None -> "full"
        | Some id -> string_of_int id)
        (d.Decision.bandwidth_bps /. 1e6)
        (100. *. d.Decision.compute_share)
        plan.Es_surgery.Plan.accuracy)
    out.Es_joint.Optimizer.decisions
