bench/common.ml: Array Decision Es_baselines Es_edge Es_sim Es_surgery Es_util List Printf
