bench/main.mli:
