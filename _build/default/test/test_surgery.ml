open Es_dnn
open Es_surgery

let qtest ?(count = 100) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

let resnet18 = Zoo.resnet18 ()
let alexnet = Zoo.alexnet ()
let yolo = Zoo.yolo_tiny ()

(* ---------- Accuracy ---------- *)

let test_accuracy_full_model () =
  let p = Accuracy.profile_of_model "resnet18" in
  Alcotest.(check (float 1e-9)) "full depth & width = published accuracy" p.Accuracy.full_accuracy
    (Accuracy.predict p ~depth_frac:1.0 ~width:1.0)

let test_accuracy_monotone_depth () =
  let p = Accuracy.profile_of_model "resnet50" in
  let prev = ref 0.0 in
  List.iter
    (fun d ->
      let a = Accuracy.predict p ~depth_frac:d ~width:1.0 in
      Alcotest.(check bool) "deeper is at least as accurate" true (a >= !prev -. 1e-12);
      prev := a)
    [ 0.1; 0.3; 0.5; 0.7; 0.9; 1.0 ]

let test_accuracy_monotone_width () =
  let p = Accuracy.profile_of_model "mobilenet_v1" in
  let a_half = Accuracy.predict p ~depth_frac:1.0 ~width:0.5 in
  let a_full = Accuracy.predict p ~depth_frac:1.0 ~width:1.0 in
  Alcotest.(check bool) "wider is more accurate" true (a_full > a_half)

let test_accuracy_errors () =
  let p = Accuracy.profile_of_model "alexnet" in
  Alcotest.check_raises "bad depth" (Invalid_argument "Accuracy.predict: depth_frac outside (0,1]")
    (fun () -> ignore (Accuracy.predict p ~depth_frac:0.0 ~width:1.0));
  Alcotest.check_raises "bad width" (Invalid_argument "Accuracy.predict: width outside (0,1]")
    (fun () -> ignore (Accuracy.predict p ~depth_frac:1.0 ~width:1.5))

let test_accuracy_unknown_model_generic () =
  let p = Accuracy.profile_of_model "mystery_net" in
  Alcotest.(check bool) "generic profile is sane" true
    (p.Accuracy.full_accuracy > 0.0 && p.Accuracy.full_accuracy <= 1.0)

let test_exit_distribution_sums_to_one () =
  let probs = Accuracy.exit_distribution [| 0.4; 0.6; 0.7 |] in
  let total = Array.fold_left ( +. ) 0.0 probs in
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 total;
  Array.iter (fun p -> Alcotest.(check bool) "non-negative" true (p >= 0.0)) probs

let test_exit_distribution_kappa () =
  (* Higher kappa = harder inputs = fewer early exits. *)
  let acc = [| 0.4; 0.6; 0.7 |] in
  let easy = Accuracy.exit_distribution ~kappa:1.0 acc in
  let hard = Accuracy.exit_distribution ~kappa:6.0 acc in
  Alcotest.(check bool) "kappa shifts mass deeper" true (hard.(0) < easy.(0))

let test_expected_accuracy () =
  let e = Accuracy.expected_accuracy [| 0.5; 0.5 |] [| 0.6; 0.8 |] in
  Alcotest.(check (float 1e-9)) "inner product" 0.7 e;
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Accuracy.expected_accuracy: length mismatch") (fun () ->
      ignore (Accuracy.expected_accuracy [| 1.0 |] [| 0.5; 0.5 |]))

let prop_exit_distribution_valid =
  qtest "exit distribution is a distribution for any accuracy ladder"
    QCheck.(list_of_size (Gen.int_range 1 8) (float_range 0.1 1.0))
    (fun accs ->
      let sorted = List.sort compare accs in
      let probs = Accuracy.exit_distribution (Array.of_list sorted) in
      let total = Array.fold_left ( +. ) 0.0 probs in
      Array.for_all (fun p -> p >= -1e-9) probs && Float.abs (total -. 1.0) < 1e-9)

(* ---------- Plan ---------- *)

let test_truncate_shapes () =
  let exits = Graph.exit_candidate_ids resnet18 in
  List.iter
    (fun id ->
      let t = Plan.truncate_at resnet18 id in
      (match Graph.validate t with Ok () -> () | Error e -> Alcotest.fail e);
      Alcotest.(check bool) "classifier head: 1000 classes" true
        (Shape.equal (Graph.output_shape t) (Shape.vec 1000));
      (* The last exit sits just before the original head, so its truncation
         costs about the same as the base; earlier exits must be strictly
         cheaper.  Allow 1% slack for the fresh exit head. *)
      Alcotest.(check bool) "truncation no bigger than the base" true
        (Graph.total_flops t <= 1.01 *. Graph.total_flops resnet18))
    exits;
  let first = Plan.truncate_at resnet18 (List.hd exits) in
  Alcotest.(check bool) "first exit strictly cheaper" true
    (Graph.total_flops first < 0.6 *. Graph.total_flops resnet18)

let test_truncate_detector () =
  let exits = Graph.exit_candidate_ids yolo in
  let t = Plan.truncate_at yolo (List.hd exits) in
  (match Graph.validate t with Ok () -> () | Error e -> Alcotest.fail e);
  match Graph.output_shape t with
  | Shape.Map { c; _ } -> Alcotest.(check int) "detector head keeps channels" 125 c
  | Shape.Vec _ -> Alcotest.fail "detector exit must stay convolutional"

let test_truncate_at_output_is_identity () =
  let t = Plan.truncate_at resnet18 resnet18.Graph.output in
  Alcotest.(check bool) "same graph" true (t == resnet18)

let test_plan_make_defaults () =
  let p = Plan.make resnet18 in
  Alcotest.(check bool) "full offload by default" true (Plan.is_server_only p);
  Alcotest.(check (float 1e-9)) "no device work" 0.0 (Plan.dev_flops p);
  Alcotest.(check (float 1e-9)) "depth fraction 1" 1.0 p.Plan.depth_frac;
  Alcotest.(check bool) "transfer = input bytes" true
    (Plan.transfer_bytes p = float_of_int (Shape.bytes resnet18.Graph.input_shape))

let test_plan_device_only () =
  let p = Plan.device_only resnet18 in
  Alcotest.(check bool) "is device only" true (Plan.is_device_only p);
  Alcotest.(check (float 1e-9)) "no server work" 0.0 (Plan.srv_flops p);
  Alcotest.(check (float 1e-9)) "no transfer" 0.0 (Plan.transfer_bytes p);
  Alcotest.(check (float 1e-9)) "no result downlink" 0.0 (Plan.result_bytes p)

let test_plan_flops_partition () =
  let n = Graph.n_nodes resnet18 in
  List.iter
    (fun cut ->
      let p = Plan.make ~cut resnet18 in
      Alcotest.(check (float 1.0)) "dev + srv = total"
        (Graph.total_flops resnet18)
        (Plan.dev_flops p +. Plan.srv_flops p))
    [ 0; 1; n / 3; n / 2; n - 1; n ]

let test_plan_validation () =
  Alcotest.check_raises "bad width" (Invalid_argument "Plan.make: width outside (0,1]")
    (fun () -> ignore (Plan.make ~width:0.0 resnet18));
  Alcotest.check_raises "bad cut" (Invalid_argument "Plan.make: cut out of range") (fun () ->
      ignore (Plan.make ~cut:10_000 resnet18));
  Alcotest.check_raises "non-exit node"
    (Invalid_argument "Plan.make: node 1 is not an exit candidate") (fun () ->
      ignore (Plan.make ~exit_node:1 resnet18))

let test_plan_width_reduces_cost_and_accuracy () =
  let full = Plan.device_only resnet18 in
  let slim = Plan.device_only ~width:0.5 resnet18 in
  Alcotest.(check bool) "slim has fewer flops" true (Plan.dev_flops slim < Plan.dev_flops full);
  Alcotest.(check bool) "slim is less accurate" true (slim.Plan.accuracy < full.Plan.accuracy)

let test_plan_exit_reduces_cost_and_accuracy () =
  let exits = Graph.exit_candidate_ids resnet18 in
  let early = Plan.device_only ~exit_node:(List.hd exits) resnet18 in
  let full = Plan.device_only resnet18 in
  Alcotest.(check bool) "early exit cheaper" true (Plan.dev_flops early < Plan.dev_flops full);
  Alcotest.(check bool) "early exit less accurate" true (early.Plan.accuracy < full.Plan.accuracy);
  Alcotest.(check bool) "depth fraction < 1" true (early.Plan.depth_frac < 1.0)

let test_plan_times_consistent () =
  let perf = Profile.perf ~flops_per_s:1e10 ~mem_bytes_per_s:1e10 ~layer_overhead_s:1e-5 in
  let n = Graph.n_nodes alexnet in
  let p = Plan.make ~cut:(n / 2) alexnet in
  let whole = Profile.total_latency perf p.Plan.graph in
  Alcotest.(check (float 1e-9)) "device + server = whole model" whole
    (Plan.device_time perf p +. Plan.server_time perf p)

let prop_with_cut_preserves_surgery =
  qtest "with_cut only moves the partition"
    QCheck.(int_range 0 70)
    (fun cut ->
      let base = Plan.make ~width:0.75 resnet18 in
      let cut = min cut (Graph.n_nodes base.Plan.graph) in
      let p = Plan.with_cut base cut in
      p.Plan.accuracy = base.Plan.accuracy
      && p.Plan.width = base.Plan.width
      && p.Plan.graph == base.Plan.graph
      && Float.abs (Plan.dev_flops p +. Plan.srv_flops p -. Graph.total_flops base.Plan.graph)
         < 1.0)

(* ---------- Memory footprint ---------- *)

let test_mem_monotone_in_cut () =
  let prev = ref 0.0 in
  let n = Graph.n_nodes resnet18 in
  List.iter
    (fun cut ->
      let m = Plan.device_mem_bytes (Plan.make ~cut resnet18) in
      Alcotest.(check bool) "footprint grows with the prefix" true (m >= !prev);
      prev := m)
    [ 0; n / 4; n / 2; n ]

let test_mem_zero_when_fully_offloaded () =
  Alcotest.(check (float 0.0)) "server-only holds nothing" 0.0
    (Plan.device_mem_bytes (Plan.server_only resnet18))

let test_mem_quantization_shrinks () =
  let fp32 = Plan.device_only resnet18 in
  let int8 = Plan.device_only ~precision:Precision.Int8 resnet18 in
  Alcotest.(check (float 1.0)) "int8 quarters the footprint"
    (Plan.device_mem_bytes fp32 /. 4.0)
    (Plan.device_mem_bytes int8)

let test_mem_vgg_exceeds_iot_board () =
  let vgg = Zoo.vgg16 () in
  let p = Plan.device_only vgg in
  (* 138M params at fp32 = 553 MB > the 512 MB IoT board. *)
  Alcotest.(check bool) "vgg16 fp32 does not fit an IoT board" true
    (Plan.device_mem_bytes p > 0.5e9);
  Alcotest.(check bool) "but dominated by weights, sane magnitude" true
    (Plan.device_mem_bytes p < 1e9)

(* ---------- Candidate ---------- *)

let test_generate_covers_extremes () =
  let plans =
    Candidate.generate ~widths:[ 1.0 ] ~exits:[ None ] ~precisions:[ Precision.Fp32 ] alexnet
  in
  Alcotest.(check int) "one per cut position" (Graph.n_nodes alexnet + 1) (List.length plans);
  Alcotest.(check bool) "has device-only" true (List.exists Plan.is_device_only plans);
  Alcotest.(check bool) "has server-only" true (List.exists Plan.is_server_only plans)

let test_pareto_subset_and_nondominated () =
  let plans = Candidate.generate alexnet in
  let frontier = Candidate.pareto plans in
  Alcotest.(check bool) "frontier is a subset" true
    (List.for_all (fun p -> List.memq p plans) frontier);
  Alcotest.(check bool) "frontier smaller" true (List.length frontier < List.length plans);
  let key (p : Plan.t) =
    let scale = Precision.compute_scale p.Plan.precision in
    [|
      Plan.dev_flops p /. scale; Plan.transfer_bytes p; Plan.srv_flops p /. scale;
      -.p.Plan.accuracy;
    |]
  in
  List.iter
    (fun p ->
      Alcotest.(check bool) "non-dominated" false
        (List.exists (fun q -> Es_util.Pareto.dominates (key q) (key p)) frontier))
    frontier

let test_pareto_keeps_best_accuracy () =
  let frontier = Candidate.pareto_candidates resnet18 in
  let best = List.fold_left (fun acc (p : Plan.t) -> Float.max acc p.Plan.accuracy) 0.0 frontier in
  let full = (Accuracy.profile_of_model "resnet18").Accuracy.full_accuracy in
  Alcotest.(check (float 1e-9)) "full accuracy survives pruning" full best

let test_candidate_cache () =
  Candidate.clear_cache ();
  let a = Candidate.pareto_candidates resnet18 in
  let b = Candidate.pareto_candidates resnet18 in
  Alcotest.(check bool) "memoized (physical equality)" true (a == b);
  Candidate.clear_cache ();
  let c = Candidate.pareto_candidates resnet18 in
  Alcotest.(check bool) "cache cleared" false (a == c);
  Alcotest.(check int) "same contents" (List.length a) (List.length c)

let test_cache_distinguishes_same_name () =
  (* Two structurally different models sharing a name must not share cached
     candidate sets. *)
  let mk out_c =
    Graph.sequential ~name:"twin" ~input:(Shape.map ~c:3 ~h:16 ~w:16)
      [
        (None, false, Layer.Conv { out_c; kernel = 3; stride = 1; pad = 1; groups = 1 });
        (None, true, Layer.Relu);
        (None, false, Layer.Flatten);
        (None, false, Layer.Fc { out_features = 10 });
      ]
  in
  let small = Candidate.pareto_candidates (mk 4) in
  let large = Candidate.pareto_candidates (mk 64) in
  let max_dev plans =
    List.fold_left (fun acc p -> Float.max acc (Plan.dev_flops p)) 0.0 plans
  in
  Alcotest.(check bool) "different architectures, different candidates" true
    (max_dev large > 2.0 *. max_dev small)

let test_exit_nodes_listing () =
  let exits = Candidate.exit_nodes resnet18 in
  Alcotest.(check int) "all flagged exits plus full depth"
    (List.length (Graph.exit_candidate_ids resnet18) + 1)
    (List.length exits);
  Alcotest.(check bool) "full depth present" true (List.mem None exits)

(* ---------- Precision ---------- *)

let test_precision_basics () =
  Alcotest.(check int) "fp32 bytes" 4 (Precision.bytes_per_elt Precision.Fp32);
  Alcotest.(check int) "fp16 bytes" 2 (Precision.bytes_per_elt Precision.Fp16);
  Alcotest.(check int) "int8 bytes" 1 (Precision.bytes_per_elt Precision.Int8);
  Alcotest.(check bool) "scales ordered" true
    (Precision.compute_scale Precision.Fp32 < Precision.compute_scale Precision.Fp16
    && Precision.compute_scale Precision.Fp16 < Precision.compute_scale Precision.Int8);
  List.iter
    (fun p ->
      Alcotest.(check bool) "of_string roundtrip" true
        (Precision.of_string (Precision.name p) = Some p))
    Precision.all;
  Alcotest.(check bool) "unknown name" true (Precision.of_string "bf16" = None)

let test_precision_apply () =
  let perf = Profile.perf ~flops_per_s:1e9 ~mem_bytes_per_s:1e9 ~layer_overhead_s:1e-5 in
  let q = Precision.apply Precision.Int8 perf in
  Alcotest.(check (float 1.0)) "flops scaled" 2.5e9 q.Profile.flops_per_s;
  Alcotest.(check (float 1.0)) "memory scaled" 2.5e9 q.Profile.mem_bytes_per_s;
  Alcotest.(check (float 1e-12)) "overhead unchanged" 1e-5 q.Profile.layer_overhead_s

let test_precision_plan_effects () =
  let fp32 = Plan.make ~cut:(Graph.n_nodes resnet18 / 2) resnet18 in
  let int8 = Plan.make ~precision:Precision.Int8 ~cut:(Graph.n_nodes resnet18 / 2) resnet18 in
  Alcotest.(check (float 1.0)) "int8 ships a quarter of the bytes"
    (Plan.transfer_bytes fp32 /. 4.0)
    (Plan.transfer_bytes int8);
  Alcotest.(check (float 1.0)) "result bytes quartered too"
    (Plan.result_bytes fp32 /. 4.0)
    (Plan.result_bytes int8);
  let perf = Profile.perf ~flops_per_s:1e10 ~mem_bytes_per_s:1e10 ~layer_overhead_s:0.0 in
  Alcotest.(check bool) "int8 computes faster" true
    (Plan.device_time perf int8 < Plan.device_time perf fp32);
  Alcotest.(check bool) "int8 is less accurate" true (int8.Plan.accuracy < fp32.Plan.accuracy);
  Alcotest.(check bool) "fp16 nearly free" true
    ((Plan.make ~precision:Precision.Fp16 resnet18).Plan.accuracy > 0.995 *. fp32.Plan.accuracy);
  Alcotest.(check (float 1e-9)) "same flops either way" (Plan.dev_flops fp32)
    (Plan.dev_flops int8)

let test_precision_in_candidates () =
  let plans = Candidate.pareto_candidates resnet18 in
  Alcotest.(check bool) "some int8 plans survive the frontier" true
    (List.exists (fun (p : Plan.t) -> p.Plan.precision = Precision.Int8) plans);
  Alcotest.(check bool) "fp32 plans survive too" true
    (List.exists (fun (p : Plan.t) -> p.Plan.precision = Precision.Fp32) plans)

(* ---------- Dag_cut ---------- *)

let toy_costs g =
  (* Unit-ish costs: device 3x slower than server; transfer = activation KB. *)
  let dev v = 3.0 *. Graph.node_flops g v /. 1e9 in
  let srv v = Graph.node_flops g v /. 1e9 in
  let xfer v = float_of_int (Shape.bytes (Graph.node_shape g v)) /. 1e6 in
  (dev, srv, xfer)

let test_dag_cut_valid_and_no_worse_than_prefix () =
  List.iter
    (fun name ->
      let g = Zoo.by_name name in
      let dev, srv, xfer = toy_costs g in
      let split = Dag_cut.optimal_split ~dev_cost:dev ~srv_cost:srv ~transfer_cost:xfer g in
      (match Dag_cut.validate g split.Dag_cut.device_side with
      | Ok () -> ()
      | Error e -> Alcotest.fail (name ^ ": " ^ e));
      let _, prefix_cost =
        Dag_cut.best_prefix_cost ~dev_cost:dev ~srv_cost:srv ~transfer_cost:xfer g
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: min-cut %.4f <= prefix %.4f" name split.Dag_cut.total_cost
           prefix_cost)
        true
        (split.Dag_cut.total_cost <= prefix_cost +. 1e-9))
    [ "alexnet"; "resnet18"; "inception_lite"; "densenet_lite"; "squeezenet" ]

let test_dag_cut_extremes () =
  let g = Zoo.alexnet () in
  (* Server infinitely fast and transfer free: everything (but the pinned
     input) goes to the server. *)
  let split =
    Dag_cut.optimal_split
      ~dev_cost:(fun v -> Graph.node_flops g v /. 1e9)
      ~srv_cost:(fun _ -> 0.0)
      ~transfer_cost:(fun _ -> 0.0)
      g
  in
  let on_device = Array.fold_left (fun a b -> if b then a + 1 else a) 0 split.Dag_cut.device_side in
  Alcotest.(check int) "only the input stays" 1 on_device;
  (* Transfer prohibitively expensive: everything stays on the device. *)
  let split =
    Dag_cut.optimal_split
      ~dev_cost:(fun v -> Graph.node_flops g v /. 1e9)
      ~srv_cost:(fun _ -> 0.0)
      ~transfer_cost:(fun _ -> 1e12)
      g
  in
  Alcotest.(check bool) "all on device" true
    (Array.for_all (fun b -> b) split.Dag_cut.device_side)

let test_dag_cut_costs_consistent () =
  let g = Zoo.inception_lite () in
  let dev, srv, xfer = toy_costs g in
  let split = Dag_cut.optimal_split ~dev_cost:dev ~srv_cost:srv ~transfer_cost:xfer g in
  Alcotest.(check (float 1e-9)) "components sum to total"
    (split.Dag_cut.dev_cost +. split.Dag_cut.srv_cost +. split.Dag_cut.transfer_cost)
    split.Dag_cut.total_cost

let test_dag_cut_beats_prefix_on_branchy () =
  (* A DAG engineered so the prefix restriction hurts.  Topological order:
     input -> stem (small map) -> heavy branch B on the small map -> light
     branch A on the big raw input -> merge.  The optimal split keeps A (big
     activations, light compute) and the stem on the device while offloading
     B (heavy compute, tiny transfer).  No prefix can do that: keeping A
     local forces B local too (A comes after B), and offloading B via a
     prefix ships the huge raw input. *)
  let b, x = Graph.Builder.create ~name:"forked" ~input:(Shape.map ~c:8 ~h:64 ~w:64) in
  let stem =
    Graph.Builder.add b (Layer.Conv { out_c = 8; kernel = 8; stride = 8; pad = 0; groups = 1 }) [ x ]
  in
  let b1 =
    Graph.Builder.add b
      (Layer.Conv { out_c = 1024; kernel = 3; stride = 1; pad = 1; groups = 1 })
      [ stem ]
  in
  let b2 =
    Graph.Builder.add b (Layer.Conv { out_c = 8; kernel = 3; stride = 1; pad = 1; groups = 1 })
      [ b1 ]
  in
  let a1 =
    Graph.Builder.add b (Layer.Conv { out_c = 8; kernel = 3; stride = 1; pad = 1; groups = 1 })
      [ x ]
  in
  let a2 = Graph.Builder.add b Layer.Relu [ a1 ] in
  let a3 =
    Graph.Builder.add b (Layer.Pool { kind = Layer.Max; kernel = 8; stride = 8; pad = 0 }) [ a2 ]
  in
  let cat = Graph.Builder.add b Layer.Concat [ a3; b2 ] in
  let g = Graph.Builder.finish ~output:cat b in
  let dev v = 10.0 *. Graph.node_flops g v /. 1e9 in
  let srv v = 0.1 *. Graph.node_flops g v /. 1e9 in
  let xfer v = float_of_int (Shape.bytes (Graph.node_shape g v)) /. 1e6 in
  let split = Dag_cut.optimal_split ~dev_cost:dev ~srv_cost:srv ~transfer_cost:xfer g in
  let _, prefix = Dag_cut.best_prefix_cost ~dev_cost:dev ~srv_cost:srv ~transfer_cost:xfer g in
  Alcotest.(check bool)
    (Printf.sprintf "min-cut %.4f strictly beats prefix %.4f" split.Dag_cut.total_cost prefix)
    true
    (split.Dag_cut.total_cost < prefix -. 1e-9)

let test_dag_cut_validate_rejects () =
  let g = Zoo.alexnet () in
  let n = Graph.n_nodes g in
  let no_input = Array.make n true in
  no_input.(0) <- false;
  (match Dag_cut.validate g no_input with
  | Ok () -> Alcotest.fail "input off-device accepted"
  | Error _ -> ());
  (* Server node feeding a device node. *)
  let bad = Array.make n false in
  bad.(0) <- true;
  bad.(2) <- true;
  match Dag_cut.validate g bad with
  | Ok () -> Alcotest.fail "backward edge accepted"
  | Error _ -> ()

(* ---------- Multi_exit ---------- *)

let test_multi_exit_build () =
  let me = Multi_exit.build resnet18 in
  Alcotest.(check int) "exits = candidates + final"
    (List.length (Graph.exit_candidate_ids resnet18) + 1)
    (Multi_exit.n_exits me);
  let total = Array.fold_left ( +. ) 0.0 me.Multi_exit.probs in
  Alcotest.(check (float 1e-9)) "probabilities sum to 1" 1.0 total;
  Alcotest.(check bool) "expected flops below full model" true
    (Multi_exit.expected_flops me < Graph.total_flops resnet18);
  Alcotest.(check bool) "deployment accuracy between first and last exit" true
    (me.Multi_exit.deployment_accuracy
     <= me.Multi_exit.exits.(Multi_exit.n_exits me - 1).Plan.accuracy
    && me.Multi_exit.deployment_accuracy >= me.Multi_exit.exits.(0).Plan.accuracy)

let test_multi_exit_sample () =
  let me = Multi_exit.build resnet18 in
  let rng = Es_util.Prng.create 5 in
  for _ = 1 to 200 do
    let k = Multi_exit.sample_exit rng me in
    Alcotest.(check bool) "sampled exit in range" true (k >= 0 && k < Multi_exit.n_exits me)
  done

let test_multi_exit_rejects_non_exit () =
  Alcotest.check_raises "node 1 not exitable"
    (Invalid_argument "Multi_exit.build: node 1 is not exitable") (fun () ->
      ignore (Multi_exit.build ~exit_nodes:[ 1 ] resnet18))

let test_multi_exit_overhead_small () =
  let me = Multi_exit.build resnet18 in
  (* Exit heads are global-pool + FC: tiny next to the backbone. *)
  Alcotest.(check bool) "head overhead below 5% of the model" true
    (Multi_exit.overhead_flops me < 0.05 *. Graph.total_flops resnet18)

let () =
  Alcotest.run "es_surgery"
    [
      ( "accuracy",
        [
          Alcotest.test_case "full model" `Quick test_accuracy_full_model;
          Alcotest.test_case "monotone depth" `Quick test_accuracy_monotone_depth;
          Alcotest.test_case "monotone width" `Quick test_accuracy_monotone_width;
          Alcotest.test_case "input validation" `Quick test_accuracy_errors;
          Alcotest.test_case "unknown model" `Quick test_accuracy_unknown_model_generic;
          Alcotest.test_case "exit distribution" `Quick test_exit_distribution_sums_to_one;
          Alcotest.test_case "kappa effect" `Quick test_exit_distribution_kappa;
          Alcotest.test_case "expected accuracy" `Quick test_expected_accuracy;
          prop_exit_distribution_valid;
        ] );
      ( "plan",
        [
          Alcotest.test_case "truncate shapes" `Quick test_truncate_shapes;
          Alcotest.test_case "truncate detector" `Quick test_truncate_detector;
          Alcotest.test_case "truncate at output" `Quick test_truncate_at_output_is_identity;
          Alcotest.test_case "defaults" `Quick test_plan_make_defaults;
          Alcotest.test_case "device only" `Quick test_plan_device_only;
          Alcotest.test_case "flops partition" `Quick test_plan_flops_partition;
          Alcotest.test_case "validation" `Quick test_plan_validation;
          Alcotest.test_case "width trade-off" `Quick test_plan_width_reduces_cost_and_accuracy;
          Alcotest.test_case "exit trade-off" `Quick test_plan_exit_reduces_cost_and_accuracy;
          Alcotest.test_case "times consistent" `Quick test_plan_times_consistent;
          prop_with_cut_preserves_surgery;
        ] );
      ( "memory",
        [
          Alcotest.test_case "monotone in cut" `Quick test_mem_monotone_in_cut;
          Alcotest.test_case "zero offloaded" `Quick test_mem_zero_when_fully_offloaded;
          Alcotest.test_case "quantization shrinks" `Quick test_mem_quantization_shrinks;
          Alcotest.test_case "vgg vs iot board" `Quick test_mem_vgg_exceeds_iot_board;
        ] );
      ( "candidate",
        [
          Alcotest.test_case "covers extremes" `Quick test_generate_covers_extremes;
          Alcotest.test_case "pareto sound" `Quick test_pareto_subset_and_nondominated;
          Alcotest.test_case "keeps best accuracy" `Quick test_pareto_keeps_best_accuracy;
          Alcotest.test_case "cache" `Quick test_candidate_cache;
          Alcotest.test_case "cache name collision" `Quick test_cache_distinguishes_same_name;
          Alcotest.test_case "exit nodes" `Quick test_exit_nodes_listing;
        ] );
      ( "precision",
        [
          Alcotest.test_case "basics" `Quick test_precision_basics;
          Alcotest.test_case "apply" `Quick test_precision_apply;
          Alcotest.test_case "plan effects" `Quick test_precision_plan_effects;
          Alcotest.test_case "in candidates" `Quick test_precision_in_candidates;
        ] );
      ( "dag_cut",
        [
          Alcotest.test_case "valid & <= prefix on zoo" `Quick
            test_dag_cut_valid_and_no_worse_than_prefix;
          Alcotest.test_case "extremes" `Quick test_dag_cut_extremes;
          Alcotest.test_case "costs consistent" `Quick test_dag_cut_costs_consistent;
          Alcotest.test_case "beats prefix on branchy" `Quick test_dag_cut_beats_prefix_on_branchy;
          Alcotest.test_case "validate rejects" `Quick test_dag_cut_validate_rejects;
        ] );
      ( "multi_exit",
        [
          Alcotest.test_case "build" `Quick test_multi_exit_build;
          Alcotest.test_case "sample" `Quick test_multi_exit_sample;
          Alcotest.test_case "rejects non-exit" `Quick test_multi_exit_rejects_non_exit;
          Alcotest.test_case "head overhead small" `Quick test_multi_exit_overhead_small;
        ] );
    ]
