test/test_surgery.ml: Accuracy Alcotest Array Candidate Dag_cut Es_dnn Es_surgery Es_util Float Gen Graph Layer List Multi_exit Plan Precision Printf Profile QCheck QCheck_alcotest Shape Zoo
