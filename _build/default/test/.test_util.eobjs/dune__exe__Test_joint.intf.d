test/test_joint.mli:
