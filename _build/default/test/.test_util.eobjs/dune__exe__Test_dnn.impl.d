test/test_dnn.ml: Alcotest Array Es_dnn Es_util Filename Float Fun Graph Layer List Printf Profile QCheck QCheck_alcotest Serialize Shape Sys Zoo
