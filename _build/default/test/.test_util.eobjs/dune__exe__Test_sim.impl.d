test/test_sim.ml: Alcotest Array Cluster Decision Es_baselines Es_dnn Es_edge Es_sim Es_surgery Float Gen Graph Latency Link List Plan Printf Processor QCheck QCheck_alcotest Scenario Zoo
