test/test_surgery.mli:
