test/test_workload.ml: Alcotest Array Cluster Es_edge Es_workload Filename Float Fun Lazy List Printf Profiles Scenario Scenarios String Sys Traces
