test/test_edge.ml: Accuracy Alcotest Array Cluster Decision Energy Es_dnn Es_edge Es_surgery Es_util Graph Latency Link List Plan Processor Profile QCheck QCheck_alcotest Scenario Zoo
