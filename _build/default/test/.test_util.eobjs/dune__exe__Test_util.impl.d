test/test_util.ml: Alcotest Array Es_util Float Gen Hashtbl Heap List Maxflow Numeric Option Pareto Printf Prng QCheck QCheck_alcotest Stats String Table
