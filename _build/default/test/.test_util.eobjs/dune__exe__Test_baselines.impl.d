test/test_baselines.ml: Alcotest Array Baselines Cluster Decision Es_baselines Es_edge Es_joint Es_surgery Es_workload Float Lazy List Printf Processor Scenario
