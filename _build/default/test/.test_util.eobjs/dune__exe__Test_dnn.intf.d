test/test_dnn.mli:
